#!/usr/bin/env bash
# crash_gate.sh — service-level durability gates for ooc-serve.
#
# Gate 1 (crash-restart): start ooc-serve with a write-ahead journal,
# submit a batch of idempotency-keyed jobs, SIGKILL the process mid-run,
# restart it on the same journal, and require that every job completes
# with stats bitwise identical to a journal-less reference run, with
# replayed_jobs >= 1 reported in /metrics.
#
# Gate 2 (journal-corruption): flip bytes in the tail of the surviving
# journal segment and require a clean restart (healthz 200, no parse
# error) with truncated_tail_records >= 1 reported in /metrics.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8093
WORK=$(mktemp -d)
go build -o "$WORK/ooc-serve" ./cmd/ooc-serve
JDIR="$WORK/journal"
PIDFILE="$WORK/serve.pid"
cleanup() {
  [ -f "$PIDFILE" ] && kill -9 "$(cat "$PIDFILE")" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Jobs 1-5: the batch; every spec is checkpointed so an interrupted run
# can resume rather than rerun.
spec() {
  local n=$1 key=$2
  printf '{"n":%d,"procs":4,"mem_elems":2048,"force":"column-slab","checkpoint":1,"idempotency_key":"%s"}' "$n" "$key"
}
KEYS=(crash-a crash-b crash-c crash-d crash-e)
SIZES=(256 192 224 160 288)

start_server() { # args: extra flags...
  "$WORK/ooc-serve" -addr "$ADDR" -workers 1 "$@" >"$WORK/serve.log" 2>&1 &
  echo $! >"$PIDFILE"
  for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "crash_gate: server did not become healthy" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

stop_server() { # graceful
  kill -TERM "$(cat "$PIDFILE")" 2>/dev/null || true
  wait "$(cat "$PIDFILE")" 2>/dev/null || true
  rm -f "$PIDFILE"
}

extract_stats() { # file.json -> canonical stats JSON on stdout
  python3 -c 'import json,sys; json.dump(json.load(open(sys.argv[1]))["stats"], sys.stdout, sort_keys=True)' "$1"
}

echo "== reference run (no journal) =="
start_server
for i in "${!KEYS[@]}"; do
  curl -sf "http://$ADDR/jobs" -d "$(spec "${SIZES[$i]}" "${KEYS[$i]}")" >"$WORK/ref-$i.json"
  extract_stats "$WORK/ref-$i.json" >"$WORK/ref-$i.stats"
done
stop_server

echo "== gate 1: SIGKILL mid-run, restart, replay =="
start_server -journal "$JDIR"
for i in "${!KEYS[@]}"; do
  curl -s "http://$ADDR/jobs" -d "$(spec "${SIZES[$i]}" "${KEYS[$i]}")" >/dev/null 2>&1 &
done
sleep 0.4
kill -9 "$(cat "$PIDFILE")"
wait "$(cat "$PIDFILE")" 2>/dev/null || true
rm -f "$PIDFILE"
wait || true # reap the in-flight curls

start_server -journal "$JDIR"
grep -q 'journal .* recovered' "$WORK/serve.log" || {
  echo "crash_gate: no recovery summary logged" >&2; cat "$WORK/serve.log" >&2; exit 1; }
# Retried submissions with the same keys must complete with the
# reference stats, whether served fresh, from a resumed run, or
# deduplicated against a retained outcome.
for i in "${!KEYS[@]}"; do
  curl -sf "http://$ADDR/jobs" -d "$(spec "${SIZES[$i]}" "${KEYS[$i]}")" >"$WORK/got-$i.json"
  extract_stats "$WORK/got-$i.json" >"$WORK/got-$i.stats"
  cmp "$WORK/ref-$i.stats" "$WORK/got-$i.stats" || {
    echo "crash_gate: stats for ${KEYS[$i]} differ from reference after restart" >&2; exit 1; }
done
curl -sf "http://$ADDR/metrics" >"$WORK/metrics1.json"
python3 - "$WORK/metrics1.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
j = m["journal"]
assert j["replayed_jobs"] >= 1, f"no jobs replayed after SIGKILL: {j}"
assert j["records_appended"] >= 1 and j["fsyncs"] >= 1, j
print(f"gate 1 ok: replayed={j['replayed_jobs']} resumed={j['resumed_jobs']} "
      f"records={j['records_appended']} fsyncs={j['fsyncs']}")
PY
stop_server

echo "== gate 2: corrupt journal tail, clean restart =="
SEG=$(ls "$JDIR"/*.seg | sort | tail -1)
python3 - "$SEG" <<'PY'
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    f.seek(0, 2)
    size = f.tell()
    # Flip the last 4 bytes: whatever record they land in fails its CRC.
    f.seek(max(0, size - 4))
    tail = bytes(b ^ 0xFF for b in f.read(4))
    f.seek(max(0, size - 4))
    f.write(tail)
print(f"flipped tail bytes of {path} ({size} bytes)")
PY
start_server -journal "$JDIR"
curl -sf "http://$ADDR/healthz" >/dev/null # clean start, not a parse error
curl -sf "http://$ADDR/metrics" >"$WORK/metrics2.json"
python3 - "$WORK/metrics2.json" <<'PY'
import json, sys
j = json.load(open(sys.argv[1]))["journal"]
assert j["truncated_tail_records"] >= 1, f"corrupt tail not truncated: {j}"
print(f"gate 2 ok: truncated_tail_records={j['truncated_tail_records']}")
PY
# The server keeps serving after dropping the torn tail.
curl -sf "http://$ADDR/jobs" -d '{"n":64,"procs":4,"mem_elems":2048}' >/dev/null
stop_server

echo "crash_gate: all gates passed"
