// Package passion is a from-scratch reproduction of "Data Access
// Reorganizations in Compiling Out-of-core Data Parallel Programs on
// Distributed Memory Machines" (Bordawekar, Choudhary, Thakur; Syracuse
// NPAC TR SCCS-622 / IPPS'97), the access-reorganization work of the
// PASSION project.
//
// The repository contains a mini-HPF frontend, a two-phase out-of-core
// compiler with the paper's I/O cost estimation and strategy selection, a
// PASSION-style out-of-core array runtime over local array files, a
// simulated distributed memory machine (message passing plus a parallel
// I/O subsystem calibrated against the Intel Touchstone Delta), the
// hand-coded GAXPY baselines, and drivers that regenerate every table and
// figure of the paper's evaluation.
//
// Start with README.md for the tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-versus-reproduction numbers. The
// subsystems live under internal/; runnable entry points live under cmd/
// and examples/. The benchmarks in bench_test.go regenerate each
// evaluation artifact at a reduced scale and report the simulated seconds
// as a custom metric (sim_s).
package passion
