module github.com/ooc-hpf/passion

go 1.22
