// Compiled shift communication: a column stencil written as an HPF FORALL
// with shifted references, z(:,k) = (x(:,k-1) + 2*x(:,k) + x(:,k+1))/4.
// With the arrays distributed column-block, the shifted references cross
// processor boundaries; the compiler's in-core phase detects this and the
// emitted node program performs a boundary-column exchange with the
// neighbors before the halo-augmented out-of-core sweep. (Compare with
// examples/jacobi, where the same machinery is hand-written against the
// runtime library.)
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/sim"
)

const (
	n     = 96
	procs = 4
)

const source = `parameter (n=96, nprocs=4)
real x(n,n), z(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: x, z
FORALL (k=2:n-1)
  z(1:n,k) = (x(1:n,k-1) + 2*x(1:n,k) + x(1:n,k+1)) / 4
end FORALL
end
`

// fillX uses multiples of 4 so the /4 in the stencil stays exact.
func fillX(i, j int) float64 { return float64(4 * ((i*3)%7 + (j*5)%9)) }

func main() {
	res, err := compiler.CompileSource(source, compiler.Options{MemElems: n * 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %s\n", res.Analysis.Pattern)
	fmt.Printf("communication analysis: %s\n\n", res.Analysis.Comm)
	fmt.Printf("emitted node program:\n%s\n", res.Program.String())

	out, err := exec.Run(res.Program, sim.Delta(procs), exec.Options{
		Fill: map[string]func(int, int) float64{"x": fillX},
	})
	if err != nil {
		log.Fatal(err)
	}
	comm := out.Stats.TotalComm()
	fmt.Printf("simulated execution: %s\n", out.Stats)
	fmt.Printf("shift communication: %d boundary-column messages\n", comm.MessagesSent)

	z, err := out.ReadArray("z")
	if err != nil {
		log.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var want float64
			if j >= 1 && j <= n-2 {
				want = (fillX(i, j-1) + 2*fillX(i, j) + fillX(i, j+1)) / 4
			}
			if z.At(i, j) != want {
				log.Fatalf("z(%d,%d) = %g, want %g", i, j, z.At(i, j), want)
			}
		}
	}
	fmt.Println("stencil verified exactly (boundary columns untouched): OK")
}
