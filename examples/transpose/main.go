// Out-of-core transpose and redistribution: the Section 2.3 machinery.
// Data often arrives on disk in a layout that does not match the
// distribution a program declares; this example (1) redistributes an
// array from column-block to row-block, and (2) transposes an array, both
// expressed as mapped redistributions over the message-passing machine,
// and verifies every element.
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

const (
	n       = 96
	procs   = 4
	slabMem = n * 4 // four columns of slab memory per array
)

func value(i, j int) float64 { return float64(i*1000 + j) }

func main() {
	fs := iosim.NewMemFS()
	stats, err := mp.Run(sim.Delta(procs), func(p *mp.Proc) error {
		disk := iosim.NewDisk(fs, p.Config(), &p.Stats().IO)
		newArr := func(name string, rowMap, colMap dist.Map) (*oocarray.Array, error) {
			dm, err := dist.NewArray(name, rowMap, colMap)
			if err != nil {
				return nil, err
			}
			return oocarray.New(disk, dm, p.Rank(), p.Clock(), oocarray.Options{})
		}

		// src arrives column-block (as if written by a previous
		// computation); the consumer wants it row-block.
		src, err := newArr("src", dist.NewCollapsed(n), dist.NewBlock(n, procs))
		if err != nil {
			return err
		}
		if err := src.FillGlobal(value); err != nil {
			return err
		}
		rowBlocked, err := newArr("rowblocked", dist.NewBlock(n, procs), dist.NewCollapsed(n))
		if err != nil {
			return err
		}
		if err := oocarray.Redistribute(p, src, rowBlocked, slabMem, 31); err != nil {
			return err
		}
		m, err := rowBlocked.ReadLocal()
		if err != nil {
			return err
		}
		for lj := 0; lj < rowBlocked.LocalCols(); lj++ {
			for li := 0; li < rowBlocked.LocalRows(); li++ {
				gi, gj := rowBlocked.GlobalIndex(li, lj)
				if m.At(li, lj) != value(gi, gj) {
					return fmt.Errorf("redistribute: wrong value at global (%d,%d)", gi, gj)
				}
			}
		}

		// Transpose: dst(j, i) = src(i, j), expressed as a mapped
		// redistribution.
		transposed, err := newArr("transposed", dist.NewCollapsed(n), dist.NewBlock(n, procs))
		if err != nil {
			return err
		}
		swap := func(gi, gj int) (int, int) { return gj, gi }
		if err := oocarray.RedistributeMapped(p, src, transposed, slabMem, 32, swap); err != nil {
			return err
		}
		t, err := transposed.ReadLocal()
		if err != nil {
			return err
		}
		for lj := 0; lj < transposed.LocalCols(); lj++ {
			for li := 0; li < transposed.LocalRows(); li++ {
				gi, gj := transposed.GlobalIndex(li, lj)
				if t.At(li, lj) != value(gj, gi) {
					return fmt.Errorf("transpose: wrong value at global (%d,%d)", gi, gj)
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	comm := stats.TotalComm()
	fmt.Printf("transpose + redistribution of a %dx%d array over %d processors, out of core\n", n, n, procs)
	fmt.Printf("simulated execution: %s\n", stats)
	fmt.Printf("communication: %d messages, %d collective operations\n", comm.MessagesSent, comm.Collectives)
	fmt.Println("redistribution verified; transpose verified: OK")
}
