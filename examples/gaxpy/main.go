// Out-of-core GAXPY matrix multiplication: the paper's running example,
// end to end. The program compares the three translations the paper
// studies — in-core, column-slab and row-slab — at a laptop-friendly
// scale with real file I/O, prints a miniature Table 1 row, shows the
// compiler making the same choice from the cost model, and verifies every
// result exactly.
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/sim"
)

func main() {
	const (
		n     = 256
		procs = 4
		ratio = 8 // slab = 1/8 of the out-of-core local array
	)
	ocla := n * n / procs
	slab := ocla / ratio
	mach := sim.Delta(procs)
	cfg := gaxpy.Config{N: n, SlabA: slab, SlabB: slab}

	fmt.Printf("GAXPY C = A*B, %dx%d over %d processors, slab ratio 1/%d\n\n", n, n, procs, ratio)
	fmt.Printf("%-12s %12s %10s %12s %14s\n", "variant", "sim time", "slab I/O", "requests", "data moved")
	for _, name := range []string{"in-core", "column-slab", "row-slab"} {
		run, err := gaxpy.Variants[name](mach, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := run.VerifyC(); err != nil {
			log.Fatal(err)
		}
		io := run.Stats.TotalIO()
		fmt.Printf("%-12s %11.2fs %10d %12d %14d\n",
			name, run.Stats.ElapsedSeconds(), io.SlabReads+io.SlabWrites, io.Requests(), io.Bytes())
	}

	// The compiler reaches the same conclusion from Equations 3-6 alone.
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: procs, MemElems: 2*slab + n,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiler's cost comparison (Figure 14 algorithm):\n%s", res.Report)
	fmt.Printf("selected: %s\n", res.Program.Strategy)
	fmt.Println("\nall three variants verified against the closed form: OK")
}
