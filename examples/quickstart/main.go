// Quickstart: compile the paper's Figure 3 GAXPY program for a simulated
// 4-processor machine, run it out of core, and inspect the result — the
// whole pipeline through the public facade in a dozen lines.
package main

import (
	"fmt"
	"log"

	passion "github.com/ooc-hpf/passion"
)

func main() {
	// A session bundles the machine model (a 4-processor Touchstone
	// Delta) with a file system for the local array files.
	session := passion.NewSession(4)

	// Compile the built-in HPF program with 64x64 arrays and room for
	// 2048 array elements of slab memory per node, then execute it with
	// the library's deterministic test inputs.
	out, err := session.CompileAndRun(passion.GaxpySource,
		passion.CompileOptions{N: 64, MemElems: 2048},
		passion.ExecOptions{Fill: map[string]func(int, int) float64{
			"a": passion.GaxpyFillA,
			"b": passion.GaxpyFillB,
		}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy chosen by the compiler: %s\n", out.Compiled.Program.Strategy)
	fmt.Printf("simulated execution: %s\n", out.Stats())

	// Pull the distributed result back together and spot-check it.
	c, err := out.Array("c")
	if err != nil {
		log.Fatal(err)
	}
	want := passion.GaxpyExpected(64)
	for _, ij := range [][2]int{{0, 0}, {13, 7}, {63, 63}} {
		got := c.At(ij[0], ij[1])
		if got != want(ij[0], ij[1]) {
			log.Fatalf("C(%d,%d) = %g, want %g", ij[0], ij[1], got, want(ij[0], ij[1]))
		}
		fmt.Printf("C(%2d,%2d) = %g (verified)\n", ij[0], ij[1], got)
	}
	fmt.Println("quickstart: OK")
}
