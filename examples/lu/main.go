// Out-of-core LU factorization: a PASSION-class application on top of
// the runtime library. The matrix is column-block distributed; each panel
// is factored after streaming every previously factored panel back from
// disk, so the I/O volume is quadratic in the panel count — the same
// reuse-driven trade-off the paper's cost model captures (Equations 3-4).
// The example sweeps the panel width (the slab size) and verifies the
// factors against the original matrix.
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/lu"
	"github.com/ooc-hpf/passion/internal/sim"
)

func main() {
	const (
		n     = 128
		procs = 4
	)
	fmt.Printf("out-of-core LU of a %dx%d diagonally dominant matrix over %d processors\n\n", n, n, procs)
	fmt.Printf("%-12s %12s %12s %14s %12s\n", "panel width", "panels", "panel reads", "data moved", "sim time")
	for _, w := range []int{2, 4, 8, 16, 32} {
		r, err := lu.Run(sim.Delta(procs), lu.Config{N: n, PanelWidth: w})
		if err != nil {
			log.Fatal(err)
		}
		diff, err := r.Verify()
		if err != nil {
			log.Fatal(err)
		}
		if diff > 1e-9 {
			log.Fatalf("w=%d: L*U deviates from A by %g", w, diff)
		}
		io := r.Stats.TotalIO()
		fmt.Printf("%-12d %12d %12d %14d %11.2fs\n",
			w, n/w, io.SlabReads, io.Bytes(), r.Stats.ElapsedSeconds())
	}
	fmt.Println("\nall panel widths verified: max |L*U - A| <= 1e-9")
	fmt.Println("note the quadratic growth of panel reads as panels shrink — the")
	fmt.Println("slab-size effect of Figure 10, on a different workload.")
}
