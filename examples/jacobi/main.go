// Out-of-core 2-D Jacobi relaxation: a second workload class (the
// loosely synchronous stencils the paper's introduction motivates) built
// on the runtime library's stencil support.
//
// An n x n grid is distributed row-block over P processors; each
// processor's block lives in a local array file and is swept in column
// slabs with a one-column halo, while ghost rows are exchanged with the
// neighboring processors each iteration. The result is verified exactly
// against a sequential in-core reference (identical arithmetic per
// element).
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/stencil"
)

const (
	n        = 128
	procs    = 4
	iters    = 5
	slabCols = 16
)

// initial is the starting grid: a hot top edge, a cold bottom edge, and a
// deterministic interior pattern.
func initial(i, j int) float64 {
	switch {
	case i == 0:
		return 100
	case i == n-1:
		return -50
	default:
		return float64((i*7+j*3)%11) - 5
	}
}

func main() {
	fs := iosim.NewMemFS()
	blocks := make([]*matrix.Matrix, procs) // final local blocks, per rank

	stats, err := mp.Run(sim.Delta(procs), func(p *mp.Proc) error {
		disk := iosim.NewDisk(fs, p.Config(), &p.Stats().IO)
		grid, err := stencil.New(p, disk, "grid", n, oocarray.Options{})
		if err != nil {
			return err
		}
		defer grid.Close()
		if err := grid.Fill(initial); err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			if err := grid.Sweep(slabCols, 10, stencil.Jacobi); err != nil {
				return err
			}
		}
		m, err := grid.ReadLocal()
		if err != nil {
			return err
		}
		blocks[p.Rank()] = m
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	ref := stencil.Reference(n, iters, initial, stencil.Jacobi)
	rows := n / procs
	for rank, block := range blocks {
		for j := 0; j < n; j++ {
			for i := 0; i < rows; i++ {
				if got, want := block.At(i, j), ref.At(rank*rows+i, j); got != want {
					log.Fatalf("mismatch at global (%d,%d): %g vs %g", rank*rows+i, j, got, want)
				}
			}
		}
	}
	fmt.Printf("jacobi: %d iterations of a %dx%d grid over %d processors, out of core\n", iters, n, n, procs)
	fmt.Printf("simulated execution: %s\n", stats)
	fmt.Println("verification against the sequential reference: exact match, OK")
}
