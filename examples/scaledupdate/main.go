// Elementwise out-of-core update: the compiler's second pattern class.
// Two FORALL statements — z = alpha*x + y - 1 followed by w = z*x/2 —
// compile to slab-streaming node programs with no communication. Here the
// access reorganization question is contiguity, not reuse: both
// strip-mining directions move each array exactly once, but column slabs
// of the column-major local arrays cost one disk request per slab while
// row slabs cost one per local column. The example shows the cost model
// making that choice, runs both plans, and verifies the results.
package main

import (
	"fmt"
	"log"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/sim"
)

const (
	n     = 128
	procs = 4
)

func fillX(i, j int) float64 { return float64(i%9 + j%4) }
func fillY(i, j int) float64 { return float64(3*(i%5) - j%7) }

func main() {
	run := func(force string) (*exec.Result, *compiler.Result) {
		res, err := compiler.CompileSource(hpf.EwiseSource, compiler.Options{
			N: n, Procs: procs, MemElems: n * 8, Force: force,
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := exec.Run(res.Program, sim.Delta(procs), exec.Options{
			Fill: map[string]func(int, int) float64{"x": fillX, "y": fillY},
		})
		if err != nil {
			log.Fatal(err)
		}
		return out, res
	}

	auto, res := run("")
	fmt.Printf("compiled pattern: %s; strategy chosen: %s\n", res.Analysis.Pattern, res.Program.Strategy)
	fmt.Printf("cost comparison:\n%s\n", res.Report)

	forced, _ := run("row-slab")
	fmt.Printf("simulated time: %-12s %8.3fs (%d requests)\n",
		res.Program.Strategy, auto.Stats.ElapsedSeconds(), auto.Stats.TotalIO().Requests())
	fmt.Printf("simulated time: %-12s %8.3fs (%d requests)\n",
		"row-slab", forced.Stats.ElapsedSeconds(), forced.Stats.TotalIO().Requests())

	// Verify z = 3x + y - 1 and w = z*x/2 exactly.
	z, err := auto.ReadArray("z")
	if err != nil {
		log.Fatal(err)
	}
	w, err := auto.ReadArray("w")
	if err != nil {
		log.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			wantZ := 3*fillX(i, j) + fillY(i, j) - 1
			if z.At(i, j) != wantZ {
				log.Fatalf("z(%d,%d) = %g, want %g", i, j, z.At(i, j), wantZ)
			}
			if want := wantZ * fillX(i, j) / 2; w.At(i, j) != want {
				log.Fatalf("w(%d,%d) = %g, want %g", i, j, w.At(i, j), want)
			}
		}
	}
	fmt.Println("both statements verified exactly: OK")
}
