package passion

// One benchmark per evaluation artifact of the paper. Each benchmark runs
// the corresponding experiment configuration (accounting-only mode, so
// the wall time measures the simulator itself) and reports the simulated
// execution time as the custom metric "sim_s" — the quantity the paper's
// tables report. Run everything at reduced scale with:
//
//	go test -bench=. -benchmem
//
// and at the paper's full scale with cmd/ooc-bench.

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/lu"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// benchN is the matrix extent used by the reduced-scale benchmarks. The
// shapes of every series are scale-invariant; cmd/ooc-bench reruns them
// at the paper's 1K/2K scale.
const benchN = 256

func runGaxpy(b *testing.B, variant string, procs int, cfg gaxpy.Config) float64 {
	b.Helper()
	var sec float64
	for i := 0; i < b.N; i++ {
		r, err := gaxpy.Variants[variant](sim.Delta(procs), cfg)
		if err != nil {
			b.Fatal(err)
		}
		sec = r.Stats.ElapsedSeconds()
	}
	b.ReportMetric(sec, "sim_s")
	return sec
}

// BenchmarkFig10SlabRatio regenerates Figure 10: the column-slab
// translation across slab ratios and processor counts.
func BenchmarkFig10SlabRatio(b *testing.B) {
	for _, procs := range []int{4, 16} {
		for _, denom := range []int{8, 4, 2, 1} {
			b.Run(fmt.Sprintf("p=%d/ratio=1_%d", procs, denom), func(b *testing.B) {
				slab := benchN * benchN / procs / denom
				runGaxpy(b, "column-slab", procs,
					gaxpy.Config{N: benchN, SlabA: slab, SlabB: slab, Phantom: true})
			})
		}
	}
}

// BenchmarkTable1RowVsColumn regenerates Table 1: all three variants on
// the same grid of configurations.
func BenchmarkTable1RowVsColumn(b *testing.B) {
	for _, variant := range []string{"in-core", "column-slab", "row-slab"} {
		for _, procs := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/p=%d", variant, procs), func(b *testing.B) {
				slab := benchN * benchN / procs / 8
				if variant == "in-core" {
					slab = benchN * benchN / procs
				}
				runGaxpy(b, variant, procs,
					gaxpy.Config{N: benchN, SlabA: slab, SlabB: slab, Phantom: true})
			})
		}
	}
}

// BenchmarkTable2MemoryAllocation regenerates Table 2: the row-slab
// translation under different A/B slab splits at equal total memory.
func BenchmarkTable2MemoryAllocation(b *testing.B) {
	const procs = 4
	unit := benchN / procs * benchN / 8 // an eighth of the OCLA
	for _, split := range []struct {
		name   string
		aU, bU int
	}{
		{"even", 2, 2},
		{"a-heavy", 3, 1},
		{"b-heavy", 1, 3},
	} {
		b.Run(split.name, func(b *testing.B) {
			runGaxpy(b, "row-slab", procs, gaxpy.Config{
				N: benchN, SlabA: split.aU * unit, SlabB: split.bU * unit,
				SlabC: unit, Phantom: true,
			})
		})
	}
}

// BenchmarkEqCheckCostModel measures the analytic side of experiment E4:
// evaluating Equations 3-6 and the Figure 14 selection.
func BenchmarkEqCheckCostModel(b *testing.B) {
	mach := sim.Delta(16)
	g := cost.GaxpyParams{N: 1024, P: 16, SlabA: 65536, SlabB: 65536, SlabC: 65536}
	for i := 0; i < b.N; i++ {
		cands := cost.GaxpyCandidates(g)
		if cost.Select(cands, mach) != 1 {
			b.Fatal("selection changed")
		}
	}
}

// BenchmarkAblationPrefetch measures the prefetching design choice: the
// row-slab translation with and without overlap.
func BenchmarkAblationPrefetch(b *testing.B) {
	const procs = 4
	slab := benchN * benchN / procs / 8
	for _, pre := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefetch=%v", pre), func(b *testing.B) {
			runGaxpy(b, "row-slab", procs, gaxpy.Config{
				N: benchN, SlabA: slab, SlabB: slab, Phantom: true,
				Opts: oocarray.Options{Prefetch: pre},
			})
		})
	}
}

// BenchmarkAblationSieve measures the data sieving design choice on
// row-slab transfers.
func BenchmarkAblationSieve(b *testing.B) {
	const procs = 4
	slab := benchN * benchN / procs / 8
	for _, sieve := range []bool{false, true} {
		b.Run(fmt.Sprintf("sieve=%v", sieve), func(b *testing.B) {
			runGaxpy(b, "row-slab", procs, gaxpy.Config{
				N: benchN, SlabA: slab, SlabB: slab, Phantom: true,
				Opts: oocarray.Options{Sieve: sieve},
			})
		})
	}
}

// BenchmarkCompile measures the compiler itself (both phases plus cost
// analysis) on the Figure 3 program.
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
			N: 1024, Procs: 16, MemElems: 1 << 16, Policy: compiler.PolicySearch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledExecution measures the whole pipeline — compile then
// interpret — against the hand-coded runtime path measured above.
func BenchmarkCompiledExecution(b *testing.B) {
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: benchN, Procs: 4, MemElems: benchN * benchN / 4 / 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		out, err := exec.Run(res.Program, sim.Delta(4), exec.Options{Phantom: true})
		if err != nil {
			b.Fatal(err)
		}
		sec = out.Stats.ElapsedSeconds()
	}
	b.ReportMetric(sec, "sim_s")
}

// BenchmarkRealRowSlab measures a real (non-phantom) out-of-core run with
// actual file data movement and arithmetic, at a small size.
func BenchmarkRealRowSlab(b *testing.B) {
	const n, procs = 128, 4
	slab := n * n / procs / 4
	for i := 0; i < b.N; i++ {
		r, err := gaxpy.RunRowSlab(sim.Delta(procs), gaxpy.Config{N: n, SlabA: slab, SlabB: slab})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := r.VerifyC(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLUPanelWidth measures the out-of-core LU application across
// panel widths — the slab-size effect on a second workload.
func BenchmarkLUPanelWidth(b *testing.B) {
	for _, w := range []int{4, 16} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				r, err := lu.Run(sim.Delta(4), lu.Config{N: 128, PanelWidth: w})
				if err != nil {
					b.Fatal(err)
				}
				sec = r.Stats.ElapsedSeconds()
			}
			b.ReportMetric(sec, "sim_s")
		})
	}
}

// BenchmarkEwiseCompiledExecution measures the elementwise pattern
// pipeline end to end.
func BenchmarkEwiseCompiledExecution(b *testing.B) {
	res, err := compiler.CompileSource(hpf.EwiseSource, compiler.Options{
		N: benchN, Procs: 4, MemElems: benchN * 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		out, err := exec.Run(res.Program, sim.Delta(4), exec.Options{Phantom: true})
		if err != nil {
			b.Fatal(err)
		}
		sec = out.Stats.ElapsedSeconds()
	}
	b.ReportMetric(sec, "sim_s")
}

// BenchmarkTransposeMethod measures the collective transpose pipeline per
// destination write strategy — the experiment E9 sweep's cost axis.
func BenchmarkTransposeMethod(b *testing.B) {
	const procs = 4
	for _, method := range []string{"direct", "sieved", "two-phase"} {
		b.Run(method, func(b *testing.B) {
			res, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
				N: benchN, Procs: procs, MemElems: 16 * benchN, Force: method,
			})
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				out, err := exec.Run(res.Program, sim.Delta(procs), exec.Options{Phantom: true})
				if err != nil {
					b.Fatal(err)
				}
				sec = out.Stats.ElapsedSeconds()
			}
			b.ReportMetric(sec, "sim_s")
		})
	}
}
