package passion

// Public facade: the types and entry points a downstream user needs, so
// the library can be consumed as a single import. The implementation
// lives in internal/ packages; the aliases below are the supported
// surface.

import (
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/core"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/experiments"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Core session API.
type (
	// Session couples a machine model with a file system and drives
	// compile-and-run round trips.
	Session = core.Session
	// Outcome bundles a compilation and its execution.
	Outcome = core.Outcome
	// CompileOptions configures the out-of-core compiler.
	CompileOptions = compiler.Options
	// CompileResult is a completed compilation (program, candidates,
	// cost report).
	CompileResult = compiler.Result
	// ExecOptions configures program execution.
	ExecOptions = exec.Options
	// ExecResult is a completed execution.
	ExecResult = exec.Result
	// MachineConfig is the simulated machine model.
	MachineConfig = sim.Config
	// Stats holds per-processor execution statistics.
	Stats = trace.Stats
	// Tracer collects a timeline of typed compute/communication/I/O
	// spans against the simulated clocks.
	Tracer = trace.Tracer
	// Span is one recorded timeline interval or instant.
	Span = trace.Span
	// ExperimentParams parameterizes the evaluation sweeps.
	ExperimentParams = experiments.Params
)

// Memory allocation policies (Section 4.2.1).
const (
	PolicyEven     = compiler.PolicyEven
	PolicyWeighted = compiler.PolicyWeighted
	PolicySearch   = compiler.PolicySearch
)

// NewSession returns a session for a Delta-like machine with the given
// processor count, backed by an in-memory file system.
func NewSession(procs int) *Session { return core.NewSession(procs) }

// NewDiskSession is NewSession backed by real files under dir.
func NewDiskSession(procs int, dir string) (*Session, error) {
	return core.NewDiskSession(procs, dir)
}

// DeltaMachine returns the Intel Touchstone Delta calibration for the
// given processor count.
func DeltaMachine(procs int) MachineConfig { return sim.Delta(procs) }

// ModernMachine returns an NVMe-class node profile.
func ModernMachine(procs int) MachineConfig { return sim.Modern(procs) }

// CompileSource compiles mini-HPF source text.
func CompileSource(src string, opts CompileOptions) (*CompileResult, error) {
	return compiler.CompileSource(src, opts)
}

// NewTracer returns an empty span tracer for ExecOptions.Trace.
func NewTracer(procs int) *Tracer { return trace.NewTracer(procs) }

// GaxpySource is the paper's Figure 3 program.
const GaxpySource = hpf.GaxpySource

// EwiseSource is the built-in elementwise multi-statement program.
const EwiseSource = hpf.EwiseSource

// GaxpyFillA, GaxpyFillB and GaxpyExpected are the deterministic GAXPY
// inputs and the closed form of their product, for verified runs.
var (
	GaxpyFillA = gaxpy.FillA
	GaxpyFillB = gaxpy.FillB
)

// GaxpyExpected returns the closed form of (A*B)(i,j) for the built-in
// inputs at size n.
func GaxpyExpected(n int) func(i, j int) float64 { return gaxpy.CExpected(n) }

// ExperimentNames lists the paper's reproducible artifacts.
var ExperimentNames = core.ExperimentNames

// RunExperiment regenerates a named table or figure; see cmd/ooc-bench.
func RunExperiment(name string, p ExperimentParams) (text, csv string, err error) {
	return core.RunExperiment(name, p)
}
