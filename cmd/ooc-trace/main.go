// ooc-trace analyzes span timelines written by ooc-run: it validates
// the structure, reports per-phase time attribution and the critical
// path through the run, and — given the matching statistics snapshot
// from ooc-run -stats-json — verifies that the spans reconcile exactly
// with the accounted statistics. It reads both the buffered
// Chrome-trace-event JSON (ooc-run -trace) and the streamed NDJSON form
// (ooc-run -trace-stream), auto-detected.
//
// The tail subcommand follows a live span stream from ooc-serve,
// rendering rolling phase and imbalance figures while the job runs.
//
// Usage:
//
//	ooc-trace [flags] trace.json|trace.ndjson
//	ooc-trace tail [flags] http://host:port/jobs/<id>/trace
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "tail" {
		tailMain(os.Args[2:])
		return
	}
	var (
		reconcile = flag.String("reconcile", "", "stats snapshot JSON (from ooc-run -stats-json) to reconcile the spans against")
		topK      = flag.Int("top", 5, "how many bottleneck contributors to list")
		validate  = flag.Bool("validate", true, "check the trace structure before analyzing")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-trace"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ooc-trace [flags] trace.json|trace.ndjson")
		fmt.Fprintln(os.Stderr, "       ooc-trace tail [flags] <url>/jobs/<id>/trace")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var (
		spans   []trace.Span
		procs   int
		dropped int64
	)
	if isChromeTrace(data) {
		if *validate {
			if err := trace.ValidateChromeTrace(data); err != nil {
				fatal(err)
			}
			fmt.Println("validate: well-formed Chrome trace-event JSON")
		}
		spans, procs, dropped, err = trace.ParseChromeTraceInfo(data)
	} else {
		spans, procs, dropped, err = trace.ParseNDJSON(bytes.NewReader(data))
		if err == nil && *validate {
			fmt.Println("validate: well-formed NDJSON span stream")
		}
	}
	if err != nil {
		fatal(err)
	}
	if dropped > 0 {
		fmt.Printf("WARNING: the trace records %d dropped span(s); it is incomplete\n", dropped)
	}

	elapsed := 0.0
	for _, s := range spans {
		if !s.Deferred && s.End() > elapsed {
			elapsed = s.End()
		}
	}
	if *reconcile != "" {
		// A trace with recorded drops cannot reconcile: spans are
		// missing by construction. Fail loudly instead of reporting a
		// misleading counter mismatch (or, worse, an accidental match).
		if dropped > 0 {
			fatal(fmt.Errorf("reconcile: refusing — the trace itself records %d dropped span(s), so the export is incomplete", dropped))
		}
		sdata, err := os.ReadFile(*reconcile)
		if err != nil {
			fatal(err)
		}
		var snap trace.Snapshot
		if err := json.Unmarshal(sdata, &snap); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *reconcile, err))
		}
		stats := &trace.Stats{Procs: snap.Procs}
		if err := trace.Reconcile(spans, stats, nil); err != nil {
			fatal(err)
		}
		fmt.Println("reconcile: spans replay to the accounted statistics exactly")
		elapsed = snap.ElapsedSeconds
	}

	fmt.Printf("trace: %d spans over %d ranks, %.4fs simulated\n", len(spans), procs, elapsed)
	fmt.Print(trace.FormatPhaseReport(trace.PhaseReport(spans, procs, elapsed), elapsed))
	segs, pathElapsed := trace.CriticalPath(spans, procs)
	fmt.Print(trace.FormatCriticalPath(segs, pathElapsed, *topK))
}

// isChromeTrace sniffs the buffered export's envelope; anything else is
// treated as an NDJSON stream.
func isChromeTrace(data []byte) bool {
	return bytes.HasPrefix(bytes.TrimSpace(data), []byte(`{"traceEvents"`))
}

// tailMain follows a live SSE span stream from ooc-serve, printing a
// rolling phase/imbalance line as spans arrive and the full phase
// report once the stream ends.
func tailMain(args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	every := fs.Int("every", 200, "refresh the rolling phase line every this many spans")
	topK := fs.Int("top", 5, "how many bottleneck contributors to list at the end")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Parse(args)
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-trace"))
		return
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ooc-trace tail [flags] <url>/jobs/<id>/trace")
		fs.PrintDefaults()
		os.Exit(2)
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "follow=") {
		if strings.Contains(url, "?") {
			url += "&follow=1"
		} else {
			url += "?follow=1"
		}
	}
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		fatal(fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(body.String())))
	}

	var (
		spans   []trace.Span
		procs   int
		dropped int64
		trailer *trace.StreamTrailer
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ended := false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: end" {
			ended = true
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok || ended || strings.TrimSpace(data) == "" || data == "{}" {
			continue
		}
		s, tr, perr := trace.UnmarshalSpanLine([]byte(data))
		if perr != nil {
			fatal(perr)
		}
		if tr != nil {
			trailer = tr
			dropped = tr.Dropped
			continue
		}
		spans = append(spans, s)
		if s.Rank+1 > procs {
			procs = s.Rank + 1
		}
		if *every > 0 && len(spans)%*every == 0 {
			fmt.Print(rollingLine(spans, procs))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	elapsed := 0.0
	for _, s := range spans {
		if !s.Deferred && s.End() > elapsed {
			elapsed = s.End()
		}
	}
	fmt.Printf("tail: stream ended: %d spans over %d ranks, %.4fs simulated\n", len(spans), procs, elapsed)
	if trailer != nil && trailer.Spans != int64(len(spans)) {
		fatal(fmt.Errorf("tail: trailer says %d spans but the stream carried %d", trailer.Spans, len(spans)))
	}
	if dropped > 0 {
		fmt.Printf("tail: WARNING: %d span(s) dropped on the producer side; the stream is incomplete\n", dropped)
	}
	fmt.Print(trace.FormatPhaseReport(trace.PhaseReport(spans, procs, elapsed), elapsed))
	segs, pathElapsed := trace.CriticalPath(spans, procs)
	fmt.Print(trace.FormatCriticalPath(segs, pathElapsed, *topK))
}

// rollingLine condenses the running phase attribution into one line:
// span count, top phases by share, and the worst per-phase imbalance.
func rollingLine(spans []trace.Span, procs int) string {
	elapsed := 0.0
	for _, s := range spans {
		if !s.Deferred && s.End() > elapsed {
			elapsed = s.End()
		}
	}
	shares := trace.PhaseReport(spans, procs, elapsed)
	var b strings.Builder
	fmt.Fprintf(&b, "tail: %6d spans %9.3fs", len(spans), elapsed)
	worst := 0.0
	for i, sh := range shares {
		if i < 3 {
			fmt.Fprintf(&b, " | %s %.0f%%", sh.Phase, sh.Pct)
		}
		if sh.Imbalance > worst {
			worst = sh.Imbalance
		}
	}
	fmt.Fprintf(&b, " | imbalance %.2f\n", worst)
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-trace:", err)
	os.Exit(1)
}
