// ooc-trace analyzes a Chrome-trace-event timeline written by
// ooc-run -trace: it validates the JSON structure, reports per-phase
// time attribution and the critical path through the run, and — given
// the matching statistics snapshot from ooc-run -stats-json — verifies
// that the spans reconcile exactly with the accounted statistics.
//
// Usage:
//
//	ooc-trace [flags] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/ooc-hpf/passion/internal/trace"
)

func main() {
	var (
		reconcile = flag.String("reconcile", "", "stats snapshot JSON (from ooc-run -stats-json) to reconcile the spans against")
		topK      = flag.Int("top", 5, "how many bottleneck contributors to list")
		validate  = flag.Bool("validate", true, "check the trace-event JSON structure before analyzing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ooc-trace [flags] trace.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := trace.ValidateChromeTrace(data); err != nil {
			fatal(err)
		}
		fmt.Println("validate: well-formed Chrome trace-event JSON")
	}
	spans, procs, err := trace.ParseChromeTrace(data)
	if err != nil {
		fatal(err)
	}

	elapsed := 0.0
	for _, s := range spans {
		if !s.Deferred && s.End() > elapsed {
			elapsed = s.End()
		}
	}
	if *reconcile != "" {
		sdata, err := os.ReadFile(*reconcile)
		if err != nil {
			fatal(err)
		}
		var snap trace.Snapshot
		if err := json.Unmarshal(sdata, &snap); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *reconcile, err))
		}
		stats := &trace.Stats{Procs: snap.Procs}
		if err := trace.Reconcile(spans, stats, nil); err != nil {
			fatal(err)
		}
		fmt.Println("reconcile: spans replay to the accounted statistics exactly")
		elapsed = snap.ElapsedSeconds
	}

	fmt.Printf("trace: %d spans over %d ranks, %.4fs simulated\n", len(spans), procs, elapsed)
	fmt.Print(trace.FormatPhaseReport(trace.PhaseReport(spans, procs, elapsed), elapsed))
	segs, pathElapsed := trace.CriticalPath(spans, procs)
	fmt.Print(trace.FormatCriticalPath(segs, pathElapsed, *topK))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-trace:", err)
	os.Exit(1)
}
