// ooc-bench regenerates the paper's evaluation artifacts — Figure 10,
// Table 1, Table 2, the Equations 3-6 validation and the design-choice
// ablations — on the simulated Touchstone Delta.
//
// Usage:
//
//	ooc-bench -experiment all                # paper scale, accounting mode
//	ooc-bench -experiment table1 -n 256      # reduced scale
//	ooc-bench -experiment table1 -real -n 256 # real data movement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/core"
	"github.com/ooc-hpf/passion/internal/experiments"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/serve"
	"github.com/ooc-hpf/passion/internal/serve/loadtest"
	"github.com/ooc-hpf/passion/internal/wallbench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig10, table1, table2, eqcheck, ablations, compiled, lu, twophase, disksurvival, ranksurvival or all")
		n          = flag.Int("n", 0, "matrix extent (0 = the paper's scale per experiment)")
		procsList  = flag.String("procs", "", "comma-separated processor counts (default per experiment)")
		ratioList  = flag.String("ratios", "", "comma-separated slab-ratio denominators, e.g. 8,4,2,1")
		real       = flag.Bool("real", false, "move real data and do real arithmetic (slow at paper scale)")
		sieve      = flag.Bool("sieve", false, "enable data sieving in the runtime")
		prefetch   = flag.Bool("prefetch", false, "enable prefetching in the runtime")
		csvPath    = flag.String("csv", "", "also write CSV output to this file (table1/fig10/table2)")
		machine    = flag.String("machine", "delta", "machine model: delta (paper calibration) or modern (NVMe-class)")

		wallclock    = flag.Bool("wallclock", false, "run the wall-clock benchmark suite instead of the paper experiments")
		wallKernels  = flag.String("wallclock-kernels", "", "comma-separated kernel subset (default: all)")
		wallOut      = flag.String("wallclock-out", "", "write the wall-clock report to this JSON file")
		wallBaseline = flag.String("wallclock-baseline", "", "compare against this committed baseline and fail on regression")
		wallNsFactor = flag.Float64("wallclock-ns-factor", 2.0, "allowed ns/op slowdown factor vs the baseline")

		serveMode     = flag.Bool("serve", false, "drive an in-process ooc-serve with concurrent jobs instead of the paper experiments")
		serveJobs     = flag.Int("serve-jobs", 500, "total jobs to submit in -serve mode")
		serveConc     = flag.Int("serve-concurrency", 32, "concurrent submitters in -serve mode")
		serveTenants  = flag.Int("serve-tenants", 4, "tenant names the load is spread over")
		serveWorkers  = flag.Int("serve-workers", 4, "server worker pool size in -serve mode")
		serveGate     = flag.Bool("serve-gate", false, "fail unless every job completed and the cache hit ratio clears -serve-hit-ratio")
		serveHitRatio = flag.Float64("serve-hit-ratio", 0.9, "minimum cache hit ratio for -serve-gate")
		serveJournal  = flag.String("serve-journal", "", "journal the served jobs: 'mem' for an in-memory store, else a directory path (empty disables)")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-bench"))
		return
	}

	if *wallclock {
		runWallclock(*wallKernels, *wallOut, *wallBaseline, *wallNsFactor)
		return
	}
	if *serveMode {
		runServe(*serveJobs, *serveConc, *serveTenants, *serveWorkers, *serveGate, *serveHitRatio, *serveJournal)
		return
	}

	params := experiments.Params{
		N:    *n,
		Real: *real,
		Opts: oocarray.Options{Sieve: *sieve, Prefetch: *prefetch},
	}
	var err error
	if params.Machine, err = cliutil.MachineFor(*machine); err != nil {
		fatal(err)
	}
	if params.Procs, err = cliutil.ParseInts(*procsList); err != nil {
		fatal(err)
	}
	if params.Ratios, err = cliutil.ParseInts(*ratioList); err != nil {
		fatal(err)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = core.ExperimentNames
	}
	for _, name := range names {
		text, csv, err := core.RunExperiment(name, params)
		if text != "" {
			fmt.Printf("=== %s ===\n%s\n", name, text)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *csvPath != "" && csv != "" {
			path := *csvPath
			if len(names) > 1 {
				path = strings.TrimSuffix(path, ".csv") + "-" + name + ".csv"
			}
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}
}

// runWallclock runs the wall-clock suite (the cost of the simulator
// itself, not the simulated machine), optionally writing the report and
// gating it against a committed baseline.
func runWallclock(kernels, out, baseline string, nsFactor float64) {
	var names []string
	if kernels != "" {
		names = strings.Split(kernels, ",")
	}
	rep, err := wallbench.RunSuite(names)
	if err != nil {
		fatal(err)
	}
	text, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", text)
	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wallbench: report written to %s\n", out)
	}
	if baseline != "" {
		base, err := wallbench.LoadReport(baseline)
		if err != nil {
			fatal(err)
		}
		if err := wallbench.Compare(rep, base, nsFactor); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wallbench: within baseline %s (ns/op factor %.1f, allocs exact)\n", baseline, nsFactor)
	}
}

// runServe starts an in-process ooc-serve, floods it with the loadtest
// mix over HTTP, and prints the report; with gate on, a lost job or a
// cold cache fails the run. A journal store makes every submission
// durable and tags each job with an idempotency key, gating the
// journaled write path under the same load.
func runServe(jobs, concurrency, tenants, workers int, gate bool, minHitRatio float64, journal string) {
	cfg := serve.Config{Workers: workers}
	if journal != "" {
		var jfs iosim.FS
		if journal == "mem" {
			jfs = iosim.NewMemFS()
		} else {
			osfs, err := iosim.NewOSFS(journal)
			if err != nil {
				fatal(err)
			}
			jfs = osfs
		}
		cfg.Journal = &serve.JournalConfig{FS: jfs}
	}
	s, err := serve.Open(cfg)
	if err != nil {
		fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	rep, err := loadtest.Run(ts.URL, loadtest.Config{
		Jobs:            jobs,
		Concurrency:     concurrency,
		Tenants:         tenants,
		IdempotencyKeys: journal != "",
	})
	ts.Close()
	s.Close()
	if rep != nil {
		text, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Printf("%s\n", text)
	}
	if err != nil {
		fatal(err)
	}
	if gate {
		if err := loadtest.Gate(rep, minHitRatio); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serve: %d jobs completed, 0 errors, cache hit ratio %.3f (gate %.3f)\n",
			rep.Completed, rep.CacheHitRatio, minHitRatio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-bench:", err)
	os.Exit(1)
}
