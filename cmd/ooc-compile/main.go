// ooc-compile translates a mini-HPF program into an out-of-core node
// program, printing the in-core phase analysis, the I/O cost estimates of
// every candidate access reorganization, and the selected node + MP + I/O
// pseudo-code (the tool-side view of the paper's Figures 9/12/14).
//
// Usage:
//
//	ooc-compile [flags] [source.hpf]
//
// With no source file the built-in GAXPY program of the paper's Figure 3
// is compiled.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
)

func main() {
	var (
		n       = flag.Int("n", 0, "override the problem size n (0 keeps the program's parameter)")
		procs   = flag.Int("procs", 0, "override the processor count (0 keeps the program's parameter)")
		mem     = flag.Int("mem", 1<<16, "node memory for slabs, in array elements")
		policy  = flag.String("policy", "weighted", "memory allocation policy: even, weighted, search")
		force   = flag.String("force", "", "force a strategy: row-slab/column-slab, or direct/sieved/two-phase for transpose (default: cost model decides)")
		sieve   = flag.Bool("sieve", false, "compile row-slab transfers to use data sieving")
		showBC  = flag.Bool("bytecode", false, "also lower the plan to its opcode stream and print the disassembly")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-compile"))
		return
	}

	src := hpf.GaxpySource
	name := "builtin gaxpy (Figure 3)"
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
		name = flag.Arg(0)
	}

	var pol compiler.MemPolicy
	switch *policy {
	case "even":
		pol = compiler.PolicyEven
	case "weighted":
		pol = compiler.PolicyWeighted
	case "search":
		pol = compiler.PolicySearch
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	res, err := compiler.CompileSource(src, compiler.Options{
		N: *n, Procs: *procs, MemElems: *mem, Policy: pol, Force: *force, Sieve: *sieve,
	})
	if err != nil {
		fatal(err)
	}

	an := res.Analysis
	fmt.Printf("source: %s\n", name)
	fmt.Printf("in-core phase: n=%d over %d processors, pattern: %s\n", an.N, an.Procs, an.Pattern)
	switch an.Pattern {
	case compiler.PatternGaxpy:
		for name, m := range map[string]string{
			an.A: "A (section operand)", an.B: "B (scalar operand)",
			an.C: "C (result)", an.Temp: "temp (FORALL target)",
		} {
			fmt.Printf("  %-6s role %-22s mapping %s\n", name, m, an.Mappings[name])
		}
	case compiler.PatternEwise:
		for i, st := range an.Ewise.Stmts {
			fmt.Printf("  statement %d: %s = %s (inputs: %v)\n", i+1, st.Out, st.Expr.String(), st.Ins)
		}
		for _, a := range an.Ewise.Arrays {
			fmt.Printf("  %-6s mapping %s\n", a, an.Mappings[a])
		}
	case compiler.PatternShift:
		for i, st := range an.Shift.Stmts {
			fmt.Printf("  statement %d: %s(:,k) = %s for k in %d..%d (shifts %d..%d, inputs: %v)\n",
				i+1, st.Out, st.Expr.String(), st.Lo+1, st.Hi+1, st.MinShift, st.MaxShift, st.Ins)
		}
		for _, a := range an.Shift.Arrays {
			fmt.Printf("  %-6s mapping %s\n", a, an.Mappings[a])
		}
	case compiler.PatternTranspose:
		for _, a := range []string{an.Transpose.Src, an.Transpose.Dst} {
			fmt.Printf("  %-6s mapping %s\n", a, an.Mappings[a])
		}
	}
	fmt.Printf("  communication: %s\n\n", an.Comm)
	fmt.Printf("out-of-core phase: candidate access reorganizations\n%s\n", res.Report)
	fmt.Printf("selected node + MP + I/O program:\n\n%s", res.Program.String())

	if *showBC {
		bc, err := bytecode.Compile(res.Program)
		if err != nil {
			fatal(err)
		}
		enc := bytecode.Encode(bc)
		fmt.Printf("\nbytecode (%d instructions, %d bytes encoded):\n\n%s",
			len(bc.Code), len(enc), bc.Disassemble())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-compile:", err)
	os.Exit(1)
}
