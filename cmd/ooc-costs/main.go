// ooc-costs prints the analytic I/O cost model of Section 4.1 — the
// compiler-side view with no execution: for each (N, P, slab ratio)
// configuration, the Equations 3-6 closed forms for both translations and
// the strategy the Figure 14 algorithm selects.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/sim"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "matrix extent")
		procsList = flag.String("procs", "4,16,32,64", "comma-separated processor counts")
		ratioList = flag.String("ratios", "8,4,2,1", "comma-separated slab-ratio denominators")
		sieve     = flag.Bool("sieve", false, "model row slabs with data sieving")
	)
	flag.Parse()

	procs, err := cliutil.ParseInts(*procsList)
	if err != nil {
		fatal(err)
	}
	ratios, err := cliutil.ParseInts(*ratioList)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Analytic I/O cost model, %dx%d GAXPY (per-processor metrics)\n", *n, *n)
	fmt.Printf("%-5s %-6s %16s %16s %16s %16s %12s\n",
		"P", "ratio", "col T_fetch(A)", "col T_data(A)", "row T_fetch(A)", "row T_data(A)", "selected")
	for _, p := range procs {
		mach := sim.Delta(p)
		for _, r := range ratios {
			ocla := *n * *n / p
			m := ocla / r
			g := cost.GaxpyParams{N: *n, P: p, SlabA: m, SlabB: m, SlabC: m, Sieve: *sieve}
			cands := cost.GaxpyCandidates(g)
			col, row := cands[0].Streams[0], cands[1].Streams[0]
			sel := cands[cost.Select(cands, mach)].Label
			fmt.Printf("%-5d %-6s %16d %16d %16d %16d %12s\n",
				p, cliutil.RatioLabel(r), col.Fetches(), col.Elems(), row.Fetches(), row.Elems(), sel)
		}
	}
	fmt.Println("\nT_fetch in slab transfers, T_data in elements; Equations 3-6 of the paper.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-costs:", err)
	os.Exit(1)
}
