// ooc-costs prints the analytic I/O cost model of Section 4.1 — the
// compiler-side view with no execution: for each (N, P, slab ratio)
// configuration, the Equations 3-6 closed forms for both translations and
// the strategy the Figure 14 algorithm selects.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/sim"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "matrix extent")
		procsList = flag.String("procs", "4,16,32,64", "comma-separated processor counts")
		ratioList = flag.String("ratios", "8,4,2,1", "comma-separated slab-ratio denominators")
		sieve     = flag.Bool("sieve", false, "model row slabs with data sieving")
		parity    = flag.Bool("parity", false, "also price the candidates with parity-protected output files")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-costs"))
		return
	}

	procs, err := cliutil.ParseInts(*procsList)
	if err != nil {
		fatal(err)
	}
	ratios, err := cliutil.ParseInts(*ratioList)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Analytic I/O cost model, %dx%d GAXPY (per-processor metrics)\n", *n, *n)
	fmt.Printf("%-5s %-6s %16s %16s %16s %16s %12s\n",
		"P", "ratio", "col T_fetch(A)", "col T_data(A)", "row T_fetch(A)", "row T_data(A)", "selected")
	for _, p := range procs {
		mach := sim.Delta(p)
		for _, r := range ratios {
			ocla := *n * *n / p
			m := ocla / r
			g := cost.GaxpyParams{N: *n, P: p, SlabA: m, SlabB: m, SlabC: m, Sieve: *sieve}
			cands := cost.GaxpyCandidates(g)
			col, row := cands[0].Streams[0], cands[1].Streams[0]
			sel := cands[cost.Select(cands, mach)].Label
			fmt.Printf("%-5d %-6s %16d %16d %16d %16d %12s\n",
				p, cliutil.RatioLabel(r), col.Fetches(), col.Elems(), row.Fetches(), row.Elems(), sel)
		}
	}
	fmt.Println("\nT_fetch in slab transfers, T_data in elements; Equations 3-6 of the paper.")

	fmt.Printf("\nCollective transpose candidates, %dx%d (per-processor requests / estimated I/O+comm seconds)\n", *n, *n)
	fmt.Printf("%-5s %-6s %20s %20s %20s %12s\n",
		"P", "ratio", "direct", "sieved", "two-phase", "selected")
	for _, p := range procs {
		if *n%p != 0 {
			continue
		}
		mach := sim.Delta(p)
		for _, r := range ratios {
			m := *n * *n / p / r
			cands := cost.TransposeCandidates(cost.TransposeParams{N: *n, P: p, MemElems: m})
			sel := cands[cost.Select(cands, mach)].Label
			cell := func(c cost.Candidate) string {
				return fmt.Sprintf("%9d /%8.2fs", c.TotalRequests(), c.Seconds(mach))
			}
			fmt.Printf("%-5d %-6s %20s %20s %20s %12s\n",
				p, cliutil.RatioLabel(r), cell(cands[0]), cell(cands[1]), cell(cands[2]), sel)
		}
	}
	fmt.Println("\nTranspose candidates share the contiguous source reads and the all-to-all")
	fmt.Println("shuffle; they differ in the destination write strategy (see internal/collio).")

	if *parity {
		fmt.Printf("\nParity protection overhead, %dx%d GAXPY (per-processor, read-modify-write on the output stream)\n", *n, *n)
		fmt.Printf("%-5s %-6s %-12s %12s %12s %12s %12s %9s\n",
			"P", "ratio", "candidate", "base reqs", "+parity reqs", "base s", "protected s", "overhead")
		for _, p := range procs {
			mach := sim.Delta(p)
			for _, r := range ratios {
				ocla := *n * *n / p
				m := ocla / r
				g := cost.GaxpyParams{N: *n, P: p, SlabA: m, SlabB: m, SlabC: m, Sieve: *sieve}
				for _, c := range cost.GaxpyCandidates(g) {
					base := c.Seconds(mach)
					o := cost.ParityForCandidate(mach, p, c)
					fmt.Printf("%-5d %-6s %-12s %12d %12d %11.2fs %11.2fs %8.1f%%\n",
						p, cliutil.RatioLabel(r), c.Label,
						c.TotalRequests(), o.Requests(),
						base, base+o.Seconds(mach), 100*o.Seconds(mach)/base)
				}
			}
		}
		fmt.Println("\nProtected seconds add the closed-form RMW charge of internal/cost.ParityForCandidate;")
		fmt.Println("a fault-free run with -parity reproduces these extra requests exactly.")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-costs:", err)
	os.Exit(1)
}
