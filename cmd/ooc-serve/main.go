// ooc-serve runs the multi-tenant compile-and-run service: POST a job
// to /jobs and get back the execution statistics the CLI would have
// printed, bitwise identical to a direct run.
//
// Usage:
//
//	ooc-serve -addr :8080 -workers 4 -mem-budget-mb 1024
//	curl -s localhost:8080/jobs -d '{"n":64,"procs":4}'
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, new
// submissions are rejected, in-flight and queued jobs finish (up to
// -drain-timeout), then the process exits.
//
// With -journal DIR every accepted job is recorded in a write-ahead
// journal under DIR before it runs. After a crash (kill -9, power
// loss), restarting with the same -journal replays the journal: queued
// jobs are re-admitted, checkpointed in-flight jobs resume from their
// last durable checkpoint, and retried submissions carrying the same
// idempotency_key deduplicate against retained outcomes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "concurrent job executions")
		queueLimit   = flag.Int("queue", 1024, "maximum queued jobs")
		cacheEntries = flag.Int("cache", 128, "compiled-plan LRU capacity")
		budgetMB     = flag.Int64("mem-budget-mb", 1024, "host-memory budget for inflight jobs, in MiB")
		timeout      = flag.Duration("timeout", time.Minute, "default per-job execution deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
		journalDir   = flag.String("journal", "", "write-ahead journal directory (empty disables durability)")
		logFormat    = flag.String("log", "text", "structured job-log format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-serve"))
		return
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueLimit:     *queueLimit,
		CacheEntries:   *cacheEntries,
		MemoryBudget:   *budgetMB << 20,
		DefaultTimeout: *timeout,
		Logger:         logger,
		Pprof:          *pprofOn,
	}
	if *journalDir != "" {
		jfs, err := iosim.NewOSFS(*journalDir)
		if err != nil {
			fatal(err)
		}
		cfg.Journal = &serve.JournalConfig{FS: jfs}
	}
	s, err := serve.Open(cfg)
	if err != nil {
		fatal(err)
	}
	if *journalDir != "" {
		j := s.MetricsSnapshot().Journal
		logger.Info("journal recovered",
			"dir", *journalDir, "replayed", j.ReplayedJobs,
			"resumed", j.ResumedJobs, "truncated_tails", j.TruncatedTails)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("ooc-serve: listening on %s (%d workers, %d MiB budget)\n", *addr, *workers, *budgetMB)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("ooc-serve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	m := s.MetricsSnapshot()
	fmt.Printf("ooc-serve: drained; %d completed, %d failed, %d cancelled, cache hit ratio %.3f\n",
		m.Completed, m.Failed, m.Cancelled, m.Cache.HitRatio)
	if drainErr != nil {
		fatal(fmt.Errorf("drain: %w", drainErr))
	}
}

// buildLogger assembles the structured job logger from the -log and
// -log-level flags. Logs go to stderr so the startup/drain lines on
// stdout stay machine-greppable on their own.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log %q: want text or json", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-serve:", err)
	os.Exit(1)
}
