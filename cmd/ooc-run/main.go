// ooc-run compiles a mini-HPF program and executes it on the simulated
// distributed memory machine, with real out-of-core I/O through local
// array files, then reports the execution statistics and (for the
// built-in GAXPY inputs) verifies the result.
//
// Usage:
//
//	ooc-run [flags] [source.hpf]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 256, "problem size n (overrides the program parameter)")
		procs    = flag.Int("procs", 4, "processor count")
		mem      = flag.Int("mem", 1<<15, "node memory for slabs, in elements")
		force    = flag.String("force", "", "force a strategy: row-slab/column-slab, or direct/sieved/two-phase for transpose")
		dataDir  = flag.String("datadir", "", "keep local array files under this directory (default: in memory)")
		verify   = flag.Bool("verify", true, "check the result against the closed form")
		timeline = flag.Bool("timeline", false, "print an ASCII timeline, phase attribution and critical path")
		asJSON   = flag.Bool("json", false, "print the execution statistics as JSON")

		traceOut    = flag.String("trace", "", "write a Chrome-trace-event (Perfetto) JSON timeline to this file")
		traceStream = flag.String("trace-stream", "", "write spans incrementally as NDJSON to this file while the run executes")
		statsJSON   = flag.String("stats-json", "", "write the execution statistics snapshot as JSON to this file")

		resume   = flag.Bool("resume", false, "resume from the last checkpoint in -datadir instead of starting fresh")
		useBC    = flag.Bool("bytecode", false, "execute through the compiled opcode stream instead of the plan-tree walk")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	var rf cliutil.RunFlags
	rf.Register(nil)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ooc-run"))
		return
	}

	src := hpf.GaxpySource
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	res, err := compiler.CompileSource(src, compiler.Options{
		N: *n, Procs: *procs, MemElems: *mem, Force: *force, Sieve: rf.Sieve,
		Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiled %s: strategy %s on %d processors, n=%d\n",
		res.Program.Name, res.Program.Strategy, res.Program.Procs, res.Program.N)
	var bc *bytecode.Program
	if *useBC {
		bc, err = bytecode.Compile(res.Program)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lowered to bytecode: %d instructions, %d expression programs, %s encoded\n",
			len(bc.Code), len(bc.Exprs), cliutil.FormatBytes(int64(len(bytecode.Encode(bc)))))
	}

	var baseFS iosim.FS
	if *dataDir != "" {
		osfs, err := iosim.NewOSFS(*dataDir)
		if err != nil {
			fatal(err)
		}
		baseFS = osfs
	} else if *resume {
		fatal(fmt.Errorf("-resume needs -datadir: an in-memory run leaves no checkpoint behind"))
	}

	eopts, chaosFS, err := rf.Build(baseFS, *resume)
	if err != nil {
		fatal(err)
	}
	resil := eopts.Resilience
	an := res.Analysis
	var tracer *trace.Tracer
	if *timeline || *traceOut != "" || *traceStream != "" {
		tracer = trace.NewTracer(res.Program.Procs)
	}
	if *traceStream != "" {
		f, err := os.Create(*traceStream)
		if err != nil {
			fatal(err)
		}
		// Blocking hand-off: the stream goes to a local file we own, so
		// a lossless, exactly-reconciling stream beats shedding spans
		// under burst. The file is an io.Closer, so CloseSink closes it
		// after the trailer line.
		tracer.SetSinkBlocking(trace.NewNDJSONSink(f), 0)
	}
	eopts.Fill = cliutil.FillsFor(res)
	eopts.Trace = tracer
	eopts.Bytecode = bc
	var out *exec.Result
	if len(eopts.Kill) > 0 {
		// An injected fail-stop loss: detect via heartbeats, agree, rebuild
		// the dead rank's disk from parity, and resume from the checkpoint.
		eopts.Detect = &mp.Detector{Heartbeat: 1e-3, Misses: 3}
		var rout *exec.ResilientResult
		rout, err = exec.RunResilient(res.Program, sim.Delta(res.Program.Procs), eopts, len(eopts.Kill))
		if err == nil {
			out = rout.Result
			// The surviving attempt's tracer carries the spans (and the
			// adopted stream sink); the pre-run tracer was never used.
			tracer = rout.Trace
			for i, rec := range rout.Recoveries {
				fmt.Printf("recovery %d: lost rank(s) %v; rebuilt %d file(s) (%d blocks, %s) in %.4fs simulated; resumed from checkpoint\n",
					i+1, rec.Failed, rec.RebuildIO.Reconstructions, rec.RebuildIO.ReconstructedBlocks,
					cliutil.FormatBytes(rec.RebuildIO.ReconstructedBytes), rec.RebuildSeconds)
			}
			fmt.Printf("survived %d rank failure(s) in %d attempt(s)\n", len(rout.Recoveries), rout.Attempts)
		}
	} else {
		runner := exec.Run
		if *resume {
			runner = exec.Resume
		}
		out, err = runner(res.Program, sim.Delta(res.Program.Procs), eopts)
	}
	if chaosFS != nil {
		c := chaosFS.Counts()
		fmt.Printf("chaos: %d ops, injected %d transient, %d permanent, %d corruptions, %d short reads, %d short writes, %d disk losses\n",
			c.Ops, c.Transient, c.Permanent, c.Corruptions, c.ShortReads, c.ShortWrites, c.DiskLosses)
	}
	if tracer != nil {
		// Drain and finalize the NDJSON stream (trailer line with span
		// and drop counts) whether the run succeeded or not.
		if serr := tracer.CloseSink(); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fatalChain(err)
	}
	if *traceStream != "" {
		fmt.Printf("trace: streamed spans to %s (NDJSON)\n", *traceStream)
	}
	if resil != nil {
		io := out.Stats.TotalIO()
		fmt.Printf("resilience: %d retries (%.4fs simulated backoff), %d corruptions detected, %d give-ups\n",
			io.Retries, io.RetrySeconds, io.Corruptions, io.GiveUps)
	}
	if rf.Parity {
		io := out.Stats.TotalIO()
		comm := out.Stats.TotalComm()
		fmt.Printf("parity: %d reads, %d writes (%s in, %s out) of redundancy maintenance\n",
			io.ParityReads, io.ParityWrites,
			cliutil.FormatBytes(io.ParityBytesRead), cliutil.FormatBytes(io.ParityBytesWritten))
		if io.Reconstructions > 0 || io.ParityRebuilds > 0 {
			fmt.Printf("recovery: %d files reconstructed (%d blocks, %s) via %d gather messages (%s); %d parity blocks rebuilt\n",
				io.Reconstructions, io.ReconstructedBlocks, cliutil.FormatBytes(io.ReconstructedBytes),
				comm.RecoveryMessages, cliutil.FormatBytes(comm.RecoveryBytes), io.ParityRebuilds)
		}
		if ps := out.ParityStore(); ps != nil && ps.Degraded() {
			fmt.Println("recovery: the run survived in degraded mode; full redundancy was rebuilt before completion")
		}
	}
	if *timeline {
		fmt.Print(tracer.Gantt(res.Program.Procs, 100))
		fmt.Printf("time by activity:\n%s", tracer.Summary())
		spans := tracer.Spans()
		elapsed := out.Stats.ElapsedSeconds()
		fmt.Print(trace.FormatPhaseReport(trace.PhaseReport(spans, res.Program.Procs, elapsed), elapsed))
		segs, pathElapsed := trace.CriticalPath(spans, res.Program.Procs)
		fmt.Print(trace.FormatCriticalPath(segs, pathElapsed, 5))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.ExportChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
	if *statsJSON != "" {
		data, err := json.MarshalIndent(out.Stats.Snapshot(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*statsJSON, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("stats: wrote %s\n", *statsJSON)
	}

	if *asJSON {
		data, err := json.MarshalIndent(out.Stats, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	}
	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf("trace: WARNING: %d span(s) dropped; exports and streams are incomplete\n", d)
		} else {
			fmt.Printf("trace: %d spans, 0 dropped\n", len(tracer.Spans()))
		}
	}
	fmt.Printf("simulated execution: %s\n", out.Stats)
	for _, ps := range out.Stats.Procs {
		fmt.Printf("  proc %2d: %10.2fs | io %8.2fs (%6d reqs, %s) | comm %6.2fs | compute %8.2fs\n",
			ps.Proc, ps.Seconds, ps.IO.Seconds, ps.IO.Requests(),
			cliutil.FormatBytes(ps.IO.Bytes()), ps.Comm.Seconds, ps.ComputeSeconds)
	}
	totalIO := out.Stats.TotalIO()
	fmt.Printf("io request sizes: reads %s | writes %s\n",
		totalIO.ReadSizes.String(), totalIO.WriteSizes.String())
	if comm := out.Stats.TotalComm(); comm.ShuffleMessages > 0 {
		fmt.Printf("collective shuffle: %d messages, %s\n",
			comm.ShuffleMessages, cliutil.FormatBytes(comm.ShuffleBytes))
	}

	if *verify && !rf.Phantom && res.Analysis.Pattern == compiler.PatternGaxpy {
		c, err := out.ReadArray(an.C)
		if err != nil {
			fatal(err)
		}
		want := gaxpy.CExpected(res.Program.N)
		for j := 0; j < c.Cols; j++ {
			for i := 0; i < c.Rows; i++ {
				if c.At(i, j) != want(i, j) {
					fatal(fmt.Errorf("verification failed at C(%d,%d): %g != %g", i, j, c.At(i, j), want(i, j)))
				}
			}
		}
		fmt.Printf("verification: C matches the closed form exactly (%dx%d elements)\n", c.Rows, c.Cols)
	}
	if *verify && !rf.Phantom && res.Analysis.Pattern == compiler.PatternTranspose {
		b, err := out.ReadArray(an.Transpose.Dst)
		if err != nil {
			fatal(err)
		}
		fill := eopts.Fill[an.Transpose.Src]
		for j := 0; j < b.Cols; j++ {
			for i := 0; i < b.Rows; i++ {
				if b.At(i, j) != fill(j, i) {
					fatal(fmt.Errorf("verification failed at %s(%d,%d): %g != %g",
						an.Transpose.Dst, i, j, b.At(i, j), fill(j, i)))
				}
			}
		}
		fmt.Printf("verification: %s is the exact transpose of %s (%dx%d elements)\n",
			an.Transpose.Dst, an.Transpose.Src, b.Rows, b.Cols)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ooc-run:", err)
	os.Exit(1)
}

// fatalChain reports an unrecoverable execution error and exits non-zero.
// Joined fault chains (errors.Join of the original fault and everything
// the recovery path ran into) print one cause per line, so the full
// failure story survives into the exit message.
func fatalChain(err error) {
	fmt.Fprintln(os.Stderr, "ooc-run: unrecoverable:")
	for _, line := range strings.Split(err.Error(), "\n") {
		fmt.Fprintln(os.Stderr, "  "+line)
	}
	os.Exit(1)
}
