package cost

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/parity"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// readAll slurps a file's full contents via the plain FS interface.
func readAll(t *testing.T, fs iosim.FS, name string, bytes int64) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	buf := make([]byte, bytes)
	if n, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("read %s: %v", name, err)
	} else if int64(n) != bytes {
		t.Fatalf("read %s: %d of %d bytes", name, n, bytes)
	}
	return buf
}

// TestRecoveryClosedFormMatchesRebuild builds two parity-protected
// groups (one deliberately not a multiple of the block size), loses one
// logical disk, runs the real offline rebuild — parity.Recover per data
// file plus parity.RebuildRank for the hosted parity — and checks that
// RecoveryForRank reproduces the charged seconds and gather traffic to
// the digit, and that the reconstructed bytes are identical.
func TestRecoveryClosedFormMatchesRebuild(t *testing.T) {
	const procs = 4
	const dead = 1
	cfg := sim.Delta(procs)
	fs := iosim.NewMemFS()
	elems := map[string]int64{"a": 700, "m": 256} // sorted base order: a, m
	bases := []string{"a", "m"}

	// Build the protected groups with write-through parity maintenance.
	st := parity.NewStore(fs, cfg, procs, nil)
	rng := rand.New(rand.NewSource(11))
	for _, base := range bases {
		st.Protect(base)
		for r := 0; r < procs; r++ {
			d := iosim.NewResilientDisk(fs, cfg, &trace.IOStats{}, nil)
			d.SetParity(st)
			l, err := d.CreateLAF(fmt.Sprintf("%s.p%d.laf", base, r), elems[base])
			if err != nil {
				t.Fatal(err)
			}
			data := make([]float64, elems[base])
			for i := range data {
				data[i] = rng.Float64()
			}
			if _, err := l.WriteChunks([]iosim.Chunk{{Off: 0, Len: len(data)}}, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Detach() // keep the files; Close would remove the parity

	// Snapshot the victim's contents, then lose its whole logical disk.
	want := map[string][]byte{}
	var groups [][]int64
	for _, base := range bases {
		name := fmt.Sprintf("%s.p%d.laf", base, dead)
		bytes := elems[base] * iosim.FileElemBytes
		want[base] = readAll(t, fs, name, bytes)
		fs.Remove(name)
		fs.Remove(parity.ParityFileName(base, dead))
		sizes := make([]int64, procs)
		for r := range sizes {
			sizes[r] = bytes
		}
		groups = append(groups, sizes)
	}

	// The real rebuild, the way the executor's pre-pass runs it: a fresh
	// store attached (trusted) to the surviving files.
	re := parity.NewStore(fs, cfg, procs, nil)
	defer re.Detach()
	comm := make([]trace.CommStats, procs)
	for r := 0; r < procs; r++ {
		re.SetCommSink(r, &comm[r])
	}
	var io trace.IOStats
	d := iosim.NewResilientDisk(fs, cfg, &io, nil)
	for gi, base := range bases {
		re.Protect(base)
		for r := 0; r < procs; r++ {
			re.Attach(fmt.Sprintf("%s.p%d.laf", base, r), groups[gi][r])
		}
	}
	var sec float64
	for _, base := range bases {
		s, err := re.Recover(d, fmt.Sprintf("%s.p%d.laf", base, dead), fmt.Errorf("disk loss"))
		if err != nil {
			t.Fatalf("recover %s: %v", base, err)
		}
		sec += s
	}
	s, err := re.RebuildRank(d, dead)
	if err != nil {
		t.Fatalf("rebuild rank: %v", err)
	}
	sec += s

	pred := RecoveryForRank(cfg, procs, groups, dead, 0.25)
	if pred.RebuildSeconds != sec {
		t.Errorf("RebuildSeconds closed form %v, measured %v", pred.RebuildSeconds, sec)
	}
	if got := comm[dead].RecoveryMessages; pred.RebuildMessages != got {
		t.Errorf("RebuildMessages closed form %d, measured %d", pred.RebuildMessages, got)
	}
	if got := comm[dead].RecoveryBytes; pred.RebuildMsgBytes != got {
		t.Errorf("RebuildMsgBytes closed form %d, measured %d", pred.RebuildMsgBytes, got)
	}
	if pred.DetectSeconds != 0.25 || pred.TotalSeconds() != 0.25+pred.RebuildSeconds {
		t.Errorf("detection stall not folded into the total: %+v", pred)
	}
	if io.Reconstructions != int64(len(bases)) {
		t.Errorf("Reconstructions = %d, want %d", io.Reconstructions, len(bases))
	}

	// And the rebuilt bytes are the original bytes.
	for _, base := range bases {
		name := fmt.Sprintf("%s.p%d.laf", base, dead)
		got := readAll(t, fs, name, elems[base]*iosim.FileElemBytes)
		for i := range got {
			if got[i] != want[base][i] {
				t.Fatalf("%s: reconstructed byte %d differs", name, i)
			}
		}
	}
}
