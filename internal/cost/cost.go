// Package cost implements the compiler's I/O cost estimation framework of
// Section 4: for each candidate strip-mining strategy it predicts, per
// processor, the number of slab fetches (T_fetch), the volume of data
// moved (T_data) and the number of physical disk requests, and it selects
// the strategy with the least estimated I/O cost (the algorithm of
// Figure 14). It also implements the Section 4.2.1 policy for dividing
// node memory among competing out-of-core arrays.
package cost

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ooc-hpf/passion/internal/sim"
)

// Stream models one out-of-core array's traffic in a strip-mined loop
// nest: the OCLA is streamed through memory Passes times in slabs of
// SlabElems elements, each slab fetch touching ChunksPerFetch
// discontiguous file regions.
type Stream struct {
	// Array names the out-of-core array.
	Array string
	// OCLAElems is the out-of-core local array size in elements.
	OCLAElems int64
	// SlabElems is the ICLA (slab) size in elements.
	SlabElems int64
	// Passes is how many times the whole OCLA is streamed.
	Passes int64
	// ChunksPerFetch is the number of discontiguous regions per slab
	// fetch (1 for a contiguous slab; the local column count for a row
	// slab of a column-major array without sieving).
	ChunksPerFetch int64
	// ElemsPerFetch overrides the data volume of one fetch when it
	// differs from SlabElems (e.g. data sieving reads the covering
	// span). Zero means SlabElems.
	ElemsPerFetch int64
	// Write marks output traffic (stores instead of fetches).
	Write bool
}

// SlabsPerPass returns how many slab fetches one full pass needs.
func (s Stream) SlabsPerPass() int64 {
	if s.OCLAElems == 0 {
		return 0
	}
	if s.SlabElems <= 0 {
		return s.OCLAElems // degenerate: one element at a time
	}
	return (s.OCLAElems + s.SlabElems - 1) / s.SlabElems
}

// Fetches returns T_fetch: the total number of slab transfers.
func (s Stream) Fetches() int64 { return s.SlabsPerPass() * s.Passes }

// Elems returns T_data: the total number of elements moved.
func (s Stream) Elems() int64 {
	if s.ElemsPerFetch > 0 {
		return s.Fetches() * s.ElemsPerFetch
	}
	return s.OCLAElems * s.Passes
}

// Requests returns the number of physical disk requests.
func (s Stream) Requests() int64 {
	c := s.ChunksPerFetch
	if c < 1 {
		c = 1
	}
	return s.Fetches() * c
}

// Seconds estimates the simulated I/O time of the stream on the machine.
func (s Stream) Seconds(cfg sim.Config) float64 {
	return cfg.IOTime(int(s.Requests()), s.Elems()*int64(cfg.ElemSize))
}

// Tally is a directly counted I/O term for strategies whose request
// pattern does not fit Stream's per-fetch regularity — the collective
// two-phase schedule, whose scratch-spill and window-flush counts are
// mirrored exactly from the runtime's accounting rather than derived
// from a slab geometry.
type Tally struct {
	// Array names the traffic (e.g. "dst", "scratch").
	Array string
	// Fetches counts logical slab transfers (T_fetch).
	Fetches int64
	// Requests counts physical disk requests.
	Requests int64
	// Elems counts elements moved (T_data).
	Elems int64
	// Write marks output traffic.
	Write bool
}

// Seconds estimates the simulated I/O time of the tally on the machine.
func (t Tally) Seconds(cfg sim.Config) float64 {
	return cfg.IOTime(int(t.Requests), t.Elems*int64(cfg.ElemSize))
}

// CommEstimate models a collective candidate's shuffle traffic under the
// machine's message model: per-message startup latency plus volume over
// the point-to-point bandwidth (send-side, matching how mp charges a
// blocking send).
type CommEstimate struct {
	// Messages counts point-to-point messages per processor.
	Messages int64
	// Elems counts payload words sent per processor.
	Elems int64
}

// Seconds estimates the simulated communication time on the machine.
func (c CommEstimate) Seconds(cfg sim.Config) float64 {
	if c.Messages == 0 && c.Elems == 0 {
		return 0
	}
	return float64(c.Messages)*cfg.MsgLatency + float64(c.Elems)*float64(cfg.ElemSize)/cfg.MsgBandwidth
}

// Candidate is one complete access strategy for a statement: a label
// (e.g. "row-slab"), the streams of every out-of-core array involved,
// plus directly counted terms and a communication estimate for
// collective strategies. The zero values of Tallies and Comm leave the
// classic stream-only candidates unchanged.
type Candidate struct {
	Label   string
	Streams []Stream
	Tallies []Tally
	Comm    CommEstimate
}

// Seconds estimates the total per-processor cost of the candidate: I/O
// over all streams and tallies, plus shuffle communication.
func (c Candidate) Seconds(cfg sim.Config) float64 {
	t := 0.0
	for _, s := range c.Streams {
		t += s.Seconds(cfg)
	}
	for _, ta := range c.Tallies {
		t += ta.Seconds(cfg)
	}
	return t + c.Comm.Seconds(cfg)
}

// TotalFetches sums T_fetch over all streams and tallies.
func (c Candidate) TotalFetches() int64 {
	var n int64
	for _, s := range c.Streams {
		n += s.Fetches()
	}
	for _, t := range c.Tallies {
		n += t.Fetches
	}
	return n
}

// TotalElems sums T_data over all streams and tallies.
func (c Candidate) TotalElems() int64 {
	var n int64
	for _, s := range c.Streams {
		n += s.Elems()
	}
	for _, t := range c.Tallies {
		n += t.Elems
	}
	return n
}

// TotalRequests sums physical disk requests over all streams and tallies.
func (c Candidate) TotalRequests() int64 {
	var n int64
	for _, s := range c.Streams {
		n += s.Requests()
	}
	for _, t := range c.Tallies {
		n += t.Requests
	}
	return n
}

// Dominant returns the stream with the largest data volume — the array
// that "requires the largest amount of I/O" in Figure 14's algorithm.
func (c Candidate) Dominant() Stream {
	if len(c.Streams) == 0 {
		return Stream{}
	}
	best := c.Streams[0]
	for _, s := range c.Streams[1:] {
		if s.Elems() > best.Elems() {
			best = s
		}
	}
	return best
}

// String renders a compact cost table for the candidate.
func (c Candidate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", c.Label)
	for _, s := range c.Streams {
		op := "read"
		if s.Write {
			op = "write"
		}
		fmt.Fprintf(&b, " %s[%s fetches=%d elems=%d reqs=%d]",
			s.Array, op, s.Fetches(), s.Elems(), s.Requests())
	}
	for _, t := range c.Tallies {
		op := "read"
		if t.Write {
			op = "write"
		}
		fmt.Fprintf(&b, " %s[%s fetches=%d elems=%d reqs=%d]",
			t.Array, op, t.Fetches, t.Elems, t.Requests)
	}
	if c.Comm.Messages > 0 || c.Comm.Elems > 0 {
		fmt.Fprintf(&b, " comm[msgs=%d elems=%d]", c.Comm.Messages, c.Comm.Elems)
	}
	return b.String()
}

// Select implements the Figure 14 algorithm: evaluate every candidate's
// I/O cost on the machine model and return the index of the cheapest one.
// Ties break toward the earlier candidate. It panics on an empty slice.
func Select(cands []Candidate, cfg sim.Config) int {
	if len(cands) == 0 {
		panic("cost: Select on no candidates")
	}
	best, bestT := 0, cands[0].Seconds(cfg)
	for i, c := range cands[1:] {
		if t := c.Seconds(cfg); t < bestT {
			best, bestT = i+1, t
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Memory allocation among competing arrays (Section 4.2.1)

// WeightedSplit divides total memory elements among arrays proportionally
// to the given access-frequency weights, giving every array at least
// minEach. It is the paper's heuristic: "assign a larger slab size to the
// array with more frequent accesses".
func WeightedSplit(total int, weights []float64, minEach int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	remaining := total - n*minEach
	if remaining < 0 {
		// Not enough memory to honor the minimum; split evenly.
		for i := range out {
			out[i] = total / n
		}
		return out
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	used := 0
	for i, w := range weights {
		share := 0
		if sum > 0 && w > 0 {
			share = int(float64(remaining) * w / sum)
		}
		out[i] = minEach + share
		used += out[i]
	}
	// Hand leftover integer dust to the heaviest array.
	if leftover := total - used; leftover > 0 {
		heaviest := 0
		for i, w := range weights {
			if w > weights[heaviest] {
				heaviest = i
			}
		}
		out[heaviest] += leftover
	}
	return out
}

// Allocate2 searches splits (m1, m2) with m1 + m2 == total, both multiples
// of step and at least step, minimizing f(m1, m2). It returns the best
// split found. This is the exact counterpart of the Table 2 experiment:
// the compiler trying slab-size assignments for two competing arrays.
func Allocate2(total, step int, f func(m1, m2 int) float64) (int, int) {
	if step <= 0 {
		step = 1
	}
	if total < 2*step {
		half := total / 2
		return half, total - half
	}
	bestM1, bestM2 := step, total-step
	bestT := f(bestM1, bestM2)
	for m1 := 2 * step; m1 <= total-step; m1 += step {
		m2 := total - m1
		if t := f(m1, m2); t < bestT {
			bestM1, bestM2, bestT = m1, m2, t
		}
	}
	return bestM1, bestM2
}

// Frequencies returns, for each stream of the candidate, a weight equal to
// its pass count — the compiler's proxy for "how often the array is
// accessed" when applying WeightedSplit. Streams are reported in input
// order.
func Frequencies(c Candidate) []float64 {
	out := make([]float64, len(c.Streams))
	for i, s := range c.Streams {
		out[i] = float64(s.Passes)
	}
	return out
}

// Report formats a comparison of candidates with the chosen index marked,
// mirroring what cmd/ooc-compile prints.
func Report(cands []Candidate, chosen int, cfg sim.Config) string {
	var b strings.Builder
	// Sort a copy by estimated seconds for a stable, readable listing.
	type row struct {
		idx int
		sec float64
	}
	rows := make([]row, len(cands))
	for i, c := range cands {
		rows[i] = row{i, c.Seconds(cfg)}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec < rows[j].sec })
	for _, r := range rows {
		marker := " "
		if r.idx == chosen {
			marker = "*"
		}
		c := cands[r.idx]
		fmt.Fprintf(&b, "%s %-12s est. I/O %10.2fs  fetches %8d  elems %12d  requests %8d\n",
			marker, c.Label, r.sec, c.TotalFetches(), c.TotalElems(), c.TotalRequests())
	}
	return b.String()
}
