package cost

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/sim"
)

// TestClampWidthMatchesCollio pins the duplicated slab-width rule against
// the runtime's: the closed forms are only exact while the two agree.
func TestClampWidthMatchesCollio(t *testing.T) {
	for _, mem := range []int{1, 2, 7, 16, 100, 4096, 1 << 20} {
		for _, rows := range []int{1, 3, 8, 256} {
			for _, cols := range []int{1, 2, 9, 64} {
				if got, want := clampWidth(mem/2, rows, cols), collio.SrcSlabWidth(mem, rows, cols); got != want {
					t.Fatalf("src width diverged at mem=%d rows=%d cols=%d: cost %d, collio %d",
						mem, rows, cols, got, want)
				}
				if got, want := clampWidth(mem/4, rows, cols), collio.WindowWidth(mem, rows, cols); got != want {
					t.Fatalf("window width diverged at mem=%d rows=%d cols=%d: cost %d, collio %d",
						mem, rows, cols, got, want)
				}
			}
		}
	}
}

// TestTransposeCandidatesShape checks the fixed order and the shared
// phase-1 terms.
func TestTransposeCandidatesShape(t *testing.T) {
	cands := TransposeCandidates(TransposeParams{N: 256, P: 4, MemElems: 16 * 256})
	if len(cands) != 3 {
		t.Fatalf("want 3 candidates, got %d", len(cands))
	}
	for i, label := range []string{"direct", "sieved", "two-phase"} {
		if cands[i].Label != label {
			t.Fatalf("candidate %d is %q, want %q", i, cands[i].Label, label)
		}
		if cands[i].Tallies[0] != cands[0].Tallies[0] {
			t.Fatalf("%s does not share the phase-1 read tally", label)
		}
		if cands[i].Comm != cands[0].Comm {
			t.Fatalf("%s does not share the shuffle estimate", label)
		}
	}
	// The canonical validated scale: w1=8 gives 8 rounds, direct leaves
	// n*rounds write requests, two-phase spills through 16 windows.
	if got := cands[0].TotalRequests(); got != 2056 {
		t.Fatalf("direct requests = %d, want 2056", got)
	}
	if got := cands[1].TotalRequests(); got != 24 {
		t.Fatalf("sieved requests = %d, want 24", got)
	}
	if got := cands[2].TotalRequests(); got != 168 {
		t.Fatalf("two-phase requests = %d, want 168", got)
	}
}

// TestTransposeSingleRoundDegenerates checks the generous-memory limit:
// with the whole local array in one slab every method is one read and
// one (or per-window) contiguous write, and direct stops paying the
// fragmentation penalty.
func TestTransposeSingleRoundDegenerates(t *testing.T) {
	g := TransposeParams{N: 64, P: 4, MemElems: 64 * 64} // slab = all 16 local columns
	cands := TransposeCandidates(g)
	if got := cands[0].TotalRequests(); got != 2 {
		t.Fatalf("single-round direct wants 1 read + 1 write, got %d requests", got)
	}
	if got := cands[1].TotalRequests(); got != 2 {
		t.Fatalf("single-round sieved degenerates to a plain write, got %d requests", got)
	}
	// In-memory two-phase: one read plus one write per window.
	if got, min := cands[2].TotalRequests(), int64(2); got < min {
		t.Fatalf("two-phase requests = %d", got)
	}
}

// TestTransposeSelectionFollowsOverhead checks the Figure 14 behavior on
// the request-overhead axis: the Delta's 15ms overhead punishes direct's
// fragmented writes; with free requests the bandwidth term takes over
// and direct's single-pass data volume wins.
func TestTransposeSelectionFollowsOverhead(t *testing.T) {
	g := TransposeParams{N: 256, P: 4, MemElems: 16 * 256}
	cands := TransposeCandidates(g)

	delta := sim.Delta(4)
	if sel := cands[Select(cands, delta)].Label; sel == "direct" {
		t.Fatalf("direct selected on the Delta calibration")
	}
	free := delta
	free.DiskRequestOverhead = 0
	if sel := cands[Select(cands, free)].Label; sel != "direct" {
		t.Fatalf("with zero request overhead direct must win, selected %s", sel)
	}
}

// TestTallySeconds pins the cost accounting of the new tally/comm terms.
func TestTallySeconds(t *testing.T) {
	cfg := sim.Delta(4)
	tl := Tally{Requests: 10, Elems: 1000}
	want := cfg.IOTime(10, 1000*int64(cfg.ElemSize))
	if got := tl.Seconds(cfg); got != want {
		t.Fatalf("tally seconds = %g, want %g", got, want)
	}
	var none CommEstimate
	if none.Seconds(cfg) != 0 {
		t.Fatal("empty comm estimate must cost nothing")
	}
	comm := CommEstimate{Messages: 3, Elems: 50}
	wantComm := 3*cfg.MsgLatency + 50*float64(cfg.ElemSize)/cfg.MsgBandwidth
	if got := comm.Seconds(cfg); got != wantComm {
		t.Fatalf("comm seconds = %g, want %g", got, wantComm)
	}
}
