package cost

import (
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
)

// ParityOverhead is the closed-form prediction of the extra traffic the
// parity layer (internal/parity) charges for a write pattern: the
// old-data reads, parity-block reads and parity-block writes of its
// read-modify-write cycles. Counts are disk requests; byte totals are in
// cost-model bytes (ElemSize per element), the scale every other counter
// uses. The formulas mirror the runtime's accounting exactly, so a
// fault-free protected run must reproduce them to the digit — the
// disksurvival experiment gates on that equality.
type ParityOverhead struct {
	// Reads counts extra read requests: one widened old-data read plus
	// one coalesced parity-run read per touched parity rank, per write.
	Reads int64
	// Writes counts parity write-back requests: one per touched parity
	// rank, per write.
	Writes int64
	// BytesRead is the model-byte volume of old data and parity read.
	BytesRead int64
	// BytesWritten is the model-byte volume of parity written back.
	BytesWritten int64
}

// Add sums two overheads.
func (o ParityOverhead) Add(p ParityOverhead) ParityOverhead {
	return ParityOverhead{
		Reads:        o.Reads + p.Reads,
		Writes:       o.Writes + p.Writes,
		BytesRead:    o.BytesRead + p.BytesRead,
		BytesWritten: o.BytesWritten + p.BytesWritten,
	}
}

// Scale multiplies an overhead by a repetition count.
func (o ParityOverhead) Scale(n int64) ParityOverhead {
	return ParityOverhead{
		Reads:        o.Reads * n,
		Writes:       o.Writes * n,
		BytesRead:    o.BytesRead * n,
		BytesWritten: o.BytesWritten * n,
	}
}

// Requests returns the total extra disk requests.
func (o ParityOverhead) Requests() int64 { return o.Reads + o.Writes }

// Bytes returns the total extra model bytes moved.
func (o ParityOverhead) Bytes() int64 { return o.BytesRead + o.BytesWritten }

// Seconds prices the overhead with the machine's I/O timing rule. IOTime
// is linear in requests and bytes, so summing per-write charges equals
// one charge over the totals — this matches the runtime to the digit.
func (o ParityOverhead) Seconds(cfg sim.Config) float64 {
	return cfg.IOTime(int(o.Requests()), o.Bytes())
}

// modelBytes rescales physical file bytes (FileElemBytes per element) to
// cost-model bytes (ElemSize per element). Both element sizes divide the
// parity block size, so the conversion is exact.
func modelBytes(cfg sim.Config, fileBytes int64) int64 {
	return fileBytes * int64(cfg.ElemSize) / iosim.FileElemBytes
}

// ParityForRun predicts the parity overhead of one contiguous write of n
// elements at element offset off into a protected file of fileElems
// elements, striped over procs disks:
//
//	nb = parity blocks covered by the write, widened to block boundaries
//	R  = distinct parity ranks touched = min(nb, procs-1)
//
// charging 1+R reads (widened old data + one coalesced parity run per
// rank), R writes, and moving widened + nb blocks inward and nb blocks
// outward. With fewer than two disks there is no redundancy and the
// overhead is zero.
func ParityForRun(cfg sim.Config, procs int, fileElems, off, n int64) ParityOverhead {
	if procs < 2 || n <= 0 {
		return ParityOverhead{}
	}
	const block = iosim.ChecksumBlockBytes
	fileBytes := fileElems * iosim.FileElemBytes
	byteOff := off * iosim.FileElemBytes
	lo := byteOff / block * block
	hi := (byteOff + n*iosim.FileElemBytes + block - 1) / block * block
	if hi > fileBytes {
		hi = fileBytes
	}
	nb := (hi - lo + block - 1) / block
	r := nb
	if max := int64(procs - 1); r > max {
		r = max
	}
	return ParityOverhead{
		Reads:        1 + r,
		Writes:       r,
		BytesRead:    modelBytes(cfg, hi-lo) + modelBytes(cfg, nb*block),
		BytesWritten: modelBytes(cfg, nb*block),
	}
}

// ParityForStream predicts the parity overhead of writing a whole
// protected file of fileElems elements as a sequence of contiguous slabs
// of slabElems elements (the write pattern of a sequential out-of-core
// output stream, e.g. GAXPY's result array under the column-slab
// schedule).
func ParityForStream(cfg sim.Config, procs int, fileElems, slabElems int64) ParityOverhead {
	var o ParityOverhead
	if slabElems <= 0 {
		slabElems = fileElems
	}
	for off := int64(0); off < fileElems; off += slabElems {
		n := slabElems
		if rest := fileElems - off; n > rest {
			n = rest
		}
		o = o.Add(ParityForRun(cfg, procs, fileElems, off, n))
	}
	return o
}

// ParityForCandidate sums the parity overhead of every write stream and
// write tally of a candidate schedule, predicting the cost of running it
// with parity protection enabled. Tallies (whose write geometry is not
// derivable from a slab shape) are approximated as one contiguous run per
// fetch of Elems/Fetches elements.
func ParityForCandidate(cfg sim.Config, procs int, c Candidate) ParityOverhead {
	var o ParityOverhead
	for _, s := range c.Streams {
		if !s.Write {
			continue
		}
		o = o.Add(ParityForStream(cfg, procs, s.OCLAElems, s.SlabElems).Scale(s.Passes))
	}
	for _, t := range c.Tallies {
		if !t.Write || t.Fetches == 0 {
			continue
		}
		o = o.Add(ParityForStream(cfg, procs, t.Elems, (t.Elems+t.Fetches-1)/t.Fetches))
	}
	return o
}
