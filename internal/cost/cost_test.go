package cost

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/ooc-hpf/passion/internal/sim"
)

func TestStreamBasics(t *testing.T) {
	s := Stream{Array: "a", OCLAElems: 100, SlabElems: 30, Passes: 2, ChunksPerFetch: 3}
	if got := s.SlabsPerPass(); got != 4 { // ceil(100/30)
		t.Errorf("SlabsPerPass = %d, want 4", got)
	}
	if got := s.Fetches(); got != 8 {
		t.Errorf("Fetches = %d, want 8", got)
	}
	if got := s.Elems(); got != 200 {
		t.Errorf("Elems = %d, want 200", got)
	}
	if got := s.Requests(); got != 24 {
		t.Errorf("Requests = %d, want 24", got)
	}
}

func TestStreamElemsPerFetchOverride(t *testing.T) {
	s := Stream{Array: "a", OCLAElems: 100, SlabElems: 25, Passes: 1, ElemsPerFetch: 90}
	if got := s.Elems(); got != 360 { // 4 fetches * 90
		t.Errorf("Elems = %d, want 360", got)
	}
}

func TestStreamDegenerate(t *testing.T) {
	if (Stream{OCLAElems: 0, SlabElems: 10, Passes: 5}).Fetches() != 0 {
		t.Error("empty OCLA should need no fetches")
	}
	s := Stream{OCLAElems: 7, SlabElems: 0, Passes: 1}
	if s.SlabsPerPass() != 7 {
		t.Errorf("zero slab size should degrade to element-at-a-time, got %d", s.SlabsPerPass())
	}
	if (Stream{OCLAElems: 4, SlabElems: 4, Passes: 1}).Requests() != 1 {
		t.Error("default ChunksPerFetch should be 1")
	}
}

// eq3to6 checks the exact closed forms of the paper for exact divisions.
func TestEquations3Through6(t *testing.T) {
	cases := []struct{ n, p, m int }{
		{1024, 4, 1024 * 256 / 8}, // slab ratio 1/8 of OCLA
		{1024, 16, 1024 * 64 / 4},
		{512, 8, 512 * 64},
		{2048, 16, 2048 * 128 / 2},
	}
	for _, c := range cases {
		g := GaxpyParams{N: c.n, P: c.p, SlabA: c.m, SlabB: c.m, SlabC: c.m}
		n3 := int64(c.n) * int64(c.n) * int64(c.n)
		n2 := int64(c.n) * int64(c.n)

		col := GaxpyColumnSlab(g)
		a := col.Streams[0]
		if got, want := a.Fetches(), n3/(int64(c.m)*int64(c.p)); got != want {
			t.Errorf("N=%d P=%d M=%d: eq3 T_fetch(A) = %d, want %d", c.n, c.p, c.m, got, want)
		}
		if got, want := a.Elems(), n3/int64(c.p); got != want {
			t.Errorf("N=%d P=%d M=%d: eq4 T_data(A) = %d, want %d", c.n, c.p, c.m, got, want)
		}

		row := GaxpyRowSlab(g)
		a = row.Streams[0]
		if got, want := a.Fetches(), n2/(int64(c.m)*int64(c.p)); got != want {
			t.Errorf("N=%d P=%d M=%d: eq5 T_fetch(A) = %d, want %d", c.n, c.p, c.m, got, want)
		}
		if got, want := a.Elems(), n2/int64(c.p); got != want {
			t.Errorf("N=%d P=%d M=%d: eq6 T_data(A) = %d, want %d", c.n, c.p, c.m, got, want)
		}
	}
}

func TestRowSlabOrderOfMagnitudeCheaper(t *testing.T) {
	// The paper's headline: the ratio of the two strategies' A-traffic is
	// exactly N in both fetches and elements.
	g := GaxpyParams{N: 1024, P: 16, SlabA: 65536, SlabB: 65536, SlabC: 65536}
	col, row := GaxpyColumnSlab(g), GaxpyRowSlab(g)
	if r := col.Streams[0].Fetches() / row.Streams[0].Fetches(); r != int64(g.N) {
		t.Errorf("fetch ratio = %d, want %d", r, g.N)
	}
	if r := col.Streams[0].Elems() / row.Streams[0].Elems(); r != int64(g.N) {
		t.Errorf("data ratio = %d, want %d", r, g.N)
	}
}

func TestSelectPicksRowSlab(t *testing.T) {
	// Figure 14's algorithm must pick the row-slab translation for the
	// paper's GAXPY program across the whole experimental grid.
	for _, p := range []int{4, 16, 32, 64} {
		for _, ratio := range []int{1, 2, 4, 8} {
			ocla := 1024 * 1024 / p
			m := ocla / ratio
			g := GaxpyParams{N: 1024, P: p, SlabA: m, SlabB: m, SlabC: m}
			cands := GaxpyCandidates(g)
			if got := Select(cands, sim.Delta(p)); cands[got].Label != "row-slab" {
				t.Errorf("P=%d ratio=1/%d: selected %s", p, ratio, cands[got].Label)
			}
		}
	}
}

func TestSelectTieAndPanic(t *testing.T) {
	cfg := sim.Delta(4)
	same := Candidate{Label: "x", Streams: []Stream{{OCLAElems: 10, SlabElems: 10, Passes: 1}}}
	if got := Select([]Candidate{same, same}, cfg); got != 0 {
		t.Errorf("tie should pick the first candidate, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Select on empty slice should panic")
		}
	}()
	Select(nil, cfg)
}

func TestDominantStream(t *testing.T) {
	c := Candidate{Streams: []Stream{
		{Array: "small", OCLAElems: 10, SlabElems: 10, Passes: 1},
		{Array: "big", OCLAElems: 10, SlabElems: 10, Passes: 50},
		{Array: "mid", OCLAElems: 100, SlabElems: 10, Passes: 1},
	}}
	if d := c.Dominant(); d.Array != "big" {
		t.Errorf("Dominant = %s", d.Array)
	}
	if (Candidate{}).Dominant().Array != "" {
		t.Error("empty candidate Dominant should be zero")
	}
}

func TestCandidateTotals(t *testing.T) {
	g := GaxpyParams{N: 64, P: 4, SlabA: 256, SlabB: 256, SlabC: 256}
	row := GaxpyRowSlab(g)
	var f, e, r int64
	for _, s := range row.Streams {
		f += s.Fetches()
		e += s.Elems()
		r += s.Requests()
	}
	if row.TotalFetches() != f || row.TotalElems() != e || row.TotalRequests() != r {
		t.Error("candidate totals disagree with stream sums")
	}
}

func TestMoreMemoryNeverHurtsProperty(t *testing.T) {
	// Property: increasing any slab size never increases a strategy's
	// estimated I/O time (Figure 10's monotonic trend).
	cfg := sim.Delta(4)
	f := func(mSmall, extra uint16) bool {
		m1 := int(mSmall%4096) + 64
		m2 := m1 + int(extra%4096) + 1
		g1 := GaxpyParams{N: 256, P: 4, SlabA: m1, SlabB: m1, SlabC: m1}
		g2 := GaxpyParams{N: 256, P: 4, SlabA: m2, SlabB: m2, SlabC: m2}
		for _, pair := range [][2]Candidate{
			{GaxpyColumnSlab(g1), GaxpyColumnSlab(g2)},
			{GaxpyRowSlab(g1), GaxpyRowSlab(g2)},
		} {
			if pair[1].Seconds(cfg) > pair[0].Seconds(cfg)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSplit(t *testing.T) {
	got := WeightedSplit(1000, []float64{3, 1}, 100)
	if got[0]+got[1] != 1000 {
		t.Fatalf("split %v does not sum to total", got)
	}
	if got[0] <= got[1] {
		t.Errorf("heavier array should get more: %v", got)
	}
	// Equal weights, even split.
	got = WeightedSplit(1000, []float64{1, 1}, 0)
	if got[0] != 500 || got[1] != 500 {
		t.Errorf("even split = %v", got)
	}
	// Not enough memory for minimums: falls back to even.
	got = WeightedSplit(10, []float64{9, 1}, 100)
	if got[0] != 5 || got[1] != 5 {
		t.Errorf("fallback split = %v", got)
	}
	if WeightedSplit(100, nil, 0) != nil {
		t.Error("empty weights should return nil")
	}
}

func TestAllocate2FindsMinimum(t *testing.T) {
	// A convex cost with minimum at m1 = 600 of 800.
	f := func(m1, m2 int) float64 {
		d := float64(m1 - 600)
		return d * d
	}
	m1, m2 := Allocate2(800, 100, f)
	if m1 != 600 || m2 != 200 {
		t.Errorf("Allocate2 = (%d,%d), want (600,200)", m1, m2)
	}
	// Degenerate totals.
	m1, m2 = Allocate2(1, 100, f)
	if m1+m2 != 1 {
		t.Errorf("tiny total split = (%d,%d)", m1, m2)
	}
	m1, m2 = Allocate2(10, 0, func(a, b int) float64 { return 0 })
	if m1+m2 != 10 {
		t.Errorf("zero step split = (%d,%d)", m1, m2)
	}
}

func TestAllocate2PrefersAForGaxpy(t *testing.T) {
	// The Table 2 conclusion: for the row-slab GAXPY, the best split
	// gives A at least as much memory as B.
	cfg := sim.Delta(16)
	n, p := 2048, 16
	total := 2 * 256 * (n / p) // two "256-column" slabs worth of elements
	step := n / p
	m1, m2 := Allocate2(total, step, func(ma, mb int) float64 {
		g := GaxpyParams{N: n, P: p, SlabA: ma, SlabB: mb, SlabC: ma}
		return GaxpyRowSlab(g).Seconds(cfg)
	})
	if m1 < m2 {
		t.Errorf("allocator gave A=%d < B=%d", m1, m2)
	}
}

func TestFrequencies(t *testing.T) {
	g := GaxpyParams{N: 64, P: 4, SlabA: 128, SlabB: 128, SlabC: 128}
	w := Frequencies(GaxpyColumnSlab(g))
	if len(w) != 3 || w[0] != 64 || w[1] != 1 || w[2] != 1 {
		t.Errorf("Frequencies = %v", w)
	}
}

func TestReportAndString(t *testing.T) {
	g := GaxpyParams{N: 64, P: 4, SlabA: 128, SlabB: 128, SlabC: 128}
	cands := GaxpyCandidates(g)
	cfg := sim.Delta(4)
	chosen := Select(cands, cfg)
	out := Report(cands, chosen, cfg)
	if !strings.Contains(out, "* row-slab") {
		t.Errorf("report does not mark row-slab as chosen:\n%s", out)
	}
	if !strings.Contains(out, "column-slab") {
		t.Errorf("report missing column-slab:\n%s", out)
	}
	s := cands[0].String()
	for _, want := range []string{"column-slab:", "a[read", "c[write"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSievedRowSlabTradeoff(t *testing.T) {
	// Sieving a row slab collapses requests to one per fetch but inflates
	// the data volume toward the whole OCLA per fetch.
	g := GaxpyParams{N: 256, P: 4, SlabA: 4096, SlabB: 4096, SlabC: 4096}
	plain := GaxpyRowSlab(g)
	g.Sieve = true
	sieved := GaxpyRowSlab(g)
	if sieved.Streams[0].Requests() >= plain.Streams[0].Requests() {
		t.Error("sieving should reduce requests")
	}
	if sieved.Streams[0].Elems() <= plain.Streams[0].Elems() {
		t.Error("sieving should increase data volume for row slabs")
	}
}
