package cost_test

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/sim"
)

// ExampleGaxpyCandidates evaluates the paper's Equations 3-6 for a
// 1K x 1K GAXPY on 16 processors with a slab of 64K elements, and lets
// the Figure 14 algorithm choose.
func ExampleGaxpyCandidates() {
	g := cost.GaxpyParams{N: 1024, P: 16, SlabA: 65536, SlabB: 65536, SlabC: 65536}
	cands := cost.GaxpyCandidates(g)
	for _, c := range cands {
		a := c.Streams[0]
		fmt.Printf("%s: T_fetch(A)=%d, T_data(A)=%d elements\n", c.Label, a.Fetches(), a.Elems())
	}
	chosen := cost.Select(cands, sim.Delta(16))
	fmt.Println("selected:", cands[chosen].Label)
	// Output:
	// column-slab: T_fetch(A)=1024, T_data(A)=67108864 elements
	// row-slab: T_fetch(A)=1, T_data(A)=65536 elements
	// selected: row-slab
}

// ExampleAllocate2 reproduces the Table 2 decision: split memory between
// the slabs of A and B to minimize estimated I/O time.
func ExampleAllocate2() {
	mach := sim.Delta(16)
	n, p := 2048, 16
	total := 512 * (n / p) // "512 rows/columns" of slab memory
	a, b := cost.Allocate2(total, n/p, func(ma, mb int) float64 {
		g := cost.GaxpyParams{N: n, P: p, SlabA: ma, SlabB: mb, SlabC: n}
		return cost.GaxpyRowSlab(g).Seconds(mach)
	})
	fmt.Printf("best split: A gets %d rows, B gets %d columns\n", a/(n/p), b/(n/p))
	// Output:
	// best split: A gets 410 rows, B gets 102 columns
}
