package cost

// GAXPY-specific instantiations of the cost framework: the closed forms of
// Section 4.1 (Equations 3-6) for the two translations of the out-of-core
// matrix multiplication program.

// GaxpyParams describes one out-of-core GAXPY matrix multiplication
// configuration: C = A*B with N x N matrices over P processors, slab
// memory (in elements) per array, and whether row slabs are read with
// data sieving.
type GaxpyParams struct {
	N, P  int
	SlabA int
	SlabB int
	SlabC int
	Sieve bool
}

// ocla returns the per-processor local array size N^2/P in elements.
func (g GaxpyParams) ocla() int64 { return int64(g.N) * int64(g.N) / int64(g.P) }

// GaxpyColumnSlab returns the cost model of the column-slab translation
// (Figure 9): for every one of the N global columns of C, the whole local
// array of A is streamed through memory, giving
//
//	T_fetch(A) = N^3 / (M*P)   (Equation 3)
//	T_data(A)  = N^3 / P       (Equation 4)
//
// while B is read and C written exactly once.
func GaxpyColumnSlab(g GaxpyParams) Candidate {
	ocla := g.ocla()
	return Candidate{
		Label: "column-slab",
		Streams: []Stream{
			{
				Array:     "a",
				OCLAElems: ocla,
				SlabElems: int64(g.SlabA),
				// One full pass of A per global column of C.
				Passes:         int64(g.N),
				ChunksPerFetch: 1, // whole columns: contiguous
			},
			{
				Array:          "b",
				OCLAElems:      ocla,
				SlabElems:      int64(g.SlabB),
				Passes:         1,
				ChunksPerFetch: 1,
			},
			{
				Array:          "c",
				OCLAElems:      ocla,
				SlabElems:      int64(g.SlabC),
				Passes:         1,
				ChunksPerFetch: 1,
				Write:          true,
			},
		},
	}
}

// GaxpyRowSlab returns the cost model of the row-slab translation
// (Figure 12): A is streamed exactly once in row slabs,
//
//	T_fetch(A) = N^2 / (M*P)   (Equation 5)
//	T_data(A)  = N^2 / P       (Equation 6)
//
// at the price of discontiguous slab fetches (one chunk per local column,
// or a sieved span) and of B being re-read once per row slab of A.
func GaxpyRowSlab(g GaxpyParams) Candidate {
	ocla := g.ocla()
	localCols := int64(g.N) / int64(g.P) // columns of A per processor

	a := Stream{
		Array:          "a",
		OCLAElems:      ocla,
		SlabElems:      int64(g.SlabA),
		Passes:         1,
		ChunksPerFetch: localCols,
	}
	if g.Sieve {
		a.ChunksPerFetch = 1
		// A sieved row-slab read covers the span from the slab's first
		// row in the first column to its last row in the last column:
		// nearly the whole OCLA per fetch.
		rows := int64(g.N)
		slabRows := int64(g.SlabA) / localCols
		if slabRows < 1 {
			slabRows = 1
		}
		span := (localCols-1)*rows + slabRows
		if span > ocla {
			span = ocla
		}
		a.ElemsPerFetch = span
	}
	aSlabs := a.SlabsPerPass()

	return Candidate{
		Label: "row-slab",
		Streams: []Stream{
			a,
			{
				Array:     "b",
				OCLAElems: ocla,
				SlabElems: int64(g.SlabB),
				// B is fully re-streamed for every row slab of A.
				Passes:         aSlabs,
				ChunksPerFetch: 1,
			},
			{
				Array:          "c",
				OCLAElems:      ocla,
				SlabElems:      int64(g.SlabC),
				Passes:         1,
				ChunksPerFetch: 1,
				Write:          true,
			},
		},
	}
}

// GaxpyCandidates returns both translations, column-slab first.
func GaxpyCandidates(g GaxpyParams) []Candidate {
	return []Candidate{GaxpyColumnSlab(g), GaxpyRowSlab(g)}
}
