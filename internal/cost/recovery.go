package cost

import (
	"github.com/ooc-hpf/passion/internal/parity"
	"github.com/ooc-hpf/passion/internal/sim"
)

// RecoveryTime is the closed-form prediction of what surviving one
// fail-stop rank loss costs on the simulated machine: the heartbeat
// detection stall the first blocked survivor pays, and the offline
// reconstruction of every local array file (plus the hosted parity
// files) of the dead rank's logical disk. The rebuild arithmetic mirrors
// parity.Recover and parity.RebuildRank charge for charge, so a
// fault-free-I/O recovery must reproduce RebuildSeconds to the digit —
// the ranksurvival experiment gates on that equality.
type RecoveryTime struct {
	// DetectSeconds is the worst-case failure-detection stall: a survivor
	// blocking at the instant the victim dies waits the full heartbeat
	// timeout before resolving the op to ErrRankDead.
	DetectSeconds float64
	// RebuildSeconds prices the reconstruction of the dead disk: block
	// gathers from the P-1 survivors, XOR write-back, and the recompute
	// of the parity files the dead disk hosted.
	RebuildSeconds float64
	// RebuildRequests / RebuildBytes total the rebuild's disk requests
	// and cost-model bytes; RebuildMessages / RebuildMsgBytes total its
	// cross-disk gather traffic.
	RebuildRequests int64
	RebuildBytes    int64
	RebuildMessages int64
	RebuildMsgBytes int64
}

// TotalSeconds is the end-to-end price of the loss (detection stall plus
// offline rebuild; the resumed attempt's own cost is a fresh run and is
// not part of the recovery overhead).
func (r RecoveryTime) TotalSeconds() float64 {
	return r.DetectSeconds + r.RebuildSeconds
}

// RecoveryForRank predicts the recovery cost of losing rank dead. groups
// lists, per protected parity group (array), the per-rank data file
// sizes in physical file bytes (iosim.FileElemBytes per element) —
// groups[g][r] is rank r's file of group g. detectTimeout is the
// heartbeat detection timeout (mp.Detector.Timeout()); pass 0 when
// detection is disabled. Groups must be given in sorted base-name order,
// matching the runtime's rebuild order, so the float accumulation
// reproduces exactly.
func RecoveryForRank(cfg sim.Config, procs int, groups [][]int64, dead int, detectTimeout float64) RecoveryTime {
	r := RecoveryTime{DetectSeconds: detectTimeout}
	// The executor's pre-pass recovers every group's dead data file
	// first, then recomputes the dead disk's parity files group by group.
	// The parity phase is summed in its own accumulator before folding,
	// mirroring RebuildRank's internal accumulation, so the float result
	// matches the runtime bit for bit.
	for _, sizes := range groups {
		r.RebuildSeconds += r.addRecoverFile(cfg, procs, sizes, dead)
	}
	var rebuild float64
	for _, sizes := range groups {
		rebuild += r.addParityRebuild(cfg, procs, sizes, dead)
	}
	r.RebuildSeconds += rebuild
	return r
}

// addRecoverFile mirrors parity.Recover for the dead rank's data file of
// one group: per lost block, gather the stripe's parity block and every
// surviving data block, then write the XOR back to the replacement. It
// returns the charged seconds (the caller folds them, preserving the
// runtime's accumulation order).
func (r *RecoveryTime) addRecoverFile(cfg sim.Config, procs int, sizes []int64, dead int) float64 {
	const block = parity.BlockBytes
	bytes := sizes[dead]
	nBlocks := (bytes + block - 1) / block
	var sec float64
	var requests, physBytes int64
	gather := func(want int64) {
		requests++
		physBytes += want
		r.RebuildMessages++
		mb := modelBytes(cfg, want)
		r.RebuildMsgBytes += mb
		sec += cfg.MsgTime(mb)
	}
	for k := int64(0); k < nBlocks; k++ {
		s := parity.StripeOf(procs, dead, k)
		p := parity.ParityRankOf(procs, s)
		gather(block) // the stripe's parity block
		for r2 := 0; r2 < procs; r2++ {
			if r2 == dead || r2 == p {
				continue
			}
			k2 := parity.DataBlockOf(procs, r2, s)
			off := k2 * block
			if off >= sizes[r2] {
				continue // past r2's file: an implicit zero block
			}
			want := sizes[r2] - off
			if want > block {
				want = block
			}
			gather(want)
		}
		blockLen := bytes - k*block
		if blockLen > block {
			blockLen = block
		}
		requests++
		physBytes += blockLen
	}
	sec += cfg.IOTime(int(requests), modelBytes(cfg, physBytes))
	r.RebuildRequests += requests
	r.RebuildBytes += modelBytes(cfg, physBytes)
	return sec
}

// addParityRebuild mirrors parity.RebuildRank recomputing the parity
// file the dead disk hosted for one group, wholesale from the group's
// surviving data files. Like addRecoverFile it returns the seconds.
func (r *RecoveryTime) addParityRebuild(cfg sim.Config, procs int, sizes []int64, dead int) float64 {
	const block = parity.BlockBytes
	maxQ := int64(0)
	for rk, bytes := range sizes {
		if rk == dead {
			continue
		}
		blocks := (bytes + block - 1) / block
		q := (blocks + int64(procs-1) - 1) / int64(procs-1)
		if q > maxQ {
			maxQ = q
		}
	}
	var sec float64
	var requests, physBytes int64
	for q := int64(0); q < maxQ; q++ {
		s := q*int64(procs) + int64(dead)
		for rk := 0; rk < procs; rk++ {
			if rk == dead {
				continue
			}
			k := parity.DataBlockOf(procs, rk, s)
			off := k * block
			if off >= sizes[rk] {
				continue
			}
			want := sizes[rk] - off
			if want > block {
				want = block
			}
			requests++
			physBytes += want
			r.RebuildMessages++
			mb := modelBytes(cfg, want)
			r.RebuildMsgBytes += mb
			sec += cfg.MsgTime(mb)
		}
		requests++
		physBytes += block
	}
	sec += cfg.IOTime(int(requests), modelBytes(cfg, physBytes))
	r.RebuildRequests += requests
	r.RebuildBytes += modelBytes(cfg, physBytes)
	return sec
}
