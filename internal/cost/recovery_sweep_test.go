package cost

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/parity"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// TestRecoveryClosedFormAllVictims sweeps the dead rank across a
// transpose-like geometry (two equal groups, one full block plus a tail
// per rank) and checks that the closed form reproduces the real rebuild
// for every victim — the rotated parity layout makes the cost genuinely
// victim-dependent, and the float accumulation order must match too.
func TestRecoveryClosedFormAllVictims(t *testing.T) {
	const procs = 4
	cfg := sim.Delta(procs)
	elems := map[string]int64{"x": 576, "z": 576} // 4608 bytes per rank
	bases := []string{"x", "z"}
	for dead := 0; dead < procs; dead++ {
		fs := iosim.NewMemFS()
		st := parity.NewStore(fs, cfg, procs, nil)
		for _, base := range bases {
			st.Protect(base)
			for r := 0; r < procs; r++ {
				d := iosim.NewResilientDisk(fs, cfg, &trace.IOStats{}, nil)
				d.SetParity(st)
				l, err := d.CreateLAF(fmt.Sprintf("%s.p%d.laf", base, r), elems[base])
				if err != nil {
					t.Fatal(err)
				}
				data := make([]float64, elems[base])
				for i := range data {
					data[i] = float64(i + r)
				}
				if _, err := l.WriteChunks([]iosim.Chunk{{Off: 0, Len: len(data)}}, data); err != nil {
					t.Fatal(err)
				}
			}
		}
		st.Detach()

		var groups [][]int64
		for _, base := range bases {
			fs.Remove(fmt.Sprintf("%s.p%d.laf", base, dead))
			fs.Remove(parity.ParityFileName(base, dead))
			sizes := make([]int64, procs)
			for r := range sizes {
				sizes[r] = elems[base] * iosim.FileElemBytes
			}
			groups = append(groups, sizes)
		}

		re := parity.NewStore(fs, cfg, procs, nil)
		comm := make([]trace.CommStats, procs)
		for r := 0; r < procs; r++ {
			re.SetCommSink(r, &comm[r])
		}
		var io trace.IOStats
		d := iosim.NewResilientDisk(fs, cfg, &io, nil)
		for gi, base := range bases {
			re.Protect(base)
			for r := 0; r < procs; r++ {
				re.Attach(fmt.Sprintf("%s.p%d.laf", base, r), groups[gi][r])
			}
		}
		var sec float64
		for _, base := range bases {
			s, err := re.Recover(d, fmt.Sprintf("%s.p%d.laf", base, dead), fmt.Errorf("loss"))
			if err != nil {
				t.Fatalf("dead %d recover %s: %v", dead, base, err)
			}
			sec += s
		}
		s, err := re.RebuildRank(d, dead)
		if err != nil {
			t.Fatalf("dead %d rebuild: %v", dead, err)
		}
		sec += s
		re.Detach()

		pred := RecoveryForRank(cfg, procs, groups, dead, 0)
		if pred.RebuildSeconds != sec {
			t.Errorf("dead=%d: closed form %.17g, measured %.17g", dead, pred.RebuildSeconds, sec)
		}
		var msgs int64
		for r := range comm {
			msgs += comm[r].RecoveryMessages
		}
		if msgs != pred.RebuildMessages {
			t.Errorf("dead=%d: closed-form messages %d, measured %d", dead, pred.RebuildMessages, msgs)
		}
	}
}
