package cost

// Closed-form candidates for the collective out-of-core transpose /
// redistribution of an n x n array between two (collapsed, block)
// mappings over P processors. The counts mirror internal/collio's
// schedule exactly — same slab widths, same round structure, same
// per-round run coalescing — so the selected candidate's predicted
// request count matches the measured one request for request.

// TransposeParams describes the canonical collective transpose: an
// n x n column-block array redistributed into another column-block
// array with the global indices swapped, under a per-processor memory
// budget of MemElems elements. N must be a multiple of P.
type TransposeParams struct {
	N, P     int
	MemElems int
}

// geometry mirrors collio's budget split: phase-1 slabs take half the
// budget, destination windows a quarter.
func (g TransposeParams) geometry() (c, w1, s, winW, nW int, inMem bool) {
	c = g.N / g.P
	w1 = clampWidth(g.MemElems/2, g.N, c)
	winW = clampWidth(g.MemElems/4, g.N, c)
	s = (c + w1 - 1) / w1
	nW = (c + winW - 1) / winW
	inMem = 2*g.N*c <= g.MemElems
	return
}

// clampWidth duplicates collio's slab-width rule (a dependency from cost
// to the runtime layer would invert the compiler's layering, so the
// three-line rule is restated here; internal/cost/collio_test.go pins
// the two against each other).
func clampWidth(budget, rows, cols int) int {
	if rows <= 0 || cols <= 0 {
		return 1
	}
	w := budget / rows
	if w < 1 {
		w = 1
	}
	if w > cols {
		w = cols
	}
	return w
}

// TransposeCandidates returns the per-processor cost candidates for the
// canonical collective transpose, in the fixed order direct, sieved,
// two-phase (ties in Select break toward the earlier, cheaper-to-run
// entry). All three share phase 1 — S contiguous column-slab reads of
// the source and the all-to-all shuffle — and differ only in how the
// destination file is written.
func TransposeCandidates(g TransposeParams) []Candidate {
	c, w1, s, _, nW, inMem := g.geometry()
	n, p := int64(g.N), int64(g.P)
	local := n * int64(c)
	rounds := int64(s)

	read := Tally{Array: "src", Fetches: rounds, Requests: rounds, Elems: local}
	comm := CommEstimate{
		Messages: rounds * (p - 1),
		Elems:    2 * (p - 1) * int64(c) * int64(c),
	}

	// Direct: each round's received elements coalesce into runs. With a
	// single round the runs merge into the whole local file (one
	// request); otherwise every round leaves one run per (destination
	// column, sender) pair — n runs.
	directWrites := int64(1)
	if s > 1 {
		directWrites = n * rounds
	}
	direct := Candidate{
		Label: "direct",
		Tallies: []Tally{read,
			{Array: "dst", Fetches: rounds, Requests: directWrites, Elems: local, Write: true}},
		Comm: comm,
	}

	// Sieved: each round read-modify-writes the span covering its runs —
	// two requests per round moving the span twice. A single round is one
	// contiguous run and degenerates to a plain write.
	sieved := Candidate{Label: "sieved", Tallies: []Tally{read}, Comm: comm}
	if s == 1 {
		sieved.Tallies = append(sieved.Tallies,
			Tally{Array: "dst", Fetches: 1, Requests: 1, Elems: local, Write: true})
	} else {
		var reqs, elems int64
		for k := 0; k < s; k++ {
			cw := c - k*w1
			if cw > w1 {
				cw = w1
			}
			span := int64(c-1)*n + (p-1)*int64(c) + int64(cw)
			reqs += 2
			elems += 2 * span
		}
		sieved.Tallies = append(sieved.Tallies,
			Tally{Array: "dst", Fetches: rounds, Requests: reqs, Elems: elems, Write: true})
	}

	// Two-phase: stage per destination window, flush each window with one
	// contiguous write. Out of memory, the pairs spill to a scratch file:
	// one contiguous append per window per round, one contiguous read per
	// window at the end. The transpose produces every window completely,
	// so no pre-read RMW is needed.
	wins := int64(nW)
	two := Candidate{Label: "two-phase", Tallies: []Tally{read}, Comm: comm}
	if !inMem {
		two.Tallies = append(two.Tallies,
			Tally{Array: "scratch", Fetches: rounds * wins, Requests: rounds * wins, Elems: 2 * local, Write: true},
			Tally{Array: "scratch", Fetches: wins, Requests: wins, Elems: 2 * local})
	}
	two.Tallies = append(two.Tallies,
		Tally{Array: "dst", Fetches: wins, Requests: wins, Elems: local, Write: true})

	return []Candidate{direct, sieved, two}
}
