package parity

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// TestGeometryInvariants checks the stripe layout's two load-bearing
// properties: parity never lands on the disk whose data it covers, and
// the stripe<->block mapping round-trips for every rank.
func TestGeometryInvariants(t *testing.T) {
	for procs := 2; procs <= 8; procs++ {
		for rank := 0; rank < procs; rank++ {
			seen := make(map[int64]bool)
			for k := int64(0); k < 200; k++ {
				s := StripeOf(procs, rank, k)
				if seen[s] {
					t.Fatalf("P=%d r=%d: block %d reuses stripe %d", procs, rank, k, s)
				}
				seen[s] = true
				p := ParityRankOf(procs, s)
				if p == rank {
					t.Fatalf("P=%d r=%d block %d: parity on own disk (stripe %d)", procs, rank, k, s)
				}
				if got := DataBlockOf(procs, rank, s); got != k {
					t.Fatalf("P=%d r=%d: DataBlockOf(StripeOf(%d)) = %d", procs, rank, k, got)
				}
				if got := DataBlockOf(procs, p, s); got != -1 {
					t.Fatalf("P=%d stripe %d: parity rank %d reports data block %d", procs, s, p, got)
				}
			}
		}
	}
}

func TestParseLAF(t *testing.T) {
	cases := []struct {
		name string
		base string
		rank int
		ok   bool
	}{
		{"c.p3.laf", "c", 3, true},
		{"array.p0.laf", "array", 0, true},
		{"c.p1.collio.scratch", "", 0, false},
		{"ckpt.s0.c.p1.laf", "ckpt.s0.c", 1, true},
		{"c.p2.parity", "", 0, false},
		{"noprefix.laf", "", 0, false},
	}
	for _, c := range cases {
		base, rank, ok := parseLAF(c.name)
		if ok != c.ok || (ok && (base != c.base || rank != c.rank)) {
			t.Errorf("parseLAF(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.name, base, rank, ok, c.base, c.rank, c.ok)
		}
	}
}

// writeVia writes src at elem offset off through the protected LAF.
func writeVia(t *testing.T, l *iosim.LAF, off int64, src []float64) {
	t.Helper()
	if _, err := l.WriteChunks([]iosim.Chunk{{Off: off, Len: len(src)}}, src); err != nil {
		t.Fatalf("write: %v", err)
	}
}

// setupGroup creates a protected group of P files with random content,
// returning the disks, LAFs and expected per-rank content.
func setupGroup(t *testing.T, fs iosim.FS, st *Store, cfg sim.Config, res *iosim.Resilience, procs int, elems int64, stats []*trace.IOStats) ([]*iosim.Disk, []*iosim.LAF, [][]float64) {
	t.Helper()
	st.Protect("c")
	rng := rand.New(rand.NewSource(7))
	disks := make([]*iosim.Disk, procs)
	lafs := make([]*iosim.LAF, procs)
	want := make([][]float64, procs)
	for r := 0; r < procs; r++ {
		var s *trace.IOStats
		if stats != nil {
			s = stats[r]
		}
		disks[r] = iosim.NewResilientDisk(fs, cfg, s, res)
		disks[r].SetParity(st)
		l, err := disks[r].CreateLAF(fmt.Sprintf("c.p%d.laf", r), elems)
		if err != nil {
			t.Fatalf("create rank %d: %v", r, err)
		}
		lafs[r] = l
		want[r] = make([]float64, elems)
		for i := range want[r] {
			want[r][i] = rng.Float64()
		}
		writeVia(t, l, 0, want[r])
	}
	return disks, lafs, want
}

// TestReconstructAfterDiskLoss drops every file of one logical disk and
// checks that a read of the lost file comes back bitwise identical via
// parity reconstruction, for every choice of lost disk.
func TestReconstructAfterDiskLoss(t *testing.T) {
	const procs = 4
	const elems = 700 // deliberately not a multiple of the 128-elem block
	for lost := 0; lost < procs; lost++ {
		t.Run(fmt.Sprintf("disk%d", lost), func(t *testing.T) {
			mem := iosim.NewMemFS()
			chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Seed: 11})
			cfg := sim.Delta(procs)
			res := iosim.NewResilience(iosim.DefaultRetryPolicy())
			stats := make([]*trace.IOStats, procs)
			comm := make([]*trace.CommStats, procs)
			st := NewStore(chaos, cfg, procs, res)
			for r := 0; r < procs; r++ {
				stats[r] = &trace.IOStats{}
				comm[r] = &trace.CommStats{}
				st.SetCommSink(r, comm[r])
			}
			_, lafs, want := setupGroup(t, chaos, st, cfg, res, procs, elems, stats)

			chaos.LoseDisk(fmt.Sprintf("c.p%d.laf", lost))

			got := make([]float64, elems)
			sec, err := lafs[lost].ReadChunks([]iosim.Chunk{{Off: 0, Len: elems}}, got)
			if err != nil {
				t.Fatalf("degraded read: %v", err)
			}
			if sec <= 0 {
				t.Fatalf("degraded read charged no simulated time")
			}
			for i, v := range got {
				if v != want[lost][i] {
					t.Fatalf("element %d: got %v want %v after reconstruction", i, v, want[lost][i])
				}
			}
			if stats[lost].Reconstructions != 1 {
				t.Fatalf("Reconstructions = %d, want 1", stats[lost].Reconstructions)
			}
			wantBlocks := int64(elems*iosim.FileElemBytes+BlockBytes-1) / BlockBytes
			if stats[lost].ReconstructedBlocks != wantBlocks {
				t.Fatalf("ReconstructedBlocks = %d, want %d", stats[lost].ReconstructedBlocks, wantBlocks)
			}
			if comm[lost].RecoveryMessages != wantBlocks*int64(procs-1) {
				t.Fatalf("RecoveryMessages = %d, want %d", comm[lost].RecoveryMessages, wantBlocks*(procs-1))
			}
			if !st.Degraded() {
				t.Fatalf("store not marked degraded after reconstruction")
			}

			// The replacement file must verify against reseeded checksums
			// on a plain (non-degraded) re-read too.
			again := make([]float64, elems)
			if _, err := lafs[lost].ReadChunks([]iosim.Chunk{{Off: 0, Len: elems}}, again); err != nil {
				t.Fatalf("re-read after recovery: %v", err)
			}
		})
	}
}

// TestWriteAfterDiskLossRecovers loses a disk and then writes to the lost
// file: the write path must reconstruct the old content first (the parity
// update needs it) and land the new data, parity included — proven by
// losing the disk a second time and reading back.
func TestWriteAfterDiskLossRecovers(t *testing.T) {
	const procs = 3
	const elems = 512
	mem := iosim.NewMemFS()
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Seed: 3})
	cfg := sim.Delta(procs)
	res := iosim.NewResilience(iosim.DefaultRetryPolicy())
	st := NewStore(chaos, cfg, procs, res)
	_, lafs, want := setupGroup(t, chaos, st, cfg, res, procs, elems, nil)

	chaos.LoseDisk("c.p1.laf")

	patch := []float64{1.5, -2.5, 3.25}
	writeVia(t, lafs[1], 100, patch)
	copy(want[1][100:], patch)

	// Second loss of the same disk: reconstruction now must reproduce
	// the patched content, i.e. the degraded write also updated parity.
	chaos.LoseDisk("c.p1.laf")
	got := make([]float64, elems)
	if _, err := lafs[1].ReadChunks([]iosim.Chunk{{Off: 0, Len: elems}}, got); err != nil {
		t.Fatalf("read after second loss: %v", err)
	}
	for i, v := range got {
		if v != want[1][i] {
			t.Fatalf("element %d: got %v want %v", i, v, want[1][i])
		}
	}
}

// TestParityCountersClosedForm checks the RMW accounting against the
// advertised closed form for block-aligned writes.
func TestParityCountersClosedForm(t *testing.T) {
	const procs = 4
	const elems = 1024 // 8 blocks of 128 elements
	mem := iosim.NewMemFS()
	cfg := sim.Delta(procs)
	st := NewStore(mem, cfg, procs, nil)
	st.Protect("c")
	stats := &trace.IOStats{}
	d := iosim.NewDisk(mem, cfg, stats)
	d.SetParity(st)
	l, err := d.CreateLAF("c.p0.laf", elems)
	if err != nil {
		t.Fatal(err)
	}
	// One write of 2 blocks (256 elems, aligned): nb=2, R=min(2,3)=2.
	writeVia(t, l, 256, make([]float64, 256))
	if stats.ParityReads != 3 || stats.ParityWrites != 2 {
		t.Fatalf("ParityReads/Writes = %d/%d, want 3/2", stats.ParityReads, stats.ParityWrites)
	}
	wantRead := int64((2048 + 2*1024) * cfg.ElemSize / 8)
	wantWritten := int64(2 * 1024 * cfg.ElemSize / 8)
	if stats.ParityBytesRead != wantRead || stats.ParityBytesWritten != wantWritten {
		t.Fatalf("ParityBytesRead/Written = %d/%d, want %d/%d",
			stats.ParityBytesRead, stats.ParityBytesWritten, wantRead, wantWritten)
	}
}

// TestDirtyGroupRefusesReconstruction: a group whose parity is flagged
// out of sync must refuse to fabricate data.
func TestDirtyGroupRefusesReconstruction(t *testing.T) {
	const procs = 3
	const elems = 128
	mem := iosim.NewMemFS()
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Seed: 5})
	cfg := sim.Delta(procs)
	st := NewStore(chaos, cfg, procs, nil)
	_, lafs, _ := setupGroup(t, chaos, st, cfg, nil, procs, elems, nil)

	// Re-creating a member under a live group leaves stale parity.
	nd := iosim.NewDisk(chaos, cfg, nil)
	nd.SetParity(st)
	if _, err := nd.CreateLAF("c.p2.laf", elems); err != nil {
		t.Fatal(err)
	}
	if !st.Dirty() {
		t.Fatal("store not dirty after member re-creation")
	}
	chaos.LoseDisk("c.p0.laf")
	got := make([]float64, elems)
	_, err := lafs[0].ReadChunks([]iosim.Chunk{{Off: 0, Len: elems}}, got)
	if err == nil {
		t.Fatal("degraded read of dirty group succeeded; want refusal")
	}
	if !errors.Is(err, iosim.ErrDiskLost) {
		t.Fatalf("error chain lost the original disk-loss fault: %v", err)
	}
}

// TestRebuildRankRestoresRedundancy dirties a group, rebuilds parity on
// every rank, and checks a subsequent disk loss is survivable again.
func TestRebuildRankRestoresRedundancy(t *testing.T) {
	const procs = 4
	const elems = 300
	mem := iosim.NewMemFS()
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Seed: 9})
	cfg := sim.Delta(procs)
	res := iosim.NewResilience(iosim.DefaultRetryPolicy())
	st := NewStore(chaos, cfg, procs, res)
	disks, lafs, want := setupGroup(t, chaos, st, cfg, res, procs, elems, nil)

	// Corrupt the parity state wholesale, then resync.
	for p := 0; p < procs; p++ {
		f, err := mem.Create(ParityFileName("c", p))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	st.MarkDirty("c")
	for r := 0; r < procs; r++ {
		if _, err := st.RebuildRank(disks[r], r); err != nil {
			t.Fatalf("rebuild rank %d: %v", r, err)
		}
	}
	st.ClearDirty()
	if st.Dirty() {
		t.Fatal("store still dirty after full rebuild")
	}

	chaos.LoseDisk("c.p2.laf")
	got := make([]float64, elems)
	if _, err := lafs[2].ReadChunks([]iosim.Chunk{{Off: 0, Len: elems}}, got); err != nil {
		t.Fatalf("read after rebuild: %v", err)
	}
	for i, v := range got {
		if v != want[2][i] {
			t.Fatalf("element %d: got %v want %v", i, v, want[2][i])
		}
	}
}
