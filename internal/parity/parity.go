// Package parity adds RAID-5-style redundancy to the local array files of
// an out-of-core execution. The local array files of one global array —
// one file per processor — form a parity group striped in fixed-size
// blocks across the P logical disks. Every stripe holds one data block
// from each of P-1 disks plus one parity block (their XOR) on the
// remaining disk, with the parity role rotated across disks so no single
// disk serializes all parity traffic.
//
// The layout is skewed so a disk never holds the parity covering its own
// data: data block k of rank r lives in stripe
//
//	q = k / (P-1),  t = k mod (P-1),  t' = t    if t <  r
//	                                  t' = t+1  if t >= r
//	stripe(r, k) = q*P + t'
//
// and stripe s is parity-hosted by rank s mod P at block s/P of that
// rank's parity file. Since t' skips r, the parity rank of every stripe
// containing a block of rank r differs from r, so the loss of any one
// logical disk leaves P-1 survivors (P-2 data blocks plus the parity
// block) from which every lost block is recovered by XOR.
//
// Blocks are ChecksumBlockBytes long, aligned with the checksum layer's
// verification blocks: a write that is clean for checksumming is clean
// for parity too. Parity files are named "<base>.p<p>.parity" — the
// ".p<p>." infix places them on rank p's logical disk, so a disk-loss
// fault takes a disk's parity blocks down with its data blocks, exactly
// as on a real machine.
package parity

import (
	"strconv"
	"strings"

	"github.com/ooc-hpf/passion/internal/iosim"
)

// BlockBytes is the parity stripe unit. It equals the checksum block size
// so parity and checksum block boundaries coincide.
const BlockBytes = iosim.ChecksumBlockBytes

// StripeOf returns the stripe index covering data block `block` of rank
// `rank` in a group of procs disks (procs must be >= 2).
func StripeOf(procs, rank int, block int64) int64 {
	q := block / int64(procs-1)
	t := block % int64(procs-1)
	if t >= int64(rank) {
		t++
	}
	return q*int64(procs) + t
}

// ParityRankOf returns the rank whose disk hosts the parity block of the
// given stripe.
func ParityRankOf(procs int, stripe int64) int {
	return int(stripe % int64(procs))
}

// ParityIndexOf returns the block index within the parity rank's parity
// file where the stripe's parity block lives.
func ParityIndexOf(procs int, stripe int64) int64 {
	return stripe / int64(procs)
}

// DataBlockOf returns the data block index of `rank` covered by the given
// stripe, or -1 when rank is the stripe's parity rank (it contributes no
// data block there).
func DataBlockOf(procs, rank int, stripe int64) int64 {
	q := stripe / int64(procs)
	p := stripe % int64(procs)
	if p == int64(rank) {
		return -1
	}
	if p > int64(rank) {
		p--
	}
	return q*int64(procs-1) + p
}

// ParityFileName returns the name of the parity file hosted on rank p's
// logical disk for the named parity group.
func ParityFileName(base string, p int) string {
	return base + ".p" + strconv.Itoa(p) + ".parity"
}

// parseLAF splits a local array file name "<base>.p<rank>.laf" into its
// group base and rank. Scratch and snapshot files do not match the
// pattern (or carry a prefixed base) and stay outside parity protection.
func parseLAF(name string) (base string, rank int, ok bool) {
	stem, found := strings.CutSuffix(name, ".laf")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndex(stem, ".p")
	if i < 0 {
		return "", 0, false
	}
	r, err := strconv.Atoi(stem[i+2:])
	if err != nil || r < 0 {
		return "", 0, false
	}
	return stem[:i], r, true
}
