// Word-wide XOR kernels for parity maintenance. Deltas, stripe folds and
// reconstruction XORs all run over BlockBytes-sized (or widened-span)
// byte buffers; processing eight bytes per step instead of one is the
// single biggest arithmetic win on the recovery path. XOR is bytewise,
// so reading and writing words through a fixed byte order preserves byte
// positions on any host.
package parity

import "encoding/binary"

// xorInto folds src into dst elementwise: dst[i] ^= src[i]. The slices
// must have equal length.
func xorInto(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// xorBytes writes a XOR b into dst elementwise: dst[i] = a[i] ^ b[i].
// All three slices must have equal length; dst may alias a or b.
func xorBytes(dst, a, b []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// xorIntoScalar is the one-byte-at-a-time reference xorInto is tested
// against.
func xorIntoScalar(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// xorBytesScalar is the reference for xorBytes.
func xorBytesScalar(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}
