package parity

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Store is the shared parity state of one execution: which files are
// protected, their sizes, and the open handles of data and parity files.
// It implements iosim.ParityHook, so the executor attaches one Store to
// every rank's disks. A single mutex serializes parity read-modify-write
// cycles across ranks; because XOR deltas commute, the serialization
// order does not affect the final parity content, which keeps runs
// deterministic.
type Store struct {
	fs    iosim.FS
	cfg   sim.Config
	procs int
	res   *iosim.Resilience

	mu      sync.Mutex
	phantom bool
	bases   map[string]bool      // protected group base names
	files   map[string]*fileInfo // data file name -> registration
	members map[string]int       // base -> registered member count
	// memberBases mirrors the keys of members in sorted order, so
	// rebuild sweeps iterate groups deterministically without building
	// and sorting a slice per call (the per-rank end-of-run sweep is on
	// the allocation-gated hot path). It is backed by baseArr so runs
	// with few groups never allocate for it.
	memberBases []string
	baseArr     [8]string
	handles     map[string]iosim.File
	// dirty marks groups whose parity content cannot be trusted until a
	// full rebuild: files opened with unknown history, or members
	// removed while the group was still live.
	dirty map[string]bool
	// lostParity marks individual parity files that failed and await a
	// rebuild by their hosting rank.
	lostParity map[string]bool
	comm       map[int]*trace.CommStats
	degraded   bool
}

type fileInfo struct {
	base  string
	rank  int
	bytes int64
}

// NewStore returns an empty parity store over the shared file system.
// res may be nil; when present, reconstructed file content is re-recorded
// in the checksum store so degraded reads keep verifying. Parity is only
// meaningful for procs >= 2 (with one disk there are no survivors); a
// store for procs < 2 protects nothing.
func NewStore(fs iosim.FS, cfg sim.Config, procs int, res *iosim.Resilience) *Store {
	return &Store{
		fs:         fs,
		cfg:        cfg,
		procs:      procs,
		res:        res,
		bases:      make(map[string]bool),
		files:      make(map[string]*fileInfo),
		members:    make(map[string]int),
		handles:    make(map[string]iosim.File),
		dirty:      make(map[string]bool),
		lostParity: make(map[string]bool),
		comm:       make(map[int]*trace.CommStats),
	}
}

// SetPhantom switches the store to accounting-only mode: parity traffic
// is counted and timed but no parity files are created or written.
func (st *Store) SetPhantom(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.phantom = on
}

// Protect marks a group base name (a global array name) as
// parity-protected. Files named "<base>.p<rank>.laf" created or opened
// after this call are covered.
func (st *Store) Protect(base string) {
	if st.procs < 2 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.bases[base] = true
}

// SetCommSink registers the communication statistics of one rank so the
// gather traffic of reconstructions of that rank's files is accounted.
func (st *Store) SetCommSink(rank int, c *trace.CommStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.comm[rank] = c
}

// Degraded reports whether any recovery action ran (reconstruction,
// inline parity rebuild, or a parity write failure that left a parity
// file pending rebuild).
func (st *Store) Degraded() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.degraded
}

// Dirty reports whether any parity group or parity file needs a rebuild
// before the redundancy guarantee holds again.
func (st *Store) Dirty() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.dirty) > 0 || len(st.lostParity) > 0
}

// MarkDirty flags a group's parity as out of sync, forcing a rebuild
// before reconstruction is allowed again.
func (st *Store) MarkDirty(base string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dirty[base] = true
	st.degraded = true
}

// ClearDirty marks every group as back in sync. The executor calls it
// after a barrier that follows RebuildRank on every rank.
func (st *Store) ClearDirty() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dirty = make(map[string]bool)
}

// Close releases every cached handle and removes the parity files of all
// still-registered groups from the backing store (end-of-run cleanup; the
// data files are the executor's to remove).
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for name, h := range st.handles {
		h.Close()
		delete(st.handles, name)
	}
	if st.phantom {
		return
	}
	for base := range st.members {
		for p := 0; p < st.procs; p++ {
			st.fs.Remove(ParityFileName(base, p)) // best effort
		}
	}
}

// Attach registers a pre-existing protected file as a trusted member of
// its group without flagging the group dirty. The executor's offline
// rank-recovery pre-pass uses it: the failed attempt maintained parity
// write-through for every surviving file, so re-registering them under a
// fresh Store must not force a resync — a dirty group would refuse the
// very reconstruction the pre-pass exists to run. Unlike Opened, which
// must presume unknown history, Attach is only correct when the caller
// knows the parity on the backing store matches the file content.
func (st *Store) Attach(name string, bytes int64) {
	base, rank, ok := parseLAF(name)
	if !ok {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.bases[base] {
		return
	}
	if _, known := st.files[name]; !known {
		st.members[base]++
		st.noteBase(base)
		st.files[name] = &fileInfo{base: base, rank: rank, bytes: bytes}
	}
}

// Detach releases every cached handle but, unlike Close, leaves the
// parity files on the backing store. Transient stores (the recovery
// pre-pass) detach so the parity a later pass or the resumed attempt
// still needs survives them.
func (st *Store) Detach() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for name, h := range st.handles {
		h.Close()
		delete(st.handles, name)
	}
}

// Protects implements iosim.ParityHook.
func (st *Store) Protects(name string) bool {
	base, _, ok := parseLAF(name)
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bases[base]
}

// Created implements iosim.ParityHook: a protected file was freshly
// created, so its content is all zeros. The first member of a group also
// resets the group's parity files to empty (all-zero parity), which both
// initializes them and discards any stale parity a previous execution
// left on the shared file system.
func (st *Store) Created(name string, bytes int64) {
	base, rank, ok := parseLAF(name)
	if !ok {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.bases[base] {
		return
	}
	if _, reRegistered := st.files[name]; reRegistered {
		// The file was truncated under a live group: its old content is
		// still folded into the parity. Flag the group for a rebuild.
		st.dirty[base] = true
		st.degraded = true
	} else {
		st.members[base]++
		st.noteBase(base)
	}
	st.files[name] = &fileInfo{base: base, rank: rank, bytes: bytes}
	if st.members[base] == 1 {
		st.resetParityFiles(base)
	}
}

// Opened implements iosim.ParityHook: a pre-existing protected file
// appeared with unknown parity state, so the group needs a resync before
// its parity can be trusted.
func (st *Store) Opened(name string, bytes int64) {
	base, rank, ok := parseLAF(name)
	if !ok {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.bases[base] {
		return
	}
	if _, known := st.files[name]; !known {
		st.members[base]++
		st.noteBase(base)
		st.files[name] = &fileInfo{base: base, rank: rank, bytes: bytes}
		st.dirty[base] = true
	}
}

// Removed implements iosim.ParityHook. Removing a member of a live group
// leaves its old content folded into the parity, so the group goes dirty;
// removing the last member retires the group and its parity files.
func (st *Store) Removed(name string) {
	fi, haveIt := st.lookup(name)
	if !haveIt {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.files, name)
	if h := st.handles[name]; h != nil {
		h.Close()
		delete(st.handles, name)
	}
	st.members[fi.base]--
	if st.members[fi.base] > 0 {
		st.dirty[fi.base] = true
		return
	}
	delete(st.members, fi.base)
	st.forgetBase(fi.base)
	delete(st.dirty, fi.base)
	for p := 0; p < st.procs; p++ {
		pname := ParityFileName(fi.base, p)
		if h := st.handles[pname]; h != nil {
			h.Close()
			delete(st.handles, pname)
		}
		delete(st.lostParity, pname)
		if !st.phantom {
			st.fs.Remove(pname) // best effort: the run is over
		}
	}
}

// noteBase records a group whose first member just registered, keeping
// memberBases sorted. Called with st.mu held.
func (st *Store) noteBase(base string) {
	if st.memberBases == nil {
		st.memberBases = st.baseArr[:0]
	}
	i := sort.SearchStrings(st.memberBases, base)
	if i < len(st.memberBases) && st.memberBases[i] == base {
		return
	}
	st.memberBases = append(st.memberBases, "")
	copy(st.memberBases[i+1:], st.memberBases[i:])
	st.memberBases[i] = base
}

// forgetBase drops a retired group from memberBases. Called with st.mu
// held.
func (st *Store) forgetBase(base string) {
	i := sort.SearchStrings(st.memberBases, base)
	if i < len(st.memberBases) && st.memberBases[i] == base {
		st.memberBases = append(st.memberBases[:i], st.memberBases[i+1:]...)
	}
}

func (st *Store) lookup(name string) (fileInfo, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fi := st.files[name]
	if fi == nil {
		return fileInfo{}, false
	}
	return *fi, true
}

// resetParityFiles creates (truncating) the P parity files of a group.
// Zero-length parity files are correct for freshly created data files:
// reads past the end yield zero blocks, the XOR identity. Called with
// st.mu held.
func (st *Store) resetParityFiles(base string) {
	if st.phantom {
		return
	}
	for p := 0; p < st.procs; p++ {
		pname := ParityFileName(base, p)
		if old := st.handles[pname]; old != nil {
			old.Close()
		}
		f, err := st.createRetry(pname)
		if err != nil {
			delete(st.handles, pname)
			st.lostParity[pname] = true
			st.degraded = true
			continue
		}
		st.handles[pname] = f
		delete(st.lostParity, pname)
	}
}

// policy returns the retry policy governing the store's own I/O.
func (st *Store) policy() iosim.RetryPolicy {
	if st.res != nil {
		return st.res.Policy
	}
	return iosim.DefaultRetryPolicy()
}

// retry runs op under the retry policy, returning the simulated backoff
// seconds spent. Transient failures that outlive the budget come back as
// a permanent ExhaustedError.
func (st *Store) retry(op, name string, f func() error) (float64, error) {
	pol := st.policy()
	var sec float64
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil || !iosim.IsTransient(err) {
			return sec, err
		}
		if attempt >= pol.MaxRetries {
			return sec, &iosim.ExhaustedError{Op: op, File: name, Attempts: attempt + 1, Last: err}
		}
		sec += pol.Backoff(attempt)
	}
}

func (st *Store) createRetry(name string) (iosim.File, error) {
	var f iosim.File
	_, err := st.retry("parity-create", name, func() error {
		var err error
		f, err = st.fs.Create(name)
		return err
	})
	return f, err
}

// dataHandle returns the store's own handle to a registered data file,
// opening it on first use. Called with st.mu held.
func (st *Store) dataHandle(name string) (iosim.File, float64, error) {
	if h := st.handles[name]; h != nil {
		return h, 0, nil
	}
	var f iosim.File
	sec, err := st.retry("parity-open", name, func() error {
		var err error
		f, err = st.fs.Open(name)
		return err
	})
	if err != nil {
		return nil, sec, err
	}
	st.handles[name] = f
	return f, sec, nil
}

// readFull reads len(buf) bytes at off, zero-filling whatever lies past
// the end of the file (parity files grow lazily; short data files
// zero-pad their last stripe). Retries transient faults.
func (st *Store) readFull(f iosim.File, name string, buf []byte, off int64) (float64, error) {
	return st.retry("parity-read", name, func() error {
		clear(buf)
		n, err := f.ReadAt(buf, off)
		if err == io.EOF {
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
			return nil
		}
		return err
	})
}

// writeFull writes buf at off with transient retries.
func (st *Store) writeFull(f iosim.File, name string, buf []byte, off int64) (float64, error) {
	return st.retry("parity-write", name, func() error {
		n, err := f.WriteAt(buf, off)
		if err != nil {
			return err
		}
		if n != len(buf) {
			return fmt.Errorf("parity: short write on %s: %d of %d bytes", name, n, len(buf))
		}
		return nil
	})
}

// modelBytes converts physical file bytes into cost-model bytes so parity
// traffic is charged on the same scale as every other transfer.
func (st *Store) modelBytes(fileBytes int64) int64 {
	return fileBytes * int64(st.cfg.ElemSize) / iosim.FileElemBytes
}

// span describes the block-aligned window of one protected write.
type span struct {
	lo, hi     int64 // widened byte range, clamped to the file
	firstBlock int64
	nb         int64 // blocks covered
}

func (st *Store) spanOf(fi fileInfo, byteOff, n int64) span {
	lo := byteOff / BlockBytes * BlockBytes
	hi := (byteOff + n + BlockBytes - 1) / BlockBytes * BlockBytes
	if hi > fi.bytes {
		hi = fi.bytes
	}
	return span{
		lo:         lo,
		hi:         hi,
		firstBlock: lo / BlockBytes,
		nb:         (hi - lo + BlockBytes - 1) / BlockBytes,
	}
}

// parityRuns groups the parity blocks touched by a span into one
// contiguous run per parity rank (the rotation maps consecutive data
// blocks of one rank to consecutive parity indices of each parity rank).
type parityRun struct {
	rank       int
	qLo, qHi   int64 // parity block index range, inclusive
	dataBlocks []int64
}

func (st *Store) parityRunsOf(rank int, sp span) []parityRun {
	byRank := make(map[int]*parityRun)
	var order []int
	for k := sp.firstBlock; k < sp.firstBlock+sp.nb; k++ {
		s := StripeOf(st.procs, rank, k)
		p := ParityRankOf(st.procs, s)
		q := ParityIndexOf(st.procs, s)
		run := byRank[p]
		if run == nil {
			run = &parityRun{rank: p, qLo: q, qHi: q}
			byRank[p] = run
			order = append(order, p)
		}
		if q < run.qLo {
			run.qLo = q
		}
		if q > run.qHi {
			run.qHi = q
		}
		run.dataBlocks = append(run.dataBlocks, k)
	}
	runs := make([]parityRun, 0, len(order))
	for _, p := range order {
		runs = append(runs, *byRank[p])
	}
	return runs
}

// WriteThrough implements iosim.ParityHook: it performs one protected
// data write and the read-modify-write parity update atomically with
// respect to other ranks' protected writes.
//
// The accounting is deliberately closed-form so measured counters can be
// checked against the cost model exactly: a write covering nb parity
// blocks touching R = min(nb, P-1) parity ranks charges 1+R parity reads
// (the old data over the widened span, plus one coalesced parity read per
// rank), R parity writes, and moves widened+nb*BlockBytes bytes inward
// and nb*BlockBytes bytes outward, timed with the machine's IOTime rule.
// Retry backoff and inline parity rebuilds come on top and are folded
// into the returned seconds.
func (st *Store) WriteThrough(d *iosim.Disk, name string, byteOff, n int64, buf []byte, write func() (float64, error)) (float64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fi := st.files[name]
	if fi == nil {
		// Registration raced away (never happens in normal execution);
		// fall back to the bare data write.
		if buf == nil {
			return 0, nil
		}
		return write()
	}
	sp := st.spanOf(*fi, byteOff, n)
	runs := st.parityRunsOf(fi.rank, sp)

	var sec float64
	if buf != nil {
		// Old data over the widened span, for the XOR delta. readFull
		// zero-fills the pooled buffer before every attempt.
		old := bufpool.GetBytes(int(sp.hi - sp.lo))
		defer bufpool.PutBytes(old)
		h, hs, err := st.dataHandle(name)
		sec += hs
		if err != nil {
			return sec, err
		}
		rs, err := st.readFull(h, name, old, sp.lo)
		sec += rs
		if err != nil {
			return sec, err
		}

		ws, err := write()
		sec += ws
		if err != nil {
			return sec, err
		}

		// delta = old XOR new over the written range, zero elsewhere (the
		// pooled buffer must be cleared explicitly where make zeroed).
		delta := bufpool.GetBytes(int(sp.nb * BlockBytes))
		defer bufpool.PutBytes(delta)
		clear(delta)
		w := byteOff - sp.lo
		xorBytes(delta[w:w+n], old[w:w+n], buf[:n])
		for _, run := range runs {
			ps, err := st.applyParityRun(d, *fi, run, sp, delta)
			sec += ps
			if err != nil {
				// Parity maintenance failed permanently. The data write
				// itself succeeded; leave the parity file flagged for a
				// rebuild rather than failing the computation.
				st.lostParity[ParityFileName(fi.base, run.rank)] = true
				st.degraded = true
			}
		}
	}

	// Uniform accounting, identical in real, degraded and phantom runs.
	r := int64(len(runs))
	widened := st.modelBytes(sp.hi - sp.lo)
	pbytes := st.modelBytes(sp.nb * BlockBytes)
	if s := d.Stats(); s != nil {
		s.ParityReads += 1 + r
		s.ParityWrites += r
		s.ParityBytesRead += widened + pbytes
		s.ParityBytesWritten += pbytes
		if tr, now, label := d.TraceSink(); tr != nil {
			tr.Emit(trace.Span{Kind: trace.KindParityRMW, Label: label, Start: now,
				N: 1 + r, M: r, Bytes: widened + pbytes, Bytes2: pbytes})
		}
	}
	sec += st.cfg.IOTime(int(1+2*r), widened+2*pbytes)
	return sec, nil
}

// applyParityRun folds the delta blocks of one parity rank into its
// parity file as a single coalesced read-modify-write. When the parity
// file is lost or fails permanently, it is rebuilt in place from the data
// files (which already hold the new content). Called with st.mu held.
func (st *Store) applyParityRun(d *iosim.Disk, fi fileInfo, run parityRun, sp span, delta []byte) (float64, error) {
	pname := ParityFileName(fi.base, run.rank)
	var sec float64
	if st.lostParity[pname] {
		rs, err := st.rebuildParityFileLocked(d, fi.base, run.rank)
		return sec + rs, err
	}
	h := st.handles[pname]
	if h == nil {
		var err error
		h, err = st.createRetry(pname)
		if err != nil {
			return sec, err
		}
		st.handles[pname] = h
	}
	span := bufpool.GetBytes(int((run.qHi - run.qLo + 1) * BlockBytes))
	defer bufpool.PutBytes(span)
	rs, err := st.readFull(h, pname, span, run.qLo*BlockBytes)
	sec += rs
	if err == nil {
		for _, k := range run.dataBlocks {
			s := StripeOf(st.procs, fi.rank, k)
			q := ParityIndexOf(st.procs, s)
			dOff := (k - sp.firstBlock) * BlockBytes
			pOff := (q - run.qLo) * BlockBytes
			xorInto(span[pOff:pOff+BlockBytes], delta[dOff:dOff+BlockBytes])
		}
		var ws float64
		ws, err = st.writeFull(h, pname, span, run.qLo*BlockBytes)
		sec += ws
	}
	if err != nil {
		// The parity file itself is failing (its disk may be gone):
		// rebuild it wholesale from the data files, which are intact and
		// already hold the new content.
		rs, rerr := st.rebuildParityFileLocked(d, fi.base, run.rank)
		return sec + rs, rerr
	}
	return sec, nil
}
