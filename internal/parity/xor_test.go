package parity

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestXorKernelsMatchScalar checks the word-wide kernels against the
// scalar references over empty blocks, odd lengths, word-multiple
// lengths and unaligned sub-slices.
func TestXorKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, BlockBytes - 1, BlockBytes, BlockBytes + 1}
	for _, n := range lengths {
		for _, off := range []int{0, 1, 3, 5, 7} {
			// Carve unaligned windows out of a larger backing array so the
			// kernels see data pointers at every alignment mod 8.
			backA := make([]byte, off+n)
			backB := make([]byte, off+n)
			rng.Read(backA)
			rng.Read(backB)
			a, b := backA[off:], backB[off:]

			wantInto := append([]byte(nil), a...)
			xorIntoScalar(wantInto, b)
			gotInto := append([]byte(nil), a...)
			xorInto(gotInto, b)
			if !bytes.Equal(gotInto, wantInto) {
				t.Fatalf("xorInto(len=%d, off=%d) diverges from scalar", n, off)
			}

			want := make([]byte, n)
			xorBytesScalar(want, a, b)
			got := make([]byte, n)
			xorBytes(got, a, b)
			if !bytes.Equal(got, want) {
				t.Fatalf("xorBytes(len=%d, off=%d) diverges from scalar", n, off)
			}
		}
	}
}

// TestXorBytesAliasing pins that dst may alias either input (the
// WriteThrough delta computation writes into a buffer that can be one of
// its operands).
func TestXorBytesAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := make([]byte, 100)
	b := make([]byte, 100)
	rng.Read(a)
	rng.Read(b)
	want := make([]byte, 100)
	xorBytesScalar(want, a, b)

	dst := append([]byte(nil), a...)
	xorBytes(dst, dst, b)
	if !bytes.Equal(dst, want) {
		t.Fatal("xorBytes with dst aliasing a diverges")
	}
	dst = append([]byte(nil), b...)
	xorBytes(dst, a, dst)
	if !bytes.Equal(dst, want) {
		t.Fatal("xorBytes with dst aliasing b diverges")
	}
}

func BenchmarkXorIntoBlock(b *testing.B) {
	dst := make([]byte, BlockBytes)
	src := make([]byte, BlockBytes)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		xorInto(dst, src)
	}
}

func BenchmarkXorIntoBlockScalar(b *testing.B) {
	dst := make([]byte, BlockBytes)
	src := make([]byte, BlockBytes)
	b.SetBytes(BlockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		xorIntoScalar(dst, src)
	}
}
