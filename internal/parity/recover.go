package parity

import (
	"errors"
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// readVerified reads want bytes at off (zero-filling past EOF up to
// len(buf)) and, when a checksum store is attached, verifies the content
// against the recorded CRC32s, retrying mismatches like the resilient
// read path does. Reconstruction must not fold corrupted survivor blocks
// into the XOR. Called with st.mu held.
func (st *Store) readVerified(f iosim.File, name string, buf []byte, off, want int64) (float64, error) {
	pol := st.policy()
	var sec float64
	for attempt := 0; ; attempt++ {
		rs, err := st.readFull(f, name, buf, off)
		sec += rs
		if err == nil {
			if st.res == nil || want <= 0 {
				return sec, nil
			}
			if _, ok := st.res.Check(name, off, buf[:want]); ok {
				return sec, nil
			}
			err = &iosim.CorruptionError{File: name, Block: off / BlockBytes}
		}
		if !iosim.IsTransient(err) {
			return sec, err
		}
		if attempt >= pol.MaxRetries {
			return sec, &iosim.ExhaustedError{Op: "parity-verify", File: name, Attempts: attempt + 1, Last: err}
		}
		sec += pol.Backoff(attempt)
	}
}

// Recover implements iosim.ParityHook: it reconstructs the named data
// file — whose disk failed permanently — from the P-1 surviving disks.
// For every block of the lost file it gathers the stripe's parity block
// and the P-2 surviving data blocks, XORs them back into the lost
// content, and writes the result to a replacement file (whose creation
// stands in for mounting a spare disk). The gather traffic is charged as
// recovery messages on the owning rank's communication statistics, and
// the I/O plus message time is returned for the caller to fold into the
// interrupted operation's duration.
func (st *Store) Recover(d *iosim.Disk, name string, cause error) (float64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fi := st.files[name]
	if fi == nil {
		return 0, fmt.Errorf("parity: %s is not protected (original fault: %w)", name, cause)
	}
	if st.dirty[fi.base] {
		return 0, fmt.Errorf("parity: group %q parity is out of sync, cannot reconstruct %s (original fault: %w)", fi.base, name, cause)
	}
	st.degraded = true
	fail := func(err error) (float64, error) {
		return 0, fmt.Errorf("parity: reconstruct %s: %w", name, errors.Join(err, cause))
	}

	// The failure domain is the whole logical disk, which also hosts this
	// rank's parity file. Presume it lost too: drop any cached handle and
	// flag it, so the rebuild pass recreates it before the run is declared
	// clean. (If it in fact survived, the rebuild merely rewrites the same
	// content.) Reconstruction below never reads it — none of this file's
	// stripes park their parity on its own rank.
	pSame := ParityFileName(fi.base, fi.rank)
	if h := st.handles[pSame]; h != nil {
		h.Close()
		delete(st.handles, pSame)
	}
	st.lostParity[pSame] = true

	// Mount the replacement: creating the file clears the chaos layer's
	// lost-disk marker for it.
	if old := st.handles[name]; old != nil {
		old.Close()
		delete(st.handles, name)
	}
	repl, err := st.createRetry(name)
	if err != nil {
		return fail(err)
	}
	st.handles[name] = repl
	if err := repl.Truncate(fi.bytes); err != nil {
		return fail(err)
	}

	nBlocks := (fi.bytes + BlockBytes - 1) / BlockBytes
	var sec float64
	var requests, physBytes, messages, msgBytes int64
	acc := bufpool.GetBytes(BlockBytes)
	blk := bufpool.GetBytes(BlockBytes)
	defer bufpool.PutBytes(acc)
	defer bufpool.PutBytes(blk)
	gather := func(h iosim.File, hname string, off, want int64) error {
		rs, err := st.readVerified(h, hname, blk, off, want)
		sec += rs
		if err != nil {
			return err
		}
		xorInto(acc, blk)
		requests++
		physBytes += want
		messages++
		msgBytes += st.modelBytes(want)
		sec += st.cfg.MsgTime(st.modelBytes(want))
		return nil
	}

	for k := int64(0); k < nBlocks; k++ {
		clear(acc)
		s := StripeOf(st.procs, fi.rank, k)
		p := ParityRankOf(st.procs, s)
		q := ParityIndexOf(st.procs, s)
		pname := ParityFileName(fi.base, p)
		if st.lostParity[pname] {
			return fail(fmt.Errorf("parity: stripe %d parity on %s is itself lost (double fault)", s, pname))
		}
		// Open lazily (never create: that would truncate live parity). A
		// fresh Store over Attach-ed files reaches here with no cached
		// handles at all — the pre-existing parity files on the shared
		// file system are the source of truth.
		ph, hs, err := st.dataHandle(pname)
		sec += hs
		if err != nil {
			return fail(fmt.Errorf("parity: no parity file %s: %w", pname, err))
		}
		if err := gather(ph, pname, q*BlockBytes, BlockBytes); err != nil {
			return fail(err)
		}
		for r2 := 0; r2 < st.procs; r2++ {
			if r2 == fi.rank || r2 == p {
				continue
			}
			sibling := st.siblingOf(fi.base, r2)
			if sibling == nil {
				continue // rank r2 holds no file of this group
			}
			k2 := DataBlockOf(st.procs, r2, s)
			off := k2 * BlockBytes
			if off >= sibling.bytes {
				continue // past r2's file: an implicit zero block
			}
			want := sibling.bytes - off
			if want > BlockBytes {
				want = BlockBytes
			}
			sh, hs, err := st.dataHandleFor(sibling)
			sec += hs
			if err != nil {
				return fail(err)
			}
			if err := gather(sh, sibling.name, off, want); err != nil {
				return fail(err)
			}
		}
		blockLen := fi.bytes - k*BlockBytes
		if blockLen > BlockBytes {
			blockLen = BlockBytes
		}
		ws, err := st.writeFull(repl, name, acc[:blockLen], k*BlockBytes)
		sec += ws
		if err != nil {
			return fail(err)
		}
		requests++
		physBytes += blockLen
		if st.res != nil {
			st.res.Record(name, k*BlockBytes, acc[:blockLen])
		}
	}

	sec += st.cfg.IOTime(int(requests), st.modelBytes(physBytes))
	if s := d.Stats(); s != nil {
		s.Reconstructions++
		s.ReconstructedBlocks += nBlocks
		s.ReconstructedBytes += st.modelBytes(fi.bytes)
		if tr, now, label := d.TraceSink(); tr != nil {
			// The reconstruction seconds are folded into the interrupted
			// operation's duration by the caller, so this span is off the
			// synchronous timeline (Deferred) and informational for
			// Seconds — only the reconstruction counters replay from it.
			tr.Emit(trace.Span{Kind: trace.KindReconstruct, Label: label, Start: now, Dur: sec,
				Deferred: true, N: nBlocks, Bytes: st.modelBytes(fi.bytes)})
		}
	}
	if c := st.comm[fi.rank]; c != nil {
		c.RecoveryMessages += messages
		c.RecoveryBytes += msgBytes
		if tr, now, _ := d.TraceSink(); tr != nil {
			// Attributed to the rank whose CommStats were charged, which
			// the tracer routes through its cross-rank buffer.
			tr.Cross(fi.rank, trace.Span{Kind: trace.KindRecoveryComm, Start: now, N: messages, Bytes: msgBytes})
		}
	}
	return sec, nil
}

// namedInfo pairs a registration with its file name for sibling lookups.
type namedInfo struct {
	name  string
	rank  int
	bytes int64
}

// siblingOf finds the registered member of a group at the given rank.
// Called with st.mu held.
func (st *Store) siblingOf(base string, rank int) *namedInfo {
	for name, fi := range st.files {
		if fi.base == base && fi.rank == rank {
			return &namedInfo{name: name, rank: rank, bytes: fi.bytes}
		}
	}
	return nil
}

func (st *Store) dataHandleFor(ni *namedInfo) (iosim.File, float64, error) {
	return st.dataHandle(ni.name)
}

// RebuildRank restores full redundancy for the parity files hosted on one
// rank's logical disk: every parity file flagged lost, and every parity
// file of a group flagged dirty, is recomputed wholesale from the group's
// data files. The executor runs it on every rank (between barriers)
// before declaring the run clean; the returned seconds are charged to
// that rank's clock.
func (st *Store) RebuildRank(d *iosim.Disk, rank int) (float64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	// Fast path: with no dirty group and no lost parity file anywhere
	// there is nothing to rebuild for any rank, and the ordinary
	// end-of-run sweep must stay allocation-free.
	if len(st.dirty) == 0 && len(st.lostParity) == 0 {
		return 0, nil
	}
	var sec float64
	var errs []error
	// memberBases is kept sorted: the float accumulation of the rebuild
	// seconds must be reproducible (and must match the cost model's
	// closed form exactly).
	for _, base := range st.memberBases {
		if !st.dirty[base] && !st.lostParity[ParityFileName(base, rank)] {
			continue
		}
		rs, err := st.rebuildParityFileLocked(d, base, rank)
		sec += rs
		if err != nil {
			errs = append(errs, err)
		}
	}
	return sec, errors.Join(errs...)
}

// rebuildParityFileLocked recomputes rank p's entire parity file for a
// group from the group's data files (gathered from the other disks) and
// rewrites it from scratch. Called with st.mu held.
func (st *Store) rebuildParityFileLocked(d *iosim.Disk, base string, p int) (float64, error) {
	pname := ParityFileName(base, p)
	if st.phantom {
		delete(st.lostParity, pname)
		return 0, nil
	}
	st.degraded = true
	members := make([]*namedInfo, 0, st.procs)
	maxQ := int64(0)
	for name, fi := range st.files {
		if fi.base != base || fi.rank == p {
			continue
		}
		members = append(members, &namedInfo{name: name, rank: fi.rank, bytes: fi.bytes})
		blocks := (fi.bytes + BlockBytes - 1) / BlockBytes
		q := (blocks + int64(st.procs-1) - 1) / int64(st.procs-1)
		if q > maxQ {
			maxQ = q
		}
	}
	// Rank order, not map order: the gather sequence (and so the float
	// accumulation of its seconds) must be reproducible. Insertion sort:
	// the group has at most procs members and sort.Slice would allocate
	// on a path the wall-clock benchmark gates.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && members[j-1].rank > members[j].rank; j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}

	if old := st.handles[pname]; old != nil {
		old.Close()
		delete(st.handles, pname)
	}
	f, err := st.createRetry(pname)
	if err != nil {
		return 0, fmt.Errorf("parity: rebuild %s: %w", pname, err)
	}
	st.handles[pname] = f

	var sec float64
	var requests, physBytes, messages, msgBytes int64
	acc := bufpool.GetBytes(BlockBytes)
	blk := bufpool.GetBytes(BlockBytes)
	defer bufpool.PutBytes(acc)
	defer bufpool.PutBytes(blk)
	for q := int64(0); q < maxQ; q++ {
		clear(acc)
		s := q*int64(st.procs) + int64(p)
		for _, m := range members {
			k := DataBlockOf(st.procs, m.rank, s)
			off := k * BlockBytes
			if off >= m.bytes {
				continue
			}
			want := m.bytes - off
			if want > BlockBytes {
				want = BlockBytes
			}
			h, hs, err := st.dataHandle(m.name)
			sec += hs
			if err != nil {
				return sec, fmt.Errorf("parity: rebuild %s: %w", pname, err)
			}
			rs, err := st.readVerified(h, m.name, blk, off, want)
			sec += rs
			if err != nil {
				return sec, fmt.Errorf("parity: rebuild %s: %w", pname, err)
			}
			xorInto(acc, blk)
			requests++
			physBytes += want
			messages++
			msgBytes += st.modelBytes(want)
			sec += st.cfg.MsgTime(st.modelBytes(want))
		}
		ws, err := st.writeFull(f, pname, acc, q*BlockBytes)
		sec += ws
		if err != nil {
			return sec, fmt.Errorf("parity: rebuild %s: %w", pname, err)
		}
		requests++
		physBytes += BlockBytes
	}
	sec += st.cfg.IOTime(int(requests), st.modelBytes(physBytes))
	if s := d.Stats(); s != nil {
		s.ParityRebuilds += maxQ
		if tr, now, label := d.TraceSink(); tr != nil {
			tr.Emit(trace.Span{Kind: trace.KindParityRebuild, Label: label, Start: now, Dur: sec,
				Deferred: true, N: maxQ, Bytes: st.modelBytes(physBytes)})
		}
	}
	if c := st.comm[p]; c != nil {
		c.RecoveryMessages += messages
		c.RecoveryBytes += msgBytes
		if tr, now, _ := d.TraceSink(); tr != nil {
			tr.Cross(p, trace.Span{Kind: trace.KindRecoveryComm, Start: now, N: messages, Bytes: msgBytes})
		}
	}
	delete(st.lostParity, pname)
	return sec, nil
}
