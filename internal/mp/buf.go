package mp

import "github.com/ooc-hpf/passion/internal/bufpool"

// Message payloads follow an ownership-transfer protocol over the
// bufpool arena:
//
//   - Send copies the caller's data into an arena buffer; the caller
//     keeps its slice. SendOwned instead takes ownership of an arena
//     buffer the caller acquired (or received), transferring it without
//     a copy; the caller must not touch it afterwards.
//   - Recv returns an arena buffer the receiver owns: it either releases
//     it with ReleaseBuf once done, or adopts it (keeps it indefinitely
//     and never releases). Adoption is always safe — an unreleased
//     buffer is ordinary garbage-collected memory — it merely forgoes
//     reuse.
//
// Steady-state traffic therefore allocates nothing: payload buffers
// cycle sender → mailbox → receiver → arena → sender.

// AcquireBuf returns an n-element payload buffer from the arena with
// arbitrary contents, for use with SendOwned.
func AcquireBuf(n int) []float64 { return bufpool.GetF64(n) }

// ReleaseBuf returns a buffer obtained from AcquireBuf or Recv to the
// arena. The caller must not touch the buffer afterwards. nil and
// foreign (non-arena) slices are accepted and ignored, so callers can
// release unconditionally.
func ReleaseBuf(b []float64) { bufpool.PutF64(b) }
