package mp

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
)

// TestSendOwnedTransfersWithoutCopy pins the zero-copy half of the
// ownership protocol: the receiver gets the exact storage the sender
// handed off.
func TestSendOwnedTransfersWithoutCopy(t *testing.T) {
	var sentPtr, gotPtr *float64
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			b := AcquireBuf(256)
			for i := range b {
				b[i] = float64(i)
			}
			sentPtr = &b[0]
			p.SendOwned(1, 3, b)
			return nil
		}
		in := p.Recv(0, 3)
		for i, v := range in {
			if v != float64(i) {
				return fmt.Errorf("element %d = %v", i, v)
			}
		}
		gotPtr = &in[0]
		ReleaseBuf(in)
		return nil
	})
	if sentPtr != gotPtr {
		t.Error("SendOwned copied the payload instead of transferring ownership")
	}
}

// TestSendOwnedChargesLikeSend pins that the two send forms are
// indistinguishable to the simulation.
func TestSendOwnedChargesLikeSend(t *testing.T) {
	charge := func(owned bool) *sim.Clock {
		var clk sim.Clock
		run(t, 2, func(p *Proc) error {
			if p.Rank() == 0 {
				if owned {
					b := AcquireBuf(100)
					clear(b)
					p.SendOwned(1, 0, b)
				} else {
					p.Send(1, 0, make([]float64, 100))
				}
				clk = *p.Clock()
			} else {
				ReleaseBuf(p.Recv(0, 0))
			}
			return nil
		})
		return &clk
	}
	if a, b := charge(false).Seconds(), charge(true).Seconds(); a != b {
		t.Errorf("Send charged %v, SendOwned %v", a, b)
	}
}

// TestReleaseBufDoubleReleasePanics exercises the checked-mode protocol
// violation detector through the mp-level API.
func TestReleaseBufDoubleReleasePanics(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	b := AcquireBuf(128)
	ReleaseBuf(b)
	defer func() {
		if recover() == nil {
			t.Error("double ReleaseBuf did not panic")
		}
	}()
	ReleaseBuf(b)
}

// TestUseAfterReleaseIsPoisoned pins that checked mode makes reads of a
// released payload scream (NaN) instead of silently yielding stale data.
func TestUseAfterReleaseIsPoisoned(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{42})
			return nil
		}
		in := p.Recv(0, 1)
		alias := in
		ReleaseBuf(in)
		if !math.IsNaN(alias[0]) {
			return fmt.Errorf("released payload reads %v, want NaN poison", alias[0])
		}
		return nil
	})
}

// TestRecvBufferDoesNotAliasLaterSends pins the isolation half of the
// protocol: a receiver that adopts (keeps) a buffer must never see it
// rewritten by subsequent traffic.
func TestRecvBufferDoesNotAliasLaterSends(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < 8; i++ {
				p.Send(1, i, []float64{float64(i), float64(i), float64(i)})
			}
			return nil
		}
		var kept [][]float64
		for i := 0; i < 8; i++ {
			kept = append(kept, p.Recv(0, i)) // adopted, never released
		}
		for i, b := range kept {
			for _, v := range b {
				if v != float64(i) {
					return fmt.Errorf("adopted buffer %d rewritten to %v", i, v)
				}
			}
		}
		return nil
	})
}

// TestSendRecvSteadyStateZeroAllocs pins the tentpole: once the arena is
// warm, a Send/Recv round trip allocates nothing on either side.
func TestSendRecvSteadyStateZeroAllocs(t *testing.T) {
	const elems = 512
	var allocs float64
	run(t, 2, func(p *Proc) error {
		peer := 1 - p.Rank()
		if p.Rank() == 1 {
			// Echo loop: forward every payload back without copying,
			// until the zero-length sentinel.
			for {
				in := p.Recv(peer, 1)
				if len(in) == 0 {
					ReleaseBuf(in)
					return nil
				}
				p.SendOwned(peer, 2, in)
			}
		}
		payload := make([]float64, elems)
		roundTrip := func() {
			p.Send(peer, 1, payload)
			ReleaseBuf(p.Recv(peer, 2))
		}
		roundTrip() // warm the arena class
		allocs = testing.AllocsPerRun(100, roundTrip)
		p.Send(peer, 1, nil) // sentinel
		return nil
	})
	if allocs != 0 {
		t.Errorf("steady-state Send/Recv round trip allocates %v times, want 0", allocs)
	}
}

// TestBarrierSteadyStateZeroAllocs pins the same property for the
// collective bookkeeping path.
func TestBarrierSteadyStateZeroAllocs(t *testing.T) {
	var allocs [4]float64
	run(t, 4, func(p *Proc) error {
		p.Barrier(0) // warm up
		allocs[p.Rank()] = testing.AllocsPerRun(50, func() { p.Barrier(1) })
		return nil
	})
	for r, n := range allocs {
		if n != 0 {
			t.Errorf("rank %d: steady-state Barrier allocates %v times, want 0", r, n)
		}
	}
}

// TestMailboxBackpressureBeyondCap pins that overrunning the mailbox
// capacity applies backpressure (the old 1024-deep behavior) rather than
// dropping or failing, as long as the receiver eventually drains.
func TestMailboxBackpressureBeyondCap(t *testing.T) {
	n := mailboxCap(2) * 3
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, i, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			in := p.Recv(0, i)
			if in[0] != float64(i) {
				return fmt.Errorf("message %d carried %v", i, in[0])
			}
			ReleaseBuf(in)
		}
		return nil
	})
}

// TestMailboxStallFailsWithDiagnostic pins the deadlock watchdog: a
// mailbox that stays full past the configured quiet period fails the run
// with an error naming the blocked rank, peer, tag and depth instead of
// hanging the machine (or panicking, as the old stall timer did).
func TestMailboxStallFailsWithDiagnostic(t *testing.T) {
	done := make(chan struct{})
	opts := Options{StallTimeout: 50 * time.Millisecond}
	_, err := RunOpts(sim.Delta(2), opts, func(p *Proc) error {
		if p.Rank() == 0 {
			defer close(done)
			for i := 0; i <= mailboxCap(2); i++ {
				p.Send(1, 5, []float64{1})
			}
			return nil
		}
		<-done // alive but never receiving
		return nil
	})
	if err == nil {
		t.Fatal("overrunning a never-drained mailbox should fail the run")
	}
	for _, want := range []string{"deadlock watchdog", "rank 0", "rank 1", "tag 5", "depth 64"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err.Error(), want)
		}
	}
}

// TestMailboxCapDerivation pins the machine-size scaling of the mailbox
// depth.
func TestMailboxCapDerivation(t *testing.T) {
	cases := []struct{ procs, want int }{{1, 64}, {2, 64}, {16, 64}, {17, 68}, {64, 256}}
	for _, c := range cases {
		if got := mailboxCap(c.procs); got != c.want {
			t.Errorf("mailboxCap(%d) = %d, want %d", c.procs, got, c.want)
		}
	}
}
