package mp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/sim"
)

// run executes node on p processors with a Delta config and fails the test
// on error.
func run(t *testing.T, p int, node NodeFunc) {
	t.Helper()
	if _, err := Run(sim.Delta(p), node); err != nil {
		t.Fatal(err)
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 7)
	run(t, 7, func(p *Proc) error {
		if p.Size() != 7 {
			return fmt.Errorf("Size = %d", p.Size())
		}
		seen[p.Rank()] = true // distinct index per goroutine; no race
		return nil
	})
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecv(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := p.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				return fmt.Errorf("bad payload %v", got)
			}
		}
		return nil
	})
}

func TestSendCopiesData(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			buf := []float64{42}
			p.Send(1, 0, buf)
			buf[0] = -1 // must not affect the message
		} else {
			if got := p.Recv(0, 0); got[0] != 42 {
				return fmt.Errorf("message aliased sender buffer: %v", got)
			}
		}
		return nil
	})
}

func TestMessagesOrderedPerPair(t *testing.T) {
	const n = 50
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, i, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := p.Recv(0, i); got[0] != float64(i) {
					return fmt.Errorf("out of order: got %v at %d", got, i)
				}
			}
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 5, 8, 13} {
		procs := procs
		t.Run(fmt.Sprintf("p=%d", procs), func(t *testing.T) {
			run(t, procs, func(p *Proc) error {
				data := []float64{float64(p.Rank()), 1}
				sum := p.Reduce(0, 1, data)
				if p.Rank() == 0 {
					wantA := float64(procs*(procs-1)) / 2
					if sum == nil || sum[0] != wantA || sum[1] != float64(procs) {
						return fmt.Errorf("sum = %v, want [%g %d]", sum, wantA, procs)
					}
				} else if sum != nil {
					return fmt.Errorf("non-root got non-nil %v", sum)
				}
				return nil
			})
		})
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	run(t, 6, func(p *Proc) error {
		sum := p.Reduce(4, 2, []float64{1})
		if p.Rank() == 4 {
			if sum == nil || sum[0] != 6 {
				return fmt.Errorf("root 4 sum = %v", sum)
			}
		} else if sum != nil {
			return fmt.Errorf("rank %d got non-nil", p.Rank())
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 8, 9} {
		for root := 0; root < procs; root += 2 {
			procs, root := procs, root
			t.Run(fmt.Sprintf("p=%d root=%d", procs, root), func(t *testing.T) {
				run(t, procs, func(p *Proc) error {
					var data []float64
					if p.Rank() == root {
						data = []float64{3.25, -1}
					}
					got := p.Bcast(root, 3, data)
					if len(got) != 2 || got[0] != 3.25 || got[1] != -1 {
						return fmt.Errorf("rank %d got %v", p.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestAllReduce(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 7} {
		procs := procs
		t.Run(fmt.Sprintf("p=%d", procs), func(t *testing.T) {
			run(t, procs, func(p *Proc) error {
				got := p.AllReduce(4, []float64{1, float64(p.Rank())})
				want1 := float64(procs * (procs - 1) / 2)
				if got[0] != float64(procs) || got[1] != want1 {
					return fmt.Errorf("rank %d: got %v", p.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	stats, err := Run(sim.Delta(4), func(p *Proc) error {
		// Rank 2 does much more compute; after the barrier, every
		// clock must be at least rank 2's pre-barrier time.
		if p.Rank() == 2 {
			p.Compute(int64(p.Config().ComputeRate)) // 1 simulated second
		}
		p.Barrier(9)
		if p.Clock().Seconds() < 1.0 {
			return fmt.Errorf("rank %d clock %g < 1s after barrier", p.Rank(), p.Clock().Seconds())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ElapsedSeconds() < 1.0 {
		t.Errorf("elapsed %g < 1s", stats.ElapsedSeconds())
	}
}

func TestGatherScatter(t *testing.T) {
	run(t, 5, func(p *Proc) error {
		parts := p.Gather(1, 5, []float64{float64(p.Rank() * 10)})
		if p.Rank() == 1 {
			for r, part := range parts {
				if len(part) != 1 || part[0] != float64(r*10) {
					return fmt.Errorf("gather part %d = %v", r, part)
				}
			}
			// Scatter back rank*100.
			out := make([][]float64, p.Size())
			for r := range out {
				out[r] = []float64{float64(r * 100)}
			}
			got := p.Scatter(1, 6, out)
			if got[0] != 100 {
				return fmt.Errorf("root scatter got %v", got)
			}
		} else {
			if parts != nil {
				return fmt.Errorf("non-root gather got %v", parts)
			}
			got := p.Scatter(1, 6, nil)
			if got[0] != float64(p.Rank()*100) {
				return fmt.Errorf("scatter got %v", got)
			}
		}
		return nil
	})
}

func TestAllToAll(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 6} {
		procs := procs
		t.Run(fmt.Sprintf("p=%d", procs), func(t *testing.T) {
			run(t, procs, func(p *Proc) error {
				parts := make([][]float64, procs)
				for d := range parts {
					parts[d] = []float64{float64(p.Rank()*1000 + d)}
				}
				got := p.AllToAll(7, parts)
				for s, part := range got {
					want := float64(s*1000 + p.Rank())
					if len(part) != 1 || part[0] != want {
						return fmt.Errorf("from %d got %v, want %g", s, part, want)
					}
				}
				return nil
			})
		})
	}
}

func TestComputeChargesClockAndStats(t *testing.T) {
	stats, err := Run(sim.Delta(1), func(p *Proc) error {
		p.Compute(7_600_000) // 2 seconds at 3.8 Mflop/s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := stats.Procs[0]
	if math.Abs(ps.Seconds-2.0) > 1e-9 || ps.Flops != 7_600_000 {
		t.Errorf("stats = %+v", ps)
	}
}

func TestCommStatsCounted(t *testing.T) {
	stats, err := Run(sim.Delta(2), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]float64, 100))
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := stats.TotalComm()
	if c.MessagesSent != 1 || c.BytesSent != 400 { // 100 elems * 4 bytes
		t.Errorf("comm stats = %+v", c)
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	_, err := Run(sim.Delta(3), func(p *Proc) error {
		if p.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestNodePanicBecomesError(t *testing.T) {
	_, err := Run(sim.Delta(2), func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		// Rank 1 must not deadlock waiting; it does no communication.
		return nil
	})
	if err == nil {
		t.Fatal("want error from panic")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(sim.Config{}, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("zero config should be rejected")
	}
}

func TestSendToSelfPanics(t *testing.T) {
	_, err := Run(sim.Delta(1), func(p *Proc) error {
		p.Send(0, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("send-to-self should fail")
	}
}

func TestTagMismatchPanics(t *testing.T) {
	_, err := Run(sim.Delta(2), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{1})
		} else {
			p.Recv(0, 2)
		}
		return nil
	})
	if err == nil {
		t.Fatal("tag mismatch should fail")
	}
}

func TestReduceDeterministic(t *testing.T) {
	// The binomial combine order is fixed, so repeated runs produce
	// bitwise identical sums.
	sumOnce := func() float64 {
		var result float64
		_, err := Run(sim.Delta(8), func(p *Proc) error {
			v := []float64{0.1 * float64(p.Rank()+1)}
			s := p.Reduce(0, 0, v)
			if p.Rank() == 0 {
				result = s[0] // written once, read after Run returns
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	a, b := sumOnce(), sumOnce()
	if a != b {
		t.Errorf("reduce not deterministic: %x vs %x", a, b)
	}
}

func TestMessageTimeChargesReceiver(t *testing.T) {
	cfg := sim.Delta(2)
	stats, err := Run(cfg, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]float64, 1000))
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.MsgTime(1000 * int64(cfg.ElemSize))
	for r := 0; r < 2; r++ {
		if got := stats.Procs[r].Seconds; math.Abs(got-want) > 1e-12 {
			t.Errorf("rank %d finished at %g, want %g", r, got, want)
		}
	}
}

func TestPeerDeathUnblocksReceivers(t *testing.T) {
	// Rank 1 dies before sending; rank 0's Recv must turn into an error
	// instead of deadlocking the whole machine.
	done := make(chan error, 1)
	go func() {
		_, err := Run(sim.Delta(3), func(p *Proc) error {
			switch p.Rank() {
			case 0:
				p.Recv(1, 5)
			case 1:
				return fmt.Errorf("simulated node failure")
			}
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want error from failed machine")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("machine deadlocked on peer death")
	}
}

func TestPeerDeathUnblocksCollectives(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Run(sim.Delta(4), func(p *Proc) error {
			if p.Rank() == 2 {
				return fmt.Errorf("dead before the barrier")
			}
			p.Barrier(1)
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("collective deadlocked on peer death")
	}
}

func TestBufferedMessagesDrainAfterExit(t *testing.T) {
	// A processor that finishes early still delivers what it sent.
	run(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 9, []float64{42})
			return nil // exits immediately
		}
		// Give rank 0 time to exit and close its channels.
		for i := 0; i < 1000; i++ {
			runtime.Gosched()
		}
		if got := p.Recv(0, 9); got[0] != 42 {
			return fmt.Errorf("buffered message lost: %v", got)
		}
		return nil
	})
}

func TestRunJoinsAllNodeErrors(t *testing.T) {
	errA := errors.New("rank 0 exploded")
	errB := errors.New("rank 2 exploded")
	_, err := Run(sim.Delta(3), func(p *Proc) error {
		switch p.Rank() {
		case 0:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if err == nil {
		t.Fatal("want joined error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error must contain both failures, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "processor 0") || !strings.Contains(msg, "processor 2") {
		t.Fatalf("joined error must name each failing rank, got %q", msg)
	}
}
