package mp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Fail-stop fault tolerance for the message-passing machine.
//
// A rank can be scheduled to die between any two of its operations
// (messages or, via StepOp, I/O requests). Death is fail-stop: the rank
// performs no further work, its outgoing mailboxes close, and — when
// detection is enabled — surviving ranks that block on it resolve to
// ErrRankDead instead of hanging. Before aborting, survivors run a
// PREPARE/COMMIT agreement over the ordinary mailbox machinery so every
// survivor reports the same failed-rank set; the executor uses that set
// to drive checkpoint+parity recovery.
//
// Everything here is off the hot path: a machine with no Options has a
// nil failState and the per-op hook is a single nil check.

// Tags at or above agreeTagBase carry the failure-agreement protocol.
// They are above the collective range (internalTagBase), so a PREPARE
// arriving at a rank still running plan code is recognizable and stashed
// rather than confused with data.
const (
	agreeTagBase = 1 << 25
	tagPrepare   = agreeTagBase + 1
	tagCommit    = agreeTagBase + 2
)

// defaultStallTimeout bounds how long the machine may sit with at least
// one blocked mailbox operation and no mailbox progress at all before
// the deadlock watchdog fails the run. Generous: real drains take
// microseconds; only a plan that genuinely cannot make progress leaves
// the machine quiet this long.
const defaultStallTimeout = 30 * time.Second

// KillSpec schedules one injected fail-stop death: rank Rank stops
// immediately before executing its Op'th counted operation (messages
// sent or received, and disk chunk operations when the executor wires
// StepOp into the I/O layer). Op counts from zero and is per-rank.
type KillSpec struct {
	Rank int
	Op   int64
}

// Detector enables failure detection. A blocked operation on a dead
// peer then resolves to ErrRankDead after a simulated heartbeat-timeout
// stall instead of panicking, and survivors agree on the failed set.
// Zero fields select sim.DefaultHeartbeat / sim.DefaultHeartbeatMisses.
type Detector struct {
	// Heartbeat is the liveness-probe interval in simulated seconds.
	Heartbeat float64
	// Misses is the number of consecutive missed probes after which a
	// peer is declared dead.
	Misses int
}

// Timeout returns the detection latency in simulated seconds.
func (d Detector) Timeout() float64 {
	return sim.DetectionTimeout(d.Heartbeat, d.Misses)
}

// Options configures fault injection, detection and the deadlock
// watchdog for one run. The zero value is a plain run: no kills, no
// detection, watchdog at the default quiet period.
type Options struct {
	// Kill schedules injected rank deaths.
	Kill []KillSpec
	// Detect enables failure detection; nil leaves a blocked operation
	// on a dead peer to the closed-channel diagnostics (the run still
	// terminates, but without agreement or typed errors).
	Detect *Detector
	// StallTimeout overrides the deadlock watchdog's quiet period
	// (non-positive selects defaultStallTimeout).
	StallTimeout time.Duration
	// OpCounts, when non-nil, receives each rank's final operation count
	// (len must be >= Procs). Probe runs use it to learn the op-index
	// space a kill schedule can target.
	OpCounts []int64
}

// active reports whether the run needs a failState at all.
func (o Options) active() bool {
	return len(o.Kill) > 0 || o.Detect != nil || o.OpCounts != nil
}

// ErrRankDead is the error a surviving rank aborts with when an
// operation blocked on a dead peer: the peer it observed dead, the tag
// it was blocked on, and the failed-rank set the survivors agreed on.
type ErrRankDead struct {
	Rank   int
	Tag    int
	Agreed []int
}

func (e *ErrRankDead) Error() string {
	return fmt.Sprintf("rank %d is dead (blocked on tag %d); survivors agreed on failed ranks %v", e.Rank, e.Tag, e.Agreed)
}

// RankKilledError is the error recorded for the killed rank itself.
type RankKilledError struct {
	Rank int
	Op   int64
}

func (e *RankKilledError) Error() string {
	return fmt.Sprintf("rank %d killed by fault injection at op %d", e.Rank, e.Op)
}

// RankFailure wraps a run's joined per-processor errors when ranks
// died, carrying the union of the agreed failed sets so the executor
// can decide whether the failure is recoverable.
type RankFailure struct {
	Failed []int
	Err    error
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("%v (failed ranks %v)", e.Err, e.Failed)
}

func (e *RankFailure) Unwrap() error { return e.Err }

// Panic sentinels: control flow out of arbitrarily deep plan code is by
// panic, recovered and typed in RunOpts's per-goroutine handler, so
// kernels need no error plumbing for faults they cannot handle anyway.
type killSentinel struct {
	rank int
	op   int64
}

type deathPanic struct{ err *ErrRankDead }

type watchdogPanic struct{ err error }

// failState is the shared fault bookkeeping of one run. The dead map is
// monotone ground truth (only actually dead ranks enter it), standing in
// for the heartbeat fabric of a real machine: detection *cost* is
// simulated via the heartbeat timeout, detection *truth* is exact.
type failState struct {
	kills   [][]int64 // per-rank scheduled kill ops, sorted
	timeout float64   // detection latency in simulated seconds; 0 = detection off

	deadCount atomic.Int32
	mu        sync.Mutex
	dead      map[int]float64 // rank -> simulated death time

	// down[r] closes when rank r will make no further mailbox progress:
	// it died, aborted, or exited. Blocked operations select on it.
	down     []chan struct{}
	downOnce []sync.Once
}

func newFailState(procs int, opts Options) *failState {
	f := &failState{
		kills:    make([][]int64, procs),
		dead:     make(map[int]float64),
		down:     make([]chan struct{}, procs),
		downOnce: make([]sync.Once, procs),
	}
	for i := range f.down {
		f.down[i] = make(chan struct{})
	}
	for _, k := range opts.Kill {
		if k.Rank >= 0 && k.Rank < procs {
			f.kills[k.Rank] = append(f.kills[k.Rank], k.Op)
		}
	}
	for _, s := range f.kills {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	if opts.Detect != nil {
		f.timeout = opts.Detect.Timeout()
	}
	return f
}

func (f *failState) detectOn() bool { return f.timeout > 0 }
func (f *failState) anyDead() bool  { return f.deadCount.Load() > 0 }

func (f *failState) isDead(rank int) bool {
	f.mu.Lock()
	_, ok := f.dead[rank]
	f.mu.Unlock()
	return ok
}

func (f *failState) markDead(rank int, at float64) {
	f.mu.Lock()
	if _, ok := f.dead[rank]; !ok {
		f.dead[rank] = at
		f.deadCount.Add(1)
	}
	f.mu.Unlock()
	f.markDown(rank)
}

func (f *failState) markDown(rank int) {
	f.downOnce[rank].Do(func() { close(f.down[rank]) })
}

// deadRanks returns the current dead set, sorted.
func (f *failState) deadRanks() []int {
	f.mu.Lock()
	out := make([]int, 0, len(f.dead))
	for r := range f.dead {
		out = append(out, r)
	}
	f.mu.Unlock()
	sort.Ints(out)
	return out
}

// earliestDeath returns the earliest simulated death time and the rank
// it belongs to (lowest rank on ties, for determinism).
func (f *failState) earliestDeath() (float64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	at, rank := math.MaxFloat64, -1
	for r, t := range f.dead {
		if t < at || (t == at && r < rank) {
			at, rank = t, r
		}
	}
	return at, rank
}

// ---------------------------------------------------------------------------
// Per-op kill hook

// step counts one operation and dies if the kill schedule says so. The
// disabled fast path is a single nil check, which is what keeps the
// steady-state allocation and wall-clock pins intact.
func (p *Proc) step() {
	f := p.m.fail
	if f == nil {
		return
	}
	if p.failed {
		// Already dead or aborting: deferred cleanup may still issue
		// I/O during the unwind, and counting it would drift the op
		// space (or re-kill a rank that is already going down).
		return
	}
	op := p.ops
	p.ops++
	if len(p.killAt) > 0 && op == p.killAt[0] {
		p.killAt = p.killAt[1:]
		p.failed = true
		f.markDead(p.rank, p.clock.Seconds())
		panic(killSentinel{rank: p.rank, op: op})
	}
}

// StepOp advances this processor's fail-stop operation counter by one —
// the executor wires it into the I/O layer so kills can land between
// disk operations, not only between messages. A no-op on plain runs.
func (p *Proc) StepOp() { p.step() }

// Aborted reports whether this processor died or aborted on a failure;
// cleanup code running during the unwind uses it to skip collective
// operations that can no longer complete.
func (p *Proc) Aborted() bool { return p.failed }

// ---------------------------------------------------------------------------
// Detection and abort

// abortDead is the failure-detection path of an operation blocked on
// rank peer that will never make progress. It wakes this rank's own
// dependents, charges the simulated heartbeat-detection stall, runs the
// failed-set agreement, and panics with the typed error. Only called
// with detection enabled and at least one dead rank.
func (p *Proc) abortDead(peer, tag int) {
	f := p.m.fail
	p.failed = true
	// Dependents blocked on this rank cascade into the same abort.
	f.markDown(p.rank)

	deadAt, deadRank := f.earliestDeath()
	rep := peer
	if !f.isDead(peer) {
		// Blocked on an aborting (not dead) rank: report the root cause.
		rep = deadRank
	}
	before := p.clock.Seconds()
	if target := deadAt + f.timeout; target > before {
		p.clock.SyncTo(target)
	}
	wait := p.clock.Seconds() - before
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindDetect, Start: before, Dur: wait, Peer: rep})
	}
	p.stats.Comm.Detections++
	p.stats.Comm.DetectSeconds += wait

	agreed := f.deadRanks()
	func() {
		// Agreement is best-effort: any internal failure falls back to
		// the local ground-truth snapshot rather than taking the run down
		// with an untyped panic.
		defer func() { _ = recover() }()
		agreed = p.agree()
	}()
	p.stats.Comm.Agreements++
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindAgree, Start: p.clock.Seconds(), N: int64(len(agreed))})
	}
	panic(deathPanic{err: &ErrRankDead{Rank: rep, Tag: tag, Agreed: agreed}})
}

// deadChannel handles a receive on a closed channel: the sender exited.
// With detection on and a death recorded this is the abort path;
// otherwise it is the pre-existing plan-bug diagnostic.
func (p *Proc) deadChannel(src, tag int) {
	f := p.m.fail
	if f != nil && f.detectOn() && f.anyDead() {
		p.abortDead(src, tag)
	}
	panic(fmt.Sprintf("mp: rank %d terminated before sending the message rank %d expected (tag %d)", src, p.rank, tag))
}

// deadPeer handles a down-channel wakeup with no data available: the
// peer will never supply the blocked operation.
func (p *Proc) deadPeer(src, tag int) {
	f := p.m.fail
	if f.detectOn() {
		p.abortDead(src, tag)
	}
	panic(fmt.Sprintf("mp: rank %d terminated before sending the message rank %d expected (tag %d)", src, p.rank, tag))
}

// ---------------------------------------------------------------------------
// Agreement protocol

// agree converges the survivors on a common failed-rank set. The
// coordinator is the lowest rank that is neither dead nor observed
// exited; every other participant sends it PREPARE carrying its own
// dead-set snapshot and waits for COMMIT carrying the union. Aborting
// ranks run it on their abort path; ranks that complete normally while
// a failure is in flight participate from their exit epilogue so a
// coordinator always exists. Protocol messages are uncharged control
// traffic — their cost is part of the heartbeat-timeout model — and the
// whole exchange rides the ordinary per-pair mailboxes.
func (p *Proc) agree() []int {
	f := p.m.fail
	exited := make(map[int]bool) // observed closed channels, not dead
	for round := 0; round < 2*p.Size()+4; round++ {
		coord := p.rank
		for r := 0; r < p.Size(); r++ {
			if r == p.rank {
				break
			}
			if f.isDead(r) || exited[r] {
				continue
			}
			coord = r
			break
		}
		if coord == p.rank {
			return p.coordinate(exited)
		}
		if !p.postCtl(coord, tagPrepare, encodeRanks(f.deadRanks())) {
			continue // coordinator died while posting; re-elect
		}
		committed, ok := p.awaitCommit(coord)
		if ok {
			return committed
		}
		if !f.isDead(coord) {
			exited[coord] = true
		}
	}
	return f.deadRanks() // fallback: local ground truth
}

// awaitCommit waits for the coordinator's COMMIT, returning false if the
// coordinator died or exited without committing.
func (p *Proc) awaitCommit(coord int) ([]int, bool) {
	for {
		payload, tag, ok := p.recvCtl(coord)
		if !ok {
			return nil, false
		}
		if tag == tagCommit {
			set := decodeRanks(payload)
			ReleaseBuf(payload)
			return set, true
		}
		// A stray PREPARE from a transient coordinator disagreement;
		// drop it and keep waiting.
		ReleaseBuf(payload)
	}
}

// coordinate runs the coordinator side: collect PREPARE from every rank
// that is not dead and not observed exited, union the suspicions with
// the local snapshot, and COMMIT the union back to every preparer.
func (p *Proc) coordinate(exited map[int]bool) []int {
	f := p.m.fail
	union := make(map[int]bool)
	for _, r := range f.deadRanks() {
		union[r] = true
	}
	var preparers []int
	for r := 0; r < p.Size(); r++ {
		if r == p.rank || union[r] || exited[r] || f.isDead(r) {
			continue
		}
		got := false
		for !got {
			payload, tag, ok := p.recvCtl(r)
			if !ok {
				if f.isDead(r) {
					union[r] = true
				}
				break // exited without preparing (completed pre-awareness)
			}
			if tag == tagPrepare {
				for _, d := range decodeRanks(payload) {
					union[d] = true
				}
				ReleaseBuf(payload)
				preparers = append(preparers, r)
				got = true
			} else {
				ReleaseBuf(payload) // stale commit; keep reading
			}
		}
	}
	set := make([]int, 0, len(union))
	for r := range union {
		set = append(set, r)
	}
	sort.Ints(set)
	for _, r := range preparers {
		p.postCtl(r, tagCommit, encodeRanks(set))
	}
	return set
}

// participate joins the agreement from the exit epilogue of a rank that
// finished its program while a failure was in flight, so aborting ranks
// always find a coordinator. Its own result and counters are untouched.
func (p *Proc) participate() {
	defer func() { _ = recover() }()
	p.agree()
}

// postCtl enqueues an uncharged control message, reporting false if the
// destination died (or the watchdog fired) before it could be delivered.
func (p *Proc) postCtl(dst, tag int, payload []float64) bool {
	f := p.m.fail
	ch := p.m.chans[p.rank][dst]
	msg := message{tag: tag, data: payload, atTime: p.clock.Seconds()}
	down := f.down[dst]
	for {
		if f.isDead(dst) {
			ReleaseBuf(payload)
			return false
		}
		select {
		case ch <- msg:
			return true
		case <-down:
			// Dead or aborting; re-check which on the next pass, and stop
			// selecting on the closed channel.
			down = nil
			if f.isDead(dst) {
				ReleaseBuf(payload)
				return false
			}
			// Aborting: it still drains control traffic; block on the send.
			select {
			case ch <- msg:
				return true
			case <-p.m.wd.abort:
				ReleaseBuf(payload)
				return false
			}
		case <-p.m.wd.abort:
			ReleaseBuf(payload)
			return false
		}
	}
}

// recvCtl blocks for the next control message from src, draining (and
// releasing) any stale application payloads in front of it. It reports
// false when src died or exited without sending one.
func (p *Proc) recvCtl(src int) ([]float64, int, bool) {
	f := p.m.fail
	for i := range p.pending {
		if p.pending[i].src == src {
			msg := p.pending[i].msg
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return msg.data, msg.tag, true
		}
	}
	ch := p.m.chans[src][p.rank]
	down := f.down[src]
	wd := p.m.wd
	for {
		wd.block(p, false, src, tagPrepare, len(ch))
		select {
		case msg, ok := <-ch:
			wd.unblock(p)
			if !ok {
				return nil, 0, false
			}
			if msg.tag >= agreeTagBase {
				return msg.data, msg.tag, true
			}
			ReleaseBuf(msg.data) // stale application payload
		case <-down:
			wd.unblock(p)
			if f.isDead(src) {
				// Drain anything it managed to send first.
				select {
				case msg, ok := <-ch:
					if ok && msg.tag >= agreeTagBase {
						return msg.data, msg.tag, true
					}
					if ok {
						ReleaseBuf(msg.data)
						continue
					}
				default:
				}
				return nil, 0, false
			}
			down = nil // aborting: it will still send or close; block on the channel
		case <-wd.abort:
			wd.unblock(p)
			return nil, 0, false
		}
	}
}

func encodeRanks(set []int) []float64 {
	buf := bufpool.GetF64(len(set))
	for i, r := range set {
		buf[i] = float64(r)
	}
	return buf
}

func decodeRanks(payload []float64) []int {
	out := make([]int, len(payload))
	for i, v := range payload {
		out[i] = int(v)
	}
	return out
}

// ---------------------------------------------------------------------------
// Deadlock watchdog

// watchdog fails the run when at least one rank sits blocked on a
// mailbox operation and no mailbox progress happens at all for the
// quiet period. It replaces the old send-stall panic: instead of one
// rank panicking with its own symptom, every blocked rank wakes, reports
// its blocked operation (rank, peer, tag, depth), and the run fails with
// the joined diagnostic.
type watchdog struct {
	timeout time.Duration
	abort   chan struct{}
	stop    chan struct{}
	once    sync.Once

	procs []*Proc // populated before any goroutine starts

	mu      sync.Mutex
	events  uint64
	blocked int
	fired   bool
}

func newWatchdog(timeout time.Duration) *watchdog {
	return &watchdog{
		timeout: timeout,
		abort:   make(chan struct{}),
		stop:    make(chan struct{}),
	}
}

func (w *watchdog) block(p *Proc, send bool, peer, tag, depth int) {
	w.mu.Lock()
	p.blk = blockInfo{active: true, send: send, peer: peer, tag: tag, depth: depth}
	w.blocked++
	w.events++
	w.mu.Unlock()
}

func (w *watchdog) unblock(p *Proc) {
	w.mu.Lock()
	if p.blk.active {
		p.blk.active = false
		w.blocked--
	}
	w.events++
	w.mu.Unlock()
}

func (w *watchdog) shutdown() {
	w.once.Do(func() { close(w.stop) })
}

// run is the monitor goroutine, alive for the duration of one RunOpts.
func (w *watchdog) run() {
	tick := w.timeout / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var lastEvents uint64
	var quiet time.Duration
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		w.mu.Lock()
		if w.blocked > 0 && w.events == lastEvents {
			quiet += tick
			if quiet >= w.timeout && !w.fired {
				w.fired = true
				close(w.abort)
				w.mu.Unlock()
				return
			}
		} else {
			quiet = 0
			lastEvents = w.events
		}
		w.mu.Unlock()
	}
}

// watchdogFail raises this rank's share of the deadlock diagnostic.
func (p *Proc) watchdogFail() {
	p.failed = true
	b := p.blk
	op := "recv from"
	if b.send {
		op = "send to"
	}
	panic(watchdogPanic{err: fmt.Errorf("deadlock watchdog: rank %d blocked in %s rank %d (tag %d, depth %d) with no mailbox progress for %v",
		p.rank, op, b.peer, b.tag, b.depth, p.m.wd.timeout)})
}
