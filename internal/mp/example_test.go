package mp_test

import (
	"fmt"
	"sort"

	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
)

// ExampleRun starts a 4-processor SPMD machine, sums a value across the
// processors and reports the deterministic simulated time.
func ExampleRun() {
	var results []string
	var collected [4]float64 // one slot per rank: no races
	stats, err := mp.Run(sim.Delta(4), func(p *mp.Proc) error {
		sum := p.AllReduce(1, []float64{float64(p.Rank() + 1)})
		collected[p.Rank()] = sum[0]
		return nil
	})
	if err != nil {
		panic(err)
	}
	for rank, v := range collected {
		results = append(results, fmt.Sprintf("rank %d sees %g", rank, v))
	}
	sort.Strings(results)
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Println("deterministic elapsed time:", stats.ElapsedSeconds() > 0)
	// Output:
	// rank 0 sees 10
	// rank 1 sees 10
	// rank 2 sees 10
	// rank 3 sees 10
	// deterministic elapsed time: true
}
