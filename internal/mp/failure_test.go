package mp

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
)

// failTestStall bounds every injected-failure test: if detection or the
// agreement ever regress into a hang, the watchdog converts it into a
// loud diagnostic failure instead of a test timeout.
const failTestStall = 2 * time.Second

// ringNode is a P-rank ring exchange: each iteration sends one element
// to the successor and receives one from the predecessor. Every rank
// performs exactly 2*iters counted operations.
func ringNode(iters int) NodeFunc {
	return func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		for i := 0; i < iters; i++ {
			p.Send(next, i, []float64{float64(p.Rank())})
			in := p.Recv(prev, i)
			if in[0] != float64(prev) {
				return fmt.Errorf("iter %d: got %v from rank %d", i, in[0], prev)
			}
			ReleaseBuf(in)
		}
		return nil
	}
}

// TestKillRankResolvesToTypedErrors pins the tentpole end to end at the
// mp level: an injected kill surfaces as RankFailure carrying the agreed
// failed set, the killed rank reports RankKilledError, and at least one
// survivor aborted with ErrRankDead instead of hanging.
func TestKillRankResolvesToTypedErrors(t *testing.T) {
	opts := Options{
		Kill:         []KillSpec{{Rank: 2, Op: 3}},
		Detect:       &Detector{},
		StallTimeout: failTestStall,
	}
	_, err := RunOpts(sim.Delta(4), opts, ringNode(4))
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("error %v is not a RankFailure", err)
	}
	if len(rf.Failed) != 1 || rf.Failed[0] != 2 {
		t.Errorf("Failed = %v, want [2]", rf.Failed)
	}
	var killed *RankKilledError
	if !errors.As(err, &killed) || killed.Rank != 2 || killed.Op != 3 {
		t.Errorf("missing RankKilledError{2, 3} in %v", err)
	}
	var dead *ErrRankDead
	if !errors.As(err, &dead) {
		t.Fatalf("no survivor aborted with ErrRankDead in %v", err)
	}
	if strings.Contains(err.Error(), "deadlock watchdog") {
		t.Errorf("detection should resolve the failure before the watchdog: %v", err)
	}
}

// TestSurvivorsAgreeOnFailedSet pins the agreement protocol: every
// survivor that aborts reports the identical failed-rank set.
func TestSurvivorsAgreeOnFailedSet(t *testing.T) {
	opts := Options{
		Kill:         []KillSpec{{Rank: 1, Op: 5}},
		Detect:       &Detector{},
		StallTimeout: failTestStall,
	}
	_, err := RunOpts(sim.Delta(4), opts, ringNode(6))
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	sets := regexp.MustCompile(`agreed on failed ranks \[([^\]]*)\]`).
		FindAllStringSubmatch(err.Error(), -1)
	if len(sets) == 0 {
		t.Fatalf("no survivor reported an agreed set in %v", err)
	}
	for _, m := range sets {
		if m[1] != "1" {
			t.Errorf("a survivor agreed on [%s], want [1]: %v", m[1], err)
		}
	}
}

// TestDetectionChargesHeartbeatTimeout pins the simulated cost model of
// detection: the surviving rank stalls for exactly the heartbeat timeout
// past the death, and the detection counters record it.
func TestDetectionChargesHeartbeatTimeout(t *testing.T) {
	det := &Detector{Heartbeat: 1e-3, Misses: 3}
	opts := Options{
		Kill:         []KillSpec{{Rank: 1, Op: 0}},
		Detect:       det,
		StallTimeout: failTestStall,
	}
	stats, err := RunOpts(sim.Delta(2), opts, ringNode(1))
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	c := stats.Procs[0].Comm
	if c.Detections != 1 {
		t.Errorf("survivor Detections = %d, want 1", c.Detections)
	}
	if c.DetectSeconds <= 0 || c.DetectSeconds > det.Timeout() {
		t.Errorf("survivor DetectSeconds = %v, want in (0, %v]", c.DetectSeconds, det.Timeout())
	}
	if c.Agreements != 1 {
		t.Errorf("survivor Agreements = %d, want 1", c.Agreements)
	}
	// The victim died at simulated time 0, so the survivor's clock ends
	// exactly at the heartbeat timeout: its pre-death progress is
	// subsumed by the stall.
	if got := stats.Procs[0].Seconds; got != det.Timeout() {
		t.Errorf("survivor clock = %v, want exactly the detection timeout %v", got, det.Timeout())
	}
	if k := stats.Procs[1].Comm; k.Detections != 0 || k.Agreements != 0 {
		t.Errorf("killed rank recorded detection counters: %+v", k)
	}
}

// TestKillWithoutDetectionStillTerminates pins the detection-off
// contract: the run still ends with an error (via the closed-channel
// diagnostics or the watchdog), it just lacks agreement and stalls.
func TestKillWithoutDetectionStillTerminates(t *testing.T) {
	opts := Options{
		Kill:         []KillSpec{{Rank: 2, Op: 3}},
		StallTimeout: failTestStall,
	}
	stats, err := RunOpts(sim.Delta(4), opts, ringNode(4))
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	if !strings.Contains(err.Error(), "killed by fault injection") {
		t.Errorf("missing kill diagnostic in %v", err)
	}
	for r, ps := range stats.Procs {
		if ps.Comm.Detections != 0 || ps.Comm.Agreements != 0 {
			t.Errorf("rank %d charged detection with detection disabled: %+v", r, ps.Comm)
		}
	}
}

// TestOpCountsProbeDeterministic pins the probe mechanism the executor's
// kill sweeps rely on: OpCounts reports each rank's exact operation
// count, identically across runs.
func TestOpCountsProbeDeterministic(t *testing.T) {
	probe := func() []int64 {
		counts := make([]int64, 3)
		if _, err := RunOpts(sim.Delta(3), Options{OpCounts: counts}, ringNode(5)); err != nil {
			t.Fatal(err)
		}
		return counts
	}
	first := probe()
	second := probe()
	for r, n := range first {
		if want := int64(2 * 5); n != want {
			t.Errorf("rank %d performed %d ops, want %d", r, n, want)
		}
		if second[r] != n {
			t.Errorf("rank %d op count not deterministic: %d vs %d", r, n, second[r])
		}
	}
}

// TestKillSweepNeverHangs kills one rank at every op index it would
// execute and checks each run resolves to a typed failure — never the
// watchdog, never a hang. This is the mp-level core of the ranksurvival
// experiment gate.
func TestKillSweepNeverHangs(t *testing.T) {
	const procs, iters, victim = 4, 3, 1
	counts := make([]int64, procs)
	if _, err := RunOpts(sim.Delta(procs), Options{OpCounts: counts}, ringNode(iters)); err != nil {
		t.Fatal(err)
	}
	for op := int64(0); op < counts[victim]; op++ {
		opts := Options{
			Kill:         []KillSpec{{Rank: victim, Op: op}},
			Detect:       &Detector{},
			StallTimeout: failTestStall,
		}
		_, err := RunOpts(sim.Delta(procs), opts, ringNode(iters))
		if err == nil {
			t.Fatalf("kill at op %d: run succeeded", op)
		}
		var rf *RankFailure
		if !errors.As(err, &rf) {
			t.Fatalf("kill at op %d: error %v is not a RankFailure", op, err)
		}
		if len(rf.Failed) != 1 || rf.Failed[0] != victim {
			t.Errorf("kill at op %d: Failed = %v, want [%d]", op, rf.Failed, victim)
		}
		if strings.Contains(err.Error(), "deadlock watchdog") {
			t.Errorf("kill at op %d resolved via the watchdog: %v", op, err)
		}
	}
}

// TestKilledCollectiveReleasesBuffers pins the error-path leak audit for
// the collectives: a rank killed mid-AllReduce (and its aborting peer)
// must return every arena buffer, verified by the checked-mode arena
// balance.
func TestKilledCollectiveReleasesBuffers(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	opts := Options{
		Kill:         []KillSpec{{Rank: 1, Op: 0}},
		Detect:       &Detector{},
		StallTimeout: failTestStall,
	}
	_, err := RunOpts(sim.Delta(2), opts, func(p *Proc) error {
		ReleaseBuf(p.AllReduce(7, []float64{float64(p.Rank()), 1, 2, 3}))
		return nil
	})
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Errorf("abort leaked arena buffers: %+v", s)
	}
}

// TestReduceLengthMismatchReleasesBuffers pins the leak audit for a
// plan-bug panic inside a collective: the accumulator and the received
// contribution both return to the arena when addInto panics.
func TestReduceLengthMismatchReleasesBuffers(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	_, err := Run(sim.Delta(2), func(p *Proc) error {
		data := make([]float64, 4-p.Rank()) // lengths 4 and 3: a plan bug
		ReleaseBuf(p.Reduce(0, 9, data))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("want length-mismatch failure, got %v", err)
	}
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Errorf("panic path leaked arena buffers: %+v", s)
	}
}

// TestKillDuringSendOwnedReleasesPayload pins the ownership-transfer
// window: a kill landing on SendOwned's charge, after the caller has
// given the buffer up but before it reaches a mailbox, must not leak it.
func TestKillDuringSendOwnedReleasesPayload(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	opts := Options{
		Kill:         []KillSpec{{Rank: 0, Op: 0}},
		Detect:       &Detector{},
		StallTimeout: failTestStall,
	}
	_, err := RunOpts(sim.Delta(2), opts, func(p *Proc) error {
		if p.Rank() == 0 {
			b := AcquireBuf(32)
			clear(b)
			p.SendOwned(1, 4, b) // dies on the charge
			return nil
		}
		ReleaseBuf(p.Recv(0, 4))
		return nil
	})
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Errorf("SendOwned kill window leaked arena buffers: %+v", s)
	}
}

// TestStrandedMailboxPayloadsReturned pins the end-of-run drain: data a
// dead rank's peers sent it but it never received is returned to the
// arena when the machine shuts down.
func TestStrandedMailboxPayloadsReturned(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	opts := Options{
		Kill:         []KillSpec{{Rank: 1, Op: 2}},
		Detect:       &Detector{},
		StallTimeout: failTestStall,
	}
	_, err := RunOpts(sim.Delta(2), opts, func(p *Proc) error {
		if p.Rank() == 0 {
			// Two payloads into rank 1's mailbox; it dies after draining
			// neither (its ops are its own sends).
			p.Send(1, 0, []float64{1, 2, 3})
			p.Send(1, 1, []float64{4, 5, 6})
			ReleaseBuf(p.Recv(1, 2))
			ReleaseBuf(p.Recv(1, 3))
			return nil
		}
		p.Send(0, 2, []float64{7})
		p.Send(0, 3, []float64{8})
		ReleaseBuf(p.Recv(0, 0)) // killed at op 2: never runs
		ReleaseBuf(p.Recv(0, 1))
		return nil
	})
	if err == nil {
		t.Fatal("killing a rank should fail the run")
	}
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Errorf("stranded mailbox payloads leaked: %+v", s)
	}
}

// TestKillDisabledZeroOverhead pins "zero overhead when disabled" at the
// API level: a machine without Options carries no failState, and the
// per-op hook is a nil check (the alloc and wallclock pins in
// alloc_test.go and the bench gate cover the cost side).
func TestKillDisabledZeroOverhead(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if p.m.fail != nil {
			return fmt.Errorf("plain run allocated a failState")
		}
		return nil
	})
}
