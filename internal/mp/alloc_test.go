package mp

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
)

// TestComputeNoAllocsWithoutTracer pins the zero-overhead-when-disabled
// guarantee: with no tracer attached, the hot-path Compute must not
// allocate at all.
func TestComputeNoAllocsWithoutTracer(t *testing.T) {
	cfg := sim.Delta(1)
	Run(cfg, func(p *Proc) error {
		if n := testing.AllocsPerRun(1000, func() { p.Compute(64) }); n != 0 {
			t.Errorf("Compute allocates %v times per call with tracing disabled", n)
		}
		return nil
	})
}

// TestCollectivesNoAllocsFromTracingPath checks that the collective
// bookkeeping added for tracing does not allocate when no tracer is
// attached (the collectives themselves allocate buffers; here we only
// pin the label path, which must not build strings eagerly).
func TestCollectivesNoAllocsFromTracingPath(t *testing.T) {
	cfg := sim.Delta(1)
	Run(cfg, func(p *Proc) error {
		if n := testing.AllocsPerRun(1000, func() { p.collective("reduce") }); n != 0 {
			t.Errorf("collective bookkeeping allocates %v times per call with tracing disabled", n)
		}
		return nil
	})
}
