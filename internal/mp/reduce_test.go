package mp

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
)

func TestReduceWithMaxMin(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 8} {
		procs := procs
		t.Run(fmt.Sprintf("p=%d", procs), func(t *testing.T) {
			run(t, procs, func(p *Proc) error {
				data := []float64{float64(p.Rank()), -float64(p.Rank())}
				max := p.ReduceWith(0, 1, data, OpMax)
				min := p.ReduceWith(0, 2, data, OpMin)
				if p.Rank() == 0 {
					if max[0] != float64(procs-1) || max[1] != 0 {
						return fmt.Errorf("max = %v", max)
					}
					if min[0] != 0 || min[1] != -float64(procs-1) {
						return fmt.Errorf("min = %v", min)
					}
				} else if max != nil || min != nil {
					return fmt.Errorf("non-root got results")
				}
				return nil
			})
		})
	}
}

func TestAllReduceMax(t *testing.T) {
	run(t, 6, func(p *Proc) error {
		got := p.AllReduceMax(3, []float64{float64(p.Rank() * 7 % 5)})
		if got[0] != 4 { // ranks 0..5 give 0,2,4,1,3,0 -> max 4
			return fmt.Errorf("rank %d: max = %v", p.Rank(), got)
		}
		return nil
	})
}

func TestAllReduceWithSumMatchesAllReduce(t *testing.T) {
	run(t, 7, func(p *Proc) error {
		a := p.AllReduce(4, []float64{float64(p.Rank())})
		b := p.AllReduceWith(5, []float64{float64(p.Rank())}, OpSum)
		if a[0] != b[0] {
			return fmt.Errorf("sum mismatch: %v vs %v", a, b)
		}
		return nil
	})
}

func TestOpNames(t *testing.T) {
	if OpSum.Name() != "sum" || OpMax.Name() != "max" || OpMin.Name() != "min" {
		t.Error("op names wrong")
	}
}

func TestReduceWithLengthMismatch(t *testing.T) {
	_, err := Run(sim.Delta(2), func(p *Proc) error {
		data := make([]float64, 1+p.Rank()) // different lengths
		p.ReduceWith(0, 1, data, OpMax)
		return nil
	})
	if err == nil {
		t.Fatal("length mismatch should fail")
	}
}
