package mp

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
)

// Op is an elementwise reduction operator. Implementations must be
// associative; commutativity is not required because the binomial tree
// combines contributions in a fixed rank order.
type Op interface {
	// Name labels the operator for diagnostics.
	Name() string
	// Combine folds src into dst elementwise.
	Combine(dst, src []float64)
}

type sumOp struct{}

func (sumOp) Name() string { return "sum" }
func (sumOp) Combine(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

type maxOp struct{}

func (maxOp) Name() string { return "max" }
func (maxOp) Combine(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

type minOp struct{}

func (minOp) Name() string { return "min" }
func (minOp) Combine(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Reduction operators.
var (
	OpSum Op = sumOp{}
	OpMax Op = maxOp{}
	OpMin Op = minOp{}
)

// ReduceWith performs a binomial-tree reduction with an arbitrary
// operator, returning the result (an arena buffer the caller owns) on
// root and nil elsewhere. Each combine step is charged as len(data)
// flops.
func (p *Proc) ReduceWith(root, tag int, data []float64, op Op) []float64 {
	p.collective(op.Name())
	acc := bufpool.GetF64(len(data))
	copy(acc, data)
	p.panicBufs[0] = acc
	r := p.relRank(root)
	size := p.Size()
	for mask := 1; mask < size; mask <<= 1 {
		if r&mask != 0 {
			dst := p.absRank(r-mask, root)
			p.panicBufs[0] = nil // ownership moves to the message
			p.SendOwned(dst, internalTagBase+tag, acc)
			if r != 0 {
				return nil
			}
			p.panicBufs[0] = acc
		} else if r+mask < size {
			src := p.absRank(r+mask, root)
			in := p.Recv(src, internalTagBase+tag)
			p.panicBufs[1] = in
			if len(in) != len(acc) {
				panic(fmt.Sprintf("mp: %s reduction length mismatch %d vs %d", op.Name(), len(in), len(acc)))
			}
			op.Combine(acc, in)
			p.Compute(int64(len(in)))
			p.panicBufs[1] = nil
			ReleaseBuf(in)
		}
	}
	p.panicBufs[0] = nil
	if r == 0 {
		return acc
	}
	return nil
}

// AllReduceWith is ReduceWith followed by a broadcast of the result,
// which every rank owns. Non-roots pass their nil reduce result straight
// into Bcast, which never reads it there.
func (p *Proc) AllReduceWith(tag int, data []float64, op Op) []float64 {
	red := p.ReduceWith(0, tag, data, op)
	p.panicBufs[0] = red // root holds the result across the broadcast's sends
	return p.Bcast(0, tag, red)
}

// AllReduceMax returns the elementwise maximum across processors — used
// by the runtime to agree on global loop bounds (e.g. slab counts on
// ragged distributions).
func (p *Proc) AllReduceMax(tag int, data []float64) []float64 {
	return p.AllReduceWith(tag, data, OpMax)
}
