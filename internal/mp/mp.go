// Package mp implements the message-passing virtual machine the compiled
// node programs run on: P processors executing the same node function
// (SPMD), exchanging real data through typed point-to-point messages and
// collective operations, while a deterministic simulated clock charges
// every operation against the machine model in package sim.
//
// The collectives are built from point-to-point messages using binomial
// trees, so their simulated cost emerges from the message cost model the
// same way it would on a real distributed memory machine.
package mp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Tags at or above internalTagBase are reserved for collectives.
const internalTagBase = 1 << 24

type message struct {
	tag    int
	data   []float64
	atTime float64 // sender clock when the message is fully injected
}

// Machine is one SPMD execution context: P processors and their mailboxes.
type Machine struct {
	cfg   sim.Config
	chans [][]chan message // chans[src][dst]
}

// Proc is the per-processor handle passed to the node function. All
// methods must be called only from that processor's goroutine.
type Proc struct {
	m     *Machine
	rank  int
	clock sim.Clock
	stats *trace.ProcStats
	tr    *trace.RankTracer

	// a2aSeq numbers this processor's AllToAll calls; being collective,
	// the counts agree across ranks, which lets matching send/wait pairs
	// derive the same flow id without extra messages.
	a2aSeq int64
	// flowOut/flowIn tag the next Send/Recv with a flow id.
	flowOut, flowIn uint64
}

// NodeFunc is the SPMD node program.
type NodeFunc func(p *Proc) error

// Run executes the node function on cfg.Procs simulated processors and
// returns the collected statistics. It propagates the first error returned
// (or panic raised) by any node.
func Run(cfg sim.Config, node NodeFunc) (*trace.Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Procs
	m := &Machine{cfg: cfg, chans: make([][]chan message, p)}
	depth := mailboxCap(p)
	for src := 0; src < p; src++ {
		m.chans[src] = make([]chan message, p)
		for dst := 0; dst < p; dst++ {
			// Generous buffering keeps the deterministic plans
			// deadlock-free without a progress engine; overrunning it
			// is a plan bug and panics in post rather than blocking.
			m.chans[src][dst] = make(chan message, depth)
		}
	}
	stats := trace.NewStats(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			proc := &Proc{m: m, rank: rank, stats: &stats.Procs[rank]}
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mp: processor %d panicked: %v", rank, r)
				}
				stats.Procs[rank].Seconds = proc.clock.Seconds()
				// Close this processor's outgoing channels so peers
				// blocked in Recv observe the termination instead of
				// deadlocking; already-buffered messages still drain
				// first.
				for dst := 0; dst < p; dst++ {
					close(m.chans[rank][dst])
				}
			}()
			errs[rank] = node(proc)
		}(rank)
	}
	wg.Wait()
	var failures []error
	for rank, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("processor %d: %w", rank, err))
		}
	}
	if len(failures) > 0 {
		// Join all node errors: under fault injection several processors
		// typically fail at once, and reporting only the lowest rank would
		// hide the other diagnoses.
		return stats, fmt.Errorf("mp: %w", errors.Join(failures...))
	}
	return stats, nil
}

// Rank returns this processor's id in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of processors.
func (p *Proc) Size() int { return p.m.cfg.Procs }

// Config returns the machine configuration.
func (p *Proc) Config() sim.Config { return p.m.cfg }

// Clock returns this processor's simulated clock. The I/O layer charges
// disk time through it.
func (p *Proc) Clock() *sim.Clock { return &p.clock }

// Stats returns this processor's statistics record.
func (p *Proc) Stats() *trace.ProcStats { return p.stats }

// SetTracer attaches this processor's span sink; compute and
// communication spans are emitted into it against the simulated clock.
// A nil tracer disables recording at zero cost.
func (p *Proc) SetTracer(rt *trace.RankTracer) { p.tr = rt }

// Tracer returns the attached span sink (possibly nil).
func (p *Proc) Tracer() *trace.RankTracer { return p.tr }

// Compute charges the given number of floating point operations to this
// processor's clock.
func (p *Proc) Compute(flops int64) {
	dt := p.m.cfg.ComputeTime(flops)
	start := p.clock.Seconds()
	p.clock.Advance(dt)
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindCompute, Start: start, Dur: dt, N: flops})
	}
	p.stats.Flops += flops
	p.stats.ComputeSeconds += dt
}

// mailboxCap sizes the per-pair mailboxes from the machine size, with a
// floor covering deep one-directional streams (a sender goroutine may
// race many plan iterations ahead of a lagging receiver). A full mailbox
// is ordinary backpressure — the sender parks until the receiver drains;
// only a mailbox that stays full past sendStallTimeout is diagnosed as a
// broken plan (see post).
func mailboxCap(procs int) int {
	if c := 4 * procs; c > 64 {
		return c
	}
	return 64
}

// sendStallTimeout bounds how long a backpressured send may wait for the
// receiver before the machine declares the plan deadlocked. Generous:
// real drains take microseconds; only a missing receive leaves a send
// pending this long. A variable so tests can shorten it.
var sendStallTimeout = 30 * time.Second

// sendCharge validates the destination and applies a message's full
// simulated cost to the sender (blocking send model): clock, send span,
// communication statistics. Shared by Send and SendOwned so the two are
// indistinguishable to the simulation.
func (p *Proc) sendCharge(dst int, elems int) {
	if dst < 0 || dst >= p.Size() {
		panic(fmt.Sprintf("mp: Send to invalid rank %d", dst))
	}
	if dst == p.rank {
		panic("mp: Send to self is not supported; use local data")
	}
	bytes := int64(elems) * int64(p.m.cfg.ElemSize)
	dt := p.m.cfg.MsgTime(bytes)
	start := p.clock.Seconds()
	p.clock.Advance(dt)
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindSend, Start: start, Dur: dt, Peer: dst, Flow: p.flowOut, Bytes: bytes})
	}
	p.flowOut = 0
	p.stats.Comm.MessagesSent++
	p.stats.Comm.BytesSent += bytes
	p.stats.Comm.Seconds += dt
}

// post enqueues an owned buffer into the mailbox to dst. The fast path
// is non-blocking; a full mailbox applies backpressure (the sender
// parks until the receiver drains). A send still pending after
// sendStallTimeout means the receiver is not draining at all — a plan
// with a missing receive — and panics with the facts (rank, peer, tag,
// depth) instead of hanging the machine forever.
func (p *Proc) post(dst, tag int, buf []float64) {
	ch := p.m.chans[p.rank][dst]
	msg := message{tag: tag, data: buf, atTime: p.clock.Seconds()}
	select {
	case ch <- msg:
		return
	default:
	}
	t := time.NewTimer(sendStallTimeout)
	defer t.Stop()
	select {
	case ch <- msg:
	case <-t.C:
		panic(fmt.Sprintf("mp: rank %d overran its mailbox to rank %d and stalled %v (tag %d, depth %d): the plan posts messages the receiver never takes",
			p.rank, dst, sendStallTimeout, tag, len(ch)))
	}
}

// Send delivers a copy of data to processor dst under the given tag. The
// sender's clock advances by the full message time (blocking send model).
// The copy lands in an arena buffer, so steady-state traffic recycles
// payload memory instead of allocating (see buf.go for the ownership
// protocol).
func (p *Proc) Send(dst, tag int, data []float64) {
	p.sendCharge(dst, len(data))
	buf := bufpool.GetF64(len(data))
	copy(buf, data)
	p.post(dst, tag, buf)
}

// SendOwned is Send without the copy: data must be an arena buffer the
// caller owns (from AcquireBuf or Recv), and ownership transfers to the
// message — the caller must not touch it afterwards. Simulated cost,
// spans and statistics are identical to Send.
func (p *Proc) SendOwned(dst, tag int, data []float64) {
	p.sendCharge(dst, len(data))
	p.post(dst, tag, data)
}

// Recv blocks until the next message from src arrives and returns its
// payload. The message's tag must match; a mismatch indicates a bug in the
// compiled plan and panics. The receiver's clock advances to the message
// arrival time if it was ahead of the receiver.
//
// The returned buffer is owned by the receiver: release it with
// ReleaseBuf once done, forward it with SendOwned, or adopt it (keep it
// and never release — always safe, merely forgoing reuse).
func (p *Proc) Recv(src, tag int) []float64 {
	if src < 0 || src >= p.Size() || src == p.rank {
		panic(fmt.Sprintf("mp: Recv from invalid rank %d", src))
	}
	msg, ok := <-p.m.chans[src][p.rank]
	if !ok {
		panic(fmt.Sprintf("mp: rank %d terminated before sending the message rank %d expected (tag %d)", src, p.rank, tag))
	}
	if msg.tag != tag {
		panic(fmt.Sprintf("mp: rank %d expected tag %d from %d, got %d", p.rank, tag, src, msg.tag))
	}
	before := p.clock.Seconds()
	p.clock.SyncTo(msg.atTime)
	wait := p.clock.Seconds() - before
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindWait, Start: before, Dur: wait, Peer: src, Flow: p.flowIn})
	}
	p.flowIn = 0
	p.stats.Comm.Seconds += wait
	return msg.data
}

// collective marks entry into a collective operation: one instant per
// CommStats.Collectives increment, which is what lets the reconciler
// recover the collective count from the spans.
func (p *Proc) collective(name string) {
	p.stats.Comm.Collectives++
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindCollective, Label: name, Start: p.clock.Seconds()})
	}
}

// relRank maps rank into the rotated space where root is 0.
func (p *Proc) relRank(root int) int {
	return (p.rank - root + p.Size()) % p.Size()
}

// absRank maps a rotated rank back to an absolute one.
func (p *Proc) absRank(rel, root int) int {
	return (rel + root) % p.Size()
}

// Reduce computes the elementwise sum of data across all processors using
// a binomial tree rooted at root. On root it returns the full sum (an
// arena buffer the caller owns); on other processors it returns nil.
// len(data) must match on all processors.
func (p *Proc) Reduce(root, tag int, data []float64) []float64 {
	p.collective("reduce")
	acc := bufpool.GetF64(len(data))
	copy(acc, data)
	r := p.relRank(root)
	size := p.Size()
	for mask := 1; mask < size; mask <<= 1 {
		if r&mask != 0 {
			dst := p.absRank(r-mask, root)
			p.SendOwned(dst, internalTagBase+tag, acc)
			if r != 0 {
				return nil
			}
		} else if r+mask < size {
			src := p.absRank(r+mask, root)
			in := p.Recv(src, internalTagBase+tag)
			p.addInto(acc, in)
			ReleaseBuf(in)
		}
	}
	if r == 0 {
		return acc
	}
	return nil
}

// addInto accumulates src into dst and charges the additions as compute.
func (p *Proc) addInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
	p.Compute(int64(len(src)))
}

// Bcast distributes root's data to every processor using a binomial tree
// and returns the received copy (on root, data itself; elsewhere an
// arena buffer the caller owns).
func (p *Proc) Bcast(root, tag int, data []float64) []float64 {
	p.collective("bcast")
	r := p.relRank(root)
	size := p.Size()
	// Find the highest mask so receive happens before sends.
	top := 1
	for top < size {
		top <<= 1
	}
	received := r == 0
	for mask := top; mask >= 1; mask >>= 1 {
		if r&mask != 0 && r&(mask-1) == 0 {
			// This processor receives at level mask.
			src := p.absRank(r-mask, root)
			data = p.Recv(src, internalTagBase+tag)
			received = true
		}
	}
	if !received {
		panic("mp: Bcast internal error: no receive scheduled")
	}
	// Now forward down the tree: send to r+mask for each mask below the
	// lowest set bit of r.
	low := top
	if r != 0 {
		low = r & (-r)
	}
	for mask := low >> 1; mask >= 1; mask >>= 1 {
		if r+mask < size {
			dst := p.absRank(r+mask, root)
			p.Send(dst, internalTagBase+tag, data)
		}
	}
	return data
}

// AllReduce computes the elementwise sum across all processors and
// returns it on every processor (reduce to 0 followed by broadcast). The
// result is an arena buffer the caller owns. Non-roots pass their nil
// reduce result straight into Bcast, which never reads it there.
func (p *Proc) AllReduce(tag int, data []float64) []float64 {
	return p.Bcast(0, tag, p.Reduce(0, tag, data))
}

// Barrier blocks until every processor has entered it, and synchronizes
// the simulated clocks to the latest arrival (plus the collective's
// message costs).
func (p *Proc) Barrier(tag int) {
	ReleaseBuf(p.AllReduce(tag, nil))
}

// Gather collects each processor's data on root, in rank order. On root it
// returns a slice indexed by rank (each entry an arena buffer the caller
// owns); elsewhere nil. Contributions may have different lengths.
func (p *Proc) Gather(root, tag int, data []float64) [][]float64 {
	p.collective("gather")
	if p.rank != root {
		p.Send(root, internalTagBase+tag, data)
		return nil
	}
	out := make([][]float64, p.Size())
	for r := 0; r < p.Size(); r++ {
		if r == root {
			buf := bufpool.GetF64(len(data))
			copy(buf, data)
			out[r] = buf
			continue
		}
		out[r] = p.Recv(r, internalTagBase+tag)
	}
	return out
}

// Scatter distributes parts (indexed by rank, significant on root only)
// from root and returns this processor's part, an arena buffer the
// caller owns.
func (p *Proc) Scatter(root, tag int, parts [][]float64) []float64 {
	p.collective("scatter")
	if p.rank == root {
		for r := 0; r < p.Size(); r++ {
			if r == root {
				continue
			}
			p.Send(r, internalTagBase+tag, parts[r])
		}
		buf := bufpool.GetF64(len(parts[root]))
		copy(buf, parts[root])
		return buf
	}
	return p.Recv(root, internalTagBase+tag)
}

// AllToAll sends parts[d] to processor d and returns the slice of parts
// received, indexed by source rank (each an arena buffer the caller
// owns). parts[rank] is kept locally (copied). Used by array
// redistribution.
func (p *Proc) AllToAll(tag int, parts [][]float64) [][]float64 {
	p.collective("all-to-all")
	seq := p.a2aSeq
	p.a2aSeq++
	size := p.Size()
	if len(parts) != size {
		panic(fmt.Sprintf("mp: AllToAll wants %d parts, got %d", size, len(parts)))
	}
	out := make([][]float64, size)
	buf := bufpool.GetF64(len(parts[p.rank]))
	copy(buf, parts[p.rank])
	out[p.rank] = buf
	// Rotated schedule: step i sends to rank+i and receives from rank-i,
	// keeping the pattern contention-free and deadlock-free.
	for i := 1; i < size; i++ {
		dst := (p.rank + i) % size
		src := (p.rank - i + size) % size
		sb := int64(len(parts[dst])) * int64(p.m.cfg.ElemSize)
		p.stats.Comm.ShuffleMessages++
		p.stats.Comm.ShuffleBytes += sb
		if p.tr != nil {
			p.tr.Emit(trace.Span{Kind: trace.KindShuffle, Start: p.clock.Seconds(), Peer: dst, Bytes: sb})
			// Both partners compute the same ids from (tag, seq, src, dst),
			// linking this send to the matching wait on dst in the export.
			p.flowOut = flowID(tag, seq, p.rank, dst)
			p.flowIn = flowID(tag, seq, src, p.rank)
		}
		p.Send(dst, internalTagBase+tag, parts[dst])
		out[src] = p.Recv(src, internalTagBase+tag)
	}
	return out
}

// flowID derives a display-only id for an AllToAll message from facts
// both endpoints know, so no ids travel with the data.
func flowID(tag int, seq int64, src, dst int) uint64 {
	h := uint64(tag)*0x9E3779B97F4A7C15 ^ uint64(seq)*0xBF58476D1CE4E5B9 ^ uint64(src)<<32 ^ uint64(dst)<<1
	return h | 1
}
