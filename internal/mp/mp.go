// Package mp implements the message-passing virtual machine the compiled
// node programs run on: P processors executing the same node function
// (SPMD), exchanging real data through typed point-to-point messages and
// collective operations, while a deterministic simulated clock charges
// every operation against the machine model in package sim.
//
// The collectives are built from point-to-point messages using binomial
// trees, so their simulated cost emerges from the message cost model the
// same way it would on a real distributed memory machine.
package mp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Tags at or above internalTagBase are reserved for collectives.
const internalTagBase = 1 << 24

type message struct {
	tag    int
	data   []float64
	atTime float64 // sender clock when the message is fully injected
}

// Machine is one SPMD execution context: P processors and their mailboxes.
type Machine struct {
	cfg   sim.Config
	chans [][]chan message // chans[src][dst]
	fail  *failState       // nil on plain runs
	wd    *watchdog
}

// pendingMsg is an agreement-protocol message that arrived at a rank
// still running plan code, stashed until that rank joins the agreement.
type pendingMsg struct {
	src int
	msg message
}

// blockInfo is a rank's currently blocked mailbox operation, read by the
// deadlock watchdog for diagnostics (guarded by watchdog.mu).
type blockInfo struct {
	active    bool
	send      bool
	peer, tag int
	depth     int
}

// Proc is the per-processor handle passed to the node function. All
// methods must be called only from that processor's goroutine.
type Proc struct {
	m     *Machine
	rank  int
	clock sim.Clock
	stats *trace.ProcStats
	tr    *trace.RankTracer

	// a2aSeq numbers this processor's AllToAll calls; being collective,
	// the counts agree across ranks, which lets matching send/wait pairs
	// derive the same flow id without extra messages.
	a2aSeq int64
	// flowOut/flowIn tag the next Send/Recv with a flow id.
	flowOut, flowIn uint64

	// Fail-stop bookkeeping (all zero on plain runs).
	ops     int64        // operations performed, for the kill schedule
	killAt  []int64      // remaining scheduled kill ops for this rank
	failed  bool         // died or aborted on a failure
	pending []pendingMsg // agreement messages stashed during plan code
	blk     blockInfo

	// panicBufs and panicMulti track arena buffers a collective holds
	// mid-flight; if the operation panics (peer death, plan bug), the
	// run's recovery handler releases them so error paths do not leak
	// arena memory. Cleared on the success path. sendBuf covers the
	// window in SendOwned where ownership has left the caller but the
	// message is not yet in a mailbox.
	panicBufs  [2][]float64
	panicMulti [][]float64
	sendBuf    []float64
}

// releasePanicBufs returns any buffers a panicking operation held.
func (p *Proc) releasePanicBufs() {
	for i, b := range p.panicBufs {
		ReleaseBuf(b)
		p.panicBufs[i] = nil
	}
	for _, b := range p.panicMulti {
		ReleaseBuf(b)
	}
	p.panicMulti = nil
	ReleaseBuf(p.sendBuf)
	p.sendBuf = nil
}

// NodeFunc is the SPMD node program.
type NodeFunc func(p *Proc) error

// Run executes the node function on cfg.Procs simulated processors and
// returns the collected statistics. It propagates the first error returned
// (or panic raised) by any node.
func Run(cfg sim.Config, node NodeFunc) (*trace.Stats, error) {
	return RunOpts(cfg, Options{}, node)
}

// makeProcTable pre-builds the Proc table the failure layer and the
// watchdog need for cross-rank visibility. A plain run returns nil and
// each node goroutine allocates its own Proc, keeping the disabled path
// allocation-identical to a machine without the failure layer.
func makeProcTable(m *Machine, stats *trace.Stats, p int) []*Proc {
	if m.fail == nil && m.wd == nil {
		return nil
	}
	procs := make([]*Proc, p)
	for rank := range procs {
		procs[rank] = &Proc{m: m, rank: rank, stats: &stats.Procs[rank]}
		if m.fail != nil {
			procs[rank].killAt = m.fail.kills[rank]
		}
	}
	return procs
}

// RunOpts is Run with fault injection, failure detection and watchdog
// configuration (see Options). With a zero Options it behaves exactly
// like Run.
func RunOpts(cfg sim.Config, opts Options, node NodeFunc) (*trace.Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Procs
	m := &Machine{cfg: cfg, chans: make([][]chan message, p)}
	depth := mailboxCap(p)
	for src := 0; src < p; src++ {
		m.chans[src] = make([]chan message, p)
		for dst := 0; dst < p; dst++ {
			// Generous buffering keeps the deterministic plans
			// deadlock-free without a progress engine; a full mailbox is
			// ordinary backpressure, and one that never drains is
			// diagnosed by the deadlock watchdog rather than blocking.
			m.chans[src][dst] = make(chan message, depth)
		}
	}
	if opts.active() {
		m.fail = newFailState(p, opts)
	}
	if m.fail != nil || opts.StallTimeout > 0 {
		// The deadlock watchdog instruments every parked mailbox op, so
		// it is armed only when the failure layer is on (aborts must
		// never hang) or a stall timeout was asked for explicitly. Plain
		// runs keep the seed-fast uninstrumented park paths — the
		// wall-clock benchmark gates pin that at zero overhead.
		stall := opts.StallTimeout
		if stall <= 0 {
			stall = defaultStallTimeout
		}
		m.wd = newWatchdog(stall)
	}
	stats := trace.NewStats(p)
	errs := make([]error, p)
	// The pre-built Proc table exists only for the failure layer and the
	// watchdog (which inspect other ranks' state); a plain run allocates
	// each Proc inside its own goroutine, exactly like the machine
	// without a failure layer always has. Assigned exactly once so the
	// node goroutines capture the slice by value, not via a heap cell.
	procs := makeProcTable(m, stats, p)
	if m.wd != nil {
		m.wd.procs = procs
		go m.wd.run()
		defer m.wd.shutdown()
	}
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var proc *Proc
			if procs != nil {
				proc = procs[rank]
			} else {
				proc = &Proc{m: m, rank: rank, stats: &stats.Procs[rank]}
			}
			defer func() {
				if r := recover(); r != nil {
					switch v := r.(type) {
					case killSentinel:
						errs[rank] = &RankKilledError{Rank: v.rank, Op: v.op}
					case deathPanic:
						errs[rank] = v.err
					case watchdogPanic:
						errs[rank] = v.err
					default:
						errs[rank] = fmt.Errorf("mp: processor %d panicked: %v", rank, r)
					}
					proc.releasePanicBufs()
				}
				if m.fail != nil {
					// This rank sends nothing more; wake any dependents.
					m.fail.markDown(rank)
				}
				stats.Procs[rank].Seconds = proc.clock.Seconds()
				if opts.OpCounts != nil && rank < len(opts.OpCounts) {
					opts.OpCounts[rank] = proc.ops
				}
				// Close this processor's outgoing channels so peers
				// blocked in Recv observe the termination instead of
				// deadlocking; already-buffered messages still drain
				// first.
				for dst := 0; dst < p; dst++ {
					close(m.chans[rank][dst])
				}
			}()
			err := node(proc)
			if f := m.fail; f != nil && f.detectOn() && f.anyDead() {
				// A failure is in flight but this rank finished cleanly:
				// take part in the survivors' agreement so the aborting
				// ranks always find a coordinator.
				proc.participate()
			}
			errs[rank] = err
		}(rank)
	}
	wg.Wait()
	if m.wd != nil {
		m.wd.shutdown()
	}
	// Abort paths can strand payloads: messages a dead or aborted rank
	// never received still sit in the (now closed) mailboxes, and ranks
	// may hold stashed agreement traffic. Return all of it to the arena
	// so failed runs do not leak buffers — checked-mode tests assert the
	// Gets/Puts balance. Clean runs have empty mailboxes, so this costs
	// nothing on the ordinary path.
	for _, row := range m.chans {
		for _, ch := range row {
			for msg := range ch {
				ReleaseBuf(msg.data)
			}
		}
	}
	for _, proc := range procs {
		for _, pm := range proc.pending {
			ReleaseBuf(pm.msg.data)
		}
		proc.pending = nil
	}
	var failures []error
	var failedSet map[int]bool // lazy: clean runs must not allocate it
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if failedSet == nil {
			failedSet = make(map[int]bool)
		}
		failures = append(failures, fmt.Errorf("processor %d: %w", rank, err))
		var killed *RankKilledError
		if errors.As(err, &killed) {
			failedSet[killed.Rank] = true
		}
		var dead *ErrRankDead
		if errors.As(err, &dead) {
			for _, r := range dead.Agreed {
				failedSet[r] = true
			}
		}
	}
	if len(failures) == 0 {
		return stats, nil
	}
	// Join all node errors: under fault injection several processors
	// typically fail at once, and reporting only the lowest rank would
	// hide the other diagnoses.
	joined := fmt.Errorf("mp: %w", errors.Join(failures...))
	if len(failedSet) > 0 {
		failed := make([]int, 0, len(failedSet))
		for r := range failedSet {
			failed = append(failed, r)
		}
		sort.Ints(failed)
		return stats, &RankFailure{Failed: failed, Err: joined}
	}
	return stats, joined
}

// Rank returns this processor's id in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of processors.
func (p *Proc) Size() int { return p.m.cfg.Procs }

// Config returns the machine configuration.
func (p *Proc) Config() sim.Config { return p.m.cfg }

// Clock returns this processor's simulated clock. The I/O layer charges
// disk time through it.
func (p *Proc) Clock() *sim.Clock { return &p.clock }

// Stats returns this processor's statistics record.
func (p *Proc) Stats() *trace.ProcStats { return p.stats }

// SetTracer attaches this processor's span sink; compute and
// communication spans are emitted into it against the simulated clock.
// A nil tracer disables recording at zero cost.
func (p *Proc) SetTracer(rt *trace.RankTracer) { p.tr = rt }

// Tracer returns the attached span sink (possibly nil).
func (p *Proc) Tracer() *trace.RankTracer { return p.tr }

// Compute charges the given number of floating point operations to this
// processor's clock.
func (p *Proc) Compute(flops int64) {
	dt := p.m.cfg.ComputeTime(flops)
	start := p.clock.Seconds()
	p.clock.Advance(dt)
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindCompute, Start: start, Dur: dt, N: flops})
	}
	p.stats.Flops += flops
	p.stats.ComputeSeconds += dt
}

// mailboxCap sizes the per-pair mailboxes from the machine size, with a
// floor covering deep one-directional streams (a sender goroutine may
// race many plan iterations ahead of a lagging receiver). A full mailbox
// is ordinary backpressure — the sender parks until the receiver drains;
// only a machine-wide quiet period is diagnosed as a broken plan (see
// the deadlock watchdog in failure.go).
func mailboxCap(procs int) int {
	if c := 4 * procs; c > 64 {
		return c
	}
	return 64
}

// sendCharge validates the destination and applies a message's full
// simulated cost to the sender (blocking send model): clock, send span,
// communication statistics. Shared by Send and SendOwned so the two are
// indistinguishable to the simulation.
func (p *Proc) sendCharge(dst int, elems int) {
	if dst < 0 || dst >= p.Size() {
		panic(fmt.Sprintf("mp: Send to invalid rank %d", dst))
	}
	if dst == p.rank {
		panic("mp: Send to self is not supported; use local data")
	}
	p.step()
	bytes := int64(elems) * int64(p.m.cfg.ElemSize)
	dt := p.m.cfg.MsgTime(bytes)
	start := p.clock.Seconds()
	p.clock.Advance(dt)
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindSend, Start: start, Dur: dt, Peer: dst, Flow: p.flowOut, Bytes: bytes})
	}
	p.flowOut = 0
	p.stats.Comm.MessagesSent++
	p.stats.Comm.BytesSent += bytes
	p.stats.Comm.Seconds += dt
}

// post enqueues an owned buffer into the mailbox to dst. The fast path
// is non-blocking; a full mailbox applies backpressure (the sender
// parks until the receiver drains). A send that stays parked is watched
// by the deadlock watchdog, which fails the run with every blocked
// rank's diagnostics; with failure detection active, a destination that
// died or aborted resolves the send into the abort path instead.
func (p *Proc) post(dst, tag int, buf []float64) {
	ch := p.m.chans[p.rank][dst]
	msg := message{tag: tag, data: buf, atTime: p.clock.Seconds()}
	select {
	case ch <- msg:
		return
	default:
	}
	f := p.m.fail
	wd := p.m.wd
	if wd == nil {
		// Uninstrumented run: park with a plain stall timer, exactly like
		// the machine without the failure layer always has. A send still
		// pending after the timeout means the receiver is not draining at
		// all — a plan with a missing receive.
		t := time.NewTimer(defaultStallTimeout)
		defer t.Stop()
		select {
		case ch <- msg:
		case <-t.C:
			ReleaseBuf(buf)
			panic(watchdogPanic{err: fmt.Errorf("mp: rank %d overran its mailbox to rank %d and stalled %v (tag %d, depth %d): the plan posts messages the receiver never takes",
				p.rank, dst, defaultStallTimeout, tag, len(ch))})
		}
		return
	}
	var down chan struct{}
	if f != nil {
		down = f.down[dst]
	}
	wd.block(p, true, dst, tag, len(ch))
	select {
	case ch <- msg:
		wd.unblock(p)
	case <-down:
		wd.unblock(p)
		// The destination is dead or aborting and will never drain the
		// mailbox; drop the payload and abort.
		ReleaseBuf(buf)
		p.deadPeer(dst, tag)
	case <-wd.abort:
		wd.unblock(p)
		ReleaseBuf(buf)
		p.watchdogFail()
	}
}

// Send delivers a copy of data to processor dst under the given tag. The
// sender's clock advances by the full message time (blocking send model).
// The copy lands in an arena buffer, so steady-state traffic recycles
// payload memory instead of allocating (see buf.go for the ownership
// protocol).
func (p *Proc) Send(dst, tag int, data []float64) {
	p.sendCharge(dst, len(data))
	buf := bufpool.GetF64(len(data))
	copy(buf, data)
	p.post(dst, tag, buf)
}

// SendOwned is Send without the copy: data must be an arena buffer the
// caller owns (from AcquireBuf or Recv), and ownership transfers to the
// message — the caller must not touch it afterwards. Simulated cost,
// spans and statistics are identical to Send.
func (p *Proc) SendOwned(dst, tag int, data []float64) {
	// Ownership has already transferred; a kill landing on the charge
	// must release the payload or the abort leaks it.
	p.sendBuf = data
	p.sendCharge(dst, len(data))
	p.sendBuf = nil
	p.post(dst, tag, data)
}

// Recv blocks until the next message from src arrives and returns its
// payload. The message's tag must match; a mismatch indicates a bug in the
// compiled plan and panics. The receiver's clock advances to the message
// arrival time if it was ahead of the receiver.
//
// The returned buffer is owned by the receiver: release it with
// ReleaseBuf once done, forward it with SendOwned, or adopt it (keep it
// and never release — always safe, merely forgoing reuse).
func (p *Proc) Recv(src, tag int) []float64 {
	if src < 0 || src >= p.Size() || src == p.rank {
		panic(fmt.Sprintf("mp: Recv from invalid rank %d", src))
	}
	p.step()
	msg := p.recvMsg(src, tag)
	if msg.tag != tag {
		panic(fmt.Sprintf("mp: rank %d expected tag %d from %d, got %d", p.rank, tag, src, msg.tag))
	}
	before := p.clock.Seconds()
	p.clock.SyncTo(msg.atTime)
	wait := p.clock.Seconds() - before
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindWait, Start: before, Dur: wait, Peer: src, Flow: p.flowIn})
	}
	p.flowIn = 0
	p.stats.Comm.Seconds += wait
	return msg.data
}

// recvMsg blocks for the next application message from src. Buffered
// messages are always drained before a peer's death is acted on, so
// the point at which a run aborts is determined by the program, not by
// scheduling. Agreement-protocol messages that arrive early are stashed
// for the epilogue.
func (p *Proc) recvMsg(src, tag int) message {
	ch := p.m.chans[src][p.rank]
	f := p.m.fail
	if f == nil && p.m.wd == nil {
		// Uninstrumented run: a plain blocking receive, the cheapest park
		// the runtime offers. The wall-clock benchmark gates pin this
		// path at zero overhead over the machine without a failure layer.
		msg, ok := <-ch
		if !ok {
			p.deadChannel(src, tag)
		}
		return msg
	}
	for {
		// Fast path: a message (or the sender's termination) is already here.
		select {
		case msg, ok := <-ch:
			if !ok {
				p.deadChannel(src, tag)
			}
			if f != nil && msg.tag >= agreeTagBase {
				p.pending = append(p.pending, pendingMsg{src: src, msg: msg})
				continue
			}
			return msg
		default:
		}
		var down chan struct{}
		if f != nil {
			down = f.down[src]
		}
		wd := p.m.wd
		wd.block(p, false, src, tag, len(ch))
		select {
		case msg, ok := <-ch:
			wd.unblock(p)
			if !ok {
				p.deadChannel(src, tag)
			}
			if f != nil && msg.tag >= agreeTagBase {
				p.pending = append(p.pending, pendingMsg{src: src, msg: msg})
				continue
			}
			return msg
		case <-down:
			wd.unblock(p)
			// The sender died or aborted; drain anything it still
			// delivered before acting on that (drain preference).
			select {
			case msg, ok := <-ch:
				if !ok {
					p.deadChannel(src, tag)
				}
				if msg.tag >= agreeTagBase {
					p.pending = append(p.pending, pendingMsg{src: src, msg: msg})
					continue
				}
				return msg
			default:
				p.deadPeer(src, tag)
			}
		case <-wd.abort:
			wd.unblock(p)
			p.watchdogFail()
		}
	}
}

// collective marks entry into a collective operation: one instant per
// CommStats.Collectives increment, which is what lets the reconciler
// recover the collective count from the spans.
func (p *Proc) collective(name string) {
	p.stats.Comm.Collectives++
	if p.tr != nil {
		p.tr.Emit(trace.Span{Kind: trace.KindCollective, Label: name, Start: p.clock.Seconds()})
	}
}

// relRank maps rank into the rotated space where root is 0.
func (p *Proc) relRank(root int) int {
	return (p.rank - root + p.Size()) % p.Size()
}

// absRank maps a rotated rank back to an absolute one.
func (p *Proc) absRank(rel, root int) int {
	return (rel + root) % p.Size()
}

// Reduce computes the elementwise sum of data across all processors using
// a binomial tree rooted at root. On root it returns the full sum (an
// arena buffer the caller owns); on other processors it returns nil.
// len(data) must match on all processors.
func (p *Proc) Reduce(root, tag int, data []float64) []float64 {
	p.collective("reduce")
	acc := bufpool.GetF64(len(data))
	copy(acc, data)
	p.panicBufs[0] = acc
	r := p.relRank(root)
	size := p.Size()
	for mask := 1; mask < size; mask <<= 1 {
		if r&mask != 0 {
			dst := p.absRank(r-mask, root)
			p.panicBufs[0] = nil // ownership moves to the message
			p.SendOwned(dst, internalTagBase+tag, acc)
			if r != 0 {
				return nil
			}
			p.panicBufs[0] = acc
		} else if r+mask < size {
			src := p.absRank(r+mask, root)
			in := p.Recv(src, internalTagBase+tag)
			p.panicBufs[1] = in
			p.addInto(acc, in)
			p.panicBufs[1] = nil
			ReleaseBuf(in)
		}
	}
	p.panicBufs[0] = nil
	if r == 0 {
		return acc
	}
	return nil
}

// addInto accumulates src into dst and charges the additions as compute.
func (p *Proc) addInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
	p.Compute(int64(len(src)))
}

// Bcast distributes root's data to every processor using a binomial tree
// and returns the received copy (on root, data itself; elsewhere an
// arena buffer the caller owns).
func (p *Proc) Bcast(root, tag int, data []float64) []float64 {
	p.collective("bcast")
	r := p.relRank(root)
	size := p.Size()
	// Find the highest mask so receive happens before sends.
	top := 1
	for top < size {
		top <<= 1
	}
	received := r == 0
	for mask := top; mask >= 1; mask >>= 1 {
		if r&mask != 0 && r&(mask-1) == 0 {
			// This processor receives at level mask.
			src := p.absRank(r-mask, root)
			data = p.Recv(src, internalTagBase+tag)
			p.panicBufs[0] = data
			received = true
		}
	}
	if !received {
		panic("mp: Bcast internal error: no receive scheduled")
	}
	// Now forward down the tree: send to r+mask for each mask below the
	// lowest set bit of r.
	low := top
	if r != 0 {
		low = r & (-r)
	}
	for mask := low >> 1; mask >= 1; mask >>= 1 {
		if r+mask < size {
			dst := p.absRank(r+mask, root)
			p.Send(dst, internalTagBase+tag, data)
		}
	}
	p.panicBufs[0] = nil
	return data
}

// AllReduce computes the elementwise sum across all processors and
// returns it on every processor (reduce to 0 followed by broadcast). The
// result is an arena buffer the caller owns. Non-roots pass their nil
// reduce result straight into Bcast, which never reads it there.
func (p *Proc) AllReduce(tag int, data []float64) []float64 {
	red := p.Reduce(0, tag, data)
	p.panicBufs[0] = red // root holds the sum across the broadcast's sends
	return p.Bcast(0, tag, red)
}

// Barrier blocks until every processor has entered it, and synchronizes
// the simulated clocks to the latest arrival (plus the collective's
// message costs).
func (p *Proc) Barrier(tag int) {
	ReleaseBuf(p.AllReduce(tag, nil))
}

// Gather collects each processor's data on root, in rank order. On root it
// returns a slice indexed by rank (each entry an arena buffer the caller
// owns); elsewhere nil. Contributions may have different lengths.
func (p *Proc) Gather(root, tag int, data []float64) [][]float64 {
	p.collective("gather")
	if p.rank != root {
		p.Send(root, internalTagBase+tag, data)
		return nil
	}
	out := make([][]float64, p.Size())
	p.panicMulti = out
	for r := 0; r < p.Size(); r++ {
		if r == root {
			buf := bufpool.GetF64(len(data))
			copy(buf, data)
			out[r] = buf
			continue
		}
		out[r] = p.Recv(r, internalTagBase+tag)
	}
	p.panicMulti = nil
	return out
}

// Scatter distributes parts (indexed by rank, significant on root only)
// from root and returns this processor's part, an arena buffer the
// caller owns.
func (p *Proc) Scatter(root, tag int, parts [][]float64) []float64 {
	p.collective("scatter")
	if p.rank == root {
		for r := 0; r < p.Size(); r++ {
			if r == root {
				continue
			}
			p.Send(r, internalTagBase+tag, parts[r])
		}
		buf := bufpool.GetF64(len(parts[root]))
		copy(buf, parts[root])
		return buf
	}
	return p.Recv(root, internalTagBase+tag)
}

// AllToAll sends parts[d] to processor d and returns the slice of parts
// received, indexed by source rank (each an arena buffer the caller
// owns). parts[rank] is kept locally (copied). Used by array
// redistribution.
func (p *Proc) AllToAll(tag int, parts [][]float64) [][]float64 {
	p.collective("all-to-all")
	seq := p.a2aSeq
	p.a2aSeq++
	size := p.Size()
	if len(parts) != size {
		panic(fmt.Sprintf("mp: AllToAll wants %d parts, got %d", size, len(parts)))
	}
	out := make([][]float64, size)
	p.panicMulti = out
	buf := bufpool.GetF64(len(parts[p.rank]))
	copy(buf, parts[p.rank])
	out[p.rank] = buf
	// Rotated schedule: step i sends to rank+i and receives from rank-i,
	// keeping the pattern contention-free and deadlock-free.
	for i := 1; i < size; i++ {
		dst := (p.rank + i) % size
		src := (p.rank - i + size) % size
		sb := int64(len(parts[dst])) * int64(p.m.cfg.ElemSize)
		p.stats.Comm.ShuffleMessages++
		p.stats.Comm.ShuffleBytes += sb
		if p.tr != nil {
			p.tr.Emit(trace.Span{Kind: trace.KindShuffle, Start: p.clock.Seconds(), Peer: dst, Bytes: sb})
			// Both partners compute the same ids from (tag, seq, src, dst),
			// linking this send to the matching wait on dst in the export.
			p.flowOut = flowID(tag, seq, p.rank, dst)
			p.flowIn = flowID(tag, seq, src, p.rank)
		}
		p.Send(dst, internalTagBase+tag, parts[dst])
		out[src] = p.Recv(src, internalTagBase+tag)
	}
	p.panicMulti = nil
	return out
}

// flowID derives a display-only id for an AllToAll message from facts
// both endpoints know, so no ids travel with the data.
func flowID(tag int, seq int64, src, dst int) uint64 {
	h := uint64(tag)*0x9E3779B97F4A7C15 ^ uint64(seq)*0xBF58476D1CE4E5B9 ^ uint64(src)<<32 ^ uint64(dst)<<1
	return h | 1
}
