// Package iosim implements the parallel I/O subsystem of the simulated
// machine: per-processor logical disks holding Local Array Files (LAFs),
// backed either by real OS files or by memory, with the request/byte
// accounting and the simulated timing model of Section 4 of the paper.
//
// Accounting conventions: trace.IOStats byte counts use the cost model's
// element size (sim.Config.ElemSize, 4 bytes for the paper's real*4
// arrays) even though the Go implementation stores float64 values in the
// files. The number of physical requests equals the number of
// discontiguous file regions touched, unless data sieving coalesces them.
package iosim

import (
	"encoding/binary"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the backing store of one local array file.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Close() error
}

// FS creates and opens files for logical disks.
type FS interface {
	// Create makes (or truncates) a file.
	Create(name string) (File, error)
	// Open opens an existing file.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
}

// ---------------------------------------------------------------------------
// In-memory file system

// MemFS is an in-memory FS used by tests and fast simulations. It is safe
// for concurrent use by multiple processors as long as each file is used
// by one processor at a time (the LAF ownership model of the paper).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memFile struct {
	mu   sync.Mutex
	data []byte
}

// Create makes or truncates the named file.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{}
	fs.files[name] = f
	return f, nil
}

// Open opens an existing file.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("iosim: open %s: %w", name, iofs.ErrNotExist)
	}
	return f, nil
}

// Names returns the names of all files currently in the file system, in
// unspecified order. Tests use it to assert that failed runs clean up.
func (fs *MemFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	return names
}

// Remove deletes the named file.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("iosim: remove %s: %w", name, iofs.ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("iosim: negative offset %d", off)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("iosim: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("iosim: negative truncate size %d", size)
	}
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.data)
	f.data = grown
	return nil
}

func (f *memFile) Close() error { return nil }

// ---------------------------------------------------------------------------
// OS file system

// OSFS stores local array files under a root directory on the real file
// system, making the out-of-core execution genuinely out of core.
type OSFS struct {
	root string
}

// NewOSFS returns an FS rooted at dir, creating it if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("iosim: %w", err)
	}
	return &OSFS{root: dir}, nil
}

func (fs *OSFS) path(name string) string {
	return filepath.Join(fs.root, filepath.Clean(name))
}

// Create makes or truncates the named file.
func (fs *OSFS) Create(name string) (File, error) {
	p := fs.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	return os.Create(p)
}

// Open opens an existing file.
func (fs *OSFS) Open(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_RDWR, 0)
}

// Remove deletes the named file.
func (fs *OSFS) Remove(name string) error {
	return os.Remove(fs.path(name))
}

// Names returns the names (relative to the root, slash-separated) of all
// regular files currently in the file system, in unspecified order. The
// serving layer's journal and work stores enumerate their segments and
// leftover attempt files with it.
func (fs *OSFS) Names() []string {
	var names []string
	filepath.WalkDir(fs.root, func(p string, d iofs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil //nolint:nilerr // enumeration is best-effort
		}
		if rel, err := filepath.Rel(fs.root, p); err == nil {
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	return names
}

// ---------------------------------------------------------------------------
// Element encoding

const elemBytes = 8 // on-file storage size of one float64

// FileElemBytes is the on-file storage size of one element, exported for
// the layers that reason about physical file bytes rather than cost-model
// bytes (the parity stripe geometry and its cost closed forms).
const FileElemBytes = elemBytes

func encode(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*elemBytes:], math.Float64bits(v))
	}
}

func decode(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*elemBytes:]))
	}
}

// ---------------------------------------------------------------------------
// Chunks

// Chunk is one contiguous run of elements in a local array file.
type Chunk struct {
	// Off is the element offset within the file.
	Off int64
	// Len is the run length in elements.
	Len int
}

// TotalLen returns the number of elements covered by chunks.
func TotalLen(chunks []Chunk) int {
	n := 0
	for _, c := range chunks {
		n += c.Len
	}
	return n
}

// Coalesce merges adjacent or overlapping chunks (after sorting by offset)
// and returns the minimal equivalent chunk list. It does not modify its
// argument.
func Coalesce(chunks []Chunk) []Chunk {
	if len(chunks) == 0 {
		return nil
	}
	sorted := make([]Chunk, len(chunks))
	copy(sorted, chunks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	out := []Chunk{sorted[0]}
	for _, c := range sorted[1:] {
		last := &out[len(out)-1]
		if c.Off <= last.Off+int64(last.Len) {
			end := c.Off + int64(c.Len)
			if end > last.Off+int64(last.Len) {
				last.Len = int(end - last.Off)
			}
			continue
		}
		out = append(out, c)
	}
	return out
}

// Span returns the single chunk covering everything from the first to the
// last element referenced by chunks.
func Span(chunks []Chunk) Chunk {
	if len(chunks) == 0 {
		return Chunk{}
	}
	lo := chunks[0].Off
	hi := chunks[0].Off + int64(chunks[0].Len)
	for _, c := range chunks[1:] {
		if c.Off < lo {
			lo = c.Off
		}
		if end := c.Off + int64(c.Len); end > hi {
			hi = end
		}
	}
	return Chunk{Off: lo, Len: int(hi - lo)}
}
