package iosim

import (
	"errors"
	"fmt"
)

// ErrInjected is the root cause of permanent faults injected by ChaosFS
// (and a convenient sentinel for failure-injection tests).
var ErrInjected = errors.New("iosim: injected permanent fault")

// ErrDiskLost reports that the logical disk holding the file is gone: a
// KindDiskLoss fault dropped every file of that disk, and any operation
// on them fails permanently until a replacement file is created (which
// the parity layer does when it reconstructs the content from the
// surviving disks). It wraps ErrInjected so existing fault-injection
// classification keeps working.
var ErrDiskLost = fmt.Errorf("iosim: logical disk lost: %w", ErrInjected)

// transienter is the error classification interface of the fault model:
// an error anywhere in a chain may declare itself transient, meaning a
// retry of the same operation has a reasonable chance of succeeding
// (controller hiccup, dropped request, torn transfer). Errors that do not
// implement it are treated as permanent.
type transienter interface{ Transient() bool }

// TransientError wraps an error and marks it as transient (retryable).
type TransientError struct{ Err error }

// Error returns the wrapped error's message.
func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient reports that a retry may succeed.
func (e *TransientError) Transient() bool { return true }

// MarkTransient wraps err as transient; nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether any error in err's chain classifies itself
// as transient via a `Transient() bool` method.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// CorruptionError reports a checksum mismatch on a read: the bytes
// delivered by the file do not match the CRC32 recorded when that block
// of the file was last written. It is transient because read-path
// corruption (a flipped bit on the wire) is repaired by re-reading;
// corruption at rest keeps failing and surfaces as an ExhaustedError
// wrapping this one.
type CorruptionError struct {
	File  string
	Block int64 // checksum block index within the file
}

// Error describes the mismatch.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("iosim: checksum mismatch on %s (block %d)", e.File, e.Block)
}

// Transient reports that a re-read may deliver intact data.
func (e *CorruptionError) Transient() bool { return true }

// ExhaustedError reports that the resilient I/O layer spent its whole
// retry budget without a successful operation. It is permanent: the
// caller must fail the execution (or restart from a checkpoint).
type ExhaustedError struct {
	Op       string
	File     string
	Attempts int
	Last     error
}

// Error summarizes the failed retry loop.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("iosim: %s %s: giving up after %d attempts: %v", e.Op, e.File, e.Attempts, e.Last)
}

// Unwrap exposes the last underlying failure.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// Transient reports false: the budget is spent, retrying is over. This
// stops IsTransient from walking into the (transient) wrapped cause.
func (e *ExhaustedError) Transient() bool { return false }
