package iosim

import (
	"errors"
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

var errBoom = errors.New("boom")

func TestFaultFSBudget(t *testing.T) {
	fs := NewFaultFS(NewMemFS(), 3, errBoom)
	if fs.Remaining() != 3 {
		t.Fatalf("Remaining = %d", fs.Remaining())
	}
	f, err := fs.Create("a") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{1, 2}, 0); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 2), 0); err != nil { // op 3
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 2), 0); !errors.Is(err, errBoom) {
		t.Fatalf("op 4 should fail with the injected error, got %v", err)
	}
	if _, err := fs.Create("b"); !errors.Is(err, errBoom) {
		t.Fatalf("create after exhaustion should fail, got %v", err)
	}
	if err := fs.Remove("a"); !errors.Is(err, errBoom) {
		t.Fatalf("remove after exhaustion should fail, got %v", err)
	}
}

func TestFaultFSDefaultError(t *testing.T) {
	fs := NewFaultFS(NewMemFS(), 0, nil)
	if _, err := fs.Create("a"); err == nil {
		t.Fatal("want injected error")
	}
}

func TestFaultFSPassThrough(t *testing.T) {
	fs := NewFaultFS(NewMemFS(), 1000, errBoom)
	d := NewDisk(fs, sim.Delta(1), nil)
	laf, err := d.CreateLAF("x", 16)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, 16)
	src[7] = 3.5
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	got, _, err := laf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 3.5 {
		t.Fatal("data corrupted through FaultFS")
	}
	if err := laf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("x"); err != nil {
		t.Fatal(err)
	}
}

func TestLAFErrorsPropagateFromFaults(t *testing.T) {
	// Exhaust the budget mid-stream: the LAF surfaces the error.
	fs := NewFaultFS(NewMemFS(), 2, errBoom) // create + truncate
	d := NewDisk(fs, sim.Delta(1), nil)
	laf, err := d.CreateLAF("x", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laf.WriteAll(make([]float64, 16)); !errors.Is(err, errBoom) {
		t.Fatalf("write should surface the injected fault, got %v", err)
	}
	if _, err := laf.ReadChunksSieved([]Chunk{{0, 2}, {8, 2}}, make([]float64, 4)); !errors.Is(err, errBoom) {
		t.Fatalf("sieved read should surface the injected fault, got %v", err)
	}
}

func TestWriteChunksSievedRoundTrip(t *testing.T) {
	stats := &trace.IOStats{}
	d := NewDisk(NewMemFS(), sim.Delta(2), stats)
	laf, err := d.CreateLAF("a", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill so the read-modify-write has something to preserve.
	base := make([]float64, 64)
	for i := range base {
		base[i] = float64(i)
	}
	if _, err := laf.WriteAll(base); err != nil {
		t.Fatal(err)
	}
	before := *stats
	chunks := []Chunk{{4, 3}, {20, 2}, {40, 1}}
	src := []float64{100, 101, 102, 103, 104, 105}
	if _, err := laf.WriteChunksSieved(chunks, src); err != nil {
		t.Fatal(err)
	}
	// Exactly one read request + one write request, span bytes each way.
	if got := stats.ReadRequests - before.ReadRequests; got != 1 {
		t.Errorf("sieved write read requests = %d, want 1", got)
	}
	if got := stats.WriteRequests - before.WriteRequests; got != 1 {
		t.Errorf("sieved write write requests = %d, want 1", got)
	}
	span := Span(chunks)
	if got := stats.BytesWritten - before.BytesWritten; got != int64(span.Len)*4 {
		t.Errorf("sieved write moved %d bytes, want %d", got, span.Len*4)
	}
	all, _, err := laf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), base...)
	want[4], want[5], want[6] = 100, 101, 102
	want[20], want[21] = 103, 104
	want[40] = 105
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("element %d: got %g want %g (RMW corrupted data)", i, all[i], want[i])
		}
	}
}

func TestWriteChunksSievedEdgeCases(t *testing.T) {
	d := NewDisk(NewMemFS(), sim.Delta(1), nil)
	laf, err := d.CreateLAF("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laf.WriteChunksSieved(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := laf.WriteChunksSieved([]Chunk{{8, 5}}, make([]float64, 5)); err == nil {
		t.Error("out-of-bounds sieved write should fail")
	}
}
