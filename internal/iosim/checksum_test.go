package iosim

import (
	"hash/crc32"
	"math/rand"
	"testing"

	"github.com/ooc-hpf/passion/internal/trace"
)

// TestZeroBlockCRCTable pins the precomputed table against the direct
// computation it replaced, for every prefix length a seedZero can need.
func TestZeroBlockCRCTable(t *testing.T) {
	zero := make([]byte, ChecksumBlockBytes)
	for n := 0; n <= ChecksumBlockBytes; n++ {
		if want := crc32.ChecksumIEEE(zero[:n]); zeroBlockCRCs[n] != want {
			t.Fatalf("zeroBlockCRCs[%d] = %#x, want %#x", n, zeroBlockCRCs[n], want)
		}
	}
}

// TestSeedZeroUsesTable checks a freshly created resilient file verifies
// from the first read, including a ragged tail block.
func TestSeedZeroUsesTable(t *testing.T) {
	res := NewResilience(DefaultRetryPolicy())
	// 300 elements = 2400 bytes: two full blocks and a 352-byte tail.
	res.seedZero("x.laf", 300*elemBytes)
	zero := make([]byte, 300*elemBytes)
	if block, ok := res.Check("x.laf", 0, zero); !ok {
		t.Fatalf("zero-seeded file failed verification at block %d", block)
	}
	if _, ok := res.get("x.laf", 2); !ok {
		t.Fatal("tail block has no seeded checksum")
	}
}

// TestIncrementalEdgeCRCMatchesFullRecompute drives randomized partial
// writes through a resilient file and cross-checks every stored block
// checksum against a full recomputation from the file image — the
// incremental head+middle+tail path must be indistinguishable from
// hashing the whole block.
func TestIncrementalEdgeCRCMatchesFullRecompute(t *testing.T) {
	const elems = 1024 // 8192 bytes = 8 checksum blocks
	rng := rand.New(rand.NewSource(42))
	mem := NewMemFS()
	stats := &trace.IOStats{}
	res := NewResilience(DefaultRetryPolicy())
	d := NewResilientDisk(mem, testConfig(), stats, res)
	laf, err := d.CreateLAF("x.laf", elems)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()

	for iter := 0; iter < 200; iter++ {
		off := rng.Intn(elems)
		n := 1 + rng.Intn(elems-off)
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		if _, err := laf.WriteChunks([]Chunk{{Off: int64(off), Len: n}}, src); err != nil {
			t.Fatal(err)
		}

		// Recompute every block checksum from the raw file image and
		// compare with the store.
		img := make([]byte, elems*elemBytes)
		if err := laf.rawRead(img, 0, nil); err != nil {
			t.Fatal(err)
		}
		for b := int64(0); b < int64(len(img))/ChecksumBlockBytes; b++ {
			want := crc32.ChecksumIEEE(img[b*ChecksumBlockBytes : (b+1)*ChecksumBlockBytes])
			got, ok := res.get("x.laf", b)
			if !ok {
				t.Fatalf("iter %d: block %d lost its checksum", iter, b)
			}
			if got != want {
				t.Fatalf("iter %d (write [%d,+%d)): block %d stored %#x, recompute %#x",
					iter, off, n, b, got, want)
			}
		}
	}
}

// FuzzEdgeCRCPartialWrite fuzzes a single partial-block write over
// pre-existing random content and checks the stored edge checksums
// against full recomputation.
func FuzzEdgeCRCPartialWrite(f *testing.F) {
	f.Add(int64(3), 17, uint64(1))
	f.Add(int64(120), 200, uint64(2))
	f.Add(int64(0), 1, uint64(3))
	f.Add(int64(255), 1, uint64(4))
	f.Fuzz(func(t *testing.T, off int64, n int, seed uint64) {
		const elems = 256 // two checksum blocks
		if off < 0 || n <= 0 || off >= elems || int64(n) > elems-off {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		mem := NewMemFS()
		res := NewResilience(DefaultRetryPolicy())
		d := NewResilientDisk(mem, testConfig(), &trace.IOStats{}, res)
		laf, err := d.CreateLAF("x.laf", elems)
		if err != nil {
			t.Fatal(err)
		}
		defer laf.Close()

		base := make([]float64, elems)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		if _, err := laf.WriteAll(base); err != nil {
			t.Fatal(err)
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		if _, err := laf.WriteChunks([]Chunk{{Off: off, Len: n}}, src); err != nil {
			t.Fatal(err)
		}

		img := make([]byte, elems*elemBytes)
		if err := laf.rawRead(img, 0, nil); err != nil {
			t.Fatal(err)
		}
		for b := int64(0); b*ChecksumBlockBytes < int64(len(img)); b++ {
			lo := b * ChecksumBlockBytes
			hi := lo + ChecksumBlockBytes
			if hi > int64(len(img)) {
				hi = int64(len(img))
			}
			want := crc32.ChecksumIEEE(img[lo:hi])
			got, ok := res.get("x.laf", b)
			if !ok {
				t.Fatalf("block %d lost its checksum", b)
			}
			if got != want {
				t.Fatalf("write [%d,+%d): block %d stored %#x, recompute %#x", off, n, b, got, want)
			}
		}
	})
}
