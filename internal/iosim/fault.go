package iosim

import (
	"fmt"
	"sync"
)

// FaultFS wraps a file system and injects an error after a configurable
// number of operations, for failure-injection tests: every Create, Open,
// Remove, ReadAt, WriteAt and Truncate counts as one operation, and once
// the budget is exhausted every subsequent operation fails with the
// configured error.
type FaultFS struct {
	inner FS
	mu    sync.Mutex
	left  int
	err   error
}

// NewFaultFS returns a file system that lets opsBeforeFailure operations
// succeed and then fails every operation with err.
func NewFaultFS(inner FS, opsBeforeFailure int, err error) *FaultFS {
	if err == nil {
		err = fmt.Errorf("iosim: injected fault")
	}
	return &FaultFS{inner: inner, left: opsBeforeFailure, err: err}
}

// take consumes one operation from the budget.
func (f *FaultFS) take() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left <= 0 {
		return f.err
	}
	f.left--
	return nil
}

// Remaining returns how many operations are left before failure.
func (f *FaultFS) Remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.left
}

// Create makes the named file, or fails if the budget is exhausted.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.take(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{FaultFS: f, inner: file}, nil
}

// Open opens the named file, or fails if the budget is exhausted.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.take(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{FaultFS: f, inner: file}, nil
}

// Remove deletes the named file, or fails if the budget is exhausted.
func (f *FaultFS) Remove(name string) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

type faultFile struct {
	*FaultFS
	inner File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }
