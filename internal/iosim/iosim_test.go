package iosim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

func newTestDisk(t *testing.T) (*Disk, *trace.IOStats) {
	t.Helper()
	stats := &trace.IOStats{}
	return NewDisk(NewMemFS(), sim.Delta(4), stats), stats
}

func TestLAFReadWriteRoundTrip(t *testing.T) {
	d, _ := newTestDisk(t)
	laf, err := d.CreateLAF("p0/a.laf", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	src := make([]float64, 100)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	got, _, err := laf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: got %g want %g", i, got[i], src[i])
		}
	}
}

func TestChunkedReadWrite(t *testing.T) {
	d, stats := newTestDisk(t)
	laf, err := d.CreateLAF("a", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Write a strided pattern: elements 0-3, 16-19, 32-35.
	chunks := []Chunk{{0, 4}, {16, 4}, {32, 4}}
	src := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if _, err := laf.WriteChunks(chunks, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 12)
	if _, err := laf.ReadChunks(chunks, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("element %d: got %g want %g", i, dst[i], src[i])
		}
	}
	// Untouched elements stay zero.
	all, _, err := laf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if all[4] != 0 || all[15] != 0 || all[63] != 0 {
		t.Fatalf("untouched elements modified: %v", all)
	}
	// Accounting: 1 slab write of 3 requests, 2 slab reads (chunked +
	// ReadAll).
	if stats.SlabWrites != 1 || stats.WriteRequests != 3 {
		t.Errorf("write stats: %+v", stats)
	}
	if stats.SlabReads != 2 || stats.ReadRequests != 3+1 {
		t.Errorf("read stats: %+v", stats)
	}
	// Model bytes use ElemSize=4: write moved 12 elements = 48 bytes.
	if stats.BytesWritten != 48 {
		t.Errorf("BytesWritten = %d, want 48", stats.BytesWritten)
	}
}

func TestSievedReadEquivalence(t *testing.T) {
	d, stats := newTestDisk(t)
	laf, err := d.CreateLAF("a", 128)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, 128)
	rng := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	chunks := []Chunk{{8, 4}, {40, 8}, {100, 2}}
	direct := make([]float64, 14)
	sieved := make([]float64, 14)
	if _, err := laf.ReadChunks(chunks, direct); err != nil {
		t.Fatal(err)
	}
	before := *stats
	if _, err := laf.ReadChunksSieved(chunks, sieved); err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != sieved[i] {
			t.Fatalf("sieving changed data at %d: %g vs %g", i, sieved[i], direct[i])
		}
	}
	// Sieving: exactly one request, but the whole span's bytes.
	if got := stats.ReadRequests - before.ReadRequests; got != 1 {
		t.Errorf("sieved read used %d requests, want 1", got)
	}
	span := Span(chunks)
	if got := stats.BytesRead - before.BytesRead; got != int64(span.Len)*4 {
		t.Errorf("sieved read moved %d bytes, want %d", got, span.Len*4)
	}
}

func TestSievedVsChunkedTiming(t *testing.T) {
	// With many small chunks, the request overhead dominates and
	// sieving must be faster despite moving more data.
	d, _ := newTestDisk(t)
	laf, err := d.CreateLAF("a", 10000)
	if err != nil {
		t.Fatal(err)
	}
	var chunks []Chunk
	for off := int64(0); off < 10000; off += 100 {
		chunks = append(chunks, Chunk{off, 10})
	}
	dst := make([]float64, TotalLen(chunks))
	tChunked, err := laf.ReadChunks(chunks, dst)
	if err != nil {
		t.Fatal(err)
	}
	tSieved, err := laf.ReadChunksSieved(chunks, dst)
	if err != nil {
		t.Fatal(err)
	}
	if tSieved >= tChunked {
		t.Errorf("sieving should win on many small chunks: %g vs %g", tSieved, tChunked)
	}
}

func TestTimingMatchesModel(t *testing.T) {
	d, _ := newTestDisk(t)
	cfg := sim.Delta(4)
	laf, err := d.CreateLAF("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 500)
	sec, err := laf.ReadChunks([]Chunk{{0, 250}, {500, 250}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.IOTime(2, 500*int64(cfg.ElemSize))
	if math.Abs(sec-want) > 1e-12 {
		t.Errorf("duration %g, want %g", sec, want)
	}
}

func TestBoundsChecking(t *testing.T) {
	d, _ := newTestDisk(t)
	laf, err := d.CreateLAF("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 20)
	if _, err := laf.ReadChunks([]Chunk{{5, 10}}, buf); err == nil {
		t.Error("read past EOF should fail")
	}
	if _, err := laf.ReadChunks([]Chunk{{-1, 2}}, buf); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := laf.ReadChunks([]Chunk{{0, 10}}, buf[:5]); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := laf.WriteChunks([]Chunk{{8, 5}}, buf); err == nil {
		t.Error("write past EOF should fail")
	}
	if _, err := laf.WriteAll(buf); err == nil {
		t.Error("WriteAll with wrong size should fail")
	}
	if _, err := d.CreateLAF("bad", -5); err == nil {
		t.Error("negative LAF size should fail")
	}
}

func TestOpenAndRemove(t *testing.T) {
	d, _ := newTestDisk(t)
	laf, err := d.CreateLAF("x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laf.WriteAll([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	laf.Close()
	re, err := d.OpenLAF("x", 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != 4 {
		t.Errorf("reopened file lost data: %v", got)
	}
	if err := d.RemoveLAF("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.OpenLAF("x", 4); err == nil {
		t.Error("open after remove should fail")
	}
	if err := d.RemoveLAF("x"); err == nil {
		t.Error("double remove should fail")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisk(fs, sim.Delta(2), nil)
	laf, err := d.CreateLAF("p0/a.laf", 32)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, 32)
	for i := range src {
		src[i] = -float64(i)
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	if err := laf.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := d.OpenLAF("p0/a.laf", 32)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("OSFS element %d: got %g want %g", i, got[i], src[i])
		}
	}
}

func TestNilStatsDisk(t *testing.T) {
	d := NewDisk(NewMemFS(), sim.Delta(1), nil)
	laf, err := d.CreateLAF("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laf.WriteAll(make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := laf.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if d.Stats() != nil {
		t.Error("Stats should be nil")
	}
}

func TestCoalesce(t *testing.T) {
	cases := []struct {
		in, want []Chunk
	}{
		{nil, nil},
		{[]Chunk{{0, 4}}, []Chunk{{0, 4}}},
		{[]Chunk{{0, 4}, {4, 4}}, []Chunk{{0, 8}}},
		{[]Chunk{{4, 4}, {0, 4}}, []Chunk{{0, 8}}},
		{[]Chunk{{0, 4}, {8, 4}}, []Chunk{{0, 4}, {8, 4}}},
		{[]Chunk{{0, 10}, {2, 3}}, []Chunk{{0, 10}}},
		{[]Chunk{{0, 4}, {2, 6}, {10, 1}}, []Chunk{{0, 8}, {10, 1}}},
	}
	for _, c := range cases {
		got := Coalesce(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Coalesce(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Coalesce(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestSpanAndTotalLen(t *testing.T) {
	chunks := []Chunk{{10, 5}, {2, 3}, {30, 1}}
	if s := Span(chunks); s.Off != 2 || s.Len != 29 {
		t.Errorf("Span = %+v", s)
	}
	if n := TotalLen(chunks); n != 9 {
		t.Errorf("TotalLen = %d, want 9", n)
	}
	if s := Span(nil); s.Off != 0 || s.Len != 0 {
		t.Errorf("Span(nil) = %+v", s)
	}
}

func TestChunkRoundTripProperty(t *testing.T) {
	// Property: writing arbitrary data through arbitrary disjoint chunks
	// and reading it back yields the same data, on both filesystems.
	type spec struct {
		Starts []uint8
		Vals   []float64
	}
	check := func(s spec) bool {
		// Build disjoint chunks from the starts: each start s maps to
		// offset base + s%8, length 1..4, spaced apart.
		var chunks []Chunk
		base := int64(0)
		for _, st := range s.Starts {
			off := base + int64(st%8)
			ln := int(st%4) + 1
			chunks = append(chunks, Chunk{off, ln})
			base = off + int64(ln) + 1 // guarantee disjoint
		}
		total := TotalLen(chunks)
		if total == 0 {
			return true
		}
		src := make([]float64, total)
		for i := range src {
			if i < len(s.Vals) && !math.IsNaN(s.Vals[i]) {
				src[i] = s.Vals[i]
			} else {
				src[i] = float64(i)
			}
		}
		d := NewDisk(NewMemFS(), sim.Delta(1), nil)
		laf, err := d.CreateLAF("p", base+16)
		if err != nil {
			return false
		}
		if _, err := laf.WriteChunks(chunks, src); err != nil {
			return false
		}
		dst := make([]float64, total)
		if _, err := laf.ReadChunks(chunks, dst); err != nil {
			return false
		}
		sieved := make([]float64, total)
		if _, err := laf.ReadChunksSieved(chunks, sieved); err != nil {
			return false
		}
		for i := range src {
			if dst[i] != src[i] || sieved[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPhantomModeAccountsButSkipsData(t *testing.T) {
	stats := &trace.IOStats{}
	d := NewDisk(NewMemFS(), sim.Delta(4), stats)
	d.SetPhantom(true)
	if !d.Phantom() {
		t.Fatal("Phantom() should report true")
	}
	laf, err := d.CreateLAF("a", 1<<20) // would be 8 MiB if materialized
	if err != nil {
		t.Fatal(err)
	}
	src := []float64{1, 2, 3, 4}
	if _, err := laf.WriteChunks([]Chunk{{0, 4}}, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	secs, err := laf.ReadChunks([]Chunk{{0, 4}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 {
		t.Error("phantom read should not deliver data")
	}
	if secs <= 0 {
		t.Error("phantom read should still cost simulated time")
	}
	if stats.SlabReads != 1 || stats.SlabWrites != 1 || stats.BytesRead != 16 || stats.BytesWritten != 16 {
		t.Errorf("phantom accounting wrong: %+v", stats)
	}
	// Sieved phantom reads account the span.
	before := stats.BytesRead
	if _, err := laf.ReadChunksSieved([]Chunk{{0, 2}, {10, 2}}, dst); err != nil {
		t.Fatal(err)
	}
	if got := stats.BytesRead - before; got != 48 { // span = 12 elems * 4 B
		t.Errorf("phantom sieved bytes = %d, want 48", got)
	}
}
