package iosim

import (
	"fmt"
	"io"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Disk is one processor's logical disk: a view of the shared I/O subsystem
// holding that processor's local array files. All cost accounting happens
// here; the mapping of the logical disk onto physical disks is the
// machine's business (sim.Config's bandwidth model).
type Disk struct {
	fs      FS
	cfg     sim.Config
	stats   *trace.IOStats
	phantom bool
}

// NewDisk returns a logical disk for one processor. stats may be nil, in
// which case accounting is skipped.
func NewDisk(fs FS, cfg sim.Config, stats *trace.IOStats) *Disk {
	return &Disk{fs: fs, cfg: cfg, stats: stats}
}

// SetPhantom toggles accounting-only mode: operations count slab
// transfers, requests, bytes and simulated time exactly as usual but skip
// the actual movement of file data (buffers are left untouched). It makes
// paper-scale parameter sweeps cheap; correctness is established by
// real-mode runs at smaller scales.
func (d *Disk) SetPhantom(on bool) { d.phantom = on }

// Phantom reports whether accounting-only mode is active.
func (d *Disk) Phantom() bool { return d.phantom }

// Stats returns the statistics sink, which may be nil.
func (d *Disk) Stats() *trace.IOStats { return d.stats }

// LAF is a Local Array File: the on-disk image of one processor's
// out-of-core local array, a flat sequence of float64 elements.
type LAF struct {
	disk *Disk
	file File
	name string
	// elems is the file length in elements.
	elems int64
}

// CreateLAF creates a local array file holding elems zero elements.
func (d *Disk) CreateLAF(name string, elems int64) (*LAF, error) {
	if elems < 0 {
		return nil, fmt.Errorf("iosim: CreateLAF %s: negative size %d", name, elems)
	}
	f, err := d.fs.Create(name)
	if err != nil {
		return nil, err
	}
	if d.phantom {
		return &LAF{disk: d, file: f, name: name, elems: elems}, nil
	}
	if err := f.Truncate(elems * elemBytes); err != nil {
		f.Close()
		return nil, err
	}
	return &LAF{disk: d, file: f, name: name, elems: elems}, nil
}

// OpenLAF opens an existing local array file of the given length.
func (d *Disk) OpenLAF(name string, elems int64) (*LAF, error) {
	f, err := d.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &LAF{disk: d, file: f, name: name, elems: elems}, nil
}

// RemoveLAF deletes a local array file by name.
func (d *Disk) RemoveLAF(name string) error { return d.fs.Remove(name) }

// Name returns the file name.
func (l *LAF) Name() string { return l.name }

// Quiet returns a view of the same file that performs no statistics
// accounting (and whose returned durations should be discarded). It is
// used for initialization and verification I/O, which the paper's
// measurements exclude.
func (l *LAF) Quiet() *LAF {
	quiet := *l.disk
	quiet.stats = nil
	return &LAF{disk: &quiet, file: l.file, name: l.name, elems: l.elems}
}

// Elems returns the file length in elements.
func (l *LAF) Elems() int64 { return l.elems }

// Close releases the underlying file.
func (l *LAF) Close() error { return l.file.Close() }

// checkChunks validates that every chunk lies within the file.
func (l *LAF) checkChunks(chunks []Chunk, buf []float64) error {
	need := TotalLen(chunks)
	if need > len(buf) {
		return fmt.Errorf("iosim: %s: chunks cover %d elements, buffer holds %d", l.name, need, len(buf))
	}
	for _, c := range chunks {
		if c.Off < 0 || c.Len < 0 || c.Off+int64(c.Len) > l.elems {
			return fmt.Errorf("iosim: %s: chunk [%d,+%d) outside file of %d elements", l.name, c.Off, c.Len, l.elems)
		}
	}
	return nil
}

// modelBytes converts an element count into cost-model bytes.
func (l *LAF) modelBytes(elems int) int64 {
	return int64(elems) * int64(l.disk.cfg.ElemSize)
}

// ReadChunks reads the given chunks into dst (packed back to back, in
// chunk order) as one slab fetch. It returns the simulated duration of the
// operation; the caller decides how to apply it to the processor clock
// (immediately, or overlapped by a prefetch pipeline).
func (l *LAF) ReadChunks(chunks []Chunk, dst []float64) (float64, error) {
	if err := l.checkChunks(chunks, dst); err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		if err := l.readRun(c, dst[pos:pos+c.Len]); err != nil {
			return 0, err
		}
		pos += c.Len
	}
	elems := TotalLen(chunks)
	seconds := l.disk.cfg.IOTime(len(chunks), l.modelBytes(elems))
	if s := l.disk.stats; s != nil {
		s.SlabReads++
		s.ReadRequests += int64(len(chunks))
		s.BytesRead += l.modelBytes(elems)
		s.Seconds += seconds
	}
	return seconds, nil
}

// ReadChunksSieved reads the single contiguous span covering all chunks in
// one request (PASSION-style data sieving), then extracts the requested
// chunks into dst. It trades extra data volume for a single request.
func (l *LAF) ReadChunksSieved(chunks []Chunk, dst []float64) (float64, error) {
	if err := l.checkChunks(chunks, dst); err != nil {
		return 0, err
	}
	if len(chunks) == 0 {
		return 0, nil
	}
	span := Span(chunks)
	if span.Off < 0 || span.Off+int64(span.Len) > l.elems {
		return 0, fmt.Errorf("iosim: %s: sieve span [%d,+%d) outside file", l.name, span.Off, span.Len)
	}
	buf := make([]float64, span.Len)
	if err := l.readRun(span, buf); err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		copy(dst[pos:pos+c.Len], buf[c.Off-span.Off:])
		pos += c.Len
	}
	seconds := l.disk.cfg.IOTime(1, l.modelBytes(span.Len))
	if s := l.disk.stats; s != nil {
		s.SlabReads++
		s.ReadRequests++
		s.BytesRead += l.modelBytes(span.Len)
		s.Seconds += seconds
	}
	return seconds, nil
}

// WriteChunksSieved writes the chunks using PASSION-style write data
// sieving: the covering span is read, the chunks are scattered into it,
// and the span is written back — a read-modify-write cycle of exactly two
// requests regardless of how fragmented the chunks are, at the price of
// moving the whole span twice.
func (l *LAF) WriteChunksSieved(chunks []Chunk, src []float64) (float64, error) {
	if err := l.checkChunks(chunks, src); err != nil {
		return 0, err
	}
	if len(chunks) == 0 {
		return 0, nil
	}
	span := Span(chunks)
	buf := make([]float64, span.Len)
	if err := l.readRun(span, buf); err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		copy(buf[c.Off-span.Off:c.Off-span.Off+int64(c.Len)], src[pos:pos+c.Len])
		pos += c.Len
	}
	if err := l.writeRun(span, buf); err != nil {
		return 0, err
	}
	spanBytes := l.modelBytes(span.Len)
	seconds := l.disk.cfg.IOTime(2, 2*spanBytes)
	if s := l.disk.stats; s != nil {
		s.SlabWrites++
		s.ReadRequests++
		s.WriteRequests++
		s.BytesRead += spanBytes
		s.BytesWritten += spanBytes
		s.Seconds += seconds
	}
	return seconds, nil
}

// WriteChunks writes src (packed in chunk order) to the given chunks as
// one slab store and returns the simulated duration.
func (l *LAF) WriteChunks(chunks []Chunk, src []float64) (float64, error) {
	if err := l.checkChunks(chunks, src); err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		if err := l.writeRun(c, src[pos:pos+c.Len]); err != nil {
			return 0, err
		}
		pos += c.Len
	}
	elems := TotalLen(chunks)
	seconds := l.disk.cfg.IOTime(len(chunks), l.modelBytes(elems))
	if s := l.disk.stats; s != nil {
		s.SlabWrites++
		s.WriteRequests += int64(len(chunks))
		s.BytesWritten += l.modelBytes(elems)
		s.Seconds += seconds
	}
	return seconds, nil
}

// ReadAll reads the whole file into a new slice as a single request. It is
// a convenience for verification and redistribution.
func (l *LAF) ReadAll() ([]float64, float64, error) {
	dst := make([]float64, l.elems)
	sec, err := l.ReadChunks([]Chunk{{Off: 0, Len: int(l.elems)}}, dst)
	return dst, sec, err
}

// WriteAll overwrites the whole file from src as a single request.
func (l *LAF) WriteAll(src []float64) (float64, error) {
	if int64(len(src)) != l.elems {
		return 0, fmt.Errorf("iosim: %s: WriteAll with %d elements into file of %d", l.name, len(src), l.elems)
	}
	return l.WriteChunks([]Chunk{{Off: 0, Len: int(l.elems)}}, src)
}

func (l *LAF) readRun(c Chunk, dst []float64) error {
	if l.disk.phantom {
		return nil
	}
	buf := make([]byte, c.Len*elemBytes)
	n, err := l.file.ReadAt(buf, c.Off*elemBytes)
	if err != nil && !(err == io.EOF && n == len(buf)) {
		return fmt.Errorf("iosim: read %s @%d: %w", l.name, c.Off, err)
	}
	if n != len(buf) {
		return fmt.Errorf("iosim: short read on %s @%d: %d of %d bytes", l.name, c.Off, n, len(buf))
	}
	decode(dst, buf)
	return nil
}

func (l *LAF) writeRun(c Chunk, src []float64) error {
	if l.disk.phantom {
		return nil
	}
	buf := make([]byte, c.Len*elemBytes)
	encode(buf, src)
	if _, err := l.file.WriteAt(buf, c.Off*elemBytes); err != nil {
		return fmt.Errorf("iosim: write %s @%d: %w", l.name, c.Off, err)
	}
	return nil
}
