package iosim

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// ParityHook maintains cross-disk redundancy for protected files and
// reconstructs them after permanent faults (implemented by the
// internal/parity package and attached per disk by the executor). The
// disk layer consults it on every file lifecycle event and write, and
// escalates to Recover when an operation fails with a non-transient
// error — a lost disk, an injected permanent fault, or an exhausted
// retry budget.
type ParityHook interface {
	// Created registers a freshly created (zero-filled) file of the
	// given physical byte length.
	Created(name string, bytes int64)
	// Opened registers a pre-existing file of the given physical byte
	// length whose parity state is unknown (e.g. after a restart); the
	// hook marks its group for a parity resync.
	Opened(name string, bytes int64)
	// Removed unregisters a deleted file.
	Removed(name string)
	// Protects reports whether the named file is under parity.
	Protects(name string) bool
	// WriteThrough performs the data write via write() under the parity
	// layer's stripe lock and applies the read-modify-write parity
	// update for the buf bytes written at byteOff. In phantom mode buf
	// is nil: no data moves, but the parity traffic is still accounted.
	// It returns the simulated seconds of the data write plus the
	// parity maintenance.
	WriteThrough(d *Disk, name string, byteOff int64, n int64, buf []byte, write func() (float64, error)) (float64, error)
	// Recover reconstructs the named file from the surviving disks
	// after cause (a non-transient failure), returning the simulated
	// seconds the reconstruction cost. The caller then reopens the
	// replacement file and retries the failed operation once.
	Recover(d *Disk, name string, cause error) (float64, error)
}

// Disk is one processor's logical disk: a view of the shared I/O subsystem
// holding that processor's local array files. All cost accounting happens
// here; the mapping of the logical disk onto physical disks is the
// machine's business (sim.Config's bandwidth model).
type Disk struct {
	fs      FS
	cfg     sim.Config
	stats   *trace.IOStats
	res     *Resilience
	parity  ParityHook
	phantom bool

	// tr, clock and label drive span tracing: every counter bump above
	// also emits a typed span stamped with the simulated time, under the
	// same stats-gating, so spans and counters reconcile exactly.
	tr    *trace.RankTracer
	clock *sim.Clock
	label string
	// deferred marks transfers issued by an overlap pipeline (prefetch,
	// write-behind) whose cost reaches the clock later as io-wait.
	deferred bool
	// opHook, when set, runs at the entry of every chunk operation. The
	// executor wires it to the processor's fail-stop operation counter so
	// injected kills can land between I/O requests, not only between
	// messages. Nil on plain runs: a single branch on the hot path.
	opHook func()
}

// NewDisk returns a logical disk for one processor. stats may be nil, in
// which case accounting is skipped.
func NewDisk(fs FS, cfg sim.Config, stats *trace.IOStats) *Disk {
	return &Disk{fs: fs, cfg: cfg, stats: stats}
}

// NewResilientDisk returns a logical disk whose transfers retry transient
// faults with capped exponential backoff (charged to the simulated clock
// through the returned durations) and verify block checksums on reads.
// res may be nil, which degrades to NewDisk behaviour.
func NewResilientDisk(fs FS, cfg sim.Config, stats *trace.IOStats, res *Resilience) *Disk {
	return &Disk{fs: fs, cfg: cfg, stats: stats, res: res}
}

// SetResilience attaches (or, with nil, detaches) the retry/checksum
// layer.
func (d *Disk) SetResilience(res *Resilience) { d.res = res }

// Resilience returns the attached retry/checksum layer, which may be nil.
func (d *Disk) Resilience() *Resilience { return d.res }

// SetParity attaches (or, with nil, detaches) the redundancy layer.
func (d *Disk) SetParity(h ParityHook) { d.parity = h }

// Parity returns the attached redundancy layer, which may be nil.
func (d *Disk) Parity() ParityHook { return d.parity }

// Config returns the disk's machine model (the parity layer uses it to
// charge its traffic with the same timing rules as everything else).
func (d *Disk) Config() sim.Config { return d.cfg }

// retryMeta runs a metadata operation (create/open/remove/truncate) under
// the retry policy. Metadata retries are counted but not charged to the
// simulated clock: the cost model only times data transfers.
func (d *Disk) retryMeta(op, name string, f func() error) error {
	if d.res == nil {
		return f()
	}
	pol := d.res.Policy
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= pol.MaxRetries {
			if s := d.stats; s != nil {
				s.GiveUps++
				if tr := d.tracer(); tr != nil {
					tr.Emit(trace.Span{Kind: trace.KindGiveUp, Label: d.label, Start: d.clock.Seconds()})
				}
			}
			return &ExhaustedError{Op: op, File: name, Attempts: attempt + 1, Last: err}
		}
		if s := d.stats; s != nil {
			s.Retries++
			if tr := d.tracer(); tr != nil {
				// Metadata retries are uncharged, so the span has no
				// duration — it reconciles with Retries but adds nothing
				// to RetrySeconds.
				tr.Emit(trace.Span{Kind: trace.KindRetry, Label: d.label, Start: d.clock.Seconds()})
			}
		}
	}
}

// SetPhantom toggles accounting-only mode: operations count slab
// transfers, requests, bytes and simulated time exactly as usual but skip
// the actual movement of file data (buffers are left untouched). It makes
// paper-scale parameter sweeps cheap; correctness is established by
// real-mode runs at smaller scales.
func (d *Disk) SetPhantom(on bool) { d.phantom = on }

// SetOpHook installs (or, with nil, removes) the per-chunk-operation
// hook; see the field comment.
func (d *Disk) SetOpHook(h func()) { d.opHook = h }

// stepOp runs the per-operation hook, if any.
func (d *Disk) stepOp() {
	if d.opHook != nil {
		d.opHook()
	}
}

// Phantom reports whether accounting-only mode is active.
func (d *Disk) Phantom() bool { return d.phantom }

// Stats returns the statistics sink, which may be nil.
func (d *Disk) Stats() *trace.IOStats { return d.stats }

// SetTracer attaches the span sink for this disk's operations: spans are
// stamped against clock and labelled with the statistics sink's name
// (the array name in the executor). Either argument nil disables
// tracing.
func (d *Disk) SetTracer(rt *trace.RankTracer, clock *sim.Clock, label string) {
	if rt == nil || clock == nil {
		d.tr, d.clock, d.label = nil, nil, ""
		return
	}
	d.tr, d.clock, d.label = rt, clock, label
}

// SetDeferred marks subsequently emitted transfer spans as overlapped:
// issued now, but charged to the clock later by the caller's pipeline.
func (d *Disk) SetDeferred(on bool) { d.deferred = on }

// tracer gates span emission exactly like the counters are gated: a
// disk without a statistics sink (Quiet views, verification I/O,
// checkpoint snapshots) stays silent in the trace too.
func (d *Disk) tracer() *trace.RankTracer {
	if d.stats == nil {
		return nil
	}
	return d.tr
}

// TraceSink exposes the gated span sink, the current simulated time and
// the sink label to the parity layer, which emits its accounting spans
// through the disk that carries the protected write.
func (d *Disk) TraceSink() (*trace.RankTracer, float64, string) {
	if d.stats == nil || d.tr == nil {
		return nil, 0, ""
	}
	return d.tr, d.clock.Seconds(), d.label
}

// LAF is a Local Array File: the on-disk image of one processor's
// out-of-core local array, a flat sequence of float64 elements.
type LAF struct {
	disk *Disk
	file File
	name string
	// elems is the file length in elements.
	elems int64
}

// CreateLAF creates a local array file holding elems zero elements.
func (d *Disk) CreateLAF(name string, elems int64) (*LAF, error) {
	if elems < 0 {
		return nil, fmt.Errorf("iosim: CreateLAF %s: negative size %d", name, elems)
	}
	laf, err := d.createLAFOnce(name, elems)
	if err != nil && !IsTransient(err) && d.parity != nil && d.parity.Protects(name) {
		// The disk died under the create itself (e.g. a disk loss took the
		// half-created file with it). The file held no data yet, so there
		// is nothing to reconstruct: creating again mounts the replacement
		// disk and starts over.
		laf, err = d.createLAFOnce(name, elems)
	}
	return laf, err
}

func (d *Disk) createLAFOnce(name string, elems int64) (*LAF, error) {
	var f File
	err := d.retryMeta("create", name, func() error {
		var err error
		f, err = d.fs.Create(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	if d.phantom {
		if d.parity != nil {
			d.parity.Created(name, elems*elemBytes)
		}
		return &LAF{disk: d, file: f, name: name, elems: elems}, nil
	}
	if err := d.retryMeta("truncate", name, func() error { return f.Truncate(elems * elemBytes) }); err != nil {
		f.Close()
		return nil, err
	}
	if d.res != nil {
		// The file is all zeros now; seed its checksums so every block
		// verifies from the first read on.
		d.res.seedZero(name, elems*elemBytes)
	}
	if d.parity != nil {
		d.parity.Created(name, elems*elemBytes)
	}
	return &LAF{disk: d, file: f, name: name, elems: elems}, nil
}

// OpenLAF opens an existing local array file of the given length. When the
// file is parity-protected and the open fails permanently (the disk that
// held it is gone), the file is reconstructed from the surviving disks and
// the open is retried once; the reconstruction time is charged to the
// disk's statistics sink.
func (d *Disk) OpenLAF(name string, elems int64) (*LAF, error) {
	var f File
	open := func() error {
		return d.retryMeta("open", name, func() error {
			var err error
			f, err = d.fs.Open(name)
			return err
		})
	}
	err := open()
	if err != nil && !IsTransient(err) && d.parity != nil && d.parity.Protects(name) {
		sec, rerr := d.parity.Recover(d, name, err)
		if s := d.stats; s != nil {
			s.Seconds += sec
			if tr := d.tracer(); tr != nil {
				// Charged to IOStats.Seconds without a clock advance, so
				// the span is off the synchronous timeline (Deferred).
				tr.Emit(trace.Span{Kind: trace.KindOpenRecover, Label: d.label, Start: d.clock.Seconds(), Dur: sec, Deferred: true})
			}
		}
		if rerr != nil {
			return nil, rerr
		}
		err = open()
	}
	if err != nil {
		return nil, err
	}
	if d.parity != nil {
		d.parity.Opened(name, elems*elemBytes)
	}
	return &LAF{disk: d, file: f, name: name, elems: elems}, nil
}

// RemoveLAF deletes a local array file by name.
func (d *Disk) RemoveLAF(name string) error {
	err := d.retryMeta("remove", name, func() error { return d.fs.Remove(name) })
	if err == nil {
		if d.res != nil {
			d.res.dropFile(name)
		}
		if d.parity != nil {
			d.parity.Removed(name)
		}
	}
	return err
}

// Name returns the file name.
func (l *LAF) Name() string { return l.name }

// Disk returns the logical disk the file lives on. The collective I/O
// layer uses it to create scratch files that share the array's cost
// accounting.
func (l *LAF) Disk() *Disk { return l.disk }

// Quiet returns a view of the same file that performs no statistics
// accounting (and whose returned durations should be discarded). It is
// used for initialization and verification I/O, which the paper's
// measurements exclude.
func (l *LAF) Quiet() *LAF {
	quiet := *l.disk
	quiet.stats = nil
	return &LAF{disk: &quiet, file: l.file, name: l.name, elems: l.elems}
}

// Elems returns the file length in elements.
func (l *LAF) Elems() int64 { return l.elems }

// Close releases the underlying file.
func (l *LAF) Close() error { return l.file.Close() }

// checkChunks validates that every chunk lies within the file.
func (l *LAF) checkChunks(chunks []Chunk, buf []float64) error {
	need := TotalLen(chunks)
	if need > len(buf) {
		return fmt.Errorf("iosim: %s: chunks cover %d elements, buffer holds %d", l.name, need, len(buf))
	}
	for _, c := range chunks {
		if c.Off < 0 || c.Len < 0 || c.Off+int64(c.Len) > l.elems {
			return fmt.Errorf("iosim: %s: chunk [%d,+%d) outside file of %d elements", l.name, c.Off, c.Len, l.elems)
		}
	}
	return nil
}

// modelBytes converts an element count into cost-model bytes.
func (l *LAF) modelBytes(elems int) int64 {
	return int64(elems) * int64(l.disk.cfg.ElemSize)
}

// ReadChunks reads the given chunks into dst (packed back to back, in
// chunk order) as one slab fetch. It returns the simulated duration of the
// operation; the caller decides how to apply it to the processor clock
// (immediately, or overlapped by a prefetch pipeline).
func (l *LAF) ReadChunks(chunks []Chunk, dst []float64) (float64, error) {
	l.disk.stepOp()
	if err := l.checkChunks(chunks, dst); err != nil {
		return 0, err
	}
	pos := 0
	var retrySec float64
	for _, c := range chunks {
		sec, err := l.readRun(c, dst[pos:pos+c.Len])
		retrySec += sec
		if err != nil {
			return 0, err
		}
		pos += c.Len
	}
	elems := TotalLen(chunks)
	seconds := l.disk.cfg.IOTime(len(chunks), l.modelBytes(elems)) + retrySec
	if s := l.disk.stats; s != nil {
		s.SlabReads++
		s.ReadRequests += int64(len(chunks))
		s.BytesRead += l.modelBytes(elems)
		s.Seconds += seconds
		for _, c := range chunks {
			s.ReadSizes.Observe(l.modelBytes(c.Len))
		}
		if tr := l.disk.tracer(); tr != nil {
			now := l.disk.clock.Seconds()
			for _, c := range chunks {
				tr.Emit(trace.Span{Kind: trace.KindReadReq, Label: l.disk.label, Start: now, Bytes: l.modelBytes(c.Len)})
			}
			tr.Emit(trace.Span{Kind: trace.KindSlabRead, Label: l.disk.label, Start: now, Dur: seconds,
				Deferred: l.disk.deferred, N: int64(len(chunks)), Bytes: l.modelBytes(elems)})
		}
	}
	return seconds, nil
}

// ReadChunksSieved reads the single contiguous span covering all chunks in
// one request (PASSION-style data sieving), then extracts the requested
// chunks into dst. It trades extra data volume for a single request.
func (l *LAF) ReadChunksSieved(chunks []Chunk, dst []float64) (float64, error) {
	l.disk.stepOp()
	if err := l.checkChunks(chunks, dst); err != nil {
		return 0, err
	}
	if len(chunks) == 0 {
		return 0, nil
	}
	span := Span(chunks)
	if span.Off < 0 || span.Off+int64(span.Len) > l.elems {
		return 0, fmt.Errorf("iosim: %s: sieve span [%d,+%d) outside file", l.name, span.Off, span.Len)
	}
	buf := bufpool.GetF64(span.Len)
	defer bufpool.PutF64(buf)
	if l.disk.phantom {
		// The pooled buffer carries stale contents; phantom mode relied on
		// make's zeroing for the untouched span.
		clear(buf)
	}
	retrySec, err := l.readRun(span, buf)
	if err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		copy(dst[pos:pos+c.Len], buf[c.Off-span.Off:])
		pos += c.Len
	}
	seconds := l.disk.cfg.IOTime(1, l.modelBytes(span.Len)) + retrySec
	if s := l.disk.stats; s != nil {
		s.SlabReads++
		s.ReadRequests++
		s.BytesRead += l.modelBytes(span.Len)
		s.Seconds += seconds
		s.ReadSizes.Observe(l.modelBytes(span.Len))
		if tr := l.disk.tracer(); tr != nil {
			now := l.disk.clock.Seconds()
			tr.Emit(trace.Span{Kind: trace.KindReadReq, Label: l.disk.label, Start: now, Bytes: l.modelBytes(span.Len)})
			tr.Emit(trace.Span{Kind: trace.KindSlabRead, Label: l.disk.label, Start: now, Dur: seconds,
				Deferred: l.disk.deferred, N: 1, Bytes: l.modelBytes(span.Len)})
		}
	}
	return seconds, nil
}

// WriteChunksSieved writes the chunks using PASSION-style write data
// sieving: the covering span is read, the chunks are scattered into it,
// and the span is written back — a read-modify-write cycle of exactly two
// requests regardless of how fragmented the chunks are, at the price of
// moving the whole span twice.
func (l *LAF) WriteChunksSieved(chunks []Chunk, src []float64) (float64, error) {
	l.disk.stepOp()
	if err := l.checkChunks(chunks, src); err != nil {
		return 0, err
	}
	if len(chunks) == 0 {
		return 0, nil
	}
	span := Span(chunks)
	buf := bufpool.GetF64(span.Len)
	defer bufpool.PutF64(buf)
	if l.disk.phantom {
		clear(buf)
	}
	retrySec, err := l.readRun(span, buf)
	if err != nil {
		return 0, err
	}
	pos := 0
	for _, c := range chunks {
		copy(buf[c.Off-span.Off:c.Off-span.Off+int64(c.Len)], src[pos:pos+c.Len])
		pos += c.Len
	}
	wSec, err := l.writeRun(span, buf)
	retrySec += wSec
	if err != nil {
		return 0, err
	}
	spanBytes := l.modelBytes(span.Len)
	seconds := l.disk.cfg.IOTime(2, 2*spanBytes) + retrySec
	if s := l.disk.stats; s != nil {
		s.SlabWrites++
		s.ReadRequests++
		s.WriteRequests++
		s.BytesRead += spanBytes
		s.BytesWritten += spanBytes
		s.Seconds += seconds
		s.ReadSizes.Observe(spanBytes)
		s.WriteSizes.Observe(spanBytes)
		if tr := l.disk.tracer(); tr != nil {
			now := l.disk.clock.Seconds()
			tr.Emit(trace.Span{Kind: trace.KindReadReq, Label: l.disk.label, Start: now, Bytes: spanBytes})
			tr.Emit(trace.Span{Kind: trace.KindWriteReq, Label: l.disk.label, Start: now, Bytes: spanBytes})
			tr.Emit(trace.Span{Kind: trace.KindSlabWrite, Label: l.disk.label, Start: now, Dur: seconds,
				Deferred: l.disk.deferred, N: 2, Bytes: 2 * spanBytes})
		}
	}
	return seconds, nil
}

// WriteChunks writes src (packed in chunk order) to the given chunks as
// one slab store and returns the simulated duration.
func (l *LAF) WriteChunks(chunks []Chunk, src []float64) (float64, error) {
	l.disk.stepOp()
	if err := l.checkChunks(chunks, src); err != nil {
		return 0, err
	}
	pos := 0
	var retrySec float64
	for _, c := range chunks {
		sec, err := l.writeRun(c, src[pos:pos+c.Len])
		retrySec += sec
		if err != nil {
			return 0, err
		}
		pos += c.Len
	}
	elems := TotalLen(chunks)
	seconds := l.disk.cfg.IOTime(len(chunks), l.modelBytes(elems)) + retrySec
	if s := l.disk.stats; s != nil {
		s.SlabWrites++
		s.WriteRequests += int64(len(chunks))
		s.BytesWritten += l.modelBytes(elems)
		s.Seconds += seconds
		for _, c := range chunks {
			s.WriteSizes.Observe(l.modelBytes(c.Len))
		}
		if tr := l.disk.tracer(); tr != nil {
			now := l.disk.clock.Seconds()
			for _, c := range chunks {
				tr.Emit(trace.Span{Kind: trace.KindWriteReq, Label: l.disk.label, Start: now, Bytes: l.modelBytes(c.Len)})
			}
			tr.Emit(trace.Span{Kind: trace.KindSlabWrite, Label: l.disk.label, Start: now, Dur: seconds,
				Deferred: l.disk.deferred, N: int64(len(chunks)), Bytes: l.modelBytes(elems)})
		}
	}
	return seconds, nil
}

// ReadAll reads the whole file into a new slice as a single request. It is
// a convenience for verification and redistribution.
func (l *LAF) ReadAll() ([]float64, float64, error) {
	dst := make([]float64, l.elems)
	sec, err := l.ReadChunks([]Chunk{{Off: 0, Len: int(l.elems)}}, dst)
	return dst, sec, err
}

// WriteAll overwrites the whole file from src as a single request.
func (l *LAF) WriteAll(src []float64) (float64, error) {
	if int64(len(src)) != l.elems {
		return 0, fmt.Errorf("iosim: %s: WriteAll with %d elements into file of %d", l.name, len(src), l.elems)
	}
	return l.WriteChunks([]Chunk{{Off: 0, Len: int(l.elems)}}, src)
}

// readRun fetches one contiguous run. It returns the simulated seconds
// spent in retry backoff and recovery (zero on the plain path); the caller
// folds them into the operation's duration so the clock is charged for
// recovery. When the run fails non-transiently on a parity-protected file
// (lost disk, permanent fault, exhausted retries), the file is
// reconstructed from the surviving disks and the run retried once.
func (l *LAF) readRun(c Chunk, dst []float64) (float64, error) {
	sec, err := l.readRunOnce(c, dst)
	if err == nil || IsTransient(err) || !l.protected() {
		return sec, err
	}
	rsec, rerr := l.escalate(err)
	sec += rsec
	if rerr != nil {
		return sec, rerr
	}
	sec2, err := l.readRunOnce(c, dst)
	return sec + sec2, err
}

// readRunOnce is one attempt at a contiguous run, without escalation.
func (l *LAF) readRunOnce(c Chunk, dst []float64) (float64, error) {
	if l.disk.phantom || c.Len == 0 {
		return 0, nil
	}
	if l.disk.res == nil {
		buf := bufpool.GetBytes(c.Len * elemBytes)
		err := l.rawRead(buf, c.Off*elemBytes, func() { decode(dst, buf) })
		bufpool.PutBytes(buf)
		return 0, err
	}
	return l.readRunResilient(c, dst)
}

// protected reports whether this file is under the parity layer.
func (l *LAF) protected() bool {
	return l.disk.parity != nil && l.disk.parity.Protects(l.name)
}

// escalate reconstructs the file from the surviving disks after cause (a
// non-transient failure) and swaps in a handle to the replacement file.
// The returned seconds cover the reconstruction traffic; the caller folds
// them into the failed operation's duration.
func (l *LAF) escalate(cause error) (float64, error) {
	d := l.disk
	sec, err := d.parity.Recover(d, l.name, cause)
	if err != nil {
		return sec, err
	}
	f, err := d.fs.Open(l.name)
	if err != nil {
		return sec, fmt.Errorf("iosim: reopen %s after reconstruction: %w", l.name, err)
	}
	// The old handle points at the lost disk's orphaned image; drop it
	// without closing (Quiet views may still share it harmlessly — every
	// subsequent transfer goes through the swapped handle).
	l.file = f
	return sec, nil
}

// rawRead reads exactly len(buf) bytes at off and runs done on success.
func (l *LAF) rawRead(buf []byte, off int64, done func()) error {
	n, err := l.file.ReadAt(buf, off)
	if err != nil && !(err == io.EOF && n == len(buf)) {
		return fmt.Errorf("iosim: read %s @%d: %w", l.name, off/elemBytes, err)
	}
	if n != len(buf) {
		return fmt.Errorf("iosim: short read on %s @%d: %d of %d bytes", l.name, off/elemBytes, n, len(buf))
	}
	if done != nil {
		done()
	}
	return nil
}

// readRunResilient widens the run to checksum-block boundaries, reads it,
// verifies every touched block against the stored CRC32s, and retries
// transient failures and detected corruption with capped exponential
// backoff. The backoff is returned in simulated seconds.
func (l *LAF) readRunResilient(c Chunk, dst []float64) (float64, error) {
	res := l.disk.res
	pol := res.Policy
	byteOff := c.Off * elemBytes
	byteLen := int64(c.Len) * elemBytes
	lo := byteOff / ChecksumBlockBytes * ChecksumBlockBytes
	hi := (byteOff + byteLen + ChecksumBlockBytes - 1) / ChecksumBlockBytes * ChecksumBlockBytes
	if max := l.elems * elemBytes; hi > max {
		hi = max
	}
	buf := bufpool.GetBytes(int(hi - lo))
	defer bufpool.PutBytes(buf)
	var retrySec float64
	for attempt := 0; ; attempt++ {
		err := l.rawRead(buf, lo, nil)
		if err == nil {
			block, ok := res.verifyBlocks(l.name, lo, buf)
			if ok {
				decode(dst, buf[byteOff-lo:byteOff-lo+byteLen])
				return retrySec, nil
			}
			err = &CorruptionError{File: l.name, Block: block}
			if s := l.disk.stats; s != nil {
				s.Corruptions++
				if tr := l.disk.tracer(); tr != nil {
					tr.Emit(trace.Span{Kind: trace.KindCorruption, Label: l.disk.label, Start: l.disk.clock.Seconds()})
				}
			}
		}
		if !IsTransient(err) {
			if tr := l.disk.tracer(); tr != nil {
				tr.Emit(trace.Span{Kind: trace.KindFault, Label: l.disk.label, Start: l.disk.clock.Seconds()})
			}
			return retrySec, err
		}
		if attempt >= pol.MaxRetries {
			if s := l.disk.stats; s != nil {
				s.GiveUps++
				if tr := l.disk.tracer(); tr != nil {
					tr.Emit(trace.Span{Kind: trace.KindGiveUp, Label: l.disk.label, Start: l.disk.clock.Seconds()})
				}
			}
			return retrySec, &ExhaustedError{Op: "read", File: l.name, Attempts: attempt + 1, Last: err}
		}
		wait := pol.backoff(attempt)
		retrySec += wait
		if s := l.disk.stats; s != nil {
			s.Retries++
			s.RetrySeconds += wait
			if tr := l.disk.tracer(); tr != nil {
				tr.Emit(trace.Span{Kind: trace.KindRetry, Label: l.disk.label, Start: l.disk.clock.Seconds(), Dur: wait})
			}
		}
	}
}

// writeRun stores one contiguous run, returning simulated retry backoff
// (plus parity-maintenance and recovery time) like readRun. Writes to
// parity-protected files are routed through the parity layer's
// WriteThrough so the parity update happens atomically with the data
// write; a non-transient failure triggers reconstruction and one retry of
// the whole protected write.
func (l *LAF) writeRun(c Chunk, src []float64) (float64, error) {
	if c.Len == 0 {
		return 0, nil
	}
	d := l.disk
	byteOff := c.Off * elemBytes
	byteLen := int64(c.Len) * elemBytes
	if l.protected() {
		// In phantom mode buf stays nil: WriteThrough accounts the
		// parity traffic without moving data and never calls write.
		var buf []byte
		if !d.phantom {
			buf = bufpool.GetBytes(int(byteLen))
			defer bufpool.PutBytes(buf)
			encode(buf, src)
		}
		write := func() (float64, error) { return l.writeRunOnce(buf, byteOff) }
		sec, err := d.parity.WriteThrough(d, l.name, byteOff, byteLen, buf, write)
		if err == nil || IsTransient(err) {
			return sec, err
		}
		rsec, rerr := l.escalate(err)
		sec += rsec
		if rerr != nil {
			return sec, rerr
		}
		sec2, err := d.parity.WriteThrough(d, l.name, byteOff, byteLen, buf, write)
		return sec + sec2, err
	}
	if d.phantom {
		return 0, nil
	}
	buf := bufpool.GetBytes(int(byteLen))
	encode(buf, src)
	sec, err := l.writeRunOnce(buf, byteOff)
	bufpool.PutBytes(buf)
	return sec, err
}

// writeRunOnce is one attempt at storing encoded bytes, without parity or
// escalation.
func (l *LAF) writeRunOnce(buf []byte, byteOff int64) (float64, error) {
	if l.disk.res == nil {
		if _, err := l.file.WriteAt(buf, byteOff); err != nil {
			return 0, fmt.Errorf("iosim: write %s @%d: %w", l.name, byteOff/elemBytes, err)
		}
		return 0, nil
	}
	return l.writeRunResilient(buf, byteOff)
}

// writeRunResilient writes the encoded run with retries and refreshes the
// checksum store for every touched block.
func (l *LAF) writeRunResilient(buf []byte, byteOff int64) (float64, error) {
	pol := l.disk.res.Policy
	var retrySec float64
	for attempt := 0; ; attempt++ {
		err := l.rawWrite(buf, byteOff)
		if err == nil {
			l.updateChecksums(byteOff, buf)
			return retrySec, nil
		}
		if !IsTransient(err) {
			if tr := l.disk.tracer(); tr != nil {
				tr.Emit(trace.Span{Kind: trace.KindFault, Label: l.disk.label, Start: l.disk.clock.Seconds()})
			}
			return retrySec, err
		}
		if attempt >= pol.MaxRetries {
			if s := l.disk.stats; s != nil {
				s.GiveUps++
				if tr := l.disk.tracer(); tr != nil {
					tr.Emit(trace.Span{Kind: trace.KindGiveUp, Label: l.disk.label, Start: l.disk.clock.Seconds()})
				}
			}
			return retrySec, &ExhaustedError{Op: "write", File: l.name, Attempts: attempt + 1, Last: err}
		}
		wait := pol.backoff(attempt)
		retrySec += wait
		if s := l.disk.stats; s != nil {
			s.Retries++
			s.RetrySeconds += wait
			if tr := l.disk.tracer(); tr != nil {
				tr.Emit(trace.Span{Kind: trace.KindRetry, Label: l.disk.label, Start: l.disk.clock.Seconds(), Dur: wait})
			}
		}
	}
}

// rawWrite writes exactly len(buf) bytes at off.
func (l *LAF) rawWrite(buf []byte, off int64) error {
	n, err := l.file.WriteAt(buf, off)
	if err != nil {
		return fmt.Errorf("iosim: write %s @%d: %w", l.name, off/elemBytes, err)
	}
	if n != len(buf) {
		return fmt.Errorf("iosim: short write on %s @%d: %d of %d bytes", l.name, off/elemBytes, n, len(buf))
	}
	return nil
}

// updateChecksums refreshes the stored CRC32 of every block touched by a
// successful write of buf at byteOff. Interior blocks hash the written
// bytes directly; partially covered edge blocks are read back and
// double-read for stability, so a corrupted read-back cannot poison the
// store — at worst the block's checksum is dropped and that block goes
// unverified until its next full write.
func (l *LAF) updateChecksums(byteOff int64, buf []byte) {
	res := l.disk.res
	fileBytes := l.elems * elemBytes
	end := byteOff + int64(len(buf))
	first := byteOff / ChecksumBlockBytes
	last := (end - 1) / ChecksumBlockBytes
	for b := first; b <= last; b++ {
		bLo := b * ChecksumBlockBytes
		bHi := bLo + ChecksumBlockBytes
		if bHi > fileBytes {
			bHi = fileBytes
		}
		if bLo >= byteOff && bHi <= end {
			res.set(l.name, b, crc32.ChecksumIEEE(buf[bLo-byteOff:bHi-byteOff]))
			continue
		}
		crc, ok := l.stableEdgeCRC(bLo, bHi, byteOff, buf)
		if !ok {
			res.del(l.name, b)
			continue
		}
		res.set(l.name, b, crc)
	}
}

// stableEdgeCRC computes the checksum of a partially written block: the
// file bytes [bLo, bHi) with the freshly written range [wOff,
// wOff+len(wBuf)) taken from memory. The block is read twice and accepted
// only when the reads agree outside the written range (the written bytes
// come from memory, so their read-back stability is irrelevant) —
// defending the checksum store against transient read-path corruption.
// The CRC is built incrementally over stable head, written middle and
// stable tail, so no overlay copy is materialized; the two read-back
// buffers come from the arena.
func (l *LAF) stableEdgeCRC(bLo, bHi, wOff int64, wBuf []byte) (uint32, bool) {
	oLo, oHi := wOff, wOff+int64(len(wBuf))
	if oLo < bLo {
		oLo = bLo
	}
	if oHi > bHi {
		oHi = bHi
	}
	head, tail := oLo-bLo, oHi-bLo
	attempts := l.disk.res.Policy.MaxRetries + 1
	if attempts < 2 {
		attempts = 2
	}
	a := bufpool.GetBytes(int(bHi - bLo))
	b := bufpool.GetBytes(int(bHi - bLo))
	defer bufpool.PutBytes(a)
	defer bufpool.PutBytes(b)
	for i := 0; i < attempts; i++ {
		if l.rawRead(a, bLo, nil) != nil || l.rawRead(b, bLo, nil) != nil {
			continue
		}
		if !bytes.Equal(a[:head], b[:head]) || !bytes.Equal(a[tail:], b[tail:]) {
			continue
		}
		crc := crc32.Update(0, crc32.IEEETable, a[:head])
		crc = crc32.Update(crc, crc32.IEEETable, wBuf[oLo-wOff:oHi-wOff])
		crc = crc32.Update(crc, crc32.IEEETable, a[tail:])
		return crc, true
	}
	return 0, false
}
