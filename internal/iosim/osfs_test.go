package iosim

import (
	"bytes"
	"testing"
)

func TestOSFSOpenMissingFileFails(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("does-not-exist.laf"); err == nil {
		t.Fatal("opening a missing file must fail")
	}
}

func TestOSFSRemoveMissingFileFails(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("does-not-exist.laf"); err == nil {
		t.Fatal("removing a missing file must fail")
	}
}

func TestOSFSReopenAfterCloseSeesData(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("x.laf")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("persistent payload")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("x.laf")
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	defer g.Close()
	buf := make([]byte, len(payload))
	if n, err := g.ReadAt(buf, 0); err != nil || n != len(buf) {
		t.Fatalf("read after reopen: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q, want %q", buf, payload)
	}
}

func TestOSFSRemoveThenOpenFails(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("x.laf")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Remove("x.laf"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("x.laf"); err == nil {
		t.Fatal("opening a removed file must fail")
	}
}
