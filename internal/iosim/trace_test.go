package iosim

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// replaySink replays one rank's spans and returns the reconstructed
// statistics for the given sink label.
func replaySink(t *testing.T, tr *trace.Tracer, label string) trace.IOStats {
	t.Helper()
	rep := trace.ReplayRank(tr.RankSpans(0))
	io := rep.IO[label]
	if io == nil {
		t.Fatalf("no spans replayed for sink %q", label)
	}
	return *io
}

// TestChaosRetrySpansReconcile injects transient faults under a
// traced resilient disk and checks the emitted retry spans replay to the
// exact Retries/RetrySeconds/Corruptions the counters accumulated.
func TestChaosRetrySpansReconcile(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{
		Seed:       7,
		PTransient: 0.2,
		PCorrupt:   0.05,
	})
	stats := &trace.IOStats{}
	res := NewResilience(DefaultRetryPolicy())
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	tr := trace.NewTracer(1)
	var clock sim.Clock
	d.SetTracer(tr.Rank(0), &clock, "x")

	laf, err := d.CreateLAF("x.laf", 512)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	src := make([]float64, 512)
	for i := range src {
		src[i] = float64(i)
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 20; pass++ {
		if _, _, err := laf.ReadAll(); err != nil {
			t.Fatal(err)
		}
	}
	if stats.Retries == 0 {
		t.Fatal("chaos injected no transient faults; raise the probabilities")
	}
	got := replaySink(t, tr, "x")
	if got != *stats {
		t.Errorf("spans replay to\n%+v\nbut counters say\n%+v", got, *stats)
	}
}

// TestChaosGiveUpSpansReconcile exhausts the retry budget and checks
// the give-up instants replay to the GiveUps counter exactly.
func TestChaosGiveUpSpansReconcile(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{PTransient: 1})
	stats := &trace.IOStats{}
	res := NewResilience(RetryPolicy{MaxRetries: 2, BaseBackoff: 1e-3, MaxBackoff: 4e-3})
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	tr := trace.NewTracer(1)
	var clock sim.Clock
	d.SetTracer(tr.Rank(0), &clock, "x")

	if _, err := d.CreateLAF("x.laf", 8); err == nil {
		t.Fatal("create with 100% transient faults must fail")
	}
	if stats.GiveUps == 0 {
		t.Fatalf("give-up not counted: %+v", stats)
	}
	got := replaySink(t, tr, "x")
	if got != *stats {
		t.Errorf("spans replay to\n%+v\nbut counters say\n%+v", got, *stats)
	}
}

// TestQuietDiskEmitsNoSpans pins the emission gating: a disk view with
// nil statistics (Quiet) must stay silent on the tracer too, mirroring
// the counters it does not bump.
func TestQuietDiskEmitsNoSpans(t *testing.T) {
	mem := NewMemFS()
	stats := &trace.IOStats{}
	d := NewDisk(mem, testConfig(), stats)
	tr := trace.NewTracer(1)
	var clock sim.Clock
	d.SetTracer(tr.Rank(0), &clock, "x")

	laf, err := d.CreateLAF("x.laf", 16)
	if err != nil {
		t.Fatal(err)
	}
	quiet := laf.Quiet()
	if _, err := quiet.WriteAll(make([]float64, 16)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := quiet.ReadAll(); err != nil {
		t.Fatal(err)
	}
	laf.Close()
	*stats = trace.IOStats{} // ignore the accounted CreateLAF itself
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("quiet disk emitted %d spans", n)
	}
	if stats.ReadRequests != 0 || stats.WriteRequests != 0 {
		t.Errorf("quiet disk bumped counters: %+v", stats)
	}
}
