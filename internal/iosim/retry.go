package iosim

import (
	"hash/crc32"
	"sync"
)

// RetryPolicy bounds the retry loop of the resilient I/O layer. Backoff
// is exponential with a cap, and is charged to the *simulated* clock: a
// retried slab transfer takes longer in simulated seconds exactly as it
// would on a real machine.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseBackoff is the simulated wait before the first retry, in
	// seconds; it doubles on every subsequent retry.
	BaseBackoff float64
	// MaxBackoff caps the exponential growth.
	MaxBackoff float64
}

// DefaultRetryPolicy returns the policy used by the CLI tools: five
// retries starting at 1ms of simulated backoff, capped at 16ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 5, BaseBackoff: 1e-3, MaxBackoff: 16e-3}
}

// backoff returns the simulated wait before retry `attempt` (0-based):
// BaseBackoff doubled attempt times, capped at MaxBackoff. A MaxBackoff
// of zero (or less) means uncapped exponential growth.
// Backoff returns the simulated backoff, in seconds, charged before
// re-attempt number attempt+1. It is exported for the parity layer, which
// runs its own retry loops under the same policy.
func (p RetryPolicy) Backoff(attempt int) float64 { return p.backoff(attempt) }

func (p RetryPolicy) backoff(attempt int) float64 {
	b := p.BaseBackoff
	for i := 0; i < attempt && (p.MaxBackoff <= 0 || b < p.MaxBackoff); i++ {
		b *= 2
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// ChecksumBlockBytes is the granularity of integrity tracking: every
// aligned block of file bytes carries one CRC32 (IEEE). Reads through a
// resilient disk are physically widened to block boundaries so that every
// touched block can be verified; the *accounted* request and byte counts
// are unchanged (they describe the logical access, as everywhere else in
// this package).
const ChecksumBlockBytes = 1024

// zeroBlockCRCs[n] is the CRC32 (IEEE) of n zero bytes, for every prefix
// of a checksum block. Computed once at init so seeding a fresh file
// neither allocates a zero buffer nor re-hashes it per create.
var zeroBlockCRCs = func() (t [ChecksumBlockBytes + 1]uint32) {
	var z [1]byte
	for n := 1; n <= ChecksumBlockBytes; n++ {
		t[n] = crc32.Update(t[n-1], crc32.IEEETable, z[:])
	}
	return
}()

// Resilience is the shared state of the resilient I/O layer: the retry
// policy and the per-file block checksum store. One Resilience is shared
// by all processors of an execution (per-file entries are disjoint under
// the LAF ownership model) and survives across Run/Resume calls on the
// same file system, so restarted executions keep verifying data written
// before the crash.
type Resilience struct {
	// Policy bounds retries and backoff.
	Policy RetryPolicy

	mu    sync.Mutex
	files map[string]map[int64]uint32
}

// NewResilience returns a resilience context with the given policy and an
// empty checksum store.
func NewResilience(policy RetryPolicy) *Resilience {
	return &Resilience{Policy: policy, files: make(map[string]map[int64]uint32)}
}

// set records the checksum of one block.
func (r *Resilience) set(name string, block int64, crc uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.files[name]
	if !ok {
		f = make(map[int64]uint32)
		r.files[name] = f
	}
	f[block] = crc
}

// get looks up the checksum of one block.
func (r *Resilience) get(name string, block int64) (uint32, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	crc, ok := r.files[name][block]
	return crc, ok
}

// del forgets one block (its content is no longer known with certainty).
func (r *Resilience) del(name string, block int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.files[name], block)
}

// dropFile forgets every checksum of the named file.
func (r *Resilience) dropFile(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.files, name)
}

// seedZero records the checksums of a freshly created, zero-filled file
// of the given byte length, so even never-written blocks verify.
func (r *Resilience) seedZero(name string, bytes int64) {
	r.dropFile(name)
	if bytes <= 0 {
		return
	}
	full := zeroBlockCRCs[ChecksumBlockBytes]
	blocks := (bytes + ChecksumBlockBytes - 1) / ChecksumBlockBytes
	r.mu.Lock()
	defer r.mu.Unlock()
	f := make(map[int64]uint32, blocks)
	for b := int64(0); b < blocks; b++ {
		lo := b * ChecksumBlockBytes
		hi := lo + ChecksumBlockBytes
		if hi > bytes {
			f[b] = zeroBlockCRCs[bytes-lo]
		} else {
			f[b] = full
		}
	}
	r.files[name] = f
}

// Record replaces the stored checksums for the blocks fully or partially
// covered by buf (the file bytes at [off, off+len(buf)), with off
// block-aligned and buf ending either on a block boundary or at end of
// file). The parity layer uses it to reseed integrity state after
// reconstructing a file from surviving disks.
func (r *Resilience) Record(name string, off int64, buf []byte) {
	for pos := 0; pos < len(buf); pos += ChecksumBlockBytes {
		end := pos + ChecksumBlockBytes
		if end > len(buf) {
			end = len(buf)
		}
		block := (off + int64(pos)) / ChecksumBlockBytes
		r.set(name, block, crc32.ChecksumIEEE(buf[pos:end]))
	}
}

// Check verifies buf against the stored checksums like the resilient read
// path does, returning the first mismatching block and ok == false on a
// mismatch. Blocks without a stored checksum are skipped.
func (r *Resilience) Check(name string, off int64, buf []byte) (int64, bool) {
	return r.verifyBlocks(name, off, buf)
}

// Forget drops all stored checksums of the named file.
func (r *Resilience) Forget(name string) { r.dropFile(name) }

// verifyBlocks checks buf (the file bytes at [off, off+len(buf)), with
// off block-aligned) against the stored checksums. Blocks with no stored
// checksum are skipped. It returns the first mismatching block index and
// ok == false on a mismatch.
func (r *Resilience) verifyBlocks(name string, off int64, buf []byte) (int64, bool) {
	for pos := 0; pos < len(buf); pos += ChecksumBlockBytes {
		end := pos + ChecksumBlockBytes
		if end > len(buf) {
			end = len(buf)
		}
		block := (off + int64(pos)) / ChecksumBlockBytes
		want, ok := r.get(name, block)
		if !ok {
			continue
		}
		if crc32.ChecksumIEEE(buf[pos:end]) != want {
			return block, false
		}
	}
	return 0, true
}
