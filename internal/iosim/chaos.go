package iosim

import (
	"fmt"
	"sync"
)

// FaultKind enumerates the fault classes ChaosFS can inject.
type FaultKind int

// Fault classes.
const (
	// KindTransient fails the operation with a retryable error.
	KindTransient FaultKind = iota
	// KindPermanent fails the operation with a non-retryable error
	// (wrapping ErrInjected).
	KindPermanent
	// KindCorrupt flips one bit in the data returned by a read.
	KindCorrupt
	// KindShortRead delivers only part of the requested bytes, with a
	// transient error.
	KindShortRead
	// KindShortWrite tears the write: only a prefix reaches the file,
	// and a transient error is returned.
	KindShortWrite
	// KindDiskLoss drops the entire logical disk holding the file: every
	// file whose name carries the same .p<d>. rank marker is removed from
	// the backing store, and all further operations on them fail
	// permanently (ErrDiskLost) until a replacement file is created.
	KindDiskLoss
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindCorrupt:
		return "corrupt"
	case KindShortRead:
		return "short-read"
	case KindShortWrite:
		return "short-write"
	case KindDiskLoss:
		return "disk-loss"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ScheduledFault forces a fault at an exact operation index, for
// reproducing a specific failure (e.g. killing a run mid-execution).
type ScheduledFault struct {
	// File selects the file by exact name; empty matches every file.
	File string
	// Op is the 0-based per-file operation index at which to inject.
	// Indices are per file (not global) so the schedule is deterministic
	// under the concurrent SPMD execution: each processor owns its files,
	// so each file sees a deterministic operation sequence.
	Op int64
	// Kind is the fault class to inject.
	Kind FaultKind
}

// ChaosConfig parameterizes the fault model. All probabilities are per
// file operation and independent; zero disables that class.
type ChaosConfig struct {
	// Seed makes the injection deterministic: the decision for operation
	// k on file f is a pure function of (Seed, f, k).
	Seed int64
	// PTransient is the probability of a retryable failure on any
	// operation.
	PTransient float64
	// PPermanent is the probability of a non-retryable failure on any
	// operation.
	PPermanent float64
	// PCorrupt is the probability that a read delivers data with one
	// flipped bit (silent corruption on the read path).
	PCorrupt float64
	// PShortRead is the probability that a read delivers only a prefix.
	PShortRead float64
	// PShortWrite is the probability that a write is torn.
	PShortWrite float64
	// PDiskLoss is the probability that an operation takes down the whole
	// logical disk holding its file (see KindDiskLoss).
	PDiskLoss float64
	// Schedule forces faults at exact per-file operation indices, on top
	// of the probabilistic model.
	Schedule []ScheduledFault
}

// ChaosCounts reports what a ChaosFS actually injected.
type ChaosCounts struct {
	Ops         int64
	Transient   int64
	Permanent   int64
	Corruptions int64
	ShortReads  int64
	ShortWrites int64
	DiskLosses  int64
}

// ChaosFS wraps a file system with seeded, deterministic fault injection:
// transient and permanent errors, short (torn) transfers, and silent bit
// corruption on reads. It supersedes the one-shot FaultFS budget model
// with a probabilistic-and-scheduled model suitable for chaos testing the
// resilient I/O layer end to end.
//
// Determinism: every file keeps its own operation counter, and the fault
// decision for operation k on file f depends only on (Seed, f, k). Since
// the LAF ownership model gives every file a single-processor, program-
// ordered operation sequence, the same program with the same seed hits
// the same faults regardless of goroutine interleaving.
type ChaosFS struct {
	inner FS
	cfg   ChaosConfig

	mu     sync.Mutex
	ops    map[string]int64
	seen   map[string]bool // every file name observed, for disk loss
	lost   map[string]bool // files dropped by a disk loss, until recreated
	counts ChaosCounts
}

// NewChaosFS wraps inner with the given fault model.
func NewChaosFS(inner FS, cfg ChaosConfig) *ChaosFS {
	return &ChaosFS{inner: inner, cfg: cfg, ops: make(map[string]int64),
		seen: make(map[string]bool), lost: make(map[string]bool)}
}

// LostFiles returns the names of files currently marked lost (dropped by
// a disk loss and not yet recreated), in unspecified order.
func (c *ChaosFS) LostFiles() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.lost))
	for name := range c.lost {
		out = append(out, name)
	}
	return out
}

// DiskOf extracts the logical disk (processor rank) from a file name
// following the repo's .p<d>. naming convention (LAFs, parity files,
// checkpoint manifests and snapshots, collective-I/O scratch). It returns
// -1 for names without a rank marker.
func DiskOf(name string) int {
	for i := 0; i+2 < len(name); i++ {
		if name[i] != '.' || name[i+1] != 'p' {
			continue
		}
		j := i + 2
		for j < len(name) && name[j] >= '0' && name[j] <= '9' {
			j++
		}
		if j > i+2 && j < len(name) && name[j] == '.' {
			n := 0
			for k := i + 2; k < j; k++ {
				n = n*10 + int(name[k]-'0')
			}
			return n
		}
	}
	return -1
}

// loseDisk drops every observed file of the given logical disk: the
// backing files are removed and the names are marked lost so in-flight
// handles fail too. A name without a rank marker loses only itself.
func (c *ChaosFS) loseDisk(name string) {
	disk := DiskOf(name)
	c.mu.Lock()
	victims := []string{name}
	c.lost[name] = true
	if disk >= 0 {
		for seen := range c.seen {
			if seen != name && DiskOf(seen) == disk {
				c.lost[seen] = true
				victims = append(victims, seen)
			}
		}
	}
	c.counts.DiskLosses++
	c.mu.Unlock()
	for _, victim := range victims {
		// Best effort: the disk's content is gone either way, and the
		// lost marker is what gates further access.
		_ = c.inner.Remove(victim)
	}
}

// LoseDisk immediately drops the logical disk holding the named file, as
// if a KindDiskLoss fault fired on it: every observed file of that disk
// is removed and marked lost. Tests and experiments use it to place a
// disk failure at an exact point in an execution.
func (c *ChaosFS) LoseDisk(name string) {
	c.loseDisk(name)
}

// FileOps returns how many operations the named file has seen so far —
// the next operation on it has this per-file index, which is the
// coordinate ScheduledFault.Op uses.
func (c *ChaosFS) FileOps(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops[name]
}

// lostErr is the permanent failure returned for operations on files of a
// lost disk.
func lostErr(verb, name string) error {
	return fmt.Errorf("iosim: chaos %s %s: %w", verb, name, ErrDiskLost)
}

// isLost reports whether the named file is marked lost.
func (c *ChaosFS) isLost(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost[name]
}

// Names enumerates the inner file system's files when it supports
// enumeration (fault-free: listing a directory is metadata the chaos
// model does not perturb). It returns nil otherwise.
func (c *ChaosFS) Names() []string {
	if n, ok := c.inner.(interface{ Names() []string }); ok {
		return n.Names()
	}
	return nil
}

// Counts returns a snapshot of the injected-fault counters.
func (c *ChaosFS) Counts() ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Salts decorrelate the per-class random draws of one operation.
const (
	saltPermanent  = 0x1
	saltTransient  = 0x2
	saltCorrupt    = 0x3
	saltShortRead  = 0x4
	saltShortWrite = 0x5
	saltBitIndex   = 0x6
	saltDiskLoss   = 0x7
)

// fnv64 hashes a file name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix derives a uniform value in [0,1) from (seed, file hash, op, salt)
// with a splitmix64 finalizer.
func mix(seed int64, h uint64, op int64, salt uint64) float64 {
	x := uint64(seed) ^ h ^ (uint64(op)+1)*0x9E3779B97F4A7C15 ^ salt*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// mixInt derives a uniform integer in [0, n) the same way.
func mixInt(seed int64, h uint64, op int64, salt uint64, n int) int {
	return int(mix(seed, h, op, salt) * float64(n))
}

// decide consumes one operation on the named file and returns the fault
// to inject, if any. read/write select which data-path classes apply.
func (c *ChaosFS) decide(name string, read, write bool) (op int64, kind FaultKind, hit bool) {
	c.mu.Lock()
	op = c.ops[name]
	c.ops[name] = op + 1
	c.counts.Ops++
	c.seen[name] = true
	c.mu.Unlock()

	kind, hit = c.pick(name, op, read, write)
	if hit {
		c.mu.Lock()
		switch kind {
		case KindPermanent:
			c.counts.Permanent++
		case KindTransient:
			c.counts.Transient++
		case KindCorrupt:
			c.counts.Corruptions++
		case KindShortRead:
			c.counts.ShortReads++
		case KindShortWrite:
			c.counts.ShortWrites++
		}
		// KindDiskLoss is counted by loseDisk, once per lost disk.
		c.mu.Unlock()
	}
	return op, kind, hit
}

// pick evaluates the schedule and the probabilistic model for one op.
func (c *ChaosFS) pick(name string, op int64, read, write bool) (FaultKind, bool) {
	for _, s := range c.cfg.Schedule {
		if s.Op == op && (s.File == "" || s.File == name) {
			return s.Kind, true
		}
	}
	h := fnv64(name)
	if c.cfg.PPermanent > 0 && mix(c.cfg.Seed, h, op, saltPermanent) < c.cfg.PPermanent {
		return KindPermanent, true
	}
	if c.cfg.PTransient > 0 && mix(c.cfg.Seed, h, op, saltTransient) < c.cfg.PTransient {
		return KindTransient, true
	}
	if read && c.cfg.PCorrupt > 0 && mix(c.cfg.Seed, h, op, saltCorrupt) < c.cfg.PCorrupt {
		return KindCorrupt, true
	}
	if read && c.cfg.PShortRead > 0 && mix(c.cfg.Seed, h, op, saltShortRead) < c.cfg.PShortRead {
		return KindShortRead, true
	}
	if write && c.cfg.PShortWrite > 0 && mix(c.cfg.Seed, h, op, saltShortWrite) < c.cfg.PShortWrite {
		return KindShortWrite, true
	}
	if c.cfg.PDiskLoss > 0 && mix(c.cfg.Seed, h, op, saltDiskLoss) < c.cfg.PDiskLoss {
		return KindDiskLoss, true
	}
	return 0, false
}

// faultErr builds the error for a metadata-path fault.
func faultErr(kind FaultKind, verb, name string, op int64) error {
	if kind == KindPermanent {
		return fmt.Errorf("iosim: chaos %s %s (op %d): %w", verb, name, op, ErrInjected)
	}
	return MarkTransient(fmt.Errorf("iosim: chaos injected transient fault: %s %s (op %d)", verb, name, op))
}

// metaFault maps a metadata-path fault decision to its error, handling
// disk loss; ok is false when no error is to be injected.
func (c *ChaosFS) metaFault(verb, name string, op int64, kind FaultKind, hit bool) (error, bool) {
	if !hit {
		return nil, false
	}
	switch kind {
	case KindPermanent, KindTransient:
		return faultErr(kind, verb, name, op), true
	case KindDiskLoss:
		c.loseDisk(name)
		return lostErr(verb, name), true
	}
	return nil, false
}

// Create makes the named file, or injects a fault. Creating a file on a
// lost disk models plugging in a replacement: the lost marker clears and
// the new (empty) file is usable again.
func (c *ChaosFS) Create(name string) (File, error) {
	op, kind, hit := c.decide(name, false, false)
	if err, bad := c.metaFault("create", name, op, kind, hit); bad {
		return nil, err
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	delete(c.lost, name)
	c.mu.Unlock()
	return &chaosFile{fs: c, name: name, inner: f}, nil
}

// Open opens an existing file, or injects a fault. Files of a lost disk
// fail permanently until recreated.
func (c *ChaosFS) Open(name string) (File, error) {
	if c.isLost(name) {
		return nil, lostErr("open", name)
	}
	op, kind, hit := c.decide(name, false, false)
	if err, bad := c.metaFault("open", name, op, kind, hit); bad {
		return nil, err
	}
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, name: name, inner: f}, nil
}

// Remove deletes the named file, or injects a fault. Removing a lost
// file clears its marker (the name no longer refers to lost content) and
// surfaces the backing store's not-exist error.
func (c *ChaosFS) Remove(name string) error {
	op, kind, hit := c.decide(name, false, false)
	if err, bad := c.metaFault("remove", name, op, kind, hit); bad {
		return err
	}
	c.mu.Lock()
	delete(c.lost, name)
	c.mu.Unlock()
	return c.inner.Remove(name)
}

type chaosFile struct {
	fs    *ChaosFS
	name  string
	inner File
}

func (f *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	if f.fs.isLost(f.name) {
		return 0, lostErr("read", f.name)
	}
	op, kind, hit := f.fs.decide(f.name, true, false)
	if hit {
		switch kind {
		case KindPermanent, KindTransient:
			return 0, faultErr(kind, "read", f.name, op)
		case KindDiskLoss:
			f.fs.loseDisk(f.name)
			return 0, lostErr("read", f.name)
		case KindShortRead:
			n, err := f.inner.ReadAt(p[:len(p)/2], off)
			if err != nil {
				return n, err
			}
			return n, MarkTransient(fmt.Errorf("iosim: chaos short read: %s (op %d): %d of %d bytes", f.name, op, n, len(p)))
		}
	}
	n, err := f.inner.ReadAt(p, off)
	if hit && kind == KindCorrupt && n > 0 {
		// Silent read-path corruption: flip one deterministic bit.
		bit := mixInt(f.fs.cfg.Seed, fnv64(f.name), op, saltBitIndex, n*8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	return n, err
}

func (f *chaosFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fs.isLost(f.name) {
		return 0, lostErr("write", f.name)
	}
	op, kind, hit := f.fs.decide(f.name, false, true)
	if hit {
		switch kind {
		case KindPermanent, KindTransient:
			return 0, faultErr(kind, "write", f.name, op)
		case KindDiskLoss:
			f.fs.loseDisk(f.name)
			return 0, lostErr("write", f.name)
		case KindShortWrite:
			// Torn write: a prefix reaches the file before the fault.
			n, err := f.inner.WriteAt(p[:len(p)/2], off)
			if err != nil {
				return n, err
			}
			return n, MarkTransient(fmt.Errorf("iosim: chaos torn write: %s (op %d): %d of %d bytes", f.name, op, n, len(p)))
		}
	}
	return f.inner.WriteAt(p, off)
}

func (f *chaosFile) Truncate(size int64) error {
	if f.fs.isLost(f.name) {
		return lostErr("truncate", f.name)
	}
	op, kind, hit := f.fs.decide(f.name, false, false)
	if err, bad := f.fs.metaFault("truncate", f.name, op, kind, hit); bad {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *chaosFile) Close() error { return f.inner.Close() }
