package iosim

import (
	"errors"
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

func testConfig() sim.Config {
	cfg := sim.Delta(2)
	return cfg
}

// TestResilientReadRetriesTransient injects a transient fault on a data
// read and checks the resilient disk retries it to success, charging the
// backoff to the returned simulated duration and the stats counters.
func TestResilientReadRetriesTransient(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{
		// Op 0 create, 1 truncate, 2 write; op 3 is the first read.
		Schedule: []ScheduledFault{{File: "x.laf", Op: 3, Kind: KindTransient}},
	})
	stats := &trace.IOStats{}
	res := NewResilience(DefaultRetryPolicy())
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	laf, err := d.CreateLAF("x.laf", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	cleanSec := stats.Seconds
	got, sec, err := laf.ReadAll()
	if err != nil {
		t.Fatalf("read with one transient fault should succeed after retry: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %g != %g", i, got[i], src[i])
		}
	}
	if stats.Retries == 0 || stats.RetrySeconds <= 0 {
		t.Fatalf("retry counters not surfaced: %+v", stats)
	}
	if stats.GiveUps != 0 {
		t.Fatalf("no give-up expected: %+v", stats)
	}
	if sec <= 0 {
		t.Fatalf("returned duration %g should include the transfer", sec)
	}
	// The backoff is charged into both the op duration and the stats.
	if stats.Seconds-cleanSec < stats.RetrySeconds {
		t.Fatalf("accounted seconds %.6f do not include the %.6f retry backoff",
			stats.Seconds-cleanSec, stats.RetrySeconds)
	}
}

// TestResilientGivesUpAfterBudget drives every operation to fail
// transiently and checks the typed permanent error.
func TestResilientGivesUpAfterBudget(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{PTransient: 1})
	stats := &trace.IOStats{}
	res := NewResilience(RetryPolicy{MaxRetries: 3, BaseBackoff: 1e-3, MaxBackoff: 4e-3})
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	_, err := d.CreateLAF("x.laf", 8)
	if err == nil {
		t.Fatal("create with 100% transient faults must exhaust the retry budget")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError, got %T: %v", err, err)
	}
	if ex.Attempts != 4 {
		t.Fatalf("attempts = %d, want 1 + 3 retries", ex.Attempts)
	}
	if IsTransient(err) {
		t.Fatal("an exhausted budget must classify permanent")
	}
	if stats.GiveUps == 0 {
		t.Fatalf("give-up not counted: %+v", stats)
	}
}

// TestChecksumDetectsAtRestCorruption flips a bit directly in the backing
// store (corruption at rest) and checks the read surfaces a typed
// corruption error instead of silently returning bad data.
func TestChecksumDetectsAtRestCorruption(t *testing.T) {
	mem := NewMemFS()
	stats := &trace.IOStats{}
	res := NewResilience(RetryPolicy{MaxRetries: 2, BaseBackoff: 1e-3, MaxBackoff: 4e-3})
	d := NewResilientDisk(mem, testConfig(), stats, res)
	laf, err := d.CreateLAF("x.laf", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i)
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	// Flip one bit behind the resilient layer's back.
	f, err := mem.Open("x.laf")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, 100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b, 100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = laf.ReadAll()
	if err == nil {
		t.Fatal("corrupted-at-rest data must never be returned silently")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError over the corruption, got %T: %v", err, err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptionError in the chain, got %v", err)
	}
	if stats.Corruptions == 0 || stats.GiveUps == 0 {
		t.Fatalf("corruption/give-up not counted: %+v", stats)
	}
}

// TestChecksumRepairsReadPathCorruption injects a transient flipped bit
// on the read path and checks the resilient read detects it via checksum
// and repairs it by re-reading.
func TestChecksumRepairsReadPathCorruption(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{
		Seed: 3,
		// Op 0 create, 1 truncate, 2 write, 3 the corrupted read.
		Schedule: []ScheduledFault{{File: "x.laf", Op: 3, Kind: KindCorrupt}},
	})
	stats := &trace.IOStats{}
	res := NewResilience(DefaultRetryPolicy())
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	laf, err := d.CreateLAF("x.laf", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	src := make([]float64, 64)
	for i := range src {
		src[i] = 1.0 / float64(i+1)
	}
	if _, err := laf.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	got, _, err := laf.ReadAll()
	if err != nil {
		t.Fatalf("read-path corruption should be repaired by retry: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d differs after repair: %g != %g", i, got[i], src[i])
		}
	}
	if stats.Corruptions == 0 {
		t.Fatalf("detected corruption not counted: %+v", stats)
	}
	if stats.Retries == 0 {
		t.Fatalf("the repairing re-read is a retry: %+v", stats)
	}
}

// TestFreshFileVerifiesAgainstZeroChecksums reads a never-written file
// through the resilient layer; the zero-seeded checksums must hold.
func TestFreshFileVerifiesAgainstZeroChecksums(t *testing.T) {
	d := NewResilientDisk(NewMemFS(), testConfig(), nil, NewResilience(DefaultRetryPolicy()))
	laf, err := d.CreateLAF("x.laf", 200) // 1600 bytes: a partial tail block
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	got, _, err := laf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("fresh element %d = %g, want 0", i, v)
		}
	}
}

// TestTornWriteRetriedAndChecksummed tears a data write; the retry must
// leave the file and the checksum store consistent, including the
// partially covered edge blocks.
func TestTornWriteRetriedAndChecksummed(t *testing.T) {
	mem := NewMemFS()
	chaos := NewChaosFS(mem, ChaosConfig{
		// Op 0 create, 1 truncate; op 2 is the torn data write.
		Schedule: []ScheduledFault{{File: "x.laf", Op: 2, Kind: KindShortWrite}},
	})
	stats := &trace.IOStats{}
	res := NewResilience(DefaultRetryPolicy())
	d := NewResilientDisk(chaos, testConfig(), stats, res)
	laf, err := d.CreateLAF("x.laf", 300)
	if err != nil {
		t.Fatal(err)
	}
	defer laf.Close()
	// An unaligned run: starts and ends inside checksum blocks.
	src := make([]float64, 100)
	for i := range src {
		src[i] = float64(i) * 1.25
	}
	if _, err := laf.WriteChunks([]Chunk{{Off: 37, Len: 100}}, src); err != nil {
		t.Fatalf("torn write should be retried: %v", err)
	}
	if stats.Retries == 0 {
		t.Fatalf("torn write retry not counted: %+v", stats)
	}
	got := make([]float64, 100)
	if _, err := laf.ReadChunks([]Chunk{{Off: 37, Len: 100}}, got); err != nil {
		t.Fatalf("read-back after torn-write recovery: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %g != %g", i, got[i], src[i])
		}
	}
}

// TestBackoffSequence pins the exact backoff schedule under one cap
// rule: exponential doubling from BaseBackoff, clamped to MaxBackoff
// when (and only when) MaxBackoff is positive.
func TestBackoffSequence(t *testing.T) {
	cases := []struct {
		name string
		pol  RetryPolicy
		want []float64
	}{
		{
			name: "capped",
			pol:  RetryPolicy{MaxRetries: 10, BaseBackoff: 1e-3, MaxBackoff: 4e-3},
			want: []float64{1e-3, 2e-3, 4e-3, 4e-3, 4e-3},
		},
		{
			name: "default policy",
			pol:  DefaultRetryPolicy(),
			want: []float64{1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 16e-3, 16e-3},
		},
		{
			name: "unlimited (MaxBackoff=0) keeps doubling",
			pol:  RetryPolicy{MaxRetries: 10, BaseBackoff: 1e-3},
			want: []float64{1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 32e-3, 64e-3, 128e-3},
		},
		{
			name: "negative MaxBackoff behaves like unlimited",
			pol:  RetryPolicy{MaxRetries: 10, BaseBackoff: 1e-3, MaxBackoff: -1},
			want: []float64{1e-3, 2e-3, 4e-3, 8e-3},
		},
		{
			name: "base above the cap clamps immediately",
			pol:  RetryPolicy{MaxRetries: 10, BaseBackoff: 8e-3, MaxBackoff: 2e-3},
			want: []float64{2e-3, 2e-3, 2e-3},
		},
	}
	for _, tc := range cases {
		for i, w := range tc.want {
			if got := tc.pol.backoff(i); got != w {
				t.Fatalf("%s: backoff(%d) = %g, want %g", tc.name, i, got, w)
			}
		}
	}
}
