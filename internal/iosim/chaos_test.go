package iosim

import (
	"bytes"
	"errors"
	"testing"
)

// chaosOpSequence runs a fixed operation sequence against a ChaosFS and
// returns the injected-fault counts plus the final read-back (nil when a
// permanent fault aborted the sequence).
func chaosOpSequence(t *testing.T, cfg ChaosConfig) (ChaosCounts, []byte) {
	t.Helper()
	fs := NewChaosFS(NewMemFS(), cfg)
	var final []byte
	f, err := fs.Create("x.laf")
	if err == nil {
		payload := make([]byte, 256)
		for i := range payload {
			payload[i] = byte(i)
		}
		for k := 0; k < 8; k++ {
			f.WriteAt(payload, int64(k)*256)
		}
		buf := make([]byte, 256)
		for k := 0; k < 8; k++ {
			if n, err := f.ReadAt(buf, int64(k)*256); err == nil && n == len(buf) {
				final = append([]byte(nil), buf...)
			}
		}
		f.Close()
	}
	return fs.Counts(), final
}

func TestChaosDeterministicUnderSeed(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, PTransient: 0.2, PCorrupt: 0.1, PShortRead: 0.1, PShortWrite: 0.1}
	c1, b1 := chaosOpSequence(t, cfg)
	c2, b2 := chaosOpSequence(t, cfg)
	if c1 != c2 {
		t.Fatalf("same seed, different fault counts: %+v vs %+v", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different data effects")
	}
	c3, _ := chaosOpSequence(t, ChaosConfig{Seed: 43, PTransient: 0.2, PCorrupt: 0.1, PShortRead: 0.1, PShortWrite: 0.1})
	if c1 == c3 {
		t.Fatalf("different seeds produced identical fault counts %+v (suspicious)", c1)
	}
}

func TestChaosScheduledPermanentFault(t *testing.T) {
	fs := NewChaosFS(NewMemFS(), ChaosConfig{
		Schedule: []ScheduledFault{{File: "x", Op: 1, Kind: KindPermanent}},
	})
	f, err := fs.Create("x") // op 0
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.WriteAt([]byte{1, 2, 3}, 0) // op 1: scheduled fault
	if err == nil {
		t.Fatal("scheduled permanent fault did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("permanent fault should wrap ErrInjected, got %v", err)
	}
	if IsTransient(err) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
	if _, err := f.WriteAt([]byte{1, 2, 3}, 0); err != nil { // op 2: clean
		t.Fatalf("op after the scheduled fault should succeed, got %v", err)
	}
	if c := fs.Counts(); c.Permanent != 1 || c.Ops != 3 {
		t.Fatalf("counts = %+v, want 1 permanent of 3 ops", c)
	}
}

func TestChaosScheduledTransientFault(t *testing.T) {
	fs := NewChaosFS(NewMemFS(), ChaosConfig{
		Schedule: []ScheduledFault{{Op: 1, Kind: KindTransient}},
	})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.ReadAt(make([]byte, 4), 0)
	if err == nil || !IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
}

func TestChaosShortReadAndWriteAreTransient(t *testing.T) {
	fs := NewChaosFS(NewMemFS(), ChaosConfig{
		Schedule: []ScheduledFault{
			{File: "x", Op: 1, Kind: KindShortWrite},
			{File: "x", Op: 3, Kind: KindShortRead},
		},
	})
	f, err := fs.Create("x") // op 0
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	n, err := f.WriteAt(payload, 0) // op 1: torn write
	if err == nil || !IsTransient(err) {
		t.Fatalf("torn write should return a transient error, got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(payload)/2)
	}
	if _, err := f.WriteAt(payload, 0); err != nil { // op 2: retry succeeds
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err = f.ReadAt(buf, 0) // op 3: short read
	if err == nil || !IsTransient(err) {
		t.Fatalf("short read should return a transient error, got %v", err)
	}
	if n != len(buf)/2 {
		t.Fatalf("short read delivered %d bytes, want %d", n, len(buf)/2)
	}
	if _, err := f.ReadAt(buf, 0); err != nil { // op 4: retry succeeds
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("after retries, read %v want %v", buf, payload)
	}
}

func TestChaosCorruptionFlipsExactlyOneBit(t *testing.T) {
	fs := NewChaosFS(NewMemFS(), ChaosConfig{
		Seed:     7,
		Schedule: []ScheduledFault{{File: "x", Op: 2, Kind: KindCorrupt}},
	})
	f, err := fs.Create("x") // op 0
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if _, err := f.WriteAt(payload, 0); err != nil { // op 1
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil { // op 2: corrupted, silently
		t.Fatal(err)
	}
	diffBits := 0
	for i := range buf {
		x := buf[i] ^ payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	if _, err := f.ReadAt(buf, 0); err != nil { // op 3: clean again
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("file content itself was altered; corruption should be read-path only")
	}
}

func TestIsTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Fatal("nil must not be transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain errors must not be transient")
	}
	if !IsTransient(MarkTransient(errors.New("hiccup"))) {
		t.Fatal("MarkTransient must classify transient")
	}
	if !IsTransient(&CorruptionError{File: "x", Block: 0}) {
		t.Fatal("read-path corruption must be transient (re-read may repair)")
	}
	ex := &ExhaustedError{Op: "read", File: "x", Attempts: 3, Last: MarkTransient(errors.New("hiccup"))}
	if IsTransient(ex) {
		t.Fatal("an exhausted retry budget is permanent even over a transient cause")
	}
	var target *ExhaustedError
	if !errors.As(error(ex), &target) {
		t.Fatal("errors.As must find ExhaustedError")
	}
}
