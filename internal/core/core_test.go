package core

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/experiments"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
)

func TestSessionCompileAndRun(t *testing.T) {
	s := NewSession(4)
	out, err := s.CompileAndRun(hpf.GaxpySource,
		compiler.Options{N: 32, MemElems: 300},
		exec.Options{Fill: map[string]func(int, int) float64{
			"a": gaxpy.FillA, "b": gaxpy.FillB,
		}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Compiled.Program.Strategy != "row-slab" {
		t.Errorf("strategy %s", out.Compiled.Program.Strategy)
	}
	if out.Stats().ElapsedSeconds() <= 0 {
		t.Error("no simulated time elapsed")
	}
	c, err := out.Array("c")
	if err != nil {
		t.Fatal(err)
	}
	want := gaxpy.CExpected(32)
	if c.At(3, 5) != want(3, 5) {
		t.Errorf("result wrong: %g vs %g", c.At(3, 5), want(3, 5))
	}
}

func TestDiskSession(t *testing.T) {
	s, err := NewDiskSession(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.CompileAndRun(hpf.GaxpySource,
		compiler.Options{N: 16, MemElems: 100},
		exec.Options{Fill: map[string]func(int, int) float64{
			"a": gaxpy.FillA, "b": gaxpy.FillB,
		}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := out.Array("c")
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != gaxpy.CExpected(16)(0, 0) {
		t.Error("disk-backed run produced wrong result")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	p := experiments.Params{N: 64, Procs: []int{4}, Ratios: []int{2}}
	for _, name := range ExperimentNames {
		text, _, err := RunExperiment(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if text == "" {
			t.Errorf("%s: empty output", name)
		}
	}
	if _, _, err := RunExperiment("bogus", p); err == nil {
		t.Error("unknown experiment should fail")
	}
	// table1 provides CSV.
	_, csv, err := RunExperiment("table1", p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "variant,slab_ratio") {
		t.Errorf("table1 CSV wrong:\n%s", csv)
	}
}
