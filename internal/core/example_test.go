package core_test

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/core"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
)

// ExampleSession_CompileAndRun compiles and executes the paper's Figure 3
// GAXPY program on a simulated 4-processor machine, out of core.
func ExampleSession_CompileAndRun() {
	session := core.NewSession(4)
	out, err := session.CompileAndRun(hpf.GaxpySource,
		compiler.Options{N: 32, MemElems: 300},
		exec.Options{Fill: map[string]func(int, int) float64{
			"a": gaxpy.FillA,
			"b": gaxpy.FillB,
		}})
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", out.Compiled.Program.Strategy)
	c, err := out.Array("c")
	if err != nil {
		panic(err)
	}
	fmt.Println("C(0,0) correct:", c.At(0, 0) == gaxpy.CExpected(32)(0, 0))
	// Output:
	// strategy: row-slab
	// C(0,0) correct: true
}
