// Package core is the library's high-level entry point: it couples the
// mini-HPF frontend, the out-of-core compiler, the simulated machine and
// the experiment drivers behind a small facade, so tools and examples can
// compile-and-run out-of-core data parallel programs in a few calls.
package core

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/experiments"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Session couples a machine model and a backing file system, so a
// compiled program's local array files persist across Compile/Run/Read
// calls.
type Session struct {
	Machine sim.Config
	FS      iosim.FS
}

// NewSession returns a session for a Delta-like machine with the given
// processor count, backed by an in-memory file system.
func NewSession(procs int) *Session {
	return &Session{Machine: sim.Delta(procs), FS: iosim.NewMemFS()}
}

// NewDiskSession is NewSession backed by real files under dir, making the
// out-of-core execution genuinely out of core.
func NewDiskSession(procs int, dir string) (*Session, error) {
	fs, err := iosim.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	return &Session{Machine: sim.Delta(procs), FS: fs}, nil
}

// Compile translates mini-HPF source for this session's machine.
func (s *Session) Compile(source string, opts compiler.Options) (*compiler.Result, error) {
	if opts.Procs == 0 {
		opts.Procs = s.Machine.Procs
	}
	if opts.Machine.Procs == 0 {
		opts.Machine = s.Machine
	}
	return compiler.CompileSource(source, opts)
}

// Run executes a compiled program on the session's machine and file
// system.
func (s *Session) Run(p *plan.Program, opts exec.Options) (*exec.Result, error) {
	if opts.FS == nil {
		opts.FS = s.FS
	}
	mach := s.Machine
	mach.Procs = p.Procs
	return exec.Run(p, mach, opts)
}

// Outcome bundles a compile-and-run round trip.
type Outcome struct {
	Compiled *compiler.Result
	Executed *exec.Result
}

// Stats returns the execution statistics.
func (o *Outcome) Stats() *trace.Stats { return o.Executed.Stats }

// Array assembles a result array by name.
func (o *Outcome) Array(name string) (*matrix.Matrix, error) {
	return o.Executed.ReadArray(name)
}

// CompileAndRun compiles source and immediately executes it.
func (s *Session) CompileAndRun(source string, copts compiler.Options, eopts exec.Options) (*Outcome, error) {
	res, err := s.Compile(source, copts)
	if err != nil {
		return nil, err
	}
	out, err := s.Run(res.Program, eopts)
	if err != nil {
		return nil, err
	}
	return &Outcome{Compiled: res, Executed: out}, nil
}

// Experiment names every reproducible artifact of the paper.
var ExperimentNames = []string{"fig10", "table1", "table2", "eqcheck", "ablations", "compiled", "lu", "twophase", "disksurvival", "ranksurvival"}

// RunExperiment regenerates the named table or figure and returns its
// formatted text (plus CSV where available).
func RunExperiment(name string, p experiments.Params) (text, csv string, err error) {
	switch name {
	case "fig10":
		r, err := experiments.Fig10(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), r.Table.CSV(), nil
	case "table1":
		r, err := experiments.Table1(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), r.CSV(), nil
	case "table2":
		r, err := experiments.Table2(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), r.CSV(), nil
	case "eqcheck":
		r, err := experiments.EqCheck(p)
		if err != nil {
			return "", "", err
		}
		if !r.AllMatch() {
			return r.Format(), "", fmt.Errorf("core: eqcheck found closed-form/measured mismatches")
		}
		return r.Format(), "", nil
	case "ablations":
		r, err := experiments.Ablations(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), "", nil
	case "compiled":
		r, err := experiments.Compiled(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), "", nil
	case "lu":
		r, err := experiments.LU(p)
		if err != nil {
			return "", "", err
		}
		return r.Format(), "", nil
	case "twophase":
		r, err := experiments.TwoPhase(p)
		if err != nil {
			return "", "", err
		}
		if !r.AllBitwise() || !r.AllExact() || !r.SelectionAgrees() {
			return r.Format(), r.CSV(), fmt.Errorf("core: twophase validation failed (bitwise=%v exact=%v selection=%v)",
				r.AllBitwise(), r.AllExact(), r.SelectionAgrees())
		}
		return r.Format(), r.CSV(), nil
	case "disksurvival":
		r, err := experiments.DiskSurvival(p)
		if err != nil {
			return "", "", err
		}
		if gerr := r.Gate(); gerr != nil {
			return r.Format(), r.CSV(), fmt.Errorf("core: disksurvival validation failed: %w", gerr)
		}
		return r.Format(), r.CSV(), nil
	case "ranksurvival":
		r, err := experiments.RankSurvival(p)
		if err != nil {
			return "", "", err
		}
		if gerr := r.Gate(); gerr != nil {
			return r.Format(), r.CSV(), fmt.Errorf("core: ranksurvival validation failed: %w", gerr)
		}
		return r.Format(), r.CSV(), nil
	default:
		return "", "", fmt.Errorf("core: unknown experiment %q (have %v)", name, ExperimentNames)
	}
}
