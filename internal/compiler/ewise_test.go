package compiler

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
)

func TestEwiseRecognized(t *testing.T) {
	res, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if an.Pattern != PatternEwise {
		t.Fatalf("pattern = %v", an.Pattern)
	}
	if an.Ewise == nil || len(an.Ewise.Stmts) != 2 {
		t.Fatalf("statements = %+v", an.Ewise)
	}
	if got := strings.Join(an.Ewise.Arrays, ","); got != "z,x,y,w" {
		t.Errorf("arrays = %q", got)
	}
	s0 := an.Ewise.Stmts[0]
	if s0.Out != "z" || strings.Join(s0.Ins, ",") != "x,y" {
		t.Errorf("stmt0 = %+v", s0)
	}
	// alpha resolves to its parameter value inside the expression.
	if !strings.Contains(s0.Expr.String(), "3") {
		t.Errorf("alpha not folded: %s", s0.Expr.String())
	}
	if !strings.Contains(an.Comm, "no communication") {
		t.Errorf("comm analysis: %q", an.Comm)
	}
}

func TestEwisePicksContiguousSlabs(t *testing.T) {
	// Both candidates move the same data once; the column-slab one needs
	// an order of magnitude fewer requests, so it must win.
	res, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Strategy != "column-slab" {
		t.Errorf("strategy = %s", res.Program.Strategy)
	}
	col, row := res.Candidates[0], res.Candidates[1]
	if col.TotalElems() != row.TotalElems() {
		t.Errorf("data volume should match: %d vs %d", col.TotalElems(), row.TotalElems())
	}
	if col.TotalRequests() >= row.TotalRequests() {
		t.Errorf("column slabs should need fewer requests: %d vs %d",
			col.TotalRequests(), row.TotalRequests())
	}
	for _, spec := range res.Program.Arrays {
		if spec.SlabDim != oocarray.ByColumn {
			t.Errorf("array %s strip-mined %v", spec.Name, spec.SlabDim)
		}
	}
}

func TestEwiseProgramShape(t *testing.T) {
	res, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	prg := res.Program
	if len(prg.Body) != 2 {
		t.Fatalf("want one slab loop per statement, got %d", len(prg.Body))
	}
	loop, ok := prg.Body[0].(*plan.Loop)
	if !ok || loop.Count.SlabsOf != "z" {
		t.Fatalf("first loop wrong: %+v", prg.Body[0])
	}
	// Roles: x, y are pure inputs; w is a pure output; z is written then
	// read, hence an input from the allocator's perspective.
	roles := map[string]plan.Role{}
	for _, a := range prg.Arrays {
		roles[a.Name] = a.Role
	}
	if roles["w"] != plan.Out {
		t.Errorf("w should be a pure output")
	}
	if roles["x"] != plan.In || roles["z"] != plan.In {
		t.Errorf("roles: %v", roles)
	}
	text := prg.String()
	for _, want := range []string{"new_slab(z", "out_z(:)", "out_w(:)", "strategy=column-slab"} {
		if !strings.Contains(text, want) {
			t.Errorf("program text missing %q:\n%s", want, text)
		}
	}
}

func TestEwiseRowBlockMapping(t *testing.T) {
	src := strings.Replace(hpf.EwiseSource, "align (*,:)", "align (:,*)", 1)
	res, err := CompileSource(src, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.Pattern != PatternEwise {
		t.Fatal("row-block elementwise program should be accepted")
	}
	// Row-block local arrays have n columns, so row slabs are even more
	// fragmented; column slabs still win.
	if res.Program.Strategy != "column-slab" {
		t.Errorf("strategy = %s", res.Program.Strategy)
	}
}

func TestEwiseForceRowSlab(t *testing.T) {
	res, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12, Force: "row-slab"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Strategy != "row-slab" {
		t.Errorf("force ignored: %s", res.Program.Strategy)
	}
}

func TestEwiseSieveChangesRowCandidate(t *testing.T) {
	plain, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	sieved, err := CompileSource(hpf.EwiseSource, Options{MemElems: 1 << 12, Sieve: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Candidates[1].TotalRequests() == sieved.Candidates[1].TotalRequests() {
		t.Error("sieving should change the row-slab request count")
	}
}

func TestEwiseRejections(t *testing.T) {
	cases := []struct{ name, src string }{
		{
			"mixed mappings",
			strings.Replace(hpf.EwiseSource,
				"!hpf$ align (*,:) with d :: x, y, z, w",
				"!hpf$ align (*,:) with d :: x, z, w\n!hpf$ align (:,*) with d :: y", 1),
		},
		{
			"unknown scalar",
			strings.Replace(hpf.EwiseSource, "alpha*x(1:n,k)", "beta*x(1:n,k)", 1),
		},
		{
			"loop variable as scalar",
			strings.Replace(hpf.EwiseSource, "alpha*x(1:n,k)", "k*x(1:n,k)", 1),
		},
		{
			"partial section",
			strings.Replace(hpf.EwiseSource, "z(1:n,k) = alpha*x(1:n,k)", "z(1:n,k) = alpha*x(2:n,k)", 1),
		},
	}
	for _, tc := range cases {
		if _, err := CompileSource(tc.src, Options{MemElems: 1 << 12}); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

func TestEwiseTinyMemoryRejected(t *testing.T) {
	if _, err := CompileSource(hpf.EwiseSource, Options{MemElems: 2}); err == nil {
		t.Error("memory below one element per array should fail")
	}
}

func TestPatternString(t *testing.T) {
	if PatternGaxpy.String() != "gaxpy" || PatternEwise.String() != "elementwise" {
		t.Error("pattern names wrong")
	}
}

func TestMemoryDirectiveSupplied(t *testing.T) {
	src := strings.Replace(hpf.GaxpySource,
		"!hpf$ processors pr(nprocs)",
		"!hpf$ processors pr(nprocs)\n!hpf$ out_of_core :: a, b, c, temp\n!hpf$ memory (n*16)", 1)
	res, err := CompileSource(src, Options{}) // no MemElems: comes from the directive
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Program.Array("a")
	b, _ := res.Program.Array("b")
	c, _ := res.Program.Array("c")
	total := a.SlabElems + b.SlabElems + c.SlabElems
	if total > 64*16 {
		t.Errorf("directive memory overcommitted: %d > %d", total, 64*16)
	}
	// Explicit options still win.
	res2, err := CompileSource(src, Options{MemElems: 64 * 32})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := res2.Program.Array("a")
	if a2.SlabElems <= a.SlabElems {
		t.Error("explicit MemElems should override the directive")
	}
}

func TestOutOfCoreDirectiveValidation(t *testing.T) {
	missing := strings.Replace(hpf.GaxpySource,
		"!hpf$ processors pr(nprocs)",
		"!hpf$ processors pr(nprocs)\n!hpf$ out_of_core :: a, b", 1)
	if _, err := CompileSource(missing, Options{MemElems: 1 << 12}); err == nil {
		t.Error("arrays missing from out_of_core should be rejected")
	}
	undeclared := strings.Replace(hpf.GaxpySource,
		"!hpf$ processors pr(nprocs)",
		"!hpf$ processors pr(nprocs)\n!hpf$ out_of_core :: a, b, c, temp, ghost", 1)
	if _, err := CompileSource(undeclared, Options{MemElems: 1 << 12}); err == nil {
		t.Error("undeclared array in out_of_core should be rejected")
	}
}
