package compiler

// The elementwise pattern class: communication-free FORALL statements
// over identically aligned arrays, e.g.
//
//	FORALL (k = 1:n)
//	  z(1:n,k) = 2*x(1:n,k) + y(1:n,k) - 1
//	end FORALL
//
// Here the access reorganization question is not reuse (every array is
// streamed exactly once) but *contiguity*: strip-mining along the storage
// order (column slabs of the column-major local arrays) needs one disk
// request per slab, strip-mining across it needs one request per local
// column. The compiler builds both candidates and lets the cost model
// decide — the same Figure 14 machinery as GAXPY, exercising its other
// axis.

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

// EwiseStmt is one analyzed FORALL assignment.
type EwiseStmt struct {
	// Out is the target array; Ins lists the distinct input arrays in
	// first-use order.
	Out string
	Ins []string
	// Expr is the compiled elementwise expression; EBuf leaves name
	// input buffers as "icla_<array>".
	Expr plan.EExpr
}

// EwiseAnalysis is the in-core phase result for the elementwise pattern.
type EwiseAnalysis struct {
	Stmts []EwiseStmt
	// Arrays lists every distinct array touched, in first-use order.
	Arrays []string
}

// matchEwise recognizes a body consisting solely of FORALL constructs
// whose assignments are elementwise over identically mapped arrays.
func matchEwise(prog *hpf.Program, env map[string]int, an *Analysis) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("not an elementwise program: "+format, args...)
	}
	if len(prog.Body) == 0 {
		return fail("empty body")
	}
	ew := &EwiseAnalysis{}
	seen := map[string]bool{}
	addArray := func(name string) {
		if !seen[name] {
			seen[name] = true
			ew.Arrays = append(ew.Arrays, name)
		}
	}

	var refDist string // mapping signature all arrays must share
	checkMapped := func(name string) error {
		m, ok := an.Mappings[name]
		if !ok {
			return fail("array %q has no ALIGN directive", name)
		}
		sig := m.String()
		if refDist == "" {
			refDist = sig
		} else if sig[len(name):] != refDist[len(ew.Arrays[0]):] {
			return fail("array %q mapping %s differs from %q's; cross-distribution FORALLs need communication (unsupported)",
				name, sig, ew.Arrays[0])
		}
		return nil
	}

	for _, st := range prog.Body {
		fa, ok := st.(*hpf.Forall)
		if !ok {
			return fail("statement %T is not a FORALL", st)
		}
		if !spansWholeExtent(fa.Lo, fa.Hi, env, an.N) {
			return fail("FORALL must run 1..n")
		}
		for _, inner := range fa.Body {
			asg := inner.(*hpf.Assign) // parser guarantees assignments
			if err := checkSection(asg.LHS, fa.Var, env, an.N); err != nil {
				return fail("target %s: %v", asg.LHS.String(), err)
			}
			stmt := EwiseStmt{Out: asg.LHS.Array}
			addArray(stmt.Out)
			if err := checkMapped(stmt.Out); err != nil {
				return err
			}
			expr, err := compileEwiseExpr(asg.RHS, fa.Var, env, an, &stmt, addArray, checkMapped)
			if err != nil {
				return err
			}
			stmt.Expr = expr
			ew.Stmts = append(ew.Stmts, stmt)
		}
	}
	an.Ewise = ew
	an.Comm = "all FORALL statements are elementwise over identically mapped arrays: no communication required"
	return nil
}

// checkSection verifies a reference has the canonical (1:n, var) shape.
func checkSection(ref *hpf.SectionRef, loopVar string, env map[string]int, n int) error {
	if len(ref.Subs) != 2 {
		return fmt.Errorf("want 2 subscripts, got %d", len(ref.Subs))
	}
	if !ref.Subs[0].IsRange() || !spansWholeExtent(ref.Subs[0].Lo, ref.Subs[0].Hi, env, n) {
		return fmt.Errorf("first subscript must be 1:n")
	}
	if ref.Subs[1].IsRange() || !isVar(ref.Subs[1].Index, loopVar) {
		return fmt.Errorf("second subscript must be the FORALL index %q", loopVar)
	}
	return nil
}

// compileEwiseExpr lowers an HPF expression to a plan.EExpr, recording
// input arrays on the statement.
func compileEwiseExpr(e hpf.Expr, loopVar string, env map[string]int, an *Analysis,
	stmt *EwiseStmt, addArray func(string), checkMapped func(string) error) (plan.EExpr, error) {
	switch e := e.(type) {
	case *hpf.Num:
		return &plan.EConst{V: float64(e.Value)}, nil
	case *hpf.Ident:
		v, ok := env[e.Name]
		if !ok {
			return nil, fmt.Errorf("not an elementwise program: scalar %q is neither a parameter nor a constant", e.Name)
		}
		return &plan.EConst{V: float64(v)}, nil
	case *hpf.SectionRef:
		if err := checkSection(e, loopVar, env, an.N); err != nil {
			return nil, fmt.Errorf("not an elementwise program: operand %s: %v", e.String(), err)
		}
		addArray(e.Array)
		if err := checkMapped(e.Array); err != nil {
			return nil, err
		}
		found := false
		for _, in := range stmt.Ins {
			if in == e.Array {
				found = true
			}
		}
		if !found {
			stmt.Ins = append(stmt.Ins, e.Array)
		}
		return &plan.EBuf{Buf: "icla_" + e.Array}, nil
	case *hpf.BinOp:
		l, err := compileEwiseExpr(e.L, loopVar, env, an, stmt, addArray, checkMapped)
		if err != nil {
			return nil, err
		}
		r, err := compileEwiseExpr(e.R, loopVar, env, an, stmt, addArray, checkMapped)
		if err != nil {
			return nil, err
		}
		return &plan.EBin{Op: e.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("not an elementwise program: unsupported expression %s", e.String())
	}
}

// ---------------------------------------------------------------------------
// Out-of-core phase

// ewiseCandidates builds the two strip-mining candidates: every array is
// streamed exactly once; the candidates differ only in contiguity.
func ewiseCandidates(an *Analysis, slabElems int, sieve bool) []cost.Candidate {
	n, p := an.N, an.Procs
	ocla := int64(n) * int64(n) / int64(p)
	// The local column count determines how fragmented a row slab is;
	// with per-axis divisibility it is the same on every processor.
	shape := an.Mappings[an.Ewise.Arrays[0]].LocalShape(0)
	localCols := int64(shape[1])
	mk := func(label string, chunks int64, elemsPerFetch int64) cost.Candidate {
		c := cost.Candidate{Label: label}
		for _, name := range an.Ewise.Arrays {
			c.Streams = append(c.Streams, cost.Stream{
				Array:          name,
				OCLAElems:      ocla,
				SlabElems:      int64(slabElems),
				Passes:         1,
				ChunksPerFetch: chunks,
				ElemsPerFetch:  elemsPerFetch,
			})
		}
		return c
	}
	col := mk("column-slab", 1, 0)
	rowChunks := localCols
	var rowSpan int64
	if sieve {
		rowChunks = 1
		rowSpan = ocla // a sieved row slab spans nearly the whole OCLA
	}
	row := mk("row-slab", rowChunks, rowSpan)
	return []cost.Candidate{col, row}
}

// emitEwise runs the out-of-core phase for the elementwise pattern.
func emitEwise(an *Analysis, opts Options, mach sim.Config) (*Result, error) {
	arrays := an.Ewise.Arrays
	perArray := opts.MemElems / len(arrays)
	if perArray < 1 {
		return nil, fmt.Errorf("compiler: MemElems=%d cannot cover %d arrays", opts.MemElems, len(arrays))
	}
	cands := ewiseCandidates(an, perArray, opts.Sieve)
	chosen := cost.Select(cands, mach)
	switch opts.Force {
	case "":
	case "column-slab":
		chosen = 0
	case "row-slab":
		chosen = 1
	default:
		return nil, fmt.Errorf("compiler: unknown forced strategy %q", opts.Force)
	}
	dim := oocarray.ByColumn
	if cands[chosen].Label == "row-slab" {
		dim = oocarray.ByRow
	}

	prg := &plan.Program{
		Name:     "ewise",
		N:        an.N,
		Procs:    an.Procs,
		Strategy: cands[chosen].Label,
	}
	// Outputs not read by any statement are pure outputs.
	reads := map[string]bool{}
	writes := map[string]bool{}
	for _, st := range an.Ewise.Stmts {
		writes[st.Out] = true
		for _, in := range st.Ins {
			reads[in] = true
		}
	}
	for _, name := range arrays {
		m := an.Mappings[name]
		role := plan.In
		if writes[name] && !reads[name] {
			role = plan.Out
		}
		prg.Arrays = append(prg.Arrays, plan.ArraySpec{
			Name: name, Rows: an.N, Cols: an.N,
			RowScheme: m.Dims[0].Scheme, ColScheme: m.Dims[1].Scheme,
			Role: role, Grid: m.Grid, SlabElems: perArray, SlabDim: dim,
		})
	}

	// One slab loop per statement: stream the inputs, compute, write the
	// output slab (statement fusion is a possible future optimization;
	// separate loops preserve HPF's statement-by-statement semantics).
	for si, st := range an.Ewise.Stmts {
		v := fmt.Sprintf("s%d", si)
		body := []plan.Node{}
		for _, in := range st.Ins {
			body = append(body, &plan.ReadSlab{Array: in, Index: v, Buf: "icla_" + in, Stream: true})
		}
		out := "out_" + st.Out
		body = append(body,
			&plan.NewSlab{Array: st.Out, Index: v, Buf: out},
			&plan.Ewise{Out: out, Expr: st.Expr},
			&plan.WriteBuf{Array: st.Out, Buf: out},
		)
		prg.Body = append(prg.Body, &plan.Loop{
			Var: v, Count: plan.CountExpr{SlabsOf: st.Out}, Body: body,
		})
	}

	prg.Notes = append(prg.Notes, an.Comm)
	prg.Notes = append(prg.Notes, fmt.Sprintf("memory: %d elements per array across %d arrays", perArray, len(arrays)))
	for i, c := range cands {
		mark := ""
		if i == chosen {
			mark = " [selected]"
		}
		prg.Notes = append(prg.Notes, fmt.Sprintf("candidate %s: est. I/O %.2fs, %d requests%s",
			c.Label, c.Seconds(mach), c.TotalRequests(), mark))
	}
	return &Result{
		Program:    prg,
		Analysis:   an,
		Candidates: cands,
		Chosen:     chosen,
		Report:     cost.Report(cands, chosen, mach),
	}, nil
}
