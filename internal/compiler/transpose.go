package compiler

// The transpose pattern class: a single FORALL storing one array's rows
// into another's columns,
//
//	FORALL (k = 1:n)
//	  b(1:n,k) = a(k,1:n)
//	end FORALL
//
// Executed naively, every processor gathers one element from every
// column of its source file per result column — the worst possible
// access pattern for a column-major LAF. The out-of-core phase instead
// compiles the statement to one collective redistribution over
// internal/collio and lets the cost model choose how the destination
// files are written (direct runs, a sieved RMW per round, or the
// two-phase window staging).

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

// TransposeAnalysis is the in-core phase result for the transpose
// pattern.
type TransposeAnalysis struct {
	// Src is the array read row-wise, Dst the one written column-wise.
	Src, Dst string
}

// matchTranspose recognizes the single-FORALL transpose shape over two
// distinct column-block arrays.
func matchTranspose(prog *hpf.Program, env map[string]int, an *Analysis) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("not a transpose program: "+format, args...)
	}
	if len(an.GridShape) != 1 {
		return fail("the transpose pattern requires a 1-D processor arrangement")
	}
	if len(prog.Body) != 1 {
		return fail("expected a single FORALL, found %d statements", len(prog.Body))
	}
	fa, ok := prog.Body[0].(*hpf.Forall)
	if !ok {
		return fail("statement must be a FORALL")
	}
	if !spansWholeExtent(fa.Lo, fa.Hi, env, an.N) {
		return fail("FORALL must run 1..n")
	}
	if len(fa.Body) != 1 {
		return fail("FORALL body must be a single assignment")
	}
	asg := fa.Body[0].(*hpf.Assign)

	// LHS: dst(1:n, k).
	if err := checkSection(asg.LHS, fa.Var, env, an.N); err != nil {
		return fail("target %s: %v", asg.LHS.String(), err)
	}
	// RHS: src(k, 1:n) — the transposed section.
	ref, ok := asg.RHS.(*hpf.SectionRef)
	if !ok {
		return fail("right-hand side must be a plain array section")
	}
	if len(ref.Subs) != 2 || ref.Subs[0].IsRange() || !isVar(ref.Subs[0].Index, fa.Var) ||
		!ref.Subs[1].IsRange() || !spansWholeExtent(ref.Subs[1].Lo, ref.Subs[1].Hi, env, an.N) {
		return fail("right-hand side must be %s(%s, 1:n)", ref.Array, fa.Var)
	}
	src, dst := ref.Array, asg.LHS.Array
	if src == dst {
		return fail("in-place transpose of %q is not supported", src)
	}
	for _, name := range []string{src, dst} {
		m, ok := an.Mappings[name]
		if !ok {
			return fail("array %q has no ALIGN directive", name)
		}
		if m.DistributedDim() != 1 {
			return fail("array %q must be distributed along dimension 2 (column-block)", name)
		}
	}
	an.Transpose = &TransposeAnalysis{Src: src, Dst: dst}
	an.Comm = fmt.Sprintf(
		"FORALL %s(1:n,%s) = %s(%s,1:n) transposes across the distributed dimension: "+
			"every element changes owner -> collective all-to-all redistribution of %s into %s",
		dst, fa.Var, src, fa.Var, src, dst)
	return nil
}

// ---------------------------------------------------------------------------
// Out-of-core phase

// emitTranspose compiles the transpose to a collective redistribution,
// choosing the destination write strategy with the Figure 14 machinery
// over the closed-form collio candidates.
func emitTranspose(an *Analysis, opts Options, mach sim.Config) (*Result, error) {
	n, p := an.N, an.Procs
	g := cost.TransposeParams{N: n, P: p, MemElems: opts.MemElems}
	cands := cost.TransposeCandidates(g)
	chosen := cost.Select(cands, mach)
	switch opts.Force {
	case "":
	case "direct":
		chosen = 0
	case "sieved":
		chosen = 1
	case "two-phase", "twophase":
		chosen = 2
	default:
		return nil, fmt.Errorf("compiler: unknown forced strategy %q (transpose wants direct, sieved or two-phase)", opts.Force)
	}
	method := cands[chosen].Label

	src, dst := an.Transpose.Src, an.Transpose.Dst
	spec := func(name string, role plan.Role) plan.ArraySpec {
		m := an.Mappings[name]
		return plan.ArraySpec{
			Name: name, Rows: n, Cols: n,
			RowScheme: m.Dims[0].Scheme, ColScheme: m.Dims[1].Scheme,
			Role: role, SlabElems: opts.MemElems / 2, SlabDim: oocarray.ByColumn,
		}
	}
	prg := &plan.Program{
		Name:     "transpose",
		N:        n,
		Procs:    p,
		Strategy: method,
		Arrays:   []plan.ArraySpec{spec(src, plan.In), spec(dst, plan.Out)},
		Body: []plan.Node{&plan.Redistribute{
			Src: src, Dst: dst, Transpose: true, Method: method, MemElems: opts.MemElems,
		}},
	}
	prg.Notes = append(prg.Notes, an.Comm)
	for i, c := range cands {
		mark := ""
		if i == chosen {
			mark = " [selected]"
		}
		prg.Notes = append(prg.Notes, fmt.Sprintf("candidate %s: est. I/O+comm %.2fs, %d requests, %d elems%s",
			c.Label, c.Seconds(mach), c.TotalRequests(), c.TotalElems(), mark))
	}
	return &Result{
		Program:    prg,
		Analysis:   an,
		Candidates: cands,
		Chosen:     chosen,
		Report:     cost.Report(cands, chosen, mach),
	}, nil
}
