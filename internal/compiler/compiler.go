// Package compiler translates mini-HPF programs into out-of-core node
// programs (plan.Program), following the paper's two-phase methodology:
//
// In-core phase (Section 3.2): evaluate the mapping directives, partition
// each array into out-of-core local arrays, compute local bounds, and
// detect the communication the statement pattern requires (here: the SUM
// reduction across the distributed dimension, delivered to the owner of
// the result column).
//
// Out-of-core phase (Sections 3.3 and 4): strip-mine the computation into
// slabs that fit the node memory, enumerate candidate access
// reorganizations, estimate each candidate's I/O cost (package cost),
// select the cheapest (the Figure 14 algorithm), divide memory among the
// competing arrays (Section 4.2.1), and emit the node + MP + I/O program.
package compiler

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

// MemPolicy selects how node memory is divided among the out-of-core
// arrays (Section 4.2.1).
type MemPolicy int

// Memory allocation policies.
const (
	// PolicyEven splits memory equally among the streamed arrays.
	PolicyEven MemPolicy = iota
	// PolicyWeighted splits memory proportionally to each array's
	// access frequency (pass count) — the paper's heuristic.
	PolicyWeighted
	// PolicySearch searches slab-size splits and keeps the one with the
	// least estimated I/O time — the exhaustive form of Table 2.
	PolicySearch
)

// String names the policy.
func (p MemPolicy) String() string {
	switch p {
	case PolicyEven:
		return "even"
	case PolicyWeighted:
		return "weighted"
	case PolicySearch:
		return "search"
	default:
		return fmt.Sprintf("MemPolicy(%d)", int(p))
	}
}

// Options configures a compilation.
type Options struct {
	// Procs overrides the program's processor-count parameter (0 keeps
	// the program's value).
	Procs int
	// N overrides the program's problem-size parameter (0 keeps it).
	N int
	// MemElems is the node memory available for slabs, in elements.
	MemElems int
	// Machine is the target machine model for cost estimation; the zero
	// value means sim.Delta(procs).
	Machine sim.Config
	// Policy selects the memory allocation scheme.
	Policy MemPolicy
	// Force pins the strategy ("row-slab" or "column-slab"); empty lets
	// the cost model decide.
	Force string
	// Sieve compiles row-slab transfers to use data sieving.
	Sieve bool
}

// Pattern identifies the recognized statement class.
type Pattern int

// Recognized patterns.
const (
	// PatternGaxpy is the paper's reduction pattern (Figure 3).
	PatternGaxpy Pattern = iota
	// PatternEwise is a body of communication-free elementwise FORALLs.
	PatternEwise
	// PatternShift is a body of FORALLs with shifted column references,
	// requiring boundary-column exchange.
	PatternShift
	// PatternTranspose is a single FORALL storing one array's rows into
	// another's columns — an out-of-core transpose compiled to a
	// collective redistribution.
	PatternTranspose
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternEwise:
		return "elementwise"
	case PatternShift:
		return "shifted"
	case PatternTranspose:
		return "transpose"
	default:
		return "gaxpy"
	}
}

// Analysis is the in-core phase result: the resolved problem and mapping
// information plus the detected communication.
type Analysis struct {
	N       int
	Procs   int
	Pattern Pattern
	// GridShape is the processor arrangement (one entry per axis).
	GridShape []int
	// A, B, C and Temp are the roles recognized in the GAXPY pattern,
	// naming the source arrays.
	A, B, C, Temp string
	// Mappings holds the per-array HPF mappings.
	Mappings map[string]*dist.Array
	// ReduceDim is the SUM dimension (1-based, as written).
	ReduceDim int
	// Ewise holds the analysis of an elementwise program (PatternEwise).
	Ewise *EwiseAnalysis
	// Shift holds the analysis of a shifted-FORALL program
	// (PatternShift).
	Shift *ShiftAnalysis
	// Transpose holds the analysis of a transpose program
	// (PatternTranspose).
	Transpose *TransposeAnalysis
	// Comm describes the detected communication.
	Comm string
}

// Result is a completed compilation.
type Result struct {
	Program    *plan.Program
	Analysis   *Analysis
	Candidates []cost.Candidate
	Chosen     int
	// Report is the human-readable cost comparison.
	Report string
}

// Compile runs both phases on a parsed program.
func Compile(prog *hpf.Program, opts Options) (*Result, error) {
	an, err := analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	// The "!hpf$ memory (m)" annotation provides the node memory when the
	// caller does not; explicit options win.
	if opts.MemElems <= 0 && prog.Memory != nil {
		mem, err := hpf.Eval(prog.Memory, hpf.ParamEnv(prog))
		if err != nil {
			return nil, fmt.Errorf("compiler: memory directive: %w", err)
		}
		opts.MemElems = mem
	}
	if opts.MemElems <= 0 {
		return nil, fmt.Errorf("compiler: MemElems must be positive (set Options.MemElems or add a !hpf$ memory directive)")
	}
	// The "!hpf$ out_of_core" annotation, when present, must cover every
	// array the program maps (the companion PASSION work has programmers
	// mark out-of-core arrays explicitly).
	if len(prog.OutOfCore) > 0 {
		marked := make(map[string]bool, len(prog.OutOfCore))
		for _, name := range prog.OutOfCore {
			if _, ok := prog.Array(name); !ok {
				return nil, fmt.Errorf("compiler: out_of_core names undeclared array %q", name)
			}
			marked[name] = true
		}
		for name := range an.Mappings {
			if !marked[name] {
				return nil, fmt.Errorf("compiler: array %q is used but not listed in the out_of_core directive", name)
			}
		}
	}
	mach := opts.Machine
	if mach.Procs == 0 {
		mach = sim.Delta(an.Procs)
	}
	mach.Procs = an.Procs
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	switch an.Pattern {
	case PatternEwise:
		return emitEwise(an, opts, mach)
	case PatternShift:
		return emitShift(an, opts, mach)
	case PatternTranspose:
		return emitTranspose(an, opts, mach)
	default:
		return emitGaxpy(an, opts, mach)
	}
}

// CompileSource parses and compiles in one step.
func CompileSource(src string, opts Options) (*Result, error) {
	prog, err := hpf.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, opts)
}

// ---------------------------------------------------------------------------
// In-core phase

func analyze(prog *hpf.Program, opts Options) (*Analysis, error) {
	env := hpf.ParamEnv(prog)

	// Apply overrides by rebinding the parameters named in the
	// PROCESSORS and TEMPLATE directives.
	if prog.Processors == nil {
		return nil, fmt.Errorf("compiler: missing !hpf$ processors directive")
	}
	if prog.Template == nil {
		return nil, fmt.Errorf("compiler: missing !hpf$ template directive")
	}
	if prog.Distribute == nil {
		return nil, fmt.Errorf("compiler: missing !hpf$ distribute directive")
	}
	if opts.Procs > 0 {
		if len(prog.Processors.Sizes) != 1 {
			return nil, fmt.Errorf("compiler: cannot override the processor count of a multi-dimensional grid")
		}
		if id, ok := prog.Processors.Size().(*hpf.Ident); ok {
			env[id.Name] = opts.Procs
		} else {
			return nil, fmt.Errorf("compiler: cannot override a literal processor count")
		}
	}
	if opts.N > 0 {
		if id, ok := prog.Template.Size().(*hpf.Ident); ok {
			env[id.Name] = opts.N
		} else {
			return nil, fmt.Errorf("compiler: cannot override a literal template extent")
		}
	}

	// Processor arrangement: a 1-D count or a multi-dimensional grid.
	gridShape := make([]int, 0, len(prog.Processors.Sizes))
	procs := 1
	for i, e := range prog.Processors.Sizes {
		v, err := hpf.Eval(e, env)
		if err != nil {
			return nil, fmt.Errorf("compiler: processors extent %d: %w", i+1, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("compiler: processors extent %d is %d", i+1, v)
		}
		gridShape = append(gridShape, v)
		procs *= v
	}

	// Template: every extent must be the problem size n.
	var n int
	for i, e := range prog.Template.Sizes {
		v, err := hpf.Eval(e, env)
		if err != nil {
			return nil, fmt.Errorf("compiler: template extent %d: %w", i+1, err)
		}
		if i == 0 {
			n = v
		} else if v != n {
			return nil, fmt.Errorf("compiler: non-square templates are not supported (%d vs %d)", v, n)
		}
	}
	if procs <= 0 || n <= 0 {
		return nil, fmt.Errorf("compiler: nonpositive problem: n=%d procs=%d", n, procs)
	}
	tdims := len(prog.Template.Sizes)
	if tdims != len(gridShape) {
		return nil, fmt.Errorf("compiler: template has %d dimensions but the processor arrangement has %d",
			tdims, len(gridShape))
	}
	for axis, extent := range gridShape {
		if n%extent != 0 {
			return nil, fmt.Errorf("compiler: n=%d must be a multiple of processor-grid axis %d (%d)", n, axis, extent)
		}
	}
	if prog.Distribute.Template != prog.Template.Name {
		return nil, fmt.Errorf("compiler: distribute names template %q, declared template is %q",
			prog.Distribute.Template, prog.Template.Name)
	}
	if prog.Distribute.Procs != prog.Processors.Name {
		return nil, fmt.Errorf("compiler: distribute targets %q, declared processors are %q",
			prog.Distribute.Procs, prog.Processors.Name)
	}
	if len(prog.Distribute.Schemes) != tdims {
		return nil, fmt.Errorf("compiler: distribute has %d schemes for a %d-dimensional template",
			len(prog.Distribute.Schemes), tdims)
	}
	for _, scheme := range prog.Distribute.Schemes {
		if scheme != "block" {
			return nil, fmt.Errorf("compiler: only BLOCK distribution is supported for out-of-core arrays, got %q", scheme)
		}
	}

	// Partition every aligned array: '*' axes collapse, ':' axes take
	// the template's distributed axes in order.
	mappings := make(map[string]*dist.Array)
	for _, al := range prog.Aligns {
		if al.With != prog.Template.Name {
			return nil, fmt.Errorf("compiler: align with unknown template %q", al.With)
		}
		aligned := 0
		for _, ax := range al.Pattern {
			if ax == hpf.AxisAligned {
				aligned++
			}
		}
		if aligned != tdims {
			return nil, fmt.Errorf("compiler: align pattern must align exactly %d axis/axes with the template, got %d",
				tdims, aligned)
		}
		for _, name := range al.Arrays {
			decl, ok := prog.Array(name)
			if !ok {
				return nil, fmt.Errorf("compiler: align names undeclared array %q", name)
			}
			if len(decl.Dims) != len(al.Pattern) {
				return nil, fmt.Errorf("compiler: array %q has %d dims, align pattern has %d",
					name, len(decl.Dims), len(al.Pattern))
			}
			maps := make([]dist.Map, len(decl.Dims))
			axis := 0
			for i, dim := range decl.Dims {
				extent, err := hpf.Eval(dim, env)
				if err != nil {
					return nil, fmt.Errorf("compiler: array %q dim %d: %w", name, i+1, err)
				}
				if extent != n {
					return nil, fmt.Errorf("compiler: array %q dim %d has extent %d; only n x n arrays (n=%d) are supported",
						name, i+1, extent, n)
				}
				if al.Pattern[i] == hpf.AxisCollapsed {
					maps[i] = dist.NewCollapsed(extent)
				} else {
					maps[i] = dist.NewBlock(extent, gridShape[axis])
					axis++
				}
			}
			var da *dist.Array
			var err error
			if tdims > 1 {
				da, err = dist.NewGridArray(name, dist.NewGrid(gridShape...), maps...)
			} else {
				da, err = dist.NewArray(name, maps...)
			}
			if err != nil {
				return nil, err
			}
			mappings[name] = da
		}
	}

	an := &Analysis{N: n, Procs: procs, GridShape: gridShape, Mappings: mappings}
	errGaxpy := matchGaxpy(prog, env, an)
	if errGaxpy == nil {
		an.Pattern = PatternGaxpy
		return an, nil
	}
	errEwise := matchEwise(prog, env, an)
	if errEwise == nil {
		an.Pattern = PatternEwise
		return an, nil
	}
	errShift := matchShift(prog, env, an)
	if errShift == nil {
		an.Pattern = PatternShift
		return an, nil
	}
	errTranspose := matchTranspose(prog, env, an)
	if errTranspose == nil {
		an.Pattern = PatternTranspose
		return an, nil
	}
	return nil, fmt.Errorf("compiler: program matches no supported pattern\n  as gaxpy: %v\n  as elementwise: %v\n  as shifted: %v\n  as transpose: %v", errGaxpy, errEwise, errShift, errTranspose)
}

// matchGaxpy recognizes the paper's statement pattern:
//
//	do j = 1, n
//	  FORALL (k = 1:n)
//	    temp(1:n, k) = b(k, j) * a(1:n, k)
//	  end FORALL
//	  c(1:n, j) = SUM(temp, 2)
//	end do
//
// and performs the communication analysis on it.
func matchGaxpy(prog *hpf.Program, env map[string]int, an *Analysis) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("compiler: unsupported program shape: "+format, args...)
	}
	if len(an.GridShape) != 1 {
		return fail("the GAXPY pattern requires a 1-D processor arrangement")
	}
	if len(prog.Body) != 1 {
		return fail("expected a single outer do loop, found %d statements", len(prog.Body))
	}
	do, ok := prog.Body[0].(*hpf.DoLoop)
	if !ok {
		return fail("outer statement must be a do loop")
	}
	if !spansWholeExtent(do.Lo, do.Hi, env, an.N) {
		return fail("outer do must run 1..n")
	}
	if len(do.Body) != 2 {
		return fail("do body must be a FORALL followed by a reduction assignment")
	}
	fa, ok := do.Body[0].(*hpf.Forall)
	if !ok {
		return fail("first statement in the do loop must be a FORALL")
	}
	if !spansWholeExtent(fa.Lo, fa.Hi, env, an.N) {
		return fail("FORALL must run 1..n")
	}
	if len(fa.Body) != 1 {
		return fail("FORALL body must be a single assignment")
	}
	asg := fa.Body[0].(*hpf.Assign)

	// LHS: temp(1:n, k).
	if len(asg.LHS.Subs) != 2 || !asg.LHS.Subs[0].IsRange() || asg.LHS.Subs[1].IsRange() {
		return fail("FORALL assignment target must be temp(1:n, k)")
	}
	if !isVar(asg.LHS.Subs[1].Index, fa.Var) {
		return fail("FORALL target's column subscript must be the FORALL index %q", fa.Var)
	}
	an.Temp = asg.LHS.Array

	// RHS: scalar * section (in either order).
	mul, ok := asg.RHS.(*hpf.BinOp)
	if !ok || mul.Op != '*' {
		return fail("FORALL right-hand side must be a product")
	}
	scalar, section := classifyProduct(mul)
	if scalar == nil || section == nil {
		return fail("FORALL product must combine a scalar reference with an array section")
	}
	// Scalar b(k, j): row subscript is the FORALL index, column the
	// outer do index.
	if len(scalar.Subs) != 2 || !isVar(scalar.Subs[0].Index, fa.Var) || !isVar(scalar.Subs[1].Index, do.Var) {
		return fail("scalar operand must be %s(%s, %s)", scalar.Array, fa.Var, do.Var)
	}
	// Section a(1:n, k).
	if len(section.Subs) != 2 || !section.Subs[0].IsRange() || !isVar(section.Subs[1].Index, fa.Var) {
		return fail("section operand must be %s(1:n, %s)", section.Array, fa.Var)
	}
	an.B = scalar.Array
	an.A = section.Array

	// Reduction statement: c(1:n, j) = SUM(temp, 2).
	red, ok := do.Body[1].(*hpf.Assign)
	if !ok {
		return fail("second statement in the do loop must be an assignment")
	}
	sum, ok := red.RHS.(*hpf.SumIntrinsic)
	if !ok {
		return fail("reduction right-hand side must be SUM(...)")
	}
	if sum.Arg.Array != an.Temp {
		return fail("SUM must reduce the FORALL temporary %q, got %q", an.Temp, sum.Arg.Array)
	}
	dim, err := hpf.Eval(sum.Dim, env)
	if err != nil || dim != 2 {
		return fail("SUM dimension must be the constant 2")
	}
	an.ReduceDim = dim
	if len(red.LHS.Subs) != 2 || !red.LHS.Subs[0].IsRange() || red.LHS.Subs[1].IsRange() ||
		!isVar(red.LHS.Subs[1].Index, do.Var) {
		return fail("reduction target must be c(1:n, %s)", do.Var)
	}
	an.C = red.LHS.Array

	// Communication analysis. The required mappings for this pattern:
	// a, c, temp distributed along dim 2 (column-block), b along dim 1
	// (row-block), so the FORALL needs no communication and the SUM is a
	// cross-processor global reduction delivered to the owner of the
	// result column.
	for _, name := range []string{an.A, an.B, an.C, an.Temp} {
		if _, ok := an.Mappings[name]; !ok {
			return fail("array %q has no ALIGN directive", name)
		}
	}
	if an.Mappings[an.A].DistributedDim() != 1 || an.Mappings[an.C].DistributedDim() != 1 ||
		an.Mappings[an.Temp].DistributedDim() != 1 {
		return fail("%s, %s and %s must be distributed along dimension 2 (column-block)", an.A, an.C, an.Temp)
	}
	if an.Mappings[an.B].DistributedDim() != 0 {
		return fail("%s must be distributed along dimension 1 (row-block)", an.B)
	}
	an.Comm = fmt.Sprintf(
		"FORALL is communication-free (owner computes on local %s columns paired with local %s rows); "+
			"SUM(%s,2) reduces across the distributed dimension -> global sum; "+
			"owner of %s's column stores the result",
		an.A, an.B, an.Temp, an.C)
	return nil
}

// classifyProduct splits a product into its scalar reference (both
// subscripts are single indices) and its section reference (has a range).
func classifyProduct(mul *hpf.BinOp) (scalar, section *hpf.SectionRef) {
	classify := func(e hpf.Expr) {
		ref, ok := e.(*hpf.SectionRef)
		if !ok {
			return
		}
		hasRange := false
		for _, s := range ref.Subs {
			if s.IsRange() {
				hasRange = true
			}
		}
		if hasRange {
			section = ref
		} else {
			scalar = ref
		}
	}
	classify(mul.L)
	classify(mul.R)
	return scalar, section
}

func isVar(e hpf.Expr, name string) bool {
	id, ok := e.(*hpf.Ident)
	return ok && id.Name == name
}

// spansWholeExtent reports whether lo..hi evaluates to 1..n.
func spansWholeExtent(lo, hi hpf.Expr, env map[string]int, n int) bool {
	l, err1 := hpf.Eval(lo, env)
	h, err2 := hpf.Eval(hi, env)
	return err1 == nil && err2 == nil && l == 1 && h == n
}

// ---------------------------------------------------------------------------
// Out-of-core phase

func emitGaxpy(an *Analysis, opts Options, mach sim.Config) (*Result, error) {
	n, p := an.N, an.Procs
	colElems := n // one column of an n x n array
	// C is written exactly once in both strategies; reserve a single
	// column-slab for it and divide the rest between A and B.
	slabC := colElems
	budget := opts.MemElems - slabC
	if budget < 2 {
		return nil, fmt.Errorf("compiler: MemElems=%d leaves no slab memory after C's column (%d elements)",
			opts.MemElems, slabC)
	}

	allocate := func(strategy func(cost.GaxpyParams) cost.Candidate) (slabA, slabB int) {
		switch opts.Policy {
		case PolicyWeighted:
			// The paper's heuristic keys on how often the computation
			// accesses each array, which the unreorganized reference
			// pattern exposes: A's local array is needed for every one
			// of the N result columns, B once (Section 4.2.1).
			even := budget / 2
			ref := cost.GaxpyColumnSlab(cost.GaxpyParams{N: n, P: p, SlabA: even, SlabB: even, SlabC: slabC})
			w := cost.Frequencies(ref)
			split := cost.WeightedSplit(budget, w[:2], colElems)
			return split[0], split[1]
		case PolicySearch:
			step := colElems
			if budget < 2*step {
				step = 1
			}
			return cost.Allocate2(budget, step, func(ma, mb int) float64 {
				g := cost.GaxpyParams{N: n, P: p, SlabA: ma, SlabB: mb, SlabC: slabC, Sieve: opts.Sieve}
				return strategy(g).Seconds(mach)
			})
		default: // PolicyEven
			return budget / 2, budget - budget/2
		}
	}

	// Build both candidates, each under its own allocation.
	colA, colB := allocate(cost.GaxpyColumnSlab)
	rowA, rowB := allocate(cost.GaxpyRowSlab)
	cands := []cost.Candidate{
		cost.GaxpyColumnSlab(cost.GaxpyParams{N: n, P: p, SlabA: colA, SlabB: colB, SlabC: slabC, Sieve: opts.Sieve}),
		cost.GaxpyRowSlab(cost.GaxpyParams{N: n, P: p, SlabA: rowA, SlabB: rowB, SlabC: slabC, Sieve: opts.Sieve}),
	}
	allocs := [][2]int{{colA, colB}, {rowA, rowB}}

	chosen := cost.Select(cands, mach)
	switch opts.Force {
	case "":
	case "column-slab":
		chosen = 0
	case "row-slab":
		chosen = 1
	default:
		return nil, fmt.Errorf("compiler: unknown forced strategy %q", opts.Force)
	}
	slabA, slabB := allocs[chosen][0], allocs[chosen][1]

	prg := buildProgram(an, cands[chosen].Label, slabA, slabB, slabC)
	prg.Notes = append(prg.Notes, an.Comm)
	if ocla := n * n / p; slabA >= ocla && slabB >= ocla {
		prg.Notes = append(prg.Notes,
			"slabs cover the whole out-of-core local arrays: the program degenerates to the in-core translation (each array read from disk once)")
	}
	prg.Notes = append(prg.Notes,
		fmt.Sprintf("memory policy %s: slab(%s)=%d, slab(%s)=%d, slab(%s)=%d elements",
			opts.Policy, an.A, slabA, an.B, slabB, an.C, slabC))
	for i, c := range cands {
		mark := ""
		if i == chosen {
			mark = " [selected]"
		}
		prg.Notes = append(prg.Notes, fmt.Sprintf("candidate %s: est. I/O %.2fs, %d fetches, %d elems%s",
			c.Label, c.Seconds(mach), c.TotalFetches(), c.TotalElems(), mark))
	}

	return &Result{
		Program:    prg,
		Analysis:   an,
		Candidates: cands,
		Chosen:     chosen,
		Report:     cost.Report(cands, chosen, mach),
	}, nil
}

// buildProgram emits the IR for the chosen strategy.
func buildProgram(an *Analysis, strategy string, slabA, slabB, slabC int) *plan.Program {
	n, p := an.N, an.Procs
	spec := func(name string, role plan.Role, slab int, dim oocarray.Dim) plan.ArraySpec {
		m := an.Mappings[name]
		return plan.ArraySpec{
			Name: name, Rows: n, Cols: n,
			RowScheme: m.Dims[0].Scheme, ColScheme: m.Dims[1].Scheme,
			Role: role, SlabElems: slab, SlabDim: dim,
		}
	}
	prg := &plan.Program{
		Name:     "gaxpy",
		N:        n,
		Procs:    p,
		Strategy: strategy,
	}
	a, b, c := an.A, an.B, an.C
	bufA, bufB, stage, temp := "icla_"+a, "icla_"+b, "icla_"+c, "temp"
	if strategy == "column-slab" {
		prg.Arrays = []plan.ArraySpec{
			spec(a, plan.In, slabA, oocarray.ByColumn),
			spec(b, plan.In, slabB, oocarray.ByColumn),
			spec(c, plan.Out, slabC, oocarray.ByColumn),
		}
		prg.Body = []plan.Node{
			&plan.AutoStage{Array: c},
			&plan.ResetCounter{},
			&plan.Loop{Var: "l", Count: plan.CountExpr{SlabsOf: b}, Body: []plan.Node{
				&plan.ReadSlab{Array: b, Index: "l", Buf: bufB, Stream: true},
				&plan.Loop{Var: "m", Count: plan.CountExpr{ColsOf: bufB}, Body: []plan.Node{
					&plan.ZeroVec{Vec: temp, RowsOfArray: a},
					&plan.Loop{Var: "na", Count: plan.CountExpr{SlabsOf: a}, Body: []plan.Node{
						&plan.ReadSlab{Array: a, Index: "na", Buf: bufA, Stream: true},
						&plan.Loop{Var: "i", Count: plan.CountExpr{ColsOf: bufA}, Body: []plan.Node{
							&plan.Axpy{Vec: temp, A: bufA, ACol: "i",
								B: bufB, BRowBase: "na", BRowScale: a, BRowPlus: "i", BCol: "m"},
						}},
					}},
					&plan.SumStore{Vec: temp, Array: c},
				}},
			}},
			&plan.FlushStage{Array: c},
		}
		return prg
	}
	// Row-slab (Figure 12).
	prg.Arrays = []plan.ArraySpec{
		spec(a, plan.In, slabA, oocarray.ByRow),
		spec(b, plan.In, slabB, oocarray.ByColumn),
		spec(c, plan.Out, slabC, oocarray.ByColumn),
	}
	prg.Body = []plan.Node{
		&plan.Loop{Var: "l", Count: plan.CountExpr{SlabsOf: a}, Body: []plan.Node{
			&plan.ReadSlab{Array: a, Index: "l", Buf: bufA, Stream: true},
			&plan.NewStaging{Array: c, Buf: stage, RowsLike: bufA},
			&plan.ResetCounter{},
			&plan.Loop{Var: "nb", Count: plan.CountExpr{SlabsOf: b}, Body: []plan.Node{
				&plan.ReadSlab{Array: b, Index: "nb", Buf: bufB, Stream: true},
				&plan.Loop{Var: "m", Count: plan.CountExpr{ColsOf: bufB}, Body: []plan.Node{
					&plan.ZeroVec{Vec: temp, RowsLike: bufA},
					&plan.Loop{Var: "i", Count: plan.CountExpr{ColsOf: bufA}, Body: []plan.Node{
						&plan.Axpy{Vec: temp, A: bufA, ACol: "i",
							B: bufB, BRowPlus: "i", BCol: "m"},
					}},
					&plan.SumStore{Vec: temp, Array: c},
				}},
			}},
			&plan.WriteBuf{Array: c, Buf: stage},
		}},
	}
	return prg
}
