package compiler

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

func TestTransposeRecognized(t *testing.T) {
	res, err := CompileSource(hpf.TransposeSource, Options{MemElems: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if an.Pattern != PatternTranspose {
		t.Fatalf("pattern = %v", an.Pattern)
	}
	if an.Transpose == nil || an.Transpose.Src != "a" || an.Transpose.Dst != "b" {
		t.Fatalf("analysis = %+v", an.Transpose)
	}
	if !strings.Contains(an.Comm, "all-to-all") {
		t.Errorf("comm analysis: %q", an.Comm)
	}
	if len(res.Program.Body) != 1 {
		t.Fatalf("body = %v", res.Program.Body)
	}
	rd, ok := res.Program.Body[0].(*plan.Redistribute)
	if !ok {
		t.Fatalf("body node = %T", res.Program.Body[0])
	}
	if rd.Src != "a" || rd.Dst != "b" || !rd.Transpose || rd.MemElems != 1<<10 {
		t.Fatalf("redistribute node = %+v", rd)
	}
	if rd.Method != res.Program.Strategy {
		t.Fatalf("method %q vs strategy %q", rd.Method, res.Program.Strategy)
	}
	if !strings.Contains(res.Program.String(), "collective_transpose") {
		t.Errorf("pretty print:\n%s", res.Program.String())
	}
}

func TestTransposeForceStrategy(t *testing.T) {
	for _, method := range []string{"direct", "sieved", "two-phase"} {
		res, err := CompileSource(hpf.TransposeSource, Options{MemElems: 1 << 10, Force: method})
		if err != nil {
			t.Fatal(err)
		}
		if res.Program.Strategy != method {
			t.Errorf("forced %q, compiled %q", method, res.Program.Strategy)
		}
	}
	if _, err := CompileSource(hpf.TransposeSource, Options{MemElems: 1 << 10, Force: "row-slab"}); err == nil {
		t.Error("foreign strategy accepted for the transpose pattern")
	}
}

func TestTransposeSelectionTracksMachine(t *testing.T) {
	// Tight memory on the Delta: fragmented direct writes are hopeless.
	res, err := CompileSource(hpf.TransposeSource, Options{N: 256, Procs: 4, MemElems: 16 * 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Strategy == "direct" {
		t.Errorf("direct selected under 15ms request overhead")
	}
	// Zero request overhead: direct's single-pass volume wins back.
	free := sim.Delta(4)
	free.DiskRequestOverhead = 0
	res, err = CompileSource(hpf.TransposeSource, Options{N: 256, Procs: 4, MemElems: 16 * 256, Machine: free})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Strategy != "direct" {
		t.Errorf("strategy = %s with free requests", res.Program.Strategy)
	}
}

func TestTransposeRejectsNonMatching(t *testing.T) {
	bad := []struct{ name, src string }{
		{"same array", `parameter (n=8, nprocs=2)
real a(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a
FORALL (k=1:n)
  a(1:n,k) = a(k,1:n)
end FORALL
end
`},
		{"not transposed", `parameter (n=8, nprocs=2)
real a(n,n), b(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, b
FORALL (k=1:n)
  b(1:n,k) = a(1:n,k) + a(1:n,k)
end FORALL
end
`},
	}
	for _, tc := range bad {
		if res, err := CompileSource(tc.src, Options{MemElems: 1 << 10}); err == nil &&
			res.Analysis.Pattern == PatternTranspose {
			t.Errorf("%s recognized as transpose", tc.name)
		}
	}
}
