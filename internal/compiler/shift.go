package compiler

// The shifted-FORALL pattern class: FORALL statements whose column
// subscripts are the loop index plus a constant, e.g.
//
//	FORALL (k = 2:n-1)
//	  z(1:n,k) = (x(1:n,k-1) + x(1:n,k+1)) / 2
//	end FORALL
//
// With the arrays distributed column-block, a shifted reference may fall
// on the neighboring processor — the communication-detection case of the
// in-core phase. The compiler emits a self-contained node per statement:
// boundary-column exchange (shift communication) followed by a
// halo-augmented column-slab sweep.

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

// ShiftStmt is one analyzed shifted-FORALL assignment.
type ShiftStmt struct {
	Out    string
	Ins    []string
	Lo, Hi int // 0-based inclusive global column bounds
	Expr   plan.EExpr
	// MinShift and MaxShift bound the column offsets of the inputs.
	MinShift, MaxShift int
}

// ShiftAnalysis is the in-core phase result for the shifted pattern.
type ShiftAnalysis struct {
	Stmts  []ShiftStmt
	Arrays []string
}

// matchShift recognizes a body of FORALLs with shifted column references.
func matchShift(prog *hpf.Program, env map[string]int, an *Analysis) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("not a shifted-FORALL program: "+format, args...)
	}
	if len(an.GridShape) != 1 {
		return fail("shift communication requires a 1-D processor arrangement")
	}
	if len(prog.Body) == 0 {
		return fail("empty body")
	}
	sh := &ShiftAnalysis{}
	seen := map[string]bool{}
	addArray := func(name string) error {
		m, ok := an.Mappings[name]
		if !ok {
			return fail("array %q has no ALIGN directive", name)
		}
		if m.DistributedDim() != 1 {
			return fail("array %q must be distributed column-block", name)
		}
		if !seen[name] {
			seen[name] = true
			sh.Arrays = append(sh.Arrays, name)
		}
		return nil
	}

	for _, st := range prog.Body {
		fa, ok := st.(*hpf.Forall)
		if !ok {
			return fail("statement %T is not a FORALL", st)
		}
		lo, err1 := hpf.Eval(fa.Lo, env)
		hi, err2 := hpf.Eval(fa.Hi, env)
		if err1 != nil || err2 != nil || lo < 1 || hi > an.N || lo > hi {
			return fail("FORALL bounds must be constants within 1..n")
		}
		for _, inner := range fa.Body {
			asg := inner.(*hpf.Assign)
			if err := checkShiftRef(asg.LHS, fa.Var, env, an.N, 0); err != nil {
				return fail("target %s: %v", asg.LHS.String(), err)
			}
			stmt := ShiftStmt{Out: asg.LHS.Array, Lo: lo - 1, Hi: hi - 1}
			if err := addArray(stmt.Out); err != nil {
				return err
			}
			expr, err := compileShiftExpr(asg.RHS, fa.Var, env, an, &stmt, addArray)
			if err != nil {
				return err
			}
			stmt.Expr = expr
			for _, in := range stmt.Ins {
				if in == stmt.Out {
					return fail("array %q appears on both sides of a shifted statement (copy-in semantics unsupported)", in)
				}
			}
			// Every referenced column must exist for every written one.
			if stmt.Lo+stmt.MinShift < 0 || stmt.Hi+stmt.MaxShift > an.N-1 {
				return fail("shifted references of %q run outside 1..n for the FORALL bounds", stmt.Out)
			}
			// Ghosts may only reach the adjacent processor.
			if w := an.N / an.Procs; -stmt.MinShift > w || stmt.MaxShift > w {
				return fail("shift magnitude exceeds a processor's block width %d", w)
			}
			sh.Stmts = append(sh.Stmts, stmt)
		}
	}
	// At least one statement must actually shift or restrict its bounds;
	// otherwise the plain elementwise pattern applies.
	interesting := false
	for _, st := range sh.Stmts {
		if st.MinShift != 0 || st.MaxShift != 0 || st.Lo != 0 || st.Hi != an.N-1 {
			interesting = true
		}
	}
	if !interesting {
		return fail("no shifted references (the elementwise pattern applies)")
	}
	an.Shift = sh
	an.Comm = "shifted column references cross the BLOCK boundaries: boundary-column exchange with the neighboring processors (shift communication), then a halo-augmented local sweep"
	return nil
}

// checkShiftRef verifies ref is name(1:n, loopVar+shift) and returns nil;
// wantShift is used for the LHS (must be exactly the loop variable).
func checkShiftRef(ref *hpf.SectionRef, loopVar string, env map[string]int, n, wantShift int) error {
	if len(ref.Subs) != 2 {
		return fmt.Errorf("want 2 subscripts, got %d", len(ref.Subs))
	}
	if !ref.Subs[0].IsRange() || !spansWholeExtent(ref.Subs[0].Lo, ref.Subs[0].Hi, env, n) {
		return fmt.Errorf("first subscript must be 1:n")
	}
	if ref.Subs[1].IsRange() {
		return fmt.Errorf("second subscript must be scalar")
	}
	s, err := colShift(ref.Subs[1].Index, loopVar, env)
	if err != nil {
		return err
	}
	if s != wantShift {
		return fmt.Errorf("column subscript must be exactly %q", loopVar)
	}
	return nil
}

// colShift extracts d from subscript expressions loopVar, loopVar+d,
// loopVar-d.
func colShift(e hpf.Expr, loopVar string, env map[string]int) (int, error) {
	switch e := e.(type) {
	case *hpf.Ident:
		if e.Name == loopVar {
			return 0, nil
		}
		return 0, fmt.Errorf("column subscript %q is not the FORALL index", e.Name)
	case *hpf.BinOp:
		id, ok := e.L.(*hpf.Ident)
		if !ok || id.Name != loopVar || (e.Op != '+' && e.Op != '-') {
			return 0, fmt.Errorf("column subscript must be %s±const", loopVar)
		}
		d, err := hpf.Eval(e.R, env)
		if err != nil {
			return 0, err
		}
		if e.Op == '-' {
			d = -d
		}
		return d, nil
	default:
		return 0, fmt.Errorf("unsupported column subscript %s", e.String())
	}
}

// compileShiftExpr lowers the RHS, recording inputs and shift bounds.
func compileShiftExpr(e hpf.Expr, loopVar string, env map[string]int, an *Analysis,
	stmt *ShiftStmt, addArray func(string) error) (plan.EExpr, error) {
	switch e := e.(type) {
	case *hpf.Num:
		return &plan.EConst{V: float64(e.Value)}, nil
	case *hpf.Ident:
		v, ok := env[e.Name]
		if !ok {
			return nil, fmt.Errorf("not a shifted-FORALL program: scalar %q is not a parameter", e.Name)
		}
		return &plan.EConst{V: float64(v)}, nil
	case *hpf.SectionRef:
		if len(e.Subs) != 2 || !e.Subs[0].IsRange() || !spansWholeExtent(e.Subs[0].Lo, e.Subs[0].Hi, env, an.N) {
			return nil, fmt.Errorf("not a shifted-FORALL program: operand %s must cover 1:n rows", e.String())
		}
		if e.Subs[1].IsRange() {
			return nil, fmt.Errorf("not a shifted-FORALL program: operand %s column subscript must be scalar", e.String())
		}
		d, err := colShift(e.Subs[1].Index, loopVar, env)
		if err != nil {
			return nil, fmt.Errorf("not a shifted-FORALL program: %v", err)
		}
		if err := addArray(e.Array); err != nil {
			return nil, err
		}
		found := false
		for _, in := range stmt.Ins {
			if in == e.Array {
				found = true
			}
		}
		if !found {
			stmt.Ins = append(stmt.Ins, e.Array)
		}
		if d < stmt.MinShift {
			stmt.MinShift = d
		}
		if d > stmt.MaxShift {
			stmt.MaxShift = d
		}
		return &plan.EBufShift{Array: e.Array, Shift: d}, nil
	case *hpf.BinOp:
		l, err := compileShiftExpr(e.L, loopVar, env, an, stmt, addArray)
		if err != nil {
			return nil, err
		}
		r, err := compileShiftExpr(e.R, loopVar, env, an, stmt, addArray)
		if err != nil {
			return nil, err
		}
		return &plan.EBin{Op: e.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("not a shifted-FORALL program: unsupported expression %s", e.String())
	}
}

// emitShift runs the out-of-core phase for the shifted pattern. Shifted
// sweeps require whole columns in memory, so only column slabs are
// generated (a row-slab sweep would re-fetch the halo per row band).
func emitShift(an *Analysis, opts Options, mach sim.Config) (*Result, error) {
	arrays := an.Shift.Arrays
	perArray := opts.MemElems / len(arrays)
	if perArray < 1 {
		return nil, fmt.Errorf("compiler: MemElems=%d cannot cover %d arrays", opts.MemElems, len(arrays))
	}
	// Cost: every array streams once in contiguous column slabs, plus
	// the halo columns (at most GhostLeft+GhostRight extra per slab).
	ocla := int64(an.N) * int64(an.N) / int64(an.Procs)
	cand := cost.Candidate{Label: "column-slab"}
	for _, name := range arrays {
		cand.Streams = append(cand.Streams, cost.Stream{
			Array: name, OCLAElems: ocla, SlabElems: int64(perArray),
			Passes: 1, ChunksPerFetch: 1,
		})
	}

	prg := &plan.Program{
		Name:     "shift",
		N:        an.N,
		Procs:    an.Procs,
		Strategy: "column-slab",
	}
	writes := map[string]bool{}
	reads := map[string]bool{}
	for _, st := range an.Shift.Stmts {
		writes[st.Out] = true
		for _, in := range st.Ins {
			reads[in] = true
		}
	}
	for _, name := range arrays {
		m := an.Mappings[name]
		role := plan.In
		if writes[name] && !reads[name] {
			role = plan.Out
		}
		prg.Arrays = append(prg.Arrays, plan.ArraySpec{
			Name: name, Rows: an.N, Cols: an.N,
			RowScheme: m.Dims[0].Scheme, ColScheme: m.Dims[1].Scheme,
			Role: role, SlabElems: perArray, SlabDim: oocarray.ByColumn,
		})
	}
	for _, st := range an.Shift.Stmts {
		prg.Body = append(prg.Body, &plan.ShiftEwise{
			Out: st.Out, Lo: st.Lo, Hi: st.Hi, Expr: st.Expr,
			GhostLeft:  max(0, -st.MinShift),
			GhostRight: max(0, st.MaxShift),
		})
	}
	prg.Notes = append(prg.Notes, an.Comm)
	prg.Notes = append(prg.Notes, fmt.Sprintf("memory: %d elements per array across %d arrays", perArray, len(arrays)))
	return &Result{
		Program:    prg,
		Analysis:   an,
		Candidates: []cost.Candidate{cand},
		Chosen:     0,
		Report:     cost.Report([]cost.Candidate{cand}, 0, mach),
	}, nil
}
