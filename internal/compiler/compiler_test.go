package compiler

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

func compileGaxpy(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := CompileSource(hpf.GaxpySource, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalysisRecognizesGaxpy(t *testing.T) {
	res := compileGaxpy(t, Options{MemElems: 1 << 12})
	an := res.Analysis
	if an.N != 64 || an.Procs != 4 {
		t.Errorf("n=%d procs=%d", an.N, an.Procs)
	}
	if an.A != "a" || an.B != "b" || an.C != "c" || an.Temp != "temp" {
		t.Errorf("roles: a=%q b=%q c=%q temp=%q", an.A, an.B, an.C, an.Temp)
	}
	if an.ReduceDim != 2 {
		t.Errorf("reduce dim = %d", an.ReduceDim)
	}
	if !strings.Contains(an.Comm, "global sum") {
		t.Errorf("communication analysis missing global sum: %q", an.Comm)
	}
	// Mappings: a column-block, b row-block.
	if an.Mappings["a"].DistributedDim() != 1 || an.Mappings["b"].DistributedDim() != 0 {
		t.Error("mappings wrong")
	}
}

func TestOverridesApplied(t *testing.T) {
	res := compileGaxpy(t, Options{N: 128, Procs: 8, MemElems: 1 << 13})
	if res.Program.N != 128 || res.Program.Procs != 8 {
		t.Errorf("program n=%d procs=%d", res.Program.N, res.Program.Procs)
	}
}

func TestCompilerSelectsRowSlab(t *testing.T) {
	// The paper's core claim: the cost model must pick the row-slab
	// reorganization for the GAXPY program.
	for _, p := range []int{4, 16, 64} {
		for _, memCols := range []int{4, 16, 64} {
			res := compileGaxpy(t, Options{N: 1024, Procs: p, MemElems: 1024 * memCols})
			if res.Program.Strategy != "row-slab" {
				t.Errorf("P=%d mem=%d cols: selected %s", p, memCols, res.Program.Strategy)
			}
			if res.Candidates[res.Chosen].Label != "row-slab" {
				t.Errorf("chosen candidate mismatch")
			}
		}
	}
}

func TestForceStrategy(t *testing.T) {
	res := compileGaxpy(t, Options{MemElems: 1 << 12, Force: "column-slab"})
	if res.Program.Strategy != "column-slab" {
		t.Errorf("force ignored: %s", res.Program.Strategy)
	}
	if _, err := CompileSource(hpf.GaxpySource, Options{MemElems: 1 << 12, Force: "diagonal"}); err == nil {
		t.Error("unknown forced strategy should fail")
	}
}

func TestEmittedRowSlabShape(t *testing.T) {
	res := compileGaxpy(t, Options{MemElems: 1 << 12})
	prg := res.Program
	if len(prg.Arrays) != 3 {
		t.Fatalf("arrays = %d", len(prg.Arrays))
	}
	a, _ := prg.Array("a")
	if a.SlabDim != oocarray.ByRow {
		t.Errorf("a strip-mined %v, want row-slab", a.SlabDim)
	}
	b, _ := prg.Array("b")
	if b.SlabDim != oocarray.ByColumn {
		t.Errorf("b strip-mined %v", b.SlabDim)
	}
	c, _ := prg.Array("c")
	if c.Role != plan.Out {
		t.Errorf("c role %v", c.Role)
	}
	// Outer loop over slabs of a.
	outer, ok := prg.Body[0].(*plan.Loop)
	if !ok || outer.Count.SlabsOf != "a" {
		t.Fatalf("row-slab program must loop over slabs of a first: %+v", prg.Body[0])
	}
	// Pretty-printing mentions the runtime calls.
	text := prg.String()
	for _, want := range []string{"read_slab(a", "read_slab(b", "global_sum", "strategy=row-slab"} {
		if !strings.Contains(text, want) {
			t.Errorf("program text missing %q:\n%s", want, text)
		}
	}
}

func TestEmittedColumnSlabShape(t *testing.T) {
	res := compileGaxpy(t, Options{MemElems: 1 << 12, Force: "column-slab"})
	prg := res.Program
	a, _ := prg.Array("a")
	if a.SlabDim != oocarray.ByColumn {
		t.Errorf("a strip-mined %v, want column-slab", a.SlabDim)
	}
	outer, ok := prg.Body[2].(*plan.Loop)
	if !ok || outer.Count.SlabsOf != "b" {
		t.Fatalf("column-slab program must loop over slabs of b: %+v", prg.Body)
	}
	if !strings.Contains(prg.String(), "auto_stage(c)") {
		t.Error("column-slab program should auto-stage c")
	}
}

func TestMemoryPolicies(t *testing.T) {
	// Memory well below the local array size (the Table 2 regime, where
	// the A-vs-B split matters).
	const mem = 512 // OCLA is 64*64/4 = 1024 elements
	even := compileGaxpy(t, Options{MemElems: mem, Policy: PolicyEven})
	a, _ := even.Program.Array("a")
	b, _ := even.Program.Array("b")
	if diff := a.SlabElems - b.SlabElems; diff < -1 || diff > 1 {
		t.Errorf("even policy split %d/%d", a.SlabElems, b.SlabElems)
	}
	for _, policy := range []MemPolicy{PolicyWeighted, PolicySearch} {
		res := compileGaxpy(t, Options{MemElems: mem, Policy: policy})
		a, _ := res.Program.Array("a")
		b, _ := res.Program.Array("b")
		if a.SlabElems <= b.SlabElems {
			t.Errorf("%v policy should favor a: %d vs %d", policy, a.SlabElems, b.SlabElems)
		}
		if a.SlabElems+b.SlabElems > mem {
			t.Errorf("%v policy overcommits memory: %d + %d > %d", policy, a.SlabElems, b.SlabElems, mem)
		}
	}
}

func TestReportListsBothCandidates(t *testing.T) {
	res := compileGaxpy(t, Options{MemElems: 1 << 12})
	if !strings.Contains(res.Report, "row-slab") || !strings.Contains(res.Report, "column-slab") {
		t.Errorf("report incomplete:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "* row-slab") {
		t.Errorf("report should mark row-slab chosen:\n%s", res.Report)
	}
	// Notes carry the decisions into the program.
	joined := strings.Join(res.Program.Notes, "\n")
	for _, want := range []string{"global sum", "memory policy", "[selected]"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"no memory", hpf.GaxpySource, Options{}},
		{"n not multiple of p", hpf.GaxpySource, Options{N: 30, MemElems: 1 << 12}},
		{"missing processors", "parameter (n=4)\nreal a(n,n)\n!hpf$ template d(n)\n!hpf$ distribute d(block) on pr\nend\n", Options{MemElems: 64}},
		{"missing template", "parameter (n=4, nprocs=2)\n!hpf$ processors pr(nprocs)\nend\n", Options{MemElems: 64}},
		{"cyclic distribution", strings.Replace(hpf.GaxpySource, "d(block)", "d(cyclic)", 1), Options{MemElems: 1 << 12}},
		{"tiny memory", hpf.GaxpySource, Options{MemElems: 10}},
		{"wrong body", "parameter (n=4, nprocs=2)\nreal a(n,n)\n!hpf$ processors pr(nprocs)\n!hpf$ template d(n)\n!hpf$ distribute d(block) on pr\n!hpf$ align (*,:) with d :: a\na(1:n,1) = a(1:n,2)\nend\n", Options{MemElems: 64}},
	}
	for _, tc := range cases {
		if _, err := CompileSource(tc.src, tc.opts); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

func TestUnsupportedShapes(t *testing.T) {
	// Swapping the distributions must be rejected by communication
	// analysis (b column-block would need different communication).
	src := strings.Replace(strings.Replace(hpf.GaxpySource,
		"align (*,:) with d :: a, c, temp", "align (:,*) with d :: a, c, temp", 1),
		"align (:,*) with d :: b", "align (*,:) with d :: b", 1)
	if _, err := CompileSource(src, Options{MemElems: 1 << 12}); err == nil {
		t.Error("swapped distributions should be rejected")
	}
}

func TestCommutedProductAccepted(t *testing.T) {
	src := strings.Replace(hpf.GaxpySource, "b(k,j)*a(1:n,k)", "a(1:n,k)*b(k,j)", 1)
	res, err := CompileSource(src, Options{MemElems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.A != "a" || res.Analysis.B != "b" {
		t.Errorf("commuted roles wrong: %+v", res.Analysis)
	}
}

func TestSieveOptionPropagates(t *testing.T) {
	plain := compileGaxpy(t, Options{MemElems: 1 << 12})
	sieved := compileGaxpy(t, Options{MemElems: 1 << 12, Sieve: true})
	// Sieving changes the row-slab candidate's request count.
	if plain.Candidates[1].TotalRequests() == sieved.Candidates[1].TotalRequests() {
		t.Error("sieve option did not affect the cost model")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyEven.String() != "even" || PolicyWeighted.String() != "weighted" || PolicySearch.String() != "search" {
		t.Error("policy names wrong")
	}
	if MemPolicy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestMachineOverride(t *testing.T) {
	// A machine with free requests but tiny bandwidth still prefers
	// row-slab (data volume dominates even more).
	mach := sim.Delta(4)
	mach.DiskRequestOverhead = 0
	res := compileGaxpy(t, Options{MemElems: 1 << 12, Machine: mach})
	if res.Program.Strategy != "row-slab" {
		t.Errorf("strategy = %s", res.Program.Strategy)
	}
}
