package serve

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromHistObserve(t *testing.T) {
	h := newPromHist([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.observe(v)
	}
	cum, count, sum := h.snapshot()
	// le=1 catches 0.5 and 1 (le is inclusive), le=10 adds 5, le=100
	// adds 50, +Inf adds 500.
	want := []int64{2, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d: cumulative %d, want %d", i, cum[i], want[i])
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if sum != 556.5 {
		t.Errorf("sum = %v, want 556.5", sum)
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), Request{N: 32, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{Machine: "cray", Tenant: `we"ird\te
nant`}); err == nil {
		t.Fatal("bad-machine submit should fail")
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := ValidatePrometheus([]byte(text)); err != nil {
		t.Fatalf("exposition does not validate:\n%v\n---\n%s", err, text)
	}
	for _, want := range []string{
		`passion_serve_jobs_total{outcome="completed"} 1`,
		`passion_serve_tenant_jobs_total{tenant="acme",outcome="completed"} 1`,
		`passion_serve_job_latency_seconds_count 1`,
		`passion_serve_queue_wait_seconds_bucket{le="+Inf"} 1`,
		`passion_serve_compile_seconds_count`,
		`passion_serve_job_footprint_bytes_count 1`,
		`tenant="we\"ird\\te\nnant"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestValidatePrometheusRejectsBadExpositions(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no type", "foo 1\n"},
		{"bad name", "# TYPE 9foo counter\n9foo 1\n"},
		{"bad type", "# TYPE foo banana\nfoo 1\n"},
		{"duplicate type", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"type after samples", "# TYPE foo counter\nfoo 1\n# HELP foo late\n"},
		{"bad value", "# TYPE foo counter\nfoo pear\n"},
		{"unquoted label", "# TYPE foo counter\nfoo{a=b} 1\n"},
		{"bad label name", "# TYPE foo counter\nfoo{9a=\"b\"} 1\n"},
		{"non-contiguous", "# TYPE foo counter\n# TYPE bar counter\nfoo 1\nbar 1\nfoo 2\n"},
		{"hist no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"hist not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
		{"hist count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"hist no sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		if err := ValidatePrometheus([]byte(tc.text)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", tc.name, tc.text)
		}
	}
	good := "# HELP foo A counter.\n# TYPE foo counter\nfoo{a=\"b\"} 1 1700000000000\n"
	if err := ValidatePrometheus([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

// TestMetricsHeaders is the regression test for the handleMetrics
// header fix: both formats must advertise a charset and must forbid
// caching a point-in-time snapshot.
func TestMetricsHeaders(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Errorf("JSON Content-Type = %q", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("JSON Cache-Control = %q, want no-store", got)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Prometheus Content-Type = %q", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("Prometheus Cache-Control = %q, want no-store", got)
	}
	if err := ValidatePrometheus(body); err != nil {
		t.Errorf("scraped exposition invalid: %v", err)
	}

	// ?format=prometheus forces the exposition without an Accept header.
	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := ValidatePrometheus(body); err != nil {
		t.Errorf("?format=prometheus exposition invalid: %v", err)
	}
}

func TestParsePromSample(t *testing.T) {
	name, labels, v, err := parsePromSample(`m{a="x,y",b="q\"z"} 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "m" || labels["a"] != "x,y" || labels["b"] != `q"z` || v != 2.5 {
		t.Fatalf("parsed %q %v %v", name, labels, v)
	}
	if _, _, v, err = parsePromSample("m +Inf"); err != nil || !math.IsInf(v, 1) {
		t.Fatalf("+Inf value: %v %v", v, err)
	}
}
