package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"github.com/ooc-hpf/passion/internal/trace"
)

// Live span streaming: a traced job's tracer feeds a streamSink, which
// renders each span as its NDJSON line into the job's jobStream — an
// append-only line log with a condition variable, so any number of
// HTTP subscribers can follow it (each from the full backlog) without
// ever back-pressuring the run. Finished streams are retained for a
// bounded window so a tail that races job completion still sees the
// whole stream plus its trailer.

// maxStreamLines bounds one job's retained stream; lines beyond it are
// dropped (and honestly counted in the trailer) rather than growing
// without bound.
const maxStreamLines = 1 << 17

// retainedStreams bounds how many finished job streams stay readable.
const retainedStreams = 32

// jobStream is one job's append-only NDJSON line log.
type jobStream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lines   [][]byte
	dropped int64 // lines rejected by maxStreamLines
	done    bool
}

func newJobStream() *jobStream {
	st := &jobStream{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// append adds one line, reporting false when the retention cap dropped
// it. The final (trailer) line is always admitted.
func (st *jobStream) append(line []byte, trailer bool) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.lines) >= maxStreamLines && !trailer {
		st.dropped++
		return false
	}
	st.lines = append(st.lines, line)
	st.cond.Broadcast()
	return true
}

// finish marks the stream complete and wakes all followers.
func (st *jobStream) finish() {
	st.mu.Lock()
	st.done = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// next blocks until a line past idx exists (returning it and idx+1) or
// the stream is done with no more lines (nil, idx). Cancelling ctx also
// returns nil.
func (st *jobStream) next(ctx context.Context, idx int) ([]byte, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	stop := context.AfterFunc(ctx, st.cond.Broadcast)
	defer stop()
	for {
		if idx < len(st.lines) {
			return st.lines[idx], idx + 1
		}
		if st.done || ctx.Err() != nil {
			return nil, idx
		}
		st.cond.Wait()
	}
}

// snapshot returns the lines accumulated so far and whether the stream
// has finished.
func (st *jobStream) snapshot() ([][]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lines[:len(st.lines):len(st.lines)], st.done
}

// streamSink adapts a jobStream to trace.Sink: spans become NDJSON
// lines as they close, and Close appends the stream trailer carrying
// exact span and drop counts (tracer-side hand-off drops plus the
// stream's own retention drops).
type streamSink struct {
	st      *jobStream
	spans   int64
	dropped int64
	err     error
}

func (k *streamSink) Emit(rank int, s trace.Span) {
	if k.err != nil {
		return
	}
	s.Rank = rank
	line, err := trace.MarshalSpan(s)
	if err != nil {
		k.err = err
		return
	}
	if k.st.append(line, false) {
		k.spans++
	}
}

func (k *streamSink) ReportDropped(n int64) { k.dropped = n }

func (k *streamSink) Flush() error { return k.err }

func (k *streamSink) Close() error {
	k.st.mu.Lock()
	capDrops := k.st.dropped
	k.st.mu.Unlock()
	tr := trace.StreamTrailer{Trailer: true, Spans: k.spans, Dropped: k.dropped + capDrops}
	if line, err := json.Marshal(tr); err == nil {
		k.st.append(line, true)
	} else if k.err == nil {
		k.err = err
	}
	k.st.finish()
	return k.err
}

// openStream registers a live stream for a traced job, retiring the
// oldest retained finished stream beyond the cap.
func (s *Server) openStream(id string) *jobStream {
	st := newJobStream()
	s.streamMu.Lock()
	if s.streams == nil {
		s.streams = make(map[string]*jobStream)
	}
	s.streams[id] = st
	s.streamOrder = append(s.streamOrder, id)
	for len(s.streamOrder) > retainedStreams {
		victim := ""
		for _, cand := range s.streamOrder {
			if cs := s.streams[cand]; cs != nil && cs != st {
				cs.mu.Lock()
				finished := cs.done
				cs.mu.Unlock()
				if finished {
					victim = cand
					break
				}
			}
		}
		if victim == "" {
			break // every retained stream is still live; keep them all
		}
		delete(s.streams, victim)
		s.streamOrder = removeString(s.streamOrder, victim)
	}
	s.streamMu.Unlock()
	return st
}

func removeString(ss []string, v string) []string {
	out := ss[:0]
	for _, x := range ss {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// stream looks up a job's span stream.
func (s *Server) stream(id string) *jobStream {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.streams[id]
}

// StreamIDs lists the jobs with a live or retained span stream, oldest
// first, with liveness.
func (s *Server) StreamIDs() []JobStreamInfo {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	out := make([]JobStreamInfo, 0, len(s.streamOrder))
	for _, id := range s.streamOrder {
		st := s.streams[id]
		if st == nil {
			continue
		}
		st.mu.Lock()
		info := JobStreamInfo{ID: id, Live: !st.done, Spans: int64(len(st.lines))}
		st.mu.Unlock()
		out = append(out, info)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// JobStreamInfo describes one entry of the GET /jobs listing.
type JobStreamInfo struct {
	ID    string `json:"id"`
	Live  bool   `json:"live"`
	Spans int64  `json:"spans"`
}

// handleJobList serves GET /jobs: the traced jobs whose span streams
// are live or retained — the discovery surface for ooc-trace tail.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.StreamIDs()})
}

// handleJobTrace serves GET /jobs/{id}/trace. Without follow it returns
// the NDJSON accumulated so far; with ?follow=1 it streams the backlog
// and then new spans as SSE events (one NDJSON line per data frame)
// until the job finishes or the client disconnects.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.stream(id)
	if st == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no span stream for job %q (not traced, or retention expired)", id))
		return
	}
	if r.URL.Query().Get("follow") == "" {
		lines, done := st.snapshot()
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Stream-Complete", strconv.FormatBool(done))
		for _, line := range lines {
			w.Write(line)
			w.Write([]byte("\n"))
		}
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()
	ctx := r.Context()
	idx := 0
	for {
		line, nxt := st.next(ctx, idx)
		if line == nil {
			break
		}
		idx = nxt
		if _, err := fmt.Fprintf(w, "data: %s\n\n", line); err != nil {
			return
		}
		flush()
	}
	fmt.Fprint(w, "event: end\ndata: {}\n\n")
	flush()
}
