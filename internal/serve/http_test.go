package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp, m
}

func TestHTTPJobRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, m := postJob(t, ts, `{"n":64,"procs":4,"mem_elems":4096,"tenant":"curl"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	for _, key := range []string{"job_id", "plan_fingerprint", "strategy", "sim_seconds", "stats"} {
		if _, ok := m[key]; !ok {
			t.Errorf("response missing %q", key)
		}
	}
	if m["tenant"] != "curl" {
		t.Errorf("tenant = %v", m["tenant"])
	}

	// Identical resubmission hits the cache and reproduces the clock.
	_, m2 := postJob(t, ts, `{"n":64,"procs":4,"mem_elems":4096,"tenant":"curl"}`)
	if m2["cache_hit"] != true {
		t.Error("second identical job should hit the plan cache")
	}
	if m2["sim_seconds"] != m["sim_seconds"] {
		t.Errorf("sim_seconds changed across identical jobs: %v vs %v", m["sim_seconds"], m2["sim_seconds"])
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := New(Config{Workers: 1, MemoryBudget: 1 << 20})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"n":`, http.StatusBadRequest},
		{"unknown field", `{"frobnicate":1}`, http.StatusBadRequest},
		{"bad machine", `{"machine":"cray"}`, http.StatusBadRequest},
		{"bad source", `{"source":"not hpf at all"}`, http.StatusBadRequest},
		{"oversize", `{"n":512,"procs":4,"mem_elems":4096}`, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		resp, m := postJob(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, m)
		}
		if m["error"] == "" {
			t.Errorf("%s: no error text", tc.name)
		}
	}

	if resp, err := http.Get(ts.URL + "/jobs"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /jobs: status %d, want 405", resp.StatusCode)
		}
	}
}

func TestHTTPHealthAndMetricsAcrossDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	httpResp, m := postJob(t, ts, `{"n":64}`)
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503 (%v)", httpResp.StatusCode, m)
	}

	// Metrics stay readable after the drain.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics Metrics
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.RejectedDraining == 0 {
		t.Error("draining rejection not counted")
	}
}
