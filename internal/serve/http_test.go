package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp, m
}

func TestHTTPJobRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, m := postJob(t, ts, `{"n":64,"procs":4,"mem_elems":4096,"tenant":"curl"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	for _, key := range []string{"job_id", "plan_fingerprint", "strategy", "sim_seconds", "stats"} {
		if _, ok := m[key]; !ok {
			t.Errorf("response missing %q", key)
		}
	}
	if m["tenant"] != "curl" {
		t.Errorf("tenant = %v", m["tenant"])
	}

	// Identical resubmission hits the cache and reproduces the clock.
	_, m2 := postJob(t, ts, `{"n":64,"procs":4,"mem_elems":4096,"tenant":"curl"}`)
	if m2["cache_hit"] != true {
		t.Error("second identical job should hit the plan cache")
	}
	if m2["sim_seconds"] != m["sim_seconds"] {
		t.Errorf("sim_seconds changed across identical jobs: %v vs %v", m["sim_seconds"], m2["sim_seconds"])
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := New(Config{Workers: 1, MemoryBudget: 1 << 20})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"n":`, http.StatusBadRequest},
		{"unknown field", `{"frobnicate":1}`, http.StatusBadRequest},
		{"bad machine", `{"machine":"cray"}`, http.StatusBadRequest},
		{"bad source", `{"source":"not hpf at all"}`, http.StatusBadRequest},
		{"oversize", `{"n":512,"procs":4,"mem_elems":4096}`, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		resp, m := postJob(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, m)
		}
		if m["error"] == "" {
			t.Errorf("%s: no error text", tc.name)
		}
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PUT /jobs: status %d, want 405", resp.StatusCode)
		}
	}
	// GET /jobs is the stream listing, not a submit surface.
	if resp, err := http.Get(ts.URL + "/jobs"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /jobs listing: status %d, want 200", resp.StatusCode)
		}
	}
}

func TestHTTPHealthAndMetricsAcrossDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	httpResp, m := postJob(t, ts, `{"n":64}`)
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503 (%v)", httpResp.StatusCode, m)
	}
	if got := httpResp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After while draining = %q, want \"1\"", got)
	}
	if ms, ok := m["retry_after_ms"].(float64); !ok || ms != 1000 {
		t.Errorf("retry_after_ms while draining = %v, want 1000", m["retry_after_ms"])
	}

	// Metrics stay readable after the drain.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics Metrics
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.RejectedDraining == 0 {
		t.Error("draining rejection not counted")
	}
}

// TestHTTPDegradedMode: a dead journal disk flips /healthz to 503 with
// a degraded flag, and job submissions get the long Retry-After hint.
func TestHTTPDegradedMode(t *testing.T) {
	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{Schedule: []iosim.ScheduledFault{
		{File: segName(1), Op: 5, Kind: iosim.KindPermanent},
	}})
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: chaos, WorkFS: iosim.NewMemFS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, m := postJob(t, ts, `{"n":32,"procs":4,"mem_elems":300}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy submit: %d (%v)", resp.StatusCode, m)
	}
	resp, m := postJob(t, ts, `{"n":32,"procs":4,"mem_elems":300,"tenant":"x"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on dead journal disk: %d, want 503 (%v)", resp.StatusCode, m)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("degraded Retry-After = %q, want \"5\"", got)
	}
	if ms, _ := m["retry_after_ms"].(float64); ms != 5000 {
		t.Errorf("degraded retry_after_ms = %v, want 5000", m["retry_after_ms"])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while degraded: %d, want 503", hresp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["degraded"] != true {
		t.Errorf("healthz body = %v, want degraded:true", health)
	}
}
