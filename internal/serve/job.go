// Package serve is the multi-tenant compile-and-run service: it accepts
// (mini-HPF program, machine spec, execution options) jobs over
// HTTP/JSON, compiles them through an LRU plan cache keyed on the
// canonical compile inputs, and executes them on a bounded worker pool
// under admission control against a host-memory budget, with per-tenant
// fair-share dispatch. Every served run is bitwise identical to the same
// program executed directly with exec.Run under the same options.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Request is one job submission. The zero value of every field is a
// usable default: the built-in GAXPY source at the CLI's default scale,
// on the paper's Delta machine, with no fault injection.
type Request struct {
	// Tenant names the submitting tenant for fair-share scheduling and
	// per-tenant accounting; empty maps to "default".
	Tenant string `json:"tenant,omitempty"`

	// Source is the mini-HPF program text; empty means the built-in
	// GAXPY program.
	Source string `json:"source,omitempty"`
	// N, Procs and MemElems are the compile parameters; zero values take
	// the CLI defaults (256, 4, 32768).
	N        int `json:"n,omitempty"`
	Procs    int `json:"procs,omitempty"`
	MemElems int `json:"mem_elems,omitempty"`
	// Force pins a strategy; Machine picks the cost model (delta or
	// modern).
	Force   string `json:"force,omitempty"`
	Machine string `json:"machine,omitempty"`

	// Execution options, mirroring the ooc-run flags of the same names.
	Sieve         bool    `json:"sieve,omitempty"`
	Prefetch      bool    `json:"prefetch,omitempty"`
	Phantom       bool    `json:"phantom,omitempty"`
	Chaos         float64 `json:"chaos,omitempty"`
	ChaosCorrupt  float64 `json:"chaos_corrupt,omitempty"`
	ChaosDiskLoss float64 `json:"chaos_disk_loss,omitempty"`
	ChaosSeed     int64   `json:"chaos_seed,omitempty"`
	LoseDisk      string  `json:"lose_disk,omitempty"`
	// Retries is the per-operation retry budget; nil means the default
	// policy when faults are injected (the CLI's -retries -1).
	Retries    *int   `json:"retries,omitempty"`
	Checkpoint int    `json:"checkpoint,omitempty"`
	Parity     bool   `json:"parity,omitempty"`
	KillRank   string `json:"kill_rank,omitempty"`

	// TimeoutMS bounds the job's execution; zero takes the server's
	// default deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace asks for a Chrome-trace-event timeline in the response.
	Trace bool `json:"trace,omitempty"`

	// IdempotencyKey makes retried submits safe across an ambiguous
	// failure: on a journaled server, a key the server has already
	// completed (or is still running) returns the original outcome with
	// Deduplicated set instead of executing again. Keys of failed jobs
	// are released, so a retry after a real failure runs fresh.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TenantWeight updates the submitting tenant's fair-share weight
	// (zero leaves it alone; the default weight is 1). A tenant with
	// weight w receives w shares per dispatch round.
	TenantWeight int `json:"tenant_weight,omitempty"`
}

// resumable reports whether a crash-interrupted run of this spec can be
// resumed from its exec checkpoints with bitwise-identical final
// statistics. Fault-injection and tracing runs rerun from scratch
// instead: their recovery attempts, chaos schedules and span buffers
// are not part of the checkpointed state.
func (r Request) resumable() bool {
	return r.Checkpoint > 0 && !r.Parity && !r.Prefetch && !r.Phantom && !r.Trace &&
		r.KillRank == "" && r.Chaos == 0 && r.ChaosCorrupt == 0 && r.ChaosDiskLoss == 0 &&
		r.LoseDisk == ""
}

// withDefaults fills the zero-value fields with the CLI defaults, so a
// served job and an ooc-run invocation agree on what "unspecified"
// means.
func (r Request) withDefaults() Request {
	if r.Tenant == "" {
		r.Tenant = "default"
	}
	if r.N <= 0 {
		r.N = 256
	}
	if r.Procs <= 0 {
		r.Procs = 4
	}
	if r.MemElems <= 0 {
		r.MemElems = 1 << 15
	}
	if r.ChaosSeed == 0 {
		r.ChaosSeed = 1
	}
	return r
}

// runFlags maps the request onto the shared flags→exec.Options mapping,
// so a served job builds its execution options exactly the way the CLI
// does.
func (r Request) runFlags() cliutil.RunFlags {
	rf := cliutil.RunFlags{
		Sieve:         r.Sieve,
		Prefetch:      r.Prefetch,
		Phantom:       r.Phantom,
		Chaos:         r.Chaos,
		ChaosCorrupt:  r.ChaosCorrupt,
		ChaosDiskLoss: r.ChaosDiskLoss,
		ChaosSeed:     r.ChaosSeed,
		LoseDisk:      r.LoseDisk,
		Retries:       -1,
		Checkpoint:    r.Checkpoint,
		Parity:        r.Parity,
		KillRank:      r.KillRank,
	}
	if r.Retries != nil {
		rf.Retries = *r.Retries
	}
	return rf
}

// timeout resolves the job deadline against the server default.
func (r Request) timeout(def time.Duration) time.Duration {
	if r.TimeoutMS > 0 {
		return time.Duration(r.TimeoutMS) * time.Millisecond
	}
	return def
}

// cacheKey is the canonical identity of the compiled plan: everything
// compilation depends on — source text, problem scale, memory, forced
// strategy, sieving, and the machine cost parameters — folded through
// one hash. Two requests with equal keys compile to the same plan, so
// the second can reuse the first's.
func (r Request) cacheKey(mach sim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "serve/v1|n=%d|p=%d|mem=%d|force=%s|sieve=%t\n",
		r.N, r.Procs, r.MemElems, r.Force, r.Sieve)
	fmt.Fprintf(h, "mach|%+v\n", mach)
	h.Write([]byte(r.Source))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// fingerprintExtras is the cost-parameter context folded into the
// compiled plan's fingerprint, so plans for the same program on
// different machines report different identities.
func fingerprintExtras(mach sim.Config, mem int) map[string]string {
	return map[string]string{
		"machine": fmt.Sprintf("%+v", mach),
		"mem":     fmt.Sprintf("%d", mem),
	}
}

// EstimateFootprint is the admission-control estimate of a job's peak
// host memory, in bytes: every rank's slab and staging buffers (two
// arena buffers per array per rank, float64 elements), plus — outside
// phantom mode — the full backing files in the in-memory store, with
// the rotated-parity overhead of 1/(P-1) when parity is on.
func EstimateFootprint(p *plan.Program, phantom, parity bool) int64 {
	var slabElems, fileElems int64
	for _, a := range p.Arrays {
		slabElems += int64(a.SlabElems)
		fileElems += int64(a.Rows) * int64(a.Cols)
	}
	fp := slabElems * 8 * 2 * int64(p.Procs)
	if !phantom {
		files := fileElems * iosim.FileElemBytes
		if parity && p.Procs > 1 {
			files += files / int64(p.Procs-1)
		}
		fp += files
	}
	return fp
}

// Response is a completed job.
type Response struct {
	JobID           string `json:"job_id"`
	Tenant          string `json:"tenant"`
	Program         string `json:"program"`
	Strategy        string `json:"strategy"`
	PlanFingerprint string `json:"plan_fingerprint"`
	// CacheHit reports whether the compiled plan came from the LRU
	// cache rather than a fresh compilation.
	CacheHit bool `json:"cache_hit"`
	// Bytecode reports that the job executed through the compiled
	// opcode stream rather than the plan-tree walk.
	Bytecode bool `json:"bytecode,omitempty"`
	// Attempts and Recoveries are the resilient-run counters (1 and 0
	// for an undisturbed run).
	Attempts   int `json:"attempts"`
	Recoveries int `json:"recoveries"`
	// Resumed reports that the run restarted from the exec checkpoints a
	// previous server life committed; Deduplicated reports that the
	// response is a replay of an earlier outcome under the same
	// idempotency key rather than a fresh execution.
	Resumed      bool `json:"resumed,omitempty"`
	Deduplicated bool `json:"deduplicated,omitempty"`
	// SimSeconds is the simulated execution time; Stats is the full
	// statistics snapshot, bitwise identical to a direct exec.Run of
	// the same job.
	SimSeconds float64        `json:"sim_seconds"`
	Stats      trace.Snapshot `json:"stats"`
	// Trace is the Chrome-trace-event timeline when the request asked
	// for one.
	Trace json.RawMessage `json:"trace,omitempty"`
}
