package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
)

func testJournal(t *testing.T, fs iosim.FS, rotateAt int64, maxOutcomes int) *journal {
	t.Helper()
	j, err := openJournal(fs, rotateAt, iosim.DefaultRetryPolicy(), maxOutcomes)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	return j
}

func mustAppend(t *testing.T, j *journal, rec *walRec) {
	t.Helper()
	if err := j.append(rec); err != nil {
		t.Fatalf("append %s %s: %v", rec.Kind, rec.Job, err)
	}
}

func submitRec(id, tenant, key string) *walRec {
	return &walRec{Kind: recSubmit, Job: id, Tenant: tenant, Key: key,
		Spec: &Request{Tenant: tenant, N: 32, Procs: 4, MemElems: 300}}
}

// segNames returns the journal segment files currently on fs.
func segNames(fs iosim.FS) []string {
	var out []string
	for _, name := range fs.(namer).Names() {
		if _, ok := segIdxOf(name); ok {
			out = append(out, name)
		}
	}
	return out
}

// TestJournalReplayRoundTrip: submits, a dispatch, completions and a
// cancel survive a reopen — the live set comes back in arrival order
// with its attempt numbers, completed jobs are gone, and a keyed
// outcome is retrievable.
func TestJournalReplayRoundTrip(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", "k1"))
	mustAppend(t, j, submitRec("job-2", "b", ""))
	mustAppend(t, j, submitRec("job-3", "a", ""))
	mustAppend(t, j, &walRec{Kind: recDispatch, Job: "job-2", Attempt: 1})
	mustAppend(t, j, &walRec{Kind: recComplete, Job: "job-1", OK: true, Key: "k1",
		Outcome: json.RawMessage(`{"job_id":"job-1"}`)})
	mustAppend(t, j, submitRec("job-4", "c", ""))
	mustAppend(t, j, &walRec{Kind: recCancel, Job: "job-4"})
	j.close()

	re := testJournal(t, fs, 0, 0)
	defer re.close()
	live := re.liveJobs()
	if len(live) != 2 || live[0].ID != "job-2" || live[1].ID != "job-3" {
		t.Fatalf("live jobs = %+v, want job-2, job-3 in order", live)
	}
	if live[0].Attempt != 1 || live[1].Attempt != 0 {
		t.Fatalf("attempts = %d,%d want 1,0", live[0].Attempt, live[1].Attempt)
	}
	if live[0].Spec.Tenant != "b" || live[0].Spec.N != 32 {
		t.Fatalf("job-2 spec not preserved: %+v", live[0].Spec)
	}
	if n := re.jobNum(); n != 4 {
		t.Fatalf("jobNum = %d, want 4", n)
	}
	raw, ok := re.outcome("k1")
	if !ok || !strings.Contains(string(raw), "job-1") {
		t.Fatalf("outcome(k1) = %q, %v", raw, ok)
	}
	if got := re.statsSnapshot(); got.TruncatedTails != 0 {
		t.Fatalf("clean journal reported %d truncated tails", got.TruncatedTails)
	}
}

// corruptTail locates the single live segment and mangles it with f.
func corruptTail(t *testing.T, fs *iosim.MemFS, f func(name string)) {
	t.Helper()
	segs := segNames(fs)
	if len(segs) != 1 {
		t.Fatalf("want exactly one live segment, have %v", segs)
	}
	f(segs[0])
}

// TestJournalTornTailTruncated: garbage appended after the last valid
// record — a torn final write — is dropped at the last valid record,
// counted once, and never surfaces as a parse error.
func TestJournalTornTailTruncated(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", ""))
	mustAppend(t, j, submitRec("job-2", "a", ""))
	off := j.segOff
	j.close()

	corruptTail(t, fs, func(name string) {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		// A frame head that promises more payload than the file holds.
		f.WriteAt([]byte{0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 'x'}, off)
	})

	re := testJournal(t, fs, 0, 0)
	defer re.close()
	if live := re.liveJobs(); len(live) != 2 {
		t.Fatalf("live jobs = %d, want 2 (valid prefix preserved)", len(live))
	}
	if got := re.statsSnapshot().TruncatedTails; got != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", got)
	}
}

// TestJournalCorruptRecordDropsSuffix: a byte flip inside an earlier
// record fails its checksum; that record and everything after it are
// untrusted and dropped, while the prefix survives.
func TestJournalCorruptRecordDropsSuffix(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", ""))
	boundary := j.segOff // start of job-2's frame
	mustAppend(t, j, submitRec("job-2", "a", ""))
	mustAppend(t, j, submitRec("job-3", "a", ""))
	j.close()

	corruptTail(t, fs, func(name string) {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one payload byte of job-2's record.
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, boundary+walFrameHead); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		f.WriteAt(b, boundary+walFrameHead)
	})

	re := testJournal(t, fs, 0, 0)
	defer re.close()
	live := re.liveJobs()
	if len(live) != 1 || live[0].ID != "job-1" {
		t.Fatalf("live jobs = %+v, want only job-1", live)
	}
	if got := re.statsSnapshot().TruncatedTails; got != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", got)
	}
}

// TestJournalRotationCompacts: a tiny rotation threshold compacts on
// every append; the journal stays one segment holding the live state.
func TestJournalRotationCompacts(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 1, 0)
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		mustAppend(t, j, submitRec(id, "a", ""))
	}
	mustAppend(t, j, &walRec{Kind: recComplete, Job: "job-2", OK: true})
	st := j.statsSnapshot()
	if st.Compactions < 4 { // startup + one per append
		t.Fatalf("Compactions = %d, want >= 4", st.Compactions)
	}
	if segs := segNames(fs); len(segs) != 1 {
		t.Fatalf("segments after rotation = %v, want exactly one", segs)
	}
	j.close()

	re := testJournal(t, fs, 0, 0)
	defer re.close()
	live := re.liveJobs()
	if len(live) != 2 || live[0].ID != "job-1" || live[1].ID != "job-3" {
		t.Fatalf("live after compaction = %+v, want job-1, job-3", live)
	}
}

// TestJournalTornWriteHealedByRetry: a chaos-torn append (half the
// frame reaches the file, transient error) is healed by the retry
// rewriting the same offset; the record is durable and replays.
func TestJournalTornWriteHealedByRetry(t *testing.T) {
	mem := iosim.NewMemFS()
	seg1 := segName(1)
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Schedule: []iosim.ScheduledFault{
		// Op 0 is the segment create, op 1 the snapshot write; op 2 is
		// the first append.
		{File: seg1, Op: 2, Kind: iosim.KindShortWrite},
	}})
	j := testJournal(t, chaos, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", ""))
	if got := chaos.Counts().ShortWrites; got != 1 {
		t.Fatalf("short writes injected = %d, want 1", got)
	}
	if st := j.statsSnapshot(); st.Degraded || st.RecordsAppended != 1 {
		t.Fatalf("stats after healed tear = %+v", st)
	}
	j.close()

	re := testJournal(t, mem, 0, 0)
	defer re.close()
	if live := re.liveJobs(); len(live) != 1 || live[0].ID != "job-1" {
		t.Fatalf("live jobs = %+v, want job-1", live)
	}
}

// TestJournalDegradedOnPersistentFault: a permanent write fault marks
// the journal degraded — sticky — and every later append fails with
// ErrDegraded without touching the disk.
func TestJournalDegradedOnPersistentFault(t *testing.T) {
	mem := iosim.NewMemFS()
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Schedule: []iosim.ScheduledFault{
		{File: segName(1), Op: 2, Kind: iosim.KindPermanent},
	}})
	j := testJournal(t, chaos, 0, 0)
	err := j.append(submitRec("job-1", "a", ""))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("append under permanent fault = %v, want ErrDegraded", err)
	}
	if !j.degraded() {
		t.Fatal("journal not marked degraded")
	}
	if err := j.append(submitRec("job-2", "a", "")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after degradation = %v, want ErrDegraded", err)
	}
	st := j.statsSnapshot()
	if st.AppendErrors != 1 || st.RecordsAppended != 0 {
		t.Fatalf("stats after degradation = %+v", st)
	}
	j.close()

	// The failed record never became durable: a restart owes nothing.
	re := testJournal(t, mem, 0, 0)
	defer re.close()
	if live := re.liveJobs(); len(live) != 0 {
		t.Fatalf("live jobs after degraded append = %+v, want none", live)
	}
}

// TestJournalTransientFaultRetried: a transient write fault is retried
// under the policy and the append succeeds.
func TestJournalTransientFaultRetried(t *testing.T) {
	mem := iosim.NewMemFS()
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Schedule: []iosim.ScheduledFault{
		{File: segName(1), Op: 2, Kind: iosim.KindTransient},
		{File: segName(1), Op: 3, Kind: iosim.KindTransient},
	}})
	j := testJournal(t, chaos, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", ""))
	defer j.close()
	if st := j.statsSnapshot(); st.Degraded || st.RecordsAppended != 1 {
		t.Fatalf("stats after retried transients = %+v", st)
	}
}

// TestJournalFsyncsOnOSFS: on a real file system every durable write is
// fsynced and counted.
func TestJournalFsyncsOnOSFS(t *testing.T) {
	fs, err := iosim.NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := testJournal(t, fs, 0, 0)
	defer j.close()
	mustAppend(t, j, submitRec("job-1", "a", ""))
	st := j.statsSnapshot()
	if st.Fsyncs < 2 { // snapshot + append
		t.Fatalf("Fsyncs = %d, want >= 2", st.Fsyncs)
	}
}

// TestJournalCrashMidCompactionReplaysCleanly: a crash between writing
// the fresh compaction snapshot and deleting the predecessor segment
// leaves both generations on disk. Replaying both is harmless — the
// compact record resets the state — and the live set is not duplicated.
func TestJournalCrashMidCompactionReplaysCleanly(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 0, 0)
	mustAppend(t, j, submitRec("job-1", "a", ""))
	mustAppend(t, j, submitRec("job-2", "a", ""))
	j.close()

	// Save the pre-compaction segment's bytes.
	stale := segNames(fs)[0]
	f, err := fs.Open(stale)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := f.ReadAt(buf, 0)
	content := buf[:n]

	// Reopen compacts into the next segment and deletes the old one;
	// resurrect the old segment as if that deletion never happened.
	j2 := testJournal(t, fs, 0, 0)
	j2.close()
	g, err := fs.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	g.WriteAt(content, 0)

	re := testJournal(t, fs, 0, 0)
	defer re.close()
	live := re.liveJobs()
	if len(live) != 2 || live[0].ID != "job-1" || live[1].ID != "job-2" {
		t.Fatalf("live after dual-lineage replay = %+v, want job-1, job-2", live)
	}
	if got := re.statsSnapshot().TruncatedTails; got != 0 {
		t.Fatalf("TruncatedTails = %d, want 0", got)
	}
}

// TestJournalOutcomeRetentionBounded: the keyed-outcome store is a
// bounded FIFO; old outcomes are evicted, and the bound survives
// compaction.
func TestJournalOutcomeRetentionBounded(t *testing.T) {
	fs := iosim.NewMemFS()
	j := testJournal(t, fs, 0, 2)
	for i, key := range []string{"k1", "k2", "k3"} {
		id := string(rune('1' + i))
		mustAppend(t, j, submitRec("job-"+id, "a", key))
		mustAppend(t, j, &walRec{Kind: recComplete, Job: "job-" + id, OK: true, Key: key,
			Outcome: json.RawMessage(`{"job_id":"job-` + id + `"}`)})
	}
	if _, ok := j.outcome("k1"); ok {
		t.Fatal("k1 survived past the retention bound")
	}
	for _, key := range []string{"k2", "k3"} {
		if _, ok := j.outcome(key); !ok {
			t.Fatalf("%s missing from retained outcomes", key)
		}
	}
	j.close()

	re := testJournal(t, fs, 0, 2)
	defer re.close()
	if _, ok := re.outcome("k3"); !ok {
		t.Fatal("retained outcome lost across restart")
	}
}
