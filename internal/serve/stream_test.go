package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/trace"
)

// TestJobTraceStreamMatchesResponseTrace is the serve-level exactness
// check: the NDJSON span stream retained for a traced job must carry
// the same span sequence as the buffered Chrome trace in the job's own
// response.
func TestJobTraceStreamMatchesResponseTrace(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := s.Submit(context.Background(), Request{N: 32, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("traced job returned no trace artifact")
	}
	buffered, procs, bdropped, err := trace.ParseChromeTraceInfo(resp.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if bdropped != 0 {
		t.Fatalf("buffered trace records %d drops", bdropped)
	}

	// The finished stream is retained: a late subscriber still gets the
	// whole backlog.
	hr, err := http.Get(ts.URL + "/jobs/" + resp.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", hr.StatusCode, body)
	}
	if got := hr.Header.Get("Content-Type"); got != "application/x-ndjson; charset=utf-8" {
		t.Errorf("trace Content-Type = %q", got)
	}
	if got := hr.Header.Get("X-Stream-Complete"); got != "true" {
		t.Errorf("X-Stream-Complete = %q, want true", got)
	}
	streamed, sprocs, sdropped, err := trace.ParseNDJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if sprocs != procs || sdropped != 0 {
		t.Fatalf("stream procs=%d dropped=%d, want %d, 0", sprocs, sdropped, procs)
	}
	if len(streamed) != len(buffered) {
		t.Fatalf("stream carries %d spans, response trace %d", len(streamed), len(buffered))
	}
	for i := range buffered {
		if streamed[i] != buffered[i] {
			t.Fatalf("span %d differs:\nstream %+v\nbuffered %+v", i, streamed[i], buffered[i])
		}
	}

	// The listing surfaces the retained stream.
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []JobStreamInfo `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	found := false
	for _, ji := range listing.Jobs {
		if ji.ID == resp.JobID {
			found = true
			if ji.Live {
				t.Errorf("finished job %s still listed live", ji.ID)
			}
		}
	}
	if !found {
		t.Fatalf("job %s missing from GET /jobs listing %+v", resp.JobID, listing.Jobs)
	}
}

// TestJobTraceFollowSSE drives the ?follow=1 surface: SSE frames carry
// the NDJSON lines, and the stream terminates with an end event once
// the job is done.
func TestJobTraceFollowSSE(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := s.Submit(context.Background(), Request{N: 32, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Get(ts.URL + "/jobs/" + resp.JobID + "/trace?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if got := hr.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("follow Content-Type = %q", got)
	}
	var ndjson bytes.Buffer
	sawEnd := false
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: end" {
			sawEnd = true
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && !sawEnd {
			ndjson.WriteString(data)
			ndjson.WriteString("\n")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawEnd {
		t.Fatal("follow stream did not terminate with an end event")
	}
	streamed, _, dropped, err := trace.ParseNDJSON(&ndjson)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("follow stream reports %d drops", dropped)
	}
	buffered, _, _, err := trace.ParseChromeTraceInfo(resp.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(buffered) {
		t.Fatalf("follow stream carries %d spans, response trace %d", len(streamed), len(buffered))
	}
	for i := range buffered {
		if streamed[i] != buffered[i] {
			t.Fatalf("span %d differs between follow stream and response trace", i)
		}
	}
}

func TestJobTraceUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", hr.StatusCode)
	}
}

// TestJobStreamFollowBlocksUntilAppend pins the cond-var hand-off: a
// follower parked on next() wakes for new lines and for completion.
func TestJobStreamFollowBlocksUntilAppend(t *testing.T) {
	st := newJobStream()
	got := make(chan []byte, 1)
	go func() {
		line, _ := st.next(context.Background(), 0)
		got <- line
	}()
	time.Sleep(10 * time.Millisecond)
	st.append([]byte("hello"), false)
	select {
	case line := <-got:
		if string(line) != "hello" {
			t.Fatalf("follower got %q", line)
		}
	case <-time.After(time.Second):
		t.Fatal("follower never woke for the appended line")
	}

	done := make(chan struct{})
	go func() {
		if line, _ := st.next(context.Background(), 1); line != nil {
			t.Errorf("follower got %q after finish", line)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	st.finish()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("follower never woke for finish")
	}

	// A cancelled context also unparks the follower.
	ctx, cancel := context.WithCancel(context.Background())
	st2 := newJobStream()
	done2 := make(chan struct{})
	go func() {
		st2.next(ctx, 0)
		close(done2)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done2:
	case <-time.After(time.Second):
		t.Fatal("follower never woke for context cancellation")
	}
}

// TestStreamRetentionCapsLines pins the memory bound: a stream past
// maxStreamLines drops lines (counted honestly in the trailer) instead
// of growing without bound.
func TestStreamRetentionCapsLines(t *testing.T) {
	st := newJobStream()
	sink := &streamSink{st: st}
	for i := 0; i < maxStreamLines+100; i++ {
		sink.Emit(0, trace.Span{Kind: trace.KindCompute, Start: float64(i), Dur: 1})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines, done := st.snapshot()
	if !done {
		t.Fatal("stream not finished after Close")
	}
	if len(lines) != maxStreamLines+1 { // +1 trailer
		t.Fatalf("stream retained %d lines, want %d", len(lines), maxStreamLines+1)
	}
	var tr trace.StreamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Trailer || tr.Spans != maxStreamLines || tr.Dropped != 100 {
		t.Fatalf("trailer %+v, want spans=%d dropped=100", tr, maxStreamLines)
	}
}
