package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled on the
// standard library. The server keeps its JSON Metrics snapshot as the
// default /metrics body; this file renders the same state — plus
// fixed-bucket latency histograms — in the form a Prometheus scraper
// ingests, selected by content negotiation.

// promHist is a fixed-bucket histogram with lock-free observation:
// per-bucket atomic counts (non-cumulative internally; rendered
// cumulatively per the exposition format) and a CAS-looped float sum.
// The bucket bounds are fixed at construction, so scrapes need no
// coordination with observers.
type promHist struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func newPromHist(bounds []float64) *promHist {
	return &promHist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one value.
func (h *promHist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns the cumulative bucket counts (one per bound, then
// +Inf), the total count, and the sum.
func (h *promHist) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	for i := range h.counts {
		count += h.counts[i].Load()
		cum[i] = count
	}
	return cum, count, math.Float64frombits(h.sumBits.Load())
}

// Histogram bucket bounds. Latency-style buckets span sub-millisecond
// service times through the 60s default deadline; compile buckets track
// the (much faster) planning path; footprint buckets are powers of four
// from 1 KiB to the 1 GiB default budget.
var (
	latencyBuckets   = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60}
	compileBuckets   = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
	footprintBuckets = []float64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30}
)

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) metric(name, help, typ string, write func()) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	write()
}

func (p *promWriter) hist(name, help string, h *promHist) {
	p.metric(name, help, "histogram", func() {
		cum, count, sum := h.snapshot()
		for i, b := range h.bounds {
			p.printf("%s_bucket{le=\"%s\"} %d\n", name, promFloat(b), cum[i])
		}
		p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, count)
		p.printf("%s_sum %s\n", name, promFloat(sum))
		p.printf("%s_count %d\n", name, count)
	})
}

// WritePrometheus renders the server's metrics — the same state as
// MetricsSnapshot — in Prometheus text exposition format.
func (s *Server) WritePrometheus(w io.Writer) error {
	m := s.MetricsSnapshot()
	p := &promWriter{w: bufio.NewWriter(w)}

	p.metric("passion_serve_workers", "Size of the worker pool.", "gauge", func() {
		p.printf("passion_serve_workers %d\n", m.Workers)
	})
	p.metric("passion_serve_queue_depth", "Jobs admitted but not yet dispatched.", "gauge", func() {
		p.printf("passion_serve_queue_depth %d\n", m.QueueDepth)
	})
	p.metric("passion_serve_inflight", "Jobs currently executing.", "gauge", func() {
		p.printf("passion_serve_inflight %d\n", m.Inflight)
	})
	p.metric("passion_serve_reserved_bytes", "Admitted footprint currently charged against the memory budget.", "gauge", func() {
		p.printf("passion_serve_reserved_bytes %d\n", m.ReservedBytes)
	})
	p.metric("passion_serve_budget_bytes", "Configured memory budget.", "gauge", func() {
		p.printf("passion_serve_budget_bytes %d\n", m.BudgetBytes)
	})
	p.metric("passion_serve_degraded", "1 while the journal disk has forced read-only degraded mode.", "gauge", func() {
		d := 0
		if m.Degraded {
			d = 1
		}
		p.printf("passion_serve_degraded %d\n", d)
	})

	p.metric("passion_serve_jobs_total", "Job submissions by terminal outcome.", "counter", func() {
		p.printf("passion_serve_jobs_total{outcome=\"submitted\"} %d\n", m.Submitted)
		p.printf("passion_serve_jobs_total{outcome=\"completed\"} %d\n", m.Completed)
		p.printf("passion_serve_jobs_total{outcome=\"failed\"} %d\n", m.Failed)
		p.printf("passion_serve_jobs_total{outcome=\"cancelled\"} %d\n", m.Cancelled)
		p.printf("passion_serve_jobs_total{outcome=\"deduplicated\"} %d\n", m.Deduplicated)
	})
	p.metric("passion_serve_rejected_total", "Rejections by reason.", "counter", func() {
		p.printf("passion_serve_rejected_total{reason=\"oversize\"} %d\n", m.RejectedOversize)
		p.printf("passion_serve_rejected_total{reason=\"busy\"} %d\n", m.RejectedBusy)
		p.printf("passion_serve_rejected_total{reason=\"draining\"} %d\n", m.RejectedDraining)
	})
	p.metric("passion_serve_plan_cache_total", "Compiled-plan cache lookups by result.", "counter", func() {
		p.printf("passion_serve_plan_cache_total{result=\"hit\"} %d\n", m.Cache.Hits)
		p.printf("passion_serve_plan_cache_total{result=\"miss\"} %d\n", m.Cache.Misses)
	})

	p.metric("passion_serve_tenant_jobs_total", "Per-tenant job counts by outcome.", "counter", func() {
		tenants := make([]string, 0, len(m.Tenants))
		for t := range m.Tenants {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			c := m.Tenants[t]
			lt := promEscape(t)
			p.printf("passion_serve_tenant_jobs_total{tenant=\"%s\",outcome=\"submitted\"} %d\n", lt, c.Submitted)
			p.printf("passion_serve_tenant_jobs_total{tenant=\"%s\",outcome=\"completed\"} %d\n", lt, c.Completed)
			p.printf("passion_serve_tenant_jobs_total{tenant=\"%s\",outcome=\"failed\"} %d\n", lt, c.Failed)
			p.printf("passion_serve_tenant_jobs_total{tenant=\"%s\",outcome=\"rejected\"} %d\n", lt, c.Rejected)
		}
	})

	if m.Journal != nil {
		j := m.Journal
		p.metric("passion_serve_journal_records_total", "Write-ahead journal records appended.", "counter", func() {
			p.printf("passion_serve_journal_records_total %d\n", j.RecordsAppended)
		})
		p.metric("passion_serve_journal_replayed_total", "Jobs re-admitted from the journal at startup.", "counter", func() {
			p.printf("passion_serve_journal_replayed_total %d\n", j.ReplayedJobs)
		})
		p.metric("passion_serve_journal_resumed_total", "Replayed jobs that resumed from exec checkpoints.", "counter", func() {
			p.printf("passion_serve_journal_resumed_total %d\n", j.ResumedJobs)
		})
		p.metric("passion_serve_journal_bytes", "Current size of the live journal segment.", "gauge", func() {
			p.printf("passion_serve_journal_bytes %d\n", j.Bytes)
		})
	}

	p.hist("passion_serve_job_latency_seconds", "Wall time from accepted submit to terminal outcome.", s.histJobLatency)
	p.hist("passion_serve_queue_wait_seconds", "Wall time from admission to worker pickup.", s.histQueueWait)
	p.hist("passion_serve_compile_seconds", "Wall time compiling a plan (cache misses only).", s.histCompile)
	p.hist("passion_serve_job_footprint_bytes", "Estimated memory footprint of dispatched jobs.", s.histFootprint)

	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// ---------------------------------------------------------------------------
// Strict exposition validation (test and load-gate support)

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidatePrometheus strictly checks a text exposition: metric and
// label names must be legal, HELP/TYPE comments must precede their
// samples (at most one each), samples of one family must be contiguous,
// values must parse, and every histogram must have monotone cumulative
// buckets whose +Inf bucket equals its _count, plus a _sum. It is the
// load gate's scrape check, so it fails on anything a real scraper
// would reject.
func ValidatePrometheus(data []byte) error {
	type family struct {
		help, typ string
		samples   int
	}
	fams := map[string]*family{}
	current := ""
	getFam := func(name string) *family {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &family{}
		fams[name] = f
		return f
	}
	// histogram data keyed by base name
	hbuckets := map[string][]struct {
		le float64
		v  int64
	}{}
	hcount := map[string]int64{}
	hsum := map[string]bool{}

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		no := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("prom: line %d: malformed comment %q", no, line)
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				return fmt.Errorf("prom: line %d: bad metric name %q", no, name)
			}
			f := getFam(name)
			if f.samples > 0 {
				return fmt.Errorf("prom: line %d: %s comment for %q after its samples", no, fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					return fmt.Errorf("prom: line %d: duplicate HELP for %q", no, name)
				}
				if len(fields) < 4 || fields[3] == "" {
					return fmt.Errorf("prom: line %d: empty HELP for %q", no, name)
				}
				f.help = fields[3]
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %q", no, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("prom: line %d: missing TYPE value for %q", no, name)
				}
				switch fields[4-1] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = fields[3]
				default:
					return fmt.Errorf("prom: line %d: unknown TYPE %q for %q", no, fields[3], name)
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom: line %d: %w", no, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f, ok := fams[base]
		if !ok || f.typ == "" {
			return fmt.Errorf("prom: line %d: sample %q has no preceding TYPE", no, name)
		}
		if current != "" && current != base && f.samples > 0 {
			return fmt.Errorf("prom: line %d: samples of %q are not contiguous", no, base)
		}
		current = base
		f.samples++
		if f.typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("prom: line %d: histogram bucket without le label", no)
				}
				lv, perr := parsePromValue(le)
				if perr != nil {
					return fmt.Errorf("prom: line %d: bad le %q", no, le)
				}
				hbuckets[base] = append(hbuckets[base], struct {
					le float64
					v  int64
				}{lv, int64(value)})
			case strings.HasSuffix(name, "_count"):
				hcount[base] = int64(value)
			case strings.HasSuffix(name, "_sum"):
				hsum[base] = true
			default:
				return fmt.Errorf("prom: line %d: unexpected histogram sample %q", no, name)
			}
		}
	}
	for name, f := range fams {
		if f.typ == "" {
			return fmt.Errorf("prom: %q has HELP but no TYPE", name)
		}
		// A declared family with no samples is legal (an empty label
		// vector); consistency checks only apply once samples exist.
		if f.typ != "histogram" || f.samples == 0 {
			continue
		}
		bs := hbuckets[name]
		if len(bs) == 0 {
			return fmt.Errorf("prom: histogram %q has no buckets", name)
		}
		if !hsum[name] {
			return fmt.Errorf("prom: histogram %q has no _sum", name)
		}
		last := int64(-1)
		lastLe := math.Inf(-1)
		sawInf := false
		for _, b := range bs {
			if b.le <= lastLe {
				return fmt.Errorf("prom: histogram %q buckets out of order at le=%v", name, b.le)
			}
			if b.v < last {
				return fmt.Errorf("prom: histogram %q buckets not cumulative at le=%v", name, b.le)
			}
			last, lastLe = b.v, b.le
			if math.IsInf(b.le, 1) {
				sawInf = true
			}
		}
		if !sawInf {
			return fmt.Errorf("prom: histogram %q missing +Inf bucket", name)
		}
		if c, ok := hcount[name]; !ok {
			return fmt.Errorf("prom: histogram %q has no _count", name)
		} else if c != last {
			return fmt.Errorf("prom: histogram %q +Inf bucket %d != _count %d", name, last, c)
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromSample splits one sample line into name, labels and value.
func parsePromSample(line string) (string, map[string]string, float64, error) {
	labels := map[string]string{}
	rest := line
	name := rest
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	if !promNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		escaped := false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitPromLabels(body) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			ln := pair[:eq]
			lv := pair[eq+1:]
			if !promLabelRe.MatchString(ln) {
				return "", nil, 0, fmt.Errorf("bad label name %q", ln)
			}
			if len(lv) < 2 || lv[0] != '"' || lv[len(lv)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", lv)
			}
			unq := lv[1 : len(lv)-1]
			if strings.ContainsAny(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(unq, `\\`, ``), `\"`, ``), `\n`, ``), "\"\n\\") {
				return "", nil, 0, fmt.Errorf("bad escape in label value %q", lv)
			}
			labels[ln] = strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(unq)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs a value (and at most a timestamp)", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

// splitPromLabels splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitPromLabels(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	escaped := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
			cur.WriteByte(c)
		case c == '\\':
			escaped = true
			cur.WriteByte(c)
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}
