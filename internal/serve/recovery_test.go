package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/iosim"
)

// crashReq is the resumable spec the crash matrix revolves around:
// column-slab GAXPY commits a checkpoint epoch every SumStore iteration,
// so a mid-run crash always finds state to resume.
func crashReq(key string) Request {
	return Request{N: 32, Procs: 4, MemElems: 300, Force: "column-slab",
		Checkpoint: 1, IdempotencyKey: key}
}

// TestCrashRestartMatrix drives the seeded service-level chaos harness
// through every CrashSpec injection point: the simulated process death
// leaves the submitter with an ambiguous failure, a fresh Open over the
// same journal replays the owed work, and a retried submit under the
// same idempotency key lands on final statistics bitwise identical to
// an uninterrupted run — resumed from exec checkpoints where the spec
// allows it, deduplicated from the retained outcome where the job had
// already completed.
func TestCrashRestartMatrix(t *testing.T) {
	ref := New(Config{Workers: 1})
	refResp, err := ref.Submit(context.Background(), crashReq(""))
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	want := mustJSON(t, refResp.Stats)

	points := []struct {
		point string
		n     int64
	}{
		{CrashSubmit, 1},
		{CrashDispatch, 1},
		{CrashMidrun, 2}, // the second committed checkpoint epoch
		{CrashComplete, 1},
	}
	for _, p := range points {
		t.Run(p.point, func(t *testing.T) {
			fs := iosim.NewMemFS()
			key := "crash-" + p.point
			s, err := Open(Config{Workers: 1,
				Journal: &JournalConfig{FS: fs},
				Crash:   &CrashSpec{Point: p.point, N: p.n}})
			if err != nil {
				t.Fatal(err)
			}
			if _, serr := s.Submit(context.Background(), crashReq(key)); serr == nil {
				t.Fatal("submit to a crashing server reported success")
			}
			s.Close()

			re, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
			if err != nil {
				t.Fatalf("restart over crashed journal: %v", err)
			}
			defer re.Close()
			resp, err := re.Submit(context.Background(), crashReq(key))
			if err != nil {
				t.Fatalf("retried submit after restart: %v", err)
			}
			if got := mustJSON(t, resp.Stats); !bytes.Equal(got, want) {
				t.Errorf("stats diverged from the uninterrupted run\n got %s\nwant %s", got, want)
			}
			if !resp.Deduplicated {
				t.Error("retried submit was not deduplicated against the journaled job")
			}
			m := re.MetricsSnapshot()
			if m.Journal == nil {
				t.Fatal("journal metrics missing")
			}
			if p.point == CrashComplete {
				// The job completed durably before the "death": nothing
				// replays; the retained outcome answers the retry.
				if m.Journal.ReplayedJobs != 0 {
					t.Errorf("ReplayedJobs = %d, want 0", m.Journal.ReplayedJobs)
				}
				return
			}
			if m.Journal.ReplayedJobs < 1 {
				t.Errorf("ReplayedJobs = %d, want >= 1", m.Journal.ReplayedJobs)
			}
			if p.point == CrashMidrun {
				if !resp.Resumed {
					t.Error("midrun-crashed job did not resume from its checkpoint")
				}
				if m.Journal.ResumedJobs < 1 {
					t.Errorf("ResumedJobs = %d, want >= 1", m.Journal.ResumedJobs)
				}
			}
		})
	}
}

// TestCrashRestartNonResumableReruns: a RUNNING job whose spec is not
// resumable (no checkpoints) reruns from scratch after the crash and
// still reports stats bitwise identical to an uninterrupted run.
func TestCrashRestartNonResumableReruns(t *testing.T) {
	req := Request{N: 32, Procs: 4, MemElems: 300, IdempotencyKey: "nr"}
	ref := New(Config{Workers: 1})
	refResp, err := ref.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	fs := iosim.NewMemFS()
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs},
		Crash: &CrashSpec{Point: CrashDispatch, N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := s.Submit(context.Background(), req); serr == nil {
		t.Fatal("submit to a crashing server reported success")
	}
	s.Close()

	re, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	resp, err := re.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Resumed {
		t.Error("non-resumable job claims a checkpoint resume")
	}
	if got, want := mustJSON(t, resp.Stats), mustJSON(t, refResp.Stats); !bytes.Equal(got, want) {
		t.Errorf("rerun stats diverged\n got %s\nwant %s", got, want)
	}
}

// TestReservationReleasedOnPickupCancel drives a cancellation exactly
// into the window between a worker's budget reservation and the job
// pickup: the footprint must come straight back and no dispatch record
// may be journaled for the dead job.
func TestReservationReleasedOnPickupCancel(t *testing.T) {
	fs := iosim.NewMemFS()
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	s.pickupGate = func(*job) { cancel() }

	_, err = s.Submit(ctx, Request{N: 32, Procs: 4, MemElems: 300})
	if err == nil {
		t.Fatal("cancelled submit reported success")
	}
	// The submitter may observe its own context error before the worker
	// finishes the discard; wait for the worker to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := s.MetricsSnapshot()
		if m.Inflight == 0 && m.QueueDepth == 0 {
			if m.ReservedBytes != 0 {
				t.Fatalf("reservation leaked: %d bytes still charged", m.ReservedBytes)
			}
			if m.Completed != 0 {
				t.Fatalf("cancelled job ran to completion")
			}
			// submit + cancel, but no dispatch record for the dead job.
			if m.Journal.RecordsAppended != 2 {
				t.Fatalf("RecordsAppended = %d, want 2 (submit+cancel)", m.Journal.RecordsAppended)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never drained: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWeightedFairShareDispatch pins the weighted dispatch order: with
// weights a=2, b=1, tenant a receives two of every three slots while b
// still cannot be starved.
func TestWeightedFairShareDispatch(t *testing.T) {
	s := &Server{
		cfg:     Config{}.withDefaults(),
		queues:  make(map[string][]*job),
		tenants: make(map[string]*tenantCounters),
		weights: map[string]int{"a": 2, "b": 1},
	}
	s.dispatch = sync.NewCond(&s.mu)
	s.change = sync.NewCond(&s.mu)

	mk := func(tenant, id string) *job {
		return &job{id: id, req: Request{Tenant: tenant}, ctx: context.Background(), done: make(chan struct{})}
	}
	jobs := []*job{mk("a", "a1"), mk("a", "a2"), mk("a", "a3"), mk("a", "a4"), mk("b", "b1"), mk("b", "b2")}
	for _, j := range jobs {
		if _, _, err := s.enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for range jobs {
		order = append(order, s.next().id)
	}
	got := ""
	for i, id := range order {
		if i > 0 {
			got += " "
		}
		got += id
	}
	if want := "a1 b1 a2 a3 b2 a4"; got != want {
		t.Errorf("weighted dispatch order %q, want %q", got, want)
	}
}

// TestTenantWeightFromRequest: a submit carrying TenantWeight updates
// the tenant's share for subsequent dispatch rounds.
func TestTenantWeightFromRequest(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(),
		Request{Tenant: "heavy", TenantWeight: 3, N: 32, Procs: 4, MemElems: 300}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	w := s.weightOf("heavy")
	s.mu.Unlock()
	if w != 3 {
		t.Fatalf("weightOf(heavy) = %d, want 3", w)
	}
}

// seedLiveJobs writes n submit records straight through the journal
// API, as if a previous server life accepted them and died.
func seedLiveJobs(t *testing.T, fs iosim.FS, n int) {
	t.Helper()
	j := testJournal(t, fs, 0, 0)
	for i := 1; i <= n; i++ {
		mustAppend(t, j, submitRec(fmt.Sprintf("job-%d", i), "a", ""))
	}
	j.close()
}

// TestCloseDuringReplayKeepsJobsDurable: SIGTERM right after startup —
// Close racing the freshly replayed queue — must lose nothing: every
// seeded job is either completed durably or still owed to the next
// restart. Orphaned replayed jobs are NOT cancelled in the journal
// (they have no submitter to have seen a rejection).
func TestCloseDuringReplayKeepsJobsDurable(t *testing.T) {
	const n = 3
	fs := iosim.NewMemFS()
	seedLiveJobs(t, fs, n)

	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	completed := s.MetricsSnapshot().Completed

	re, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatalf("reopen after early close: %v", err)
	}
	replayed := re.MetricsSnapshot().Journal.ReplayedJobs
	if completed+replayed != n {
		t.Fatalf("jobs lost across early close: completed %d + replayed %d != %d",
			completed, replayed, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := re.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := re.MetricsSnapshot().Completed; got != replayed {
		t.Fatalf("drained server completed %d of %d replayed jobs", got, replayed)
	}

	// After the drain everything is done: a third life owes nothing.
	last, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if got := last.MetricsSnapshot().Journal.ReplayedJobs; got != 0 {
		t.Fatalf("drained journal still replays %d jobs", got)
	}
}

// TestDrainCloseSubmitRace exercises Drain, Close and concurrent
// submits (with and without idempotency keys) against a journaled
// server under the race detector; afterwards the journal must reopen
// cleanly.
func TestDrainCloseSubmitRace(t *testing.T) {
	fs := iosim.NewMemFS()
	s, err := Open(Config{Workers: 2, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{N: 32, Procs: 4, MemElems: 300}
			if i%2 == 0 {
				req.IdempotencyKey = fmt.Sprintf("race-%d", i%4)
			}
			// Rejections (draining) and successes are both legal here;
			// the invariant under test is no race and a clean journal.
			s.Submit(context.Background(), req) //nolint:errcheck
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	}()
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		s.Close()
	}()
	wg.Wait()
	s.Close() // idempotent

	re, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatalf("journal did not survive the shutdown race: %v", err)
	}
	re.Close()
}

// TestDegradedModeServesReads: when the journal disk goes permanently
// bad, new submits are refused with ErrDegraded while metrics, health
// and retained idempotent outcomes keep being served.
func TestDegradedModeServesReads(t *testing.T) {
	mem := iosim.NewMemFS()
	// Let startup and the first job's records through, then fail the
	// segment permanently: ops 0-1 are create+snapshot, 2-3 the first
	// job's submit+dispatch, 4 its completion; op 5 — the next submit —
	// hits the dead disk.
	chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{Schedule: []iosim.ScheduledFault{
		{File: segName(1), Op: 5, Kind: iosim.KindPermanent},
	}})
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: chaos, WorkFS: iosim.NewMemFS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit(context.Background(), Request{N: 32, Procs: 4, MemElems: 300, IdempotencyKey: "deg"})
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	if _, err := s.Submit(context.Background(), Request{N: 32, Procs: 4, MemElems: 300}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit on dead journal disk = %v, want ErrDegraded", err)
	}
	if !s.Degraded() {
		t.Fatal("server not in degraded mode")
	}
	// Reads still work: metrics report the degradation...
	m := s.MetricsSnapshot()
	if !m.Degraded || m.Journal.AppendErrors < 1 {
		t.Fatalf("metrics do not report degradation: %+v", m.Journal)
	}
	// ...and the retained outcome still answers a retried submit.
	resp, err := s.Submit(context.Background(), Request{N: 32, Procs: 4, MemElems: 300, IdempotencyKey: "deg"})
	if err != nil {
		t.Fatalf("idempotent replay in degraded mode: %v", err)
	}
	if !resp.Deduplicated || !bytes.Equal(mustJSON(t, resp.Stats), mustJSON(t, first.Stats)) {
		t.Fatal("degraded-mode replay did not return the retained outcome")
	}
}

// TestIdempotentSubmitAttachesInFlight: two concurrent submits under
// one key execute once; the second rides along and is marked
// deduplicated.
func TestIdempotentSubmitAttachesInFlight(t *testing.T) {
	fs := iosim.NewMemFS()
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := Request{N: 32, Procs: 4, MemElems: 300, IdempotencyKey: "pair"}
	type outcome struct {
		resp *Response
		err  error
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := s.Submit(context.Background(), req)
			results <- outcome{resp, err}
		}()
	}
	var dedup, fresh int
	var stats [][]byte
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.resp.Deduplicated {
			dedup++
		} else {
			fresh++
		}
		stats = append(stats, mustJSON(t, o.resp.Stats))
	}
	if fresh != 1 || dedup != 1 {
		t.Fatalf("fresh=%d dedup=%d, want exactly one execution", fresh, dedup)
	}
	if !bytes.Equal(stats[0], stats[1]) {
		t.Fatal("deduplicated response differs from the executed one")
	}
	if m := s.MetricsSnapshot(); m.Completed != 1 || m.Deduplicated != 1 {
		t.Fatalf("completed=%d deduplicated=%d, want 1 and 1", m.Completed, m.Deduplicated)
	}
}

// TestWorkStoreSweptAfterCompletion: a resumable job's durable attempt
// namespace is removed once the job completes, and nothing but journal
// segments stays behind.
func TestWorkStoreSweptAfterCompletion(t *testing.T) {
	fs := iosim.NewMemFS()
	s, err := Open(Config{Workers: 1, Journal: &JournalConfig{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(context.Background(), crashReq("")); err != nil {
		t.Fatal(err)
	}
	for _, name := range fs.Names() {
		if _, ok := segIdxOf(name); !ok {
			t.Errorf("leftover work-store file %q after completion", name)
		}
	}
}
