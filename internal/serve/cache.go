package serve

import (
	"container/list"
	"sync"

	"github.com/ooc-hpf/passion/internal/compiler"
)

// planCache is a bounded LRU of compiled plans keyed on the canonical
// compile-input hash (Request.cacheKey). Concurrent misses on the same
// key compile once: the first arrival compiles while the others wait on
// its pending entry, and the waiters count as hits — they paid no
// compilation.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	pending map[string]*pendingCompile

	hits, misses int64
}

type cacheEntry struct {
	key         string
	res         *compiler.Result
	fingerprint string
	// bytecode is the plan's compiled opcode stream in its encoded wire
	// form (internal/bytecode.Encode) — the persistable representation,
	// decoded per job so every dispatch runs a freshly validated copy.
	bytecode []byte
}

type pendingCompile struct {
	done chan struct{}
	res  *compiler.Result
	fp   string
	bc   []byte
	err  error
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		pending: make(map[string]*pendingCompile),
	}
}

// getOrCompile returns the cached plan for key, compiling it with
// compile on a miss. The bool reports a cache hit. The compiled plan is
// shared by reference across jobs: execution never mutates a
// plan.Program, which the concurrency tests pin down under the race
// detector.
func (c *planCache) getOrCompile(key string, compile func() (*compiler.Result, string, []byte, error)) (*compiler.Result, string, []byte, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return e.res, e.fingerprint, e.bytecode, true, nil
	}
	if p, ok := c.pending[key]; ok {
		// Someone is compiling this key right now; wait for them.
		c.hits++
		c.mu.Unlock()
		<-p.done
		return p.res, p.fp, p.bc, true, p.err
	}
	p := &pendingCompile{done: make(chan struct{})}
	c.pending[key] = p
	c.misses++
	c.mu.Unlock()

	p.res, p.fp, p.bc, p.err = compile()
	close(p.done)

	c.mu.Lock()
	delete(c.pending, key)
	if p.err == nil {
		el := c.lru.PushFront(&cacheEntry{key: key, res: p.res, fingerprint: p.fp, bytecode: p.bc})
		c.entries[key] = el
		for c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.entries, old.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return p.res, p.fp, p.bc, false, p.err
}

// CacheStats is the cache's metrics view.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:     c.hits,
		Misses:   c.misses,
		Entries:  c.lru.Len(),
		Capacity: c.cap,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
