package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ooc-hpf/passion/internal/iosim"
)

// The write-ahead job journal makes the queue and the in-flight set
// durable: every state transition of a job — submitted, dispatched,
// completed, cancelled — is appended as a checksummed record and fsynced
// before the transition takes effect, so a restarted server can rebuild
// exactly the work it owed at crash time (DESIGN §14).
//
// Format: segment files named wal-%08d.seg, each starting with the magic
// "OOCWAL1\n" followed by length-prefixed records:
//
//	[4B big-endian payload length][4B big-endian CRC32(payload)][JSON payload]
//
// Appends go to the newest segment only. Replay scans segments in index
// order and stops a segment at the first frame that is torn (short) or
// fails its checksum — everything after a corrupt record is untrusted,
// and the startup compaction rewrites the surviving state into a fresh
// segment, so a torn tail is truncated exactly once and never reparsed.
// Startup and size-triggered rotation both compact: the full live state
// is written as one snapshot record into a brand-new segment and the old
// segments are deleted, which keeps the journal bounded by the live job
// set (completed jobs survive only as bounded idempotency outcomes).

// walMagic heads every journal segment.
const walMagic = "OOCWAL1\n"

// walFrameHead is the bytes of one record's length+checksum header.
const walFrameHead = 8

// record kinds.
const (
	recSubmit   = "submit"
	recDispatch = "dispatch"
	recComplete = "complete"
	recCancel   = "cancel"
	recCompact  = "compact"
)

// walRec is one journal record. Kind selects which fields are
// meaningful.
type walRec struct {
	Kind   string `json:"kind"`
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Key is the client's idempotency key (submit; echoed on complete).
	Key string `json:"key,omitempty"`
	// Weight is the tenant's fair-share weight as of this submit.
	Weight int `json:"weight,omitempty"`
	// Spec is the canonical (defaults-resolved) job spec.
	Spec *Request `json:"spec,omitempty"`
	// Fingerprint is the compiled plan's identity; a restart re-admits
	// the job only into the same plan.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Attempt is the execution attempt namespace (dispatch).
	Attempt int `json:"attempt,omitempty"`
	// OK, Outcome and Error report completion: a successful outcome is
	// the response body (minus the trace artifact) kept for idempotent
	// replay to retried submitters.
	OK      bool            `json:"ok,omitempty"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Snapshot resets the replay state (compact records).
	Snapshot *walSnapshot `json:"snapshot,omitempty"`
}

// walJob is one live (queued or running) job in the replay state.
type walJob struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	Key         string  `json:"key,omitempty"`
	Spec        Request `json:"spec"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	// Attempt is 0 until the job is dispatched; a nonzero attempt at
	// replay time means the job was RUNNING when the server died.
	Attempt int `json:"attempt,omitempty"`
}

// walOutcome is one retained completed outcome, keyed for idempotent
// submit replay.
type walOutcome struct {
	Key      string          `json:"key"`
	Response json.RawMessage `json:"response"`
}

// walSnapshot is the full replay state a compact record carries.
type walSnapshot struct {
	JobNum   int64          `json:"job_num"`
	Jobs     []*walJob      `json:"jobs,omitempty"`
	Outcomes []*walOutcome  `json:"outcomes,omitempty"`
	Weights  map[string]int `json:"weights,omitempty"`
}

// walState is the incrementally maintained replay state: the same apply
// step consumes live appends and replayed records, so compaction always
// has an up-to-date snapshot at hand.
type walState struct {
	jobNum       int64
	jobs         []*walJob // arrival order
	byID         map[string]*walJob
	outcomes     map[string]json.RawMessage
	outcomeOrder []string
	maxOutcomes  int
	weights      map[string]int
}

func newWALState(maxOutcomes int) *walState {
	return &walState{
		byID:        make(map[string]*walJob),
		outcomes:    make(map[string]json.RawMessage),
		maxOutcomes: maxOutcomes,
		weights:     make(map[string]int),
	}
}

// jobNumOf extracts the sequence number from a "job-%d" id (0 if the id
// has another shape).
func jobNumOf(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

func (st *walState) apply(rec *walRec) {
	switch rec.Kind {
	case recSubmit:
		if rec.Job == "" || st.byID[rec.Job] != nil {
			return
		}
		jb := &walJob{ID: rec.Job, Tenant: rec.Tenant, Key: rec.Key, Fingerprint: rec.Fingerprint}
		if rec.Spec != nil {
			jb.Spec = *rec.Spec
		}
		st.jobs = append(st.jobs, jb)
		st.byID[jb.ID] = jb
		if n := jobNumOf(jb.ID); n > st.jobNum {
			st.jobNum = n
		}
		if rec.Weight > 0 {
			st.weights[rec.Tenant] = rec.Weight
		}
	case recDispatch:
		if jb := st.byID[rec.Job]; jb != nil {
			jb.Attempt = rec.Attempt
		}
	case recComplete:
		st.remove(rec.Job)
		if rec.OK && rec.Key != "" && rec.Outcome != nil {
			st.addOutcome(rec.Key, rec.Outcome)
		}
	case recCancel:
		st.remove(rec.Job)
	case recCompact:
		if rec.Snapshot == nil {
			return
		}
		fresh := newWALState(st.maxOutcomes)
		fresh.jobNum = rec.Snapshot.JobNum
		for _, jb := range rec.Snapshot.Jobs {
			fresh.jobs = append(fresh.jobs, jb)
			fresh.byID[jb.ID] = jb
		}
		for _, o := range rec.Snapshot.Outcomes {
			fresh.addOutcome(o.Key, o.Response)
		}
		for t, w := range rec.Snapshot.Weights {
			fresh.weights[t] = w
		}
		*st = *fresh
	}
}

func (st *walState) remove(id string) {
	if st.byID[id] == nil {
		return
	}
	delete(st.byID, id)
	for i, jb := range st.jobs {
		if jb.ID == id {
			st.jobs = append(st.jobs[:i], st.jobs[i+1:]...)
			break
		}
	}
}

func (st *walState) addOutcome(key string, resp json.RawMessage) {
	if _, ok := st.outcomes[key]; !ok {
		st.outcomeOrder = append(st.outcomeOrder, key)
	}
	st.outcomes[key] = resp
	for len(st.outcomeOrder) > st.maxOutcomes {
		evict := st.outcomeOrder[0]
		st.outcomeOrder = st.outcomeOrder[1:]
		delete(st.outcomes, evict)
	}
}

func (st *walState) snapshot() *walSnapshot {
	snap := &walSnapshot{JobNum: st.jobNum}
	for _, jb := range st.jobs {
		cp := *jb
		snap.Jobs = append(snap.Jobs, &cp)
	}
	for _, key := range st.outcomeOrder {
		snap.Outcomes = append(snap.Outcomes, &walOutcome{Key: key, Response: st.outcomes[key]})
	}
	if len(st.weights) > 0 {
		snap.Weights = make(map[string]int, len(st.weights))
		for t, w := range st.weights {
			snap.Weights[t] = w
		}
	}
	return snap
}

// JournalStats are the journal's observable counters, exposed under
// /metrics as Metrics.Journal.
type JournalStats struct {
	// RecordsAppended counts records durably appended this process
	// lifetime; Fsyncs counts the sync calls that made them durable
	// (zero on backing stores without a sync primitive, e.g. MemFS).
	RecordsAppended int64 `json:"records_appended"`
	Fsyncs          int64 `json:"fsyncs"`
	// ReplayedJobs counts jobs re-admitted from the journal at startup;
	// ResumedJobs counts the subset that resumed from an exec
	// checkpoint instead of rerunning from scratch.
	ReplayedJobs int64 `json:"replayed_jobs"`
	ResumedJobs  int64 `json:"resumed_jobs"`
	// TruncatedTails counts torn or corrupt segment tails dropped at
	// replay (at most one per segment: nothing after a bad frame is
	// trusted).
	TruncatedTails int64 `json:"truncated_tail_records"`
	// Bytes is the current size of the live segment; Compactions counts
	// snapshot rewrites (startup replay and size-triggered rotation).
	Bytes        int64 `json:"journal_bytes"`
	Compactions  int64 `json:"compactions"`
	AppendErrors int64 `json:"append_errors"`
	// Degraded reports that the journal gave up on a faulty disk: the
	// server serves reads but refuses new writes with 503.
	Degraded bool `json:"degraded"`
}

// journal is the write-ahead log. All methods are safe for concurrent
// use.
type journal struct {
	mu       sync.Mutex
	fs       iosim.FS
	seg      iosim.File
	segIdx   int
	segOff   int64
	rotateAt int64
	retry    iosim.RetryPolicy
	dead     bool // no further appends (degraded or crash-simulated)
	stats    JournalStats
	state    *walState
}

func segName(idx int) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// segIdxOf parses a segment index from a name; ok is false for
// non-segment files.
func segIdxOf(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &idx); err != nil || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	return idx, true
}

// namer is the FS enumeration capability the journal requires.
type namer interface{ Names() []string }

// openJournal replays any existing journal under fs, then compacts the
// surviving state into a fresh segment (old segments, including any torn
// tails, are deleted). The journal never appends to a reopened file: the
// compaction rewrite is the only way records cross a restart.
func openJournal(fs iosim.FS, rotateAt int64, retry iosim.RetryPolicy, maxOutcomes int) (*journal, error) {
	nm, ok := fs.(namer)
	if !ok {
		return nil, fmt.Errorf("serve: journal store %T cannot enumerate segments", fs)
	}
	if rotateAt <= 0 {
		rotateAt = 1 << 20
	}
	if maxOutcomes <= 0 {
		maxOutcomes = 256
	}
	j := &journal{fs: fs, rotateAt: rotateAt, retry: retry, state: newWALState(maxOutcomes)}

	var segs []int
	for _, name := range nm.Names() {
		if idx, ok := segIdxOf(name); ok {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	for _, idx := range segs {
		j.scanSegment(segName(idx))
	}
	maxIdx := 0
	if len(segs) > 0 {
		maxIdx = segs[len(segs)-1]
	}
	j.segIdx = maxIdx
	if err := j.compactLocked(); err != nil {
		return nil, err
	}
	// The old segments' state now lives in the fresh segment's snapshot.
	for _, idx := range segs {
		fs.Remove(segName(idx))
	}
	return j, nil
}

// scanSegment replays one segment into the state, stopping at the first
// torn or corrupt frame (counted as one truncated tail). It never
// returns an error: an unreadable segment simply contributes nothing.
func (j *journal) scanSegment(name string) {
	f, err := j.fs.Open(name)
	if err != nil {
		j.stats.TruncatedTails++
		return
	}
	defer f.Close()
	head := make([]byte, len(walMagic))
	if n, _ := f.ReadAt(head, 0); n != len(head) || string(head) != walMagic {
		j.stats.TruncatedTails++
		return
	}
	off := int64(len(walMagic))
	for {
		fh := make([]byte, walFrameHead)
		n, err := f.ReadAt(fh, off)
		if n == 0 && err == io.EOF {
			return // clean end of segment
		}
		if n != walFrameHead {
			j.stats.TruncatedTails++
			return
		}
		plen := binary.BigEndian.Uint32(fh)
		want := binary.BigEndian.Uint32(fh[4:])
		if plen > 64<<20 {
			// A frame this size was never written; the length bytes are
			// corrupt.
			j.stats.TruncatedTails++
			return
		}
		payload := make([]byte, plen)
		if n, _ := f.ReadAt(payload, off+walFrameHead); n != len(payload) {
			j.stats.TruncatedTails++
			return
		}
		if crc32.ChecksumIEEE(payload) != want {
			j.stats.TruncatedTails++
			return
		}
		var rec walRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			// Checksummed but unparsable — treat like any other torn
			// tail rather than surfacing a parse error.
			j.stats.TruncatedTails++
			return
		}
		j.state.apply(&rec)
		off += walFrameHead + int64(plen)
	}
}

func frameRec(rec *walRec) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode journal record: %w", err)
	}
	frame := make([]byte, walFrameHead+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHead:], payload)
	return frame, nil
}

// append durably adds one record: write, fsync, then apply to the replay
// state. Transient write faults are retried with capped wall-clock
// backoff (a torn short write is healed by rewriting the same offset);
// a persistent fault marks the journal degraded — sticky — and the
// error surfaces as ErrDegraded to the admission path.
func (j *journal) append(rec *walRec) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrDegraded
	}
	frame, err := frameRec(rec)
	if err != nil {
		return err
	}
	if err := j.writeRetry(frame, j.segOff); err != nil {
		j.dead = true
		j.stats.AppendErrors++
		j.stats.Degraded = true
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	j.segOff += int64(len(frame))
	j.stats.RecordsAppended++
	j.stats.Bytes = j.segOff
	j.state.apply(rec)
	if j.segOff >= j.rotateAt {
		if err := j.compactLocked(); err != nil {
			j.dead = true
			j.stats.AppendErrors++
			j.stats.Degraded = true
			return nil // the record itself is durable; degradation surfaces on the next append
		}
	}
	return nil
}

// writeRetry writes frame at off on the live segment, retrying transient
// faults. Callers hold j.mu.
func (j *journal) writeRetry(frame []byte, off int64) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		n, err := j.seg.WriteAt(frame, off)
		if err == nil && n == len(frame) {
			j.syncLocked()
			return nil
		}
		lastErr = err
		if lastErr == nil {
			lastErr = io.ErrShortWrite
		}
		if attempt >= j.retry.MaxRetries || !iosim.IsTransient(err) {
			return lastErr
		}
		time.Sleep(time.Duration(j.retry.Backoff(attempt) * float64(time.Second)))
	}
}

// syncLocked fsyncs the live segment when the backing store has a sync
// primitive (OS files do; MemFS is always "durable").
func (j *journal) syncLocked() {
	if sf, ok := j.seg.(interface{ Sync() error }); ok {
		if sf.Sync() == nil {
			j.stats.Fsyncs++
		}
	}
}

// compactLocked rewrites the live state as one snapshot record in a
// brand-new segment and switches appends to it. The predecessor segment
// is deleted only after the snapshot is durable, so a crash anywhere in
// between leaves at least one self-contained lineage to replay. Callers
// hold j.mu.
func (j *journal) compactLocked() error {
	oldSeg, oldIdx := j.seg, j.segIdx
	idx := j.segIdx + 1
	f, err := j.fs.Create(segName(idx))
	if err != nil {
		return fmt.Errorf("serve: create journal segment: %w", err)
	}
	frame, err := frameRec(&walRec{Kind: recCompact, Snapshot: j.state.snapshot()})
	if err != nil {
		f.Close()
		return err
	}
	buf := append([]byte(walMagic), frame...)
	j.seg = f
	if err := j.writeRetry(buf, 0); err != nil {
		j.seg = oldSeg
		f.Close()
		j.fs.Remove(segName(idx))
		return fmt.Errorf("serve: write journal snapshot: %w", err)
	}
	j.segIdx = idx
	j.segOff = int64(len(buf))
	j.stats.Bytes = j.segOff
	j.stats.Compactions++
	if oldSeg != nil {
		oldSeg.Close()
		j.fs.Remove(segName(oldIdx))
	}
	return nil
}

// kill simulates the process dying mid-flight: no further records are
// written (without marking the journal degraded — the "disk" is fine,
// the process is gone). Crash-harness only.
func (j *journal) kill() {
	j.mu.Lock()
	j.dead = true
	j.mu.Unlock()
}

// degraded reports whether the journal has given up on its disk.
func (j *journal) degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats.Degraded
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dead = true
	if j.seg != nil {
		j.seg.Close()
		j.seg = nil
	}
}

func (j *journal) statsSnapshot() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// liveJobs returns the replayed live set in arrival order (openJournal
// callers consume it before concurrent appends start).
func (j *journal) liveJobs() []*walJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*walJob, len(j.state.jobs))
	copy(out, j.state.jobs)
	return out
}

func (j *journal) outcome(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp, ok := j.state.outcomes[key]
	return resp, ok
}

func (j *journal) jobNum() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.jobNum
}

func (j *journal) tenantWeights() map[string]int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int, len(j.state.weights))
	for t, w := range j.state.weights {
		out[t] = w
	}
	return out
}

// workPrefix names a job attempt's namespace on the durable work store.
func workPrefix(id string, attempt int) string { return fmt.Sprintf("%s.a%d/", id, attempt) }

// prefixFS scopes one job attempt's files under workPrefix on the
// durable work store, so concurrent jobs and successive attempts never
// collide and a restart finds the attempt's checkpoints by name.
type prefixFS struct {
	base   iosim.FS
	prefix string
}

func (p *prefixFS) Create(name string) (iosim.File, error) { return p.base.Create(p.prefix + name) }
func (p *prefixFS) Open(name string) (iosim.File, error)   { return p.base.Open(p.prefix + name) }
func (p *prefixFS) Remove(name string) error               { return p.base.Remove(p.prefix + name) }

func (p *prefixFS) Names() []string {
	nm, ok := p.base.(namer)
	if !ok {
		return nil
	}
	var out []string
	for _, name := range nm.Names() {
		if strings.HasPrefix(name, p.prefix) {
			out = append(out, strings.TrimPrefix(name, p.prefix))
		}
	}
	return out
}

// addReplayed/addResumed feed the startup recovery counters.
func (j *journal) addReplayed(n int64) {
	j.mu.Lock()
	j.stats.ReplayedJobs += n
	j.mu.Unlock()
}

func (j *journal) addResumed(n int64) {
	j.mu.Lock()
	j.stats.ResumedJobs += n
	j.mu.Unlock()
}
