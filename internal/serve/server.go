package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrOversize rejects a job whose estimated footprint exceeds the
	// whole memory budget — it could never be admitted.
	ErrOversize = errors.New("serve: job footprint exceeds the memory budget")
	// ErrBusy rejects a job because the queue is full.
	ErrBusy = errors.New("serve: queue full")
	// ErrDraining rejects a job because the server is shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrDegraded rejects new writes because the journal disk is faulty;
	// reads (metrics, health, idempotent outcome replay) are still
	// served.
	ErrDegraded = errors.New("serve: journal degraded, not accepting new jobs")
	// ErrCrashed fails callers of a server whose simulated crash point
	// fired (CrashSpec); from a client's view it is an ambiguous
	// dropped-connection failure.
	ErrCrashed = errors.New("serve: simulated crash")
)

// JournalConfig enables the write-ahead job journal: with it set, every
// job state transition is made durable before it takes effect and a
// restarted server (Open over the same FS) replays the work it owed.
type JournalConfig struct {
	// FS stores the journal segments. It must support enumeration
	// (MemFS, OSFS and ChaosFS all do).
	FS iosim.FS
	// WorkFS stores the array files and exec checkpoints of resumable
	// jobs, namespaced per job attempt; nil shares FS.
	WorkFS iosim.FS
	// RotateBytes triggers a compacting segment rotation (default 1 MiB).
	RotateBytes int64
	// MaxOutcomes bounds the retained idempotency outcomes (default 256).
	MaxOutcomes int
	// Retry overrides the transient-write retry policy (default
	// iosim.DefaultRetryPolicy).
	Retry *iosim.RetryPolicy
}

// CrashSpec is the service-level chaos harness: the server simulates a
// process death at the Nth occurrence of the named boundary. After the
// crash every caller fails as if the connection dropped, and a fresh
// Open over the same journal exercises the recovery path.
type CrashSpec struct {
	// Point is one of "submit" (after the submit record is durable,
	// before the job is runnable), "dispatch" (after the dispatch record,
	// before execution), "midrun" (at a committed checkpoint epoch of a
	// resumable job) or "complete" (after the completion record, before
	// the response reaches the submitter).
	Point string
	// N selects the occurrence, 1-based (0 means 1).
	N int64
}

// Crash points.
const (
	CrashSubmit   = "submit"
	CrashDispatch = "dispatch"
	CrashMidrun   = "midrun"
	CrashComplete = "complete"
)

// Config tunes a Server. Zero values take the defaults noted per field.
type Config struct {
	// Workers bounds concurrent executions (default 4).
	Workers int
	// QueueLimit bounds the total number of queued jobs (default 1024).
	QueueLimit int
	// CacheEntries bounds the compiled-plan LRU (default 128).
	CacheEntries int
	// MemoryBudget bounds the summed estimated footprint of inflight
	// jobs, in bytes (default 1 GiB). A job whose own estimate exceeds
	// the budget is rejected outright; otherwise dispatch waits until
	// its reservation fits.
	MemoryBudget int64
	// DefaultTimeout is the per-job execution deadline when the request
	// does not set one (default 60s).
	DefaultTimeout time.Duration
	// TenantWeights sets per-tenant fair-share weights (default 1 each).
	// A tenant with weight w receives w shares per dispatch round.
	TenantWeights map[string]int
	// Journal enables crash-safe durability; nil serves purely in
	// memory, exactly as before.
	Journal *JournalConfig
	// Crash injects a simulated process death (tests and chaos gates).
	Crash *CrashSpec
	// Logger receives the structured per-job log trail (submit,
	// dispatch, resume, complete, journal events), each record carrying
	// the job id / tenant / idempotency key / plan fingerprint / attempt
	// correlation fields. Nil discards.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof on the Handler.
	// Off by default: the profiling surface is an operator opt-in.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	return c
}

// job is one admitted submission moving through the queue.
type job struct {
	id          string
	req         Request
	res         *compiler.Result
	mach        sim.Config
	fingerprint string
	// bc is the plan's compiled opcode stream, decoded from the cache's
	// encoded form; nil falls back to the tree-walk interpreter.
	bc       *bytecode.Program
	cacheHit bool
	footprint   int64
	ctx         context.Context

	// key is the client idempotency key; attempt is the execution
	// namespace on the durable work store (0 until first dispatch);
	// resume asks runJob to restart from the previous attempt's exec
	// checkpoints; replayed marks jobs re-admitted from the journal.
	key      string
	attempt  int
	resume   bool
	replayed bool

	// submittedAt anchors the job-latency histogram; enqueuedAt the
	// queue-wait histogram (reset on every re-queue).
	submittedAt time.Time
	enqueuedAt  time.Time

	done chan struct{}
	resp *Response
	err  error
}

// tenantCounters is the per-tenant accounting view.
type tenantCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
}

// Server is the compile-and-run service. Create with New (or Open when
// journaling), submit with Submit (or over HTTP via Handler), and stop
// with Drain or Close.
type Server struct {
	cfg   Config
	cache *planCache

	journal *journal
	workFS  iosim.FS

	mu       sync.Mutex
	dispatch *sync.Cond // signaled on job arrival and shutdown
	change   *sync.Cond // signaled on completion, release and drain
	queues   map[string][]*job
	ring     []string // tenants in first-arrival order; empty queues are skipped
	wrr      map[string]int
	weights  map[string]int
	keys     map[string]*job // in-flight idempotency keys
	queued   int
	inflight int
	reserved int64
	draining bool
	closed   bool
	crashed  bool
	tenants  map[string]*tenantCounters

	// pickupGate, when set, runs after a worker reserves a job's
	// footprint and before it checks the submitter is still there — the
	// deterministic window for the reservation-leak regression test.
	pickupGate func(*job)

	crashCtx    context.Context
	crashCancel context.CancelFunc
	crashN      atomic.Int64
	degraded    atomic.Bool

	log *slog.Logger

	// Live span-stream registry (stream.go).
	streamMu    sync.Mutex
	streams     map[string]*jobStream
	streamOrder []string

	// Latency distributions for the Prometheus exposition (prom.go).
	histJobLatency *promHist
	histQueueWait  *promHist
	histCompile    *promHist
	histFootprint  *promHist

	wg     sync.WaitGroup
	jobSeq atomic.Int64

	submitted        atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	cancelled        atomic.Int64
	deduplicated     atomic.Int64
	rejectedOversize atomic.Int64
	rejectedBusy     atomic.Int64
	rejectedDraining atomic.Int64
}

// New starts a server with cfg's worker pool running. It panics when
// Open would fail, which only a journal configuration can cause — use
// Open directly for journaled servers.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a server, replaying the write-ahead journal first when
// cfg.Journal is set: queued jobs are re-admitted in their original
// arrival order, jobs that were RUNNING at crash time resume from their
// exec checkpoints (or rerun from scratch when their spec is not
// resumable), and retained idempotency outcomes answer retried submits.
func Open(cfg Config) (*Server, error) {
	s := &Server{
		cfg:            cfg.withDefaults(),
		queues:         make(map[string][]*job),
		tenants:        make(map[string]*tenantCounters),
		keys:           make(map[string]*job),
		weights:        make(map[string]int),
		histJobLatency: newPromHist(latencyBuckets),
		histQueueWait:  newPromHist(latencyBuckets),
		histCompile:    newPromHist(compileBuckets),
		histFootprint:  newPromHist(footprintBuckets),
	}
	s.log = s.cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	for t, w := range s.cfg.TenantWeights {
		if w > 0 {
			s.weights[t] = w
		}
	}
	s.cache = newPlanCache(s.cfg.CacheEntries)
	s.dispatch = sync.NewCond(&s.mu)
	s.change = sync.NewCond(&s.mu)
	s.crashCtx, s.crashCancel = context.WithCancel(context.Background())
	if c := s.cfg.Crash; c != nil {
		cc := *c
		if cc.N <= 0 {
			cc.N = 1
		}
		s.cfg.Crash = &cc
	}
	if jc := s.cfg.Journal; jc != nil {
		if jc.FS == nil {
			return nil, errors.New("serve: JournalConfig.FS is required")
		}
		retry := iosim.DefaultRetryPolicy()
		if jc.Retry != nil {
			retry = *jc.Retry
		}
		jn, err := openJournal(jc.FS, jc.RotateBytes, retry, jc.MaxOutcomes)
		if err != nil {
			return nil, err
		}
		s.journal = jn
		s.workFS = jc.WorkFS
		if s.workFS == nil {
			s.workFS = jc.FS
		}
		s.replay()
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay rebuilds the queues from the journal's live set, in original
// arrival order, before any worker starts. Jobs with a dispatch record
// (Attempt > 0) were RUNNING when the server died: when their spec is
// resumable and the recompiled plan's fingerprint still matches, they
// keep their attempt namespace and resume from its checkpoints;
// otherwise they rerun from scratch in a fresh namespace.
func (s *Server) replay() {
	for t, w := range s.journal.tenantWeights() {
		if _, ok := s.weights[t]; !ok && w > 0 {
			s.weights[t] = w
		}
	}
	s.jobSeq.Store(s.journal.jobNum())
	keep := make(map[string]bool)
	var replayed int64
	for _, jb := range s.journal.liveJobs() {
		req := jb.Spec.withDefaults()
		j, err := s.build(s.crashCtx, req)
		if err != nil {
			// The spec no longer compiles or fits the budget: complete
			// it as failed so it stops replaying.
			s.journal.append(&walRec{Kind: recComplete, Job: jb.ID, Tenant: jb.Tenant, Error: err.Error()})
			continue
		}
		j.id = jb.ID
		j.key = jb.Key
		j.replayed = true
		if jb.Attempt > 0 {
			j.attempt = jb.Attempt
			if req.resumable() && j.fingerprint == jb.Fingerprint {
				j.resume = true
				keep[workPrefix(j.id, j.attempt)] = true
			}
		}
		t := req.Tenant
		if _, ok := s.queues[t]; !ok && !contains(s.ring, t) {
			s.ring = append(s.ring, t)
		}
		j.submittedAt = time.Now()
		j.enqueuedAt = j.submittedAt
		s.queues[t] = append(s.queues[t], j)
		s.queued++
		s.tenant(t).Submitted++
		s.submitted.Add(1)
		if j.key != "" {
			s.keys[j.key] = j
		}
		s.log.Info("job replayed from journal",
			"job", j.id, "tenant", t, "key", j.key,
			"fingerprint", j.fingerprint, "attempt", j.attempt, "resume", j.resume)
		replayed++
	}
	s.journal.addReplayed(replayed)
	if replayed > 0 {
		s.log.Info("journal replay complete", "jobs", replayed)
	}
	s.sweepWork(keep)
}

// sweepWork removes work-store files from dead attempt namespaces —
// anything shaped "<job>.a<n>/..." that no live resumable job claims.
func (s *Server) sweepWork(keep map[string]bool) {
	nm, ok := s.workFS.(namer)
	if !ok {
		return
	}
	for _, name := range nm.Names() {
		i := strings.Index(name, "/")
		if i < 0 || !strings.Contains(name[:i], ".a") {
			continue
		}
		if keep[name[:i+1]] {
			continue
		}
		s.workFS.Remove(name)
	}
}

// Submit compiles, admits, queues and executes one job, blocking until
// it completes or ctx is cancelled. Rejections return ErrOversize,
// ErrBusy, ErrDraining or ErrDegraded without executing anything. A
// request carrying an idempotency key the server has already completed
// (or is still running) returns the original outcome with Deduplicated
// set instead of executing again.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req = req.withDefaults()
	s.submitted.Add(1)

	if s.journal != nil && req.IdempotencyKey != "" {
		if resp, ok := s.dedupOutcome(req.IdempotencyKey); ok {
			return resp, nil
		}
	}
	if s.degradedNow() {
		s.reject(req.Tenant, ErrDegraded)
		return nil, ErrDegraded
	}
	j, err := s.prepare(ctx, req)
	if err != nil {
		s.reject(req.Tenant, err)
		return nil, err
	}
	j.submittedAt = time.Now()
	if s.journal != nil {
		j.key = req.IdempotencyKey
	}
	attached, dedup, err := s.enqueue(j)
	if err != nil {
		s.reject(req.Tenant, err)
		return nil, err
	}
	if attached == nil && dedup == nil {
		s.log.Info("job submitted",
			"job", j.id, "tenant", j.req.Tenant, "key", j.key,
			"fingerprint", j.fingerprint, "cache_hit", j.cacheHit,
			"footprint", j.footprint)
	}
	if dedup != nil {
		return dedup, nil
	}
	if attached != nil {
		// Another in-flight job owns this idempotency key; ride along
		// on its outcome.
		select {
		case <-attached.done:
			if attached.err != nil {
				return nil, attached.err
			}
			cp := *attached.resp
			cp.Deduplicated = true
			s.deduplicated.Add(1)
			return &cp, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		// The job stays queued; whoever dispatches it sees the dead
		// context and discards it. Wake budget waiters so a worker
		// parked on this job's behalf rechecks.
		s.mu.Lock()
		s.change.Broadcast()
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// dedupOutcome answers a keyed submit from the journal's retained
// outcomes.
func (s *Server) dedupOutcome(key string) (*Response, bool) {
	raw, ok := s.journal.outcome(key)
	if !ok {
		return nil, false
	}
	resp, err := decodeOutcome(raw)
	if err != nil {
		return nil, false
	}
	s.deduplicated.Add(1)
	return resp, true
}

func decodeOutcome(raw json.RawMessage) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("serve: decode stored outcome: %w", err)
	}
	resp.Deduplicated = true
	return &resp, nil
}

// prepare resolves the machine, compiles through the cache, sizes the
// admission reservation and assigns a fresh job id.
func (s *Server) prepare(ctx context.Context, req Request) (*job, error) {
	j, err := s.build(ctx, req)
	if err != nil {
		return nil, err
	}
	j.id = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	return j, nil
}

// build is prepare minus the id assignment; journal replay uses it to
// reconstruct a job under its original id.
func (s *Server) build(ctx context.Context, req Request) (*job, error) {
	machineFor, err := cliutil.MachineFor(req.Machine)
	if err != nil {
		return nil, &compileError{err}
	}
	mach := machineFor(req.Procs)
	src := req.Source
	if src == "" {
		src = hpf.GaxpySource
	}
	res, fp, bcEnc, hit, err := s.cache.getOrCompile(req.cacheKey(mach), func() (*compiler.Result, string, []byte, error) {
		start := time.Now()
		r, cerr := compiler.CompileSource(src, compiler.Options{
			N: req.N, Procs: req.Procs, MemElems: req.MemElems,
			Machine: mach, Force: req.Force, Sieve: req.Sieve,
			Policy: compiler.PolicyWeighted,
		})
		if cerr != nil {
			return nil, "", nil, &compileError{fmt.Errorf("serve: compile: %w", cerr)}
		}
		// Cache misses only: hits cost a map lookup, not a compile.
		s.histCompile.observe(time.Since(start).Seconds())
		// Lower the plan to its opcode stream and cache the encoded form
		// alongside the plan. A lowering failure is not a compile failure:
		// the job falls back to the tree walk.
		var enc []byte
		if bc, berr := bytecode.Compile(r.Program); berr == nil {
			enc = bytecode.Encode(bc)
		} else {
			s.log.Warn("bytecode lowering failed; jobs on this plan run the tree walk",
				"program", r.Program.Name, "error", berr.Error())
		}
		return r, plan.Fingerprint(r.Program, fingerprintExtras(mach, req.MemElems)), enc, nil
	})
	if err != nil {
		return nil, err
	}
	var bc *bytecode.Program
	if len(bcEnc) > 0 {
		if dec, derr := bytecode.Decode(bcEnc); derr == nil {
			bc = dec
		} else {
			s.log.Warn("cached bytecode failed to decode; job runs the tree walk",
				"error", derr.Error())
		}
	}
	footprint := EstimateFootprint(res.Program, req.Phantom, req.Parity)
	if footprint > s.cfg.MemoryBudget {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOversize, footprint, s.cfg.MemoryBudget)
	}
	return &job{
		req:         req,
		res:         res,
		mach:        mach,
		fingerprint: fp,
		bc:          bc,
		cacheHit:    hit,
		footprint:   footprint,
		ctx:         ctx,
		done:        make(chan struct{}),
	}, nil
}

// enqueue admits the job into its tenant's FIFO, journaling the submit
// first so the job is durable before it is runnable. It returns a
// non-nil attached job when an in-flight job already owns the same
// idempotency key, or a non-nil dedup response when a retained outcome
// answers the key.
func (s *Server) enqueue(j *job) (attached *job, dedup *Response, err error) {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, nil, ErrCrashed
	}
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	if s.queued >= s.cfg.QueueLimit {
		n := s.queued
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %d jobs queued", ErrBusy, n)
	}
	if s.journal != nil && j.key != "" {
		if jx := s.keys[j.key]; jx != nil {
			s.mu.Unlock()
			return jx, nil, nil
		}
		// The key may have completed between Submit's fast path and
		// here; keys are only deleted after their outcome is retained,
		// so checking the journal again closes the gap.
		if raw, ok := s.journal.outcome(j.key); ok {
			s.mu.Unlock()
			resp, derr := decodeOutcome(raw)
			if derr != nil {
				return nil, nil, derr
			}
			s.deduplicated.Add(1)
			return nil, resp, nil
		}
		s.keys[j.key] = j
	}
	s.queued++ // provisional slot while the submit record is written
	s.mu.Unlock()

	if s.journal != nil {
		rec := &walRec{Kind: recSubmit, Job: j.id, Tenant: j.req.Tenant, Key: j.key,
			Weight: j.req.TenantWeight, Spec: &j.req, Fingerprint: j.fingerprint}
		if aerr := s.journal.append(rec); aerr != nil {
			s.degraded.Store(true)
			s.log.Error("journal degraded: submit record failed",
				"job", j.id, "tenant", j.req.Tenant, "key", j.key, "error", aerr.Error())
			s.unenqueue(j)
			// Fail any submit that already attached to this key.
			j.err = aerr
			close(j.done)
			return nil, nil, aerr
		}
		s.crashPoint(CrashSubmit)
	}

	s.mu.Lock()
	if s.crashed || s.closed || s.draining {
		if !s.closed {
			s.queued--
		}
		if j.key != "" && s.keys[j.key] == j {
			delete(s.keys, j.key)
		}
		crashed := s.crashed
		s.mu.Unlock()
		if crashed {
			// The submit record is durable but the "process" died before
			// the job became runnable: the submitter sees an ambiguous
			// failure, and the restarted server replays the job.
			j.err = ErrCrashed
			close(j.done)
			return nil, nil, ErrCrashed
		}
		// Shut down between the record and admission: tell the journal
		// the client saw a rejection (best-effort — the journal may
		// already be closed).
		if s.journal != nil {
			s.journal.append(&walRec{Kind: recCancel, Job: j.id, Error: ErrDraining.Error()})
		}
		j.err = ErrDraining
		close(j.done)
		return nil, nil, ErrDraining
	}
	t := j.req.Tenant
	if j.req.TenantWeight > 0 {
		s.weights[t] = j.req.TenantWeight
	}
	if _, ok := s.queues[t]; !ok && !contains(s.ring, t) {
		s.ring = append(s.ring, t)
	}
	j.enqueuedAt = time.Now()
	s.queues[t] = append(s.queues[t], j)
	s.tenant(t).Submitted++
	s.dispatch.Signal()
	s.mu.Unlock()
	return nil, nil, nil
}

// unenqueue rolls back a provisional admission after a journal append
// failure.
func (s *Server) unenqueue(j *job) {
	s.mu.Lock()
	if !s.closed {
		s.queued--
	}
	if j.key != "" && s.keys[j.key] == j {
		delete(s.keys, j.key)
	}
	s.mu.Unlock()
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// tenant returns t's counters, creating them on first use. Callers hold
// s.mu.
func (s *Server) tenant(t string) *tenantCounters {
	tc := s.tenants[t]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[t] = tc
	}
	return tc
}

func (s *Server) reject(tenant string, err error) {
	switch {
	case errors.Is(err, ErrOversize):
		s.rejectedOversize.Add(1)
	case errors.Is(err, ErrBusy):
		s.rejectedBusy.Add(1)
	case errors.Is(err, ErrDraining) || errors.Is(err, ErrDegraded):
		s.rejectedDraining.Add(1)
	}
	s.mu.Lock()
	s.tenant(tenant).Rejected++
	s.mu.Unlock()
}

// degradedNow reports whether the journal has given up on its disk.
func (s *Server) degradedNow() bool {
	if s.degraded.Load() {
		return true
	}
	if s.journal != nil && s.journal.degraded() {
		s.degraded.Store(true)
		return true
	}
	return false
}

// worker pulls jobs fair-share, reserves their footprint against the
// budget, and executes them.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		if !j.enqueuedAt.IsZero() {
			s.histQueueWait.observe(time.Since(j.enqueuedAt).Seconds())
		}
		if err := s.reserve(j); err != nil {
			s.finish(j, nil, err)
			continue
		}
		s.histFootprint.observe(float64(j.footprint))
		if s.pickupGate != nil {
			s.pickupGate(j)
		}
		if err := j.ctx.Err(); err != nil {
			// The submitter vanished between the reservation and the
			// pickup: return the footprint before accounting the
			// cancellation, or those bytes would stay charged against
			// the budget for a job that never runs.
			s.release(j.footprint)
			s.finish(j, nil, err)
			continue
		}
		if s.journal != nil {
			if !j.resume {
				j.attempt++
			}
			rec := &walRec{Kind: recDispatch, Job: j.id, Attempt: j.attempt}
			if aerr := s.journal.append(rec); aerr != nil && !s.isCrashed() {
				s.degraded.Store(true)
				s.log.Error("journal degraded: dispatch record failed",
					"job", j.id, "attempt", j.attempt, "error", aerr.Error())
			}
			s.crashPoint(CrashDispatch)
			if s.isCrashed() {
				s.release(j.footprint)
				s.finish(j, nil, ErrCrashed)
				continue
			}
		}
		s.log.Info("job dispatched",
			"job", j.id, "tenant", j.req.Tenant, "key", j.key,
			"fingerprint", j.fingerprint, "attempt", j.attempt,
			"resume", j.resume, "footprint", j.footprint)
		resp, err := s.runJob(j)
		s.release(j.footprint)
		s.finish(j, resp, err)
	}
}

// next blocks until a job is available or the server closes (nil).
// Dispatch is smooth weighted round-robin over tenants with pending
// work, FIFO within a tenant: each tenant's current credit grows by its
// weight every round, the largest credit wins the slot and pays the
// round's total back, so a tenant with weight w receives w of every
// sum-of-weights dispatches and a tenant flooding the queue cannot
// starve the others.
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if s.queued > 0 {
			if s.wrr == nil {
				s.wrr = make(map[string]int)
			}
			total, best := 0, ""
			for _, t := range s.ring {
				if len(s.queues[t]) == 0 {
					continue
				}
				w := s.weightOf(t)
				s.wrr[t] += w
				total += w
				if best == "" || s.wrr[t] > s.wrr[best] {
					best = t
				}
			}
			if best != "" {
				s.wrr[best] -= total
				q := s.queues[best]
				j := q[0]
				q[0] = nil
				s.queues[best] = q[1:]
				s.queued--
				s.inflight++
				return j
			}
		}
		s.dispatch.Wait()
	}
}

// weightOf resolves a tenant's fair-share weight. Callers hold s.mu.
func (s *Server) weightOf(t string) int {
	if w := s.weights[t]; w > 0 {
		return w
	}
	return 1
}

// reserve blocks until the job's footprint fits under the budget, then
// charges it. A job whose submitter already gave up is discarded here
// instead of waiting for memory it will never use.
func (s *Server) reserve(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if s.closed {
			return ErrDraining
		}
		if s.reserved+j.footprint <= s.cfg.MemoryBudget {
			s.reserved += j.footprint
			return nil
		}
		s.change.Wait()
	}
}

func (s *Server) release(footprint int64) {
	s.mu.Lock()
	s.reserved -= footprint
	s.change.Broadcast()
	s.mu.Unlock()
}

// finish completes the job and publishes the outcome, journaling it
// first (unless the simulated process death already happened — a dead
// process writes nothing, which is exactly what lets the restarted
// server find the job again).
func (s *Server) finish(j *job, resp *Response, err error) {
	if s.journal != nil && !s.isCrashed() {
		resp, err = s.journalOutcome(j, resp, err)
	}
	j.resp, j.err = resp, err
	s.mu.Lock()
	s.inflight--
	if j.key != "" && s.keys[j.key] == j {
		delete(s.keys, j.key)
	}
	tc := s.tenant(j.req.Tenant)
	switch {
	case err == nil:
		tc.Completed++
	default:
		tc.Failed++
	}
	s.change.Broadcast()
	s.mu.Unlock()
	outcome := "completed"
	switch {
	case err == nil:
		s.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "cancelled"
		s.cancelled.Add(1)
	default:
		outcome = "failed"
		s.failed.Add(1)
	}
	if !j.submittedAt.IsZero() {
		s.histJobLatency.observe(time.Since(j.submittedAt).Seconds())
	}
	attrs := []any{
		"job", j.id, "tenant", j.req.Tenant, "key", j.key,
		"fingerprint", j.fingerprint, "attempt", j.attempt, "outcome", outcome,
	}
	if err != nil {
		s.log.Warn("job finished", append(attrs, "error", err.Error())...)
	} else {
		if resp != nil {
			attrs = append(attrs, "sim_s", resp.SimSeconds, "attempts", resp.Attempts)
		}
		s.log.Info("job finished", attrs...)
	}
	close(j.done)
}

// journalOutcome records the job's terminal transition. A successful
// outcome with an idempotency key is retained (minus the trace
// artifact) for retried submitters; failures free the key for a fresh
// attempt. When the completion crash point fires the record is durable
// but the response never reaches the submitter.
func (s *Server) journalOutcome(j *job, resp *Response, err error) (*Response, error) {
	var rec *walRec
	switch {
	case err == nil:
		rec = &walRec{Kind: recComplete, Job: j.id, Tenant: j.req.Tenant, OK: true}
		if j.key != "" {
			cp := *resp
			cp.Trace = nil
			if raw, merr := json.Marshal(&cp); merr == nil {
				rec.Key, rec.Outcome = j.key, raw
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		rec = &walRec{Kind: recCancel, Job: j.id, Error: err.Error()}
	default:
		rec = &walRec{Kind: recComplete, Job: j.id, Tenant: j.req.Tenant, Error: err.Error()}
	}
	if aerr := s.journal.append(rec); aerr != nil {
		if !s.isCrashed() {
			s.degraded.Store(true)
			s.log.Error("journal degraded: completion record failed",
				"job", j.id, "tenant", j.req.Tenant, "key", j.key, "error", aerr.Error())
		}
		return resp, err
	}
	if err == nil {
		s.crashPoint(CrashComplete)
	}
	if s.isCrashed() {
		// The transition is durable but the "process" died before the
		// response went out: the submitter sees an ambiguous failure,
		// and a retried submit with the same key is answered from the
		// retained outcome.
		return nil, ErrCrashed
	}
	if j.attempt > 0 {
		s.sweepAttempts(j.id)
	}
	return resp, err
}

// sweepAttempts removes every work-store file of the job's attempt
// namespaces after its terminal transition.
func (s *Server) sweepAttempts(id string) {
	nm, ok := s.workFS.(namer)
	if !ok {
		return
	}
	prefix := id + ".a"
	for _, name := range nm.Names() {
		if strings.HasPrefix(name, prefix) {
			s.workFS.Remove(name)
		}
	}
}

// crashPoint fires the configured simulated process death when point's
// Nth occurrence arrives.
func (s *Server) crashPoint(point string) {
	c := s.cfg.Crash
	if c == nil || c.Point != point {
		return
	}
	if s.crashN.Add(1) != c.N {
		return
	}
	s.beginCrash()
}

// beginCrash simulates the process dying now: the journal stops
// persisting (the disk is fine; the process is gone), every queued and
// running job's caller fails, and the worker pool unwinds. The journal
// still holds everything a restarted server needs.
func (s *Server) beginCrash() {
	s.log.Warn("simulated process crash", "point", s.cfg.Crash.Point, "n", s.cfg.Crash.N)
	if s.journal != nil {
		s.journal.kill()
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	s.draining = true
	s.closed = true
	var orphans []*job
	for t, q := range s.queues {
		orphans = append(orphans, q...)
		s.queues[t] = nil
	}
	s.queued = 0
	s.dispatch.Broadcast()
	s.change.Broadcast()
	s.mu.Unlock()
	s.crashCancel()
	for _, j := range orphans {
		j.err = ErrCrashed
		close(j.done)
	}
}

func (s *Server) isCrashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// runJob executes one admitted job: the shared flags→options mapping,
// the canonical fills, and a per-job deadline. Resumable jobs on a
// journaled server run against a durable per-attempt namespace of the
// work store so a restart can pick up their exec checkpoints; everything
// else runs on a fresh in-memory store. Jobs with a kill schedule run
// the full recovery pipeline.
func (s *Server) runJob(j *job) (*Response, error) {
	ctx, cancel := context.WithTimeout(j.ctx, j.req.timeout(s.cfg.DefaultTimeout))
	defer cancel()
	if s.crashCtx != nil {
		stop := context.AfterFunc(s.crashCtx, cancel)
		defer stop()
	}

	rf := j.req.runFlags()
	durable := s.journal != nil && j.req.resumable()
	var base iosim.FS
	if durable {
		base = &prefixFS{base: s.workFS, prefix: workPrefix(j.id, j.attempt)}
	}
	resume := durable && j.resume
	eopts, _, err := rf.Build(base, resume)
	if err != nil {
		return nil, err
	}
	eopts.Fill = cliutil.FillsFor(j.res)
	eopts.Bytecode = j.bc
	if durable {
		eopts.RestoreStats = resume
		if c := s.cfg.Crash; c != nil && c.Point == CrashMidrun {
			eopts.CkptHook = func(int) { s.crashPoint(CrashMidrun) }
		}
	}
	var tracer *trace.Tracer
	if j.req.Trace {
		tracer = trace.NewTracer(j.res.Program.Procs)
		eopts.Trace = tracer
		// Publish spans live: subscribers follow GET /jobs/{id}/trace
		// while the job runs. CloseSink on exit drains the hand-off
		// queue, appends the stream trailer and finishes the stream on
		// every path — including failures, where followers still get a
		// well-terminated stream. The recovery path below reassigns
		// tracer to the last attempt's tracer, which shares the same
		// sink state via AdoptSink.
		st := s.openStream(j.id)
		tracer.SetSink(&streamSink{st: st}, 0)
		defer func() {
			if cerr := tracer.CloseSink(); cerr != nil {
				s.log.Warn("span stream close failed", "job", j.id, "error", cerr.Error())
			}
		}()
	}

	resp := &Response{
		JobID:           j.id,
		Tenant:          j.req.Tenant,
		Program:         j.res.Program.Name,
		Strategy:        j.res.Program.Strategy,
		PlanFingerprint: j.fingerprint,
		CacheHit:        j.cacheHit,
		Bytecode:        j.bc != nil,
		Attempts:        1,
	}
	var out *exec.Result
	switch {
	case len(eopts.Kill) > 0:
		eopts.Detect = &mp.Detector{Heartbeat: 1e-3, Misses: 3}
		rout, rerr := exec.RunResilientCtx(ctx, j.res.Program, j.mach, eopts, len(eopts.Kill))
		if rerr != nil {
			return nil, rerr
		}
		out = rout.Result
		resp.Attempts = rout.Attempts
		resp.Recoveries = len(rout.Recoveries)
		tracer = rout.Trace
	case resume:
		out, err = exec.ResumeCtx(ctx, j.res.Program, j.mach, eopts)
		if errors.Is(err, exec.ErrNoCheckpoint) {
			// Dispatched, but the crash landed before the first commit:
			// there is nothing to restore, so run from scratch in the
			// same namespace.
			s.sweepAttempts(j.id)
			eopts.RestoreStats = false
			out, err = exec.RunCtx(ctx, j.res.Program, j.mach, eopts)
		} else if err == nil {
			resp.Resumed = true
			s.journal.addResumed(1)
			s.log.Info("job resumed from checkpoint",
				"job", j.id, "tenant", j.req.Tenant, "key", j.key,
				"fingerprint", j.fingerprint, "attempt", j.attempt)
		}
		if err != nil {
			return nil, err
		}
	default:
		out, err = exec.RunCtx(ctx, j.res.Program, j.mach, eopts)
		if err != nil {
			return nil, err
		}
	}
	resp.SimSeconds = out.Stats.ElapsedSeconds()
	resp.Stats = out.Stats.Snapshot()
	if j.req.Trace && tracer != nil {
		var buf bytes.Buffer
		if err := tracer.ExportChromeTrace(&buf); err != nil {
			return nil, err
		}
		resp.Trace = buf.Bytes()
	}
	if durable {
		// The durable namespace's array files and checkpoints are dead
		// weight once the stats are captured.
		out.Close()
	}
	return resp, nil
}

// Metrics is the server's observable state.
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`

	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Cancelled    int64 `json:"cancelled"`
	Deduplicated int64 `json:"deduplicated,omitempty"`

	RejectedOversize int64 `json:"rejected_oversize"`
	RejectedBusy     int64 `json:"rejected_busy"`
	RejectedDraining int64 `json:"rejected_draining"`

	ReservedBytes int64 `json:"reserved_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`

	// Degraded mirrors the journal's give-up flag; Journal carries the
	// durability counters when journaling is on.
	Degraded bool          `json:"degraded,omitempty"`
	Journal  *JournalStats `json:"journal,omitempty"`

	Cache   CacheStats                 `json:"cache"`
	Tenants map[string]*tenantCounters `json:"tenants"`

	Bufpool bufpool.Stats `json:"bufpool"`
}

// MetricsSnapshot captures the current metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queued,
		Inflight:      s.inflight,
		ReservedBytes: s.reserved,
		BudgetBytes:   s.cfg.MemoryBudget,
		Tenants:       make(map[string]*tenantCounters, len(s.tenants)),
	}
	for t, c := range s.tenants {
		cc := *c
		m.Tenants[t] = &cc
	}
	s.mu.Unlock()
	m.Submitted = s.submitted.Load()
	m.Completed = s.completed.Load()
	m.Failed = s.failed.Load()
	m.Cancelled = s.cancelled.Load()
	m.Deduplicated = s.deduplicated.Load()
	m.RejectedOversize = s.rejectedOversize.Load()
	m.RejectedBusy = s.rejectedBusy.Load()
	m.RejectedDraining = s.rejectedDraining.Load()
	m.Cache = s.cache.stats()
	m.Bufpool = bufpool.Snapshot()
	if s.journal != nil {
		js := s.journal.statsSnapshot()
		m.Journal = &js
		m.Degraded = js.Degraded || s.degraded.Load()
	}
	return m
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Degraded reports whether the journal disk forced the server into
// read-only degraded mode.
func (s *Server) Degraded() bool { return s.degradedNow() }

// Drain stops accepting new jobs, waits until the queue and the worker
// pool are empty (or ctx expires), then stops the workers. After Drain
// the server serves no more jobs; metrics stay readable.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for (s.queued > 0 || s.inflight > 0) && !s.closed {
			s.change.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

// Close stops the worker pool immediately: still-queued jobs fail with
// ErrDraining and workers exit after their current job. On a journaled
// server, orphaned fresh jobs are cancelled in the journal (their
// submitters saw the rejection), while orphaned replayed jobs — which
// have no submitter — stay live and replay on the next Open. Use Drain
// for a graceful stop. Close is idempotent and always waits for the
// workers to unwind.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		if s.journal != nil {
			s.journal.close()
		}
		return
	}
	s.draining = true
	s.closed = true
	var orphans []*job
	for t, q := range s.queues {
		orphans = append(orphans, q...)
		s.queues[t] = nil
	}
	s.queued = 0
	for _, j := range orphans {
		s.tenant(j.req.Tenant).Rejected++
	}
	s.dispatch.Broadcast()
	s.change.Broadcast()
	s.mu.Unlock()
	for _, j := range orphans {
		if s.journal != nil && !j.replayed {
			s.journal.append(&walRec{Kind: recCancel, Job: j.id, Error: ErrDraining.Error()})
		}
		j.err = ErrDraining
		s.rejectedDraining.Add(1)
		close(j.done)
	}
	s.wg.Wait()
	if s.journal != nil {
		s.journal.close()
	}
}
