package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrOversize rejects a job whose estimated footprint exceeds the
	// whole memory budget — it could never be admitted.
	ErrOversize = errors.New("serve: job footprint exceeds the memory budget")
	// ErrBusy rejects a job because the queue is full.
	ErrBusy = errors.New("serve: queue full")
	// ErrDraining rejects a job because the server is shutting down.
	ErrDraining = errors.New("serve: draining")
)

// Config tunes a Server. Zero values take the defaults noted per field.
type Config struct {
	// Workers bounds concurrent executions (default 4).
	Workers int
	// QueueLimit bounds the total number of queued jobs (default 1024).
	QueueLimit int
	// CacheEntries bounds the compiled-plan LRU (default 128).
	CacheEntries int
	// MemoryBudget bounds the summed estimated footprint of inflight
	// jobs, in bytes (default 1 GiB). A job whose own estimate exceeds
	// the budget is rejected outright; otherwise dispatch waits until
	// its reservation fits.
	MemoryBudget int64
	// DefaultTimeout is the per-job execution deadline when the request
	// does not set one (default 60s).
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	return c
}

// job is one admitted submission moving through the queue.
type job struct {
	id          string
	req         Request
	res         *compiler.Result
	mach        sim.Config
	fingerprint string
	cacheHit    bool
	footprint   int64
	ctx         context.Context

	done chan struct{}
	resp *Response
	err  error
}

// tenantCounters is the per-tenant accounting view.
type tenantCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
}

// Server is the compile-and-run service. Create with New, submit with
// Submit (or over HTTP via Handler), and stop with Drain or Close.
type Server struct {
	cfg   Config
	cache *planCache

	mu       sync.Mutex
	dispatch *sync.Cond // signaled on job arrival and shutdown
	change   *sync.Cond // signaled on completion, release and drain
	queues   map[string][]*job
	ring     []string // tenants in first-arrival order; empty queues are skipped
	rr       int
	queued   int
	inflight int
	reserved int64
	draining bool
	closed   bool
	tenants  map[string]*tenantCounters

	wg     sync.WaitGroup
	jobSeq atomic.Int64

	submitted        atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	cancelled        atomic.Int64
	rejectedOversize atomic.Int64
	rejectedBusy     atomic.Int64
	rejectedDraining atomic.Int64
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		queues:  make(map[string][]*job),
		tenants: make(map[string]*tenantCounters),
	}
	s.cache = newPlanCache(s.cfg.CacheEntries)
	s.dispatch = sync.NewCond(&s.mu)
	s.change = sync.NewCond(&s.mu)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit compiles, admits, queues and executes one job, blocking until
// it completes or ctx is cancelled. Rejections return ErrOversize,
// ErrBusy or ErrDraining without executing anything.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req = req.withDefaults()
	s.submitted.Add(1)

	j, err := s.prepare(ctx, req)
	if err != nil {
		s.reject(req.Tenant, err)
		return nil, err
	}
	if err := s.enqueue(j); err != nil {
		s.reject(req.Tenant, err)
		return nil, err
	}
	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		// The job stays queued; whoever dispatches it sees the dead
		// context and discards it. Wake budget waiters so a worker
		// parked on this job's behalf rechecks.
		s.mu.Lock()
		s.change.Broadcast()
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// prepare resolves the machine, compiles through the cache and sizes
// the admission reservation.
func (s *Server) prepare(ctx context.Context, req Request) (*job, error) {
	machineFor, err := cliutil.MachineFor(req.Machine)
	if err != nil {
		return nil, &compileError{err}
	}
	mach := machineFor(req.Procs)
	src := req.Source
	if src == "" {
		src = hpf.GaxpySource
	}
	res, fp, hit, err := s.cache.getOrCompile(req.cacheKey(mach), func() (*compiler.Result, string, error) {
		r, cerr := compiler.CompileSource(src, compiler.Options{
			N: req.N, Procs: req.Procs, MemElems: req.MemElems,
			Machine: mach, Force: req.Force, Sieve: req.Sieve,
			Policy: compiler.PolicyWeighted,
		})
		if cerr != nil {
			return nil, "", &compileError{fmt.Errorf("serve: compile: %w", cerr)}
		}
		return r, plan.Fingerprint(r.Program, fingerprintExtras(mach, req.MemElems)), nil
	})
	if err != nil {
		return nil, err
	}
	footprint := EstimateFootprint(res.Program, req.Phantom, req.Parity)
	if footprint > s.cfg.MemoryBudget {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOversize, footprint, s.cfg.MemoryBudget)
	}
	return &job{
		id:          fmt.Sprintf("job-%d", s.jobSeq.Add(1)),
		req:         req,
		res:         res,
		mach:        mach,
		fingerprint: fp,
		cacheHit:    hit,
		footprint:   footprint,
		ctx:         ctx,
		done:        make(chan struct{}),
	}, nil
}

// enqueue admits the job into its tenant's FIFO.
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return ErrDraining
	}
	if s.queued >= s.cfg.QueueLimit {
		return fmt.Errorf("%w: %d jobs queued", ErrBusy, s.queued)
	}
	t := j.req.Tenant
	if _, ok := s.queues[t]; !ok && !contains(s.ring, t) {
		s.ring = append(s.ring, t)
	}
	s.queues[t] = append(s.queues[t], j)
	s.queued++
	s.tenant(t).Submitted++
	s.dispatch.Signal()
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// tenant returns t's counters, creating them on first use. Callers hold
// s.mu.
func (s *Server) tenant(t string) *tenantCounters {
	tc := s.tenants[t]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[t] = tc
	}
	return tc
}

func (s *Server) reject(tenant string, err error) {
	switch {
	case errors.Is(err, ErrOversize):
		s.rejectedOversize.Add(1)
	case errors.Is(err, ErrBusy):
		s.rejectedBusy.Add(1)
	case errors.Is(err, ErrDraining):
		s.rejectedDraining.Add(1)
	}
	s.mu.Lock()
	s.tenant(tenant).Rejected++
	s.mu.Unlock()
}

// worker pulls jobs fair-share, reserves their footprint against the
// budget, and executes them.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		if err := s.reserve(j); err != nil {
			s.finish(j, nil, err)
			continue
		}
		resp, err := s.runJob(j)
		s.release(j.footprint)
		s.finish(j, resp, err)
	}
}

// next blocks until a job is available or the server closes (nil).
// Dispatch is round-robin over tenants with pending work, FIFO within a
// tenant: a tenant flooding the queue cannot starve the others, because
// each pass hands out at most one of its jobs.
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if s.queued > 0 {
			n := len(s.ring)
			for i := 0; i < n; i++ {
				t := s.ring[(s.rr+i)%n]
				q := s.queues[t]
				if len(q) == 0 {
					continue
				}
				j := q[0]
				q[0] = nil
				s.queues[t] = q[1:]
				s.rr = (s.rr + i + 1) % n
				s.queued--
				s.inflight++
				return j
			}
		}
		s.dispatch.Wait()
	}
}

// reserve blocks until the job's footprint fits under the budget, then
// charges it. A job whose submitter already gave up is discarded here
// instead of waiting for memory it will never use.
func (s *Server) reserve(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if s.closed {
			return ErrDraining
		}
		if s.reserved+j.footprint <= s.cfg.MemoryBudget {
			s.reserved += j.footprint
			return nil
		}
		s.change.Wait()
	}
}

func (s *Server) release(footprint int64) {
	s.mu.Lock()
	s.reserved -= footprint
	s.change.Broadcast()
	s.mu.Unlock()
}

// finish completes the job and publishes the outcome.
func (s *Server) finish(j *job, resp *Response, err error) {
	j.resp, j.err = resp, err
	s.mu.Lock()
	s.inflight--
	tc := s.tenant(j.req.Tenant)
	switch {
	case err == nil:
		tc.Completed++
	default:
		tc.Failed++
	}
	s.change.Broadcast()
	s.mu.Unlock()
	switch {
	case err == nil:
		s.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
	default:
		s.failed.Add(1)
	}
	close(j.done)
}

// runJob executes one admitted job: a fresh in-memory store, the shared
// flags→options mapping, the canonical fills, and a per-job deadline.
// Jobs with a kill schedule run the full recovery pipeline.
func (s *Server) runJob(j *job) (*Response, error) {
	ctx, cancel := context.WithTimeout(j.ctx, j.req.timeout(s.cfg.DefaultTimeout))
	defer cancel()

	rf := j.req.runFlags()
	eopts, _, err := rf.Build(nil, false)
	if err != nil {
		return nil, err
	}
	eopts.Fill = cliutil.FillsFor(j.res)
	var tracer *trace.Tracer
	if j.req.Trace {
		tracer = trace.NewTracer(j.res.Program.Procs)
		eopts.Trace = tracer
	}

	resp := &Response{
		JobID:           j.id,
		Tenant:          j.req.Tenant,
		Program:         j.res.Program.Name,
		Strategy:        j.res.Program.Strategy,
		PlanFingerprint: j.fingerprint,
		CacheHit:        j.cacheHit,
		Attempts:        1,
	}
	var out *exec.Result
	if len(eopts.Kill) > 0 {
		eopts.Detect = &mp.Detector{Heartbeat: 1e-3, Misses: 3}
		rout, rerr := exec.RunResilientCtx(ctx, j.res.Program, j.mach, eopts, len(eopts.Kill))
		if rerr != nil {
			return nil, rerr
		}
		out = rout.Result
		resp.Attempts = rout.Attempts
		resp.Recoveries = len(rout.Recoveries)
		tracer = rout.Trace
	} else {
		out, err = exec.RunCtx(ctx, j.res.Program, j.mach, eopts)
		if err != nil {
			return nil, err
		}
	}
	resp.SimSeconds = out.Stats.ElapsedSeconds()
	resp.Stats = out.Stats.Snapshot()
	if j.req.Trace && tracer != nil {
		var buf bytes.Buffer
		if err := tracer.ExportChromeTrace(&buf); err != nil {
			return nil, err
		}
		resp.Trace = buf.Bytes()
	}
	return resp, nil
}

// Metrics is the server's observable state.
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	RejectedOversize int64 `json:"rejected_oversize"`
	RejectedBusy     int64 `json:"rejected_busy"`
	RejectedDraining int64 `json:"rejected_draining"`

	ReservedBytes int64 `json:"reserved_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`

	Cache   CacheStats                 `json:"cache"`
	Tenants map[string]*tenantCounters `json:"tenants"`

	Bufpool bufpool.Stats `json:"bufpool"`
}

// MetricsSnapshot captures the current metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queued,
		Inflight:      s.inflight,
		ReservedBytes: s.reserved,
		BudgetBytes:   s.cfg.MemoryBudget,
		Tenants:       make(map[string]*tenantCounters, len(s.tenants)),
	}
	for t, c := range s.tenants {
		cc := *c
		m.Tenants[t] = &cc
	}
	s.mu.Unlock()
	m.Submitted = s.submitted.Load()
	m.Completed = s.completed.Load()
	m.Failed = s.failed.Load()
	m.Cancelled = s.cancelled.Load()
	m.RejectedOversize = s.rejectedOversize.Load()
	m.RejectedBusy = s.rejectedBusy.Load()
	m.RejectedDraining = s.rejectedDraining.Load()
	m.Cache = s.cache.stats()
	m.Bufpool = bufpool.Snapshot()
	return m
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Drain stops accepting new jobs, waits until the queue and the worker
// pool are empty (or ctx expires), then stops the workers. After Drain
// the server serves no more jobs; metrics stay readable.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for (s.queued > 0 || s.inflight > 0) && !s.closed {
			s.change.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

// Close stops the worker pool immediately: still-queued jobs fail with
// ErrDraining and workers exit after their current job. Use Drain for a
// graceful stop.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.closed = true
	var orphans []*job
	for t, q := range s.queues {
		orphans = append(orphans, q...)
		s.queues[t] = nil
	}
	s.queued = 0
	for _, j := range orphans {
		s.tenant(j.req.Tenant).Rejected++
	}
	s.dispatch.Broadcast()
	s.change.Broadcast()
	s.mu.Unlock()
	for _, j := range orphans {
		j.err = ErrDraining
		s.rejectedDraining.Add(1)
		close(j.done)
	}
	s.wg.Wait()
}
