package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/cliutil"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/trace"
)

// directSnapshot runs req the way ooc-run would — no server, no queue,
// no cache — and returns the marshalled statistics snapshot.
func directSnapshot(t *testing.T, req Request) []byte {
	t.Helper()
	req = req.withDefaults()
	machineFor, err := cliutil.MachineFor(req.Machine)
	if err != nil {
		t.Fatal(err)
	}
	mach := machineFor(req.Procs)
	src := req.Source
	if src == "" {
		src = hpf.GaxpySource
	}
	res, err := compiler.CompileSource(src, compiler.Options{
		N: req.N, Procs: req.Procs, MemElems: req.MemElems,
		Machine: mach, Force: req.Force, Sieve: req.Sieve,
		Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	rf := req.runFlags()
	eopts, _, err := rf.Build(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	eopts.Fill = cliutil.FillsFor(res)
	var out *exec.Result
	if len(eopts.Kill) > 0 {
		eopts.Detect = &mp.Detector{Heartbeat: 1e-3, Misses: 3}
		rout, rerr := exec.RunResilient(res.Program, mach, eopts, len(eopts.Kill))
		if rerr != nil {
			t.Fatal(rerr)
		}
		out = rout.Result
	} else {
		out, err = exec.Run(res.Program, mach, eopts)
		if err != nil {
			t.Fatal(err)
		}
	}
	return mustJSON(t, out.Stats.Snapshot())
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testMix is the concurrency workload: the three built-in kernels, the
// shift-pattern stencil, a chaos-disturbed run and a fail-stop recovery
// run, all small.
func testMix(t *testing.T) []Request {
	t.Helper()
	stencil, err := os.ReadFile("../../testdata/columnstencil.hpf")
	if err != nil {
		t.Fatal(err)
	}
	return []Request{
		{N: 64, Procs: 4, MemElems: 1 << 12},
		{Source: hpf.TransposeSource, N: 64, Procs: 4, MemElems: 1 << 12},
		{Source: hpf.EwiseSource, N: 64, Procs: 4, MemElems: 1 << 12},
		{Source: string(stencil), N: 64, Procs: 4, MemElems: 1 << 12},
		{N: 64, Procs: 4, MemElems: 1 << 12, Chaos: 0.02, ChaosSeed: 11},
		{N: 64, Procs: 4, MemElems: 1 << 12, Checkpoint: 2, Parity: true, KillRank: "1@60"},
	}
}

// TestServedMatchesDirect pushes concurrent mixed jobs — several copies
// of each kind, more jobs than workers — through the server and checks
// every response's statistics are bitwise identical to a direct
// exec.Run of the same request. Run under -race this also pins that
// sharing one cached plan across concurrent executions is safe.
func TestServedMatchesDirect(t *testing.T) {
	mix := testMix(t)
	want := make([][]byte, len(mix))
	for i, req := range mix {
		want[i] = directSnapshot(t, req)
	}

	s := New(Config{Workers: 4})
	defer s.Close()
	const copies = 2
	var wg sync.WaitGroup
	errs := make(chan error, copies*len(mix))
	for c := 0; c < copies; c++ {
		for i, req := range mix {
			wg.Add(1)
			go func(i int, req Request) {
				defer wg.Done()
				req.Tenant = []string{"alpha", "beta", "gamma"}[i%3]
				resp, err := s.Submit(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				got := mustJSON(t, resp.Stats)
				if string(got) != string(want[i]) {
					errs <- errors.New("served stats diverge from direct run for mix[" +
						resp.Program + "/" + resp.Strategy + "]")
				}
			}(i, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.MetricsSnapshot()
	if m.Completed != copies*int64(len(mix)) {
		t.Errorf("completed = %d, want %d", m.Completed, copies*len(mix))
	}
	// The chaos and kill-rank variants share the plain GAXPY's compile
	// inputs — fault injection is an execution option, not a compile
	// parameter — so the mix holds 4 distinct plans, not 6.
	if m.Cache.Misses != 4 {
		t.Errorf("cache misses = %d, want one per distinct compiled plan (4)", m.Cache.Misses)
	}
}

// TestServedKillRankReportsRecovery checks the resilient path surfaces
// its attempt counters through the response.
func TestServedKillRankReportsRecovery(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	resp, err := s.Submit(context.Background(), Request{
		N: 64, Procs: 4, MemElems: 1 << 12, Checkpoint: 2, Parity: true, KillRank: "1@60",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts < 2 || resp.Recoveries < 1 {
		t.Errorf("kill-rank job: attempts=%d recoveries=%d, want a survived loss", resp.Attempts, resp.Recoveries)
	}
}

// TestTimeoutLeavesServerServing cancels a job mid-run via its deadline
// and checks the server stays healthy and the arena balanced: the next
// job completes and every buffer the cancelled run took was returned.
func TestTimeoutLeavesServerServing(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)

	s := New(Config{Workers: 2})
	defer s.Close()
	_, err := s.Submit(context.Background(), Request{N: 256, Procs: 4, MemElems: 1 << 12, TimeoutMS: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ms deadline on a multi-ms job: err = %v, want deadline exceeded", err)
	}

	resp, err := s.Submit(context.Background(), Request{N: 64, Procs: 4, MemElems: 1 << 12})
	if err != nil {
		t.Fatalf("server stopped serving after a cancelled job: %v", err)
	}
	if resp.SimSeconds <= 0 {
		t.Error("follow-up job produced no simulated time")
	}

	m := s.MetricsSnapshot()
	if m.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", m.Cancelled)
	}
	if bp := m.Bufpool; bp.Gets != bp.Puts+bp.Drops {
		t.Errorf("arena leak after cancellation: gets %d != puts %d + drops %d", bp.Gets, bp.Puts, bp.Drops)
	}
	if m.ReservedBytes != 0 {
		t.Errorf("reserved bytes = %d after all jobs finished", m.ReservedBytes)
	}
}

// TestSubmitterGoneDiscardsQueuedJob cancels the submission context
// while the job is still queued; the job is discarded, not executed.
func TestSubmitterGoneDiscardsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	// Occupy the only worker, then queue a job whose submitter gives up.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), Request{N: 256, Procs: 4, MemElems: 1 << 12}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the blocker reach the worker

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, Request{N: 64, Procs: 4, MemElems: 1 << 12}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	wg.Wait()
}

// TestOversizeRejected rejects a job that could never fit the budget.
func TestOversizeRejected(t *testing.T) {
	s := New(Config{Workers: 1, MemoryBudget: 1 << 20})
	defer s.Close()
	_, err := s.Submit(context.Background(), Request{N: 512, Procs: 4, MemElems: 1 << 12})
	if !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	m := s.MetricsSnapshot()
	if m.RejectedOversize != 1 {
		t.Errorf("rejected_oversize = %d, want 1", m.RejectedOversize)
	}
}

// TestBudgetSerializesInflight gives the budget room for one job at a
// time; concurrent submissions must all complete (dispatch waits for
// the reservation instead of rejecting or deadlocking).
func TestBudgetSerializesInflight(t *testing.T) {
	req := Request{N: 64, Procs: 4, MemElems: 1 << 12}.withDefaults()
	machineFor, _ := cliutil.MachineFor("")
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: req.N, Procs: req.Procs, MemElems: req.MemElems,
		Machine: machineFor(req.Procs), Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	one := EstimateFootprint(res.Program, false, false)

	s := New(Config{Workers: 4, MemoryBudget: one + one/2})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if m := s.MetricsSnapshot(); m.ReservedBytes != 0 || m.Completed != 6 {
		t.Errorf("after run: reserved=%d completed=%d", m.ReservedBytes, m.Completed)
	}
}

// TestFairShareDispatch checks round-robin over tenants: with one
// tenant flooding the queue, another tenant's lone job is dispatched on
// the next pass, not after the flood.
func TestFairShareDispatch(t *testing.T) {
	s := &Server{
		cfg:     Config{}.withDefaults(),
		queues:  make(map[string][]*job),
		tenants: make(map[string]*tenantCounters),
	}
	s.dispatch = sync.NewCond(&s.mu)
	s.change = sync.NewCond(&s.mu)

	mk := func(tenant, id string) *job {
		return &job{id: id, req: Request{Tenant: tenant}, ctx: context.Background(), done: make(chan struct{})}
	}
	for _, j := range []*job{mk("a", "a1"), mk("a", "a2"), mk("a", "a3"), mk("b", "b1")} {
		if _, _, err := s.enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 4; i++ {
		order = append(order, s.next().id)
	}
	want := "a1 b1 a2 a3"
	got := order[0] + " " + order[1] + " " + order[2] + " " + order[3]
	if got != want {
		t.Errorf("dispatch order %q, want %q", got, want)
	}
}

// TestDrainFinishesQueuedJobs drains with work still queued: everything
// already accepted completes, later submissions are turned away.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	const jobs = 3
	var wg sync.WaitGroup
	done := make(chan *Response, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{N: 64, Procs: 4, MemElems: 1 << 12})
			if err != nil {
				t.Error(err)
				return
			}
			done <- resp
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the jobs into the queue
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if len(done) != jobs {
		t.Errorf("%d/%d accepted jobs completed through the drain", len(done), jobs)
	}
	if _, err := s.Submit(context.Background(), Request{N: 64, Procs: 4}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestCacheEvictsLRU pins the eviction order and the single-flight
// compile of concurrent misses.
func TestCacheEvictsLRU(t *testing.T) {
	c := newPlanCache(2)
	compileCalls := 0
	compile := func() (*compiler.Result, string, []byte, error) {
		compileCalls++
		return &compiler.Result{}, "fp", nil, nil
	}
	for _, key := range []string{"k1", "k2", "k1", "k3"} { // k3 evicts k2
		if _, _, _, _, err := c.getOrCompile(key, compile); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, hit, _ := c.getOrCompile("k1", compile); !hit {
		t.Error("k1 should have survived eviction")
	}
	if _, _, _, hit, _ := c.getOrCompile("k2", compile); hit {
		t.Error("k2 should have been evicted as least recently used")
	}
	if compileCalls != 4 {
		t.Errorf("compile ran %d times, want 4 (k1, k2, k3, re-k2)", compileCalls)
	}

	// Concurrent misses on one fresh key compile exactly once.
	c = newPlanCache(2)
	var wg sync.WaitGroup
	var n int64
	var mu sync.Mutex
	slow := func() (*compiler.Result, string, []byte, error) {
		mu.Lock()
		n++
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		return &compiler.Result{}, "fp", nil, nil
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, _, err := c.getOrCompile("shared", slow); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n != 1 {
		t.Errorf("concurrent misses compiled %d times, want 1", n)
	}
	if st := c.stats(); st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats after single-flight: %+v, want 1 miss, 7 hits", st)
	}
}

// TestJobsRunThroughBytecode pins the serving dispatch path: every
// admitted job carries an opcode stream decoded from the cache's encoded
// form and reports that it executed through it.
func TestJobsRunThroughBytecode(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for i, req := range []Request{
		{N: 64, Procs: 4, MemElems: 1 << 12},
		{N: 64, Procs: 4, MemElems: 1 << 12}, // cache hit: decoded again from the entry
	} {
		r, err := s.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Bytecode {
			t.Errorf("submit %d did not execute through the compiled opcode stream", i)
		}
		if i == 1 && !r.CacheHit {
			t.Error("second identical submit should hit the plan cache")
		}
	}
}

// TestFingerprintVariesWithMachine checks the reported plan identity
// separates machines and memory, not just program shape.
func TestFingerprintVariesWithMachine(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	base := Request{N: 64, Procs: 4, MemElems: 1 << 12}
	r1, err := s.Submit(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	mod := base
	mod.Machine = "modern"
	r2, err := s.Submit(context.Background(), mod)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanFingerprint == r2.PlanFingerprint {
		t.Error("delta and modern plans share a fingerprint")
	}
	if r2.CacheHit {
		t.Error("different machine must be a cache miss")
	}
}

// TestTraceRequested checks the optional Chrome-trace artifact arrives
// and parses, and that its spans reconcile with the stats.
func TestTraceRequested(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	resp, err := s.Submit(context.Background(), Request{N: 64, Procs: 4, MemElems: 1 << 12, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("no trace in the response")
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(resp.Trace, &tr); err != nil {
		t.Fatalf("trace is not a Chrome-trace-event object: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	var snap trace.Snapshot
	if err := json.Unmarshal(mustJSON(t, resp.Stats), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ElapsedSeconds != resp.SimSeconds {
		t.Error("sim_seconds diverges from the snapshot")
	}
}
