// Package loadtest drives a running ooc-serve instance with thousands
// of concurrent small jobs and reports completion, error and cache-hit
// statistics. ooc-bench -serve uses it as the serving load gate.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/serve"
)

// Config shapes the load.
type Config struct {
	// Jobs is the total number of submissions (default 500).
	Jobs int
	// Concurrency is the number of concurrent submitters (default 32).
	Concurrency int
	// Tenants spreads the jobs round-robin over this many tenant names
	// (default 4), exercising the fair-share queues.
	Tenants int
	// Mix is the set of request templates cycled over; nil takes
	// DefaultMix.
	Mix []serve.Request
	// RetryBudget bounds per-job retries of 429 (capacity) and 503
	// (draining/degraded) rejections (default 100); admission pushback is
	// expected under load and a retried job that eventually completes is
	// a success.
	RetryBudget int
	// IdempotencyKeys tags every submission with a per-job idempotency
	// key so retries after ambiguous failures deduplicate server-side.
	IdempotencyKeys bool
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 500
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 100
	}
	return c
}

// DefaultMix returns small jobs over the three built-in kernels — the
// paper's GAXPY, the collective transpose, and the elementwise update —
// plus a chaos-disturbed GAXPY, so the load covers the plain, shuffle
// and resilient execution paths while staying cache-friendly.
func DefaultMix() []serve.Request {
	return []serve.Request{
		{N: 64, Procs: 4, MemElems: 1 << 12},
		{Source: hpf.TransposeSource, N: 64, Procs: 4, MemElems: 1 << 12},
		{Source: hpf.EwiseSource, N: 64, Procs: 4, MemElems: 1 << 12},
		{N: 64, Procs: 4, MemElems: 1 << 12, Chaos: 0.01, ChaosSeed: 7},
	}
}

// Report is the outcome of one load run.
type Report struct {
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`
	Retried429  int64   `json:"retried_429"`
	WallSeconds float64 `json:"wall_seconds"`
	// StatusCounts tallies final HTTP statuses per job (a retried-then-
	// completed job counts once, as 200).
	StatusCounts map[int]int `json:"status_counts"`
	// CacheHitRatio and Metrics come from the server's /metrics after
	// the run.
	CacheHitRatio float64       `json:"cache_hit_ratio"`
	Metrics       serve.Metrics `json:"metrics"`
	// PromScrapeBytes is the size of the Prometheus text exposition
	// scraped mid-load. The scrape is strictly validated; a malformed
	// exposition under concurrent load fails the run.
	PromScrapeBytes int `json:"prom_scrape_bytes"`
}

// Run drives baseURL with cfg's load and collects the report. Errors
// submitting (after retries) are counted, not fatal; the returned error
// covers only harness-level failures.
func Run(baseURL string, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{}

	var (
		mu       sync.Mutex
		statuses = make(map[int]int)
		retried  atomic.Int64
		errs     atomic.Int64
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := cfg.Mix[i%len(cfg.Mix)]
				req.Tenant = fmt.Sprintf("tenant-%d", i%cfg.Tenants)
				if cfg.IdempotencyKeys {
					req.IdempotencyKey = fmt.Sprintf("load-%d", i)
				}
				status, err := submit(client, baseURL, req, cfg.RetryBudget, &retried)
				if err != nil || status != http.StatusOK {
					errs.Add(1)
				}
				mu.Lock()
				statuses[status]++
				mu.Unlock()
			}
		}()
	}
	var (
		promBytes int
		promErr   error
	)
	for i := 0; i < cfg.Jobs; i++ {
		jobs <- i
		if i == cfg.Jobs/2 {
			// Scrape the text exposition while submitters and workers are
			// still hammering the counters: a torn or non-monotonic
			// histogram under concurrency is exactly what this catches.
			promBytes, promErr = scrapePrometheus(client, baseURL)
		}
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Jobs:         cfg.Jobs,
		Errors:       int(errs.Load()),
		Retried429:   retried.Load(),
		WallSeconds:  time.Since(start).Seconds(),
		StatusCounts: statuses,
	}
	rep.Completed = statuses[http.StatusOK]
	rep.PromScrapeBytes = promBytes
	if promErr != nil {
		return rep, fmt.Errorf("mid-load Prometheus scrape: %w", promErr)
	}
	if err := fetchMetrics(client, baseURL, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// scrapePrometheus fetches /metrics in the Prometheus text exposition
// and runs the strict format validator over it, returning the scrape
// size.
func scrapePrometheus(client *http.Client, baseURL string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return 0, fmt.Errorf("GET /metrics with Accept: text/plain answered Content-Type %q", ct)
	}
	if err := serve.ValidatePrometheus(body); err != nil {
		return len(body), err
	}
	return len(body), nil
}

// maxBackoff caps per-retry sleeps so a long server hint cannot stall a
// submitter indefinitely; the retry budget, not the hint, bounds total
// wait.
const maxBackoff = 250 * time.Millisecond

// submit posts one job, retrying 429/503 rejections with linear backoff
// raised to the server's retry_after_ms hint (capped at maxBackoff). It
// returns the final status (0 on transport failure).
func submit(client *http.Client, baseURL string, req serve.Request, budget int, retried *atomic.Int64) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hint := retryHint(resp)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= budget {
			return resp.StatusCode, nil
		}
		retried.Add(1)
		backoff := time.Duration(attempt+1) * time.Millisecond
		if hint > backoff {
			backoff = hint
		}
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		time.Sleep(backoff)
	}
}

// retryHint drains the response body and extracts the server's
// retry_after_ms guidance, zero when absent.
func retryHint(resp *http.Response) time.Duration {
	defer resp.Body.Close()
	var m struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		io.Copy(io.Discard, resp.Body)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	return time.Duration(m.RetryAfterMS) * time.Millisecond
}

func fetchMetrics(client *http.Client, baseURL string, rep *Report) error {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rep.Metrics); err != nil {
		return err
	}
	rep.CacheHitRatio = rep.Metrics.Cache.HitRatio
	return nil
}

// Gate fails the run unless every job completed and the cache hit ratio
// cleared minHitRatio — the CI serving gate.
func Gate(rep *Report, minHitRatio float64) error {
	if rep.Errors > 0 || rep.Completed != rep.Jobs {
		return fmt.Errorf("loadtest: %d/%d jobs completed, %d errors (statuses %v)",
			rep.Completed, rep.Jobs, rep.Errors, rep.StatusCounts)
	}
	if rep.CacheHitRatio < minHitRatio {
		return fmt.Errorf("loadtest: cache hit ratio %.3f below the %.3f gate",
			rep.CacheHitRatio, minHitRatio)
	}
	return nil
}
