package loadtest_test

import (
	"net/http/httptest"
	"testing"

	"github.com/ooc-hpf/passion/internal/serve"
	"github.com/ooc-hpf/passion/internal/serve/loadtest"
)

// TestLoadRunCompletesAndGates drives a small concurrent load through a
// real HTTP round trip and checks the CI gate passes: every job
// completes and the plan cache carries the repeated mix.
func TestLoadRunCompletesAndGates(t *testing.T) {
	s := serve.New(serve.Config{Workers: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := loadtest.Run(ts.URL, loadtest.Config{Jobs: 100, Concurrency: 16, Tenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadtest.Gate(rep, 0.9); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 100 || rep.Errors != 0 {
		t.Errorf("completed=%d errors=%d", rep.Completed, rep.Errors)
	}
	if got := rep.Metrics.Tenants["tenant-0"]; got == nil || got.Submitted != 25 {
		t.Errorf("tenant-0 accounting: %+v, want 25 submitted", got)
	}
}

// TestGateFailsOnColdCache pins the gate's hit-ratio arm.
func TestGateFailsOnColdCache(t *testing.T) {
	rep := &loadtest.Report{Jobs: 10, Completed: 10, CacheHitRatio: 0.2}
	if err := loadtest.Gate(rep, 0.9); err == nil {
		t.Error("cold cache should fail the gate")
	}
	rep = &loadtest.Report{Jobs: 10, Completed: 9, Errors: 1, CacheHitRatio: 1}
	if err := loadtest.Gate(rep, 0.9); err == nil {
		t.Error("a lost job should fail the gate")
	}
}
