package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ooc-hpf/passion/internal/cliutil"
)

// Handler returns the server's HTTP API:
//
//	POST /jobs             submit a Request, block until done, stream
//	                       the Response
//	GET  /jobs             list traced jobs with live or retained span
//	                       streams
//	GET  /jobs/{id}/trace  the job's NDJSON span stream; ?follow=1
//	                       streams live over SSE
//	GET  /healthz          200 {"ok":true,...} while accepting, 503
//	                       while draining or degraded; carries build info
//	GET  /metrics          the Metrics snapshot — JSON by default,
//	                       Prometheus text exposition when the Accept
//	                       header asks for text/plain (or with
//	                       ?format=prometheus)
//
// With Config.Pprof, the net/http/pprof profiling surface is mounted
// under /debug/pprof/.
//
// Retryable rejections (429 busy, 503 draining/degraded) carry a
// Retry-After header and a retry_after_ms body field advising when to
// try again; clients should back off at least that long, with a cap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := s.Submit(r.Context(), req)
	if err != nil {
		status := statusFor(err)
		if ra := retryAfter(err); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
			writeJSON(w, status, map[string]any{
				"error":          err.Error(),
				"retry_after_ms": ra.Milliseconds(),
			})
			return
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps submission outcomes to status codes: rejected for
// capacity → 429 (retryable), draining or journal-degraded → 503,
// compile and validation errors → 400, deadline → 504, client gone →
// 499-style 408, simulated crash → 503, execution faults → 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrOversize):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDegraded), errors.Is(err, ErrCrashed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	}
	var compileErr *compileError
	if errors.As(err, &compileErr) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// retryAfter is the server's backoff guidance for retryable rejections:
// a full queue clears quickly (queue pressure), a drain may hand off to
// a restarted process shortly, a degraded journal needs operator
// attention. Zero means the error is not worth retrying as-is.
func retryAfter(err error) time.Duration {
	switch {
	case errors.Is(err, ErrBusy):
		return 10 * time.Millisecond
	case errors.Is(err, ErrDegraded):
		return 5 * time.Second
	case errors.Is(err, ErrDraining), errors.Is(err, ErrCrashed):
		return time.Second
	}
	return 0
}

// compileError marks request-side failures (bad source, bad machine
// name) so the HTTP layer reports them as the client's fault.
type compileError struct{ err error }

func (e *compileError) Error() string { return e.err.Error() }
func (e *compileError) Unwrap() error { return e.err }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version := cliutil.Version()
	if s.Degraded() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "degraded": true, "version": version})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true, "version": version})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "version": version})
}

// handleMetrics serves the metrics snapshot. JSON stays the default for
// back-compat; a scraper asking for text/plain (or openmetrics) in
// Accept — or forcing ?format=prometheus — gets the Prometheus text
// exposition. Either way the payload is a point-in-time snapshot, so
// caches must not hold it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
