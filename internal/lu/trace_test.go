package lu

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// TestTraceReconcilesFactorization extends the keystone exact-replay
// property to the out-of-core LU baseline, whose access pattern (repeated
// panel sweeps with owner broadcast) differs from everything the compiled
// programs exercise.
func TestTraceReconcilesFactorization(t *testing.T) {
	for _, tc := range []struct{ n, p, w int }{
		{32, 4, 4},
		{32, 2, 8},
	} {
		tr := trace.NewTracer(tc.p)
		r, err := Run(sim.Delta(tc.p), Config{N: tc.n, PanelWidth: tc.w, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Spans()) == 0 {
			t.Fatal("traced run emitted no spans")
		}
		if err := trace.Reconcile(tr.Spans(), r.Stats, nil); err != nil {
			t.Fatalf("n=%d p=%d w=%d: spans do not replay to the statistics:\n%v", tc.n, tc.p, tc.w, err)
		}
	}
}
