// Package lu implements out-of-core LU factorization (without pivoting)
// on the simulated distributed memory machine — one of the application
// classes the PASSION project targeted beyond the paper's GAXPY example.
//
// The matrix is distributed column-block over P processors, and each
// processor's local columns live in a local array file. The algorithm is
// left-looking over column panels: to factor panel K, every previously
// factored panel J < K is re-read from its owner's disk and broadcast,
// so the I/O traffic is quadratic in the panel count — exactly the
// reuse-driven access pattern the paper's cost framework reasons about
// (each panel is fetched once per later panel, like array A in the
// column-slab GAXPY).
package lu

import (
	"fmt"
	"math"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

const tagPanel = 41

// Config describes one factorization.
type Config struct {
	// N is the matrix extent.
	N int
	// PanelWidth is the number of columns per panel (the slab width).
	// It must divide N/P so panels never straddle processors.
	PanelWidth int
	// FS backs the local array files; nil means a fresh in-memory file
	// system.
	FS iosim.FS
	// Trace, when non-nil, records a typed span timeline of the run
	// against the simulated clocks (see trace.Tracer).
	Trace *trace.Tracer
}

// Result is a completed factorization.
type Result struct {
	Stats *trace.Stats
	cfg   Config
	procs int
	fs    iosim.FS
	mach  sim.Config
}

// FillA is the default input: a diagonally dominant matrix that is stable
// to factor without pivoting.
func FillA(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		if i == j {
			return float64(n + 2)
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		return 1 / float64(1+d)
	}
}

// Run factors the FillA(N) matrix out of core and leaves the packed LU
// factors (unit lower L below the diagonal, U on and above it) in the
// "lu" local array files.
func Run(mach sim.Config, cfg Config) (*Result, error) {
	n, w, p := cfg.N, cfg.PanelWidth, mach.Procs
	if n <= 0 || w <= 0 {
		return nil, fmt.Errorf("lu: N and PanelWidth must be positive (N=%d, w=%d)", n, w)
	}
	if n%p != 0 {
		return nil, fmt.Errorf("lu: N=%d must be a multiple of the processor count %d", n, p)
	}
	if (n/p)%w != 0 {
		return nil, fmt.Errorf("lu: panel width %d must divide the local column count %d", w, n/p)
	}
	fs := cfg.FS
	if fs == nil {
		fs = iosim.NewMemFS()
	}
	fill := FillA(n)
	panels := n / w

	stats, err := mp.Run(mach, func(proc *mp.Proc) error {
		proc.SetTracer(cfg.Trace.Rank(proc.Rank()))
		disk := iosim.NewDisk(fs, proc.Config(), &proc.Stats().IO)
		disk.SetTracer(proc.Tracer(), proc.Clock(), "lu")
		dm, err := dist.NewArray("lu", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			return err
		}
		arr, err := oocarray.New(disk, dm, proc.Rank(), proc.Clock(), oocarray.Options{})
		if err != nil {
			return err
		}
		defer arr.Close()
		if err := arr.FillGlobal(fill); err != nil {
			return err
		}

		colMap := dm.Dims[1]
		panelOwner := func(k int) int { return colMap.Owner(k * w) }
		// localStart returns the local column index of panel k on its
		// owner.
		localStart := func(k int) int {
			_, local := colMap.ToLocal(k * w)
			return local
		}

		for k := 0; k < panels; k++ {
			ko := panelOwner(k)
			mine := proc.Rank() == ko
			var pk *oocarray.ICLA
			if mine {
				pk, err = arr.ReadSection(0, localStart(k), n, w)
				if err != nil {
					return err
				}
			}
			// Stream every previously factored panel through the
			// current one.
			for j := 0; j < k; j++ {
				jo := panelOwner(j)
				var payload []float64
				var pj *oocarray.ICLA
				if proc.Rank() == jo {
					pj, err = arr.ReadSection(0, localStart(j), n, w)
					if err != nil {
						return err
					}
					payload = pj.Data
				}
				payload = proc.Bcast(jo, tagPanel, payload)
				if mine {
					applyPanel(proc, pk, payload, j*w, w, n)
				}
				// On the owner, Bcast returns its input — the panel's own
				// storage, recycled with the slab; elsewhere the payload is
				// a receiver-owned arena buffer.
				if pj != nil {
					arr.Recycle(pj)
				} else {
					mp.ReleaseBuf(payload)
				}
			}
			if mine {
				factorPanel(proc, pk, k*w, w, n)
				if err := arr.WriteSection(pk); err != nil {
					return err
				}
				arr.Recycle(pk)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lu: %w", err)
	}
	return &Result{Stats: stats, cfg: cfg, procs: p, fs: fs, mach: mach}, nil
}

// applyPanel applies the factored panel starting at global column g0 to
// the working panel pk (whose columns are later than g0+w).
func applyPanel(proc *mp.Proc, pk *oocarray.ICLA, panel []float64, g0, w, n int) {
	var flops int64
	for q := 0; q < w; q++ {
		g := g0 + q
		lcol := panel[q*n : (q+1)*n] // column g: L below the diagonal
		for c := 0; c < pk.Cols; c++ {
			x := pk.Col(c)
			xg := x[g]
			if xg == 0 {
				continue
			}
			for i := g + 1; i < n; i++ {
				x[i] -= lcol[i] * xg
			}
			flops += 2 * int64(n-g-1)
		}
	}
	proc.Compute(flops)
}

// factorPanel factors the panel whose first global column is g0, applying
// the intra-panel updates and scaling each column's subdiagonal by its
// pivot.
func factorPanel(proc *mp.Proc, pk *oocarray.ICLA, g0, w, n int) {
	var flops int64
	for idx := 0; idx < w; idx++ {
		c := g0 + idx
		x := pk.Col(idx)
		// Updates from the earlier columns of this panel.
		for q := 0; q < idx; q++ {
			g := g0 + q
			lcol := pk.Col(q)
			xg := x[g]
			if xg != 0 {
				for i := g + 1; i < n; i++ {
					x[i] -= lcol[i] * xg
				}
				flops += 2 * int64(n-g-1)
			}
		}
		pivot := x[c]
		for i := c + 1; i < n; i++ {
			x[i] /= pivot
		}
		flops += int64(n - c - 1)
	}
	proc.Compute(flops)
}

// Verify reconstructs L*U from the packed factors and compares it against
// the original matrix, returning the maximum absolute deviation.
func (r *Result) Verify() (float64, error) {
	lu, err := r.readLU()
	if err != nil {
		return 0, err
	}
	n := r.cfg.N
	fill := FillA(n)
	maxDiff := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			// (L*U)(i,j) = sum_k L(i,k)*U(k,j), L unit lower, U upper.
			kmax := i
			if j < i {
				kmax = j
			}
			s := 0.0
			for k := 0; k <= kmax; k++ {
				var l float64
				switch {
				case k == i:
					l = 1
				case k < i:
					l = lu.At(i, k)
				}
				s += l * lu.At(k, j)
			}
			if d := math.Abs(s - fill(i, j)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff, nil
}

// readLU assembles the packed factors from the local array files.
func (r *Result) readLU() (*matrix.Matrix, error) {
	n := r.cfg.N
	dm, err := dist.NewArray("lu", dist.NewCollapsed(n), dist.NewBlock(n, r.procs))
	if err != nil {
		return nil, err
	}
	out := matrix.New(n, n)
	for proc := 0; proc < r.procs; proc++ {
		disk := iosim.NewDisk(r.fs, r.mach, nil)
		laf, err := disk.OpenLAF(fmt.Sprintf("lu.p%d.laf", proc), int64(dm.LocalElems(proc)))
		if err != nil {
			return nil, err
		}
		data, _, err := laf.ReadAll()
		laf.Close()
		if err != nil {
			return nil, err
		}
		shape := dm.LocalShape(proc)
		rows, cols := shape[0], shape[1]
		for lj := 0; lj < cols; lj++ {
			gj := dm.Dims[1].ToGlobal(proc, lj)
			copy(out.Col(gj), data[lj*rows:(lj+1)*rows])
		}
	}
	return out, nil
}
