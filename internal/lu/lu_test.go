package lu

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
)

func TestFactorizationCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p, w int }{
		{16, 1, 4},
		{16, 2, 4},
		{16, 2, 8},
		{32, 4, 4},
		{32, 4, 8},
		{48, 4, 3},
		{64, 8, 4},
	} {
		t.Run(fmt.Sprintf("n=%d/p=%d/w=%d", tc.n, tc.p, tc.w), func(t *testing.T) {
			r, err := Run(sim.Delta(tc.p), Config{N: tc.n, PanelWidth: tc.w})
			if err != nil {
				t.Fatal(err)
			}
			diff, err := r.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if diff > 1e-9 {
				t.Errorf("L*U deviates from A by %g", diff)
			}
		})
	}
}

func TestPanelWidthIndependence(t *testing.T) {
	// Different panel widths must produce (numerically near-identical)
	// factors of the same matrix; verify both against A.
	for _, w := range []int{2, 4, 8, 16} {
		r, err := Run(sim.Delta(2), Config{N: 32, PanelWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		diff, err := r.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-9 {
			t.Errorf("w=%d: deviation %g", w, diff)
		}
	}
}

func TestIOGrowsQuadraticallyInPanelCount(t *testing.T) {
	// Left-looking LU re-reads every factored panel for each later
	// panel: with twice the panels, panel reads roughly quadruple.
	reads := func(w int) int64 {
		r, err := Run(sim.Delta(2), Config{N: 64, PanelWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.TotalIO().SlabReads
	}
	coarse := reads(16) // 4 panels -> 4*5/2 = 10 panel reads
	fine := reads(8)    // 8 panels -> 8*9/2 = 36 panel reads
	if coarse != 10 || fine != 36 {
		t.Errorf("panel reads = %d and %d, want 10 and 36 (k(k+1)/2)", coarse, fine)
	}
}

func TestLargerPanelsReduceSimulatedTime(t *testing.T) {
	// The slab-size effect of Figure 10, on LU: more memory per panel,
	// less I/O, less simulated time.
	timeFor := func(w int) float64 {
		r, err := Run(sim.Delta(4), Config{N: 64, PanelWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.ElapsedSeconds()
	}
	small, large := timeFor(2), timeFor(16)
	if large >= small {
		t.Errorf("larger panels should be faster: w=16 %.3fs vs w=2 %.3fs", large, small)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(sim.Delta(2), Config{N: 0, PanelWidth: 4}); err == nil {
		t.Error("zero N should fail")
	}
	if _, err := Run(sim.Delta(2), Config{N: 16, PanelWidth: 0}); err == nil {
		t.Error("zero panel width should fail")
	}
	if _, err := Run(sim.Delta(3), Config{N: 16, PanelWidth: 4}); err == nil {
		t.Error("N not divisible by P should fail")
	}
	if _, err := Run(sim.Delta(2), Config{N: 16, PanelWidth: 3}); err == nil {
		t.Error("panel width not dividing local columns should fail")
	}
}

func TestFillADiagonallyDominant(t *testing.T) {
	f := FillA(16)
	for i := 0; i < 16; i++ {
		off := 0.0
		for j := 0; j < 16; j++ {
			if j != i {
				off += f(i, j)
			}
		}
		if f(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant: %g vs %g", i, f(i, i), off)
		}
	}
}
