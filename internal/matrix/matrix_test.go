package matrix

import (
	"testing"
	"testing/quick"
)

func TestAtSetColumnMajor(t *testing.T) {
	m := New(3, 2)
	m.Set(1, 0, 5)
	m.Set(2, 1, 7)
	if m.Data[1] != 5 {
		t.Errorf("column-major layout violated: Data=%v", m.Data)
	}
	if m.Data[5] != 7 {
		t.Errorf("column-major layout violated: Data=%v", m.Data)
	}
	if m.At(1, 0) != 5 || m.At(2, 1) != 7 {
		t.Error("At disagrees with Set")
	}
}

func TestColAliases(t *testing.T) {
	m := New(4, 3).Fill(func(i, j int) float64 { return float64(10*j + i) })
	col := m.Col(2)
	if len(col) != 4 || col[0] != 20 || col[3] != 23 {
		t.Fatalf("Col(2) = %v", col)
	}
	col[1] = -1
	if m.At(1, 2) != -1 {
		t.Error("Col should alias storage")
	}
}

func TestMulSmallKnown(t *testing.T) {
	a := New(2, 2).Fill(func(i, j int) float64 { return float64(i + 2*j + 1) }) // [[1,3],[2,4]]
	b := New(2, 2).Fill(func(i, j int) float64 { return float64(2*i + j + 1) }) // [[1,2],[3,4]]
	c := Mul(a, b)
	// c = [[1*1+3*3, 1*2+3*4],[2*1+4*3, 2*2+4*4]] = [[10,14],[14,20]]
	want := [][]float64{{10, 14}, {14, 20}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	a := New(5, 5).FillRandom(3)
	id := New(5, 5).Fill(func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0
	})
	if !Equal(Mul(a, id), a) || !Equal(Mul(id, a), a) {
		t.Error("multiplication by identity changed the matrix")
	}
}

func TestGaxpyMatchesMul(t *testing.T) {
	a := New(7, 5).FillRandom(1)
	b := New(5, 6).FillRandom(2)
	c := Mul(a, b)
	for j := 0; j < b.Cols; j++ {
		col := GaxpyRef(a, b, j)
		for i := range col {
			if d := col[i] - c.At(i, j); d > 1e-12 || d < -1e-12 {
				t.Fatalf("GAXPY column %d differs at %d: %g vs %g", j, i, col[i], c.At(i, j))
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := New(4, 7).FillRandom(seed)
		return Equal(m.Transpose().Transpose(), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTransposeShape(t *testing.T) {
	m := New(2, 3).Fill(func(i, j int) float64 { return float64(i*3 + j) })
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != m.At(1, 2) {
		t.Error("transpose values wrong")
	}
}

func TestMaxAbsDiffAndAlmostEqual(t *testing.T) {
	a := New(2, 2).Fill(func(i, j int) float64 { return 1 })
	b := a.Clone()
	b.Set(1, 1, 1.5)
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %g, want 0.5", d)
	}
	if AlmostEqual(a, b, 0.4) {
		t.Error("AlmostEqual too lenient")
	}
	if !AlmostEqual(a, b, 0.6) {
		t.Error("AlmostEqual too strict")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2).FillRandom(9)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

func TestFillRandomReproducible(t *testing.T) {
	a := New(3, 3).FillRandom(42)
	b := New(3, 3).FillRandom(42)
	if !Equal(a, b) {
		t.Error("FillRandom not reproducible")
	}
	c := New(3, 3).FillRandom(43)
	if Equal(a, c) {
		t.Error("different seeds gave identical matrices")
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	m := New(2, 3)
	expectPanic("At out of range", func() { m.At(2, 0) })
	expectPanic("Set out of range", func() { m.Set(0, 3, 1) })
	expectPanic("Col out of range", func() { m.Col(-1) })
	expectPanic("Mul shape mismatch", func() { Mul(New(2, 3), New(2, 3)) })
	expectPanic("MaxAbsDiff shape mismatch", func() { MaxAbsDiff(New(2, 2), New(3, 3)) })
	expectPanic("negative shape", func() { New(-1, 2) })
}
