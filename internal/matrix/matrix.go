// Package matrix provides dense column-major (Fortran layout) matrices
// used as in-core references for verifying the out-of-core computations.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense Rows x Cols matrix stored column-major: element (i,j)
// lives at Data[j*Rows+i]. Indices are 0-based.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[j*m.Rows+i]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[j*m.Rows+i] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Col returns column j as a slice aliasing the matrix storage.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: column %d outside %dx%d", j, m.Rows, m.Cols))
	}
	return m.Data[j*m.Rows : (j+1)*m.Rows]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to f(i, j).
func (m *Matrix) Fill(f func(i, j int) float64) *Matrix {
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			m.Data[j*m.Rows+i] = f(i, j)
		}
	}
	return m
}

// FillRandom fills the matrix with reproducible pseudo-random values in
// [-1, 1) from the given seed.
func (m *Matrix) FillRandom(seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// Mul returns the product a*b computed with the straightforward
// triple loop; it is the sequential reference for all GAXPY variants.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		cj := c.Col(j)
		for k := 0; k < a.Cols; k++ {
			bkj := b.At(k, j)
			if bkj == 0 {
				continue
			}
			ak := a.Col(k)
			for i := range cj {
				cj[i] += bkj * ak[i]
			}
		}
	}
	return c
}

// GaxpyRef computes column j of a*b by the GAXPY recurrence
// (Equation 1 of the paper): c_j = sum_k b[k,j] * a_k.
func GaxpyRef(a, b *Matrix, j int) []float64 {
	if a.Cols != b.Rows {
		panic("matrix: shape mismatch")
	}
	c := make([]float64, a.Rows)
	for k := 0; k < a.Cols; k++ {
		bkj := b.At(k, j)
		ak := a.Col(k)
		for i := range c {
			c[i] += bkj * ak[i]
		}
	}
	return c
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// AlmostEqual reports whether the matrices agree within tol elementwise.
func AlmostEqual(a, b *Matrix, tol float64) bool {
	return MaxAbsDiff(a, b) <= tol
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Equal reports exact elementwise equality.
func Equal(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
