// Package stencil provides out-of-core iterative stencil sweeps over
// row-block distributed grids: the "loosely synchronous" workload class
// of the paper's introduction. A grid's local block lives in a local
// array file; each sweep streams it in column slabs with a one-column
// halo while ghost rows are exchanged with the neighboring processors —
// the out-of-core communication pattern of the PASSION runtime.
package stencil

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
)

// UpdateFunc computes a point's new value from its old value and its four
// neighbors. It is applied to interior points only; boundary points are
// copied unchanged (Dirichlet conditions).
type UpdateFunc func(center, up, down, left, right float64) float64

// Jacobi is the standard four-point average.
func Jacobi(center, up, down, left, right float64) float64 {
	return 0.25 * (up + down + left + right)
}

// Grid is one processor's share of an n x n grid distributed row-block,
// double-buffered across two out-of-core arrays.
type Grid struct {
	proc      *mp.Proc
	n         int
	rows      int // local rows
	cur, next *oocarray.Array
}

// New creates the double-buffered out-of-core grid for this processor.
func New(p *mp.Proc, disk *iosim.Disk, name string, n int, opts oocarray.Options) (*Grid, error) {
	if n < p.Size() {
		return nil, fmt.Errorf("stencil: n=%d smaller than the processor count %d", n, p.Size())
	}
	mk := func(suffix string) (*oocarray.Array, error) {
		dm, err := dist.NewArray(name+suffix, dist.NewBlock(n, p.Size()), dist.NewCollapsed(n))
		if err != nil {
			return nil, err
		}
		return oocarray.New(disk, dm, p.Rank(), p.Clock(), opts)
	}
	cur, err := mk("")
	if err != nil {
		return nil, err
	}
	next, err := mk(".next")
	if err != nil {
		return nil, err
	}
	return &Grid{proc: p, n: n, rows: cur.LocalRows(), cur: cur, next: next}, nil
}

// N returns the global extent.
func (g *Grid) N() int { return g.n }

// LocalRows returns the number of grid rows this processor owns.
func (g *Grid) LocalRows() int { return g.rows }

// Fill initializes the grid from a global function (unaccounted, like all
// initial data distribution).
func (g *Grid) Fill(f func(gi, gj int) float64) error {
	return g.cur.FillGlobal(f)
}

// Close releases both local array files.
func (g *Grid) Close() error {
	err1 := g.cur.Close()
	err2 := g.next.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// exchange reads this processor's boundary rows back from disk and swaps
// them with the neighbors. The returned ghost rows are nil at the global
// edges.
func (g *Grid) exchange(tag int) (ghostTop, ghostBot []float64, err error) {
	rank, size := g.proc.Rank(), g.proc.Size()
	top, err := g.cur.ReadSection(0, 0, 1, g.n)
	if err != nil {
		return nil, nil, err
	}
	bot, err := g.cur.ReadSection(g.rows-1, 0, 1, g.n)
	if err != nil {
		return nil, nil, err
	}
	if rank > 0 {
		g.proc.Send(rank-1, tag, top.Data)
	}
	if rank < size-1 {
		g.proc.Send(rank+1, tag+1, bot.Data)
	}
	g.cur.Recycle(top)
	g.cur.Recycle(bot)
	if rank < size-1 {
		ghostBot = g.proc.Recv(rank+1, tag)
	}
	if rank > 0 {
		ghostTop = g.proc.Recv(rank-1, tag+1)
	}
	return ghostTop, ghostBot, nil
}

// Sweep performs one iteration: ghost-row exchange, then a pass over the
// local block in column slabs of slabCols columns (with a one-column
// halo), writing the new values to the back buffer and swapping buffers.
// tag and tag+1 are used for the neighbor messages.
func (g *Grid) Sweep(slabCols, tag int, update UpdateFunc) error {
	if slabCols < 1 {
		return fmt.Errorf("stencil: slabCols must be positive, got %d", slabCols)
	}
	ghostTop, ghostBot, err := g.exchange(tag)
	if err != nil {
		return err
	}
	defer mp.ReleaseBuf(ghostTop)
	defer mp.ReleaseBuf(ghostBot)
	rank := g.proc.Rank()
	n, rows := g.n, g.rows
	for c0 := 0; c0 < n; c0 += slabCols {
		w := slabCols
		if c0+w > n {
			w = n - c0
		}
		h0 := c0
		if h0 > 0 {
			h0--
		}
		hEnd := c0 + w
		if hEnd < n {
			hEnd++
		}
		halo, err := g.cur.ReadSection(0, h0, rows, hEnd-h0)
		if err != nil {
			return err
		}
		// Every element of out is Set below, so the pooled buffer needs no
		// clearing.
		out := &oocarray.ICLA{RowOff: 0, ColOff: c0, Rows: rows, Cols: w,
			Data: bufpool.GetF64(rows * w)}
		for cc := 0; cc < w; cc++ {
			j := c0 + cc // columns collapsed: local == global
			hj := j - h0
			for i := 0; i < rows; i++ {
				gi, _ := g.cur.GlobalIndex(i, j)
				center := halo.At(i, hj)
				if gi == 0 || gi == n-1 || j == 0 || j == n-1 {
					out.Set(i, cc, center)
					continue
				}
				var up, down float64
				if i > 0 {
					up = halo.At(i-1, hj)
				} else {
					up = ghostTop[j]
				}
				if i < rows-1 {
					down = halo.At(i+1, hj)
				} else {
					down = ghostBot[j]
				}
				out.Set(i, cc, update(center, up, down, halo.At(i, hj-1), halo.At(i, hj+1)))
			}
		}
		g.proc.Compute(int64(5 * rows * w))
		if err := g.next.WriteSection(out); err != nil {
			return err
		}
		g.next.Recycle(out)
		g.cur.Recycle(halo)
	}
	_ = rank
	g.cur, g.next = g.next, g.cur
	return nil
}

// ReadLocal returns the current local block (verification helper).
func (g *Grid) ReadLocal() (*matrix.Matrix, error) {
	return g.cur.ReadLocal()
}

// Reference runs the same iterations sequentially in core, for
// verification: identical per-element arithmetic, so results match
// exactly.
func Reference(n, iters int, init func(i, j int) float64, update UpdateFunc) *matrix.Matrix {
	cur := matrix.New(n, n).Fill(init)
	buf := matrix.New(n, n)
	for it := 0; it < iters; it++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == 0 || i == n-1 || j == 0 || j == n-1 {
					buf.Set(i, j, cur.At(i, j))
					continue
				}
				buf.Set(i, j, update(cur.At(i, j), cur.At(i-1, j), cur.At(i+1, j), cur.At(i, j-1), cur.At(i, j+1)))
			}
		}
		cur, buf = buf, cur
	}
	return cur
}
