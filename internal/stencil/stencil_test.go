package stencil

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

func initGrid(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		switch {
		case i == 0:
			return 100
		case i == n-1:
			return -50
		default:
			return float64((i*7+j*3)%11) - 5
		}
	}
}

// runSweeps executes iters Jacobi sweeps on an n x n grid over p
// processors and returns the assembled global result.
func runSweeps(t *testing.T, n, p, iters, slabCols int, opts oocarray.Options) *matrix.Matrix {
	t.Helper()
	fs := iosim.NewMemFS()
	out := matrix.New(n, n)
	blocks := make([]*matrix.Matrix, p)
	starts := make([]int, p)
	_, err := mp.Run(sim.Delta(p), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), &proc.Stats().IO)
		g, err := New(proc, disk, "grid", n, opts)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := g.Fill(initGrid(n)); err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			if err := g.Sweep(slabCols, 10, Jacobi); err != nil {
				return err
			}
		}
		m, err := g.ReadLocal()
		if err != nil {
			return err
		}
		blocks[proc.Rank()] = m
		gi, _ := g.cur.GlobalIndex(0, 0)
		starts[proc.Rank()] = gi
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, block := range blocks {
		for j := 0; j < n; j++ {
			for i := 0; i < block.Rows; i++ {
				out.Set(starts[r]+i, j, block.At(i, j))
			}
		}
	}
	return out
}

func TestSweepMatchesReferenceExactly(t *testing.T) {
	for _, tc := range []struct{ n, p, iters, slab int }{
		{16, 1, 3, 4},
		{16, 2, 3, 4},
		{16, 4, 5, 16},
		{24, 3, 4, 5},
		{20, 4, 2, 3},
	} {
		t.Run(fmt.Sprintf("n=%d/p=%d", tc.n, tc.p), func(t *testing.T) {
			got := runSweeps(t, tc.n, tc.p, tc.iters, tc.slab, oocarray.Options{})
			want := Reference(tc.n, tc.iters, initGrid(tc.n), Jacobi)
			if !matrix.Equal(got, want) {
				t.Fatalf("out-of-core sweep differs from reference (maxdiff %g)",
					matrix.MaxAbsDiff(got, want))
			}
		})
	}
}

func TestSweepRaggedRows(t *testing.T) {
	// 10 rows over 3 processors: blocks of 4, 4, 2.
	got := runSweeps(t, 10, 3, 3, 4, oocarray.Options{})
	want := Reference(10, 3, initGrid(10), Jacobi)
	if !matrix.Equal(got, want) {
		t.Fatal("ragged distribution broke the sweep")
	}
}

func TestSweepWithSieving(t *testing.T) {
	got := runSweeps(t, 16, 4, 3, 4, oocarray.Options{Sieve: true})
	want := Reference(16, 3, initGrid(16), Jacobi)
	if !matrix.Equal(got, want) {
		t.Fatal("sieving changed the stencil result")
	}
}

func TestCustomUpdateFunc(t *testing.T) {
	// A damped update exercises the center argument.
	damped := func(c, up, down, left, right float64) float64 {
		return 0.5*c + 0.125*(up+down+left+right)
	}
	got := runSweeps(t, 16, 2, 2, 8, oocarray.Options{})
	_ = got
	fs := iosim.NewMemFS()
	blocks := make([]*matrix.Matrix, 2)
	_, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		g, err := New(proc, disk, "g", 16, oocarray.Options{})
		if err != nil {
			return err
		}
		if err := g.Fill(initGrid(16)); err != nil {
			return err
		}
		if err := g.Sweep(4, 20, damped); err != nil {
			return err
		}
		m, err := g.ReadLocal()
		if err != nil {
			return err
		}
		blocks[proc.Rank()] = m
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(16, 1, initGrid(16), damped)
	for r, block := range blocks {
		for j := 0; j < 16; j++ {
			for i := 0; i < 8; i++ {
				if block.At(i, j) != want.At(r*8+i, j) {
					t.Fatalf("damped sweep wrong at (%d,%d)", r*8+i, j)
				}
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	fs := iosim.NewMemFS()
	_, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		g, err := New(proc, disk, "g", 8, oocarray.Options{})
		if err != nil {
			return err
		}
		if err := g.Sweep(0, 30, Jacobi); err == nil {
			return fmt.Errorf("zero slabCols should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mp.Run(sim.Delta(4), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		if _, err := New(proc, disk, "tiny", 2, oocarray.Options{}); err == nil {
			return fmt.Errorf("n < P should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepIOStats(t *testing.T) {
	// One sweep with slabCols=4 on a 16x16 grid over 2 procs: 2 boundary
	// row reads + 4 halo slab reads + 4 output writes per processor.
	fs := iosim.NewMemFS()
	stats, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), &proc.Stats().IO)
		g, err := New(proc, disk, "g", 16, oocarray.Options{})
		if err != nil {
			return err
		}
		if err := g.Fill(initGrid(16)); err != nil {
			return err
		}
		return g.Sweep(4, 40, Jacobi)
	})
	if err != nil {
		t.Fatal(err)
	}
	io := stats.TotalIO()
	if want := int64(2 * (2 + 4)); io.SlabReads != want {
		t.Errorf("slab reads = %d, want %d", io.SlabReads, want)
	}
	if want := int64(2 * 4); io.SlabWrites != want {
		t.Errorf("slab writes = %d, want %d", io.SlabWrites, want)
	}
}
