// Package bufpool is the size-classed buffer arena behind the
// simulator's hot paths: message payloads (internal/mp), slab staging
// (internal/iosim, internal/oocarray), shuffle assembly
// (internal/collio) and parity scratch (internal/parity). The paper's
// data-movement discipline — reuse large buffers instead of re-creating
// them per transfer — applied to the host heap.
//
// Buffers live in power-of-two size classes (64 elements up). Each class
// keeps a small bounded free list under a mutex — the steady-state path,
// which neither allocates nor loses buffers to the garbage collector, so
// AllocsPerRun pins hold — and overflows into a sync.Pool, which trades
// a boxed pointer per overflow for letting the GC trim idle memory.
//
// A buffer obtained from Get* has arbitrary contents. Callers either
// overwrite every element or clear() explicitly where they previously
// relied on make's zeroing; SetChecked poisons released buffers to make
// violations loud in tests.
package bufpool

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// minBits sizes the smallest class at 64 elements; smaller requests
	// round up (a 512-byte float64 buffer is already small change).
	minBits = 6
	// maxBits caps pooled buffers at 1<<26 elements (512 MiB of
	// float64); anything larger is allocated directly and dropped on
	// release.
	maxBits    = 26
	numClasses = maxBits - minBits + 1
	// perClassCap bounds each class's mutex free list; further releases
	// overflow into the class's sync.Pool.
	perClassCap = 64
)

// classFor returns the class index whose buffers hold at least n
// elements, or numClasses when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minBits {
		return 0
	}
	return bits.Len(uint(n-1)) - minBits
}

// classOfCap returns the class whose size is exactly c, or -1 when c is
// not a class size (such buffers were not vended by the arena, or were
// re-sliced; pooling them would corrupt the class invariant).
func classOfCap(c int) int {
	if c < 1<<minBits || c&(c-1) != 0 {
		return -1
	}
	idx := bits.TrailingZeros(uint(c)) - minBits
	if idx >= numClasses {
		return -1
	}
	return idx
}

// Stats counts arena traffic (atomically updated, for tests and
// diagnostics).
type Stats struct {
	Gets  int64 // buffers handed out
	Hits  int64 // ... of which came from a free list or pool
	Puts  int64 // buffers returned and retained
	Drops int64 // returned buffers not poolable (foreign capacity or oversize)
}

var stats Stats

// Snapshot returns the current arena counters.
func Snapshot() Stats {
	return Stats{
		Gets:  atomic.LoadInt64(&stats.Gets),
		Hits:  atomic.LoadInt64(&stats.Hits),
		Puts:  atomic.LoadInt64(&stats.Puts),
		Drops: atomic.LoadInt64(&stats.Drops),
	}
}

// ResetStats zeroes the arena counters.
func ResetStats() {
	atomic.StoreInt64(&stats.Gets, 0)
	atomic.StoreInt64(&stats.Hits, 0)
	atomic.StoreInt64(&stats.Puts, 0)
	atomic.StoreInt64(&stats.Drops, 0)
}

// checked enables the debug protocol checker: released buffers are
// poisoned and tracked, double releases and releases of foreign slices
// panic. Tests flip it; production leaves it off.
var checked atomic.Bool

// checkedState tracks the data pointers of every buffer currently held
// by the arena while checked mode is on.
var checkedState struct {
	mu   sync.Mutex
	free map[unsafe.Pointer]bool
}

// SetChecked toggles the debug protocol checker. Enabling it clears the
// tracked set; it must not be toggled while buffers are in flight.
func SetChecked(on bool) {
	checkedState.mu.Lock()
	if on {
		checkedState.free = make(map[unsafe.Pointer]bool)
	} else {
		checkedState.free = nil
	}
	checkedState.mu.Unlock()
	checked.Store(on)
}

// Checked reports whether the debug protocol checker is on.
func Checked() bool { return checked.Load() }

// class is one size class of one element type.
type class[T any] struct {
	mu       sync.Mutex
	free     [][]T
	overflow sync.Pool // of *[]T
}

// arena is the per-element-type class table.
type arena[T any] struct {
	classes [numClasses]class[T]
}

var (
	f64Arena  arena[float64]
	byteArena arena[byte]
)

// f64Poison is a quiet NaN with a recognizable payload, so a
// use-after-release in checked mode computes garbage that screams.
var f64Poison = func() float64 {
	bad := uint64(0x7FF8_DEAD_BEEF_0001)
	return *(*float64)(unsafe.Pointer(&bad))
}()

const bytePoison byte = 0xDB

func (a *arena[T]) get(n int) []T {
	atomic.AddInt64(&stats.Gets, 1)
	if n == 0 {
		// A zero-length make of any type is the runtime's zero base:
		// non-nil, no allocation, and distinguishable from "no buffer".
		return make([]T, 0)
	}
	c := classFor(n)
	if c >= numClasses {
		return make([]T, n)
	}
	cl := &a.classes[c]
	cl.mu.Lock()
	if k := len(cl.free); k > 0 {
		b := cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
		cl.mu.Unlock()
		atomic.AddInt64(&stats.Hits, 1)
		checkedAcquire(unsafe.Pointer(unsafe.SliceData(b)))
		return b[:n]
	}
	cl.mu.Unlock()
	if p, _ := cl.overflow.Get().(*[]T); p != nil {
		b := *p
		atomic.AddInt64(&stats.Hits, 1)
		checkedAcquire(unsafe.Pointer(unsafe.SliceData(b)))
		return b[:n]
	}
	return make([]T, n, 1<<(c+minBits))
}

func (a *arena[T]) put(b []T, poison T) {
	if b == nil {
		return
	}
	c := classOfCap(cap(b))
	if c < 0 {
		atomic.AddInt64(&stats.Drops, 1)
		return
	}
	b = b[:cap(b)]
	if checked.Load() {
		for i := range b {
			b[i] = poison
		}
		checkedRelease(unsafe.Pointer(unsafe.SliceData(b)))
	}
	atomic.AddInt64(&stats.Puts, 1)
	cl := &a.classes[c]
	cl.mu.Lock()
	if len(cl.free) < perClassCap || checked.Load() {
		// Checked mode keeps everything on the free list: the sync.Pool
		// would let the GC drop tracked buffers and leak checker entries.
		cl.free = append(cl.free, b)
		cl.mu.Unlock()
		return
	}
	cl.mu.Unlock()
	cl.overflowPut(b)
}

// overflowPut boxes the slice header for sync.Pool. Kept out of put so
// the header's heap escape is paid only on the overflow path — inlined
// into put, &b would force every call to heap-allocate the parameter.
func (cl *class[T]) overflowPut(b []T) {
	cl.overflow.Put(&b)
}

func checkedAcquire(p unsafe.Pointer) {
	if !checked.Load() {
		return
	}
	checkedState.mu.Lock()
	delete(checkedState.free, p)
	checkedState.mu.Unlock()
}

func checkedRelease(p unsafe.Pointer) {
	checkedState.mu.Lock()
	dup := checkedState.free[p]
	if !dup {
		checkedState.free[p] = true
	}
	checkedState.mu.Unlock()
	if dup {
		panic(fmt.Sprintf("bufpool: double release of buffer %p", p))
	}
}

// GetF64 returns a float64 buffer of length n with arbitrary contents.
func GetF64(n int) []float64 { return f64Arena.get(n) }

// PutF64 returns a buffer vended by GetF64 to the arena. The caller must
// not touch it afterwards. Buffers the arena did not vend (wrong
// capacity) are dropped; nil is a no-op.
func PutF64(b []float64) { f64Arena.put(b, f64Poison) }

// GetBytes returns a byte buffer of length n with arbitrary contents.
func GetBytes(n int) []byte { return byteArena.get(n) }

// PutBytes returns a buffer vended by GetBytes to the arena.
func PutBytes(b []byte) { byteArena.put(b, bytePoison) }
