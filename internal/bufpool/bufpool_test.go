package bufpool

import (
	"math"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, 20 - minBits}, {1<<20 + 1, 21 - minBits},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestClassOfCap(t *testing.T) {
	cases := []struct{ c, class int }{
		{0, -1}, {63, -1}, {64, 0}, {65, -1}, {96, -1}, {128, 1},
		{1 << 26, 26 - minBits}, {1 << 27, -1},
	}
	for _, c := range cases {
		if got := classOfCap(c.c); got != c.class {
			t.Errorf("classOfCap(%d) = %d, want %d", c.c, got, c.class)
		}
	}
}

func TestGetLenCapAndRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 1024, 1000} {
		b := GetF64(n)
		if len(b) != n {
			t.Fatalf("GetF64(%d): len %d", n, len(b))
		}
		if n > 0 && (cap(b)&(cap(b)-1)) != 0 {
			t.Fatalf("GetF64(%d): cap %d not a power of two", n, cap(b))
		}
		for i := range b {
			b[i] = float64(i)
		}
		PutF64(b)
	}
	for _, n := range []int{0, 1, 100, 4096} {
		b := GetBytes(n)
		if len(b) != n {
			t.Fatalf("GetBytes(%d): len %d", n, len(b))
		}
		PutBytes(b)
	}
}

func TestReuseSameClass(t *testing.T) {
	a := GetF64(100) // class of cap 128
	p := &a[:1][0]
	PutF64(a)
	b := GetF64(128)
	if &b[:1][0] != p {
		t.Errorf("expected the released buffer back (LIFO free list)")
	}
	PutF64(b)
}

func TestForeignBufferDropped(t *testing.T) {
	ResetStats()
	PutF64(make([]float64, 100)) // cap 100: not a class size
	PutF64(nil)
	if s := Snapshot(); s.Drops != 1 || s.Puts != 0 {
		t.Errorf("drops=%d puts=%d, want 1/0", s.Drops, s.Puts)
	}
}

func TestZeroLengthGetDoesNotAllocate(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		b := GetF64(0)
		if b == nil {
			t.Fatal("GetF64(0) returned nil")
		}
		PutF64(b)
	}); n != 0 {
		t.Errorf("GetF64(0)/PutF64: %v allocs/run, want 0", n)
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	// Prime the class so the measured loop only recycles.
	PutF64(GetF64(1024))
	PutBytes(GetBytes(1024))
	if n := testing.AllocsPerRun(100, func() {
		b := GetF64(1000)
		b[0] = 1
		PutF64(b)
		c := GetBytes(1000)
		c[0] = 1
		PutBytes(c)
	}); n != 0 {
		t.Errorf("steady-state Get/Put: %v allocs/run, want 0", n)
	}
}

func TestCheckedDoubleReleasePanics(t *testing.T) {
	SetChecked(true)
	defer SetChecked(false)
	b := GetF64(64)
	PutF64(b)
	defer func() {
		if recover() == nil {
			t.Errorf("double release did not panic")
		}
	}()
	PutF64(b)
}

func TestCheckedPoisonsReleasedBuffer(t *testing.T) {
	SetChecked(true)
	defer SetChecked(false)
	b := GetF64(64)
	for i := range b {
		b[i] = float64(i)
	}
	alias := b
	PutF64(b)
	for i, v := range alias {
		if !math.IsNaN(v) {
			t.Fatalf("released buffer element %d = %v, want NaN poison", i, v)
		}
	}
	c := GetBytes(64)
	alias2 := c
	PutBytes(c)
	for i, v := range alias2 {
		if v != bytePoison {
			t.Fatalf("released byte buffer element %d = %#x, want %#x", i, v, bytePoison)
		}
	}
}

func TestCheckedReacquireClearsTracking(t *testing.T) {
	SetChecked(true)
	defer SetChecked(false)
	b := GetF64(64)
	PutF64(b)
	c := GetF64(64) // same storage back
	PutF64(c)       // must not be treated as a double release
}
