package oocarray

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
)

// Redistribute copies the contents of src into dst, where both describe
// the same global index space under (possibly) different mappings — the
// initial-placement step of Section 2.3: "redistribution requires reading
// data from disks, communicating data between processors and writing the
// data to the local array files".
//
// Every processor of the machine must call Redistribute collectively with
// its own src/dst local arrays. Source data is read slab by slab within
// the memElems memory budget; the destination local array is staged in
// memory and written out slab by slab at the end (two-phase scheme), so
// the transient memory requirement is O(local destination size).
func Redistribute(p *mp.Proc, src, dst *Array, memElems, tag int) error {
	return RedistributeMapped(p, src, dst, memElems, tag, nil)
}

// RedistributeMapped is Redistribute with an index transform: global
// element (gi, gj) of src is stored at transform(gi, gj) in dst's global
// index space. A nil transform is the identity (plain redistribution);
// swapping the indices yields an out-of-core transpose.
func RedistributeMapped(p *mp.Proc, src, dst *Array, memElems, tag int, transform func(gi, gj int) (int, int)) error {
	if src.proc != p.Rank() || dst.proc != p.Rank() {
		return fmt.Errorf("oocarray: redistribute on rank %d with arrays of procs %d/%d", p.Rank(), src.proc, dst.proc)
	}
	if transform == nil {
		ss, ds := src.dmap.GlobalShape(), dst.dmap.GlobalShape()
		if ss[0] != ds[0] || ss[1] != ds[1] {
			return fmt.Errorf("oocarray: redistribute shape mismatch %v vs %v", ss, ds)
		}
		transform = func(gi, gj int) (int, int) { return gi, gj }
	}

	// All processors must run the same number of communication rounds
	// even when their local slab counts differ (ragged distributions).
	slb := src.Slabbing(ByColumn, memElems)
	rounds := int(p.AllReduceMax(tag, []float64{float64(slb.Count)})[0])

	size := p.Size()
	staged := matrix.New(dst.rows, dst.cols)
	reader := src.NewSlabReader(slb)
	for round := 0; round < rounds; round++ {
		parts := make([][]float64, size)
		icla, ok, err := reader.Next()
		if err != nil {
			return err
		}
		if ok {
			for lj := 0; lj < icla.Cols; lj++ {
				for li := 0; li < icla.Rows; li++ {
					gi, gj := src.GlobalIndex(icla.RowOff+li, icla.ColOff+lj)
					di, dj := transform(gi, gj)
					owner := dst.dmap.Owner(di, dj)
					parts[owner] = append(parts[owner], float64(di), float64(dj), icla.At(li, lj))
				}
			}
		}
		incoming := p.AllToAll(tag, parts)
		for _, buf := range incoming {
			if len(buf)%3 != 0 {
				return fmt.Errorf("oocarray: redistribute payload length %d not a multiple of 3", len(buf))
			}
			for i := 0; i < len(buf); i += 3 {
				di, dj := int(buf[i]), int(buf[i+1])
				_, local := dst.dmap.ToLocal(di, dj)
				staged.Set(local[0], local[1], buf[i+2])
			}
		}
	}

	// Phase 2: write the staged destination out slab by slab.
	out := dst.Slabbing(ByColumn, memElems)
	for s := 0; s < out.Count; s++ {
		icla, err := dst.NewSlab(out, s)
		if err != nil {
			return err
		}
		for lj := 0; lj < icla.Cols; lj++ {
			copy(icla.Col(lj), staged.Col(icla.ColOff+lj))
		}
		if err := dst.WriteSection(icla); err != nil {
			return err
		}
	}
	return nil
}
