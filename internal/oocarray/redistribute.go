package oocarray

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/mp"
)

// Redistribute copies the contents of src into dst, where both describe
// the same global index space under (possibly) different mappings — the
// initial-placement step of Section 2.3: "redistribution requires reading
// data from disks, communicating data between processors and writing the
// data to the local array files".
//
// Every processor of the machine must call Redistribute collectively with
// its own src/dst local arrays. The transfer runs over the collective
// two-phase I/O layer (internal/collio): source data is read in large
// contiguous column slabs within the memElems budget, shuffled to the
// destination owners through mp.AllToAll, and staged into destination
// windows that are flushed with one contiguous write each — so both the
// transient memory and every individual disk request stay within the
// budget regardless of the local array sizes.
func Redistribute(p *mp.Proc, src, dst *Array, memElems, tag int) error {
	return RedistributeVia(p, src, dst, memElems, tag, nil, collio.TwoPhase)
}

// RedistributeMapped is Redistribute with an index transform: global
// element (gi, gj) of src is stored at transform(gi, gj) in dst's global
// index space. A nil transform is the identity (plain redistribution);
// swapping the indices yields an out-of-core transpose.
func RedistributeMapped(p *mp.Proc, src, dst *Array, memElems, tag int, transform func(gi, gj int) (int, int)) error {
	return RedistributeVia(p, src, dst, memElems, tag, transform, collio.TwoPhase)
}

// RedistributeVia is RedistributeMapped with an explicit destination
// write strategy, letting the compiler's cost model pick among direct,
// sieved and two-phase writes per statement.
func RedistributeVia(p *mp.Proc, src, dst *Array, memElems, tag int, transform func(gi, gj int) (int, int), method collio.Method) error {
	if src.proc != p.Rank() || dst.proc != p.Rank() {
		return fmt.Errorf("oocarray: redistribute on rank %d with arrays of procs %d/%d", p.Rank(), src.proc, dst.proc)
	}
	return collio.Redistribute(p, src.collioSide(), dst.collioSide(), memElems, tag, transform, method)
}
