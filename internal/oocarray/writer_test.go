package oocarray

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
)

func TestSlabWriterDataIntact(t *testing.T) {
	var clock sim.Clock
	arr, _ := newTestArray(t, 16, 4, 0, &clock, Options{})
	s := arr.Slabbing(ByColumn, 32) // 2 columns per slab
	w := arr.NewSlabWriter()
	for idx := 0; idx < s.Count; idx++ {
		icla, err := arr.NewSlab(s, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range icla.Data {
			icla.Data[i] = float64(idx*1000 + i)
		}
		if err := w.Write(icla); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	m, err := arr.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < s.Count; idx++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 16; i++ {
				want := float64(idx*1000 + j*16 + i)
				if got := m.At(i, idx*2+j); got != want {
					t.Fatalf("element (%d,%d): got %g want %g", i, idx*2+j, got, want)
				}
			}
		}
	}
}

func TestSlabWriterOverlapsWrites(t *testing.T) {
	// Charging compute between writes, the write-behind pipeline hides
	// write time behind it; synchronous writes cannot.
	const n, p = 64, 2
	cfg := sim.Delta(p)
	elapsed := func(behind bool) float64 {
		var clock sim.Clock
		arr, _ := newTestArray(t, n, p, 0, &clock, Options{})
		s := arr.Slabbing(ByColumn, n*4)
		w := arr.NewSlabWriter()
		for idx := 0; idx < s.Count; idx++ {
			icla, err := arr.NewSlab(s, idx)
			if err != nil {
				t.Fatal(err)
			}
			// Compute comparable to one write's I/O time.
			clock.Advance(cfg.IOTime(1, int64(n*4*cfg.ElemSize)))
			if behind {
				if err := w.Write(icla); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := arr.WriteSection(icla); err != nil {
					t.Fatal(err)
				}
			}
		}
		w.Flush()
		return clock.Seconds()
	}
	sync, async := elapsed(false), elapsed(true)
	if async >= sync {
		t.Errorf("write-behind did not help: %g vs %g", async, sync)
	}
}

func TestSlabWriterCountsUnchanged(t *testing.T) {
	arr, stats := newTestArray(t, 16, 4, 1, nil, Options{})
	s := arr.Slabbing(ByColumn, 16)
	w := arr.NewSlabWriter()
	for idx := 0; idx < s.Count; idx++ {
		icla, err := arr.NewSlab(s, idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(icla); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if stats.SlabWrites != int64(s.Count) {
		t.Errorf("slab writes = %d, want %d", stats.SlabWrites, s.Count)
	}
	// Flush twice is harmless.
	w.Flush()
}

func TestSlabWriterNilClock(t *testing.T) {
	arr, _ := newTestArray(t, 8, 2, 0, nil, Options{})
	w := arr.NewSlabWriter()
	icla, err := arr.NewSlab(arr.Slabbing(ByColumn, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(icla); err != nil {
		t.Fatal(err)
	}
	w.Flush()
}

func TestSlabWriterBadSection(t *testing.T) {
	arr, _ := newTestArray(t, 8, 2, 0, nil, Options{})
	w := arr.NewSlabWriter()
	bad := &ICLA{RowOff: 0, ColOff: 0, Rows: 99, Cols: 1, Data: make([]float64, 99)}
	if err := w.Write(bad); err == nil {
		t.Error("out-of-bounds section should fail")
	}
}

func TestSievedSectionWritePreservesNeighbors(t *testing.T) {
	// A row-slab write with sieving is a read-modify-write over the
	// span; the columns' other rows must survive.
	arr, stats := newTestArray(t, 16, 4, 0, nil, Options{Sieve: true})
	s := arr.Slabbing(ByRow, 4*arr.LocalCols())
	icla, err := arr.NewSlab(s, 1) // rows 4..7
	if err != nil {
		t.Fatal(err)
	}
	for i := range icla.Data {
		icla.Data[i] = -1
	}
	before := stats.WriteRequests
	if err := arr.WriteSection(icla); err != nil {
		t.Fatal(err)
	}
	if got := stats.WriteRequests - before; got != 1 {
		t.Errorf("sieved section write used %d write requests, want 1", got)
	}
	m, err := arr.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	for lj := 0; lj < arr.LocalCols(); lj++ {
		for li := 0; li < arr.LocalRows(); li++ {
			gi, gj := arr.GlobalIndex(li, lj)
			want := valueAt(gi, gj)
			if li >= 4 && li < 8 {
				want = -1
			}
			if m.At(li, lj) != want {
				t.Fatalf("(%d,%d): got %g want %g", li, lj, m.At(li, lj), want)
			}
		}
	}
}
