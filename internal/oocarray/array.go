// Package oocarray implements the out-of-core array runtime of the paper
// (the PASSION-style services the compiled node programs call): each
// processor's Out-of-core Local Array (OCLA) lives in a Local Array File,
// and computation proceeds over In-Core Local Array (ICLA) slabs that fit
// in node memory. The package provides slab geometry for strip-mining
// along either dimension, sectioned reads/writes, optional data sieving,
// a prefetching slab reader, and redistribution between distributions.
package oocarray

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Dim selects the strip-mining direction of a slab decomposition.
type Dim int

const (
	// ByColumn cuts the local array into slabs of whole columns
	// (Figure 11(I) of the paper).
	ByColumn Dim = iota
	// ByRow cuts the local array into slabs of whole rows
	// (Figure 11(II)).
	ByRow
)

// String returns the paper's name for the slab direction.
func (d Dim) String() string {
	switch d {
	case ByColumn:
		return "column-slab"
	case ByRow:
		return "row-slab"
	default:
		return fmt.Sprintf("Dim(%d)", int(d))
	}
}

// Options configures the runtime behaviour of an out-of-core array.
type Options struct {
	// Sieve enables PASSION-style data sieving: a discontiguous slab
	// transfer is performed as one request covering the whole span,
	// trading extra data volume for fewer requests.
	Sieve bool
	// Prefetch makes SlabReader overlap the fetch of the next slab with
	// the computation on the current one.
	Prefetch bool
	// WriteBehind makes output writes overlap computation through
	// SlabWriter (one outstanding write).
	WriteBehind bool
}

// Array is one processor's out-of-core local array: a column-major
// rows x cols local section of a distributed global array, stored in a
// local array file.
type Array struct {
	dmap  *dist.Array
	proc  int
	rows  int
	cols  int
	laf   *iosim.LAF
	clock *sim.Clock
	opts  Options
	// chunkScratch backs sectionChunks between calls. Safe because the
	// array belongs to one rank goroutine and every caller consumes the
	// chunk list before issuing another sectioned transfer (the prefetch
	// overlap is simulated, not concurrent).
	chunkScratch []iosim.Chunk
}

// New creates the out-of-core local array of processor proc for the global
// mapping dmap, backed by a fresh local array file on disk. clock may be
// nil, in which case no simulated time is charged (statistics still
// accumulate through the disk). The mapping must be two-dimensional.
func New(disk *iosim.Disk, dmap *dist.Array, proc int, clock *sim.Clock, opts Options) (*Array, error) {
	if len(dmap.Dims) != 2 {
		return nil, fmt.Errorf("oocarray: %s is %d-dimensional; only 2-D arrays are supported", dmap.Name, len(dmap.Dims))
	}
	shape := dmap.LocalShape(proc)
	rows, cols := shape[0], shape[1]
	name := fmt.Sprintf("%s.p%d.laf", dmap.Name, proc)
	laf, err := disk.CreateLAF(name, int64(rows)*int64(cols))
	if err != nil {
		return nil, err
	}
	return &Array{dmap: dmap, proc: proc, rows: rows, cols: cols, laf: laf, clock: clock, opts: opts}, nil
}

// Open attaches to the existing local array file of processor proc (the
// resume path): like New, but the file must already exist and its
// contents are preserved.
func Open(disk *iosim.Disk, dmap *dist.Array, proc int, clock *sim.Clock, opts Options) (*Array, error) {
	if len(dmap.Dims) != 2 {
		return nil, fmt.Errorf("oocarray: %s is %d-dimensional; only 2-D arrays are supported", dmap.Name, len(dmap.Dims))
	}
	shape := dmap.LocalShape(proc)
	rows, cols := shape[0], shape[1]
	name := fmt.Sprintf("%s.p%d.laf", dmap.Name, proc)
	laf, err := disk.OpenLAF(name, int64(rows)*int64(cols))
	if err != nil {
		return nil, err
	}
	return &Array{dmap: dmap, proc: proc, rows: rows, cols: cols, laf: laf, clock: clock, opts: opts}, nil
}

// Close releases the local array file handle (the file itself remains).
func (a *Array) Close() error { return a.laf.Close() }

// Name returns the global array name.
func (a *Array) Name() string { return a.dmap.Name }

// Dist returns the global mapping.
func (a *Array) Dist() *dist.Array { return a.dmap }

// Proc returns the owning processor's rank.
func (a *Array) Proc() int { return a.proc }

// LocalRows and LocalCols return the local section's shape.
func (a *Array) LocalRows() int { return a.rows }

// LocalCols returns the number of local columns.
func (a *Array) LocalCols() int { return a.cols }

// LocalElems returns the number of elements in the local section.
func (a *Array) LocalElems() int { return a.rows * a.cols }

// Options returns the configured runtime options.
func (a *Array) Options() Options { return a.opts }

// GlobalIndex translates local indices (li, lj) to global (gi, gj),
// honoring multi-dimensional processor grids.
func (a *Array) GlobalIndex(li, lj int) (gi, gj int) {
	gi = a.dmap.Dims[0].ToGlobal(a.dmap.ProcCoord(a.proc, 0), li)
	gj = a.dmap.Dims[1].ToGlobal(a.dmap.ProcCoord(a.proc, 1), lj)
	return gi, gj
}

// charge applies a simulated duration to the processor clock, if
// attached. Span recording happens at the disk layer (the slab span's
// interval is exactly the charge the caller applies here); kind is kept
// for the collective I/O layer's Charge callback signature.
func (a *Array) charge(kind string, seconds float64) {
	if a.clock == nil {
		return
	}
	a.clock.Advance(seconds)
}

// emitIOWait records the stall of an overlap pipeline that waited for a
// previously issued transfer, from start to the current clock.
func (a *Array) emitIOWait(start float64) {
	if tr, _, label := a.laf.Disk().TraceSink(); tr != nil {
		if now := a.clock.Seconds(); now > start {
			tr.Emit(trace.Span{Kind: trace.KindIOWait, Label: label, Start: start, Dur: now - start})
		}
	}
}

// collioSide exposes the array to the collective I/O layer.
func (a *Array) collioSide() collio.Side {
	return collio.Side{
		Map:    a.dmap,
		LAF:    a.laf,
		Rank:   a.proc,
		Rows:   a.rows,
		Cols:   a.cols,
		Charge: a.charge,
	}
}

// ---------------------------------------------------------------------------
// Slab geometry

// Slabbing describes a strip-mining of the local array: Count slabs of
// Width columns (ByColumn) or Width rows (ByRow); the final slab may be
// narrower.
type Slabbing struct {
	Dim   Dim
	Width int
	Count int
}

// Slabbing computes the slab decomposition of the local array along dim
// given a memory budget of memElems elements for this array's ICLA. The
// width is at least 1 even if a single column/row exceeds the budget.
func (a *Array) Slabbing(dim Dim, memElems int) Slabbing {
	extent, other := a.cols, a.rows
	if dim == ByRow {
		extent, other = a.rows, a.cols
	}
	if extent == 0 || other == 0 {
		return Slabbing{Dim: dim, Width: 1, Count: 0}
	}
	w := memElems / other
	if w < 1 {
		w = 1
	}
	if w > extent {
		w = extent
	}
	return Slabbing{Dim: dim, Width: w, Count: (extent + w - 1) / w}
}

// SlabRatio computes the decomposition whose slab is the given fraction of
// the OCLA (the paper's "slab ratio": ratio 1 means the whole local array
// in one slab, 1/8 means eight slabs).
func (a *Array) SlabRatio(dim Dim, ratio float64) Slabbing {
	if ratio <= 0 || ratio > 1 {
		panic(fmt.Sprintf("oocarray: slab ratio %g outside (0,1]", ratio))
	}
	mem := int(float64(a.LocalElems()) * ratio)
	return a.Slabbing(dim, mem)
}

// slabBounds returns the [start, start+size) extent of slab index in the
// strip-mined dimension.
func (s Slabbing) slabBounds(index, extent int) (start, size int) {
	start = index * s.Width
	size = s.Width
	if start+size > extent {
		size = extent - start
	}
	return start, size
}

// ---------------------------------------------------------------------------
// ICLA

// ICLA is an in-core local array: a column-major section of the local
// array, positioned at (RowOff, ColOff).
type ICLA struct {
	RowOff, ColOff int
	Rows, Cols     int
	Data           []float64
}

// At returns element (i, j) of the section (section-relative indices).
func (s *ICLA) At(i, j int) float64 { return s.Data[j*s.Rows+i] }

// Set assigns element (i, j) of the section.
func (s *ICLA) Set(i, j int, v float64) { s.Data[j*s.Rows+i] = v }

// Col returns column j of the section, aliasing its storage.
func (s *ICLA) Col(j int) []float64 { return s.Data[j*s.Rows : (j+1)*s.Rows] }

// ---------------------------------------------------------------------------
// Sectioned I/O

// sectionChunks maps a (r0, c0, h, w) section of the column-major local
// array to file chunks: one chunk per column, or a single chunk when the
// section spans all rows.
func (a *Array) sectionChunks(r0, c0, h, w int) ([]iosim.Chunk, error) {
	if r0 < 0 || c0 < 0 || h < 0 || w < 0 || r0+h > a.rows || c0+w > a.cols {
		return nil, fmt.Errorf("oocarray: %s.p%d: section (%d,%d)+%dx%d outside local %dx%d",
			a.Name(), a.proc, r0, c0, h, w, a.rows, a.cols)
	}
	if h == 0 || w == 0 {
		return nil, nil
	}
	chunks := a.chunkScratch[:0]
	if h == a.rows {
		chunks = append(chunks, iosim.Chunk{Off: int64(c0) * int64(a.rows), Len: h * w})
	} else {
		for j := 0; j < w; j++ {
			chunks = append(chunks, iosim.Chunk{Off: int64(c0+j)*int64(a.rows) + int64(r0), Len: h})
		}
	}
	a.chunkScratch = chunks
	return chunks, nil
}

// ReadSection fetches the h x w section at (r0, c0) from the local array
// file, charging the processor clock.
func (a *Array) ReadSection(r0, c0, h, w int) (*ICLA, error) {
	icla, sec, err := a.readSectionRaw(r0, c0, h, w)
	if err != nil {
		return nil, err
	}
	a.charge("io-read", sec)
	return icla, nil
}

// readSectionRaw fetches a section and returns the simulated duration
// without charging the clock (the prefetch pipeline applies it itself).
func (a *Array) readSectionRaw(r0, c0, h, w int) (*ICLA, float64, error) {
	chunks, err := a.sectionChunks(r0, c0, h, w)
	if err != nil {
		return nil, 0, err
	}
	icla := &ICLA{RowOff: r0, ColOff: c0, Rows: h, Cols: w, Data: bufpool.GetF64(h * w)}
	// The pooled buffer must start out zeroed like the make it replaced:
	// phantom-mode reads leave it untouched, and sieved reads only touch
	// the chunked positions.
	clear(icla.Data)
	var sec float64
	if len(chunks) > 0 {
		if a.opts.Sieve {
			sec, err = collio.AggregateRead(a.laf, chunks, icla.Data)
		} else {
			sec, err = a.laf.ReadChunks(chunks, icla.Data)
		}
		if err != nil {
			return nil, 0, err
		}
	}
	return icla, sec, nil
}

// WriteSection stores the section back to the local array file, charging
// the processor clock.
func (a *Array) WriteSection(s *ICLA) error {
	sec, err := a.writeSectionRaw(s)
	if err != nil {
		return err
	}
	a.charge("io-write", sec)
	return nil
}

// writeSectionRaw stores a section and returns the simulated duration
// without charging the clock (the write-behind pipeline applies it
// itself). The data reaches the file immediately; only the simulated
// completion is deferred. With sieving enabled, discontiguous sections
// use a read-modify-write cycle over the covering span (two requests).
func (a *Array) writeSectionRaw(s *ICLA) (float64, error) {
	chunks, err := a.sectionChunks(s.RowOff, s.ColOff, s.Rows, s.Cols)
	if err != nil {
		return 0, err
	}
	if len(chunks) == 0 {
		return 0, nil
	}
	if a.opts.Sieve {
		return collio.AggregateWrite(a.laf, chunks, s.Data)
	}
	return a.laf.WriteChunks(chunks, s.Data)
}

// ReadSlab fetches slab index of the given decomposition.
func (a *Array) ReadSlab(s Slabbing, index int) (*ICLA, error) {
	icla, sec, err := a.readSlabRaw(s, index)
	if err != nil {
		return nil, err
	}
	a.charge("io-read", sec)
	return icla, nil
}

func (a *Array) readSlabRaw(s Slabbing, index int) (*ICLA, float64, error) {
	if index < 0 || index >= s.Count {
		return nil, 0, fmt.Errorf("oocarray: slab index %d outside [0,%d)", index, s.Count)
	}
	if s.Dim == ByColumn {
		start, size := s.slabBounds(index, a.cols)
		return a.readSectionRaw(0, start, a.rows, size)
	}
	start, size := s.slabBounds(index, a.rows)
	return a.readSectionRaw(start, 0, size, a.cols)
}

// NewSlab allocates a zeroed in-core slab positioned like slab index of
// the decomposition, for computing results before WriteSection.
func (a *Array) NewSlab(s Slabbing, index int) (*ICLA, error) {
	if index < 0 || index >= s.Count {
		return nil, fmt.Errorf("oocarray: slab index %d outside [0,%d)", index, s.Count)
	}
	var icla *ICLA
	if s.Dim == ByColumn {
		start, size := s.slabBounds(index, a.cols)
		icla = &ICLA{RowOff: 0, ColOff: start, Rows: a.rows, Cols: size, Data: bufpool.GetF64(a.rows * size)}
	} else {
		start, size := s.slabBounds(index, a.rows)
		icla = &ICLA{RowOff: start, ColOff: 0, Rows: size, Cols: a.cols, Data: bufpool.GetF64(size * a.cols)}
	}
	clear(icla.Data)
	return icla, nil
}

// Recycle returns a slab's storage to the buffer arena once the caller
// is done with it (typically after WriteSection). The slab must not be
// used afterwards; nil is a no-op.
func (a *Array) Recycle(s *ICLA) {
	if s == nil {
		return
	}
	bufpool.PutF64(s.Data)
	s.Data = nil
}

// ---------------------------------------------------------------------------
// Initialization and verification (unaccounted I/O)

// FillGlobal initializes the local array file with f evaluated at global
// indices. This models the initial data distribution, whose cost the
// paper amortizes away; it is therefore not accounted.
func (a *Array) FillGlobal(f func(gi, gj int) float64) error {
	if a.rows == 0 || a.cols == 0 {
		return nil
	}
	quiet := a.laf.Quiet()
	buf := make([]float64, a.rows)
	for lj := 0; lj < a.cols; lj++ {
		for li := 0; li < a.rows; li++ {
			gi, gj := a.GlobalIndex(li, lj)
			buf[li] = f(gi, gj)
		}
		chunk := []iosim.Chunk{{Off: int64(lj) * int64(a.rows), Len: a.rows}}
		if _, err := quiet.WriteChunks(chunk, buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadLocal returns the whole local section as an in-core matrix without
// accounting (verification helper).
func (a *Array) ReadLocal() (*matrix.Matrix, error) {
	m := matrix.New(a.rows, a.cols)
	if a.rows*a.cols == 0 {
		return m, nil
	}
	chunk := []iosim.Chunk{{Off: 0, Len: a.rows * a.cols}}
	if _, err := a.laf.Quiet().ReadChunks(chunk, m.Data); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteLocal overwrites the whole local section from an in-core matrix
// without accounting (initialization helper).
func (a *Array) WriteLocal(m *matrix.Matrix) error {
	if m.Rows != a.rows || m.Cols != a.cols {
		return fmt.Errorf("oocarray: WriteLocal shape %dx%d into local %dx%d", m.Rows, m.Cols, a.rows, a.cols)
	}
	if a.rows*a.cols == 0 {
		return nil
	}
	chunk := []iosim.Chunk{{Off: 0, Len: a.rows * a.cols}}
	_, err := a.laf.Quiet().WriteChunks(chunk, m.Data)
	return err
}
