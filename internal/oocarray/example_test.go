package oocarray_test

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Example demonstrates the out-of-core array workflow of the paper:
// create the local array file, strip-mine it into slabs, and stream it
// through memory while the tracing layer counts requests and bytes.
func Example() {
	stats := &trace.IOStats{}
	disk := iosim.NewDisk(iosim.NewMemFS(), sim.Delta(4), stats)

	// Array a(64,64) distributed column-block over 4 processors; this is
	// processor 1's out-of-core local array (64 x 16).
	dm, _ := dist.NewArray("a", dist.NewCollapsed(64), dist.NewBlock(64, 4))
	arr, err := oocarray.New(disk, dm, 1, nil, oocarray.Options{})
	if err != nil {
		panic(err)
	}
	defer arr.Close()
	if err := arr.FillGlobal(func(i, j int) float64 { return float64(i + j) }); err != nil {
		panic(err)
	}

	// Strip-mine by column with room for 256 elements (4 columns).
	slb := arr.Slabbing(oocarray.ByColumn, 256)
	fmt.Printf("slabs: %d of %d columns each\n", slb.Count, slb.Width)
	reader := arr.NewSlabReader(slb)
	sum := 0.0
	for {
		icla, ok, err := reader.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			break
		}
		for _, v := range icla.Data {
			sum += v
		}
	}
	fmt.Println("sum of the local section:", sum)
	fmt.Printf("I/O: %d slab fetches, %d requests, %d model bytes\n",
		stats.SlabReads, stats.ReadRequests, stats.BytesRead)
	// Output:
	// slabs: 4 of 4 columns each
	// sum of the local section: 56320
	// I/O: 4 slab fetches, 4 requests, 4096 model bytes
}
