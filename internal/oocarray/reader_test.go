package oocarray

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/sim"
)

func TestSlabReaderDeliversAllSlabs(t *testing.T) {
	arr, _ := newTestArray(t, 16, 4, 0, nil, Options{})
	s := arr.Slabbing(ByColumn, 16) // 1 column per slab, 4 slabs
	r := arr.NewSlabReader(s)
	if r.Remaining() != 4 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	seen := 0
	for {
		icla, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if icla.ColOff != seen {
			t.Fatalf("slab %d at ColOff %d", seen, icla.ColOff)
		}
		gi, gj := arr.GlobalIndex(3, icla.ColOff)
		if icla.At(3, 0) != valueAt(gi, gj) {
			t.Fatalf("slab %d contents wrong", seen)
		}
		seen++
	}
	if seen != 4 {
		t.Fatalf("delivered %d slabs, want 4", seen)
	}
	// Next after exhaustion keeps returning ok=false.
	if _, ok, _ := r.Next(); ok {
		t.Error("reader delivered past the end")
	}
}

func TestSlabReaderReset(t *testing.T) {
	arr, _ := newTestArray(t, 8, 2, 1, nil, Options{Prefetch: true})
	s := arr.Slabbing(ByColumn, 8)
	r := arr.NewSlabReader(s)
	first1, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if r.Remaining() != s.Count {
		t.Fatalf("Remaining after Reset = %d", r.Remaining())
	}
	first2, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first1.ColOff != first2.ColOff || first1.At(0, 0) != first2.At(0, 0) {
		t.Error("Reset did not rewind to the first slab")
	}
}

func TestPrefetchOverlapsIO(t *testing.T) {
	// Two identical passes over the slabs, charging the same amount of
	// compute per slab. With prefetch, the I/O of slab i+1 hides behind
	// the compute on slab i, so the total simulated time must be lower.
	const n, p = 64, 2
	elapsed := func(prefetch bool) float64 {
		var clock sim.Clock
		arr, _ := newTestArray(t, n, p, 0, &clock, Options{Prefetch: prefetch})
		s := arr.Slabbing(ByColumn, n*4) // 8 slabs of 4 columns
		r := arr.NewSlabReader(s)
		cfg := sim.Delta(p)
		for {
			_, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			// Charge compute comparable to the slab's I/O time.
			clock.Advance(cfg.IOTime(1, int64(n*4*cfg.ElemSize)))
		}
		return clock.Seconds()
	}
	plain, overlapped := elapsed(false), elapsed(true)
	if overlapped >= plain {
		t.Errorf("prefetch did not help: %g vs %g", overlapped, plain)
	}
	// With compute >= I/O per slab, all but the first fetch hide
	// completely: overlapped ~ plain - 7/15 of total... just require a
	// meaningful gap.
	if overlapped > 0.8*plain {
		t.Errorf("prefetch overlap too weak: %g vs %g", overlapped, plain)
	}
}

func TestPrefetchSameDataAndCounts(t *testing.T) {
	// Prefetching must not change what is read or how much.
	read := func(prefetch bool) ([]float64, int64) {
		arr, stats := newTestArray(t, 16, 4, 2, nil, Options{Prefetch: prefetch})
		s := arr.Slabbing(ByColumn, 16)
		r := arr.NewSlabReader(s)
		var all []float64
		for {
			icla, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			all = append(all, icla.Data...)
		}
		return all, stats.SlabReads
	}
	a, ca := read(false)
	b, cb := read(true)
	if ca != cb {
		t.Errorf("slab read counts differ: %d vs %d", ca, cb)
	}
	if len(a) != len(b) {
		t.Fatalf("data lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("data differs at %d", i)
		}
	}
}
