package oocarray

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
)

// runRedistribute executes a column-block -> dstMap redistribution of an
// n x n array over p processors and verifies every element landed where
// dstMap says it should.
func runRedistribute(t *testing.T, n, p int, mkDst func(n, p int) *dist.Array, transform func(int, int) (int, int), wantAt func(gi, gj int) float64) {
	t.Helper()
	fs := iosim.NewMemFS()
	_, err := mp.Run(sim.Delta(p), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), &proc.Stats().IO)
		srcMap, err := dist.NewArray("src", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			return err
		}
		src, err := New(disk, srcMap, proc.Rank(), proc.Clock(), Options{})
		if err != nil {
			return err
		}
		if err := src.FillGlobal(valueAt); err != nil {
			return err
		}
		dstMap := mkDst(n, p)
		dst, err := New(disk, dstMap, proc.Rank(), proc.Clock(), Options{})
		if err != nil {
			return err
		}
		if err := RedistributeMapped(proc, src, dst, n*2, 100, transform); err != nil {
			return err
		}
		m, err := dst.ReadLocal()
		if err != nil {
			return err
		}
		for lj := 0; lj < dst.LocalCols(); lj++ {
			for li := 0; li < dst.LocalRows(); li++ {
				gi, gj := dst.GlobalIndex(li, lj)
				if got, want := m.At(li, lj), wantAt(gi, gj); got != want {
					return fmt.Errorf("proc %d dst(%d,%d)=g(%d,%d): got %g want %g",
						proc.Rank(), li, lj, gi, gj, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeColumnToRowBlock(t *testing.T) {
	mkRow := func(n, p int) *dist.Array {
		d, err := dist.NewArray("dst", dist.NewBlock(n, p), dist.NewCollapsed(n))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	runRedistribute(t, 12, 4, mkRow, nil, valueAt)
}

func TestRedistributeToCyclic(t *testing.T) {
	mkCyc := func(n, p int) *dist.Array {
		d, err := dist.NewArray("dst", dist.NewCollapsed(n), dist.NewCyclic(n, p))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	runRedistribute(t, 10, 3, mkCyc, nil, valueAt)
}

func TestRedistributeIdentity(t *testing.T) {
	mkSame := func(n, p int) *dist.Array {
		d, err := dist.NewArray("dst", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	runRedistribute(t, 8, 2, mkSame, nil, valueAt)
}

func TestRedistributeTranspose(t *testing.T) {
	// dst(gj, gi) = src(gi, gj): an out-of-core transpose expressed as a
	// mapped redistribution.
	mkDst := func(n, p int) *dist.Array {
		d, err := dist.NewArray("dst", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	swap := func(gi, gj int) (int, int) { return gj, gi }
	// dst holds the transpose, so dst(gi,gj) == src(gj,gi).
	runRedistribute(t, 9, 3, mkDst, swap, func(gi, gj int) float64 { return valueAt(gj, gi) })
}

func TestRedistributeRaggedCounts(t *testing.T) {
	// 10 columns over 4 procs gives slab counts 3,3,3,1 with a 1-column
	// budget; the collective max keeps the rounds aligned.
	mkRow := func(n, p int) *dist.Array {
		d, err := dist.NewArray("dst", dist.NewBlock(n, p), dist.NewCollapsed(n))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fs := iosim.NewMemFS()
	const n, p = 10, 4
	_, err := mp.Run(sim.Delta(p), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		srcMap, err := dist.NewArray("src", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			return err
		}
		src, err := New(disk, srcMap, proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		if err := src.FillGlobal(valueAt); err != nil {
			return err
		}
		dst, err := New(disk, mkRow(n, p), proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		// Budget of n elements = 1 source column per slab.
		if err := Redistribute(proc, src, dst, n, 7); err != nil {
			return err
		}
		m, err := dst.ReadLocal()
		if err != nil {
			return err
		}
		for lj := 0; lj < dst.LocalCols(); lj++ {
			for li := 0; li < dst.LocalRows(); li++ {
				gi, gj := dst.GlobalIndex(li, lj)
				if m.At(li, lj) != valueAt(gi, gj) {
					return fmt.Errorf("proc %d wrong at g(%d,%d)", proc.Rank(), gi, gj)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeShapeMismatch(t *testing.T) {
	fs := iosim.NewMemFS()
	_, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		srcMap, _ := dist.NewArray("src", dist.NewCollapsed(8), dist.NewBlock(8, 2))
		dstMap, _ := dist.NewArray("dst", dist.NewCollapsed(6), dist.NewBlock(6, 2))
		src, err := New(disk, srcMap, proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		dst, err := New(disk, dstMap, proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		if err := Redistribute(proc, src, dst, 64, 1); err == nil {
			return fmt.Errorf("shape mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeToBlockBlockGrid(t *testing.T) {
	// Column-block over 4 procs -> block-block over a 2x2 grid: the
	// general two-dimensional redistribution of Section 2.3.
	fs := iosim.NewMemFS()
	const n, p = 12, 4
	_, err := mp.Run(sim.Delta(p), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		srcMap, err := dist.NewArray("src", dist.NewCollapsed(n), dist.NewBlock(n, p))
		if err != nil {
			return err
		}
		src, err := New(disk, srcMap, proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		if err := src.FillGlobal(valueAt); err != nil {
			return err
		}
		dstMap, err := dist.NewGridArray("dst", dist.NewGrid(2, 2),
			dist.NewBlock(n, 2), dist.NewBlock(n, 2))
		if err != nil {
			return err
		}
		dst, err := New(disk, dstMap, proc.Rank(), nil, Options{})
		if err != nil {
			return err
		}
		if dst.LocalRows() != n/2 || dst.LocalCols() != n/2 {
			return fmt.Errorf("grid local shape %dx%d", dst.LocalRows(), dst.LocalCols())
		}
		if err := Redistribute(proc, src, dst, n*2, 50); err != nil {
			return err
		}
		m, err := dst.ReadLocal()
		if err != nil {
			return err
		}
		for lj := 0; lj < dst.LocalCols(); lj++ {
			for li := 0; li < dst.LocalRows(); li++ {
				gi, gj := dst.GlobalIndex(li, lj)
				if m.At(li, lj) != valueAt(gi, gj) {
					return fmt.Errorf("proc %d grid dst wrong at g(%d,%d): %g", proc.Rank(), gi, gj, m.At(li, lj))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
