package oocarray

// SlabReader iterates over the slabs of a decomposition in order. With
// Options.Prefetch enabled it overlaps the fetch of slab i+1 with the
// computation on slab i: the next fetch is issued as soon as a slab is
// delivered, and its simulated completion time is applied with SyncTo
// instead of Advance, so I/O time hides behind whatever compute the caller
// performs between Next calls (single outstanding request model).
type SlabReader struct {
	arr          *Array
	slb          Slabbing
	next         int
	pending      *ICLA
	pendingReady float64
}

// NewSlabReader returns a reader over the given decomposition.
func (a *Array) NewSlabReader(s Slabbing) *SlabReader {
	return &SlabReader{arr: a, slb: s}
}

// Reset rewinds the reader for another pass over the slabs. A pending
// prefetched slab is discarded (its cost was never charged) and its
// storage returned to the arena.
func (r *SlabReader) Reset() {
	r.next = 0
	r.arr.Recycle(r.pending)
	r.pending = nil
	r.pendingReady = 0
}

// Close releases a pending prefetched slab, if any. Call it when the
// reader is abandoned before exhaustion — a cancelled run, an early
// error — so the prefetch buffer returns to the arena; a drained or
// fresh reader makes it a no-op.
func (r *SlabReader) Close() {
	r.arr.Recycle(r.pending)
	r.pending = nil
}

// Remaining returns how many slabs have not been delivered yet.
func (r *SlabReader) Remaining() int { return r.slb.Count - r.next }

// Next delivers the next slab, or ok == false after the last one.
func (r *SlabReader) Next() (icla *ICLA, ok bool, err error) {
	if r.next >= r.slb.Count {
		return nil, false, nil
	}
	if r.pending != nil {
		icla = r.pending
		r.pending = nil
		if r.arr.clock != nil {
			start := r.arr.clock.Seconds()
			r.arr.clock.SyncTo(r.pendingReady)
			r.arr.emitIOWait(start)
		}
	} else {
		var sec float64
		icla, sec, err = r.arr.readSlabRaw(r.slb, r.next)
		if err != nil {
			return nil, false, err
		}
		r.arr.charge("io-read", sec)
	}
	r.next++
	if r.arr.opts.Prefetch && r.next < r.slb.Count {
		d := r.arr.laf.Disk()
		d.SetDeferred(true)
		pre, sec, err := r.arr.readSlabRaw(r.slb, r.next)
		d.SetDeferred(false)
		if err != nil {
			return nil, false, err
		}
		r.pending = pre
		if r.arr.clock != nil {
			r.pendingReady = r.arr.clock.Seconds() + sec
		}
	}
	return icla, true, nil
}
