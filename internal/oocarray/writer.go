package oocarray

// SlabWriter overlaps slab writes with computation (write-behind): a
// Write hands the section to the "disk" and returns immediately in
// simulated time; the cost is only realized when the next Write (or
// Flush) has to wait for the previous one to complete. One write may be
// outstanding at a time, mirroring SlabReader's single-outstanding
// prefetch. The file contents are updated immediately — only the
// simulated completion is deferred — so reads of already-written slabs
// stay correct.
type SlabWriter struct {
	arr          *Array
	pendingReady float64
	active       bool
}

// NewSlabWriter returns a write-behind pipeline for the array.
func (a *Array) NewSlabWriter() *SlabWriter {
	return &SlabWriter{arr: a}
}

// Write stores the section, waiting (in simulated time) only for the
// previously outstanding write.
func (w *SlabWriter) Write(s *ICLA) error {
	if w.active && w.arr.clock != nil {
		start := w.arr.clock.Seconds()
		w.arr.clock.SyncTo(w.pendingReady)
		w.arr.emitIOWait(start)
	}
	d := w.arr.laf.Disk()
	d.SetDeferred(true)
	sec, err := w.arr.writeSectionRaw(s)
	d.SetDeferred(false)
	if err != nil {
		return err
	}
	if w.arr.clock != nil {
		w.pendingReady = w.arr.clock.Seconds() + sec
	}
	w.active = true
	return nil
}

// Flush waits for the outstanding write, if any. Call it before reading
// the array's final simulated time.
func (w *SlabWriter) Flush() {
	if w.active {
		if w.arr.clock != nil {
			start := w.arr.clock.Seconds()
			w.arr.clock.SyncTo(w.pendingReady)
			w.arr.emitIOWait(start)
		}
		w.active = false
	}
}
