package oocarray

import (
	"testing"
	"testing/quick"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// valueAt is the global fill pattern used throughout the tests.
func valueAt(gi, gj int) float64 { return float64(gi*10000 + gj) }

// newTestArray creates the local array of processor proc for an n x n
// global array distributed column-block over p processors.
func newTestArray(t *testing.T, n, p, proc int, clock *sim.Clock, opts Options) (*Array, *trace.IOStats) {
	t.Helper()
	stats := &trace.IOStats{}
	disk := iosim.NewDisk(iosim.NewMemFS(), sim.Delta(p), stats)
	dm, err := dist.NewArray("a", dist.NewCollapsed(n), dist.NewBlock(n, p))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := New(disk, dm, proc, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.FillGlobal(valueAt); err != nil {
		t.Fatal(err)
	}
	return arr, stats
}

func TestFillGlobalAndReadLocal(t *testing.T) {
	const n, p, proc = 16, 4, 2
	arr, stats := newTestArray(t, n, p, proc, nil, Options{})
	if arr.LocalRows() != n || arr.LocalCols() != n/p {
		t.Fatalf("local shape %dx%d", arr.LocalRows(), arr.LocalCols())
	}
	m, err := arr.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	for lj := 0; lj < arr.LocalCols(); lj++ {
		for li := 0; li < arr.LocalRows(); li++ {
			gi, gj := arr.GlobalIndex(li, lj)
			if gi != li || gj != proc*(n/p)+lj {
				t.Fatalf("GlobalIndex(%d,%d) = (%d,%d)", li, lj, gi, gj)
			}
			if m.At(li, lj) != valueAt(gi, gj) {
				t.Fatalf("element (%d,%d): got %g want %g", li, lj, m.At(li, lj), valueAt(gi, gj))
			}
		}
	}
	// Fill and verification are unaccounted.
	if stats.SlabReads != 0 || stats.SlabWrites != 0 {
		t.Errorf("initialization leaked into stats: %+v", stats)
	}
}

func TestColumnSlabGeometry(t *testing.T) {
	arr, _ := newTestArray(t, 16, 4, 0, nil, Options{}) // local 16x4
	s := arr.Slabbing(ByColumn, 32)                     // 32 elems / 16 rows = 2 cols
	if s.Width != 2 || s.Count != 2 {
		t.Fatalf("Slabbing = %+v", s)
	}
	// Budget below one column still yields width 1.
	s = arr.Slabbing(ByColumn, 3)
	if s.Width != 1 || s.Count != 4 {
		t.Fatalf("tiny budget Slabbing = %+v", s)
	}
	// Huge budget caps at the full extent.
	s = arr.Slabbing(ByColumn, 1<<20)
	if s.Width != 4 || s.Count != 1 {
		t.Fatalf("huge budget Slabbing = %+v", s)
	}
}

func TestRowSlabGeometry(t *testing.T) {
	arr, _ := newTestArray(t, 16, 4, 0, nil, Options{}) // local 16x4
	s := arr.Slabbing(ByRow, 16)                        // 16 elems / 4 cols = 4 rows
	if s.Width != 4 || s.Count != 4 {
		t.Fatalf("Slabbing = %+v", s)
	}
}

func TestSlabRatio(t *testing.T) {
	arr, _ := newTestArray(t, 16, 4, 0, nil, Options{}) // local 16x4 = 64 elems
	s := arr.SlabRatio(ByColumn, 0.5)
	if s.Width != 2 || s.Count != 2 {
		t.Fatalf("SlabRatio(1/2) = %+v", s)
	}
	s = arr.SlabRatio(ByRow, 0.25)
	if s.Width != 4 || s.Count != 4 {
		t.Fatalf("SlabRatio(1/4) by row = %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("SlabRatio(0) should panic")
		}
	}()
	arr.SlabRatio(ByColumn, 0)
}

func TestReadColumnSlabContents(t *testing.T) {
	const n, p, proc = 16, 4, 1
	arr, stats := newTestArray(t, n, p, proc, nil, Options{})
	s := arr.Slabbing(ByColumn, 2*n) // 2 columns per slab
	for idx := 0; idx < s.Count; idx++ {
		icla, err := arr.ReadSlab(s, idx)
		if err != nil {
			t.Fatal(err)
		}
		if icla.Rows != n || icla.ColOff != idx*2 {
			t.Fatalf("slab %d geometry %+v", idx, icla)
		}
		for j := 0; j < icla.Cols; j++ {
			for i := 0; i < icla.Rows; i++ {
				gi, gj := arr.GlobalIndex(icla.RowOff+i, icla.ColOff+j)
				if icla.At(i, j) != valueAt(gi, gj) {
					t.Fatalf("slab %d (%d,%d): got %g want %g", idx, i, j, icla.At(i, j), valueAt(gi, gj))
				}
			}
		}
	}
	// Column slabs of a column-major array are contiguous: one request
	// per slab fetch.
	if stats.SlabReads != int64(s.Count) || stats.ReadRequests != int64(s.Count) {
		t.Errorf("column slab accounting: %+v", stats)
	}
}

func TestReadRowSlabContents(t *testing.T) {
	const n, p, proc = 16, 4, 3
	arr, stats := newTestArray(t, n, p, proc, nil, Options{})
	cols := n / p
	s := arr.Slabbing(ByRow, 4*cols) // 4 rows per slab
	for idx := 0; idx < s.Count; idx++ {
		icla, err := arr.ReadSlab(s, idx)
		if err != nil {
			t.Fatal(err)
		}
		if icla.Cols != cols || icla.RowOff != idx*4 {
			t.Fatalf("slab %d geometry %+v", idx, icla)
		}
		for j := 0; j < icla.Cols; j++ {
			for i := 0; i < icla.Rows; i++ {
				gi, gj := arr.GlobalIndex(icla.RowOff+i, icla.ColOff+j)
				if icla.At(i, j) != valueAt(gi, gj) {
					t.Fatalf("slab %d (%d,%d): got %g want %g", idx, i, j, icla.At(i, j), valueAt(gi, gj))
				}
			}
		}
	}
	// A row slab is discontiguous: one request per local column.
	if stats.ReadRequests != int64(s.Count*cols) {
		t.Errorf("row slab accounting: got %d requests, want %d", stats.ReadRequests, s.Count*cols)
	}
}

func TestRowSlabSieving(t *testing.T) {
	const n, p = 16, 4
	plain, plainStats := newTestArray(t, n, p, 0, nil, Options{})
	sieved, sievedStats := newTestArray(t, n, p, 0, nil, Options{Sieve: true})
	s := plain.Slabbing(ByRow, 4*(n/p))
	a, err := plain.ReadSlab(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sieved.ReadSlab(sieved.Slabbing(ByRow, 4*(n/p)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("sieving changed slab data at %d", i)
		}
	}
	if sievedStats.ReadRequests != 1 {
		t.Errorf("sieved read used %d requests", sievedStats.ReadRequests)
	}
	if plainStats.ReadRequests != int64(n/p) {
		t.Errorf("plain read used %d requests", plainStats.ReadRequests)
	}
	if sievedStats.BytesRead <= plainStats.BytesRead {
		t.Errorf("sieving should move more bytes: %d vs %d", sievedStats.BytesRead, plainStats.BytesRead)
	}
}

func TestWriteSlabRoundTrip(t *testing.T) {
	arr, _ := newTestArray(t, 16, 4, 0, nil, Options{})
	s := arr.Slabbing(ByRow, 4*arr.LocalCols())
	icla, err := arr.NewSlab(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < icla.Cols; j++ {
		for i := 0; i < icla.Rows; i++ {
			icla.Set(i, j, float64(1000+i*10+j))
		}
	}
	if err := arr.WriteSection(icla); err != nil {
		t.Fatal(err)
	}
	back, err := arr.ReadSlab(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range icla.Data {
		if back.Data[i] != icla.Data[i] {
			t.Fatalf("write/read mismatch at %d: %g vs %g", i, back.Data[i], icla.Data[i])
		}
	}
	// Other slabs untouched.
	other, err := arr.ReadSlab(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	gi, gj := arr.GlobalIndex(0, 0)
	if other.At(0, 0) != valueAt(gi, gj) {
		t.Error("writing slab 2 corrupted slab 0")
	}
}

func TestReadSectionBounds(t *testing.T) {
	arr, _ := newTestArray(t, 8, 2, 0, nil, Options{})
	if _, err := arr.ReadSection(0, 0, 9, 1); err == nil {
		t.Error("section taller than local rows should fail")
	}
	if _, err := arr.ReadSection(-1, 0, 1, 1); err == nil {
		t.Error("negative row offset should fail")
	}
	if _, err := arr.ReadSection(0, 3, 8, 2); err == nil {
		t.Error("section wider than local cols should fail")
	}
	empty, err := arr.ReadSection(0, 0, 0, 0)
	if err != nil || len(empty.Data) != 0 {
		t.Errorf("empty section: %v %v", empty, err)
	}
}

func TestClockCharging(t *testing.T) {
	var clock sim.Clock
	arr, _ := newTestArray(t, 16, 4, 0, &clock, Options{})
	s := arr.Slabbing(ByColumn, 16)
	if _, err := arr.ReadSlab(s, 0); err != nil {
		t.Fatal(err)
	}
	if clock.Seconds() <= 0 {
		t.Error("ReadSlab did not charge the clock")
	}
	before := clock.Seconds()
	icla, _ := arr.NewSlab(s, 1)
	if err := arr.WriteSection(icla); err != nil {
		t.Fatal(err)
	}
	if clock.Seconds() <= before {
		t.Error("WriteSection did not charge the clock")
	}
}

func TestSlabPartitionProperty(t *testing.T) {
	// Property: for any local shape and memory budget, the slabs tile
	// the strip-mined extent exactly once.
	f := func(rows8, cols8, mem16 uint8, byRow bool) bool {
		rows := int(rows8%32) + 1
		cols := int(cols8%32) + 1
		mem := int(mem16) + 1
		a := &Array{rows: rows, cols: cols}
		dim := ByColumn
		extent := cols
		if byRow {
			dim = ByRow
			extent = rows
		}
		s := a.Slabbing(dim, mem)
		covered := 0
		for i := 0; i < s.Count; i++ {
			start, size := s.slabBounds(i, extent)
			if start != covered || size < 1 {
				return false
			}
			covered += size
		}
		return covered == extent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNonSquareAndRaggedArrays(t *testing.T) {
	// 10 columns over 4 procs: blocks of 3,3,3,1.
	stats := &trace.IOStats{}
	disk := iosim.NewDisk(iosim.NewMemFS(), sim.Delta(4), stats)
	dm, err := dist.NewArray("r", dist.NewCollapsed(6), dist.NewBlock(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 4; proc++ {
		arr, err := New(disk, dm, proc, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantCols := 3
		if proc == 3 {
			wantCols = 1
		}
		if arr.LocalCols() != wantCols || arr.LocalRows() != 6 {
			t.Fatalf("proc %d local shape %dx%d", proc, arr.LocalRows(), arr.LocalCols())
		}
		if err := arr.FillGlobal(valueAt); err != nil {
			t.Fatal(err)
		}
		m, err := arr.ReadLocal()
		if err != nil {
			t.Fatal(err)
		}
		gi, gj := arr.GlobalIndex(5, wantCols-1)
		if m.At(5, wantCols-1) != valueAt(gi, gj) {
			t.Fatalf("proc %d corner wrong", proc)
		}
	}
}

func TestNewRejectsNon2D(t *testing.T) {
	disk := iosim.NewDisk(iosim.NewMemFS(), sim.Delta(2), nil)
	dm, err := dist.NewArray("v", dist.NewBlock(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(disk, dm, 0, nil, Options{}); err == nil {
		t.Error("1-D array should be rejected")
	}
}

func TestDimString(t *testing.T) {
	if ByColumn.String() != "column-slab" || ByRow.String() != "row-slab" {
		t.Error("Dim.String spelling wrong")
	}
	if Dim(9).String() == "" {
		t.Error("unknown Dim should render")
	}
}

func TestReadSectionMatchesReadLocalProperty(t *testing.T) {
	// Property: any in-bounds section read returns exactly the
	// corresponding window of the local array, with and without sieving.
	arr, _ := newTestArray(t, 24, 3, 1, nil, Options{})
	sieved, _ := newTestArray(t, 24, 3, 1, nil, Options{Sieve: true})
	local, err := arr.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	f := func(r0u, c0u, hu, wu uint8) bool {
		rows, cols := arr.LocalRows(), arr.LocalCols()
		r0 := int(r0u) % rows
		c0 := int(c0u) % cols
		h := int(hu)%(rows-r0) + 1
		w := int(wu)%(cols-c0) + 1
		for _, a := range []*Array{arr, sieved} {
			s, err := a.ReadSection(r0, c0, h, w)
			if err != nil {
				return false
			}
			for j := 0; j < w; j++ {
				for i := 0; i < h; i++ {
					if s.At(i, j) != local.At(r0+i, c0+j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCyclicDistributedArray(t *testing.T) {
	// The runtime also handles cyclic column distributions: local column
	// lj of proc q corresponds to global column lj*P + q.
	stats := &trace.IOStats{}
	disk := iosim.NewDisk(iosim.NewMemFS(), sim.Delta(4), stats)
	dm, err := dist.NewArray("cyc", dist.NewCollapsed(8), dist.NewCyclic(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := New(disk, dm, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr.LocalCols() != 3 {
		t.Fatalf("local cols = %d", arr.LocalCols())
	}
	if err := arr.FillGlobal(valueAt); err != nil {
		t.Fatal(err)
	}
	m, err := arr.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	for lj := 0; lj < 3; lj++ {
		gj := lj*4 + 2
		for li := 0; li < 8; li++ {
			if m.At(li, lj) != valueAt(li, gj) {
				t.Fatalf("cyclic local (%d,%d) wrong", li, lj)
			}
		}
	}
}
