package gaxpy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/iosim"

	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

func TestClosedFormMatchesMatMul(t *testing.T) {
	// The closed form must equal the brute-force product.
	const n = 24
	a := matrix.New(n, n).Fill(FillA)
	b := matrix.New(n, n).Fill(FillB)
	c := matrix.Mul(a, b)
	want := CExpected(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if c.At(i, j) != want(i, j) {
				t.Fatalf("closed form wrong at (%d,%d): %g vs %g", i, j, c.At(i, j), want(i, j))
			}
		}
	}
}

func TestAllVariantsCorrect(t *testing.T) {
	for _, tc := range []struct {
		n, p  int
		ratio int // slabs per OCLA
	}{
		{16, 2, 1},
		{16, 4, 2},
		{32, 4, 4},
		{32, 8, 2},
		{48, 4, 3},
		{64, 4, 8},
	} {
		ocla := tc.n * tc.n / tc.p
		slab := ocla / tc.ratio
		cfg := Config{N: tc.n, SlabA: slab, SlabB: slab}
		for name, runner := range Variants {
			t.Run(fmt.Sprintf("%s/n=%d/p=%d/r=%d", name, tc.n, tc.p, tc.ratio), func(t *testing.T) {
				r, err := runner(sim.Delta(tc.p), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.VerifyC(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestVariantsWithUnevenSlabs(t *testing.T) {
	// Different slab sizes for A, B and C (the Table 2 setting).
	cfg := Config{N: 32, SlabA: 32 * 8, SlabB: 32 * 2, SlabC: 32 * 4}
	for name, runner := range Variants {
		r, err := runner(sim.Delta(4), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := r.VerifyC(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVariantsWithSievingAndPrefetch(t *testing.T) {
	for _, opts := range []oocarray.Options{
		{Sieve: true},
		{Prefetch: true},
		{Sieve: true, Prefetch: true},
	} {
		cfg := Config{N: 32, SlabA: 32 * 2, SlabB: 32 * 2, Opts: opts}
		r, err := RunRowSlab(sim.Delta(4), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if err := r.VerifyC(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
	}
}

func TestGatherCMatchesReference(t *testing.T) {
	const n, p = 24, 4
	cfg := Config{N: n, SlabA: n * 2, SlabB: n * 2}
	r, err := RunRowSlab(sim.Delta(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.GatherC()
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.New(n, n).Fill(FillA)
	b := matrix.New(n, n).Fill(FillB)
	if !matrix.Equal(got, matrix.Mul(a, b)) {
		t.Fatal("gathered C differs from reference product")
	}
}

// TestMeasuredCountsMatchEquations validates Equations 3-6 against the
// counts measured by the tracing I/O layer — the core of experiment E4.
func TestMeasuredCountsMatchEquations(t *testing.T) {
	for _, tc := range []struct{ n, p, ratio int }{
		{64, 4, 8},
		{64, 4, 4},
		{128, 8, 2},
		{128, 16, 1},
	} {
		ocla := int64(tc.n) * int64(tc.n) / int64(tc.p)
		slab := int(ocla) / tc.ratio
		cfg := Config{N: tc.n, SlabA: slab, SlabB: slab, Phantom: true}
		n64, p64, m64 := int64(tc.n), int64(tc.p), int64(slab)

		col, err := RunColumnSlab(sim.Delta(tc.p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		io := col.MaxArrayIO()
		if want := n64 * n64 * n64 / (m64 * p64); io.A.SlabReads != want {
			t.Errorf("n=%d p=%d 1/%d: col-slab T_fetch(A) measured %d, eq3 %d",
				tc.n, tc.p, tc.ratio, io.A.SlabReads, want)
		}
		elemSize := int64(sim.Delta(tc.p).ElemSize)
		if want := n64 * n64 * n64 / p64 * elemSize; io.A.BytesRead != want {
			t.Errorf("n=%d p=%d 1/%d: col-slab T_data(A) measured %d bytes, eq4 %d",
				tc.n, tc.p, tc.ratio, io.A.BytesRead, want)
		}
		// B read once, C written once.
		if io.B.BytesRead != ocla*elemSize {
			t.Errorf("col-slab B bytes %d, want %d", io.B.BytesRead, ocla*elemSize)
		}
		if io.C.BytesWritten != ocla*elemSize {
			t.Errorf("col-slab C bytes %d, want %d", io.C.BytesWritten, ocla*elemSize)
		}

		row, err := RunRowSlab(sim.Delta(tc.p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		io = row.MaxArrayIO()
		if want := n64 * n64 / (m64 * p64); io.A.SlabReads != want {
			t.Errorf("n=%d p=%d 1/%d: row-slab T_fetch(A) measured %d, eq5 %d",
				tc.n, tc.p, tc.ratio, io.A.SlabReads, want)
		}
		if want := n64 * n64 / p64 * elemSize; io.A.BytesRead != want {
			t.Errorf("n=%d p=%d 1/%d: row-slab T_data(A) measured %d bytes, eq6 %d",
				tc.n, tc.p, tc.ratio, io.A.BytesRead, want)
		}
		// B is re-read once per row slab of A.
		if want := ocla * elemSize * (n64 * n64 / (m64 * p64)); io.B.BytesRead != want {
			t.Errorf("row-slab B bytes %d, want %d", io.B.BytesRead, want)
		}
	}
}

func TestRowSlabBeatsColumnSlabInSimulatedTime(t *testing.T) {
	// Table 1's headline on a small instance, in phantom mode.
	const n, p = 256, 4
	ocla := n * n / p
	cfg := Config{N: n, SlabA: ocla / 4, SlabB: ocla / 4, Phantom: true}
	col, err := RunColumnSlab(sim.Delta(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunRowSlab(sim.Delta(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := RunInCore(sim.Delta(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc, tr, ti := col.Stats.ElapsedSeconds(), row.Stats.ElapsedSeconds(), inc.Stats.ElapsedSeconds()
	if !(ti < tr && tr < tc) {
		t.Errorf("expected in-core < row-slab < column-slab, got %.2f / %.2f / %.2f", ti, tr, tc)
	}
}

func TestPhantomMatchesRealAccounting(t *testing.T) {
	// Phantom mode must produce identical statistics to a real run.
	const n, p = 32, 4
	cfg := Config{N: n, SlabA: n * 2, SlabB: n * 2}
	for name, runner := range Variants {
		real, err := runner(sim.Delta(p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		pcfg := cfg
		pcfg.Phantom = true
		ph, err := runner(sim.Delta(p), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		ri, pi := real.Stats.TotalIO(), ph.Stats.TotalIO()
		if ri != pi {
			t.Errorf("%s: phantom IO stats differ:\nreal    %+v\nphantom %+v", name, ri, pi)
		}
		rt, pt := real.Stats.ElapsedSeconds(), ph.Stats.ElapsedSeconds()
		if d := rt - pt; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: phantom elapsed %.6f differs from real %.6f", name, pt, rt)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunRowSlab(sim.Delta(4), Config{N: 30, SlabA: 64, SlabB: 64}); err == nil {
		t.Error("N not divisible by P should fail")
	}
	if _, err := RunRowSlab(sim.Delta(4), Config{N: 32, SlabA: 0, SlabB: 64}); err == nil {
		t.Error("zero slab size should fail")
	}
	if _, err := RunRowSlab(sim.Delta(4), Config{N: -4, SlabA: 4, SlabB: 4}); err == nil {
		t.Error("negative N should fail")
	}
}

func TestVerifyRejectsPhantom(t *testing.T) {
	r, err := RunRowSlab(sim.Delta(2), Config{N: 16, SlabA: 64, SlabB: 64, Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyC(); err == nil {
		t.Error("VerifyC on phantom run should fail")
	}
	if _, err := r.GatherC(); err == nil {
		t.Error("GatherC on phantom run should fail")
	}
}

func TestMoreMemoryForAHelpsRowSlab(t *testing.T) {
	// The Table 2 effect: at equal total memory, giving A the bigger
	// slab beats giving B the bigger slab.
	const n, p = 256, 4
	colElems := n / p * n / 8 // an eighth of the OCLA
	runWith := func(slabA, slabB int) float64 {
		r, err := RunRowSlab(sim.Delta(p), Config{N: n, SlabA: slabA, SlabB: slabB, SlabC: slabA, Phantom: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.ElapsedSeconds()
	}
	bigA := runWith(3*colElems, colElems)
	bigB := runWith(colElems, 3*colElems)
	if bigA >= bigB {
		t.Errorf("favoring A should win: A-heavy %.2fs vs B-heavy %.2fs", bigA, bigB)
	}
}

func TestDiskFaultFailsCleanly(t *testing.T) {
	// Inject a disk failure partway through the run on every processor's
	// file system: the machine must return an error promptly instead of
	// deadlocking in a collective.
	for _, budget := range []int{0, 5, 50, 500} {
		fs := iosim.NewFaultFS(iosim.NewMemFS(), budget, errors.New("disk died"))
		cfg := Config{N: 32, SlabA: 64, SlabB: 64, FS: fs}
		done := make(chan error, 1)
		go func() {
			_, err := RunRowSlab(sim.Delta(4), cfg)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("budget %d: expected failure", budget)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("budget %d: machine deadlocked on disk fault", budget)
		}
	}
}

func TestWriteBehindOverlapsAndStaysCorrect(t *testing.T) {
	cfg := Config{N: 64, SlabA: 64 * 2, SlabB: 64 * 2}
	plain, err := RunRowSlab(sim.Delta(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Opts = oocarray.Options{WriteBehind: true}
	wb, err := RunRowSlab(sim.Delta(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.VerifyC(); err != nil {
		t.Fatal(err)
	}
	if wb.Stats.ElapsedSeconds() >= plain.Stats.ElapsedSeconds() {
		t.Errorf("write-behind did not reduce simulated time: %.3f vs %.3f",
			wb.Stats.ElapsedSeconds(), plain.Stats.ElapsedSeconds())
	}
	// Same I/O counts either way.
	pi, wi := plain.Stats.TotalIO(), wb.Stats.TotalIO()
	if pi.SlabWrites != wi.SlabWrites || pi.BytesWritten != wi.BytesWritten {
		t.Errorf("write-behind changed write counts: %+v vs %+v", wi, pi)
	}
}
