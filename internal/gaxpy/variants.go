package gaxpy

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// RunInCore executes the distributed in-core GAXPY program of Figure 5:
// each array is read from disk once up front, the whole computation runs
// from memory, and C is written back once.
func RunInCore(mach sim.Config, cfg Config) (*Run, error) {
	return run(mach, cfg, "in-core", inCoreNode)
}

// RunColumnSlab executes the column-slab out-of-core translation of
// Figure 9 — the straightforward extension of in-core compilation, which
// re-streams the entire local array of A for every global column of C.
func RunColumnSlab(mach sim.Config, cfg Config) (*Run, error) {
	return run(mach, cfg, "column-slab", columnSlabNode)
}

// RunRowSlab executes the reorganized row-slab translation of Figure 12:
// A is streamed exactly once in row slabs and the global sums produce
// subcolumns of C.
func RunRowSlab(mach sim.Config, cfg Config) (*Run, error) {
	return run(mach, cfg, "row-slab", rowSlabNode)
}

// Variants maps variant names to runners, for the benchmark drivers.
var Variants = map[string]func(sim.Config, Config) (*Run, error){
	"in-core":     RunInCore,
	"column-slab": RunColumnSlab,
	"row-slab":    RunRowSlab,
}

// axpyInto computes temp += a*bval over whole slices, or just charges the
// flops in phantom mode.
func axpyInto(p *mp.Proc, temp, a []float64, bval float64, phantom bool) {
	if !phantom {
		for i, v := range a {
			temp[i] += bval * v
		}
	}
	p.Compute(2 * int64(len(a)))
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// cOwnerStore delivers a reduced (sub)column of C into the owner's staging
// slab. Every processor participates in the reduction for global column
// gj; the owner copies the result into column gj's local position.
func cOwnerStore(p *mp.Proc, ar *arrays, gj, tag int, temp []float64, staging *oocarray.ICLA) error {
	owner := ar.c.Dist().Dims[1].Owner(gj)
	sum := p.Reduce(owner, tag, temp)
	if p.Rank() != owner {
		return nil
	}
	_, local := ar.c.Dist().Dims[1].ToLocal(gj)
	lj := local - staging.ColOff
	if lj < 0 || lj >= staging.Cols {
		return fmt.Errorf("gaxpy: column %d outside staging slab [%d,+%d)", gj, staging.ColOff, staging.Cols)
	}
	copy(staging.Col(lj), sum)
	mp.ReleaseBuf(sum)
	return nil
}

// ---------------------------------------------------------------------------
// In-core (Figure 5)

func inCoreNode(p *mp.Proc, ar *arrays, cfg Config) error {
	n := cfg.N
	// Initial read: the whole local arrays in one transfer each.
	aAll, err := ar.a.ReadSection(0, 0, ar.a.LocalRows(), ar.a.LocalCols())
	if err != nil {
		return err
	}
	bAll, err := ar.b.ReadSection(0, 0, ar.b.LocalRows(), ar.b.LocalCols())
	if err != nil {
		return err
	}
	cAll := &oocarray.ICLA{Rows: ar.c.LocalRows(), Cols: ar.c.LocalCols(),
		Data: make([]float64, ar.c.LocalElems())}

	temp := make([]float64, n)
	for gj := 0; gj < n; gj++ {
		if !cfg.Phantom {
			zero(temp)
		}
		// Partial sum over this processor's block of k (Equation 2):
		// local column i of A pairs with local row i of B.
		for i := 0; i < aAll.Cols; i++ {
			axpyInto(p, temp, aAll.Col(i), bAll.At(i, gj), cfg.Phantom)
		}
		if err := cOwnerStore(p, ar, gj, tagColumnSum, temp, cAll); err != nil {
			return err
		}
	}
	// Write the result once.
	return ar.c.WriteSection(cAll)
}

// ---------------------------------------------------------------------------
// Column-slab out-of-core (Figure 9)

func columnSlabNode(p *mp.Proc, ar *arrays, cfg Config) error {
	n := cfg.N
	slabsB := ar.b.Slabbing(oocarray.ByColumn, cfg.SlabB)
	slabsA := ar.a.Slabbing(oocarray.ByColumn, cfg.SlabA)
	slabsC := ar.c.Slabbing(oocarray.ByColumn, cfg.SlabC)

	myRank := p.Rank()
	var staging *oocarray.ICLA
	stagingIdx := -1
	// ensureStaging positions the C output slab that holds local column
	// lj, flushing the previous one.
	ensureStaging := func(lj int) error {
		idx := lj / slabsC.Width
		if idx == stagingIdx {
			return nil
		}
		if staging != nil {
			if err := ar.c.WriteSection(staging); err != nil {
				return err
			}
			ar.c.Recycle(staging)
		}
		var err error
		staging, err = ar.c.NewSlab(slabsC, idx)
		if err != nil {
			return err
		}
		stagingIdx = idx
		return nil
	}

	temp := make([]float64, n)
	gj := 0
	for l := 0; l < slabsB.Count; l++ {
		bSlab, err := ar.b.ReadSlab(slabsB, l)
		if err != nil {
			return err
		}
		for m := 0; m < bSlab.Cols; m++ {
			if !cfg.Phantom {
				zero(temp)
			}
			// Re-stream the whole local array of A for this column.
			columnCount := 0
			for na := 0; na < slabsA.Count; na++ {
				aSlab, err := ar.a.ReadSlab(slabsA, na)
				if err != nil {
					return err
				}
				for i := 0; i < aSlab.Cols; i++ {
					axpyInto(p, temp, aSlab.Col(i), bSlab.At(columnCount, m), cfg.Phantom)
					columnCount++
				}
				ar.a.Recycle(aSlab)
			}
			// The owner of column gj must have its staging slab in
			// place before the reduction delivers the column.
			if ar.c.Dist().Dims[1].Owner(gj) == myRank {
				_, local := ar.c.Dist().Dims[1].ToLocal(gj)
				if err := ensureStaging(local); err != nil {
					return err
				}
			}
			if err := cOwnerStore(p, ar, gj, tagColumnSum, temp, staging); err != nil {
				return err
			}
			gj++
		}
		ar.b.Recycle(bSlab)
	}
	if staging != nil {
		if err := ar.c.WriteSection(staging); err != nil {
			return err
		}
		ar.c.Recycle(staging)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Row-slab out-of-core (Figure 12)

func rowSlabNode(p *mp.Proc, ar *arrays, cfg Config) error {
	slabsA := ar.a.Slabbing(oocarray.ByRow, cfg.SlabA)
	slabsB := ar.b.Slabbing(oocarray.ByColumn, cfg.SlabB)
	readerA := ar.a.NewSlabReader(slabsA)
	var writerC *oocarray.SlabWriter
	if cfg.Opts.WriteBehind {
		writerC = ar.c.NewSlabWriter()
		defer writerC.Flush()
	}

	for l := 0; l < slabsA.Count; l++ {
		aSlab, ok, err := readerA.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("gaxpy: A slab reader exhausted at %d of %d", l, slabsA.Count)
		}
		// The C subcolumns produced from this row slab cover the same
		// rows for all of this processor's columns.
		staging := &oocarray.ICLA{
			RowOff: aSlab.RowOff, ColOff: 0,
			Rows: aSlab.Rows, Cols: ar.c.LocalCols(),
			Data: bufpool.GetF64(aSlab.Rows * ar.c.LocalCols()),
		}
		clear(staging.Data)
		temp := bufpool.GetF64(aSlab.Rows)
		clear(temp)
		gj := 0
		// B is re-streamed once per row slab of A.
		for nb := 0; nb < slabsB.Count; nb++ {
			bSlab, err := ar.b.ReadSlab(slabsB, nb)
			if err != nil {
				return err
			}
			for m := 0; m < bSlab.Cols; m++ {
				if !cfg.Phantom {
					zero(temp)
				}
				for i := 0; i < aSlab.Cols; i++ {
					axpyInto(p, temp, aSlab.Col(i), bSlab.At(i, m), cfg.Phantom)
				}
				if err := cOwnerStore(p, ar, gj, tagSubcolSum, temp, staging); err != nil {
					return err
				}
				gj++
			}
			ar.b.Recycle(bSlab)
		}
		bufpool.PutF64(temp)
		// Write-behind moves the data synchronously (only the simulated
		// completion is deferred), so the staging buffer can be recycled
		// as soon as Write returns.
		if writerC != nil {
			if err := writerC.Write(staging); err != nil {
				return err
			}
		} else if err := ar.c.WriteSection(staging); err != nil {
			return err
		}
		ar.c.Recycle(staging)
		ar.a.Recycle(aSlab)
	}
	return nil
}
