// Package gaxpy implements the paper's running example — out-of-core
// GAXPY matrix multiplication C = A*B — in the three forms the paper
// compares:
//
//   - InCore: the distributed in-core program of Figures 4/5, which only
//     reads each array from disk once at the start.
//   - ColumnSlab: the straightforward out-of-core extension of the
//     in-core translation (Figure 9), which re-streams the whole local
//     array of A for every global column of C.
//   - RowSlab: the access-reorganized translation (Figure 12), which
//     streams A exactly once in row slabs.
//
// A is distributed column-block, B row-block and C column-block over P
// processors, exactly as the HPF directives of Figure 3 prescribe.
//
// The input matrices are integer-valued rank-one-like patterns whose
// product has a closed form, so results can be verified exactly (integer
// arithmetic in float64 is exact at these magnitudes regardless of the
// reduction order).
package gaxpy

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// FillA is the deterministic value of A(i, j) (0-based global indices).
func FillA(i, j int) float64 { return float64((i%7 + 1) * (j%5 + 1)) }

// FillB is the deterministic value of B(i, j).
func FillB(i, j int) float64 { return float64((i%5 + 1) * (j%3 + 1)) }

// CExpected returns the closed form of (A*B)(i, j) for N x N inputs:
// sum_k A(i,k)*B(k,j) = (i%7+1)*(j%3+1) * sum_k (k%5+1)^2.
func CExpected(n int) func(i, j int) float64 {
	var s float64
	for k := 0; k < n; k++ {
		v := float64(k%5 + 1)
		s += v * v
	}
	return func(i, j int) float64 {
		return float64(i%7+1) * float64(j%3+1) * s
	}
}

// Config describes one GAXPY run.
type Config struct {
	// N is the global matrix extent (N x N); it must be divisible by the
	// machine's processor count.
	N int
	// SlabA, SlabB and SlabC are the ICLA sizes in elements for the
	// three arrays. SlabC defaults to SlabA when zero.
	SlabA, SlabB, SlabC int
	// Opts configures the runtime (data sieving, prefetching).
	Opts oocarray.Options
	// Phantom runs in accounting-only mode: all I/O and communication
	// happen with the exact counts and simulated costs of a real run,
	// but file data movement and floating point arithmetic are skipped.
	// Used for paper-scale parameter sweeps; cannot be verified.
	Phantom bool
	// FS is the backing store for the local array files; nil means a
	// fresh in-memory file system.
	FS iosim.FS
	// Trace, when non-nil, records a typed span timeline of the run
	// against the simulated clocks (see trace.Tracer).
	Trace *trace.Tracer
}

// ArrayIO breaks one processor's I/O statistics down by array, so the
// measured counts can be checked against the per-array closed forms of
// Equations 3-6.
type ArrayIO struct {
	A, B, C trace.IOStats
}

// Run is the outcome of one GAXPY execution.
type Run struct {
	Stats   *trace.Stats
	Variant string
	// PerArray holds per-processor, per-array I/O statistics (indexed by
	// rank).
	PerArray []ArrayIO

	n       int
	p       int
	phantom bool
	fs      iosim.FS
	mach    sim.Config
}

// MaxArrayIO returns, per array, the element-wise maximum I/O statistics
// across processors — the paper's "per processor" metrics on a balanced
// program.
func (r *Run) MaxArrayIO() ArrayIO {
	merge := func(get func(ArrayIO) trace.IOStats) trace.IOStats {
		s := trace.NewStats(len(r.PerArray))
		for i, pa := range r.PerArray {
			s.Procs[i].IO = get(pa)
		}
		return s.MaxIO()
	}
	return ArrayIO{
		A: merge(func(pa ArrayIO) trace.IOStats { return pa.A }),
		B: merge(func(pa ArrayIO) trace.IOStats { return pa.B }),
		C: merge(func(pa ArrayIO) trace.IOStats { return pa.C }),
	}
}

// arrays bundles the per-processor out-of-core arrays.
type arrays struct {
	a, b, c *oocarray.Array
}

// tags for the collectives of the node programs.
const (
	tagColumnSum = 1
	tagSubcolSum = 2
)

// setup validates the configuration and builds the distributed arrays of
// Figure 3 on one processor: a(n,n) column-block, b(n,n) row-block,
// c(n,n) column-block. Each array gets its own disk view so I/O
// statistics can be attributed per array.
func setup(p *mp.Proc, c Config, fs iosim.FS, perArray *ArrayIO) (*arrays, error) {
	if c.N <= 0 || c.N%p.Size() != 0 {
		return nil, fmt.Errorf("gaxpy: N=%d must be a positive multiple of P=%d", c.N, p.Size())
	}
	if c.SlabA <= 0 || c.SlabB <= 0 {
		return nil, fmt.Errorf("gaxpy: slab sizes must be positive (A=%d, B=%d)", c.SlabA, c.SlabB)
	}
	newDisk := func(stats *trace.IOStats, label string) *iosim.Disk {
		d := iosim.NewDisk(fs, p.Config(), stats)
		d.SetPhantom(c.Phantom)
		d.SetTracer(p.Tracer(), p.Clock(), label)
		return d
	}

	mapA, err := dist.NewArray("a", dist.NewCollapsed(c.N), dist.NewBlock(c.N, p.Size()))
	if err != nil {
		return nil, err
	}
	mapB, err := dist.NewArray("b", dist.NewBlock(c.N, p.Size()), dist.NewCollapsed(c.N))
	if err != nil {
		return nil, err
	}
	mapC, err := dist.NewArray("c", dist.NewCollapsed(c.N), dist.NewBlock(c.N, p.Size()))
	if err != nil {
		return nil, err
	}
	a, err := oocarray.New(newDisk(&perArray.A, "a"), mapA, p.Rank(), p.Clock(), c.Opts)
	if err != nil {
		return nil, err
	}
	b, err := oocarray.New(newDisk(&perArray.B, "b"), mapB, p.Rank(), p.Clock(), c.Opts)
	if err != nil {
		return nil, err
	}
	cc, err := oocarray.New(newDisk(&perArray.C, "c"), mapC, p.Rank(), p.Clock(), c.Opts)
	if err != nil {
		return nil, err
	}
	if !c.Phantom {
		if err := a.FillGlobal(FillA); err != nil {
			return nil, err
		}
		if err := b.FillGlobal(FillB); err != nil {
			return nil, err
		}
	}
	return &arrays{a: a, b: b, c: cc}, nil
}

// run executes the node function on the machine and wraps the result.
func run(mach sim.Config, c Config, variant string, node func(p *mp.Proc, ar *arrays, cfg Config) error) (*Run, error) {
	fs := c.FS
	if fs == nil {
		fs = iosim.NewMemFS()
	}
	if c.SlabC == 0 {
		c.SlabC = c.SlabA
	}
	perArray := make([]ArrayIO, mach.Procs)
	stats, err := mp.Run(mach, func(p *mp.Proc) error {
		p.SetTracer(c.Trace.Rank(p.Rank()))
		ar, err := setup(p, c, fs, &perArray[p.Rank()])
		if err != nil {
			return err
		}
		defer ar.a.Close()
		defer ar.b.Close()
		defer ar.c.Close()
		if err := node(p, ar, c); err != nil {
			return err
		}
		// Fold the per-array statistics into the processor total.
		io := &p.Stats().IO
		io.Add(perArray[p.Rank()].A)
		io.Add(perArray[p.Rank()].B)
		io.Add(perArray[p.Rank()].C)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("gaxpy %s: %w", variant, err)
	}
	return &Run{Stats: stats, Variant: variant, PerArray: perArray, n: c.N, p: mach.Procs, phantom: c.Phantom, fs: fs, mach: mach}, nil
}

// VerifyC reads the result array back from the local array files and
// checks it against the closed form. It fails on phantom runs, which have
// no data to verify.
func (r *Run) VerifyC() error {
	if r.phantom {
		return fmt.Errorf("gaxpy: cannot verify a phantom run")
	}
	want := CExpected(r.n)
	mapC, err := dist.NewArray("c", dist.NewCollapsed(r.n), dist.NewBlock(r.n, r.p))
	if err != nil {
		return err
	}
	for proc := 0; proc < r.p; proc++ {
		disk := iosim.NewDisk(r.fs, r.mach, nil)
		laf, err := disk.OpenLAF(fmt.Sprintf("c.p%d.laf", proc), int64(mapC.LocalElems(proc)))
		if err != nil {
			return err
		}
		data, _, err := laf.ReadAll()
		laf.Close()
		if err != nil {
			return err
		}
		shape := mapC.LocalShape(proc)
		rows, cols := shape[0], shape[1]
		for lj := 0; lj < cols; lj++ {
			gj := mapC.Dims[1].ToGlobal(proc, lj)
			for li := 0; li < rows; li++ {
				got := data[lj*rows+li]
				if w := want(li, gj); got != w {
					return fmt.Errorf("gaxpy %s: C(%d,%d) = %g, want %g", r.Variant, li, gj, got, w)
				}
			}
		}
	}
	return nil
}

// GatherC assembles the global result matrix (verification/demo helper).
func (r *Run) GatherC() (*matrix.Matrix, error) {
	if r.phantom {
		return nil, fmt.Errorf("gaxpy: cannot gather a phantom run")
	}
	out := matrix.New(r.n, r.n)
	mapC, err := dist.NewArray("c", dist.NewCollapsed(r.n), dist.NewBlock(r.n, r.p))
	if err != nil {
		return nil, err
	}
	for proc := 0; proc < r.p; proc++ {
		disk := iosim.NewDisk(r.fs, r.mach, nil)
		laf, err := disk.OpenLAF(fmt.Sprintf("c.p%d.laf", proc), int64(mapC.LocalElems(proc)))
		if err != nil {
			return nil, err
		}
		data, _, err := laf.ReadAll()
		laf.Close()
		if err != nil {
			return nil, err
		}
		shape := mapC.LocalShape(proc)
		rows, cols := shape[0], shape[1]
		for lj := 0; lj < cols; lj++ {
			gj := mapC.Dims[1].ToGlobal(proc, lj)
			copy(out.Col(gj), data[lj*rows:(lj+1)*rows])
		}
	}
	return out, nil
}
