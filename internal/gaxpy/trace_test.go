package gaxpy

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// TestTraceReconcilesHandCodedVariants extends the keystone exact-replay
// property to the hand-coded baselines: every GAXPY variant's span
// timeline must replay to its accounted totals to the digit (the
// per-array breakdown here is an ArrayIO struct, not the map the
// reconciler understands, so only the totals are checked).
func TestTraceReconcilesHandCodedVariants(t *testing.T) {
	const n, procs = 32, 4
	for _, opts := range []oocarray.Options{
		{},
		{Sieve: true},
		{Prefetch: true, WriteBehind: true},
	} {
		for name, runner := range Variants {
			t.Run(fmt.Sprintf("%s/sieve=%v/prefetch=%v", name, opts.Sieve, opts.Prefetch), func(t *testing.T) {
				tr := trace.NewTracer(procs)
				cfg := Config{N: n, SlabA: n * 2, SlabB: n * 2, Opts: opts, Trace: tr}
				r, err := runner(sim.Delta(procs), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(tr.Spans()) == 0 {
					t.Fatal("traced run emitted no spans")
				}
				if err := trace.Reconcile(tr.Spans(), r.Stats, nil); err != nil {
					t.Fatalf("spans do not replay to the statistics:\n%v", err)
				}
			})
		}
	}
}
