package plan

import (
	"fmt"
	"strconv"
)

// EExpr is an elementwise expression over aligned slab buffers: the
// compiled form of a communication-free FORALL assignment such as
// z(1:n,k) = 2*x(1:n,k) + y(1:n,k) - 1.
type EExpr interface {
	eexpr()
	// Ops counts arithmetic operations per element.
	Ops() int
	String() string
}

// EConst is a scalar constant.
type EConst struct{ V float64 }

// EBuf reads the corresponding element of a slab buffer.
type EBuf struct{ Buf string }

// EBin combines two subexpressions with '+', '-', '*' or '/'.
type EBin struct {
	Op   byte
	L, R EExpr
}

func (*EConst) eexpr() {}
func (*EBuf) eexpr()   {}
func (*EBin) eexpr()   {}

// Ops of a constant is zero.
func (*EConst) Ops() int { return 0 }

// Ops of a buffer load is zero.
func (*EBuf) Ops() int { return 0 }

// Ops counts the node and its children.
func (e *EBin) Ops() int { return 1 + e.L.Ops() + e.R.Ops() }

func (e *EConst) String() string { return strconv.FormatFloat(e.V, 'g', -1, 64) }
func (e *EBuf) String() string   { return e.Buf + "(:)" }
func (e *EBin) String() string {
	return fmt.Sprintf("(%s%c%s)", e.L.String(), e.Op, e.R.String())
}

// NewSlab allocates a zeroed output buffer positioned like slab Index of
// Array's decomposition (the output-side counterpart of ReadSlab).
type NewSlab struct {
	Array string
	Index string
	Buf   string
}

// Ewise evaluates Expr elementwise into buffer Out. All buffers
// referenced by Expr must have Out's geometry (they are slabs of aligned
// arrays at the same slab index).
type Ewise struct {
	Out  string
	Expr EExpr
}

func (*NewSlab) node() {}
func (*Ewise) node()   {}

// Pretty renders the output-slab allocation.
func (n *NewSlab) Pretty(indent int) string {
	return fmt.Sprintf("%s%s = new_slab(%s, slab=%s)\n", pad(indent), n.Buf, n.Array, n.Index)
}

// Pretty renders the elementwise statement.
func (n *Ewise) Pretty(indent int) string {
	return fmt.Sprintf("%s%s(:) = %s\n", pad(indent), n.Out, n.Expr.String())
}
