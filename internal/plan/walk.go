package plan

import (
	"fmt"
	"strings"
)

// NodeLabel names an IR node for trace overlays and disassembly: loops by
// their variable, redistributions by their endpoints, everything else by
// its bare type name. The tree-walking interpreter and the bytecode
// compiler both derive their KindNode span labels from it, so the two
// execution paths emit identical timelines.
func NodeLabel(n Node) string {
	switch n := n.(type) {
	case *Loop:
		return "loop " + n.Var
	case *Redistribute:
		return "redistribute " + n.Src + "->" + n.Dst
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", n), "*plan.")
	}
}

// HasSumStore reports whether the body (recursively) performs a SumStore.
// SumStore's reductions force globally uniform iteration counts, which is
// what makes a loop's iteration boundaries collective-safe checkpoint
// points; the interpreter and the bytecode compiler share this predicate
// so they agree on where checkpoints may commit.
func HasSumStore(body []Node) bool {
	for _, n := range body {
		switch n := n.(type) {
		case *SumStore:
			return true
		case *Loop:
			if HasSumStore(n.Body) {
				return true
			}
		}
	}
	return false
}
