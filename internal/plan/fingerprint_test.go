package plan_test

import (
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
)

func compileFor(t *testing.T, n, procs, mem int, mach sim.Config) *plan.Program {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: procs, MemElems: mem, Machine: mach, Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

// TestFingerprintGolden pins the canonical hash of a fixed compilation:
// any change to the encoding (or to what the compiler emits for this
// input) must be a conscious one, because it invalidates every
// previously cached plan.
func TestFingerprintGolden(t *testing.T) {
	p := compileFor(t, 64, 4, 1<<12, sim.Delta(4))
	const want = "1cc933062ff1bbce16e643f2ebd61ce6"
	got := plan.Fingerprint(p, nil)
	if got != want {
		t.Fatalf("golden fingerprint changed:\n got %s\nwant %s", got, want)
	}
	// Recompiling the same source must reproduce it exactly.
	if again := plan.Fingerprint(compileFor(t, 64, 4, 1<<12, sim.Delta(4)), nil); again != got {
		t.Fatalf("recompilation changed the fingerprint: %s vs %s", again, got)
	}
}

// TestFingerprintMapOrderInsensitive proves the extra key/value pairs are
// folded in a canonical order: many repeated evaluations of the same map
// (Go randomizes iteration order per range) and two maps populated in
// opposite insertion orders all agree.
func TestFingerprintMapOrderInsensitive(t *testing.T) {
	p := compileFor(t, 64, 4, 1<<12, sim.Delta(4))
	fwd := make(map[string]string)
	rev := make(map[string]string)
	for i := 0; i < 32; i++ {
		fwd[fmt.Sprintf("k%02d", i)] = fmt.Sprintf("v%d", i)
	}
	for i := 31; i >= 0; i-- {
		rev[fmt.Sprintf("k%02d", i)] = fmt.Sprintf("v%d", i)
	}
	first := plan.Fingerprint(p, fwd)
	for i := 0; i < 16; i++ {
		if got := plan.Fingerprint(p, fwd); got != first {
			t.Fatalf("iteration %d: fingerprint drifted: %s vs %s", i, got, first)
		}
	}
	if got := plan.Fingerprint(p, rev); got != first {
		t.Fatalf("insertion order changed the fingerprint: %s vs %s", got, first)
	}
	if plain := plan.Fingerprint(p, nil); plain == first {
		t.Fatal("extra pairs did not contribute to the fingerprint")
	}
}

// TestFingerprintSensitivity drives every cache-key field — P, M and the
// machine cost parameters — and checks each one lands on a distinct
// fingerprint (so the plan cache can never serve a plan compiled for a
// different machine or memory budget).
func TestFingerprintSensitivity(t *testing.T) {
	base := plan.Fingerprint(compileFor(t, 64, 4, 1<<12, sim.Delta(4)), nil)
	seen := map[string]string{"base": base}
	add := func(label, fp string) {
		t.Helper()
		for prev, pf := range seen {
			if pf == fp {
				t.Fatalf("%s collides with %s: %s", label, prev, fp)
			}
		}
		seen[label] = fp
	}
	add("procs=8", plan.Fingerprint(compileFor(t, 64, 8, 1<<12, sim.Delta(8)), nil))
	add("n=128", plan.Fingerprint(compileFor(t, 128, 4, 1<<12, sim.Delta(4)), nil))
	add("mem=2x", plan.Fingerprint(compileFor(t, 64, 4, 1<<13, sim.Delta(4)), nil))

	// Cost parameters that flip the compiler's strategy choice change
	// the plan tree itself; parameters that do not are still part of the
	// cache key via the extra pairs the serving layer folds in.
	p := compileFor(t, 64, 4, 1<<12, sim.Delta(4))
	kv := func(c sim.Config) map[string]string {
		return map[string]string{
			"compute_rate":  fmt.Sprint(c.ComputeRate),
			"disk_overhead": fmt.Sprint(c.DiskRequestOverhead),
			"disk_bw":       fmt.Sprint(c.DiskBandwidth),
		}
	}
	delta, modern := sim.Delta(4), sim.Modern(4)
	add("extra-delta", plan.Fingerprint(p, kv(delta)))
	add("extra-modern", plan.Fingerprint(p, kv(modern)))
	bumped := delta
	bumped.DiskRequestOverhead *= 2
	add("extra-overhead-2x", plan.Fingerprint(p, kv(bumped)))
}

// TestFingerprintBodySensitivity edits a copied plan tree in place and
// checks the hash notices structural changes a textual rendering could
// miss (field swaps within a node, emptied loop bodies).
func TestFingerprintBodySensitivity(t *testing.T) {
	mk := func() *plan.Program { return compileFor(t, 64, 4, 1<<12, sim.Delta(4)) }
	base := plan.Fingerprint(mk(), nil)

	p := mk()
	p.Strategy = "tampered"
	if plan.Fingerprint(p, nil) == base {
		t.Fatal("strategy change not reflected")
	}
	p = mk()
	p.Arrays[0].SlabElems++
	if plan.Fingerprint(p, nil) == base {
		t.Fatal("slab size change not reflected")
	}
	p = mk()
	if lp, ok := p.Body[len(p.Body)-1].(*plan.Loop); ok {
		lp.Body = nil
		if plan.Fingerprint(p, nil) == base {
			t.Fatal("emptied loop body not reflected")
		}
	}
}
