package plan

import "fmt"

// EBufShift reads the corresponding element of a slab buffer of Array at
// a column offset of Shift (x(1:n, k+Shift) in the source program). It is
// the shifted counterpart of EBuf and appears only inside ShiftEwise.
type EBufShift struct {
	Array string
	Shift int
}

func (*EBufShift) eexpr() {}

// Ops of a shifted buffer load is zero.
func (*EBufShift) Ops() int { return 0 }

func (e *EBufShift) String() string {
	switch {
	case e.Shift > 0:
		return fmt.Sprintf("%s(:,k+%d)", e.Array, e.Shift)
	case e.Shift < 0:
		return fmt.Sprintf("%s(:,k-%d)", e.Array, -e.Shift)
	default:
		return e.Array + "(:,k)"
	}
}

// ShiftEwise is a complete FORALL statement with shifted column
// references: for every global column k in [Lo, Hi] (0-based, inclusive),
// Out(:,k) = Expr evaluated with each EBufShift leaf reading column
// k+Shift of its array. Columns outside [Lo, Hi] keep their previous
// contents (HPF FORALL bounds semantics).
//
// The node is self-contained: the runtime performs the boundary-column
// exchange with the neighboring processors (shift communication), then
// sweeps the local columns in slabs with column halos.
type ShiftEwise struct {
	Out    string
	Lo, Hi int
	Expr   EExpr
	// GhostLeft and GhostRight are the halo widths: the number of
	// columns needed from the left and right neighbors respectively
	// (GhostLeft = max(0, -minShift), GhostRight = max(0, maxShift)).
	GhostLeft, GhostRight int
}

func (*ShiftEwise) node() {}

// Pretty renders the statement.
func (n *ShiftEwise) Pretty(indent int) string {
	return fmt.Sprintf("%scall shift_exchange(ghosts: left=%d, right=%d); forall k = %d..%d: %s(:,k) = %s\n",
		pad(indent), n.GhostLeft, n.GhostRight, n.Lo+1, n.Hi+1, n.Out, n.Expr.String())
}
