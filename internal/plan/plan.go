// Package plan defines the intermediate representation the out-of-core
// compiler emits: a structured "node + message passing + I/O" program in
// the spirit of the paper's Figures 9 and 12. The IR is both printable
// (as pseudo-code, for inspection) and executable (interpreted by package
// exec on the simulated machine).
//
// The execution model is SPMD: every processor runs the same Body against
// its own out-of-core local arrays. Scalar loop variables live in a local
// environment; slab buffers (ICLAs) and accumulation vectors are named.
// One implicit global column counter, advanced by SumStore and cleared by
// ResetCounter, tracks which global result column the current reduction
// produces — exactly the "global_index" variable of the paper's
// pseudo-code.
package plan

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/oocarray"
)

// Role classifies an array's use in the program.
type Role int

// Array roles.
const (
	In Role = iota
	Out
)

// String names the role.
func (r Role) String() string {
	if r == Out {
		return "out"
	}
	return "in"
}

// ArraySpec describes one out-of-core array of the program: its global
// shape, its HPF mapping, and the compiler's strip-mining decisions.
type ArraySpec struct {
	Name       string
	Rows, Cols int
	// RowScheme and ColScheme give the per-dimension mapping (Collapsed
	// or Block over the program's processors).
	RowScheme, ColScheme dist.Scheme
	Role                 Role
	// Grid, when non-nil, is the multi-dimensional processor
	// arrangement the distributed dimensions map onto.
	Grid []int
	// SlabElems is the node memory allocated to this array's ICLA.
	SlabElems int
	// SlabDim is the chosen strip-mining direction.
	SlabDim oocarray.Dim
}

// DistArray materializes the HPF mapping for the given processor count.
func (a ArraySpec) DistArray(procs int) (*dist.Array, error) {
	if len(a.Grid) > 1 {
		axis := 0
		mk := func(s dist.Scheme, extent int) dist.Map {
			if s == dist.Collapsed {
				return dist.NewCollapsed(extent)
			}
			m := dist.Map{Extent: extent, Procs: a.Grid[axis], Scheme: s}
			axis++
			return m
		}
		return dist.NewGridArray(a.Name, dist.NewGrid(a.Grid...),
			mk(a.RowScheme, a.Rows), mk(a.ColScheme, a.Cols))
	}
	mk := func(s dist.Scheme, extent int) dist.Map {
		if s == dist.Collapsed {
			return dist.NewCollapsed(extent)
		}
		return dist.Map{Extent: extent, Procs: procs, Scheme: s}
	}
	return dist.NewArray(a.Name, mk(a.RowScheme, a.Rows), mk(a.ColScheme, a.Cols))
}

// Program is a compiled node program.
type Program struct {
	// Name labels the program (source file or construct).
	Name string
	// N is the global problem extent.
	N int
	// Procs is the processor count the program was compiled for.
	Procs int
	// Strategy names the chosen access reorganization ("row-slab",
	// "column-slab").
	Strategy string
	// Arrays lists every out-of-core array.
	Arrays []ArraySpec
	// Notes records compiler decisions (cost estimates, memory split).
	Notes []string
	// Body is the SPMD node program.
	Body []Node
}

// Array finds an array spec by name.
func (p *Program) Array(name string) (ArraySpec, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return ArraySpec{}, false
}

// Node is one IR statement.
type Node interface {
	node()
	// Pretty renders the node as pseudo-code.
	Pretty(indent int) string
}

// CountExpr gives a loop's trip count: a literal, the slab count of an
// array's decomposition, or the column count of a buffer. Exactly one
// field is set.
type CountExpr struct {
	Lit     int
	SlabsOf string
	ColsOf  string
}

// String renders the count.
func (c CountExpr) String() string {
	switch {
	case c.SlabsOf != "":
		return fmt.Sprintf("slabs(%s)", c.SlabsOf)
	case c.ColsOf != "":
		return fmt.Sprintf("cols(%s)", c.ColsOf)
	default:
		return fmt.Sprintf("%d", c.Lit)
	}
}

// Loop runs Body with Var = 0 .. Count-1.
type Loop struct {
	Var   string
	Count CountExpr
	Body  []Node
}

// ReadSlab reads slab Index (a loop variable) of Array into buffer Buf,
// using the array's SlabDim and SlabElems. Stream marks reads the
// compiler proved to be sequential scans (Index is the immediately
// enclosing loop variable running over all slabs), which the runtime may
// prefetch ahead of the computation.
type ReadSlab struct {
	Array  string
	Index  string
	Buf    string
	Stream bool
}

// NewStaging allocates an output staging buffer for Array covering the
// same local rows as buffer RowsLike and all local columns, registering
// it as the array's current staging target.
type NewStaging struct {
	Array    string
	Buf      string
	RowsLike string
}

// AutoStage enables counter-driven staging for Array: SumStore flushes
// and repositions the staging slab as the global column counter crosses
// slab boundaries (the "if ICLA is full then write" of Figure 9).
type AutoStage struct {
	Array string
}

// FlushStage writes Array's pending staging buffer, if any.
type FlushStage struct {
	Array string
}

// WriteBuf writes buffer Buf back to its section of Array.
type WriteBuf struct {
	Array string
	Buf   string
}

// ZeroVec clears (allocating on first use) the accumulation vector Vec,
// sized to the row count of buffer RowsLike, or to the local row count of
// array RowsOfArray when RowsLike is empty.
type ZeroVec struct {
	Vec         string
	RowsLike    string
	RowsOfArray string
}

// Axpy accumulates Vec += A[:, ACol] * B[BRow, BCol], where
// BRow = BRowBase * slabWidth(BRowScale) + BRowPlus. Empty variable names
// contribute zero; empty BRowScale means scale 1.
type Axpy struct {
	Vec  string
	A    string // slab buffer of the streamed array
	ACol string // loop variable indexing A's columns
	B    string // slab buffer holding the multiplier
	// BRowBase/BRowScale/BRowPlus encode the multiplier's row index in
	// terms of loop variables (the "column_count" of Figure 9).
	BRowBase  string
	BRowScale string // array whose slab width (in columns) scales BRowBase
	BRowPlus  string
	BCol      string // loop variable indexing B's columns
}

// SumStore performs the global sum of Vec across all processors and
// delivers the result to the owner of the current global column of Array
// (the implicit counter), storing it into the array's staging buffer; the
// counter then advances.
type SumStore struct {
	Vec   string
	Array string
}

// ResetCounter clears the implicit global column counter.
type ResetCounter struct{}

// Redistribute copies Src into Dst under Dst's mapping through the
// collective I/O layer (internal/collio); with Transpose set the global
// indices are swapped, yielding an out-of-core transpose. Method is the
// cost model's choice of destination write strategy ("direct", "sieved"
// or "two-phase") and MemElems the per-processor memory budget of the
// collective.
type Redistribute struct {
	Src, Dst  string
	Transpose bool
	Method    string
	MemElems  int
}

func (*Loop) node()         {}
func (*ReadSlab) node()     {}
func (*NewStaging) node()   {}
func (*AutoStage) node()    {}
func (*FlushStage) node()   {}
func (*WriteBuf) node()     {}
func (*ZeroVec) node()      {}
func (*Axpy) node()         {}
func (*SumStore) node()     {}
func (*ResetCounter) node() {}
func (*Redistribute) node() {}

// ---------------------------------------------------------------------------
// Pretty printing

func pad(n int) string { return strings.Repeat("  ", n) }

// Pretty renders the loop and its body.
func (n *Loop) Pretty(indent int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sdo %s = 0, %s-1\n", pad(indent), n.Var, n.Count.String())
	for _, s := range n.Body {
		b.WriteString(s.Pretty(indent + 1))
	}
	fmt.Fprintf(&b, "%send do\n", pad(indent))
	return b.String()
}

// Pretty renders the slab read.
func (n *ReadSlab) Pretty(indent int) string {
	hint := ""
	if n.Stream {
		hint = "  ! sequential: may prefetch"
	}
	return fmt.Sprintf("%scall read_slab(%s, slab=%s) -> %s%s\n", pad(indent), n.Array, n.Index, n.Buf, hint)
}

// Pretty renders the staging allocation.
func (n *NewStaging) Pretty(indent int) string {
	return fmt.Sprintf("%s%s = new_staging(%s, rows like %s)\n", pad(indent), n.Buf, n.Array, n.RowsLike)
}

// Pretty renders the auto-staging declaration.
func (n *AutoStage) Pretty(indent int) string {
	return fmt.Sprintf("%sauto_stage(%s)  ! write ICLA of %s when full\n", pad(indent), n.Array, n.Array)
}

// Pretty renders the staging flush.
func (n *FlushStage) Pretty(indent int) string {
	return fmt.Sprintf("%scall flush_staging(%s)\n", pad(indent), n.Array)
}

// Pretty renders the buffer write-back.
func (n *WriteBuf) Pretty(indent int) string {
	return fmt.Sprintf("%scall write_slab(%s) <- %s\n", pad(indent), n.Array, n.Buf)
}

// Pretty renders the vector clear.
func (n *ZeroVec) Pretty(indent int) string {
	like := n.RowsLike
	if like == "" {
		like = "local_rows(" + n.RowsOfArray + ")"
	}
	return fmt.Sprintf("%s%s = zeros(rows of %s)\n", pad(indent), n.Vec, like)
}

// Pretty renders the accumulation.
func (n *Axpy) Pretty(indent int) string {
	row := n.BRowBase
	if n.BRowScale != "" {
		row = fmt.Sprintf("%s*slab_width(%s)", n.BRowBase, n.BRowScale)
	}
	if n.BRowPlus != "" {
		if row != "" {
			row += "+" + n.BRowPlus
		} else {
			row = n.BRowPlus
		}
	}
	return fmt.Sprintf("%s%s = %s + %s(:,%s)*%s(%s,%s)\n",
		pad(indent), n.Vec, n.Vec, n.A, n.ACol, n.B, row, n.BCol)
}

// Pretty renders the reduction + owner store.
func (n *SumStore) Pretty(indent int) string {
	return fmt.Sprintf("%scall global_sum(%s) -> owner of column(global_index) of %s stores it; global_index=global_index+1\n",
		pad(indent), n.Vec, n.Array)
}

// Pretty renders the counter reset.
func (n *ResetCounter) Pretty(indent int) string {
	return fmt.Sprintf("%sglobal_index = 0\n", pad(indent))
}

// Pretty renders the collective redistribution.
func (n *Redistribute) Pretty(indent int) string {
	op := "redistribute"
	if n.Transpose {
		op = "transpose"
	}
	return fmt.Sprintf("%scall collective_%s(%s -> %s, method=%s, mem=%d)\n",
		pad(indent), op, n.Src, n.Dst, n.Method, n.MemElems)
}

// String renders the whole program as annotated pseudo-code.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "! %s: N=%d over %d processors, strategy=%s\n", p.Name, p.N, p.Procs, p.Strategy)
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "! array %s(%d,%d) dist=(%s,%s) role=%s slab=%d elems (%s)\n",
			a.Name, a.Rows, a.Cols, a.RowScheme, a.ColScheme, a.Role, a.SlabElems, a.SlabDim)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(&b, "! note: %s\n", n)
	}
	for _, n := range p.Body {
		b.WriteString(n.Pretty(0))
	}
	return b.String()
}
