package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Fingerprint returns a stable canonical hash of the compiled program:
// the plan tree, every array's distribution and strip-mining decision,
// and the compiler's notes. Two programs share a fingerprint exactly
// when a cached execution of one is a valid execution of the other, so
// the serving layer uses it as the identity of a compiled plan.
//
// extra carries cache-key material that is not part of the plan itself —
// machine cost parameters, runtime switches — as key/value pairs. The
// pairs are folded in sorted key order, so the fingerprint is
// insensitive to map iteration order but sensitive to every entry.
func Fingerprint(p *Program, extra map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "plan/v1|%s|n=%d|p=%d|strategy=%s\n", p.Name, p.N, p.Procs, p.Strategy)
	for _, a := range p.Arrays {
		fmt.Fprintf(h, "array|%s|%dx%d|%s,%s|grid=%v|role=%s|slab=%d@%s\n",
			a.Name, a.Rows, a.Cols, a.RowScheme, a.ColScheme, a.Grid, a.Role, a.SlabElems, a.SlabDim)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(h, "note|%s\n", n)
	}
	for _, n := range p.Body {
		hashNode(h, n)
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "extra|%s=%s\n", k, extra[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// hashNode folds one IR node (and, for loops, its body) into the hash
// with an explicit type tag per field, so two nodes of different kinds
// can never collide on a shared rendering.
func hashNode(w io.Writer, n Node) {
	switch n := n.(type) {
	case *Loop:
		fmt.Fprintf(w, "loop|%s|%s{\n", n.Var, n.Count)
		for _, b := range n.Body {
			hashNode(w, b)
		}
		fmt.Fprint(w, "}\n")
	case *ReadSlab:
		fmt.Fprintf(w, "read|%s|%s|%s|stream=%t\n", n.Array, n.Index, n.Buf, n.Stream)
	case *NewStaging:
		fmt.Fprintf(w, "staging|%s|%s|%s\n", n.Array, n.Buf, n.RowsLike)
	case *AutoStage:
		fmt.Fprintf(w, "autostage|%s\n", n.Array)
	case *FlushStage:
		fmt.Fprintf(w, "flush|%s\n", n.Array)
	case *WriteBuf:
		fmt.Fprintf(w, "write|%s|%s\n", n.Array, n.Buf)
	case *ZeroVec:
		fmt.Fprintf(w, "zerovec|%s|%s|%s\n", n.Vec, n.RowsLike, n.RowsOfArray)
	case *Axpy:
		fmt.Fprintf(w, "axpy|%s|%s|%s|%s|%s|%s|%s|%s\n",
			n.Vec, n.A, n.ACol, n.B, n.BRowBase, n.BRowScale, n.BRowPlus, n.BCol)
	case *SumStore:
		fmt.Fprintf(w, "sumstore|%s|%s\n", n.Vec, n.Array)
	case *ResetCounter:
		fmt.Fprint(w, "resetcounter\n")
	case *Redistribute:
		fmt.Fprintf(w, "redistribute|%s|%s|transpose=%t|%s|mem=%d\n",
			n.Src, n.Dst, n.Transpose, n.Method, n.MemElems)
	default:
		// An unknown node kind must not silently alias an existing
		// fingerprint; fold in its full debug rendering instead.
		fmt.Fprintf(w, "unknown|%T|%+v\n", n, n)
	}
}
