// Package collio implements collective two-phase I/O in the PASSION
// style: instead of every processor issuing many small requests against
// the distribution it *wants*, all processors first access their local
// array files in the distribution the files *have* — one large contiguous
// run per round — and then exchange elements in memory through
// mp.AllToAll. Disk requests are traded for messages, which is the right
// trade whenever the per-request overhead dominates (Eqs. 3-6 of the
// paper: 15ms per request on the Touchstone Delta vs 80us per message).
//
// The layer offers three destination write strategies so the compiler's
// cost model can choose per statement:
//
//   - Direct: write every conforming run of received elements as its own
//     request (cheapest when the runs are long, e.g. a same-distribution
//     copy).
//   - Sieved: cover the received runs with one span and read-modify-write
//     it (two requests per round, at the price of moving the span twice).
//   - TwoPhase: stage received elements per destination window and flush
//     each window with one contiguous write (plus one contiguous RMW
//     read when the window is only partially produced) — requests become
//     independent of how fragmented the access is.
package collio

import (
	"fmt"
	"sort"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Method selects the destination write strategy of a collective
// redistribution.
type Method int

const (
	// Direct writes each run of consecutive destination elements as its
	// own request.
	Direct Method = iota
	// Sieved covers each round's runs with one span and read-modify-
	// writes it (PASSION write data sieving).
	Sieved
	// TwoPhase stages elements per destination window and flushes every
	// window with one contiguous write.
	TwoPhase
)

// String returns the method name as used in plan hints.
func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case Sieved:
		return "sieved"
	case TwoPhase:
		return "two-phase"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod maps a plan hint back to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "sieved":
		return Sieved, nil
	case "two-phase", "twophase":
		return TwoPhase, nil
	}
	return 0, fmt.Errorf("collio: unknown method %q (want direct, sieved or two-phase)", s)
}

// Side is one rank's view of a distributed out-of-core array taking part
// in a collective operation: its mapping, its local array file, and the
// local (column-major) shape of that file.
type Side struct {
	Map  *dist.Array
	LAF  *iosim.LAF
	Rank int
	// Rows and Cols are the local array shape on this rank; the LAF
	// stores it column-major.
	Rows, Cols int
	// Charge applies simulated seconds to the rank's clock under a span
	// kind ("io-read"/"io-write"). Nil skips clock accounting.
	Charge func(kind string, seconds float64)
}

func (s Side) charge(kind string, seconds float64) {
	if s.Charge != nil {
		s.Charge(kind, seconds)
	}
}

// globalIndex translates a local (row, col) index to global indices.
func (s Side) globalIndex(li, lj int) (gi, gj int) {
	gi = s.Map.Dims[0].ToGlobal(s.Map.ProcCoord(s.Rank, 0), li)
	gj = s.Map.Dims[1].ToGlobal(s.Map.ProcCoord(s.Rank, 1), lj)
	return gi, gj
}

// SrcSlabWidth returns the conforming-partition slab width in columns for
// phase 1: each round reads one contiguous run of full local columns,
// sized to half the memory budget (the other half is left for staging
// and shuffle buffers).
func SrcSlabWidth(memElems, rows, cols int) int {
	return clampWidth(memElems/2, rows, cols)
}

// WindowWidth returns the destination window width in columns for the
// two-phase writeback: a quarter of the memory budget, so a window's
// staging buffer and its spilled pairs fit alongside a phase-1 slab.
func WindowWidth(memElems, rows, cols int) int {
	return clampWidth(memElems/4, rows, cols)
}

func clampWidth(budget, rows, cols int) int {
	if rows <= 0 || cols <= 0 {
		return 1
	}
	w := budget / rows
	if w < 1 {
		w = 1
	}
	if w > cols {
		w = cols
	}
	return w
}

// pair is one shuffled element: its linear index in the destination
// owner's local array file, and its value.
type pair struct {
	lin int
	val float64
}

// Redistribute copies the distributed array described by src into the one
// described by dst, applying transform to every global index pair (nil
// means the identity, in which case the global shapes must agree). All
// ranks must call it collectively with the same memElems, tag, transform
// semantics and method.
//
// Phase 1 is the same for every method: each rank reads its LAF in
// conforming column slabs — one contiguous request per round — and
// routes each element to its destination owner through mp.AllToAll as
// (linear index, value) pairs. The method only decides how the receiving
// rank applies the incoming pairs to its own LAF.
func Redistribute(p *mp.Proc, src, dst Side, memElems, tag int, transform func(gi, gj int) (di, dj int), method Method) error {
	if src.Rank != p.Rank() || dst.Rank != p.Rank() {
		return fmt.Errorf("collio: redistribute on rank %d given sides of ranks %d and %d",
			p.Rank(), src.Rank, dst.Rank)
	}
	if transform == nil {
		ss, ds := src.Map.GlobalShape(), dst.Map.GlobalShape()
		if len(ss) != 2 || len(ds) != 2 || ss[0] != ds[0] || ss[1] != ds[1] {
			return fmt.Errorf("collio: redistribute between different global shapes %v and %v", ss, ds)
		}
		transform = func(gi, gj int) (int, int) { return gi, gj }
	}
	size := p.Size()
	// Destination linear indices use the owner's local row count, which
	// under ragged block sizes differs between ranks.
	dstRowsOf := make([]int, size)
	for q := 0; q < size; q++ {
		dstRowsOf[q] = dst.Map.LocalShape(q)[0]
	}

	w := SrcSlabWidth(memElems, src.Rows, src.Cols)
	myRounds := 0
	if src.Rows > 0 && src.Cols > 0 {
		myRounds = (src.Cols + w - 1) / w
	}
	// Ranks may own different column counts; everyone participates in the
	// collective for the maximum round count.
	rm := p.AllReduceMax(tag, []float64{float64(myRounds)})
	rounds := int(rm[0])
	mp.ReleaseBuf(rm)

	recv, err := newReceiver(dst, memElems, method)
	if err != nil {
		return err
	}
	defer recv.cleanup()

	// phase brackets each stage of a round with an overlay span, so the
	// exported timeline shows where a redistribution's time goes without
	// touching the reconciled leaf spans recorded underneath.
	tr, clock := p.Tracer(), p.Clock()
	phase := func(label string, start float64) {
		if tr == nil {
			return
		}
		if now := clock.Seconds(); now > start {
			tr.Emit(trace.Span{Kind: trace.KindPhase, Label: label, Start: start, Dur: now - start})
		}
	}

	buf := bufpool.GetF64(src.Rows * w)
	defer bufpool.PutF64(buf)
	if src.LAF.Disk().Phantom() {
		// Phantom reads leave the slab untouched; the pooled buffer must
		// start out zeroed like the make it replaced.
		clear(buf)
	}
	// parts, pairs and the per-round shuffle payloads are reused across
	// rounds: lengths reset, capacities kept, so steady-state rounds stop
	// allocating.
	parts := make([][]float64, size)
	var pairs []pair
	for round := 0; round < rounds; round++ {
		t0 := clock.Seconds()
		for q := range parts {
			parts[q] = parts[q][:0]
		}
		if round < myRounds {
			c0 := round * w
			cw := src.Cols - c0
			if cw > w {
				cw = w
			}
			data := buf[:src.Rows*cw]
			sec, err := src.LAF.ReadChunks([]iosim.Chunk{{Off: int64(c0) * int64(src.Rows), Len: len(data)}}, data)
			if err != nil {
				return err
			}
			src.charge("io-read", sec)
			for lj := 0; lj < cw; lj++ {
				for li := 0; li < src.Rows; li++ {
					gi, gj := src.globalIndex(li, c0+lj)
					di, dj := transform(gi, gj)
					owner, lli, llj := dst.Map.ToLocal2(di, dj)
					lin := llj*dstRowsOf[owner] + lli
					parts[owner] = append(parts[owner], float64(lin), data[lj*src.Rows+li])
				}
			}
		}
		phase("collio:read", t0)
		t1 := clock.Seconds()
		incoming := p.AllToAll(tag, parts)
		phase("collio:shuffle", t1)
		t2 := clock.Seconds()
		pairs = pairs[:0]
		for i, in := range incoming {
			if len(in)%2 != 0 {
				// The payloads are arena buffers: release the rest of the
				// round before failing or the error path leaks them.
				for _, rest := range incoming[i:] {
					mp.ReleaseBuf(rest)
				}
				return fmt.Errorf("collio: redistribute payload of %d values is not index/value pairs", len(in))
			}
			for i := 0; i < len(in); i += 2 {
				pairs = append(pairs, pair{lin: int(in[i]), val: in[i+1]})
			}
			mp.ReleaseBuf(in)
		}
		if err := recv.absorb(pairs); err != nil {
			return err
		}
		phase("collio:write", t2)
	}
	tEnd := clock.Seconds()
	if err := recv.finish(); err != nil {
		return err
	}
	phase("collio:write", tEnd)
	return nil
}

// receiver applies each round's incoming pairs to the destination LAF
// under one of the write strategies.
type receiver interface {
	absorb(pairs []pair) error
	finish() error
	cleanup()
}

func newReceiver(dst Side, memElems int, method Method) (receiver, error) {
	switch method {
	case Direct:
		return &runReceiver{dst: dst}, nil
	case Sieved:
		return &runReceiver{dst: dst, sieve: true}, nil
	case TwoPhase:
		return newTwoPhaseReceiver(dst, memElems)
	}
	return nil, fmt.Errorf("collio: unknown method %d", int(method))
}

// runReceiver writes each round's pairs immediately, either run by run
// (Direct) or through a spanning read-modify-write (Sieved). The
// coalesce scratch is reused across rounds.
type runReceiver struct {
	dst    Side
	sieve  bool
	chunks []iosim.Chunk
	vals   []float64
}

func (r *runReceiver) absorb(pairs []pair) error {
	if len(pairs) == 0 {
		return nil
	}
	r.chunks, r.vals = coalescePairs(pairs, r.chunks[:0], r.vals[:0])
	var sec float64
	var err error
	if r.sieve {
		sec, err = AggregateWrite(r.dst.LAF, r.chunks, r.vals)
	} else {
		sec, err = r.dst.LAF.WriteChunks(r.chunks, r.vals)
	}
	if err != nil {
		return err
	}
	r.dst.charge("io-write", sec)
	return nil
}

func (r *runReceiver) finish() error { return nil }
func (r *runReceiver) cleanup()      {}

// coalescePairs sorts the pairs by destination index and merges
// consecutive indices into contiguous chunks, returning the chunks and
// the values packed in chunk order, appended to the passed-in scratch
// slices. Duplicate indices are kept in arrival order (each starts a
// fresh one-element chunk), so the last writer wins as it would element
// by element.
func coalescePairs(pairs []pair, chunks []iosim.Chunk, vals []float64) ([]iosim.Chunk, []float64) {
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].lin < pairs[j].lin })
	for i, pr := range pairs {
		vals = append(vals, pr.val)
		if i > 0 && pr.lin == pairs[i-1].lin+1 {
			chunks[len(chunks)-1].Len++
		} else {
			chunks = append(chunks, iosim.Chunk{Off: int64(pr.lin), Len: 1})
		}
	}
	return chunks, vals
}

// twoPhaseReceiver stages incoming pairs per destination window (a run
// of local columns sized by WindowWidth) and flushes each window with a
// single contiguous write at the end. When twice the local array fits in
// the memory budget the pairs stay in memory; otherwise they spill to a
// scratch file on the same disk, appended contiguously per window, which
// keeps every scratch access a single-request transfer too.
type twoPhaseReceiver struct {
	dst    Side
	winW   int
	nWin   int
	inMem  bool
	counts []int // pairs received per window
	base   []int64
	elems  []int
	bufs   [][]float64 // in-memory regime: pair floats per window
	per    [][]float64 // absorb scratch: pair floats per window, reused per round

	scratch     *iosim.LAF
	scratchName string
	off         []int64 // scratch region start per window, in floats
	spilled     []int64 // floats appended so far per window
}

func newTwoPhaseReceiver(dst Side, memElems int) (*twoPhaseReceiver, error) {
	rows, cols := dst.Rows, dst.Cols
	local := rows * cols
	r := &twoPhaseReceiver{dst: dst}
	r.winW = WindowWidth(memElems, rows, cols)
	if local > 0 {
		r.nWin = (cols + r.winW - 1) / r.winW
	}
	r.inMem = local == 0 || 2*local <= memElems
	r.counts = make([]int, r.nWin)
	r.base = make([]int64, r.nWin)
	r.elems = make([]int, r.nWin)
	r.off = make([]int64, r.nWin)
	var acc int64
	for wdx := 0; wdx < r.nWin; wdx++ {
		c0 := wdx * r.winW
		cw := cols - c0
		if cw > r.winW {
			cw = r.winW
		}
		r.base[wdx] = int64(c0) * int64(rows)
		r.elems[wdx] = rows * cw
		r.off[wdx] = acc
		acc += 2 * int64(rows*cw)
	}
	if r.inMem {
		r.bufs = make([][]float64, r.nWin)
		return r, nil
	}
	r.spilled = make([]int64, r.nWin)
	r.scratchName = fmt.Sprintf("%s.p%d.collio.scratch", dst.Map.Name, dst.Rank)
	scratch, err := dst.LAF.Disk().CreateLAF(r.scratchName, acc)
	if err != nil {
		return nil, err
	}
	r.scratch = scratch
	return r, nil
}

func (r *twoPhaseReceiver) absorb(pairs []pair) error {
	if len(pairs) == 0 {
		return nil
	}
	winElems := r.dst.Rows * r.winW
	if r.per == nil {
		r.per = make([][]float64, r.nWin)
	}
	per := r.per
	for i := range per {
		per[i] = per[i][:0]
	}
	for _, pr := range pairs {
		wdx := 0
		if winElems > 0 {
			wdx = pr.lin / winElems
		}
		if wdx < 0 || wdx >= r.nWin {
			return fmt.Errorf("collio: destination index %d outside local array of %d elements",
				pr.lin, r.dst.Rows*r.dst.Cols)
		}
		per[wdx] = append(per[wdx], float64(pr.lin), pr.val)
		r.counts[wdx]++
	}
	if r.inMem {
		for wdx, fl := range per {
			r.bufs[wdx] = append(r.bufs[wdx], fl...)
		}
		return nil
	}
	for wdx, fl := range per {
		if len(fl) == 0 {
			continue
		}
		if r.spilled[wdx]+int64(len(fl)) > 2*int64(r.elems[wdx]) {
			return fmt.Errorf("collio: window %d received more elements than it holds (non-injective transform?)", wdx)
		}
		sec, err := r.scratch.WriteChunks([]iosim.Chunk{{Off: r.off[wdx] + r.spilled[wdx], Len: len(fl)}}, fl)
		if err != nil {
			return err
		}
		r.dst.charge("io-write", sec)
		r.spilled[wdx] += int64(len(fl))
	}
	return nil
}

func (r *twoPhaseReceiver) finish() error {
	// In phantom (accounting-only) mode scratch reads return zeros, not
	// the indices written, so the scatter must be skipped; every request
	// is still issued and counted identically.
	phantom := r.dst.LAF.Disk().Phantom()
	for wdx := 0; wdx < r.nWin; wdx++ {
		if r.elems[wdx] == 0 {
			continue
		}
		var pairFloats, pooledPF []float64
		if r.inMem {
			pairFloats = r.bufs[wdx]
		} else if r.spilled[wdx] > 0 {
			pooledPF = bufpool.GetF64(int(r.spilled[wdx]))
			pairFloats = pooledPF
			sec, err := r.scratch.ReadChunks([]iosim.Chunk{{Off: r.off[wdx], Len: len(pairFloats)}}, pairFloats)
			if err != nil {
				bufpool.PutF64(pooledPF)
				return err
			}
			r.dst.charge("io-read", sec)
		}
		// Cleared, never merely overwritten: with duplicate destination
		// indices the received count can reach the window size without
		// covering every element, so untouched elements must read as the
		// zeros make used to provide.
		staging := bufpool.GetF64(r.elems[wdx])
		clear(staging)
		release := func() {
			bufpool.PutF64(staging)
			bufpool.PutF64(pooledPF)
		}
		win := []iosim.Chunk{{Off: r.base[wdx], Len: r.elems[wdx]}}
		if r.counts[wdx] < r.elems[wdx] {
			// The window was only partially produced: pre-read it so the
			// untouched elements survive the full-window writeback. One
			// extra contiguous request.
			sec, err := r.dst.LAF.ReadChunks(win, staging)
			if err != nil {
				release()
				return err
			}
			r.dst.charge("io-read", sec)
		}
		if !phantom {
			for i := 0; i+1 < len(pairFloats); i += 2 {
				lin := int(pairFloats[i]) - int(r.base[wdx])
				if lin < 0 || lin >= len(staging) {
					release()
					return fmt.Errorf("collio: staged index %d outside window %d", int(pairFloats[i]), wdx)
				}
				staging[lin] = pairFloats[i+1]
			}
		}
		sec, err := r.dst.LAF.WriteChunks(win, staging)
		release()
		if err != nil {
			return err
		}
		r.dst.charge("io-write", sec)
	}
	return nil
}

func (r *twoPhaseReceiver) cleanup() {
	if r.scratch == nil {
		return
	}
	r.scratch.Close()
	r.dst.LAF.Disk().RemoveLAF(r.scratchName)
	r.scratch = nil
}
