package collio

import "github.com/ooc-hpf/passion/internal/iosim"

// AggregateRead fetches the given file chunks with request aggregation:
// a fragmented transfer is served by a single request covering the whole
// span (PASSION data sieving), a contiguous one by a plain read. The
// out-of-core array layer routes its sieved slab reads through here.
func AggregateRead(laf *iosim.LAF, chunks []iosim.Chunk, dst []float64) (float64, error) {
	if len(chunks) > 1 {
		return laf.ReadChunksSieved(chunks, dst)
	}
	return laf.ReadChunks(chunks, dst)
}

// AggregateWrite stores the given chunks with request aggregation: a
// fragmented transfer becomes one read-modify-write of the covering span,
// a contiguous one a plain write.
func AggregateWrite(laf *iosim.LAF, chunks []iosim.Chunk, src []float64) (float64, error) {
	if len(chunks) > 1 {
		return laf.WriteChunksSieved(chunks, src)
	}
	return laf.WriteChunks(chunks, src)
}
