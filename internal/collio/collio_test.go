package collio

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
)

func valueAt(gi, gj int) float64 { return float64(gi*1000 + gj + 1) }

// sideFor builds the collective Side of one rank's local array file,
// creating and filling the LAF from the global fill function.
func sideFor(t *testing.T, disk *iosim.Disk, dm *dist.Array, rank int, fill func(gi, gj int) float64) Side {
	t.Helper()
	shape := dm.LocalShape(rank)
	rows, cols := shape[0], shape[1]
	laf, err := disk.CreateLAF(fmt.Sprintf("%s.p%d.laf", dm.Name, rank), int64(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	s := Side{Map: dm, LAF: laf, Rank: rank, Rows: rows, Cols: cols}
	if fill != nil && rows*cols > 0 {
		data := make([]float64, rows*cols)
		for lj := 0; lj < cols; lj++ {
			for li := 0; li < rows; li++ {
				gi, gj := s.globalIndex(li, lj)
				data[lj*rows+li] = fill(gi, gj)
			}
		}
		if _, err := laf.WriteChunks([]iosim.Chunk{{Off: 0, Len: len(data)}}, data); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// checkSide verifies every element of the rank's destination file.
func checkSide(s Side, want func(gi, gj int) float64) error {
	if s.Rows*s.Cols == 0 {
		return nil
	}
	data := make([]float64, s.Rows*s.Cols)
	if _, err := s.LAF.ReadChunks([]iosim.Chunk{{Off: 0, Len: len(data)}}, data); err != nil {
		return err
	}
	for lj := 0; lj < s.Cols; lj++ {
		for li := 0; li < s.Rows; li++ {
			gi, gj := s.globalIndex(li, lj)
			if got, w := data[lj*s.Rows+li], want(gi, gj); got != w {
				return fmt.Errorf("rank %d dst(%d,%d)=g(%d,%d): got %g want %g",
					s.Rank, li, lj, gi, gj, got, w)
			}
		}
	}
	return nil
}

// redistCase is one distribution scenario of the method-equivalence
// property: all three write strategies must land every element exactly
// where the destination mapping (after transform) says.
type redistCase struct {
	name      string
	n, p      int
	memElems  int
	mkSrc     func(n, p int) (*dist.Array, error)
	mkDst     func(n, p int) (*dist.Array, error)
	transform func(gi, gj int) (int, int)
	wantAt    func(gi, gj int) float64
}

func colBlock(name string) func(n, p int) (*dist.Array, error) {
	return func(n, p int) (*dist.Array, error) {
		return dist.NewArray(name, dist.NewCollapsed(n), dist.NewBlock(n, p))
	}
}

func redistCases() []redistCase {
	return []redistCase{
		{
			name: "column-to-row-block", n: 12, p: 4, memElems: 24,
			mkSrc: colBlock("src"),
			mkDst: func(n, p int) (*dist.Array, error) {
				return dist.NewArray("dst", dist.NewBlock(n, p), dist.NewCollapsed(n))
			},
			wantAt: valueAt,
		},
		{
			name: "ragged-to-cyclic", n: 10, p: 3, memElems: 20,
			mkSrc: colBlock("src"),
			mkDst: func(n, p int) (*dist.Array, error) {
				return dist.NewArray("dst", dist.NewCollapsed(n), dist.NewCyclic(n, p))
			},
			wantAt: valueAt,
		},
		{
			name: "ragged-transpose", n: 9, p: 4, memElems: 18,
			mkSrc:     colBlock("src"),
			mkDst:     colBlock("dst"),
			transform: func(gi, gj int) (int, int) { return gj, gi },
			wantAt:    func(gi, gj int) float64 { return valueAt(gj, gi) },
		},
		{
			name: "to-block-block-grid", n: 12, p: 4, memElems: 24,
			mkSrc: colBlock("src"),
			mkDst: func(n, p int) (*dist.Array, error) {
				return dist.NewGridArray("dst", dist.NewGrid(2, 2),
					dist.NewBlock(n, 2), dist.NewBlock(n, 2))
			},
			wantAt: valueAt,
		},
		{
			name: "identity", n: 8, p: 2, memElems: 16,
			mkSrc:  colBlock("src"),
			mkDst:  colBlock("dst"),
			wantAt: valueAt,
		},
		{
			// One-column slabs and one-column windows with a spilling
			// two-phase receiver: the smallest legal budget.
			name: "tiny-memory-spill", n: 10, p: 4, memElems: 1,
			mkSrc:     colBlock("src"),
			mkDst:     colBlock("dst"),
			transform: func(gi, gj int) (int, int) { return gj, gi },
			wantAt:    func(gi, gj int) float64 { return valueAt(gj, gi) },
		},
	}
}

// runCase executes one scenario under one method over a fresh in-memory
// file system, optionally injecting faults, and checks the destination.
func runCase(t *testing.T, tc redistCase, method Method, chaos bool) {
	t.Helper()
	var fs iosim.FS = iosim.NewMemFS()
	var resil *iosim.Resilience
	if chaos {
		fs = iosim.NewChaosFS(fs, iosim.ChaosConfig{Seed: 7, PTransient: 0.05})
		resil = iosim.NewResilience(iosim.DefaultRetryPolicy())
	}
	_, err := mp.Run(sim.Delta(tc.p), func(proc *mp.Proc) error {
		disk := iosim.NewResilientDisk(fs, proc.Config(), &proc.Stats().IO, resil)
		srcMap, err := tc.mkSrc(tc.n, tc.p)
		if err != nil {
			return err
		}
		dstMap, err := tc.mkDst(tc.n, tc.p)
		if err != nil {
			return err
		}
		src := sideFor(t, disk, srcMap, proc.Rank(), valueAt)
		dst := sideFor(t, disk, dstMap, proc.Rank(), nil)
		if err := Redistribute(proc, src, dst, tc.memElems, 30, tc.transform, method); err != nil {
			return err
		}
		return checkSide(dst, tc.wantAt)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMethodsProduceIdenticalResults is the central property: for every
// distribution scenario, direct, sieved and two-phase all reproduce the
// exact destination contents — so they are bitwise identical to each
// other too.
func TestMethodsProduceIdenticalResults(t *testing.T) {
	for _, tc := range redistCases() {
		for _, method := range []Method{Direct, Sieved, TwoPhase} {
			t.Run(tc.name+"/"+method.String(), func(t *testing.T) {
				runCase(t, tc, method, false)
			})
		}
	}
}

// TestMethodsUnderChaos repeats the property with transient fault
// injection and the retrying resilient disk: faults cost retries, never
// correctness.
func TestMethodsUnderChaos(t *testing.T) {
	for _, tc := range redistCases() {
		for _, method := range []Method{Direct, Sieved, TwoPhase} {
			t.Run(tc.name+"/"+method.String(), func(t *testing.T) {
				runCase(t, tc, method, true)
			})
		}
	}
}

// TestTwoPhaseScratchCleanup checks that a spilling two-phase run removes
// its scratch files, success or not.
func TestTwoPhaseScratchCleanup(t *testing.T) {
	fs := iosim.NewMemFS()
	const n, p = 10, 4
	_, err := mp.Run(sim.Delta(p), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		srcMap, err := colBlock("src")(n, p)
		if err != nil {
			return err
		}
		dstMap, err := colBlock("dst")(n, p)
		if err != nil {
			return err
		}
		src := sideFor(t, disk, srcMap, proc.Rank(), valueAt)
		dst := sideFor(t, disk, dstMap, proc.Rank(), nil)
		swap := func(gi, gj int) (int, int) { return gj, gi }
		return Redistribute(proc, src, dst, 1, 31, swap, TwoPhase)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range fs.Names() {
		if strings.Contains(name, "collio.scratch") {
			t.Fatalf("scratch file %s left behind", name)
		}
	}
}

// TestTwoPhaseStagingRespectsBudget pins the memory regimes: the
// receiver stages in memory only when twice the local array fits the
// budget; otherwise it spills through a scratch file instead of holding
// O(local) pairs, which is what keeps the collective within memElems.
func TestTwoPhaseStagingRespectsBudget(t *testing.T) {
	fs := iosim.NewMemFS()
	dm, err := dist.NewArray("d", dist.NewCollapsed(8), dist.NewBlock(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	disk := iosim.NewDisk(fs, sim.Delta(1), nil)
	side := sideFor(t, disk, dm, 0, nil) // local 8x8 = 64 elements

	spill, err := newTwoPhaseReceiver(side, 16) // 2*64 > 16: must spill
	if err != nil {
		t.Fatal(err)
	}
	defer spill.cleanup()
	if spill.inMem || spill.scratch == nil {
		t.Fatalf("budget 16 for a 64-element local array must spill (inMem=%v)", spill.inMem)
	}
	if spill.winW != 1 { // quarter budget (4 elems) over 8 rows clamps to 1 column
		t.Fatalf("window width %d, want 1", spill.winW)
	}

	mem, err := newTwoPhaseReceiver(side, 128) // 2*64 <= 128: in memory
	if err != nil {
		t.Fatal(err)
	}
	defer mem.cleanup()
	if !mem.inMem || mem.scratch != nil {
		t.Fatalf("budget 128 for a 64-element local array must stay in memory")
	}
}

func TestMethodStringRoundTrip(t *testing.T) {
	for _, m := range []Method{Direct, Sieved, TwoPhase} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip of %v: got %v, %v", m, got, err)
		}
	}
	if _, err := ParseMethod("sideways"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if got, err := ParseMethod("twophase"); err != nil || got != TwoPhase {
		t.Fatalf("twophase alias: got %v, %v", got, err)
	}
}

func TestSlabWidthClamps(t *testing.T) {
	if w := SrcSlabWidth(100, 10, 8); w != 5 {
		t.Fatalf("SrcSlabWidth(100,10,8) = %d, want 5", w)
	}
	if w := SrcSlabWidth(2, 10, 8); w != 1 {
		t.Fatalf("tiny budget must clamp to one column, got %d", w)
	}
	if w := SrcSlabWidth(1000, 10, 8); w != 8 {
		t.Fatalf("large budget must clamp to all columns, got %d", w)
	}
	if w := WindowWidth(100, 10, 8); w != 2 {
		t.Fatalf("WindowWidth(100,10,8) = %d, want 2", w)
	}
	if w := WindowWidth(100, 0, 8); w != 1 {
		t.Fatalf("empty local array must give width 1, got %d", w)
	}
}

func TestCoalescePairsLastWriterWins(t *testing.T) {
	chunks, vals := coalescePairs([]pair{
		{lin: 3, val: 30}, {lin: 4, val: 40}, {lin: 3, val: 31}, {lin: 0, val: 1},
	}, nil, nil)
	// Sorted stably: 0, 3(first), 3(second), 4. The duplicate 3 starts a
	// fresh chunk, so writing chunks in order leaves 31 at index 3.
	if len(chunks) != 3 {
		t.Fatalf("chunks = %v, want 3 entries", chunks)
	}
	applied := make([]float64, 5)
	i := 0
	for _, c := range chunks {
		for k := 0; k < c.Len; k++ {
			applied[int(c.Off)+k] = vals[i]
			i++
		}
	}
	if applied[3] != 31 || applied[4] != 40 || applied[0] != 1 {
		t.Fatalf("applied = %v", applied)
	}
}

// TestRedistributeRankMismatch pins the misuse error.
func TestRedistributeRankMismatch(t *testing.T) {
	fs := iosim.NewMemFS()
	_, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		disk := iosim.NewDisk(fs, proc.Config(), nil)
		dm, err := colBlock("x")(8, 2)
		if err != nil {
			return err
		}
		s := sideFor(t, disk, dm, proc.Rank(), valueAt)
		wrong := s
		wrong.Rank = (proc.Rank() + 1) % 2
		if err := Redistribute(proc, wrong, s, 8, 32, nil, Direct); err == nil {
			return fmt.Errorf("rank mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMalformedPayloadReleasesRound pins the error path of the incoming
// loop: a peer delivering a payload that is not index/value pairs fails
// the redistribution, and every arena buffer of the round — the bad
// payload and the not-yet-consumed remainder — is still returned to the
// pool (checked mode counts every Get against a Put).
func TestMalformedPayloadReleasesRound(t *testing.T) {
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	const tag = 31
	_, err := mp.Run(sim.Delta(2), func(proc *mp.Proc) error {
		if proc.Rank() == 1 {
			// Mimic one round of the protocol by hand, but ship an
			// odd-length payload to rank 0 (AllToAll copies parts, so a
			// plain slice is fine here).
			mp.ReleaseBuf(proc.AllReduceMax(tag, []float64{1}))
			for _, in := range proc.AllToAll(tag, [][]float64{{7, 8, 9}, nil}) {
				mp.ReleaseBuf(in)
			}
			return nil
		}
		disk := iosim.NewResilientDisk(iosim.NewMemFS(), proc.Config(), &proc.Stats().IO, nil)
		dm, err := dist.NewArray("m", dist.NewCollapsed(4), dist.NewBlock(4, 2))
		if err != nil {
			return err
		}
		src := sideFor(t, disk, dm, 0, valueAt)
		dst := sideFor(t, disk, dm, 0, nil)
		rerr := Redistribute(proc, src, dst, 16, tag, nil, Direct)
		if rerr == nil || !strings.Contains(rerr.Error(), "index/value pairs") {
			return fmt.Errorf("want malformed-payload failure, got %v", rerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Fatalf("arena leak on malformed-payload error: %+v", s)
	}
}
