package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/lu"
)

// CompiledRow compares the compiled pipeline (hpf -> compiler -> exec)
// against the hand-coded Figure 12 program at one configuration.
type CompiledRow struct {
	Procs        int
	Strategy     string
	CompiledSec  float64
	HandSec      float64
	CompiledReqs int64
	HandReqs     int64
	Match        bool
}

// CompiledResult is the end-to-end cross-check: the compiler's output
// must behave exactly like the paper's hand-written translation.
type CompiledResult struct {
	N    int
	Rows []CompiledRow
}

// Compiled runs the cross-check over the processor sweep.
func Compiled(p Params) (*CompiledResult, error) {
	p = p.withDefaults(512)
	res := &CompiledResult{N: p.N}
	for _, procs := range p.Procs {
		mach := p.Machine(procs)
		slab := slabForRatio(p.N, procs, 8)
		cres, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
			N: p.N, Procs: procs, MemElems: 2*slab + p.N,
			Policy: compiler.PolicyEven, Machine: mach,
		})
		if err != nil {
			return nil, err
		}
		a, _ := cres.Program.Array("a")
		b, _ := cres.Program.Array("b")
		c, _ := cres.Program.Array("c")
		out, err := exec.Run(cres.Program, mach, exec.Options{Phantom: !p.Real, Runtime: p.Opts})
		if err != nil {
			return nil, err
		}
		hand, err := gaxpy.RunRowSlab(mach, gaxpy.Config{
			N: p.N, SlabA: a.SlabElems, SlabB: b.SlabElems, SlabC: c.SlabElems,
			Phantom: !p.Real, Opts: p.Opts,
		})
		if err != nil {
			return nil, err
		}
		row := CompiledRow{
			Procs:        procs,
			Strategy:     cres.Program.Strategy,
			CompiledSec:  out.Stats.ElapsedSeconds(),
			HandSec:      hand.Stats.ElapsedSeconds(),
			CompiledReqs: out.Stats.TotalIO().Requests(),
			HandReqs:     hand.Stats.TotalIO().Requests(),
		}
		d := row.CompiledSec - row.HandSec
		row.Match = row.CompiledReqs == row.HandReqs && d < 1e-6 && d > -1e-6
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AllMatch reports whether the compiled pipeline matched the hand-coded
// translation at every configuration.
func (r *CompiledResult) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the cross-check table.
func (r *CompiledResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compiled pipeline vs hand-coded Figure 12 translation, %dx%d (slab ratio 1/8)\n", r.N, r.N)
	fmt.Fprintf(&b, "%-6s %-12s %14s %14s %12s %12s %s\n",
		"P", "strategy", "compiled", "hand-coded", "reqs(c)", "reqs(h)", "match")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-12s %13.2fs %13.2fs %12d %12d %v\n",
			row.Procs, row.Strategy, row.CompiledSec, row.HandSec,
			row.CompiledReqs, row.HandReqs, row.Match)
	}
	fmt.Fprintf(&b, "all match: %v\n", r.AllMatch())
	return b.String()
}

// ---------------------------------------------------------------------------

// LURow is one panel-width configuration of the LU sweep.
type LURow struct {
	PanelWidth int
	Panels     int
	PanelReads int64
	Seconds    float64
}

// LUResult is the out-of-core LU slab-size sweep: the Figure 10 effect on
// a second workload.
type LUResult struct {
	N, Procs int
	Rows     []LURow
}

// LU sweeps the panel width of the out-of-core LU factorization.
func LU(p Params) (*LUResult, error) {
	p = p.withDefaults(512)
	procs := p.Procs[0]
	n := p.N
	res := &LUResult{N: n, Procs: procs}
	for w := n / procs / 8; w <= n/procs; w *= 2 {
		if w < 1 {
			continue
		}
		r, err := lu.Run(p.Machine(procs), lu.Config{N: n, PanelWidth: w})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LURow{
			PanelWidth: w,
			Panels:     n / w,
			PanelReads: r.Stats.TotalIO().SlabReads,
			Seconds:    r.Stats.ElapsedSeconds(),
		})
	}
	return res, nil
}

// Format renders the sweep.
func (r *LUResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Out-of-core LU, %dx%d over %d processors: panel width sweep\n", r.N, r.N, r.Procs)
	fmt.Fprintf(&b, "%-12s %10s %14s %12s\n", "panel width", "panels", "panel reads", "sim time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12d %10d %14d %11.2fs\n", row.PanelWidth, row.Panels, row.PanelReads, row.Seconds)
	}
	return b.String()
}
