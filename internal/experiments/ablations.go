package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// AblationResult collects the design-choice studies of DESIGN.md §5:
// prefetching, data sieving, the memory allocation policies, and the
// machine-model sensitivity of the strategy choice.
type AblationResult struct {
	N, Procs int

	// Row-slab simulated seconds with runtime options toggled.
	Baseline, Prefetch, Sieve, SievePrefetch, WriteBehind, AllOpts float64

	// Requests/bytes moved for A under plain vs sieved row slabs.
	PlainRequests, SievedRequests int64
	PlainBytes, SievedBytes       int64

	// Compiler memory policies: estimated I/O seconds and chosen splits.
	PolicySeconds map[string]float64
	PolicySplits  map[string][2]int

	// Strategy selection on a Delta-like vs a modern machine: the
	// column/row estimated cost ratios.
	DeltaRatio, ModernRatio float64
}

// Ablations runs the design-choice studies at the given scale.
func Ablations(p Params) (*AblationResult, error) {
	p = p.withDefaults(512)
	procs := p.Procs[0]
	n := p.N
	mach := p.Machine(procs)
	slab := slabForRatio(n, procs, 8)
	res := &AblationResult{N: n, Procs: procs}

	runRow := func(opts oocarray.Options) (*gaxpy.Run, error) {
		return gaxpy.RunRowSlab(mach, gaxpy.Config{
			N: n, SlabA: slab, SlabB: slab, Phantom: !p.Real, Opts: opts,
		})
	}
	base, err := runRow(oocarray.Options{})
	if err != nil {
		return nil, err
	}
	res.Baseline = base.Stats.ElapsedSeconds()
	pre, err := runRow(oocarray.Options{Prefetch: true})
	if err != nil {
		return nil, err
	}
	res.Prefetch = pre.Stats.ElapsedSeconds()
	sieve, err := runRow(oocarray.Options{Sieve: true})
	if err != nil {
		return nil, err
	}
	res.Sieve = sieve.Stats.ElapsedSeconds()
	both, err := runRow(oocarray.Options{Sieve: true, Prefetch: true})
	if err != nil {
		return nil, err
	}
	res.SievePrefetch = both.Stats.ElapsedSeconds()
	wb, err := runRow(oocarray.Options{WriteBehind: true})
	if err != nil {
		return nil, err
	}
	res.WriteBehind = wb.Stats.ElapsedSeconds()
	all, err := runRow(oocarray.Options{Sieve: true, Prefetch: true, WriteBehind: true})
	if err != nil {
		return nil, err
	}
	res.AllOpts = all.Stats.ElapsedSeconds()

	bio, sio := base.MaxArrayIO(), sieve.MaxArrayIO()
	res.PlainRequests, res.SievedRequests = bio.A.ReadRequests, sio.A.ReadRequests
	res.PlainBytes, res.SievedBytes = bio.A.BytesRead, sio.A.BytesRead

	// Memory policies through the compiler.
	res.PolicySeconds = make(map[string]float64)
	res.PolicySplits = make(map[string][2]int)
	mem := 2 * slab
	for _, pol := range []compiler.MemPolicy{compiler.PolicyEven, compiler.PolicyWeighted, compiler.PolicySearch} {
		cres, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
			N: n, Procs: procs, MemElems: mem, Policy: pol, Machine: mach,
		})
		if err != nil {
			return nil, err
		}
		a, _ := cres.Program.Array("a")
		b, _ := cres.Program.Array("b")
		res.PolicySeconds[pol.String()] = cres.Candidates[cres.Chosen].Seconds(mach)
		res.PolicySplits[pol.String()] = [2]int{a.SlabElems, b.SlabElems}
	}

	// Machine sensitivity: how much the reorganization buys on the Delta
	// vs on a modern NVMe-class node.
	ratio := func(m sim.Config) (float64, error) {
		cres, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
			N: n, Procs: procs, MemElems: mem, Machine: m,
		})
		if err != nil {
			return 0, err
		}
		col := cres.Candidates[0].Seconds(m)
		row := cres.Candidates[1].Seconds(m)
		return col / row, nil
	}
	if res.DeltaRatio, err = ratio(sim.Delta(procs)); err != nil {
		return nil, err
	}
	if res.ModernRatio, err = ratio(sim.Modern(procs)); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders the ablation report.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations: row-slab GAXPY, %dx%d on %d processors (slab ratio 1/8)\n", r.N, r.N, r.Procs)
	fmt.Fprintf(&b, "  runtime options (simulated seconds):\n")
	fmt.Fprintf(&b, "    baseline          %10.2f\n", r.Baseline)
	fmt.Fprintf(&b, "    prefetch          %10.2f\n", r.Prefetch)
	fmt.Fprintf(&b, "    data sieving      %10.2f\n", r.Sieve)
	fmt.Fprintf(&b, "    sieve + prefetch  %10.2f\n", r.SievePrefetch)
	fmt.Fprintf(&b, "    write-behind      %10.2f\n", r.WriteBehind)
	fmt.Fprintf(&b, "    all three         %10.2f\n", r.AllOpts)
	fmt.Fprintf(&b, "  data sieving trade (array A): requests %d -> %d, bytes %d -> %d\n",
		r.PlainRequests, r.SievedRequests, r.PlainBytes, r.SievedBytes)
	fmt.Fprintf(&b, "  memory policies (estimated I/O seconds, slab A/B split in elements):\n")
	for _, pol := range []string{"even", "weighted", "search"} {
		s := r.PolicySplits[pol]
		fmt.Fprintf(&b, "    %-9s %10.2f  (%d / %d)\n", pol, r.PolicySeconds[pol], s[0], s[1])
	}
	fmt.Fprintf(&b, "  column/row estimated cost ratio: Delta %.1fx, modern NVMe node %.1fx\n",
		r.DeltaRatio, r.ModernRatio)
	return b.String()
}
