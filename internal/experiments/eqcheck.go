package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/gaxpy"
)

// EqCheckRow is one configuration's analytic-vs-measured comparison for
// array A, the dominant array of Section 4.1.
type EqCheckRow struct {
	N, P, Denom int
	Strategy    string
	// PredFetches/PredElems come from Equations 3-6; the Meas fields
	// from the tracing I/O layer during execution.
	PredFetches, MeasFetches int64
	PredElems, MeasElems     int64
	Match                    bool
}

// EqCheckResult is the full Equations 3-6 validation (experiment E4).
type EqCheckResult struct {
	Rows []EqCheckRow
}

// EqCheck sweeps (N, P, slab ratio) configurations, executes both
// translations, and checks the measured per-processor I/O counts for A
// against the closed forms.
func EqCheck(p Params) (*EqCheckResult, error) {
	p = p.withDefaults(512)
	res := &EqCheckResult{}
	for _, procs := range p.Procs {
		for _, denom := range p.Ratios {
			slab := slabForRatio(p.N, procs, denom)
			g := cost.GaxpyParams{N: p.N, P: procs, SlabA: slab, SlabB: slab, SlabC: slab}
			cfg := gaxpy.Config{N: p.N, SlabA: slab, SlabB: slab, SlabC: slab, Phantom: !p.Real}
			mach := p.Machine(procs)

			for _, v := range []struct {
				name string
				cand cost.Candidate
				run  func() (*gaxpy.Run, error)
			}{
				{"column-slab", cost.GaxpyColumnSlab(g), func() (*gaxpy.Run, error) { return gaxpy.RunColumnSlab(mach, cfg) }},
				{"row-slab", cost.GaxpyRowSlab(g), func() (*gaxpy.Run, error) { return gaxpy.RunRowSlab(mach, cfg) }},
			} {
				run, err := v.run()
				if err != nil {
					return nil, err
				}
				io := run.MaxArrayIO()
				elemSize := int64(mach.ElemSize)
				row := EqCheckRow{
					N: p.N, P: procs, Denom: denom, Strategy: v.name,
					PredFetches: v.cand.Streams[0].Fetches(),
					MeasFetches: io.A.SlabReads,
					PredElems:   v.cand.Streams[0].Elems(),
					MeasElems:   io.A.BytesRead / elemSize,
				}
				row.Match = row.PredFetches == row.MeasFetches && row.PredElems == row.MeasElems
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// AllMatch reports whether every configuration matched exactly.
func (r *EqCheckResult) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the validation table.
func (r *EqCheckResult) Format() string {
	var b strings.Builder
	b.WriteString("Equations 3-6 validation: per-processor I/O for array A, predicted (closed form) vs measured\n")
	fmt.Fprintf(&b, "%-6s %-4s %-6s %-12s %12s %12s %14s %14s %s\n",
		"N", "P", "ratio", "strategy", "pred fetch", "meas fetch", "pred elems", "meas elems", "match")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-4d %-6s %-12s %12d %12d %14d %14d %v\n",
			row.N, row.P, ratioLabel(row.Denom), row.Strategy,
			row.PredFetches, row.MeasFetches, row.PredElems, row.MeasElems, row.Match)
	}
	fmt.Fprintf(&b, "all match: %v\n", r.AllMatch())
	return b.String()
}
