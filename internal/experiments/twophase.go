package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/sim"
)

// The two-phase experiment (E9): out-of-core transpose compiled three
// ways — direct writes, sieved RMW writes, and two-phase collective
// staging — executed with real data movement under machine models that
// sweep the disk request overhead from the Delta's 15ms down to zero,
// plus the modern calibration. Per configuration it checks that
//
//   - all three methods produce bitwise identical destination files,
//   - the measured per-processor request counts equal the closed forms
//     of cost.TransposeCandidates exactly, and
//   - the cost model's unforced selection is the measured winner.
//
// The headline number is the direct/two-phase request ratio at the
// default Delta calibration, where request overhead dominates.

// twoPhaseMethods fixes the candidate order (matching
// cost.TransposeCandidates) and the Force strings that pin each one.
var twoPhaseMethods = []string{"direct", "sieved", "two-phase"}

// TwoPhaseRow is one (regime, method) execution.
type TwoPhaseRow struct {
	Regime   string
	Procs    int
	Overhead float64 // disk request overhead, seconds
	Method   string
	Seconds  float64
	// PredReqs is the candidate's closed-form per-processor request
	// count; MeasReqs the traced count (src + dst + scratch).
	PredReqs, MeasReqs int64
	Bitwise            bool // destination equals the reference transpose
	Exact              bool // PredReqs == MeasReqs
	Selected           bool // the cost model's unforced choice
	Fastest            bool // measured winner of the regime
}

// TwoPhaseResult is the full regime sweep.
type TwoPhaseResult struct {
	N, MemElems int
	Rows        []TwoPhaseRow
	// DirectOverTwoPhase is the request-count ratio at the first (default
	// Delta) regime — the order-of-magnitude reduction claim.
	DirectOverTwoPhase float64
}

// twoPhaseRegimes builds the request-overhead sweep: the Delta as
// calibrated, two cheaper-request variants, the bandwidth-bound limit
// (zero overhead, where direct's large sequential reads win back), and
// the modern machine.
func twoPhaseRegimes() []struct {
	name string
	mk   func(p int) sim.Config
} {
	scaled := func(f float64) func(p int) sim.Config {
		return func(p int) sim.Config {
			c := sim.Delta(p)
			c.DiskRequestOverhead *= f
			return c
		}
	}
	return []struct {
		name string
		mk   func(p int) sim.Config
	}{
		{"delta", sim.Delta},
		{"delta-o/100", scaled(0.01)},
		{"delta-o/1000", scaled(0.001)},
		{"delta-o=0", scaled(0)},
		{"modern", sim.Modern},
	}
}

// TwoPhase runs the sweep. Defaults: N=256 over 4 processors with a
// 16·N-element memory budget — small enough to execute with real data
// movement everywhere, large enough that the transpose is genuinely
// out of core (the budget holds 1/4 of one local array).
func TwoPhase(p Params) (*TwoPhaseResult, error) {
	if p.N == 0 {
		p.N = 256
	}
	if p.Procs == nil {
		p.Procs = []int{4}
	}
	n := p.N
	memElems := 16 * n
	res := &TwoPhaseResult{N: n, MemElems: memElems}

	fill := func(gi, gj int) float64 { return float64(gi*n + gj + 1) }
	want := matrix.New(n, n).Fill(func(i, j int) float64 { return fill(j, i) })

	for _, procs := range p.Procs {
		for _, regime := range twoPhaseRegimes() {
			mach := regime.mk(procs)

			// The unforced compile gives the cost model's selection and
			// the closed-form candidates in twoPhaseMethods order.
			free, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
				N: n, Procs: procs, MemElems: memElems, Machine: mach,
			})
			if err != nil {
				return nil, err
			}

			rows := make([]TwoPhaseRow, len(twoPhaseMethods))
			fastest := 0
			for mi, method := range twoPhaseMethods {
				cres, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
					N: n, Procs: procs, MemElems: memElems, Machine: mach, Force: method,
				})
				if err != nil {
					return nil, err
				}
				out, err := exec.Run(cres.Program, mach, exec.Options{
					Fill:    map[string]func(gi, gj int) float64{free.Analysis.Transpose.Src: fill},
					Runtime: p.Opts,
				})
				if err != nil {
					return nil, err
				}
				got, err := out.ReadArray(free.Analysis.Transpose.Dst)
				if err != nil {
					return nil, err
				}
				meas := out.MaxArrayIO(free.Analysis.Transpose.Src).Requests() +
					out.MaxArrayIO(free.Analysis.Transpose.Dst).Requests()
				out.Close()

				pred := cres.Candidates[mi].TotalRequests()
				rows[mi] = TwoPhaseRow{
					Regime:   regime.name,
					Procs:    procs,
					Overhead: mach.DiskRequestOverhead,
					Method:   method,
					Seconds:  out.Stats.ElapsedSeconds(),
					PredReqs: pred,
					MeasReqs: meas,
					Bitwise:  matrix.Equal(got, want),
					Exact:    pred == meas,
					Selected: mi == free.Chosen,
				}
				if rows[mi].Seconds < rows[fastest].Seconds {
					fastest = mi
				}
			}
			// Ties (within float noise) count as a win for the selection.
			min := rows[fastest].Seconds
			for mi := range rows {
				rows[mi].Fastest = rows[mi].Seconds <= min*(1+1e-9)+1e-12
			}
			res.Rows = append(res.Rows, rows...)
		}
	}

	if r := res.find(p.Procs[0], "delta"); r != nil {
		direct, two := r[0].MeasReqs, r[2].MeasReqs
		if two > 0 {
			res.DirectOverTwoPhase = float64(direct) / float64(two)
		}
	}
	return res, nil
}

// find returns the three method rows of one (procs, regime) cell.
func (r *TwoPhaseResult) find(procs int, regime string) []TwoPhaseRow {
	for i := 0; i+len(twoPhaseMethods) <= len(r.Rows); i += len(twoPhaseMethods) {
		if r.Rows[i].Procs == procs && r.Rows[i].Regime == regime {
			return r.Rows[i : i+len(twoPhaseMethods)]
		}
	}
	return nil
}

// AllBitwise reports whether every execution reproduced the reference
// transpose exactly.
func (r *TwoPhaseResult) AllBitwise() bool {
	for _, row := range r.Rows {
		if !row.Bitwise {
			return false
		}
	}
	return true
}

// AllExact reports whether every measured request count equals its
// closed form.
func (r *TwoPhaseResult) AllExact() bool {
	for _, row := range r.Rows {
		if !row.Exact {
			return false
		}
	}
	return true
}

// SelectionAgrees reports whether, in every regime, the cost model's
// choice is (one of) the measured fastest method(s).
func (r *TwoPhaseResult) SelectionAgrees() bool {
	for _, row := range r.Rows {
		if row.Selected && !row.Fastest {
			return false
		}
	}
	return true
}

// Format renders the sweep.
func (r *TwoPhaseResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-phase collective I/O: %dx%d out-of-core transpose, mem=%d elems, real execution\n",
		r.N, r.N, r.MemElems)
	fmt.Fprintf(&b, "%-14s %-4s %10s %-10s %10s %10s %10s %8s %6s %s\n",
		"regime", "P", "overhead", "method", "pred reqs", "meas reqs", "sim time", "bitwise", "exact", "")
	for _, row := range r.Rows {
		mark := ""
		if row.Selected {
			mark = " [selected]"
		}
		if row.Fastest {
			mark += " [fastest]"
		}
		fmt.Fprintf(&b, "%-14s %-4d %9.0fus %-10s %10d %10d %9.3fs %8v %6v%s\n",
			row.Regime, row.Procs, row.Overhead*1e6, row.Method,
			row.PredReqs, row.MeasReqs, row.Seconds, row.Bitwise, row.Exact, mark)
	}
	fmt.Fprintf(&b, "direct/two-phase request ratio at delta calibration: %.1fx (>=10x: %v)\n",
		r.DirectOverTwoPhase, r.DirectOverTwoPhase >= 10)
	fmt.Fprintf(&b, "all bitwise identical: %v, all counts exact: %v, selection matches measured winner: %v\n",
		r.AllBitwise(), r.AllExact(), r.SelectionAgrees())
	return b.String()
}

// CSV renders the sweep for plotting.
func (r *TwoPhaseResult) CSV() string {
	var b strings.Builder
	b.WriteString("regime,procs,overhead_us,method,pred_requests,meas_requests,seconds,selected,fastest\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%.1f,%s,%d,%d,%.6f,%v,%v\n",
			row.Regime, row.Procs, row.Overhead*1e6, row.Method,
			row.PredReqs, row.MeasReqs, row.Seconds, row.Selected, row.Fastest)
	}
	return b.String()
}
