package experiments

import (
	"math"
	"testing"
)

// TestPaperScaleCalibration locks in the reproduction quality at the
// paper's full scale: the column-slab and in-core times of Table 1 must
// stay within 16% of the published numbers (the worst cells are the
// middle ratios at high P, where the paper's own table is non-monotone), and the row-slab ordering
// must hold everywhere. Accounting-only mode keeps it fast; skipped with
// -short.
func TestPaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep; skipped with -short")
	}
	res, err := Table1(Params{}) // paper defaults: N=1024, P={4..64}, ratios {1/8..1}
	if err != nil {
		t.Fatal(err)
	}
	if !res.atPaperScale() {
		t.Fatal("default parameters should be the paper's scale")
	}
	relErr := func(got, want float64) float64 {
		return math.Abs(got-want) / want
	}
	for ri := range res.Ratios {
		for pi := range res.Procs {
			if e := relErr(res.Col[ri][pi], paperTable1Col[ri][pi]); e > 0.16 {
				t.Errorf("column-slab ratio %s P=%d: %.1f vs paper %.1f (%.0f%% off)",
					ratioLabel(res.Ratios[ri]), res.Procs[pi],
					res.Col[ri][pi], paperTable1Col[ri][pi], 100*e)
			}
			// Row-slab: the ordering and the direction of every trend
			// are the reproduction target (see EXPERIMENTS.md for why
			// the absolute values sit below the paper's at high P).
			if res.Row[ri][pi] >= res.Col[ri][pi] {
				t.Errorf("ratio %s P=%d: row-slab %.1f not below column-slab %.1f",
					ratioLabel(res.Ratios[ri]), res.Procs[pi], res.Row[ri][pi], res.Col[ri][pi])
			}
			if res.Row[ri][pi] > paperTable1Row[ri][pi] {
				t.Errorf("ratio %s P=%d: row-slab %.1f above the paper's %.1f (model should be conservative)",
					ratioLabel(res.Ratios[ri]), res.Procs[pi], res.Row[ri][pi], paperTable1Row[ri][pi])
			}
		}
	}
	for pi := range res.Procs {
		if e := relErr(res.InCore[pi], paperTable1InCore[pi]); e > 0.30 {
			t.Errorf("in-core P=%d: %.1f vs paper %.1f (%.0f%% off)",
				res.Procs[pi], res.InCore[pi], paperTable1InCore[pi], 100*e)
		}
	}
	// The headline: at P=4 the reorganization wins by roughly the
	// paper's factor (4.8x); require within [3.5, 7].
	factor := res.Col[0][0] / res.Row[0][0]
	if factor < 3.5 || factor > 7 {
		t.Errorf("P=4 ratio 1/8 reorganization factor = %.1fx, paper reports 4.4x", factor)
	}
}
