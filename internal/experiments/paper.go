// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 3.4 and Section 4.2): Figure 10 (slab-size effect
// on the column-slab translation), Table 1 (column vs row slab vs
// in-core), Table 2 (memory allocation between A and B), plus the
// Equations 3-6 validation and the ablations called out in DESIGN.md.
//
// Experiments run the hand-coded GAXPY variants (package gaxpy) on the
// simulated Delta machine, by default in accounting-only (phantom) mode,
// which package gaxpy's tests prove produces statistics identical to real
// execution.
package experiments

// Paper-reported numbers (seconds on the Intel Touchstone Delta), kept
// here so every generated table can print the paper's value next to the
// reproduction's. Index order follows paperProcs.
var (
	paperProcs  = []int{4, 16, 32, 64}
	paperRatios = []int{8, 4, 2, 1} // slab ratio denominators: 1/8 .. 1

	// paperTable1Col and paperTable1Row are Table 1, indexed
	// [ratioIdx][procIdx] with ratios ordered 1/8, 1/4, 1/2, 1.
	paperTable1Col = [][]float64{
		{1045.84, 897.59, 857.62, 803.57},
		{979.20, 864.08, 807.99, 783.79},
		{958.17, 802.69, 788.47, 698.29},
		{923.11, 714.15, 680.40, 620.70},
	}
	paperTable1Row = [][]float64{
		{239.97, 161.02, 97.08, 90.29},
		{226.08, 118.20, 92.43, 75.56},
		{205.91, 96.79, 80.45, 66.70},
		{194.15, 84.77, 66.94, 60.11},
	}
	paperTable1InCore = []float64{140.91, 40.40, 20.14, 9.58}

	// paperTable2 is Table 2 (2K x 2K, 16 processors): the slab-size
	// sweep values 256, 512, 1024, 2048 with the other array fixed at
	// 256.
	paperTable2Sizes  = []int{256, 512, 1024, 2048}
	paperTable2VaryB  = []float64{826.94, 548.13, 507.01, 493.04}
	paperTable2VaryA  = []float64{826.94, 510.02, 492.87, 452.29}
	paperTable2Procs  = 16
	paperTable2Extent = 2048
)
