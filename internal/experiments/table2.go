package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/gaxpy"
)

// Table2Result holds the reproduction of Table 2: the row-slab version's
// sensitivity to how memory is split between the slabs of A and B
// (2K x 2K arrays on 16 processors in the paper). Slab sizes are quoted,
// as in the paper, in "rows/columns" units: a slab size of s means
// s * (N/P) elements.
type Table2Result struct {
	N, Procs int
	Sizes    []int
	// VaryB[i] is the time with slab(A) fixed at Sizes[0] and slab(B) =
	// Sizes[i]; VaryA[i] the converse.
	VaryB, VaryA []float64
	// BestSplit reports the allocation the compiler's search policy
	// picks for the largest total-memory row, and its time.
	BestA, BestB int
	BestSeconds  float64
	EvenSeconds  float64 // even split of the same total memory
}

// Table2 regenerates Table 2.
func Table2(p Params) (*Table2Result, error) {
	p = p.withDefaults(paperTable2Extent)
	procs := paperTable2Procs
	if len(p.Procs) == 1 {
		procs = p.Procs[0]
	}
	n := p.N
	unit := n / procs // one "row/column" of slab memory, in elements
	sizes := append([]int(nil), paperTable2Sizes...)
	if n != paperTable2Extent {
		// Scale the sweep to the chosen extent: base size n/8 doubling
		// up to n, mirroring 256..2048 for n=2048.
		sizes = []int{n / 8, n / 4, n / 2, n}
	}
	res := &Table2Result{N: n, Procs: procs, Sizes: sizes}
	mach := p.Machine(procs)

	runRow := func(slabA, slabB int) (float64, error) {
		cfg := gaxpy.Config{
			N:     n,
			SlabA: slabA * unit,
			SlabB: slabB * unit,
			SlabC: sizes[0] * unit,
			Opts:  p.Opts, Phantom: !p.Real,
		}
		return runVariant("row-slab", mach, cfg)
	}

	fixed := sizes[0]
	for _, s := range sizes {
		t, err := runRow(fixed, s)
		if err != nil {
			return nil, err
		}
		res.VaryB = append(res.VaryB, t)
		t, err = runRow(s, fixed)
		if err != nil {
			return nil, err
		}
		res.VaryA = append(res.VaryA, t)
	}

	// The Section 4.2.1 policy check: for the largest total memory in
	// the sweep, compare an even split against the best split found.
	total := sizes[len(sizes)-1] + fixed
	even := total / 2
	var err error
	if res.EvenSeconds, err = runRow(even, total-even); err != nil {
		return nil, err
	}
	res.BestA, res.BestB = sizes[len(sizes)-1], fixed
	if res.BestSeconds, err = runRow(res.BestA, res.BestB); err != nil {
		return nil, err
	}
	return res, nil
}

// atPaperScale reports whether the paper's side-by-side columns apply.
func (r *Table2Result) atPaperScale() bool {
	return r.N == paperTable2Extent && r.Procs == paperTable2Procs && equalInts(r.Sizes, paperTable2Sizes)
}

// Format renders the table, paper values alongside at paper scale.
func (r *Table2Result) Format() string {
	var b strings.Builder
	paper := r.atPaperScale()
	fmt.Fprintf(&b, "Table 2: row-slab %dx%d on %d processors, slab sizes in rows/columns (simulated seconds)\n",
		r.N, r.N, r.Procs)
	if paper {
		b.WriteString("(reproduction / paper)\n")
	}
	fmt.Fprintf(&b, "%-10s %22s %22s %12s\n", "Slab size",
		fmt.Sprintf("slab A=%d, vary B", r.Sizes[0]),
		fmt.Sprintf("slab B=%d, vary A", r.Sizes[0]),
		"Total mem")
	for i, s := range r.Sizes {
		vb := fmt.Sprintf("%22.2f", r.VaryB[i])
		va := fmt.Sprintf("%22.2f", r.VaryA[i])
		if paper {
			vb = fmt.Sprintf("%12.1f/%9.1f", r.VaryB[i], paperTable2VaryB[i])
			va = fmt.Sprintf("%12.1f/%9.1f", r.VaryA[i], paperTable2VaryA[i])
		}
		fmt.Fprintf(&b, "%-10d %s %s %12d\n", s, vb, va, s+r.Sizes[0])
	}
	fmt.Fprintf(&b, "\nSection 4.2.1 check at total memory %d: A-heavy split (%d,%d) %.2fs vs even split %.2fs\n",
		r.BestA+r.BestB, r.BestA, r.BestB, r.BestSeconds, r.EvenSeconds)
	return b.String()
}

// CSV renders the sweep for plotting.
func (r *Table2Result) CSV() string {
	var b strings.Builder
	b.WriteString("sweep,slab_a,slab_b,seconds\n")
	for i, s := range r.Sizes {
		fmt.Fprintf(&b, "vary_b,%d,%d,%.3f\n", r.Sizes[0], s, r.VaryB[i])
		fmt.Fprintf(&b, "vary_a,%d,%d,%.3f\n", s, r.Sizes[0], r.VaryA[i])
	}
	return b.String()
}
