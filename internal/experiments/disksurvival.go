package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/sim"
)

// The disksurvival experiment: parity-protected runs losing an entire
// logical disk at swept injection points. For a compiled GAXPY (column
// slab) and an out-of-core transpose (two-phase collective I/O), a
// KindDiskLoss fault is scheduled at a sweep of per-file operation
// indices on one victim file; every injected run must complete with
// output bitwise identical to the fault-free run, and the sweep must
// surface reconstruction traffic in the counters. Two closed-form gates
// ride along: the fault-free protected GAXPY run's parity counters must
// equal cost.ParityForStream exactly, and the same disk loss without
// parity must fail the run instead of corrupting it.

// DiskSurvivalRow is one injected execution.
type DiskSurvivalRow struct {
	Program string // "gaxpy" or "transpose"
	Victim  string // the file whose disk is lost
	Op      int64  // per-file operation index of the injection
	Bitwise bool   // output equals the fault-free run
	// Recovery counters observed for the run.
	Reconstructions    int64
	ReconstructedBytes int64
	RecoveryMessages   int64
	ParityRebuilds     int64
	Degraded           bool
	Err                string // non-empty when the run failed
}

// DiskSurvivalResult is the full sweep plus the closed-form gates.
type DiskSurvivalResult struct {
	N, Procs int
	Rows     []DiskSurvivalRow
	// Pred/Meas compare the fault-free protected GAXPY run's parity
	// counters against the cost model's closed forms; ParityExact is
	// their field-by-field equality.
	Pred, Meas  cost.ParityOverhead
	ParityExact bool
	// UnprotectedFailed records that the same disk loss without parity
	// failed the run (with UnprotectedErr as evidence) instead of
	// completing on lost data.
	UnprotectedFailed bool
	UnprotectedErr    string
}

// survivalPolicy is the retry budget of the injected runs: small, so a
// permanent loss escalates to reconstruction quickly.
var survivalPolicy = iosim.RetryPolicy{MaxRetries: 3, BaseBackoff: 1e-3, MaxBackoff: 4e-3}

// survivalPoints spreads about count injection indices over [0, total).
func survivalPoints(total int64, count int64) []int64 {
	if total <= 0 {
		return nil
	}
	step := total / count
	if step < 1 {
		step = 1
	}
	var pts []int64
	for k := int64(0); k < total; k += step {
		pts = append(pts, k)
	}
	return pts
}

// DiskSurvival runs the sweep. Defaults: N=256 on 4 processors under the
// Delta calibration.
func DiskSurvival(p Params) (*DiskSurvivalResult, error) {
	n := p.N
	if n == 0 {
		n = 256
	}
	procs := 4
	if len(p.Procs) > 0 {
		procs = p.Procs[0]
	}
	machine := p.Machine
	if machine == nil {
		machine = sim.Delta
	}
	mach := machine(procs)
	res := &DiskSurvivalResult{N: n, Procs: procs}

	// ------------------------------------------------------------------
	// GAXPY, column-slab: the output array c is written as a stream of
	// contiguous full-height staging slabs, so the parity overhead has an
	// exact closed form.
	cres, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: procs, MemElems: 12 * n, Machine: mach, Force: "column-slab",
	})
	if err != nil {
		return nil, err
	}
	fills := map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}

	base, err := exec.Run(cres.Program, mach, exec.Options{Fill: fills, Runtime: p.Opts})
	if err != nil {
		return nil, err
	}
	want, err := base.ReadArray("c")
	if err != nil {
		return nil, err
	}
	base.Close()

	// Fault-free protected probe: measures the victim's operation count
	// for the injection sweep and checks the parity counters against the
	// closed form.
	victim := "c.p1.laf"
	probe := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{})
	pr, err := exec.Run(cres.Program, mach, exec.Options{
		FS: probe, Fill: fills, Runtime: p.Opts,
		Resilience: iosim.NewResilience(survivalPolicy), Parity: true,
	})
	if err != nil {
		return nil, fmt.Errorf("disksurvival: fault-free protected run: %w", err)
	}
	totalOps := probe.FileOps(victim)
	got, err := pr.ReadArray("c")
	if err != nil {
		return nil, err
	}
	if !matrix.Equal(got, want) {
		return nil, fmt.Errorf("disksurvival: fault-free protected run diverged from unprotected run")
	}
	io := pr.Stats.TotalIO()
	res.Meas = cost.ParityOverhead{
		Reads: io.ParityReads, Writes: io.ParityWrites,
		BytesRead: io.ParityBytesRead, BytesWritten: io.ParityBytesWritten,
	}
	res.Pred, err = gaxpyParityClosedForm(cres, mach, procs)
	if err != nil {
		return nil, err
	}
	res.ParityExact = res.Pred == res.Meas
	pr.Close()

	// Unprotected control: the same loss without parity must fail fast.
	uop := totalOps / 2
	uchaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: victim, Op: uop, Kind: iosim.KindDiskLoss}},
	})
	_, uerr := exec.Run(cres.Program, mach, exec.Options{
		FS: uchaos, Fill: fills, Runtime: p.Opts,
		Resilience: iosim.NewResilience(survivalPolicy),
	})
	res.UnprotectedFailed = uerr != nil
	if uerr != nil {
		res.UnprotectedErr = uerr.Error()
	}

	// The injection sweep.
	for _, k := range survivalPoints(totalOps, 8) {
		row := runSurvival("gaxpy", cres, mach, fills, "c", want, victim, k, p)
		res.Rows = append(res.Rows, row)
	}

	// ------------------------------------------------------------------
	// Transpose, two-phase collective I/O with an in-memory shuffle
	// window (ample memory budget, so no unprotected scratch files are in
	// the failure domain).
	tres, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
		N: n, Procs: procs, MemElems: n * n, Machine: mach, Force: "two-phase",
	})
	if err != nil {
		return nil, err
	}
	src, dst := tres.Analysis.Transpose.Src, tres.Analysis.Transpose.Dst
	tfill := func(gi, gj int) float64 { return float64(gi*n + gj + 1) }
	tfills := map[string]func(int, int) float64{src: tfill}

	tbase, err := exec.Run(tres.Program, mach, exec.Options{Fill: tfills, Runtime: p.Opts})
	if err != nil {
		return nil, err
	}
	wantT, err := tbase.ReadArray(dst)
	if err != nil {
		return nil, err
	}
	tbase.Close()

	tvictim := fmt.Sprintf("%s.p1.laf", dst)
	tprobe := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{})
	tpr, err := exec.Run(tres.Program, mach, exec.Options{
		FS: tprobe, Fill: tfills, Runtime: p.Opts,
		Resilience: iosim.NewResilience(survivalPolicy), Parity: true,
	})
	if err != nil {
		return nil, fmt.Errorf("disksurvival: fault-free protected transpose: %w", err)
	}
	totalT := tprobe.FileOps(tvictim)
	tpr.Close()

	for _, k := range survivalPoints(totalT, 6) {
		row := runSurvival("transpose", tres, mach, tfills, dst, wantT, tvictim, k, p)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// gaxpyParityClosedForm predicts the parity overhead of the column-slab
// GAXPY's write stream: each processor writes its whole local piece of c
// once, as contiguous slabs of (local rows x slab width) elements.
func gaxpyParityClosedForm(cres *compiler.Result, mach sim.Config, procs int) (cost.ParityOverhead, error) {
	spec, ok := cres.Program.Array("c")
	if !ok {
		return cost.ParityOverhead{}, fmt.Errorf("disksurvival: compiled GAXPY has no array c")
	}
	dm, err := spec.DistArray(procs)
	if err != nil {
		return cost.ParityOverhead{}, err
	}
	shape := dm.LocalShape(0)
	rows, cols := shape[0], shape[1]
	width := spec.SlabElems / rows
	if width < 1 {
		width = 1
	}
	if width > cols {
		width = cols
	}
	per := cost.ParityForStream(mach, procs, int64(rows*cols), int64(rows*width))
	return per.Scale(int64(procs)), nil
}

// runSurvival executes one injected run and collects its row.
func runSurvival(program string, cres *compiler.Result, mach sim.Config,
	fills map[string]func(int, int) float64, outArray string, want *matrix.Matrix,
	victim string, op int64, p Params) DiskSurvivalRow {

	row := DiskSurvivalRow{Program: program, Victim: victim, Op: op}
	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: victim, Op: op, Kind: iosim.KindDiskLoss}},
	})
	out, err := exec.Run(cres.Program, mach, exec.Options{
		FS: chaos, Fill: fills, Runtime: p.Opts,
		Resilience: iosim.NewResilience(survivalPolicy), Parity: true,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	if chaos.Counts().DiskLosses == 0 {
		row.Err = "scheduled disk loss never fired"
		return row
	}
	got, err := out.ReadArray(outArray)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Bitwise = matrix.Equal(got, want)
	io := out.Stats.TotalIO()
	row.Reconstructions = io.Reconstructions
	row.ReconstructedBytes = io.ReconstructedBytes
	row.ParityRebuilds = io.ParityRebuilds
	row.RecoveryMessages = out.Stats.TotalComm().RecoveryMessages
	if ps := out.ParityStore(); ps != nil {
		row.Degraded = ps.Degraded()
	}
	out.Close()
	return row
}

// AllBitwise reports whether every injected run completed with output
// bitwise identical to the fault-free run.
func (r *DiskSurvivalResult) AllBitwise() bool {
	for _, row := range r.Rows {
		if row.Err != "" || !row.Bitwise {
			return false
		}
	}
	return true
}

// Reconstructed reports whether the sweep for the named program surfaced
// reconstruction traffic (losses injected after a file's last access are
// repaired by the verification read outside the accounted run, so the
// presence gate is per sweep, not per row).
func (r *DiskSurvivalResult) Reconstructed(program string) bool {
	var recon, msgs int64
	for _, row := range r.Rows {
		if row.Program == program {
			recon += row.Reconstructions
			msgs += row.RecoveryMessages
		}
	}
	return recon > 0 && msgs > 0
}

// Gate returns an error describing the first violated acceptance
// property, or nil when the experiment passes.
func (r *DiskSurvivalResult) Gate() error {
	if !r.ParityExact {
		return fmt.Errorf("parity counters diverge from closed form: predicted %+v, measured %+v", r.Pred, r.Meas)
	}
	if !r.UnprotectedFailed {
		return fmt.Errorf("disk loss without parity completed instead of failing")
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			return fmt.Errorf("%s op %d: %s", row.Program, row.Op, row.Err)
		}
		if !row.Bitwise {
			return fmt.Errorf("%s op %d: output diverged from fault-free run", row.Program, row.Op)
		}
	}
	for _, program := range []string{"gaxpy", "transpose"} {
		if !r.Reconstructed(program) {
			return fmt.Errorf("%s sweep surfaced no reconstruction traffic", program)
		}
	}
	return nil
}

// Format renders the sweep.
func (r *DiskSurvivalResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Disk survival: %dx%d arrays on %d processors, one logical disk lost per run\n", r.N, r.N, r.Procs)
	fmt.Fprintf(&b, "%-10s %-12s %8s %8s %8s %10s %10s %8s %9s\n",
		"program", "victim", "op", "bitwise", "reconst", "rec bytes", "rec msgs", "rebuilds", "degraded")
	for _, row := range r.Rows {
		if row.Err != "" {
			fmt.Fprintf(&b, "%-10s %-12s %8d FAILED: %s\n", row.Program, row.Victim, row.Op, row.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %-12s %8d %8v %8d %10d %10d %8d %9v\n",
			row.Program, row.Victim, row.Op, row.Bitwise, row.Reconstructions,
			row.ReconstructedBytes, row.RecoveryMessages, row.ParityRebuilds, row.Degraded)
	}
	fmt.Fprintf(&b, "parity overhead closed form: predicted %d+%d reqs %d+%d bytes, measured %d+%d reqs %d+%d bytes, exact: %v\n",
		r.Pred.Reads, r.Pred.Writes, r.Pred.BytesRead, r.Pred.BytesWritten,
		r.Meas.Reads, r.Meas.Writes, r.Meas.BytesRead, r.Meas.BytesWritten, r.ParityExact)
	fmt.Fprintf(&b, "unprotected control failed as required: %v\n", r.UnprotectedFailed)
	fmt.Fprintf(&b, "all bitwise identical: %v, reconstruction traffic: gaxpy=%v transpose=%v\n",
		r.AllBitwise(), r.Reconstructed("gaxpy"), r.Reconstructed("transpose"))
	return b.String()
}

// CSV renders the sweep for plotting.
func (r *DiskSurvivalResult) CSV() string {
	var b strings.Builder
	b.WriteString("program,victim,op,bitwise,reconstructions,reconstructed_bytes,recovery_messages,parity_rebuilds,degraded,err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%v,%d,%d,%d,%d,%v,%s\n",
			row.Program, row.Victim, row.Op, row.Bitwise, row.Reconstructions,
			row.ReconstructedBytes, row.RecoveryMessages, row.ParityRebuilds, row.Degraded,
			strings.ReplaceAll(row.Err, ",", ";"))
	}
	return b.String()
}
