package experiments

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// Params configures an experiment sweep.
type Params struct {
	// N is the global matrix extent; 0 means the paper's value for that
	// experiment (1024 for Table 1 / Figure 10, 2048 for Table 2).
	N int
	// Procs are the processor counts; nil means {4, 16, 32, 64}.
	Procs []int
	// Ratios are slab-ratio denominators (8 means ratio 1/8); nil means
	// {8, 4, 2, 1}.
	Ratios []int
	// Real executes with real data movement and arithmetic instead of
	// accounting-only mode (slow at paper scale, identical statistics).
	Real bool
	// Machine builds the machine model per processor count; nil means
	// sim.Delta.
	Machine func(p int) sim.Config
	// Opts passes runtime options (sieving, prefetching) through to the
	// out-of-core arrays.
	Opts oocarray.Options
}

func (p Params) withDefaults(defaultN int) Params {
	if p.N == 0 {
		p.N = defaultN
	}
	if p.Procs == nil {
		p.Procs = append([]int(nil), paperProcs...)
	}
	if p.Ratios == nil {
		p.Ratios = append([]int(nil), paperRatios...)
	}
	if p.Machine == nil {
		p.Machine = sim.Delta
	}
	return p
}

// runVariant executes one GAXPY configuration and returns the simulated
// elapsed seconds.
func runVariant(variant string, mach sim.Config, cfg gaxpy.Config) (float64, error) {
	runner, ok := gaxpy.Variants[variant]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown variant %q", variant)
	}
	r, err := runner(mach, cfg)
	if err != nil {
		return 0, err
	}
	return r.Stats.ElapsedSeconds(), nil
}

// slabForRatio returns the slab size in elements for a 1/denominator
// ratio of the out-of-core local array.
func slabForRatio(n, p, denom int) int {
	ocla := n * n / p
	s := ocla / denom
	if s < n {
		s = n // never below one column
	}
	return s
}

// ---------------------------------------------------------------------------
// Table 1 / Figure 10

// Table1Result holds the reproduction of Table 1 (and its column-slab
// subset, Figure 10).
type Table1Result struct {
	N      int
	Procs  []int
	Ratios []int
	// Col, Row are seconds indexed [ratioIdx][procIdx]; InCore by
	// procIdx.
	Col, Row [][]float64
	InCore   []float64
}

// Table1 regenerates Table 1: column-slab and row-slab times across
// processor counts and slab ratios, plus the in-core reference.
func Table1(p Params) (*Table1Result, error) {
	p = p.withDefaults(1024)
	res := &Table1Result{N: p.N, Procs: p.Procs, Ratios: p.Ratios}
	for _, denom := range p.Ratios {
		colRow := make([]float64, len(p.Procs))
		rowRow := make([]float64, len(p.Procs))
		for pi, procs := range p.Procs {
			slab := slabForRatio(p.N, procs, denom)
			cfg := gaxpy.Config{N: p.N, SlabA: slab, SlabB: slab, Phantom: !p.Real, Opts: p.Opts}
			var err error
			if colRow[pi], err = runVariant("column-slab", p.Machine(procs), cfg); err != nil {
				return nil, err
			}
			if rowRow[pi], err = runVariant("row-slab", p.Machine(procs), cfg); err != nil {
				return nil, err
			}
		}
		res.Col = append(res.Col, colRow)
		res.Row = append(res.Row, rowRow)
	}
	res.InCore = make([]float64, len(p.Procs))
	for pi, procs := range p.Procs {
		ocla := p.N * p.N / procs
		cfg := gaxpy.Config{N: p.N, SlabA: ocla, SlabB: ocla, Phantom: !p.Real, Opts: p.Opts}
		var err error
		if res.InCore[pi], err = runVariant("in-core", p.Machine(procs), cfg); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// atPaperScale reports whether the run matches the paper's configuration,
// enabling the side-by-side paper columns.
func (r *Table1Result) atPaperScale() bool {
	return r.N == 1024 && equalInts(r.Procs, paperProcs) && equalInts(r.Ratios, paperRatios)
}

// Format renders the reproduction, with the paper's numbers alongside
// when the sweep matches the paper's configuration.
func (r *Table1Result) Format() string {
	var b strings.Builder
	paper := r.atPaperScale()
	fmt.Fprintf(&b, "Table 1: %dx%d GAXPY matrix multiplication, time in simulated seconds\n", r.N, r.N)
	if paper {
		b.WriteString("(reproduction / paper)\n")
	}
	fmt.Fprintf(&b, "%-10s", "SlabRatio")
	for _, p := range r.Procs {
		fmt.Fprintf(&b, " %14s %14s", fmt.Sprintf("col P=%d", p), fmt.Sprintf("row P=%d", p))
	}
	b.WriteString("\n")
	cell := func(mine float64, ref float64) string {
		if paper {
			return fmt.Sprintf("%7.1f/%6.1f", mine, ref)
		}
		return fmt.Sprintf("%14.2f", mine)
	}
	for ri, denom := range r.Ratios {
		fmt.Fprintf(&b, "%-10s", ratioLabel(denom))
		for pi := range r.Procs {
			var pc, pr float64
			if paper {
				pc, pr = paperTable1Col[ri][pi], paperTable1Row[ri][pi]
			}
			fmt.Fprintf(&b, " %s %s", cell(r.Col[ri][pi], pc), cell(r.Row[ri][pi], pr))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "in-core")
	for pi := range r.Procs {
		var ref float64
		if paper {
			ref = paperTable1InCore[pi]
		}
		fmt.Fprintf(&b, " %s %14s", cell(r.InCore[pi], ref), "")
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the result for plotting.
func (r *Table1Result) CSV() string {
	var b strings.Builder
	b.WriteString("variant,slab_ratio,procs,seconds\n")
	for ri, denom := range r.Ratios {
		for pi, p := range r.Procs {
			fmt.Fprintf(&b, "column-slab,%s,%d,%.3f\n", ratioLabel(denom), p, r.Col[ri][pi])
			fmt.Fprintf(&b, "row-slab,%s,%d,%.3f\n", ratioLabel(denom), p, r.Row[ri][pi])
		}
	}
	for pi, p := range r.Procs {
		fmt.Fprintf(&b, "in-core,,%d,%.3f\n", p, r.InCore[pi])
	}
	return b.String()
}

// Fig10Result is Figure 10: the column-slab sweep alone.
type Fig10Result struct {
	Table *Table1Result
}

// Fig10 regenerates Figure 10 (effect of slab size variation on the
// column-slab version).
func Fig10(p Params) (*Fig10Result, error) {
	t, err := Table1(p)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Table: t}, nil
}

// Format renders the figure's series: one line per slab ratio, one column
// per processor count.
func (f *Fig10Result) Format() string {
	r := f.Table
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: column-slab time vs processors, %dx%d arrays (simulated seconds)\n", r.N, r.N)
	fmt.Fprintf(&b, "%-12s", "SlabRatio")
	for _, p := range r.Procs {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("P=%d", p))
	}
	b.WriteString("\n")
	for ri, denom := range r.Ratios {
		fmt.Fprintf(&b, "%-12s", ratioLabel(denom))
		for pi := range r.Procs {
			fmt.Fprintf(&b, " %10.1f", r.Col[ri][pi])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func ratioLabel(denom int) string {
	if denom == 1 {
		return "1"
	}
	return fmt.Sprintf("1/%d", denom)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
