package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/cost"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// The ranksurvival experiment: fail-stop rank losses injected at swept
// operation indices, survived end to end. For three compiled kernels
// (GAXPY, two-phase transpose, and a column stencil), one rank is killed
// between two counted operations (messages and local array chunk I/O);
// the survivors detect the death via simulated-clock heartbeats, agree
// collectively on the failed set, and abort; the dead rank's logical
// disk is rebuilt offline from rotated parity; and the run resumes from
// its last two-slot checkpoint. Every injected run must finish with
// output bitwise identical to the failure-free run, both attempts' span
// timelines must reconcile exactly against their statistics, the
// detect/agree/respawn/reconstruct counters must be exact, and the
// rebuild seconds must equal the cost model's closed form to the digit.
// A control without checkpoint+parity protection must die instead.

// ranksurvivalStencil is a column stencil whose shifted references cross
// the BLOCK boundaries, compiled at the experiment's N.
const ranksurvivalStencil = `parameter (n=64, nprocs=4)
real x(n,n), z(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: x, z
FORALL (k=2:n-1)
  z(1:n,k) = (x(1:n,k-1) + 2*x(1:n,k) + x(1:n,k+1)) / 4
end FORALL
end
`

// RankSurvivalRow is one injected rank loss.
type RankSurvivalRow struct {
	Program string // "gaxpy", "transpose" or "stencil"
	Victim  int    // the killed rank
	Op      int64  // the victim's op index at which it dies
	Bitwise bool   // output equals the failure-free run
	// Recovery counters of the survived loss.
	Attempts        int
	Detections      int64
	Agreements      int64
	Respawns        int64
	Reconstructions int64
	RebuildSeconds  float64
	PredSeconds     float64 // the closed-form rebuild time for this victim
	RebuildExact    bool    // RebuildSeconds equals PredSeconds exactly
	Reconciled      bool    // both attempts' spans replay to their statistics
	Err             string
}

// RankSurvivalResult is the full sweep plus the unprotected control.
type RankSurvivalResult struct {
	N, Procs int
	Rows     []RankSurvivalRow
	// UnprotectedFailed records that the same kill without
	// checkpoint+parity failed the run instead of completing.
	UnprotectedFailed bool
	UnprotectedErr    string
}

// rankSurvivalDetector is the heartbeat detector of every injected run.
func rankSurvivalDetector() *mp.Detector {
	return &mp.Detector{Heartbeat: 1e-3, Misses: 3}
}

// rankKernel bundles one compiled kernel of the sweep.
type rankKernel struct {
	name  string
	cres  *compiler.Result
	fills map[string]func(int, int) float64
	out   string
	want  *matrix.Matrix
	// groups holds per array (in sorted base order, matching the rebuild
	// pre-pass) the per-rank file sizes, feeding the closed-form recovery
	// prediction. The rotated parity layout makes the prediction depend
	// on which rank dies, so it is computed per victim.
	groups [][]int64
}

// RankSurvival runs the sweep. Defaults: N=96 on 4 processors under the
// Delta calibration.
func RankSurvival(p Params) (*RankSurvivalResult, error) {
	n := p.N
	if n == 0 {
		n = 96
	}
	procs := 4
	if len(p.Procs) > 0 {
		procs = p.Procs[0]
	}
	machine := p.Machine
	if machine == nil {
		machine = sim.Delta
	}
	mach := machine(procs)
	res := &RankSurvivalResult{N: n, Procs: procs}

	tfill := func(gi, gj int) float64 { return float64(gi*n + gj + 1) }
	sfill := func(gi, gj int) float64 { return float64(4 * (gi%6 + 3*(gj%5))) }

	specs := []struct {
		name   string
		source string
		copts  compiler.Options
		fills  map[string]func(int, int) float64
		out    string // "" means take it from the transpose analysis
	}{
		{"gaxpy", hpf.GaxpySource,
			compiler.Options{N: n, Procs: procs, MemElems: 12 * n, Machine: mach, Force: "column-slab"},
			map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}, "c"},
		{"transpose", hpf.TransposeSource,
			compiler.Options{N: n, Procs: procs, MemElems: n * n, Machine: mach, Force: "two-phase"},
			nil, ""},
		{"stencil", ranksurvivalStencil,
			compiler.Options{N: n, Procs: procs, MemElems: 8 * n, Machine: mach},
			map[string]func(int, int) float64{"x": sfill}, "z"},
	}

	var kernels []rankKernel
	for _, sp := range specs {
		cres, err := compiler.CompileSource(sp.source, sp.copts)
		if err != nil {
			return nil, fmt.Errorf("ranksurvival: compile %s: %w", sp.name, err)
		}
		k := rankKernel{name: sp.name, cres: cres, fills: sp.fills, out: sp.out}
		if k.out == "" {
			src, dst := cres.Analysis.Transpose.Src, cres.Analysis.Transpose.Dst
			k.fills = map[string]func(int, int) float64{src: tfill}
			k.out = dst
		}
		base, err := exec.Run(cres.Program, mach, exec.Options{Fill: k.fills, Runtime: p.Opts})
		if err != nil {
			return nil, fmt.Errorf("ranksurvival: failure-free %s: %w", sp.name, err)
		}
		k.want, err = base.ReadArray(k.out)
		if err != nil {
			return nil, err
		}
		base.Close()
		kernels = append(kernels, k)
	}

	for ki := range kernels {
		k := &kernels[ki]
		// Probe the protected configuration's op space: the same
		// checkpoint+parity options the injected runs use, so the
		// counted op indices line up exactly.
		counts := make([]int64, procs)
		opts := rankSurvivalOptions(k, p)
		opts.OpCounts = counts
		probe, err := exec.Run(k.cres.Program, mach, opts)
		if err != nil {
			return nil, fmt.Errorf("ranksurvival: %s probe: %w", k.name, err)
		}
		probe.Close()

		k.groups, err = rankSurvivalGroups(k.cres, procs)
		if err != nil {
			return nil, err
		}

		// Sweep rank 1 across its op space, and kill every other rank
		// once at its midpoint, so each rank is lost at least once.
		for _, op := range survivalPoints(counts[1], 5) {
			res.Rows = append(res.Rows, runRankSurvival(k, mach, 1, op, p))
		}
		for r := 0; r < procs; r++ {
			if r == 1 {
				continue
			}
			res.Rows = append(res.Rows, runRankSurvival(k, mach, r, counts[r]/2, p))
		}
	}

	// The unprotected control: same kill, no checkpoint, no parity.
	g := kernels[0]
	_, uerr := exec.Run(g.cres.Program, mach, exec.Options{
		Fill: g.fills, Runtime: p.Opts,
		Kill:   []mp.KillSpec{{Rank: 1, Op: 40}},
		Detect: rankSurvivalDetector(),
	})
	res.UnprotectedFailed = uerr != nil
	if uerr != nil {
		res.UnprotectedErr = uerr.Error()
	}
	return res, nil
}

// rankSurvivalOptions is the protected configuration of one injected run.
func rankSurvivalOptions(k *rankKernel, p Params) exec.Options {
	return exec.Options{
		FS: iosim.NewMemFS(), Fill: k.fills, Runtime: p.Opts,
		Checkpoint: &exec.CheckpointSpec{Every: 1},
		Parity:     true,
		Resilience: iosim.NewResilience(survivalPolicy),
		Detect:     rankSurvivalDetector(),
	}
}

// rankSurvivalGroups lists, per protected array in sorted base order
// (matching the executor's rebuild pre-pass), the per-rank local file
// sizes — the input to the closed-form recovery prediction.
func rankSurvivalGroups(cres *compiler.Result, procs int) ([][]int64, error) {
	names := make([]string, 0, len(cres.Program.Arrays))
	for _, spec := range cres.Program.Arrays {
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	var groups [][]int64
	for _, name := range names {
		spec, _ := cres.Program.Array(name)
		dm, err := spec.DistArray(procs)
		if err != nil {
			return nil, err
		}
		sizes := make([]int64, procs)
		for r := 0; r < procs; r++ {
			sizes[r] = int64(dm.LocalElems(r)) * iosim.FileElemBytes
		}
		groups = append(groups, sizes)
	}
	return groups, nil
}

// runRankSurvival executes one injected loss and collects its row.
func runRankSurvival(k *rankKernel, mach sim.Config, victim int, op int64, p Params) RankSurvivalRow {
	row := RankSurvivalRow{Program: k.name, Victim: victim, Op: op}
	pred := cost.RecoveryForRank(mach, len(k.groups[0]), k.groups, victim, rankSurvivalDetector().Timeout())
	row.PredSeconds = pred.RebuildSeconds
	opts := rankSurvivalOptions(k, p)
	opts.Kill = []mp.KillSpec{{Rank: victim, Op: op}}
	opts.Trace = trace.NewTracer(k.cres.Program.Procs)
	out, err := exec.RunResilient(k.cres.Program, mach, opts, 1)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Attempts = out.Attempts
	if len(out.Recoveries) != 1 {
		row.Err = fmt.Sprintf("recoveries = %d, want 1", len(out.Recoveries))
		return row
	}
	rec := out.Recoveries[0]
	if len(rec.Failed) != 1 || rec.Failed[0] != victim {
		row.Err = fmt.Sprintf("agreed failed set %v, want [%d]", rec.Failed, victim)
		return row
	}
	ac := rec.Stats.TotalComm()
	row.Detections = ac.Detections
	row.Agreements = ac.Agreements
	row.Respawns = out.Stats.TotalComm().Respawns
	row.Reconstructions = rec.RebuildIO.Reconstructions
	row.RebuildSeconds = rec.RebuildSeconds
	row.RebuildExact = rec.RebuildSeconds == pred.RebuildSeconds
	aerr := trace.Reconcile(rec.Trace.Spans(), rec.Stats, rec.PerArray)
	serr := trace.Reconcile(out.Trace.Spans(), out.Stats, out.PerArray)
	row.Reconciled = aerr == nil && serr == nil
	if !row.Reconciled {
		row.Err = fmt.Sprintf("reconcile: aborted=%v success=%v", aerr, serr)
		return row
	}
	got, err := out.ReadArray(k.out)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Bitwise = matrix.Equal(got, k.want)
	out.Close()
	return row
}

// Gate returns an error describing the first violated acceptance
// property, or nil when the experiment passes.
func (r *RankSurvivalResult) Gate() error {
	if !r.UnprotectedFailed {
		return fmt.Errorf("rank loss without checkpoint+parity completed instead of failing")
	}
	perProgram := map[string]int{}
	detected := map[string]int{}
	for _, row := range r.Rows {
		if row.Err != "" {
			return fmt.Errorf("%s victim %d op %d: %s", row.Program, row.Victim, row.Op, row.Err)
		}
		if !row.Bitwise {
			return fmt.Errorf("%s victim %d op %d: output diverged from failure-free run", row.Program, row.Victim, row.Op)
		}
		if row.Attempts != 2 {
			return fmt.Errorf("%s victim %d op %d: attempts = %d, want 2", row.Program, row.Victim, row.Op, row.Attempts)
		}
		// A kill after the victim's last synchronization point is only
		// noticed at end-of-run join: no survivor blocks on the dead
		// rank, so no heartbeat detection or agreement round runs. Such
		// rows legitimately carry zero counters; when detection does
		// fire, agreement must follow.
		if row.Detections > 0 && row.Agreements == 0 {
			return fmt.Errorf("%s victim %d op %d: %d detections but no agreement round",
				row.Program, row.Victim, row.Op, row.Detections)
		}
		if row.Respawns != 1 {
			return fmt.Errorf("%s victim %d op %d: respawns = %d, want 1", row.Program, row.Victim, row.Op, row.Respawns)
		}
		if row.Reconstructions == 0 {
			return fmt.Errorf("%s victim %d op %d: no reconstruction recorded", row.Program, row.Victim, row.Op)
		}
		if !row.RebuildExact {
			return fmt.Errorf("%s victim %d op %d: rebuild seconds %v diverge from closed form %v",
				row.Program, row.Victim, row.Op, row.RebuildSeconds, row.PredSeconds)
		}
		if !row.Reconciled {
			return fmt.Errorf("%s victim %d op %d: spans do not reconcile", row.Program, row.Victim, row.Op)
		}
		perProgram[row.Program]++
		if row.Detections > 0 && row.Agreements > 0 {
			detected[row.Program]++
		}
	}
	for _, program := range []string{"gaxpy", "transpose", "stencil"} {
		if perProgram[program] == 0 {
			return fmt.Errorf("no %s rows in the sweep", program)
		}
		if detected[program] == 0 {
			return fmt.Errorf("no %s row exercised heartbeat detection and agreement", program)
		}
	}
	return nil
}

// Format renders the sweep.
func (r *RankSurvivalResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rank survival: %dx%d arrays on %d processors, one rank killed per run\n", r.N, r.N, r.Procs)
	fmt.Fprintf(&b, "%-10s %6s %8s %8s %7s %6s %8s %8s %12s %6s %9s\n",
		"program", "victim", "op", "bitwise", "detect", "agree", "respawn", "reconst", "rebuild s", "exact", "reconcile")
	for _, row := range r.Rows {
		if row.Err != "" {
			fmt.Fprintf(&b, "%-10s %6d %8d FAILED: %s\n", row.Program, row.Victim, row.Op, row.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %6d %8d %8v %7d %6d %8d %8d %12.6g %6v %9v\n",
			row.Program, row.Victim, row.Op, row.Bitwise, row.Detections, row.Agreements,
			row.Respawns, row.Reconstructions, row.RebuildSeconds, row.RebuildExact, row.Reconciled)
	}
	fmt.Fprintf(&b, "unprotected control failed as required: %v\n", r.UnprotectedFailed)
	return b.String()
}

// CSV renders the sweep for plotting.
func (r *RankSurvivalResult) CSV() string {
	var b strings.Builder
	b.WriteString("program,victim,op,bitwise,attempts,detections,agreements,respawns,reconstructions,rebuild_seconds,rebuild_exact,reconciled,err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%v,%d,%d,%d,%d,%d,%g,%v,%v,%s\n",
			row.Program, row.Victim, row.Op, row.Bitwise, row.Attempts, row.Detections,
			row.Agreements, row.Respawns, row.Reconstructions, row.RebuildSeconds,
			row.RebuildExact, row.Reconciled, strings.ReplaceAll(row.Err, ",", ";"))
	}
	return b.String()
}
