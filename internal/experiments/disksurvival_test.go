package experiments

import (
	"strings"
	"testing"
)

// TestDiskSurvivalSweep runs the disk-loss sweep at a reduced scale and
// asserts the acceptance gates: every injected run completes bitwise
// identical, reconstruction traffic shows up in the counters, the parity
// overhead of the fault-free protected run matches the closed form
// exactly, and the unprotected control fails.
func TestDiskSurvivalSweep(t *testing.T) {
	r, err := DiskSurvival(Params{N: 64, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if gerr := r.Gate(); gerr != nil {
		t.Fatalf("gate: %v\n%s", gerr, r.Format())
	}
	if len(r.Rows) < 6 {
		t.Fatalf("sweep too small: %d rows", len(r.Rows))
	}
	text := r.Format()
	for _, want := range []string{"gaxpy", "transpose", "closed form", "exact: true"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(r.CSV(), "program,victim,op") {
		t.Error("CSV header missing")
	}
}

// TestDiskSurvivalDefaultScale runs the experiment at its default N=256
// configuration — the scale the acceptance criteria name.
func TestDiskSurvivalDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale sweep is slow under -short")
	}
	r, err := DiskSurvival(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 256 || r.Procs != 4 {
		t.Fatalf("defaults wrong: N=%d procs=%d", r.N, r.Procs)
	}
	if gerr := r.Gate(); gerr != nil {
		t.Fatalf("gate: %v\n%s", gerr, r.Format())
	}
}
