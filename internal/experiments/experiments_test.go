package experiments

import (
	"strings"
	"testing"
)

// smallParams keeps test sweeps fast while preserving the shapes.
func smallParams() Params {
	return Params{N: 128, Procs: []int{4, 8}, Ratios: []int{4, 1}}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for ri := range res.Ratios {
		for pi := range res.Procs {
			col, row := res.Col[ri][pi], res.Row[ri][pi]
			if col <= row {
				t.Errorf("ratio %s P=%d: column-slab %.2f should exceed row-slab %.2f",
					ratioLabel(res.Ratios[ri]), res.Procs[pi], col, row)
			}
			// In-core never loses; it wins strictly whenever the
			// slab ratio forces re-reads (denominator > 1). At
			// ratio 1 the row-slab pattern reads each array once,
			// matching in-core in this model.
			if res.Ratios[ri] > 1 && res.InCore[pi] >= row {
				t.Errorf("P=%d ratio 1/%d: in-core %.2f should beat row-slab %.2f",
					res.Procs[pi], res.Ratios[ri], res.InCore[pi], row)
			}
			if res.InCore[pi] > row+1e-9 {
				t.Errorf("P=%d: in-core %.2f slower than row-slab %.2f",
					res.Procs[pi], res.InCore[pi], row)
			}
		}
	}
	// Smaller slab ratio (earlier row, denom 4) must not be faster than
	// ratio 1 (later row).
	for pi := range res.Procs {
		if res.Col[0][pi] < res.Col[1][pi] {
			t.Errorf("P=%d: column-slab ratio 1/4 (%.2f) faster than ratio 1 (%.2f)",
				res.Procs[pi], res.Col[0][pi], res.Col[1][pi])
		}
		if res.Row[0][pi] < res.Row[1][pi] {
			t.Errorf("P=%d: row-slab ratio 1/4 (%.2f) faster than ratio 1 (%.2f)",
				res.Procs[pi], res.Row[0][pi], res.Row[1][pi])
		}
	}
}

func TestTable1FormatAndCSV(t *testing.T) {
	res, err := Table1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Table 1", "128x128", "1/4", "in-core"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "variant,slab_ratio,procs,seconds\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	// 2 ratios * 2 procs * 2 variants + 2 in-core rows + header.
	if got := strings.Count(csv, "\n"); got != 11 {
		t.Errorf("CSV rows = %d, want 11", got)
	}
}

func TestFig10(t *testing.T) {
	res, err := Fig10(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "P=8") {
		t.Errorf("Fig10 format wrong:\n%s", out)
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(Params{N: 256, Procs: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	// Growing either slab must not hurt.
	for i := 1; i < len(res.Sizes); i++ {
		if res.VaryB[i] > res.VaryB[i-1]+1e-9 {
			t.Errorf("vary-B not monotone: %v", res.VaryB)
		}
		if res.VaryA[i] > res.VaryA[i-1]+1e-9 {
			t.Errorf("vary-A not monotone: %v", res.VaryA)
		}
	}
	// The Table 2 conclusion: growing A beats growing B at equal total.
	last := len(res.Sizes) - 1
	if res.VaryA[last] > res.VaryB[last] {
		t.Errorf("A-heavy %.2f should beat B-heavy %.2f", res.VaryA[last], res.VaryB[last])
	}
	// And the A-heavy split beats the even split of the same total.
	if res.BestSeconds > res.EvenSeconds {
		t.Errorf("A-heavy split %.2f should beat even split %.2f", res.BestSeconds, res.EvenSeconds)
	}
	out := res.Format()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "vary B") {
		t.Errorf("format wrong:\n%s", out)
	}
	if !strings.Contains(res.CSV(), "vary_b,") {
		t.Error("CSV missing sweep rows")
	}
}

func TestEqCheckAllMatch(t *testing.T) {
	res, err := EqCheck(Params{N: 128, Procs: []int{4, 8}, Ratios: []int{8, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMatch() {
		t.Fatalf("analytic formulas disagree with measurement:\n%s", res.Format())
	}
	if len(res.Rows) != 2*3*2 {
		t.Errorf("rows = %d, want 12", len(res.Rows))
	}
	if !strings.Contains(res.Format(), "all match: true") {
		t.Error("format should state all match")
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(Params{N: 128, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetch >= res.Baseline {
		t.Errorf("prefetch should overlap I/O: %.3f vs %.3f", res.Prefetch, res.Baseline)
	}
	if res.SievedRequests >= res.PlainRequests {
		t.Errorf("sieving should reduce requests: %d vs %d", res.SievedRequests, res.PlainRequests)
	}
	if res.SievedBytes <= res.PlainBytes {
		t.Errorf("sieving should move more bytes: %d vs %d", res.SievedBytes, res.PlainBytes)
	}
	if res.DeltaRatio <= 1 {
		t.Errorf("reorganization should win on Delta: ratio %.2f", res.DeltaRatio)
	}
	out := res.Format()
	for _, want := range []string{"prefetch", "sieving", "memory policies", "Delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation format missing %q:\n%s", want, out)
		}
	}
}

func TestPaperScaleLabels(t *testing.T) {
	// At paper scale the side-by-side columns appear. Use the real
	// configuration but do not run it — just check the predicate.
	r := &Table1Result{N: 1024, Procs: paperProcs, Ratios: paperRatios}
	if !r.atPaperScale() {
		t.Error("paper-scale predicate wrong")
	}
	r2 := &Table2Result{N: 2048, Procs: 16, Sizes: paperTable2Sizes}
	if !r2.atPaperScale() {
		t.Error("table 2 paper-scale predicate wrong")
	}
}

func TestRealModeSmall(t *testing.T) {
	// A tiny real-mode sweep exercises the non-phantom path end to end.
	p := Params{N: 32, Procs: []int{4}, Ratios: []int{2}, Real: true}
	if _, err := Table1(p); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledPipelineMatchesHandCoded(t *testing.T) {
	res, err := Compiled(Params{N: 128, Procs: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMatch() {
		t.Fatalf("compiled pipeline diverged:\n%s", res.Format())
	}
	for _, row := range res.Rows {
		if row.Strategy != "row-slab" {
			t.Errorf("P=%d strategy %s", row.Procs, row.Strategy)
		}
	}
	if !strings.Contains(res.Format(), "all match: true") {
		t.Error("format should report all match")
	}
}

func TestLUSweep(t *testing.T) {
	res, err := LU(Params{N: 64, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("too few rows: %+v", res.Rows)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PanelReads >= res.Rows[i-1].PanelReads {
			t.Errorf("panel reads should fall with wider panels: %+v", res.Rows)
		}
		if res.Rows[i].Seconds > res.Rows[i-1].Seconds+1e-9 {
			t.Errorf("time should fall with wider panels: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Format(), "panel width") {
		t.Error("format wrong")
	}
}
