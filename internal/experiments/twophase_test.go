package experiments

import (
	"strings"
	"testing"
)

// TestTwoPhaseSweep runs the full E9 sweep at its default (reduced)
// scale and asserts the three acceptance properties: bitwise identical
// results, exact closed-form request counts, and cost-model/measured
// winner agreement — plus the order-of-magnitude request reduction at
// the Delta calibration.
func TestTwoPhaseSweep(t *testing.T) {
	r, err := TwoPhase(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllBitwise() {
		t.Error("some execution diverged from the reference transpose")
	}
	if !r.AllExact() {
		for _, row := range r.Rows {
			if !row.Exact {
				t.Errorf("%s/%s: predicted %d requests, measured %d",
					row.Regime, row.Method, row.PredReqs, row.MeasReqs)
			}
		}
	}
	if !r.SelectionAgrees() {
		t.Error("cost model selection disagrees with the measured winner")
	}
	if r.DirectOverTwoPhase < 10 {
		t.Errorf("direct/two-phase request ratio = %.1f, want >= 10", r.DirectOverTwoPhase)
	}
	// Each of the three write strategies must win somewhere in the sweep:
	// the regimes are chosen to expose all the crossovers.
	winners := map[string]bool{}
	for _, row := range r.Rows {
		if row.Selected {
			winners[row.Method] = true
		}
	}
	for _, m := range twoPhaseMethods {
		if !winners[m] {
			t.Errorf("method %s never selected across the regimes", m)
		}
	}
	text := r.Format()
	for _, want := range []string{"two-phase", "delta-o=0", "request ratio"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(r.CSV(), "regime,procs") {
		t.Error("CSV header missing")
	}
}

// TestTwoPhaseSmallOverride checks the sweep honours Params overrides.
func TestTwoPhaseSmallOverride(t *testing.T) {
	r, err := TwoPhase(Params{N: 64, Procs: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 64 {
		t.Fatalf("N = %d", r.N)
	}
	if !r.AllBitwise() || !r.AllExact() {
		t.Fatalf("reduced run failed validation: bitwise=%v exact=%v", r.AllBitwise(), r.AllExact())
	}
}
