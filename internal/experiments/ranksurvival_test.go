package experiments

import (
	"strings"
	"testing"
)

// TestRankSurvivalSweep runs the rank-loss sweep at a reduced scale and
// asserts the acceptance gates: every injected run survives bitwise
// identical, the detect/agree/respawn/reconstruct counters are exact,
// the rebuild seconds match the cost model's closed form to the digit,
// both attempts' span timelines reconcile, and the unprotected control
// dies.
func TestRankSurvivalSweep(t *testing.T) {
	r, err := RankSurvival(Params{N: 48, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if gerr := r.Gate(); gerr != nil {
		t.Fatalf("gate: %v\n%s", gerr, r.Format())
	}
	// 3 kernels x (5-point sweep on rank 1 + one kill per other rank).
	if len(r.Rows) < 18 {
		t.Fatalf("sweep too small: %d rows\n%s", len(r.Rows), r.Format())
	}
	victims := map[int]bool{}
	for _, row := range r.Rows {
		victims[row.Victim] = true
	}
	for v := 0; v < 4; v++ {
		if !victims[v] {
			t.Errorf("rank %d never killed in the sweep", v)
		}
	}
	text := r.Format()
	for _, want := range []string{"gaxpy", "transpose", "stencil", "unprotected control failed as required: true"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(r.CSV(), "program,victim,op") {
		t.Error("CSV header missing")
	}
}

// TestRankSurvivalDefaultScale runs the experiment at its default N=96
// configuration — the scale the acceptance criteria name.
func TestRankSurvivalDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale sweep is slow under -short")
	}
	r, err := RankSurvival(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 96 || r.Procs != 4 {
		t.Fatalf("defaults wrong: N=%d procs=%d", r.N, r.Procs)
	}
	if gerr := r.Gate(); gerr != nil {
		t.Fatalf("gate: %v\n%s", gerr, r.Format())
	}
}
