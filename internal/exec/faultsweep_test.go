package exec

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
)

// sweepProgram compiles the small GAXPY instance used by the fault sweep.
func sweepProgram(t *testing.T) *compiler.Result {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 16, Procs: 2, MemElems: 100})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sweepFills() map[string]func(int, int) float64 {
	return map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}
}

// TestFaultSweepEveryOpIndex runs the program under a FaultFS failing at
// every operation index k = 0..K and asserts each run either completes
// with the correct result or fails with a clean error — never a hang
// (the test would time out) and never a corrupted success.
func TestFaultSweepEveryOpIndex(t *testing.T) {
	res := sweepProgram(t)
	mach := sim.Delta(res.Program.Procs)

	// Measure the fault-free operation count with an unlimited budget.
	probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
	out, err := Run(res.Program, mach, Options{FS: probe, Fill: sweepFills()})
	if err != nil {
		t.Fatal(err)
	}
	verifyC(t, out, res.Program.N)
	total := 1<<30 - probe.Remaining()
	if total < 100 {
		t.Fatalf("suspiciously few operations: %d", total)
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	failures := 0
	for k := 0; k <= total; k += step {
		mem := iosim.NewMemFS()
		fs := iosim.NewFaultFS(mem, k, nil)
		out, err := Run(res.Program, mach, Options{FS: fs, Fill: sweepFills()})
		if err != nil {
			failures++
			if !strings.Contains(err.Error(), "exec:") {
				t.Fatalf("k=%d: error lost the exec context: %v", k, err)
			}
			continue
		}
		// The budget sufficed; the result must still be fully correct.
		// Verify through the underlying store so the verification reads
		// don't themselves trip the exhausted fault budget.
		out.fs = mem
		verifyC(t, out, res.Program.N)
	}
	if failures == 0 {
		t.Fatal("the sweep never failed; the budget range is wrong")
	}
}

// TestFailedRunRemovesLocalArrayFiles fails a run with a single scheduled
// permanent fault (all other operations, including the cleanup removes,
// succeed) and asserts no local array files leak into the backing store.
func TestFailedRunRemovesLocalArrayFiles(t *testing.T) {
	res := sweepProgram(t)
	mach := sim.Delta(res.Program.Procs)
	mem := iosim.NewMemFS()
	fs := iosim.NewChaosFS(mem, iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: "a.p0.laf", Op: 40, Kind: iosim.KindPermanent}},
	})
	_, err := Run(res.Program, mach, Options{FS: fs, Fill: sweepFills()})
	if err == nil {
		t.Fatal("the scheduled fault should have failed the run")
	}
	if names := mem.Names(); len(names) != 0 {
		t.Fatalf("failed run leaked files: %v", names)
	}
}

// TestResultCloseRemovesFiles checks the success-path cleanup.
func TestResultCloseRemovesFiles(t *testing.T) {
	res := sweepProgram(t)
	mach := sim.Delta(res.Program.Procs)
	mem := iosim.NewMemFS()
	out, err := Run(res.Program, mach, Options{FS: mem, Fill: sweepFills()})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Names()) == 0 {
		t.Fatal("expected local array files before Close")
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if names := mem.Names(); len(names) != 0 {
		t.Fatalf("Close left files behind: %v", names)
	}
}
