package exec

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
)

// statsJSON renders a run's statistics snapshot; bitwise-identical runs
// produce byte-identical JSON (encoding/json float64 round-trips are
// exact).
func statsJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r.Stats.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// resumeStatsProgram compiles one of the crash-matrix programs.
func resumeStatsProgram(t *testing.T, source, force string) *compiler.Result {
	t.Helper()
	res, err := compiler.CompileSource(source,
		compiler.Options{N: 32, Procs: 4, MemElems: 300, Force: force})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResumeRestoreStatsBitwise: a checkpointed run cancelled at a
// deterministic mid-run commit boundary (CkptHook) and resumed with
// RestoreStats reports final statistics bitwise identical to the
// uninterrupted run — the property the serving layer's crash-restart
// gate builds on. Swept over crash epochs and over the GAXPY (loop
// checkpoints) and transpose (statement-boundary checkpoint) programs.
func TestResumeRestoreStatsBitwise(t *testing.T) {
	sources := map[string]string{"gaxpy": hpf.GaxpySource, "transpose": hpf.TransposeSource}
	for name, source := range sources {
		t.Run(name, func(t *testing.T) {
			res := resumeStatsProgram(t, source, "")
			mach := sim.Delta(res.Program.Procs)
			ckpt := &CheckpointSpec{Every: 2}

			// Uninterrupted reference run, counting committed epochs.
			epochs := 0
			ref, err := Run(res.Program, mach, Options{
				FS: iosim.NewMemFS(), Fill: sweepFills(), Checkpoint: ckpt,
				CkptHook: func(int) { epochs++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			want := statsJSON(t, ref)
			wantC, err := ref.ReadArray(res.Program.Arrays[len(res.Program.Arrays)-1].Name)
			if err != nil {
				t.Fatal(err)
			}
			if epochs == 0 {
				t.Fatal("reference run committed no checkpoints")
			}

			resumedSomewhere := false
			for crashAt := 0; crashAt < epochs; crashAt++ {
				mem := iosim.NewMemFS()
				ctx, cancel := context.WithCancel(context.Background())
				_, err := RunCtx(ctx, res.Program, mach, Options{
					FS: mem, Fill: sweepFills(), Checkpoint: ckpt,
					CkptHook: func(epoch int) {
						if epoch == crashAt {
							cancel()
						}
					},
				})
				cancel()
				if err == nil {
					// The cancel landed after the last node boundary; the
					// run completed. Nothing to resume.
					continue
				}
				out, err := ResumeCtx(context.Background(), res.Program, mach, Options{
					FS: mem, Fill: sweepFills(), Checkpoint: ckpt, RestoreStats: true,
				})
				if err != nil {
					t.Fatalf("crashAt=%d: resume: %v", crashAt, err)
				}
				resumedSomewhere = true
				if got := statsJSON(t, out); got != want {
					t.Fatalf("crashAt=%d: resumed stats diverged\n got %s\nwant %s", crashAt, got, want)
				}
				gotC, err := out.ReadArray(res.Program.Arrays[len(res.Program.Arrays)-1].Name)
				if err != nil {
					t.Fatalf("crashAt=%d: %v", crashAt, err)
				}
				if err := matricesIdentical(gotC, wantC); err != nil {
					t.Fatalf("crashAt=%d: resumed result diverged: %v", crashAt, err)
				}
			}
			if !resumedSomewhere {
				t.Fatal("no crash epoch exercised an actual resume")
			}
		})
	}
}

// TestResumeRestoreStatsTwice: two successive crashes (the second during
// the resumed run) still land on bitwise-identical final statistics —
// restarted servers can crash again.
func TestResumeRestoreStatsTwice(t *testing.T) {
	// column-slab checkpoints every SumStore iteration, giving the
	// epoch density a double crash needs.
	res := resumeStatsProgram(t, hpf.GaxpySource, "column-slab")
	mach := sim.Delta(res.Program.Procs)
	ckpt := &CheckpointSpec{Every: 1}

	epochs := 0
	ref, err := Run(res.Program, mach, Options{
		FS: iosim.NewMemFS(), Fill: sweepFills(), Checkpoint: ckpt,
		CkptHook: func(int) { epochs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := statsJSON(t, ref)
	if epochs < 4 {
		t.Fatalf("need at least 4 epochs for a double crash, have %d", epochs)
	}

	mem := iosim.NewMemFS()
	crash := func(at int, resume bool) error {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts := Options{
			FS: mem, Fill: sweepFills(), Checkpoint: ckpt, RestoreStats: true,
			CkptHook: func(epoch int) {
				if epoch == at {
					cancel()
				}
			},
		}
		var err error
		if resume {
			_, err = ResumeCtx(ctx, res.Program, mach, opts)
		} else {
			_, err = RunCtx(ctx, res.Program, mach, opts)
		}
		return err
	}
	if err := crash(1, false); err == nil {
		t.Fatal("first crash did not interrupt the run")
	}
	if err := crash(epochs-1, true); err == nil {
		t.Fatal("second crash did not interrupt the resumed run")
	}
	out, err := ResumeCtx(context.Background(), res.Program, mach, Options{
		FS: mem, Fill: sweepFills(), Checkpoint: ckpt, RestoreStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := statsJSON(t, out); got != want {
		t.Fatalf("double-crash resume diverged\n got %s\nwant %s", got, want)
	}
}
