package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// bcEquivScenario runs one compiled program twice — tree walk and
// bytecode — under identical options and demands bitwise-identical
// observable behavior.
type bcEquivScenario struct {
	name    string
	source  string
	copts   compiler.Options
	fills   map[string]func(int, int) float64
	options Options // Trace and Bytecode filled in per run
	outputs []string
	resume  string // "", "bc-resumes-tree", "tree-resumes-bc"
}

func bcEquivScenarios() []bcEquivScenario {
	transposeFill := map[string]func(int, int) float64{
		"a": func(gi, gj int) float64 { return float64(gi*64 + gj + 1) },
	}
	return []bcEquivScenario{
		{
			name:    "gaxpy/row-slab",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/column-slab/sieve",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			fills:   sweepFills(),
			options: Options{Runtime: oocarray.Options{Sieve: true}},
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/row-slab/prefetch-writebehind",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Runtime: oocarray.Options{Prefetch: true, WriteBehind: true}},
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/phantom",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			options: Options{Phantom: true},
		},
		{
			name:   "gaxpy/chaos-transient",
			source: hpf.GaxpySource,
			copts:  gaxpyScenarioOpts("row-slab"),
			fills:  sweepFills(),
			options: Options{
				FS:         nil, // fresh chaos FS per run, same seed
				Resilience: nil,
			},
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/parity",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			fills:   sweepFills(),
			options: Options{Parity: true},
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/checkpoint",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Checkpoint: &CheckpointSpec{Every: 1}},
			outputs: []string{"c"},
		},
		{
			name:    "gaxpy/tree-ckpt-bytecode-resume",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Checkpoint: &CheckpointSpec{Every: 1}},
			outputs: []string{"c"},
			resume:  "bc-resumes-tree",
		},
		{
			name:    "gaxpy/bytecode-ckpt-tree-resume",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Checkpoint: &CheckpointSpec{Every: 1}},
			outputs: []string{"c"},
			resume:  "tree-resumes-bc",
		},
		{
			name:    "stencil/shift-exchange",
			source:  shiftSource,
			copts:   compiler.Options{N: 32, Procs: 4, MemElems: 32 * 4},
			fills:   map[string]func(int, int) float64{"x": shiftFillX},
			outputs: []string{"z"},
		},
		{
			name:    "transpose/direct",
			source:  hpf.TransposeSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "direct"},
			fills:   transposeFill,
			outputs: []string{"b"},
		},
		{
			name:    "transpose/two-phase",
			source:  hpf.TransposeSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "two-phase"},
			fills:   transposeFill,
			outputs: []string{"b"},
		},
		{
			name:    "ewise/multi-statement",
			source:  hpf.EwiseSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 64 * 8},
			fills:   map[string]func(int, int) float64{"x": fillX, "y": fillY},
			outputs: []string{"w", "z"},
		},
	}
}

// scenarioOpts builds one run's Options, creating fresh per-run state
// (FS, tracer) so the two runs cannot share mutable state.
func (sc *bcEquivScenario) runOpts(procs int) Options {
	opts := sc.options
	opts.Fill = sc.fills
	opts.Trace = trace.NewTracer(procs)
	if sc.name == "gaxpy/chaos-transient" {
		opts.FS = transientChaosFS(1)
		opts.Resilience = retryResilience()
	}
	if opts.Parity {
		opts.Resilience = parityResilience()
	}
	return opts
}

// TestBytecodeMatchesTreeAcrossScenarios is the tentpole acceptance
// gate: for every kernel and fault mode, the compiled opcode stream and
// the plan-tree walk produce bitwise-identical simulated time, identical
// I/O statistics, bitwise-identical output arrays, and a span timeline
// that reconciles exactly. The bytecode path is an implementation swap,
// not a semantic one.
func TestBytecodeMatchesTreeAcrossScenarios(t *testing.T) {
	for _, sc := range bcEquivScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			res, err := compiler.CompileSource(sc.source, sc.copts)
			if err != nil {
				t.Fatal(err)
			}
			bc, err := bytecode.Compile(res.Program)
			if err != nil {
				t.Fatalf("bytecode compile: %v", err)
			}
			mach := sim.Delta(res.Program.Procs)

			var tree, bcout *Result
			switch sc.resume {
			case "":
				topts := sc.runOpts(res.Program.Procs)
				tree, err = Run(res.Program, mach, topts)
				if err != nil {
					t.Fatalf("tree run: %v", err)
				}
				if err := trace.Reconcile(topts.Trace.Spans(), tree.Stats, tree.PerArray); err != nil {
					t.Fatalf("tree spans do not reconcile:\n%v", err)
				}
				bopts := sc.runOpts(res.Program.Procs)
				bopts.Bytecode = bc
				bcout, err = Run(res.Program, mach, bopts)
				if err != nil {
					t.Fatalf("bytecode run: %v", err)
				}
				if err := trace.Reconcile(bopts.Trace.Spans(), bcout.Stats, bcout.PerArray); err != nil {
					t.Fatalf("bytecode spans do not reconcile:\n%v", err)
				}
				compareSpanShapes(t, topts.Trace.Spans(), bopts.Trace.Spans())
			case "bc-resumes-tree":
				tree = killAndResumeBC(t, res, mach, sc, nil, bc)
				bcout = killAndResumeBC(t, res, mach, sc, bc, bc)
			case "tree-resumes-bc":
				tree = killAndResumeBC(t, res, mach, sc, nil, nil)
				bcout = killAndResumeBC(t, res, mach, sc, bc, nil)
			}

			tt, bt := tree.Stats.ElapsedSeconds(), bcout.Stats.ElapsedSeconds()
			if tt != bt {
				t.Errorf("simulated time differs: tree %.12f vs bytecode %.12f", tt, bt)
			}
			tio, bio := tree.Stats.TotalIO(), bcout.Stats.TotalIO()
			if tio != bio {
				t.Errorf("I/O statistics differ:\ntree     %+v\nbytecode %+v", tio, bio)
			}
			for _, name := range sc.outputs {
				tm, err := tree.ReadArray(name)
				if err != nil {
					t.Fatal(err)
				}
				bm, err := bcout.ReadArray(name)
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(tm, bm) {
					t.Errorf("array %q differs between tree and bytecode", name)
				}
			}
		})
	}
}

// compareSpanShapes checks the two timelines are the same sequence of
// (kind, label, start, dur) — the bytecode run emits spans at exactly
// the tree walk's op boundaries.
func compareSpanShapes(t *testing.T, tree, bc []trace.Span) {
	t.Helper()
	if len(tree) != len(bc) {
		t.Errorf("span counts differ: tree %d vs bytecode %d", len(tree), len(bc))
		return
	}
	for i := range tree {
		a, b := tree[i], bc[i]
		if a.Kind != b.Kind || a.Label != b.Label || a.Start != b.Start || a.Dur != b.Dur || a.N != b.N {
			t.Errorf("span %d differs:\ntree     %+v\nbytecode %+v", i, a, b)
			return
		}
	}
}

// killAndResumeBC kills a checkpointed run mid-flight and resumes it,
// with independently selectable dispatch (tree or bytecode) for the
// initial run and the resume. Cross-dispatch resume proves the two
// engines write and read interchangeable checkpoints.
func killAndResumeBC(t *testing.T, res *compiler.Result, mach sim.Config, sc bcEquivScenario, runBC, resumeBC *bytecode.Program) *Result {
	t.Helper()
	probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
	probeOpts := sc.runOpts(res.Program.Procs)
	probeOpts.Trace = nil
	probeOpts.FS = probe
	probeOpts.Bytecode = runBC
	if _, err := Run(res.Program, mach, probeOpts); err != nil {
		t.Fatal(err)
	}
	total := 1<<30 - probe.Remaining()

	for k := total * 2 / 3; k >= 1; k-- {
		mem := iosim.NewMemFS()
		killOpts := sc.runOpts(res.Program.Procs)
		killOpts.Trace = nil
		killOpts.FS = iosim.NewFaultFS(mem, k, nil)
		killOpts.Bytecode = runBC
		if _, err := Run(res.Program, mach, killOpts); err == nil {
			continue // budget k sufficed; kill earlier
		}
		resumeOpts := sc.runOpts(res.Program.Procs)
		resumeOpts.FS = mem
		resumeOpts.Bytecode = resumeBC
		out, err := Resume(res.Program, mach, resumeOpts)
		if err != nil {
			continue // killed mid-commit or before the first checkpoint
		}
		if err := trace.Reconcile(resumeOpts.Trace.Spans(), out.Stats, out.PerArray); err != nil {
			t.Fatalf("resume spans do not reconcile:\n%v", err)
		}
		return out
	}
	t.Fatal("no kill point produced a resumable checkpoint")
	return nil
}

// TestBytecodeFingerprintMismatchRejected pins the cache-safety check: a
// bytecode program compiled from a different plan is refused before any
// array is touched.
func TestBytecodeFingerprintMismatchRejected(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	other, err := compiler.CompileSource(hpf.TransposeSource,
		compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(other.Program)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(res.Program, sim.Delta(4), Options{Bytecode: bc})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched bytecode must be rejected with a fingerprint error, got: %v", err)
	}
}

// TestBytecodeCancelledAtOpBoundary mirrors the tree walk's cancellation
// contract through the dispatch loop.
func TestBytecodeCancelledAtOpBoundary(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCtx(newCancelAfter(5), res.Program, sim.Delta(4), Options{Bytecode: bc})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled bytecode run must surface context.Canceled, got: %v", err)
	}
	if !strings.Contains(err.Error(), "cancelled at op boundary") {
		t.Fatalf("cancellation must happen at an op boundary, got: %v", err)
	}
}

// TestBytecodeRoundTripStillRuns executes a decoded stream — the persisted
// form a plan cache would hand back — and checks it behaves like the
// directly compiled one.
func TestBytecodeRoundTripStillRuns(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := bytecode.Decode(bytecode.Encode(bc))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Fill: sweepFills(), Bytecode: decoded}
	out, err := Run(res.Program, sim.Delta(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(res.Program, sim.Delta(4), Options{Fill: sweepFills(), Bytecode: bc})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := out.Stats.ElapsedSeconds(), direct.Stats.ElapsedSeconds(); a != b {
		t.Fatalf("decoded stream simulated %.12f, direct %.12f", a, b)
	}
	am, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	bm, err := direct.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(am, bm) {
		t.Fatal("decoded stream computed a different result")
	}
}

// plan.Fingerprint invariance under lowering: the bytecode program
// carries the plan's fingerprint verbatim, so a cache keyed on the plan
// fingerprint can serve either representation.
func TestBytecodeCarriesPlanFingerprint(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if want := plan.Fingerprint(res.Program, nil); bc.Fingerprint != want {
		t.Fatalf("bytecode fingerprint %s, plan fingerprint %s", bc.Fingerprint, want)
	}
}
