package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/parity"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Recovery records one survived fail-stop loss: the attempt that died,
// what it cost, and the offline rebuild that made the restart possible.
type Recovery struct {
	// Failed is the agreed set of ranks lost in the aborted attempt.
	Failed []int
	// Err is the attempt's failure (an *mp.RankFailure wrapping the typed
	// per-rank errors), kept for reporting.
	Err error
	// Stats and PerArray are the aborted attempt's statistics up to the
	// abort point; Trace is its span timeline when tracing was on. They
	// reconcile exactly (trace.Reconcile) like a completed run's do.
	Stats    *trace.Stats
	PerArray []map[string]*trace.IOStats
	Trace    *trace.Tracer
	// RebuildSeconds is the simulated time of the offline parity
	// reconstruction of the dead ranks' disks; RebuildIO holds the
	// reconstruction counters it charged.
	RebuildSeconds float64
	RebuildIO      trace.IOStats
}

// ResilientResult is a run that completed despite zero or more fail-stop
// rank losses.
type ResilientResult struct {
	*Result
	// Attempts counts executions of the program body (1 = no failure).
	Attempts int
	// Recoveries describes each survived loss, in order.
	Recoveries []Recovery
	// Trace is the successful attempt's tracer (nil unless Options.Trace
	// was set); aborted attempts' tracers live in Recoveries.
	Trace *trace.Tracer
}

// RunResilient executes the program, surviving up to maxRecoveries
// fail-stop rank losses. Each loss runs the full recovery pipeline: the
// survivors detect and agree on the failed set (Options.Detect), the run
// aborts, the dead ranks' local array files are reconstructed offline
// from rotated parity (Options.Parity), the dead ranks are respawned,
// and the program resumes from its last consistent checkpoint
// (Options.Checkpoint). The final arrays are bitwise identical to a
// failure-free run's.
//
// Options.Trace, when non-nil, acts as an enable flag: every attempt
// gets a fresh tracer so aborted and successful timelines stay separate
// (the caller's tracer itself is not used). Failures past maxRecoveries,
// non-failure errors, and losses without both Checkpoint and Parity
// configured are returned as errors, joined with any recovery context.
func RunResilient(p *plan.Program, mach sim.Config, opts Options, maxRecoveries int) (*ResilientResult, error) {
	return RunResilientCtx(context.Background(), p, mach, opts, maxRecoveries)
}

// RunResilientCtx is RunResilient under a context: cancellation stops
// the in-flight attempt at the next op boundary and also ends the
// recovery loop — a cancelled job must not rebuild disks and relaunch
// itself. The returned error wraps ctx.Err().
func RunResilientCtx(ctx context.Context, p *plan.Program, mach sim.Config, opts Options, maxRecoveries int) (*ResilientResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.FS == nil {
		// Recovery spans several runs over one backing store.
		opts.FS = iosim.NewMemFS()
	}
	traceOn := opts.Trace != nil
	rr := &ResilientResult{}
	respawned := []int(nil)
	var manifests []*ckptManifest
	for {
		if traceOn {
			// Fresh tracer per attempt, but one live stream for the whole
			// job: the new tracer adopts the previous one's sink state (the
			// caller's on attempt 1), so a streaming consumer sees every
			// attempt's spans and the caller's CloseSink drains them all.
			prev := opts.Trace
			opts.Trace = trace.NewTracer(p.Procs)
			opts.Trace.AdoptSink(prev)
		}
		rr.Attempts++
		res, err := run(ctx, p, mach, opts, manifests, respawned)
		if err == nil {
			rr.Result = res
			rr.Trace = opts.Trace
			return rr, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("exec: recovery abandoned: %w", errors.Join(cerr, err))
		}
		var rf *mp.RankFailure
		if !errors.As(err, &rf) || len(rf.Failed) == 0 {
			return nil, err
		}
		if opts.Checkpoint == nil || !opts.Parity {
			return nil, fmt.Errorf("exec: rank loss without checkpoint+parity protection is unrecoverable: %w", err)
		}
		if len(rr.Recoveries) >= maxRecoveries {
			return nil, fmt.Errorf("exec: recovery limit (%d) exceeded: %w", maxRecoveries, err)
		}
		rec := Recovery{Failed: rf.Failed, Err: err, Trace: opts.Trace}
		if res != nil {
			rec.Stats = res.Stats
			rec.PerArray = res.PerArray
		}
		sec, io, rerr := rebuildRanks(opts.FS, p, mach, opts, rf.Failed)
		rec.RebuildSeconds, rec.RebuildIO = sec, io
		rr.Recoveries = append(rr.Recoveries, rec)
		if rerr != nil {
			return nil, fmt.Errorf("exec: rebuilding ranks %v: %w", rf.Failed, errors.Join(rerr, err))
		}
		manifests, rerr = loadResumeManifests(opts.FS, opts.Checkpoint, p.Procs)
		if errors.Is(rerr, ErrNoCheckpoint) {
			// Killed before the first commit: nothing to resume from, so
			// the next attempt restarts from scratch (deterministic, so
			// still bitwise identical to the failure-free run).
			manifests, rerr = nil, nil
		}
		if rerr != nil {
			return nil, fmt.Errorf("exec: resuming after losing ranks %v: %w", rf.Failed, errors.Join(rerr, err))
		}
		opts.Kill = pruneFired(opts.Kill, err)
		respawned = rf.Failed
	}
}

// pruneFired drops kill-schedule entries that already fired (reported as
// *mp.RankKilledError in the attempt's error tree), so the respawned
// rank does not re-execute the same death. Remaining entries apply to
// the respawned rank's fresh op numbering — scheduling a second kill
// there injects a failure during recovery.
func pruneFired(kill []mp.KillSpec, err error) []mp.KillSpec {
	var fired []*mp.RankKilledError
	collectKilled(err, &fired)
	if len(fired) == 0 {
		return kill
	}
	out := kill[:0:0]
	for _, k := range kill {
		hit := false
		for _, f := range fired {
			if f.Rank == k.Rank && f.Op == k.Op {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, k)
		}
	}
	return out
}

// collectKilled walks the whole error tree (single and multi unwrap)
// accumulating every injected-kill leaf; errors.As stops at the first.
func collectKilled(err error, out *[]*mp.RankKilledError) {
	if err == nil {
		return
	}
	if rk, ok := err.(*mp.RankKilledError); ok {
		*out = append(*out, rk)
	}
	switch x := err.(type) {
	case interface{ Unwrap() []error }:
		for _, e := range x.Unwrap() {
			collectKilled(e, out)
		}
	case interface{ Unwrap() error }:
		collectKilled(x.Unwrap(), out)
	}
}

// rebuildRanks is the offline recovery pre-pass run between attempts: it
// mounts spare disks for the dead ranks and reconstructs every local
// array file they hosted from the surviving disks' data and parity, then
// recomputes the parity files the dead disks hosted. It works on a fresh
// parity store attached (trusted) to the surviving files: kills land
// only between operations, never inside a parity read-modify-write, so
// the on-disk parity is consistent with the on-disk data at every kill
// point. The returned seconds are the simulated reconstruction time and
// the IOStats carry the reconstruction counters.
func rebuildRanks(fs iosim.FS, p *plan.Program, mach sim.Config, opts Options, dead []int) (float64, trace.IOStats, error) {
	var io trace.IOStats
	st := parity.NewStore(fs, mach, p.Procs, opts.Resilience)
	st.SetPhantom(opts.Phantom)
	defer st.Detach()
	d := iosim.NewResilientDisk(fs, mach, &io, opts.Resilience)
	d.SetPhantom(opts.Phantom)

	// The failure domain is the whole logical disk: the dead ranks' data
	// files and hosted parity files are gone, whatever the backing store
	// still holds.
	for _, r := range dead {
		for _, spec := range p.Arrays {
			fs.Remove(fmt.Sprintf("%s.p%d.laf", spec.Name, r))
			fs.Remove(parity.ParityFileName(spec.Name, r))
		}
	}
	for _, spec := range p.Arrays {
		st.Protect(spec.Name)
		dm, err := spec.DistArray(p.Procs)
		if err != nil {
			return 0, io, err
		}
		for r := 0; r < p.Procs; r++ {
			st.Attach(fmt.Sprintf("%s.p%d.laf", spec.Name, r),
				int64(dm.LocalElems(r))*iosim.FileElemBytes)
		}
	}

	// Sorted base order, matching RebuildRank's own iteration and the
	// cost model's closed form, so the accumulated seconds reproduce.
	bases := make([]string, 0, len(p.Arrays))
	for _, spec := range p.Arrays {
		bases = append(bases, spec.Name)
	}
	sort.Strings(bases)

	var sec float64
	var errs []error
	for _, r := range dead {
		for _, base := range bases {
			name := fmt.Sprintf("%s.p%d.laf", base, r)
			rs, err := st.Recover(d, name, fmt.Errorf("rank %d fail-stop loss", r))
			sec += rs
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(errs) == 0 {
		// Recover flagged each dead rank's hosted parity file lost;
		// recompute them so the restart begins fully redundant.
		for _, r := range dead {
			rs, err := st.RebuildRank(d, r)
			sec += rs
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	io.Seconds += sec
	return sec, io, errors.Join(errs...)
}
