package exec

import (
	"errors"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
)

// parityResilience returns a fresh retry layer for the parity tests (a
// small budget: disk loss is permanent, retries must not mask it).
func parityResilience() *iosim.Resilience {
	return iosim.NewResilience(iosim.RetryPolicy{MaxRetries: 3, BaseBackoff: 1e-3, MaxBackoff: 4e-3})
}

// TestParityDiskLossRecovers: a GAXPY run that loses an entire logical
// disk mid-execution completes under parity protection, produces output
// bitwise identical to the fault-free run, and surfaces reconstruction
// traffic in the statistics. After Close no parity files remain.
func TestParityDiskLossRecovers(t *testing.T) {
	for _, force := range []string{"row-slab", "column-slab"} {
		t.Run(force, func(t *testing.T) {
			res := chaosProgram(t, force)
			want := baselineC(t, res)

			mem := iosim.NewMemFS()
			chaos := iosim.NewChaosFS(mem, iosim.ChaosConfig{
				Schedule: []iosim.ScheduledFault{{File: "c.p1.laf", Op: 3, Kind: iosim.KindDiskLoss}},
			})
			out, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{
				FS:         chaos,
				Fill:       sweepFills(),
				Resilience: parityResilience(),
				Parity:     true,
			})
			if err != nil {
				t.Fatalf("disk loss must be survived with parity enabled: %v", err)
			}
			if c := chaos.Counts(); c.DiskLosses == 0 {
				t.Fatalf("the chaos model lost no disk: %+v", c)
			}
			got, err := out.ReadArray("c")
			if err != nil {
				t.Fatal(err)
			}
			if err := matricesIdentical(got, want); err != nil {
				t.Fatalf("degraded run diverged from fault-free run: %v", err)
			}
			io := out.Stats.TotalIO()
			if io.Reconstructions == 0 || io.ReconstructedBlocks == 0 || io.ReconstructedBytes == 0 {
				t.Fatalf("reconstruction not surfaced in IOStats: %+v", io)
			}
			if io.ParityReads == 0 || io.ParityWrites == 0 {
				t.Fatalf("parity maintenance not surfaced in IOStats: %+v", io)
			}
			if comm := out.Stats.TotalComm(); comm.RecoveryMessages == 0 || comm.RecoveryBytes == 0 {
				t.Fatalf("reconstruction gather traffic not surfaced in CommStats: %+v", comm)
			}
			if ps := out.ParityStore(); ps == nil || !ps.Degraded() {
				t.Fatal("a run that reconstructed a disk must report Degraded")
			}
			if err := out.Close(); err != nil {
				t.Fatal(err)
			}
			for _, name := range mem.Names() {
				if strings.HasSuffix(name, ".parity") {
					t.Fatalf("Close left parity file %s behind", name)
				}
			}
		})
	}
}

// TestParityDisabledDiskLossFailsFast: the same disk loss without parity
// protection must fail the run, with the injected disk-loss fault visible
// in the error chain.
func TestParityDisabledDiskLossFailsFast(t *testing.T) {
	res := chaosProgram(t, "column-slab")
	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: "c.p1.laf", Op: 3, Kind: iosim.KindDiskLoss}},
	})
	_, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{
		FS:         chaos,
		Fill:       sweepFills(),
		Resilience: parityResilience(),
	})
	if err == nil {
		t.Fatal("disk loss without parity must fail the run")
	}
	if !errors.Is(err, iosim.ErrDiskLost) {
		t.Fatalf("error chain does not surface the disk loss: %v", err)
	}
}

// TestParityPhantomMatchesReal: a phantom (accounting-only) parity run
// reproduces the real run's parity counters and simulated time exactly.
func TestParityPhantomMatchesReal(t *testing.T) {
	res := chaosProgram(t, "column-slab")
	mach := sim.Delta(res.Program.Procs)

	real, err := Run(res.Program, mach, Options{Fill: sweepFills(), Parity: true})
	if err != nil {
		t.Fatal(err)
	}
	phantom, err := Run(res.Program, mach, Options{Parity: true, Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	ri, pi := real.Stats.TotalIO(), phantom.Stats.TotalIO()
	if ri.ParityReads != pi.ParityReads || ri.ParityWrites != pi.ParityWrites ||
		ri.ParityBytesRead != pi.ParityBytesRead || ri.ParityBytesWritten != pi.ParityBytesWritten {
		t.Fatalf("phantom parity counters diverge:\nreal    %+v\nphantom %+v", ri, pi)
	}
	if ri.Seconds != pi.Seconds {
		t.Fatalf("phantom parity time diverges: real %g phantom %g", ri.Seconds, pi.Seconds)
	}
}

// TestParityFaultFreeBitwiseAndOverheadOnly: with no faults injected, a
// parity-protected run changes only the parity counters (and the time
// they cost), not the result or the unprotected request accounting.
func TestParityFaultFreeBitwiseAndOverheadOnly(t *testing.T) {
	res := chaosProgram(t, "column-slab")
	want := baselineC(t, res)
	mach := sim.Delta(res.Program.Procs)

	out, err := Run(res.Program, mach, Options{Fill: sweepFills(), Parity: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := matricesIdentical(got, want); err != nil {
		t.Fatalf("parity-protected run diverged: %v", err)
	}
	if ps := out.ParityStore(); ps.Degraded() {
		t.Fatal("fault-free run must not be degraded")
	}

	plain, err := Run(res.Program, mach, Options{Fill: sweepFills()})
	if err != nil {
		t.Fatal(err)
	}
	oi, pi := out.Stats.TotalIO(), plain.Stats.TotalIO()
	if oi.Requests() != pi.Requests() || oi.Bytes() != pi.Bytes() {
		t.Fatalf("parity changed the unprotected accounting: %d/%d reqs, %d/%d bytes",
			oi.Requests(), pi.Requests(), oi.Bytes(), pi.Bytes())
	}
	if oi.ParityReads == 0 || oi.ParityWrites == 0 {
		t.Fatalf("no parity overhead recorded: %+v", oi)
	}
}

// TestRedistributeCrashResumeProperty (satellite): sweep kill points
// across an out-of-core transpose whose body is a single collective
// Redistribute. Every killed execution must either resume from the
// initial checkpoint to the bitwise-correct result or (if killed before
// that first commit) report ErrNoCheckpoint; and after Close the store
// holds no files — in particular no leaked two-phase scratch LAFs.
func TestRedistributeCrashResumeProperty(t *testing.T) {
	const n, memElems = 64, 16 * 64
	cres, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
		N: n, Procs: 4, MemElems: memElems, Force: "two-phase",
	})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := cres.Analysis.Transpose.Src, cres.Analysis.Transpose.Dst
	fill := func(gi, gj int) float64 { return float64(gi*n + gj + 1) }
	fills := map[string]func(int, int) float64{src: fill}
	mach := sim.Delta(cres.Program.Procs)
	ckpt := &CheckpointSpec{Every: 1}

	base, err := Run(cres.Program, mach, Options{Fill: fills})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.ReadArray(dst)
	if err != nil {
		t.Fatal(err)
	}

	probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
	if _, err := Run(cres.Program, mach, Options{FS: probe, Fill: fills, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	total := 1<<30 - probe.Remaining()

	step := total / 24
	if step < 1 {
		step = 1
	}
	resumed := 0
	for k := 1; k < total; k += step {
		mem := iosim.NewMemFS()
		killed := iosim.NewFaultFS(mem, k, nil)
		if _, err := Run(cres.Program, mach, Options{FS: killed, Fill: fills, Checkpoint: ckpt}); err == nil {
			continue // budget k happened to suffice
		}
		out, err := Resume(cres.Program, mach, Options{FS: mem, Fill: fills, Checkpoint: ckpt})
		if errors.Is(err, ErrNoCheckpoint) {
			continue // killed before the initial commit
		}
		if err != nil {
			t.Fatalf("k=%d: Resume failed: %v", k, err)
		}
		resumed++
		got, err := out.ReadArray(dst)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := matricesIdentical(got, want); err != nil {
			t.Fatalf("k=%d: resumed transpose diverged: %v", k, err)
		}
		if err := out.Close(); err != nil {
			t.Fatalf("k=%d: Close: %v", k, err)
		}
		for _, name := range mem.Names() {
			if strings.Contains(name, "collio.scratch") {
				t.Fatalf("k=%d: crash+resume leaked scratch file %s", k, name)
			}
		}
		if names := mem.Names(); len(names) != 0 {
			t.Fatalf("k=%d: Close left files behind: %v", k, names)
		}
	}
	if resumed == 0 {
		t.Fatal("no kill point exercised a mid-redistribute resume")
	}
}
