package exec

import (
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

func fillX(i, j int) float64 { return float64(i%9 + j%4) }
func fillY(i, j int) float64 { return float64(3*(i%5) - j%7) }

// The EwiseSource program computes z = 3x + y - 1 then w = z*x/2.
func wantZ(i, j int) float64 { return 3*fillX(i, j) + fillY(i, j) - 1 }
func wantW(i, j int) float64 { return wantZ(i, j) * fillX(i, j) / 2 }

func runEwiseProgram(t *testing.T, n, procs int, force string, phantom bool) *Result {
	t.Helper()
	res, err := compiler.CompileSource(hpf.EwiseSource, compiler.Options{
		N: n, Procs: procs, MemElems: n * 8, Force: force,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, sim.Delta(procs), Options{
		Phantom: phantom,
		Fill: map[string]func(int, int) float64{
			"x": fillX,
			"y": fillY,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEwiseExecutionCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{16, 2}, {32, 4}, {48, 4}} {
		out := runEwiseProgram(t, tc.n, tc.p, "", false)
		z, err := out.ReadArray("z")
		if err != nil {
			t.Fatal(err)
		}
		w, err := out.ReadArray("w")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < tc.n; j++ {
			for i := 0; i < tc.n; i++ {
				if z.At(i, j) != wantZ(i, j) {
					t.Fatalf("n=%d p=%d: z(%d,%d) = %g, want %g", tc.n, tc.p, i, j, z.At(i, j), wantZ(i, j))
				}
				if w.At(i, j) != wantW(i, j) {
					t.Fatalf("n=%d p=%d: w(%d,%d) = %g, want %g", tc.n, tc.p, i, j, w.At(i, j), wantW(i, j))
				}
			}
		}
	}
}

func TestEwiseRowSlabSameResult(t *testing.T) {
	col := runEwiseProgram(t, 32, 4, "column-slab", false)
	row := runEwiseProgram(t, 32, 4, "row-slab", false)
	wc, err := col.ReadArray("w")
	if err != nil {
		t.Fatal(err)
	}
	wr, err := row.ReadArray("w")
	if err != nil {
		t.Fatal(err)
	}
	for i := range wc.Data {
		if wc.Data[i] != wr.Data[i] {
			t.Fatal("strategies disagree on the result")
		}
	}
	// The forced row-slab plan must cost more simulated time (same data,
	// more requests).
	if row.Stats.ElapsedSeconds() <= col.Stats.ElapsedSeconds() {
		t.Errorf("row-slab %.3f should be slower than column-slab %.3f",
			row.Stats.ElapsedSeconds(), col.Stats.ElapsedSeconds())
	}
}

func TestEwisePhantomMatchesReal(t *testing.T) {
	real := runEwiseProgram(t, 32, 4, "", false)
	ph := runEwiseProgram(t, 32, 4, "", true)
	if r, p := real.Stats.TotalIO(), ph.Stats.TotalIO(); !ioStatsEqual(r, p) {
		t.Errorf("phantom IO differs: %+v vs %+v", p, r)
	}
	rt, pt := real.Stats.ElapsedSeconds(), ph.Stats.ElapsedSeconds()
	if d := rt - pt; d > 1e-9 || d < -1e-9 {
		t.Errorf("phantom elapsed %.6f vs real %.6f", pt, rt)
	}
}

func TestEwiseIOAccounting(t *testing.T) {
	// Every array is streamed exactly once per statement that touches
	// it: x twice (both statements), y once, z written once + read once,
	// w written once. Column slabs with MemElems=n*8 over 4 arrays give
	// 2-column slabs; per statement the loop runs localCols/2 times.
	const n, p = 32, 4
	out := runEwiseProgram(t, n, p, "", false)
	io := out.Stats.TotalIO()
	localCols := n / p
	slabsPerArray := int64(localCols / 2)
	// Reads: stmt1 (x, y) + stmt2 (z, x) = 4 array streams.
	if want := 4 * slabsPerArray * int64(p); io.SlabReads != want {
		t.Errorf("slab reads = %d, want %d", io.SlabReads, want)
	}
	// Writes: z and w once each.
	if want := 2 * slabsPerArray * int64(p); io.SlabWrites != want {
		t.Errorf("slab writes = %d, want %d", io.SlabWrites, want)
	}
	// Column slabs are contiguous: requests == slab transfers.
	if io.Requests() != io.SlabReads+io.SlabWrites {
		t.Errorf("requests = %d, transfers = %d", io.Requests(), io.SlabReads+io.SlabWrites)
	}
}

// TestCompiledCountsMatchEquations validates Equations 3-6 on the
// compiled pipeline (the hand-coded check lives in internal/gaxpy).
func TestCompiledCountsMatchEquations(t *testing.T) {
	const n, p, ratio = 128, 4, 8
	ocla := n * n / p
	slab := ocla / ratio
	// Pin the slab sizes by searching: force equal A/B splits via even
	// policy with exactly 2*slab + n memory.
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: p, MemElems: 2*slab + n, Policy: compiler.PolicyEven,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Program.Array("a")
	if a.SlabElems != slab {
		t.Fatalf("even policy gave slab %d, want %d", a.SlabElems, slab)
	}
	out, err := Run(res.Program, sim.Delta(p), Options{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	ioA := out.MaxArrayIO("a")
	elemSize := int64(sim.Delta(p).ElemSize)
	if want := int64(n) * int64(n) / (int64(slab) * int64(p)); ioA.SlabReads != want {
		t.Errorf("compiled row-slab T_fetch(A) = %d, eq5 wants %d", ioA.SlabReads, want)
	}
	if want := int64(n) * int64(n) / int64(p) * elemSize; ioA.BytesRead != want {
		t.Errorf("compiled row-slab T_data(A) = %d bytes, eq6 wants %d", ioA.BytesRead, want)
	}
	// B is re-read once per A slab.
	ioB := out.MaxArrayIO("b")
	if want := int64(ocla) * elemSize * int64(ratio); ioB.BytesRead != want {
		t.Errorf("compiled B bytes = %d, want %d", ioB.BytesRead, want)
	}
	// C written exactly once.
	ioC := out.MaxArrayIO("c")
	if want := int64(ocla) * elemSize; ioC.BytesWritten != want {
		t.Errorf("compiled C bytes = %d, want %d", ioC.BytesWritten, want)
	}
}

// gridEwiseSource distributes both array dimensions over a 2x2 processor
// grid (HPF "PROCESSORS pr(2,2)").
const gridEwiseSource = `parameter (n=16, pr1=2, pr2=2)
real x(n,n), y(n,n), z(n,n)
!hpf$ processors pr(pr1, pr2)
!hpf$ template d(n, n)
!hpf$ distribute d(block, block) on pr
!hpf$ align (:,:) with d :: x, y, z
FORALL (k=1:n)
  z(1:n,k) = 2*x(1:n,k) + y(1:n,k)
end FORALL
end
`

func TestEwiseOnProcessorGrid(t *testing.T) {
	res, err := compiler.CompileSource(gridEwiseSource, compiler.Options{MemElems: 16 * 12})
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if len(an.GridShape) != 2 || an.GridShape[0] != 2 || an.GridShape[1] != 2 {
		t.Fatalf("grid shape = %v", an.GridShape)
	}
	if an.Procs != 4 {
		t.Fatalf("procs = %d", an.Procs)
	}
	m := an.Mappings["x"]
	if m.Grid == nil || m.LocalShape(3)[0] != 8 || m.LocalShape(3)[1] != 8 {
		t.Fatalf("grid mapping wrong: %v shape %v", m.Grid, m.LocalShape(3))
	}
	out, err := Run(res.Program, sim.Delta(4), Options{
		Fill: map[string]func(int, int) float64{"x": fillX, "y": fillY},
	})
	if err != nil {
		t.Fatal(err)
	}
	z, err := out.ReadArray("z")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			if want := 2*fillX(i, j) + fillY(i, j); z.At(i, j) != want {
				t.Fatalf("grid z(%d,%d) = %g, want %g", i, j, z.At(i, j), want)
			}
		}
	}
}

func TestGaxpyRejectsProcessorGrid(t *testing.T) {
	src := strings.Replace(hpf.GaxpySource,
		"!hpf$ processors pr(nprocs)", "!hpf$ processors pr(2, 2)", 1)
	src = strings.Replace(src, "!hpf$ template d(n)", "!hpf$ template d(n, n)", 1)
	src = strings.Replace(src, "!hpf$ distribute d(block) on pr", "!hpf$ distribute d(block, block) on pr", 1)
	if _, err := compiler.CompileSource(src, compiler.Options{MemElems: 1 << 12}); err == nil {
		t.Error("GAXPY over a 2-D grid should be rejected (reduction pattern is 1-D)")
	}
}

func TestWriteBehindThroughRuntime(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 64, Procs: 4, MemElems: 600})
	if err != nil {
		t.Fatal(err)
	}
	fill := map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}
	plain, err := Run(res.Program, sim.Delta(4), Options{Fill: fill})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := Run(res.Program, sim.Delta(4), Options{Fill: fill,
		Runtime: oocarray.Options{WriteBehind: true}})
	if err != nil {
		t.Fatal(err)
	}
	if wb.Stats.ElapsedSeconds() >= plain.Stats.ElapsedSeconds() {
		t.Errorf("write-behind did not reduce simulated time: %.3f vs %.3f",
			wb.Stats.ElapsedSeconds(), plain.Stats.ElapsedSeconds())
	}
	a, err := plain.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := wb.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, b) {
		t.Error("write-behind changed the result")
	}
}
