// Package exec interprets compiled node programs (plan.Program) on the
// simulated distributed memory machine: P processor goroutines run the
// program's Body in SPMD style against their out-of-core local arrays,
// performing real file I/O, real message passing and real arithmetic
// while the simulated clocks accumulate the machine-model costs.
package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/parity"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// Options configures an execution.
type Options struct {
	// Fill provides initial values for input arrays by name; inputs
	// without an entry start zeroed.
	Fill map[string]func(gi, gj int) float64
	// Runtime passes data sieving / prefetching switches to the
	// out-of-core array runtime.
	Runtime oocarray.Options
	// Phantom executes in accounting-only mode (no file data movement,
	// no arithmetic; identical statistics).
	Phantom bool
	// FS is the backing store; nil means a fresh in-memory file system.
	FS iosim.FS
	// Trace, when non-nil, collects a timeline of typed spans — compute,
	// communication, I/O, retries, parity maintenance — across all
	// processors against the simulated clocks (see trace.Tracer). Spans
	// reconcile exactly with the run's statistics (trace.Reconcile).
	Trace *trace.Tracer
	// Resilience, when non-nil, routes all local array file I/O through
	// the retrying, checksum-verifying disk layer: transient faults are
	// retried with backoff charged to the simulated clocks, and checksum
	// mismatches on reads surface as detected (never silent) corruption.
	// Pass the same Resilience to a later Resume so the checksum store
	// survives the restart.
	Resilience *iosim.Resilience
	// Checkpoint, when non-nil, periodically commits a consistent global
	// checkpoint a failed run can restart from with Resume. It also
	// changes the error-path cleanup: the run's files are kept on disk so
	// the checkpoint stays usable.
	Checkpoint *CheckpointSpec
	// Parity protects every local array file with RAID-5-style rotated
	// XOR parity (internal/parity): a permanently failed or lost file is
	// reconstructed online from the surviving disks and the run finishes
	// in degraded mode, with full redundancy rebuilt before the run is
	// declared complete. Parity maintenance is charged to the simulated
	// clocks and surfaced in the Parity*/Reconstruct* statistics.
	Parity bool
	// Kill schedules injected fail-stop rank deaths: rank Rank stops
	// immediately before its Op'th counted operation (messages and local
	// array chunk I/O). Combine with Checkpoint and Parity under
	// RunResilient to survive the loss.
	Kill []mp.KillSpec
	// Detect enables simulated-clock heartbeat failure detection: an
	// operation blocked on a dead rank resolves to mp.ErrRankDead after
	// the heartbeat timeout and survivors agree on the failed set. Nil
	// leaves rank death to the closed-channel diagnostics (the run still
	// terminates, without typed errors or agreement).
	Detect *mp.Detector
	// StallTimeout overrides the deadlock watchdog's wall-clock quiet
	// period (see mp.Options.StallTimeout).
	StallTimeout time.Duration
	// OpCounts, when non-nil (len >= Procs), receives each rank's final
	// fail-stop operation count; probe runs use it to learn the op-index
	// space a kill schedule can target.
	OpCounts []int64
	// RestoreStats makes Resume restore each rank's simulated clock and
	// statistics counters from the checkpoint manifest and replay the
	// commit barrier, so a resumed run's final statistics are bitwise
	// identical to the uninterrupted run's. It changes nothing on fresh
	// runs, and falls back to plain resume semantics for manifests that
	// predate the stats snapshot.
	RestoreStats bool
	// CkptHook, when non-nil, runs on rank 0 immediately after each
	// checkpoint epoch commits (post-barrier) with the committed epoch
	// number. Chaos and test harnesses use it to crash, cancel or
	// observe a run at a deterministic mid-run boundary.
	CkptHook func(epoch int)
	// Bytecode, when non-nil, executes the program through its compiled
	// opcode stream (internal/bytecode) instead of walking the plan tree:
	// a tight fetch-decode loop over preresolved slots replaces the
	// per-node type switch and name lookups. The stream must have been
	// compiled from this exact program — the fingerprints are verified
	// before the run starts. Execution is semantically identical to the
	// tree walk down to the bit: same I/O, messages, float operation
	// order, checkpoint cursors and trace spans.
	Bytecode *bytecode.Program
}

// mpOptions maps the execution options onto the message-passing
// machine's fault configuration.
func (o Options) mpOptions() mp.Options {
	return mp.Options{Kill: o.Kill, Detect: o.Detect, StallTimeout: o.StallTimeout, OpCounts: o.OpCounts}
}

// failureActive reports whether any fail-stop machinery (kill schedule,
// detection, op counting) is configured; only then are the per-array
// disks' operation hooks installed, keeping plain runs at zero overhead.
func (o Options) failureActive() bool {
	return len(o.Kill) > 0 || o.Detect != nil || o.OpCounts != nil
}

// Result is a completed execution.
type Result struct {
	Stats   *trace.Stats
	Program *plan.Program
	// PerArray holds per-processor, per-array I/O statistics: indexed by
	// rank, then by array name. It lets the Equations 3-6 counts be
	// checked on compiled programs, not just the hand-coded baselines.
	PerArray []map[string]*trace.IOStats

	fs      iosim.FS
	mach    sim.Config
	phantom bool
	res     *iosim.Resilience
	ckpt    *CheckpointSpec
	pstore  *parity.Store
}

// ParityStore returns the run's parity store (nil when Options.Parity was
// off); callers use it to inspect degraded-mode state.
func (r *Result) ParityStore() *parity.Store { return r.pstore }

// Close removes the run's local array files (and checkpoint artifacts, if
// any) from the backing store. Call it when the result's file contents
// are no longer needed; ReadArray stops working afterwards. A non-nil
// error joins every checkpoint-GC failure that was not a missing file, so
// leaked stale snapshots are visible to the caller.
func (r *Result) Close() error {
	removeRunFiles(r.fs, r.Program)
	if r.pstore != nil {
		r.pstore.Close()
	}
	return removeCheckpointFiles(r.fs, r.Program, r.ckpt)
}

// removeRunFiles deletes every local array file the program creates,
// ignoring missing files (error-path and Close cleanup).
func removeRunFiles(fs iosim.FS, p *plan.Program) {
	for _, spec := range p.Arrays {
		for proc := 0; proc < p.Procs; proc++ {
			fs.Remove(fmt.Sprintf("%s.p%d.laf", spec.Name, proc))
		}
	}
}

// MaxArrayIO returns, for the named array, the elementwise maximum of the
// per-processor I/O statistics — the paper's per-processor metrics on a
// balanced program.
func (r *Result) MaxArrayIO(name string) trace.IOStats {
	s := trace.NewStats(len(r.PerArray))
	for i, m := range r.PerArray {
		if st := m[name]; st != nil {
			s.Procs[i].IO = *st
		}
	}
	return s.MaxIO()
}

// reduceTag is the tag used by SumStore reductions.
const reduceTag = 11

// redistTag is the tag used by collective redistributions.
const redistTag = 12

// parityTag is the tag used by the collective parity rebuild barriers.
const parityTag = 14

// Run executes the program on a machine with the program's processor
// count.
func Run(p *plan.Program, mach sim.Config, opts Options) (*Result, error) {
	return RunCtx(context.Background(), p, mach, opts)
}

// RunCtx is Run under a context: a cancelled or expired context stops
// every processor at its next plan-node boundary, the run unwinds like
// any other failed attempt (files removed unless checkpointed, slab
// buffers returned to the arena), and the returned error wraps
// ctx.Err(). The check is free on the plain path — context.Background's
// Err is a constant nil.
func RunCtx(ctx context.Context, p *plan.Program, mach sim.Config, opts Options) (*Result, error) {
	res, err := run(ctx, p, mach, opts, nil, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Resume restarts a killed or failed checkpointed run from its last
// globally consistent checkpoint. Options must name the original backing
// FS and the same CheckpointSpec; pass the original Resilience too so
// the checksum store carries over. It returns ErrNoCheckpoint (wrapped)
// when no complete checkpoint epoch exists.
func Resume(p *plan.Program, mach sim.Config, opts Options) (*Result, error) {
	return ResumeCtx(context.Background(), p, mach, opts)
}

// ResumeCtx is Resume under a context, with RunCtx's cancellation
// semantics. The serving layer uses it to resume journaled jobs that
// were RUNNING at crash time without losing per-job deadlines.
func ResumeCtx(ctx context.Context, p *plan.Program, mach sim.Config, opts Options) (*Result, error) {
	if opts.Checkpoint == nil {
		return nil, fmt.Errorf("exec: Resume requires Options.Checkpoint")
	}
	if opts.FS == nil {
		return nil, fmt.Errorf("exec: Resume requires the original Options.FS")
	}
	manifests, err := loadResumeManifests(opts.FS, opts.Checkpoint, p.Procs)
	if err != nil {
		return nil, err
	}
	res, err := run(ctx, p, mach, opts, manifests, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// run executes the program, optionally restarting every processor from
// its entry in resume (indexed by rank; nil means a fresh run).
// respawned lists ranks restarted after a fail-stop loss — they record a
// respawn instant at attempt start. On failure the partial Result (with
// the attempt's statistics) is returned alongside the error so the
// recovery loop can report and reconcile aborted attempts; the exported
// entry points discard it.
func run(ctx context.Context, p *plan.Program, mach sim.Config, opts Options, resume []*ckptManifest, respawned []int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Bytecode != nil {
		// Verify once, before any rank starts: a stream compiled from a
		// different program would execute the wrong access pattern
		// against this program's arrays.
		if fp := plan.Fingerprint(p, nil); fp != opts.Bytecode.Fingerprint {
			return nil, fmt.Errorf("exec: bytecode fingerprint %s does not match plan fingerprint %s",
				opts.Bytecode.Fingerprint, fp)
		}
	}
	mach.Procs = p.Procs
	fs := opts.FS
	if fs == nil {
		fs = iosim.NewMemFS()
	}
	var pstore *parity.Store
	if opts.Parity {
		pstore = parity.NewStore(fs, mach, p.Procs, opts.Resilience)
		pstore.SetPhantom(opts.Phantom)
		for _, spec := range p.Arrays {
			pstore.Protect(spec.Name)
		}
	}
	perArray := make([]map[string]*trace.IOStats, mach.Procs)
	stats, err := mp.RunOpts(mach, opts.mpOptions(), func(proc *mp.Proc) error {
		proc.SetTracer(opts.Trace.Rank(proc.Rank()))
		for _, r := range respawned {
			if r == proc.Rank() {
				// This rank was lost last attempt and has been respawned:
				// mark the restart so recovery counters reconcile.
				proc.Stats().Comm.Respawns++
				if tr := proc.Tracer(); tr != nil {
					tr.Emit(trace.Span{Kind: trace.KindRespawn, Start: proc.Clock().Seconds()})
				}
			}
		}
		if pstore != nil {
			pstore.SetCommSink(proc.Rank(), &proc.Stats().Comm)
		}
		var man *ckptManifest
		if resume != nil {
			man = resume[proc.Rank()]
		}
		in := newInterp(ctx, p, proc, fs, opts, pstore)
		perArray[proc.Rank()] = in.perArray
		// Runs last (defers are LIFO): whatever path the run leaves by —
		// success, cancellation, fault abort, plan-bug panic — the slab
		// buffers the interpreter still holds go back to the arena.
		defer in.releaseBufs()
		// Fold the per-array statistics into the processor total, in
		// sorted-key order so the float sums are reproducible (and match
		// the span replay's fold, which uses the same order). The success
		// path folds at the end of the body; an aborted rank (killed, or
		// unwinding on a peer's death) folds in this handler instead, so
		// even a failed attempt's spans and counters reconcile.
		folded := false
		fold := func() {
			if folded {
				return
			}
			folded = true
			io := &proc.Stats().IO
			names := make([]string, 0, len(in.perArray))
			for name := range in.perArray {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				io.Add(*in.perArray[name])
			}
		}
		defer func() {
			if proc.Aborted() {
				fold()
			}
		}()
		// A dead or aborting rank is fail-stop: it must not flush
		// write-behind buffers or touch its files during the unwind.
		defer func() {
			if !proc.Aborted() {
				in.close()
			}
		}()
		if err := in.initArrays(opts, man); err != nil {
			return err
		}
		startNode, startIter := 0, 0
		if man != nil {
			startNode, startIter = man.NodeIdx, man.Iter
		}
		if man != nil {
			// Resuming attaches to pre-existing local array files whose
			// parity may be stale (the crash can have interrupted a
			// read-modify-write); rebuild redundancy before computing.
			if err := in.paritySync(); err != nil {
				return err
			}
			if in.statsRestored {
				// The restored state is pre-commit-barrier; replay the
				// barrier so the clocks synchronize exactly as the
				// original run's did at this epoch's commit.
				proc.Barrier(ckptTag)
			}
		}
		if opts.Bytecode != nil {
			if err := in.runBytecode(opts.Bytecode, startNode, startIter); err != nil {
				return err
			}
		} else if err := in.runTop(p.Body, startNode, startIter); err != nil {
			return err
		}
		// A degraded run (lost parity during a fault) must restore full
		// redundancy before the run is declared complete.
		if err := in.paritySync(); err != nil {
			return err
		}
		fold()
		return nil
	})
	res := &Result{Stats: stats, Program: p, PerArray: perArray, fs: fs, mach: mach,
		phantom: opts.Phantom, res: opts.Resilience, ckpt: opts.Checkpoint, pstore: pstore}
	if err != nil {
		// Without a checkpoint there is nothing to resume from, so a
		// failed run must not leave local array files behind; with one,
		// the files (and the parity protecting them) are the restart
		// state: keep them, releasing only the store's cached handles.
		if opts.Checkpoint == nil {
			removeRunFiles(fs, p)
			if pstore != nil {
				pstore.Close()
			}
		} else if pstore != nil {
			pstore.Detach()
		}
		return res, fmt.Errorf("exec: %w", err)
	}
	return res, nil
}

// ReadArray assembles the named array's global contents from the local
// array files (verification helper; unaccounted).
func (r *Result) ReadArray(name string) (*matrix.Matrix, error) {
	if r.phantom {
		return nil, fmt.Errorf("exec: cannot read arrays from a phantom run")
	}
	spec, ok := r.Program.Array(name)
	if !ok {
		return nil, fmt.Errorf("exec: unknown array %q", name)
	}
	dm, err := spec.DistArray(r.Program.Procs)
	if err != nil {
		return nil, err
	}
	out := matrix.New(spec.Rows, spec.Cols)
	for proc := 0; proc < r.Program.Procs; proc++ {
		disk := iosim.NewResilientDisk(r.fs, r.mach, nil, r.res)
		if r.pstore != nil {
			disk.SetParity(r.pstore)
		}
		laf, err := disk.OpenLAF(fmt.Sprintf("%s.p%d.laf", name, proc), int64(dm.LocalElems(proc)))
		if err != nil {
			return nil, err
		}
		data, _, err := laf.ReadAll()
		laf.Close()
		if err != nil {
			return nil, err
		}
		shape := dm.LocalShape(proc)
		rows, cols := shape[0], shape[1]
		for lj := 0; lj < cols; lj++ {
			gj := dm.Dims[1].ToGlobal(dm.ProcCoord(proc, 1), lj)
			for li := 0; li < rows; li++ {
				gi := dm.Dims[0].ToGlobal(dm.ProcCoord(proc, 0), li)
				out.Set(gi, gj, data[lj*rows+li])
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Interpreter

type interp struct {
	ctx     context.Context
	prog    *plan.Program
	proc    *mp.Proc
	phantom bool
	fs      iosim.FS
	res     *iosim.Resilience
	pstore  *parity.Store

	// ckptSpec/ckptEpoch drive checkpointing; ckptSpec is nil when
	// checkpointing is off. ckptHook observes committed epochs on rank 0;
	// restoreStats requests exact clock/counter restoration on resume and
	// statsRestored records that it actually happened (the manifest
	// carried a stats snapshot).
	ckptSpec      *CheckpointSpec
	ckptEpoch     int
	ckptHook      func(epoch int)
	restoreStats  bool
	statsRestored bool

	arrays    map[string]*oocarray.Array
	slabbings map[string]oocarray.Slabbing
	vars      map[string]int
	bufs      map[string]*oocarray.ICLA
	vecs      map[string][]float64

	// staging holds each output array's current staging buffer; autoIdx
	// tracks the counter-driven slab index for AutoStage arrays (-1 when
	// none is active).
	staging map[string]*oocarray.ICLA
	auto    map[string]bool
	autoIdx map[string]int

	// counter is the implicit global column counter of SumStore.
	counter int

	// readers caches a SlabReader per Stream-marked ReadSlab node, so
	// sequential scans can be prefetched; readerNext tracks the slab
	// index each reader will deliver.
	readers    map[*plan.ReadSlab]*oocarray.SlabReader
	readerNext map[*plan.ReadSlab]int

	// perArray attributes I/O statistics to individual arrays.
	perArray map[string]*trace.IOStats

	// writers holds per-array write-behind pipelines when
	// Options.Runtime.WriteBehind is set.
	writers map[string]*oocarray.SlabWriter

	// bce is the bytecode executor when the run dispatches through a
	// compiled opcode stream (Options.Bytecode); releaseBufs drains its
	// slot tables alongside the interpreter's maps.
	bce *bcExec
}

// newInterp builds the interpreter shell; initArrays creates the arrays.
// The split lets the node closure register the per-array statistics map
// before any I/O happens, so even a rank killed during array fill leaves
// reconcilable statistics behind.
func newInterp(ctx context.Context, p *plan.Program, proc *mp.Proc, fs iosim.FS, opts Options, pstore *parity.Store) *interp {
	return &interp{
		ctx:          ctx,
		prog:         p,
		proc:         proc,
		phantom:      opts.Phantom,
		fs:           fs,
		res:          opts.Resilience,
		pstore:       pstore,
		ckptSpec:     opts.Checkpoint,
		ckptHook:     opts.CkptHook,
		restoreStats: opts.RestoreStats,
		arrays:       make(map[string]*oocarray.Array),
		slabbings:    make(map[string]oocarray.Slabbing),
		vars:         make(map[string]int),
		bufs:         make(map[string]*oocarray.ICLA),
		vecs:         make(map[string][]float64),
		staging:      make(map[string]*oocarray.ICLA),
		auto:         make(map[string]bool),
		autoIdx:      make(map[string]int),
		readers:      make(map[*plan.ReadSlab]*oocarray.SlabReader),
		readerNext:   make(map[*plan.ReadSlab]int),
		perArray:     make(map[string]*trace.IOStats),
	}
}

// initArrays creates (or, on resume, reattaches to) the rank's local
// array files and fills input arrays. When fault injection is active the
// array disks feed the processor's op counter, so kills can land between
// I/O operations exactly as they can between message operations.
func (in *interp) initArrays(opts Options, resume *ckptManifest) error {
	p, proc, fs, pstore := in.prog, in.proc, in.fs, in.pstore
	for _, spec := range p.Arrays {
		dm, err := spec.DistArray(p.Procs)
		if err != nil {
			return err
		}
		arrStats := &trace.IOStats{}
		in.perArray[spec.Name] = arrStats
		disk := iosim.NewResilientDisk(fs, proc.Config(), arrStats, opts.Resilience)
		disk.SetPhantom(opts.Phantom)
		disk.SetTracer(proc.Tracer(), proc.Clock(), spec.Name)
		if opts.failureActive() {
			disk.SetOpHook(proc.StepOp)
		}
		if pstore != nil {
			disk.SetParity(pstore)
		}
		var arr *oocarray.Array
		if resume != nil {
			// Resuming: the local array files already exist; attach to
			// them without truncation (their contents are rebuilt from
			// the checkpoint snapshots below).
			arr, err = oocarray.Open(disk, dm, proc.Rank(), proc.Clock(), opts.Runtime)
		} else {
			arr, err = oocarray.New(disk, dm, proc.Rank(), proc.Clock(), opts.Runtime)
		}
		if err != nil {
			return err
		}
		in.arrays[spec.Name] = arr
		in.slabbings[spec.Name] = arr.Slabbing(spec.SlabDim, spec.SlabElems)
		if opts.Runtime.WriteBehind {
			if in.writers == nil {
				in.writers = make(map[string]*oocarray.SlabWriter)
			}
			in.writers[spec.Name] = arr.NewSlabWriter()
		}
		if spec.Role == plan.In && !opts.Phantom && resume == nil {
			if fill, ok := opts.Fill[spec.Name]; ok {
				if err := arr.FillGlobal(fill); err != nil {
					return err
				}
			}
		}
	}
	if resume != nil {
		if err := in.restoreFromManifest(resume); err != nil {
			return err
		}
	}
	return nil
}

// parityStatsKey is the perArray key that collects the I/O charged to
// collective parity rebuilds (it is folded into the processor totals like
// any per-array entry).
const parityStatsKey = "(parity)"

// paritySync is a collective that restores full redundancy: if any parity
// group went out of sync (degraded writes, a reconstructed disk's own
// parity file, or a resumed run attaching to files with untrusted
// parity), every rank rebuilds the parity files its logical disk hosts.
// Barriers bracket the rebuild so no rank races a reconstruction against
// a half-rebuilt parity file, and the dirty flags are cleared only once
// every rank has finished.
func (in *interp) paritySync() error {
	if in.pstore == nil {
		return nil
	}
	in.proc.Barrier(parityTag)
	var err error
	if in.pstore.Dirty() {
		st := in.perArray[parityStatsKey]
		if st == nil {
			st = &trace.IOStats{}
			in.perArray[parityStatsKey] = st
		}
		disk := iosim.NewResilientDisk(in.fs, in.proc.Config(), st, in.res)
		disk.SetPhantom(in.phantom)
		disk.SetTracer(in.proc.Tracer(), in.proc.Clock(), parityStatsKey)
		start := in.proc.Clock().Seconds()
		var sec float64
		sec, err = in.pstore.RebuildRank(disk, in.proc.Rank())
		in.proc.Clock().Advance(sec)
		st.Seconds += sec
		if tr := in.proc.Tracer(); tr != nil {
			tr.Emit(trace.Span{Kind: trace.KindParitySync, Label: parityStatsKey, Start: start, Dur: sec})
		}
	}
	in.proc.Barrier(parityTag)
	if err != nil {
		return err
	}
	in.pstore.ClearDirty()
	return nil
}

func (in *interp) close() {
	for _, w := range in.writers {
		w.Flush()
	}
	for _, a := range in.arrays {
		a.Close()
	}
}

// runTop executes the program's top-level body from the cursor
// (startNode, startIter), committing checkpoints at eligible boundaries
// when checkpointing is on. startIter only applies to the loop at
// startNode (per-iteration cursors are recorded only for SumStore loops).
func (in *interp) runTop(body []plan.Node, startNode, startIter int) error {
	if in.ckptSpec != nil && startNode == 0 && startIter == 0 && !in.statsRestored {
		// Commit an initial checkpoint at cursor (0,0) so even a program
		// whose body is a single non-loop node (e.g. one Redistribute) has
		// an epoch to resume from if it crashes mid-node. A stats-exact
		// resume at cursor (0,0) skips the re-commit: the uninterrupted
		// run checkpointed here exactly once, and an extra barrier would
		// shift the restored clocks.
		if err := in.doCheckpoint(0, 0); err != nil {
			return err
		}
	}
	for i := startNode; i < len(body); i++ {
		nodeStart := in.proc.Clock().Seconds()
		loop, isLoop := body[i].(*plan.Loop)
		first := 0
		if i == startNode {
			first = startIter
		}
		if isLoop && in.ckptSpec != nil && plan.HasSumStore(loop.Body) {
			// Iterate here instead of in run() so a checkpoint with
			// cursor (i, v) can be committed between iterations. The
			// SumStore restriction makes the trip count globally
			// uniform, so the checkpoint barrier is collective-safe.
			count, err := in.count(loop.Count)
			if err != nil {
				return err
			}
			every := in.ckptSpec.every()
			for v := first; v < count; v++ {
				if v != first && v%every == 0 {
					if err := in.doCheckpoint(i, v); err != nil {
						return err
					}
				}
				in.vars[loop.Var] = v
				if err := in.runBody(loop.Body); err != nil {
					return err
				}
			}
			delete(in.vars, loop.Var)
		} else if isLoop && first > 0 {
			// Resuming into a loop checkpointed only at its boundary
			// cannot happen (per-iteration cursors are only recorded for
			// SumStore loops), but guard against a foreign manifest.
			return fmt.Errorf("exec: checkpoint cursor (%d,%d) points into a non-resumable loop", i, first)
		} else {
			if err := in.run(body[i]); err != nil {
				return err
			}
		}
		if tr := in.proc.Tracer(); tr != nil {
			if end := in.proc.Clock().Seconds(); end > nodeStart {
				tr.Emit(trace.Span{Kind: trace.KindNode, Label: nodeLabel(body[i]),
					Start: nodeStart, Dur: end - nodeStart, N: int64(i)})
			}
		}
		if in.ckptSpec != nil && i+1 < len(body) {
			if err := in.doCheckpoint(i+1, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// nodeLabel names a plan node for the trace overlay track.
func nodeLabel(n plan.Node) string { return plan.NodeLabel(n) }

func (in *interp) runBody(body []plan.Node) error {
	for _, n := range body {
		if err := in.run(n); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) run(n plan.Node) error {
	// Every plan node is an op boundary: a cancelled or expired context
	// stops the rank here, before the node's I/O or communication. The
	// plain path runs under context.Background, whose Err is a constant
	// nil — the wallbench allocs/ns gates pin that at zero overhead.
	if err := in.ctx.Err(); err != nil {
		return fmt.Errorf("cancelled at op boundary: %w", err)
	}
	switch n := n.(type) {
	case *plan.Loop:
		count, err := in.count(n.Count)
		if err != nil {
			return err
		}
		for v := 0; v < count; v++ {
			in.vars[n.Var] = v
			if err := in.runBody(n.Body); err != nil {
				return err
			}
		}
		delete(in.vars, n.Var)
		return nil

	case *plan.ReadSlab:
		arr, err := in.array(n.Array)
		if err != nil {
			return err
		}
		idx, ok := in.vars[n.Index]
		if !ok {
			return fmt.Errorf("exec: ReadSlab index %q is not a live loop variable", n.Index)
		}
		icla, err := in.readSlab(n, arr, idx)
		if err != nil {
			return err
		}
		old := in.bufs[n.Buf]
		in.bufs[n.Buf] = icla
		in.recycle(arr, old)
		return nil

	case *plan.NewStaging:
		arr, err := in.array(n.Array)
		if err != nil {
			return err
		}
		like, ok := in.bufs[n.RowsLike]
		if !ok {
			return fmt.Errorf("exec: NewStaging rows-like buffer %q not read yet", n.RowsLike)
		}
		s := &oocarray.ICLA{
			RowOff: like.RowOff, ColOff: 0,
			Rows: like.Rows, Cols: arr.LocalCols(),
			Data: bufpool.GetF64(like.Rows * arr.LocalCols()),
		}
		clear(s.Data)
		oldStage := in.staging[n.Array]
		oldBuf := in.bufs[n.Buf]
		in.staging[n.Array] = s
		in.bufs[n.Buf] = s
		in.recycle(arr, oldStage)
		in.recycle(arr, oldBuf)
		return nil

	case *plan.AutoStage:
		in.auto[n.Array] = true
		in.autoIdx[n.Array] = -1
		return nil

	case *plan.FlushStage:
		return in.flushStage(n.Array)

	case *plan.WriteBuf:
		arr, err := in.array(n.Array)
		if err != nil {
			return err
		}
		buf, ok := in.bufs[n.Buf]
		if !ok {
			return fmt.Errorf("exec: WriteBuf of unknown buffer %q", n.Buf)
		}
		if w := in.writers[n.Array]; w != nil {
			return w.Write(buf)
		}
		return arr.WriteSection(buf)

	case *plan.ZeroVec:
		rows, err := in.vecRows(n)
		if err != nil {
			return err
		}
		v := in.vecs[n.Vec]
		if len(v) != rows {
			v = make([]float64, rows)
			in.vecs[n.Vec] = v
		} else if !in.phantom {
			for i := range v {
				v[i] = 0
			}
		}
		return nil

	case *plan.Axpy:
		return in.axpy(n)

	case *plan.SumStore:
		return in.sumStore(n)

	case *plan.ResetCounter:
		in.counter = 0
		return nil

	case *plan.NewSlab:
		return in.runNewSlab(n)

	case *plan.Ewise:
		return in.runEwise(n)

	case *plan.ShiftEwise:
		return in.runShiftEwise(n)

	case *plan.Redistribute:
		return in.runRedistribute(n)

	default:
		return fmt.Errorf("exec: unknown node %T", n)
	}
}

// runRedistribute executes a collective redistribution through the
// two-phase I/O layer, with the write strategy the cost model chose.
func (in *interp) runRedistribute(n *plan.Redistribute) error {
	src, err := in.array(n.Src)
	if err != nil {
		return err
	}
	dst, err := in.array(n.Dst)
	if err != nil {
		return err
	}
	method, err := collio.ParseMethod(n.Method)
	if err != nil {
		return err
	}
	var transform func(gi, gj int) (int, int)
	if n.Transpose {
		transform = func(gi, gj int) (int, int) { return gj, gi }
	}
	return oocarray.RedistributeVia(in.proc, src, dst, n.MemElems, redistTag, transform, method)
}

// readSlab fetches one slab, going through a prefetch-capable reader for
// Stream-marked sequential scans and falling back to a direct read
// otherwise.
func (in *interp) readSlab(n *plan.ReadSlab, arr *oocarray.Array, idx int) (*oocarray.ICLA, error) {
	if !n.Stream {
		return arr.ReadSlab(in.slabbings[n.Array], idx)
	}
	r := in.readers[n]
	if idx == 0 {
		if r == nil {
			r = arr.NewSlabReader(in.slabbings[n.Array])
			in.readers[n] = r
		} else {
			r.Reset()
		}
		in.readerNext[n] = 0
	}
	if r == nil || in.readerNext[n] != idx {
		// The scan hypothesis does not hold at runtime; stay correct
		// with a direct read.
		return arr.ReadSlab(in.slabbings[n.Array], idx)
	}
	icla, ok, err := r.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("exec: stream reader for %q exhausted at slab %d", n.Array, idx)
	}
	in.readerNext[n] = idx + 1
	return icla, nil
}

func (in *interp) array(name string) (*oocarray.Array, error) {
	a, ok := in.arrays[name]
	if !ok {
		return nil, fmt.Errorf("exec: unknown array %q", name)
	}
	return a, nil
}

func (in *interp) count(c plan.CountExpr) (int, error) {
	switch {
	case c.SlabsOf != "":
		s, ok := in.slabbings[c.SlabsOf]
		if !ok {
			return 0, fmt.Errorf("exec: slabs of unknown array %q", c.SlabsOf)
		}
		return s.Count, nil
	case c.ColsOf != "":
		b, ok := in.bufs[c.ColsOf]
		if !ok {
			return 0, fmt.Errorf("exec: cols of unread buffer %q", c.ColsOf)
		}
		return b.Cols, nil
	default:
		return c.Lit, nil
	}
}

func (in *interp) vecRows(n *plan.ZeroVec) (int, error) {
	if n.RowsLike != "" {
		b, ok := in.bufs[n.RowsLike]
		if !ok {
			return 0, fmt.Errorf("exec: ZeroVec rows-like buffer %q not read yet", n.RowsLike)
		}
		return b.Rows, nil
	}
	arr, err := in.array(n.RowsOfArray)
	if err != nil {
		return 0, err
	}
	return arr.LocalRows(), nil
}

func (in *interp) axpy(n *plan.Axpy) error {
	vec, ok := in.vecs[n.Vec]
	if !ok {
		return fmt.Errorf("exec: Axpy into unallocated vector %q", n.Vec)
	}
	a, ok := in.bufs[n.A]
	if !ok {
		return fmt.Errorf("exec: Axpy reads unread buffer %q", n.A)
	}
	b, ok := in.bufs[n.B]
	if !ok {
		return fmt.Errorf("exec: Axpy reads unread buffer %q", n.B)
	}
	aCol, ok := in.vars[n.ACol]
	if !ok {
		return fmt.Errorf("exec: Axpy column variable %q not live", n.ACol)
	}
	bCol, ok := in.vars[n.BCol]
	if !ok {
		return fmt.Errorf("exec: Axpy column variable %q not live", n.BCol)
	}
	row := 0
	if n.BRowBase != "" {
		base, ok := in.vars[n.BRowBase]
		if !ok {
			return fmt.Errorf("exec: Axpy row variable %q not live", n.BRowBase)
		}
		scale := 1
		if n.BRowScale != "" {
			s, ok := in.slabbings[n.BRowScale]
			if !ok {
				return fmt.Errorf("exec: Axpy slab width of unknown array %q", n.BRowScale)
			}
			scale = s.Width
		}
		row = base * scale
	}
	if n.BRowPlus != "" {
		plus, ok := in.vars[n.BRowPlus]
		if !ok {
			return fmt.Errorf("exec: Axpy row variable %q not live", n.BRowPlus)
		}
		row += plus
	}
	if a.Rows != len(vec) {
		return fmt.Errorf("exec: Axpy shape mismatch: vector %d vs slab rows %d", len(vec), a.Rows)
	}
	if !in.phantom {
		col := a.Col(aCol)
		bval := b.At(row, bCol)
		for i, v := range col {
			vec[i] += bval * v
		}
	}
	in.proc.Compute(2 * int64(a.Rows))
	return nil
}

func (in *interp) sumStore(n *plan.SumStore) error {
	vec, ok := in.vecs[n.Vec]
	if !ok {
		return fmt.Errorf("exec: SumStore of unallocated vector %q", n.Vec)
	}
	arr, err := in.array(n.Array)
	if err != nil {
		return err
	}
	gj := in.counter
	in.counter++
	owner := arr.Dist().Dims[1].Owner(gj)
	mine := owner == in.proc.Rank()

	// The owner positions its (auto) staging slab before the reduction.
	if mine && in.auto[n.Array] {
		_, local := arr.Dist().Dims[1].ToLocal(gj)
		slb := in.slabbings[n.Array]
		idx := local / slb.Width
		if idx != in.autoIdx[n.Array] {
			if err := in.flushStage(n.Array); err != nil {
				return err
			}
			s, err := arr.NewSlab(slb, idx)
			if err != nil {
				return err
			}
			in.staging[n.Array] = s
			in.autoIdx[n.Array] = idx
		}
	}

	sum := in.proc.Reduce(owner, reduceTag, vec)
	if !mine {
		return nil
	}
	s := in.staging[n.Array]
	if s == nil {
		return fmt.Errorf("exec: SumStore into %q with no staging buffer", n.Array)
	}
	_, local := arr.Dist().Dims[1].ToLocal(gj)
	lj := local - s.ColOff
	if lj < 0 || lj >= s.Cols {
		return fmt.Errorf("exec: SumStore column %d outside staging [%d,+%d)", gj, s.ColOff, s.Cols)
	}
	if len(sum) != s.Rows {
		return fmt.Errorf("exec: SumStore length %d vs staging rows %d", len(sum), s.Rows)
	}
	copy(s.Col(lj), sum)
	mp.ReleaseBuf(sum)
	return nil
}

func (in *interp) flushStage(name string) error {
	s := in.staging[name]
	if s == nil {
		return nil
	}
	arr, err := in.array(name)
	if err != nil {
		return err
	}
	if w := in.writers[name]; w != nil {
		if err := w.Write(s); err != nil {
			return err
		}
	} else if err := arr.WriteSection(s); err != nil {
		return err
	}
	in.staging[name] = nil
	in.recycle(arr, s)
	return nil
}

// recycle returns a slab buffer to the arena once no binding references
// it anymore. Both interpreter tables are small (a handful of named
// buffers), so the alias scan costs nothing next to the slab I/O it
// follows.
func (in *interp) recycle(arr *oocarray.Array, s *oocarray.ICLA) {
	if s == nil {
		return
	}
	for _, b := range in.bufs {
		if b == s {
			return
		}
	}
	for _, b := range in.staging {
		if b == s {
			return
		}
	}
	arr.Recycle(s)
}

// releaseBufs returns every slab buffer the interpreter still holds —
// named ICLAs, staging slabs, prefetched-but-undelivered reader slabs —
// to the arena. It runs on every exit path (success, cancellation,
// fault abort), so a checked-mode Gets/Puts balance holds across a
// whole run, not just across the collective layers. Tables can alias
// one ICLA; the seen set guarantees a single release.
func (in *interp) releaseBufs() {
	seen := make(map[*oocarray.ICLA]bool, len(in.bufs)+len(in.staging))
	rel := func(s *oocarray.ICLA) {
		if s == nil || seen[s] {
			return
		}
		seen[s] = true
		if s.Data != nil {
			bufpool.PutF64(s.Data)
			s.Data = nil
		}
	}
	for _, s := range in.bufs {
		rel(s)
	}
	for _, s := range in.staging {
		rel(s)
	}
	for _, r := range in.readers {
		r.Close()
	}
	if b := in.bce; b != nil {
		for _, s := range b.bufs {
			rel(s)
		}
		for _, s := range b.staging {
			rel(s)
		}
		for _, r := range b.readers {
			if r != nil {
				r.Close()
			}
		}
	}
}
