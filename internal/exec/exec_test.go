package exec

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// ioStatsEqual compares counters exactly and accumulated seconds with a
// tolerance (summation order differs between implementations).
func ioStatsEqual(a, b trace.IOStats) bool {
	sa, sb := a.Seconds, b.Seconds
	a.Seconds, b.Seconds = 0, 0
	d := sa - sb
	return a == b && d < 1e-9 && d > -1e-9
}

// compileAndRun compiles the Figure 3 program and executes it.
func compileAndRun(t *testing.T, opts compiler.Options, eopts Options) (*compiler.Result, *Result) {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eopts.Fill == nil {
		eopts.Fill = map[string]func(int, int) float64{
			"a": gaxpy.FillA,
			"b": gaxpy.FillB,
		}
	}
	mach := sim.Delta(res.Program.Procs)
	out, err := Run(res.Program, mach, eopts)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

func verifyC(t *testing.T, out *Result, n int) {
	t.Helper()
	c, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	want := gaxpy.CExpected(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if c.At(i, j) != want(i, j) {
				t.Fatalf("C(%d,%d) = %g, want %g", i, j, c.At(i, j), want(i, j))
			}
		}
	}
}

func TestCompiledRowSlabProducesCorrectResult(t *testing.T) {
	for _, tc := range []struct{ n, p, mem int }{
		{16, 2, 100},
		{32, 4, 200},
		{32, 8, 300},
		{48, 4, 500},
	} {
		t.Run(fmt.Sprintf("n=%d p=%d", tc.n, tc.p), func(t *testing.T) {
			res, out := compileAndRun(t,
				compiler.Options{N: tc.n, Procs: tc.p, MemElems: tc.mem}, Options{})
			if res.Program.Strategy != "row-slab" {
				t.Fatalf("strategy %s", res.Program.Strategy)
			}
			verifyC(t, out, tc.n)
		})
	}
}

func TestCompiledColumnSlabProducesCorrectResult(t *testing.T) {
	_, out := compileAndRun(t,
		compiler.Options{N: 32, Procs: 4, MemElems: 200, Force: "column-slab"}, Options{})
	verifyC(t, out, 32)
}

func TestCompiledMatchesHandCodedStatistics(t *testing.T) {
	// The compiled row-slab program must behave exactly like the
	// hand-coded Figure 12 program: same I/O counts, bytes and simulated
	// time, given the same slab sizes.
	const n, p = 64, 4
	res, err := compiler.CompileSource(hpf.GaxpySource,
		compiler.Options{N: n, Procs: p, MemElems: 700, Policy: compiler.PolicySearch})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Program.Array("a")
	b, _ := res.Program.Array("b")
	c, _ := res.Program.Array("c")

	mach := sim.Delta(p)
	out, err := Run(res.Program, mach, Options{
		Fill: map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB},
	})
	if err != nil {
		t.Fatal(err)
	}

	hand, err := gaxpy.RunRowSlab(mach, gaxpy.Config{
		N: n, SlabA: a.SlabElems, SlabB: b.SlabElems, SlabC: c.SlabElems,
	})
	if err != nil {
		t.Fatal(err)
	}

	cio, hio := out.Stats.TotalIO(), hand.Stats.TotalIO()
	if !ioStatsEqual(cio, hio) {
		t.Errorf("I/O stats differ:\ncompiled   %+v\nhand-coded %+v", cio, hio)
	}
	ct, ht := out.Stats.ElapsedSeconds(), hand.Stats.ElapsedSeconds()
	if d := ct - ht; d > 1e-9 || d < -1e-9 {
		t.Errorf("elapsed differ: compiled %.6f vs hand-coded %.6f", ct, ht)
	}
	// And the same result matrix.
	cm, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	hm, err := hand.GatherC()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(cm, hm) {
		t.Error("compiled and hand-coded results differ")
	}
}

func TestCompiledColumnSlabMatchesHandCoded(t *testing.T) {
	const n, p = 32, 4
	res, err := compiler.CompileSource(hpf.GaxpySource,
		compiler.Options{N: n, Procs: p, MemElems: 200, Force: "column-slab"})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Program.Array("a")
	b, _ := res.Program.Array("b")
	c, _ := res.Program.Array("c")
	mach := sim.Delta(p)
	out, err := Run(res.Program, mach, Options{
		Fill: map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB},
	})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := gaxpy.RunColumnSlab(mach, gaxpy.Config{
		N: n, SlabA: a.SlabElems, SlabB: b.SlabElems, SlabC: c.SlabElems,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cio, hio := out.Stats.TotalIO(), hand.Stats.TotalIO(); !ioStatsEqual(cio, hio) {
		t.Errorf("I/O stats differ:\ncompiled   %+v\nhand-coded %+v", cio, hio)
	}
}

func TestPhantomExecutionMatchesReal(t *testing.T) {
	copts := compiler.Options{N: 32, Procs: 4, MemElems: 300}
	_, real := compileAndRun(t, copts, Options{})
	_, ph := compileAndRun(t, copts, Options{Phantom: true})
	if r, p := real.Stats.TotalIO(), ph.Stats.TotalIO(); !ioStatsEqual(r, p) {
		t.Errorf("phantom IO differs: %+v vs %+v", p, r)
	}
	rt, pt := real.Stats.ElapsedSeconds(), ph.Stats.ElapsedSeconds()
	if d := rt - pt; d > 1e-9 || d < -1e-9 {
		t.Errorf("phantom elapsed %.6f vs real %.6f", pt, rt)
	}
	if _, err := ph.ReadArray("c"); err == nil {
		t.Error("ReadArray on phantom run should fail")
	}
}

func TestUnfilledInputsAreZero(t *testing.T) {
	// Inputs without a Fill entry are zero, so C must be zero.
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 16, Procs: 2, MemElems: 100})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, sim.Delta(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("zero inputs must give zero output")
		}
	}
}

func TestReadArrayUnknown(t *testing.T) {
	_, out := compileAndRun(t, compiler.Options{N: 16, Procs: 2, MemElems: 100}, Options{})
	if _, err := out.ReadArray("nope"); err == nil {
		t.Error("unknown array should fail")
	}
}

func TestRuntimeOptionsSieveAndPrefetch(t *testing.T) {
	// Sieving + prefetching still compute the right answer.
	res, err := compiler.CompileSource(hpf.GaxpySource,
		compiler.Options{N: 32, Procs: 4, MemElems: 300, Sieve: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, sim.Delta(4), Options{
		Fill:    map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB},
		Runtime: oocarray.Options{Sieve: true, Prefetch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyC(t, out, 32)
}

func TestStreamedReadsPrefetch(t *testing.T) {
	// With Stream-marked reads and Runtime.Prefetch, the interpreter
	// overlaps slab fetches with computation: lower simulated time, same
	// result, same I/O counts.
	copts := compiler.Options{N: 64, Procs: 4, MemElems: 600}
	res, err := compiler.CompileSource(hpf.GaxpySource, copts)
	if err != nil {
		t.Fatal(err)
	}
	fill := map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}
	plain, err := Run(res.Program, sim.Delta(4), Options{Fill: fill})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(res.Program, sim.Delta(4), Options{Fill: fill,
		Runtime: oocarray.Options{Prefetch: true}})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Stats.ElapsedSeconds() >= plain.Stats.ElapsedSeconds() {
		t.Errorf("prefetch did not reduce simulated time: %.3f vs %.3f",
			pre.Stats.ElapsedSeconds(), plain.Stats.ElapsedSeconds())
	}
	a, err := plain.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := pre.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, b) {
		t.Error("prefetch changed the result")
	}
	pi, qi := plain.Stats.TotalIO(), pre.Stats.TotalIO()
	if pi.SlabReads != qi.SlabReads || pi.BytesRead != qi.BytesRead {
		t.Errorf("prefetch changed I/O counts: %+v vs %+v", pi, qi)
	}
}

func TestStreamHintPrinted(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 64, Procs: 4, MemElems: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Program.String(), "sequential: may prefetch") {
		t.Error("program text missing stream hints")
	}
}

func TestSpanTimelineRecorded(t *testing.T) {
	tr := trace.NewTracer(4)
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 32, Procs: 4, MemElems: 300})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, sim.Delta(4), Options{Phantom: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]bool{}
	var ioSeconds float64
	for _, s := range tr.Spans() {
		kinds[s.Kind] = true
		if s.Kind == trace.KindSlabRead || s.Kind == trace.KindSlabWrite {
			ioSeconds += s.Dur
		}
		if !s.Deferred && s.End() > out.Stats.ElapsedSeconds()+1e-9 {
			t.Fatalf("span past the end of the run: %+v", s)
		}
	}
	for _, want := range []trace.Kind{trace.KindCompute, trace.KindSlabRead, trace.KindSlabWrite, trace.KindSend} {
		if !kinds[want] {
			t.Errorf("no %q spans recorded (kinds: %v)", want, kinds)
		}
	}
	// The spans' I/O time must equal the accounted I/O seconds.
	if acc := out.Stats.TotalIO().Seconds; ioSeconds < acc-1e-6 || ioSeconds > acc+1e-6 {
		t.Errorf("span io time %.6f != accounted %.6f", ioSeconds, acc)
	}
	if !strings.Contains(tr.Gantt(4, 80), "p0") {
		t.Error("gantt should render lanes")
	}
	// And reconcile exactly — counts, bytes and seconds to the digit.
	if err := trace.Reconcile(tr.Spans(), out.Stats, out.PerArray); err != nil {
		t.Fatal(err)
	}
}
