package exec

import (
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// reconcileScenario compiles one program and describes how to run it; the
// matrix below asserts the keystone property for each: the span timeline
// replays to the accounted per-processor statistics exactly, to the digit.
type reconcileScenario struct {
	name    string
	source  string
	copts   compiler.Options
	fills   map[string]func(int, int) float64
	options Options // Trace filled in by the test
	resume  bool    // kill the run mid-flight, then reconcile the Resume
}

func gaxpyScenarioOpts(force string) compiler.Options {
	return compiler.Options{N: 32, Procs: 4, MemElems: 300, Force: force}
}

func transientChaosFS(seed int64) iosim.FS {
	return iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Seed: seed, PTransient: 0.03, PCorrupt: 0.01,
	})
}

func retryResilience() *iosim.Resilience {
	return iosim.NewResilience(iosim.RetryPolicy{MaxRetries: 12, BaseBackoff: 1e-3, MaxBackoff: 8e-3})
}

// TestTraceReconcilesAcrossPrograms is the keystone acceptance test: for
// every supported execution strategy, runtime reorganization, and fault
// mode, replaying the emitted spans reproduces IOStats and CommStats
// bit-exactly — counts, bytes, and simulated seconds. Any counter bumped
// without a matching span (or vice versa) fails here.
func TestTraceReconcilesAcrossPrograms(t *testing.T) {
	stencilFill := map[string]func(int, int) float64{"x": shiftFillX}
	transposeFill := map[string]func(int, int) float64{
		"a": func(gi, gj int) float64 { return float64(gi*64 + gj + 1) },
	}
	ewiseFill := map[string]func(int, int) float64{"x": fillX, "y": fillY}

	scenarios := []reconcileScenario{
		{
			name:    "gaxpy/row-slab",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{},
		},
		{
			name:    "gaxpy/column-slab/sieve",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			fills:   sweepFills(),
			options: Options{Runtime: oocarray.Options{Sieve: true}},
		},
		{
			name:    "gaxpy/row-slab/prefetch-writebehind",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Runtime: oocarray.Options{Prefetch: true, WriteBehind: true}},
		},
		{
			name:    "gaxpy/phantom",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			options: Options{Phantom: true},
		},
		{
			name:   "gaxpy/chaos-transient",
			source: hpf.GaxpySource,
			copts:  gaxpyScenarioOpts("row-slab"),
			fills:  sweepFills(),
			options: Options{
				FS:         transientChaosFS(1),
				Resilience: retryResilience(),
			},
		},
		{
			name:    "gaxpy/parity",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("column-slab"),
			fills:   sweepFills(),
			options: Options{Resilience: parityResilience(), Parity: true},
		},
		{
			name:   "gaxpy/parity/disk-loss",
			source: hpf.GaxpySource,
			copts:  gaxpyScenarioOpts("row-slab"),
			fills:  sweepFills(),
			options: Options{
				FS: iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
					Schedule: []iosim.ScheduledFault{{File: "c.p1.laf", Op: 3, Kind: iosim.KindDiskLoss}},
				}),
				Resilience: parityResilience(),
				Parity:     true,
			},
		},
		{
			name:    "gaxpy/checkpoint",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Checkpoint: &CheckpointSpec{Every: 1}},
		},
		{
			name:    "gaxpy/checkpoint-resume",
			source:  hpf.GaxpySource,
			copts:   gaxpyScenarioOpts("row-slab"),
			fills:   sweepFills(),
			options: Options{Checkpoint: &CheckpointSpec{Every: 1}},
			resume:  true,
		},
		{
			name:    "stencil/shift-exchange",
			source:  shiftSource,
			copts:   compiler.Options{N: 32, Procs: 4, MemElems: 32 * 4},
			fills:   stencilFill,
			options: Options{},
		},
		{
			name:    "transpose/direct",
			source:  hpf.TransposeSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "direct"},
			fills:   transposeFill,
			options: Options{},
		},
		{
			name:    "transpose/two-phase",
			source:  hpf.TransposeSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "two-phase"},
			fills:   transposeFill,
			options: Options{},
		},
		{
			name:    "ewise/multi-statement",
			source:  hpf.EwiseSource,
			copts:   compiler.Options{N: 64, Procs: 4, MemElems: 64 * 8},
			fills:   ewiseFill,
			options: Options{},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			res, err := compiler.CompileSource(sc.source, sc.copts)
			if err != nil {
				t.Fatal(err)
			}
			mach := sim.Delta(res.Program.Procs)
			opts := sc.options
			opts.Fill = sc.fills
			opts.Trace = trace.NewTracer(res.Program.Procs)

			var out *Result
			if sc.resume {
				out = killAndResumeTraced(t, res, mach, opts)
			} else {
				out, err = Run(res.Program, mach, opts)
				if err != nil {
					t.Fatal(err)
				}
			}
			spans := opts.Trace.Spans()
			if len(spans) == 0 {
				t.Fatal("traced run emitted no spans")
			}
			if d := opts.Trace.Dropped(); d != 0 {
				t.Fatalf("tracer dropped %d spans; reconciliation is void", d)
			}
			// Reconcile before ReadArray: result readback charges
			// statistics outside the traced execution window.
			if err := trace.Reconcile(spans, out.Stats, out.PerArray); err != nil {
				t.Fatalf("spans do not replay to the accounted statistics:\n%v", err)
			}
		})
	}
}

// killAndResumeTraced kills a checkpointed run mid-flight, then resumes it
// with a fresh tracer (opts.Trace) and returns the resumed result. The
// reconciliation then covers the resume path: checkpoint restore I/O,
// epoch skipping, and the remaining execution.
func killAndResumeTraced(t *testing.T, res *compiler.Result, mach sim.Config, opts Options) *Result {
	t.Helper()
	probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
	probeOpts := opts
	probeOpts.Trace = nil
	probeOpts.FS = probe
	if _, err := Run(res.Program, mach, probeOpts); err != nil {
		t.Fatal(err)
	}
	total := 1<<30 - probe.Remaining()

	for k := total - 1; k >= 1; k-- {
		mem := iosim.NewMemFS()
		killOpts := opts
		killOpts.Trace = nil
		killOpts.FS = iosim.NewFaultFS(mem, k, nil)
		if _, err := Run(res.Program, mach, killOpts); err == nil {
			continue // budget k sufficed; kill earlier
		}
		resumeOpts := opts
		resumeOpts.FS = mem
		out, err := Resume(res.Program, mach, resumeOpts)
		if err != nil {
			continue // killed mid-commit or before the first checkpoint
		}
		return out
	}
	t.Fatal("no kill point produced a resumable checkpoint")
	return nil
}

// TestTraceDegradedReconstructionSpans pins the recovery-specific span
// kinds: a parity run that loses a disk emits reconstruction spans, and
// cross-rank recovery gather traffic reconciles into the surviving ranks'
// CommStats — the one place a span is attributed to a rank other than the
// one that executed it.
func TestTraceDegradedReconstructionSpans(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: "c.p1.laf", Op: 3, Kind: iosim.KindDiskLoss}},
	})
	tr := trace.NewTracer(res.Program.Procs)
	out, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{
		FS:         chaos,
		Fill:       sweepFills(),
		Resilience: parityResilience(),
		Parity:     true,
		Trace:      tr,
	})
	if err != nil {
		t.Fatalf("disk loss must be survived with parity enabled: %v", err)
	}
	kinds := map[trace.Kind]int{}
	for _, s := range tr.Spans() {
		kinds[s.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindReconstruct, trace.KindRecoveryComm, trace.KindParityRMW, trace.KindParitySync} {
		if kinds[k] == 0 {
			t.Errorf("degraded parity run emitted no %v spans (have %v)", k, kinds)
		}
	}
	if err := trace.Reconcile(tr.Spans(), out.Stats, out.PerArray); err != nil {
		t.Fatalf("degraded-mode spans do not replay to the statistics:\n%v", err)
	}
}
